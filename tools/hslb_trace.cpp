// hslb_trace: explain where request latency went.
//
//   $ hslb_trace --trace=BENCH_svc_trace.json
//                [--metrics=BENCH_svc_metrics.prom] [--workers=N]
//                [--json] [--check]
//
// Ingests a Chrome trace written by the allocation service (and optionally
// a Prometheus metrics snapshot for the worker count), reconstructs every
// request's phase timeline (admission / queue / cache / coalesce / LP /
// branching), and prints per-percentile latency attribution plus an
// arrival-vs-service queueing sanity check.  --json emits the
// machine-readable verdict; --check exits non-zero unless the attribution
// is well-formed (requests found, shares sum to ~100%, a dominant p99
// phase named) -- the CI smoke gate.
#include <cmath>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "hslb/common/table.hpp"
#include "hslb/obs/attribution.hpp"
#include "hslb/obs/exposition.hpp"

namespace {

bool read_file(const std::string& path, std::string* out) {
  std::ifstream in(path);
  if (!in) {
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  *out = buffer.str();
  return true;
}

int usage() {
  std::cerr << "usage: hslb_trace --trace=<chrome.json>"
               " [--metrics=<snapshot.prom>] [--workers=<n>]"
               " [--json] [--check]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hslb;
  std::string trace_path;
  std::string metrics_path;
  double workers = 0.0;
  bool as_json = false;
  bool check = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--trace=", 0) == 0) {
      trace_path = arg.substr(std::strlen("--trace="));
    } else if (arg.rfind("--metrics=", 0) == 0) {
      metrics_path = arg.substr(std::strlen("--metrics="));
    } else if (arg.rfind("--workers=", 0) == 0) {
      workers = std::stod(arg.substr(std::strlen("--workers=")));
    } else if (arg == "--json") {
      as_json = true;
    } else if (arg == "--check") {
      check = true;
    } else {
      return usage();
    }
  }
  if (trace_path.empty()) {
    return usage();
  }

  std::string trace_text;
  if (!read_file(trace_path, &trace_text)) {
    std::cerr << "hslb_trace: cannot read " << trace_path << '\n';
    return 1;
  }
  const auto events = obs::parse_chrome_trace(trace_text);
  if (!events) {
    std::cerr << "hslb_trace: " << events.error() << '\n';
    return 1;
  }

  obs::MetricsSnapshot snapshot;
  if (!metrics_path.empty()) {
    std::string metrics_text;
    if (!read_file(metrics_path, &metrics_text)) {
      std::cerr << "hslb_trace: cannot read " << metrics_path << '\n';
      return 1;
    }
    const auto parsed = obs::parse_prometheus(metrics_text);
    if (!parsed) {
      std::cerr << "hslb_trace: " << parsed.error() << '\n';
      return 1;
    }
    snapshot = *parsed;
    if (workers <= 0.0) {
      workers = snapshot.gauge_value("svc.workers", 0.0);
    }
  }

  const obs::Attribution attribution =
      obs::attribute_phases(*events, workers);

  if (as_json) {
    std::cout << obs::attribution_json(attribution).dump(1) << '\n';
  } else {
    std::cout << "requests: " << attribution.requests.size() << '\n'
              << obs::attribution_table(attribution)
              << "arrival " << attribution.queueing.arrival_rate_hz
              << "/s vs capacity "
              << attribution.queueing.workers *
                     attribution.queueing.per_worker_service_rate_hz
              << "/s (utilization " << attribution.queueing.utilization
              << ", " << attribution.queueing.verdict << ")\n"
              << attribution.verdict << '\n';
    if (attribution.lp.epochs > 0) {
      const obs::LpEngineRollup& lp = attribution.lp;
      std::cout << "lp engine: " << lp.lp_ms << " ms across " << lp.epochs
                << " epoch(s) -- factor " << lp.factor_ms << " ms, update "
                << lp.update_ms << " ms, pivot " << lp.pivot_ms << " ms; "
                << lp.eta_updates << " eta update(s), "
                << lp.refactorizations << " refactorization(s), "
                << lp.factor_inherits << " factor inherit(s), "
                << lp.bt_fallbacks << " B^T fallback(s)"
                << (lp.bt_fallbacks > 0
                        ? "  [dense B^T solves left the factored path]"
                        : "")
                << '\n';
    }
  }

  if (check) {
    if (attribution.requests.empty()) {
      std::cerr << "check FAILED: no svc.request spans in trace\n";
      return 1;
    }
    if (attribution.dominant_p99_phase == "none" ||
        attribution.dominant_p99_phase.empty()) {
      std::cerr << "check FAILED: no dominant p99 phase\n";
      return 1;
    }
    for (const obs::PercentileAttribution& pa : attribution.percentiles) {
      double sum = 0.0;
      for (std::size_t p = 0; p < obs::kPhaseCount; ++p) {
        sum += pa.share[p];
      }
      if (std::fabs(sum - 1.0) > 0.01) {
        std::cerr << "check FAILED: p"
                  << static_cast<int>(pa.quantile * 100.0)
                  << " shares sum to " << sum << " (want ~1)\n";
        return 1;
      }
    }
    std::cerr << "check ok: " << attribution.requests.size()
              << " requests, p99 dominated by "
              << attribution.dominant_p99_phase << '\n';
  }
  return 0;
}
