// hslb_scengen: deterministic scenario-corpus generator.
//
//   hslb_scengen --out <dir> [--seed N] [--count N] [--list]
//
// Emits the graded corpus (corpus_families() x --count scenarios each) as
// one canonical .scen file per scenario plus corpus.json, a ResultSet
// manifest whose fingerprint covers every planted optimum and certified
// bound.  Generation is a pure function of the seed: the same invocation
// produces a byte-identical corpus on every run and machine (CI generates
// twice and diffs the trees).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "hslb/scen/generate.hpp"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --out <dir> [--seed N] [--count N] [--list]\n"
               "  --out <dir>   output directory (created if missing)\n"
               "  --seed N      generator seed (default 2014)\n"
               "  --count N     scenarios per family (default 18; 12 "
               "families)\n"
               "  --list        print family names and exit\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_dir;
  hslb::scen::GenerateOptions options;
  bool list_only = false;
  // Flags accept both `--flag value` and `--flag=value` (the form the rest
  // of the repo's binaries use).
  const auto value_of = [&](const std::string& arg, const char* flag,
                            int* i) -> const char* {
    const std::string eq = std::string(flag) + '=';
    if (arg.rfind(eq, 0) == 0) {
      return argv[*i] + eq.size();
    }
    if (arg == flag && *i + 1 < argc) {
      return argv[++*i];
    }
    return nullptr;
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (const char* out_v = value_of(arg, "--out", &i)) {
      out_dir = out_v;
    } else if (const char* seed_v = value_of(arg, "--seed", &i)) {
      options.seed = std::strtoull(seed_v, nullptr, 10);
    } else if (const char* count_v = value_of(arg, "--count", &i)) {
      options.scenarios_per_family = std::atoi(count_v);
    } else if (arg == "--list") {
      list_only = true;
    } else {
      return usage(argv[0]);
    }
  }
  if (list_only) {
    for (const hslb::scen::Family& family : hslb::scen::corpus_families()) {
      std::printf("%s\n", family.name.c_str());
    }
    return 0;
  }
  if (out_dir.empty() || options.scenarios_per_family < 1) {
    return usage(argv[0]);
  }

  const std::vector<hslb::scen::GeneratedScenario> corpus =
      hslb::scen::generate_corpus(options);
  if (!hslb::scen::write_corpus(out_dir, corpus, options)) {
    std::fprintf(stderr, "hslb_scengen: cannot write corpus to %s\n",
                 out_dir.c_str());
    return 1;
  }
  int planted = 0;
  for (const hslb::scen::GeneratedScenario& entry : corpus) {
    planted += entry.scenario.expect.optimum.has_value() ? 1 : 0;
  }
  const hslb::report::ResultSet manifest =
      hslb::scen::corpus_manifest(corpus, options);
  std::printf(
      "wrote %zu scenarios (%d planted optima, %zu certified bounds) to "
      "%s\nmanifest fingerprint %s\n",
      corpus.size(), planted, corpus.size() - static_cast<std::size_t>(planted),
      out_dir.c_str(), manifest.fingerprint().c_str());
  return 0;
}
