// hslb_report -- the results-pipeline CLI (DESIGN.md section 10).
//
//   hslb_report render --artifacts=<dir> --paper=<paper_reference.json>
//                      [--out=<EXPERIMENTS.md>] [--regen-command=<text>]
//       Render EXPERIMENTS.md from the artifact directory.  Without --out
//       the document goes to stdout.
//
//   hslb_report diff --golden=<dir> --fresh=<dir> [--check-timing]
//                    [--bench=<a,b,...>]
//       Drift gate: compare every golden artifact against the fresh run
//       under the per-metric tolerance policy.  Nonzero exit on drift.
//
//   hslb_report fingerprint <artifact.json>...
//       Print "<fingerprint>  <bench>" per file (recomputed, which also
//       verifies the embedded one -- a corrupted file fails to parse).
//
//   hslb_report check --artifacts=<dir> --paper=<...> --doc=<EXPERIMENTS.md>
//                     [--regen-command=<text>]
//       Staleness gate: re-render from the artifacts and byte-compare with
//       the committed doc.  Nonzero exit + first differing line on mismatch.
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "hslb/common/error.hpp"
#include "hslb/report/diff.hpp"
#include "hslb/report/experiments_doc.hpp"
#include "hslb/report/markdown.hpp"
#include "hslb/report/result_set.hpp"

namespace {

using namespace hslb;

constexpr const char* kDefaultRegenCommand = "scripts/regen_experiments.sh --update";

int usage() {
  std::cerr
      << "usage:\n"
         "  hslb_report render --artifacts=<dir> --paper=<json> [--out=<md>]"
         " [--regen-command=<text>]\n"
         "  hslb_report diff --golden=<dir> --fresh=<dir> [--check-timing]\n"
         "                   [--bench=<a,b,...>]\n"
         "  hslb_report fingerprint <artifact.json>...\n"
         "  hslb_report check --artifacts=<dir> --paper=<json> --doc=<md>"
         " [--regen-command=<text>]\n";
  return 2;
}

/// `--flag=value` parser over the subcommand's arguments.
std::map<std::string, std::string> parse_flags(
    const std::vector<std::string>& args, std::vector<std::string>* positional) {
  std::map<std::string, std::string> flags;
  for (const std::string& arg : args) {
    if (arg.rfind("--", 0) == 0) {
      const auto eq = arg.find('=');
      if (eq == std::string::npos) {
        flags[arg.substr(2)] = "1";
      } else {
        flags[arg.substr(2, eq - 2)] = arg.substr(eq + 1);
      }
    } else if (positional != nullptr) {
      positional->push_back(arg);
    }
  }
  return flags;
}

std::string require_flag(const std::map<std::string, std::string>& flags,
                         const std::string& name) {
  const auto it = flags.find(name);
  HSLB_REQUIRE(it != flags.end(), "missing required flag --" + name);
  return it->second;
}

report::ResultSet load_artifact(const std::string& path) {
  auto loaded = report::read_file(path);
  if (!loaded) {
    throw Error(path + ": " + loaded.error().message);
  }
  return std::move(loaded.value());
}

/// Load every doc-set artifact as <dir>/<bench>.json.
std::map<std::string, report::ResultSet> load_artifact_dir(
    const std::string& dir) {
  std::map<std::string, report::ResultSet> artifacts;
  for (const std::string& bench : report::experiments_bench_set()) {
    artifacts[bench] = load_artifact(dir + "/" + bench + ".json");
  }
  return artifacts;
}

report::PaperRef load_paper(const std::string& path) {
  auto paper = report::PaperRef::load(path);
  if (!paper) {
    throw Error(paper.error().message);
  }
  return std::move(paper.value());
}

std::string read_text_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  HSLB_REQUIRE(in.good(), "cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// Report the first line where two texts diverge (for the staleness gate).
void print_first_difference(const std::string& expected,
                            const std::string& actual) {
  std::istringstream a(expected);
  std::istringstream b(actual);
  std::string line_a;
  std::string line_b;
  int line = 0;
  for (;;) {
    const bool more_a = static_cast<bool>(std::getline(a, line_a));
    const bool more_b = static_cast<bool>(std::getline(b, line_b));
    ++line;
    if (!more_a && !more_b) {
      return;
    }
    if (line_a != line_b || more_a != more_b) {
      std::cerr << "first difference at line " << line << ":\n"
                << "  committed:   " << (more_a ? line_a : "<end of file>")
                << '\n'
                << "  regenerated: " << (more_b ? line_b : "<end of file>")
                << '\n';
      return;
    }
  }
}

int cmd_render(const std::map<std::string, std::string>& flags) {
  const auto artifacts = load_artifact_dir(require_flag(flags, "artifacts"));
  const auto paper = load_paper(require_flag(flags, "paper"));
  const auto regen = flags.count("regen-command")
                         ? flags.at("regen-command")
                         : std::string(kDefaultRegenCommand);
  const std::string doc = report::render_experiments(artifacts, paper, regen);
  const auto out_it = flags.find("out");
  if (out_it == flags.end()) {
    std::cout << doc;
    return 0;
  }
  std::ofstream out(out_it->second, std::ios::binary);
  HSLB_REQUIRE(out.good(), "cannot write " + out_it->second);
  out << doc;
  std::cerr << "wrote " << out_it->second << " (" << doc.size()
            << " bytes)\n";
  return 0;
}

int cmd_diff(const std::map<std::string, std::string>& flags) {
  const std::string golden_dir = require_flag(flags, "golden");
  const std::string fresh_dir = require_flag(flags, "fresh");
  report::TolerancePolicy policy;
  policy.check_timing = flags.count("check-timing") != 0;
  // Default: the doc-bench set behind EXPERIMENTS.md.  --bench=<a,b,...>
  // restricts the diff to named artifacts instead (e.g. check.sh's LP
  // pivot-count drift gate diffs just lp_resolve.json).
  std::vector<std::string> benches = report::experiments_bench_set();
  if (flags.count("bench") != 0) {
    benches.clear();
    std::istringstream names(flags.at("bench"));
    std::string name;
    while (std::getline(names, name, ',')) {
      if (!name.empty()) {
        benches.push_back(name);
      }
    }
    HSLB_REQUIRE(!benches.empty(), "--bench needs at least one bench name");
  }
  bool ok = true;
  for (const std::string& bench : benches) {
    const auto golden = load_artifact(golden_dir + "/" + bench + ".json");
    const auto fresh = load_artifact(fresh_dir + "/" + bench + ".json");
    const report::DiffResult result = report::diff(golden, fresh, policy);
    std::cerr << bench << ": " << result.cells_compared << " cells compared, "
              << result.cells_skipped_timing << " timing cells skipped, "
              << result.drifts.size() << " drift(s)\n";
    if (!result.ok()) {
      std::cerr << report::render_drift_report(result);
      ok = false;
    }
  }
  if (!ok) {
    std::cerr << "DRIFT: fresh artifacts disagree with tests/golden "
                 "(re-run scripts/regen_experiments.sh --update if the "
                 "change is intended and explain it in the PR)\n";
  }
  return ok ? 0 : 1;
}

int cmd_fingerprint(const std::vector<std::string>& paths) {
  if (paths.empty()) {
    return usage();
  }
  for (const std::string& path : paths) {
    const auto set = load_artifact(path);
    std::cout << set.fingerprint() << "  " << set.bench << '\n';
  }
  return 0;
}

int cmd_check(const std::map<std::string, std::string>& flags) {
  const auto artifacts = load_artifact_dir(require_flag(flags, "artifacts"));
  const auto paper = load_paper(require_flag(flags, "paper"));
  const std::string doc_path = require_flag(flags, "doc");
  const auto regen = flags.count("regen-command")
                         ? flags.at("regen-command")
                         : std::string(kDefaultRegenCommand);
  const std::string committed = read_text_file(doc_path);
  const std::string rendered =
      report::render_experiments(artifacts, paper, regen);
  if (committed == rendered) {
    std::cerr << doc_path << " is up to date (" << committed.size()
              << " bytes)\n";
    return 0;
  }
  std::cerr << "STALE: " << doc_path
            << " does not match the artifacts it claims to be rendered "
               "from\n";
  print_first_difference(committed, rendered);
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    return usage();
  }
  const std::string command = argv[1];
  std::vector<std::string> args(argv + 2, argv + argc);
  try {
    if (command == "render") {
      return cmd_render(parse_flags(args, nullptr));
    }
    if (command == "diff") {
      return cmd_diff(parse_flags(args, nullptr));
    }
    if (command == "fingerprint") {
      std::vector<std::string> positional;
      (void)parse_flags(args, &positional);
      return cmd_fingerprint(positional);
    }
    if (command == "check") {
      return cmd_check(parse_flags(args, nullptr));
    }
  } catch (const std::exception& error) {
    std::cerr << "hslb_report " << command << ": " << error.what() << '\n';
    return 1;
  }
  return usage();
}
