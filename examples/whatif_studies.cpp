// Section IV-C what-if studies as a tool: constraint cost, component swaps,
// scaling forecasts toward machines that do not exist yet, and node-count
// recommendation -- all from one set of fitted curves, no further runs.
//
//   $ ./whatif_studies
#include <iostream>

#include "hslb/cesm/campaign.hpp"
#include "hslb/common/table.hpp"
#include "hslb/hslb/pipeline.hpp"
#include "hslb/hslb/whatif.hpp"

int main() {
  using namespace hslb;

  const cesm::CaseConfig case_config = cesm::one_degree_case();
  std::cout << "Fitting component curves for " << case_config.name
            << "...\n";
  const auto campaign = cesm::gather_benchmarks(
      case_config, cesm::LayoutKind::kHybrid,
      std::vector<int>{128, 256, 512, 1024, 2048}, 2014);

  core::LayoutModelSpec spec;
  spec.layout = cesm::LayoutKind::kHybrid;
  spec.total_nodes = 512;
  spec.min_nodes = case_config.min_nodes;
  spec.atm_allowed = case_config.atm_allowed;
  spec.ocn_allowed = case_config.ocn_allowed;
  for (const cesm::ComponentKind kind : cesm::kModeledComponents) {
    const cesm::Series series = cesm::series_for(campaign.samples, kind);
    spec.perf[kind] = perf::fit(series.nodes, series.seconds).model;
  }

  // --- 1. What do the allocation-set constraints cost? -----------------------
  const core::ConstraintEffect effect = core::constraint_effect(spec);
  std::cout << "\n[1] Cost of the hard-coded allocation sets at 512 nodes:\n"
            << "    constrained optimum  : "
            << common::format_fixed(effect.constrained_total, 2) << " s\n"
            << "    unconstrained optimum: "
            << common::format_fixed(effect.unconstrained_total, 2) << " s\n"
            << "    relative cost        : "
            << common::format_fixed(100.0 * effect.relative_cost, 2)
            << " %\n";

  // --- 2. What if the ocean model got 2x faster? -----------------------------
  const perf::PerfParams ocean_params =
      spec.perf.at(cesm::ComponentKind::kOcn).params();
  const perf::PerfModel faster_ocean(perf::PerfParams{
      ocean_params.a / 2.0, ocean_params.b, ocean_params.c,
      ocean_params.d / 2.0});
  double swapped_total = 0.0;
  const core::Allocation swapped = core::swap_component(
      spec, cesm::ComponentKind::kOcn, faster_ocean, &swapped_total);
  std::cout << "\n[2] Swapping in a 2x faster ocean model:\n"
            << "    baseline optimum : "
            << common::format_fixed(effect.constrained_total, 2) << " s\n"
            << "    with fast ocean  : "
            << common::format_fixed(swapped_total, 2) << " s, ocean gets "
            << swapped.nodes.at(cesm::ComponentKind::kOcn)
            << " nodes instead of "
            << effect.constrained.nodes.at(cesm::ComponentKind::kOcn)
            << "\n";

  // --- 3. Forecast scaling to sizes never benchmarked. ------------------------
  std::cout << "\n[3] Scaling forecast (benchmarked up to 2048 nodes; the "
               "rest is model prediction):\n";
  const std::vector<int> sizes{128, 512, 2048, 8192, 32768};
  common::Table forecast({"nodes", "predicted T,s", "efficiency,%"});
  for (const core::ScalingPoint& point :
       core::scaling_forecast(spec, sizes)) {
    forecast.add_row();
    forecast.cell(static_cast<long long>(point.total_nodes));
    forecast.cell(point.predicted_total, 2);
    forecast.cell(100.0 * point.efficiency, 1);
  }
  std::cout << forecast;

  // --- 4. Predict scaling on hardware that does not exist yet. ----------------
  // (Section IV-C's "more exotic" application.)  Hypothesis: a successor
  // machine with 4x faster nodes.  Prediction: scale the fitted curves and
  // re-solve.  Validation: simulate the actual new machine.
  {
    const double speedup = 4.0;
    core::LayoutModelSpec next_gen = spec;
    for (auto& [kind, model] : next_gen.perf) {
      const perf::PerfParams p = model.params();
      model = perf::PerfModel(perf::PerfParams{p.a / speedup, p.b / speedup,
                                               p.c, p.d / speedup});
    }
    core::LayoutModelVars vars;
    const auto predicted =
        minlp::solve(core::build_layout_model(next_gen, &vars));
    const core::Allocation alloc =
        core::extract_allocation(next_gen, vars, predicted);

    const cesm::CaseConfig future = cesm::scaled_hardware_case(
        case_config, "Mira-like successor", speedup, 49152, 16);
    const cesm::RunResult run =
        cesm::run_case(future, alloc.as_layout(next_gen.layout), 99);
    std::cout << "\n[4] New-hardware forecast (4x faster nodes) at 512 "
                 "nodes:\n"
              << "    predicted on paper : "
              << common::format_fixed(alloc.predicted_total, 2) << " s\n"
              << "    simulated 'actual' : "
              << common::format_fixed(run.model_seconds, 2) << " s\n";
  }

  // --- 5. How many nodes should this job ask for? -----------------------------
  const std::vector<int> sweep{64, 128, 256, 512, 1024, 2048, 4096};
  const core::SizeRecommendation rec =
      core::recommend_size(spec, sweep, 0.6);
  std::cout << "\n[5] Node-count recommendation (60 % efficiency floor):\n"
            << "    cost-efficient: " << rec.cost_efficient_nodes
            << " nodes ("
            << common::format_fixed(rec.cost_efficient_total, 1) << " s)\n"
            << "    fastest       : " << rec.fastest_nodes << " nodes ("
            << common::format_fixed(rec.fastest_total, 1) << " s)\n";
  return 0;
}
