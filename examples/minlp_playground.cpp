// The MINLP toolkit as a general-purpose library (the MINOTAUR role):
// build and solve a custom allocation problem that has nothing to do with
// CESM -- three services sharing a cluster, one restricted to
// power-of-two replica counts.
//
//   $ ./minlp_playground [cluster_nodes]
#include <cstdlib>
#include <cmath>
#include <iostream>

#include "hslb/common/table.hpp"
#include "hslb/minlp/branch_and_bound.hpp"

int main(int argc, char** argv) {
  using namespace hslb;

  const double cluster = argc > 1 ? std::atof(argv[1]) : 96.0;

  // Latency laws for three services: L_i(n) = a_i / n + d_i  (seconds).
  struct Service {
    const char* name;
    double a, d;
  };
  const Service services[] = {
      {"ingest", 4000.0, 2.0},
      {"index", 2500.0, 1.0},
      {"query", 6000.0, 4.0},
  };

  minlp::Model model;
  const auto T = model.add_variable("T", minlp::VarType::kContinuous, 0.0,
                                    lp::kInf);
  std::vector<std::size_t> n_vars;
  std::vector<std::size_t> t_vars;
  std::vector<std::pair<std::size_t, double>> budget;
  for (const Service& service : services) {
    const auto n = model.add_variable(std::string("n_") + service.name,
                                      minlp::VarType::kInteger, 1.0, cluster);
    const auto t = model.add_variable(std::string("t_") + service.name,
                                      minlp::VarType::kContinuous, 0.0,
                                      lp::kInf);
    const double a = service.a;
    const double d = service.d;
    auto fn = minlp::make_univariate(
        [a, d](double nodes) { return a / nodes + d; },
        [a](double nodes) { return -a / (nodes * nodes); },
        minlp::Curvature::kConvex);
    fn.as_expr = [a, d](const expr::Expr& nodes) { return a / nodes + d; };
    model.add_link(t, n, fn, service.name);
    // min-max objective: T >= every service latency.
    model.add_linear({{T, 1.0}, {t, -1.0}}, 0.0, lp::kInf);
    budget.emplace_back(n, 1.0);
    n_vars.push_back(n);
    t_vars.push_back(t);
  }
  model.add_linear(budget, -lp::kInf, cluster, "cluster budget");

  // The index tier only scales at power-of-two replica counts.
  std::vector<double> powers;
  for (double p = 1.0; p <= cluster; p *= 2.0) {
    powers.push_back(p);
  }
  model.restrict_to_set(n_vars[1], powers, /*use_sos=*/true, "index_replicas");

  model.minimize(model.var(T));

  const minlp::MinlpResult result = minlp::solve(model);
  std::cout << "status    : " << to_string(result.status) << '\n'
            << "worst lat.: " << common::format_fixed(result.objective, 3)
            << " s\n"
            << "solver    : " << result.stats.nodes_explored
            << " B&B nodes, " << result.stats.lp_solves << " LPs, "
            << result.stats.cuts_added << " cuts, "
            << common::format_fixed(result.stats.wall_seconds * 1e3, 2)
            << " ms\n\n";

  common::Table table({"service", "nodes", "latency,s"});
  for (std::size_t i = 0; i < 3; ++i) {
    table.add_row();
    table.cell(std::string(services[i].name));
    table.cell(static_cast<long long>(
        std::llround(result.x[n_vars[i]])));
    table.cell(result.x[t_vars[i]], 3);
  }
  std::cout << table;
  std::cout << "\n(The index tier lands on a power of two; the other tiers "
               "take whatever balances the worst-case latency.)\n";
  return 0;
}
