// Quickstart: the four HSLB steps on a small simulated CESM case.
//
//   $ ./quickstart
//
// 1. Gather   -- benchmark the coupled model at five machine sizes.
// 2. Fit      -- Table II least squares per component.
// 3. Solve    -- the Table I MINLP for a 128-node slice.
// 4. Execute  -- run at the optimal allocation and compare.
#include <cmath>
#include <iostream>

#include "hslb/hslb/pipeline.hpp"
#include "hslb/hslb/report.hpp"

int main() {
  using namespace hslb;

  core::PipelineConfig config;
  config.case_config = cesm::one_degree_case();   // simulated CESM 1.1.1, 1 degree
  config.total_nodes = 128;                       // the machine slice to tune
  config.gather_totals = {128, 256, 512, 1024, 2048};

  std::cout << "Running the HSLB pipeline on " << config.case_config.name
            << " targeting " << config.total_nodes << " nodes...\n";
  const core::HslbResult result = core::run_hslb(config);

  std::cout << "\nStep 2 -- fitted performance functions:\n"
            << core::render_fit_summary(result.fits);

  std::cout << "\nStep 3 -- optimal allocation (solver explored "
            << result.solver_result.stats.nodes_explored
            << " branch-and-bound nodes in "
            << common::format_fixed(
                   result.solver_result.stats.wall_seconds * 1e3, 1)
            << " ms):\n";
  common::Table alloc({"component", "nodes", "predicted,s", "actual,s"});
  for (const cesm::ComponentKind kind : cesm::kModeledComponents) {
    const core::ComponentOutcome& outcome = result.components.at(kind);
    alloc.add_row();
    alloc.cell(std::string(cesm::to_string(kind)));
    alloc.cell(static_cast<long long>(outcome.nodes));
    alloc.cell(outcome.predicted_seconds, 3);
    alloc.cell(outcome.actual_seconds, 3);
  }
  std::cout << alloc;

  std::cout << "\nStep 4 -- totals: predicted "
            << common::format_fixed(result.predicted_total, 3)
            << " s, actual "
            << common::format_fixed(result.actual_total, 3) << " s ("
            << common::format_fixed(
                   100.0 * std::fabs(result.actual_total -
                                     result.predicted_total) /
                       result.actual_total,
                   1)
            << " % prediction error)\n";

  std::cout << "\nThe resulting layout:\n"
            << core::render_layout_ascii(
                   result.allocation.as_layout(config.layout),
                   result.allocation.predicted_seconds);
  return 0;
}
