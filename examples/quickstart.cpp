// Quickstart: the four HSLB steps on a small simulated CESM case.
//
//   $ ./quickstart [--trace-out=<file.json>] [--metrics]
//                  [--fault-rate=<p>] [--fault-seed=<n>]
//                  [--solver-budget=<seconds>] [--solver-threads=<n>]
//                  [--threads=<n>] [--repeat=<n>]
//
// 1. Gather   -- benchmark the coupled model at five machine sizes.
// 2. Fit      -- Table II least squares per component.
// 3. Solve    -- the Table I MINLP for a 128-node slice.
// 4. Execute  -- run at the optimal allocation and compare.
//
// --trace-out writes a Chrome trace_event JSON of the whole run (open it in
// chrome://tracing or https://ui.perfetto.dev) and prints a flame summary;
// --metrics prints the solver/fitter counters next to the results.
// --fault-rate injects benchmark faults (launch failures, hangs,
// stragglers, corrupt timing files, noise spikes) at the given per-run
// probability and engages the resilience layer; --fault-seed varies the
// fault stream; --solver-budget bounds the MINLP wall clock in seconds;
// --solver-threads runs the deterministic parallel branch-and-bound with
// that many workers (the answer is byte-identical for every thread count).
// --threads/--repeat re-ask the solve through the allocation service
// (svc::AllocationService) with <threads> workers, <repeat> times, and
// report the cache hit rate plus agreement with the direct answer.
#include <atomic>
#include <cmath>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "hslb/hslb/pipeline.hpp"
#include "hslb/hslb/report.hpp"
#include "hslb/svc/service.hpp"

int main(int argc, char** argv) {
  using namespace hslb;

  std::string trace_out;
  bool show_metrics = false;
  double fault_rate = 0.0;
  std::uint64_t fault_seed = cesm::FaultSpec{}.seed;
  double solver_budget = 0.0;
  int solver_threads = 1;
  int service_threads = 0;
  int service_repeat = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--trace-out=", 0) == 0) {
      trace_out = arg.substr(std::strlen("--trace-out="));
    } else if (arg == "--metrics") {
      show_metrics = true;
    } else if (arg.rfind("--fault-rate=", 0) == 0) {
      fault_rate = std::stod(arg.substr(std::strlen("--fault-rate=")));
    } else if (arg.rfind("--fault-seed=", 0) == 0) {
      fault_seed = std::stoull(arg.substr(std::strlen("--fault-seed=")));
    } else if (arg.rfind("--solver-budget=", 0) == 0) {
      solver_budget = std::stod(arg.substr(std::strlen("--solver-budget=")));
    } else if (arg.rfind("--solver-threads=", 0) == 0) {
      solver_threads = std::stoi(arg.substr(std::strlen("--solver-threads=")));
    } else if (arg.rfind("--threads=", 0) == 0) {
      service_threads = std::stoi(arg.substr(std::strlen("--threads=")));
    } else if (arg.rfind("--repeat=", 0) == 0) {
      service_repeat = std::stoi(arg.substr(std::strlen("--repeat=")));
    } else {
      std::cerr << "usage: quickstart [--trace-out=<file.json>] [--metrics]"
                   " [--fault-rate=<p>] [--fault-seed=<n>]"
                   " [--solver-budget=<seconds>] [--solver-threads=<n>]"
                   " [--threads=<n>] [--repeat=<n>]\n";
      return 2;
    }
  }

  core::PipelineConfig config;
  config.case_config = cesm::one_degree_case();   // simulated CESM 1.1.1, 1 degree
  config.total_nodes = 128;                       // the machine slice to tune
  config.gather_totals = {128, 256, 512, 1024, 2048};
  if (fault_rate > 0.0) {
    config.faults = cesm::FaultSpec::uniform(fault_rate, fault_seed);
  }
  config.solver.max_wall_seconds = solver_budget;
  config.solver.threads = solver_threads;

  obs::TraceSession trace;
  obs::Registry metrics;
  if (!trace_out.empty()) {
    config.obs.trace = &trace;
  }
  if (show_metrics || !trace_out.empty()) {
    config.obs.metrics = &metrics;
  }

  std::cout << "Running the HSLB pipeline on " << config.case_config.name
            << " targeting " << config.total_nodes << " nodes...\n";
  const core::HslbResult result = core::run_hslb(config);

  std::cout << "\nStep 2 -- fitted performance functions:\n"
            << core::render_fit_summary(result.fits);

  std::cout << "\nStep 3 -- optimal allocation (solver explored "
            << result.solver_result.stats.nodes_explored
            << " branch-and-bound nodes in "
            << common::format_fixed(
                   result.solver_result.stats.wall_seconds * 1e3, 1)
            << " ms):\n";
  common::Table alloc({"component", "nodes", "predicted,s", "actual,s"});
  for (const cesm::ComponentKind kind : cesm::kModeledComponents) {
    const core::ComponentOutcome& outcome = result.components.at(kind);
    alloc.add_row();
    alloc.cell(std::string(cesm::to_string(kind)));
    alloc.cell(static_cast<long long>(outcome.nodes));
    alloc.cell(outcome.predicted_seconds, 3);
    alloc.cell(outcome.actual_seconds, 3);
  }
  std::cout << alloc;

  std::cout << "\nStep 4 -- totals: predicted "
            << common::format_fixed(result.predicted_total, 3)
            << " s, actual "
            << common::format_fixed(result.actual_total, 3) << " s ("
            << common::format_fixed(
                   100.0 * std::fabs(result.actual_total -
                                     result.predicted_total) /
                       result.actual_total,
                   1)
            << " % prediction error)\n";

  std::cout << "\nThe resulting layout:\n"
            << core::render_layout_ascii(
                   result.allocation.as_layout(config.layout),
                   result.allocation.predicted_seconds);

  const std::string resilience = core::render_resilience_block(result);
  if (!resilience.empty()) {
    std::cout << '\n' << resilience;
  }

  if (service_threads > 0 || service_repeat > 0) {
    // Re-ask the solved question through the allocation service: the fitted
    // curves ride along in the request, so only step 3 runs -- once.  Every
    // repeat after the first is a cache hit (or coalesces onto the first).
    const int threads = service_threads > 0 ? service_threads : 4;
    const int repeat = service_repeat > 0 ? service_repeat : 16;
    svc::ServiceConfig service_config;
    service_config.workers = threads;
    svc::AllocationService service(service_config);

    svc::AllocationRequest request;
    request.total_nodes = config.total_nodes;
    request.max_wall_seconds = config.solver.max_wall_seconds;
    request.solver_threads = solver_threads;
    for (const auto& [kind, fit] : result.fits) {
      request.fits[kind] = fit.model;
    }

    std::vector<std::thread> clients;
    std::atomic<int> agree{0};
    clients.reserve(static_cast<std::size_t>(threads));
    const int per_client = (repeat + threads - 1) / threads;
    for (int t = 0; t < threads; ++t) {
      clients.emplace_back([&] {
        for (int i = 0; i < per_client; ++i) {
          const svc::SolveOutcome outcome = service.solve(request);
          if (outcome.has_value() &&
              outcome.value().allocation.nodes == result.allocation.nodes) {
            agree.fetch_add(1);
          }
        }
      });
    }
    for (std::thread& client : clients) {
      client.join();
    }
    const svc::ServiceStats stats = service.stats();
    std::cout << "\nAllocation service (" << threads << " workers, "
              << stats.submitted << " identical requests): "
              << stats.solved << " solver run(s), " << stats.cache_hits
              << " cache hits, " << stats.coalesced << " coalesced; "
              << agree.load() << "/" << stats.submitted
              << " answers match the direct solve\n";
  }

  if (show_metrics) {
    std::cout << '\n' << core::render_metrics_block(metrics);
  }
  if (!trace_out.empty()) {
    std::ofstream out(trace_out, std::ios::binary);
    if (!out) {
      std::cerr << "cannot write trace to " << trace_out << '\n';
      return 1;
    }
    out << trace.to_chrome_json();
    std::cout << "\nTrace written to " << trace_out
              << " (open in chrome://tracing or ui.perfetto.dev)\n"
              << "Flame summary:\n"
              << trace.flame_summary();
  }
  return 0;
}
