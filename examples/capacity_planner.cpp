// Section IV-C: "prediction of the optimal layout and number of nodes to a
// job".  Sweep the machine-slice size, predict throughput and cost, and
// report both the cost-efficient point (where parallel efficiency drops
// below a threshold) and the fastest configuration.
//
//   $ ./capacity_planner [efficiency_threshold_percent]
#include <cstdlib>
#include <iostream>

#include "hslb/hslb/objectives.hpp"
#include "hslb/hslb/pipeline.hpp"
#include "hslb/hslb/report.hpp"

int main(int argc, char** argv) {
  using namespace hslb;

  double efficiency_floor = 0.60;
  if (argc > 1) {
    efficiency_floor = std::atof(argv[1]) / 100.0;
  }

  core::PipelineConfig base;
  base.case_config = cesm::one_degree_case();
  base.gather_totals = {128, 256, 512, 1024, 2048};
  base.total_nodes = 128;

  std::cout << "Capacity planning for " << base.case_config.name << "\n"
            << "(efficiency floor " << efficiency_floor * 100.0 << " %)\n\n";

  // One gather pass serves every size.
  const auto campaign = cesm::gather_benchmarks(
      base.case_config, base.layout, base.gather_totals, base.seed);

  common::Table table({"nodes", "predicted T,s", "sim-years/day",
                       "node-seconds", "efficiency,%"});
  double t_ref = 0.0;
  int n_ref = 0;
  int best_efficient = 0;
  double best_efficient_time = 0.0;
  int fastest = 0;
  double fastest_time = lp::kInf;

  for (int total = 64; total <= 2048; total *= 2) {
    core::PipelineConfig config = base;
    config.total_nodes = total;
    const core::HslbResult result =
        core::run_hslb_from_samples(config, campaign.samples);
    const double t = result.predicted_total;
    if (n_ref == 0) {
      n_ref = total;
      t_ref = t;
    }
    // Parallel efficiency relative to the smallest size: speedup / (n/n0).
    const double efficiency =
        (t_ref / t) / (static_cast<double>(total) / n_ref);
    table.add_row();
    table.cell(static_cast<long long>(total));
    table.cell(t, 2);
    table.cell(core::simulated_years_per_day(
                   base.case_config.simulated_days, t),
               2);
    table.cell(static_cast<double>(total) * t, 0);
    table.cell(100.0 * efficiency, 1);
    if (efficiency >= efficiency_floor) {
      best_efficient = total;
      best_efficient_time = t;
    }
    if (t < fastest_time) {
      fastest_time = t;
      fastest = total;
    }
  }
  std::cout << table << '\n';

  std::cout << "cost-efficient choice : " << best_efficient << " nodes ("
            << common::format_fixed(best_efficient_time, 1)
            << " s predicted; last size above the efficiency floor)\n";
  std::cout << "fastest choice        : " << fastest << " nodes ("
            << common::format_fixed(fastest_time, 1) << " s predicted)\n";
  std::cout << "\nAs the paper notes (IV-C), 'optimal' depends on the goal: "
               "shortest time to solution, or core-hours per simulated "
               "year.\n";
  return 0;
}
