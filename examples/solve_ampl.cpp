// A standalone MINLP solver executable: reads an AMPL-lite model file,
// solves it with the LP/NLP-based branch-and-bound, prints the solution --
// the reimplemented stack used the way the paper used AMPL + MINOTAUR.
//
//   $ ./solve_ampl model.mod
//   $ ./solve_ampl --demo          # solves a built-in Table-I-style model
#include <fstream>
#include <iostream>
#include <sstream>

#include "hslb/common/error.hpp"
#include "hslb/common/table.hpp"
#include "hslb/minlp/ampl.hpp"
#include "hslb/minlp/branch_and_bound.hpp"

namespace {

constexpr const char* kDemoModel = R"(# Layout-1-style allocation model (demo)
var T >= 0;
var n_atm integer >= 8 <= 128;
var n_ocn integer >= 2 <= 128;
var t_atm >= 0;
var t_ocn >= 0;
minimize obj: T;
s.t. atm_law: t_atm = 27000 / n_atm + 45;
s.t. ocn_law: t_ocn = 7800 / n_ocn + 41;
s.t. atm_bound: T >= t_atm;
s.t. ocn_bound: T >= t_ocn;
s.t. machine: n_atm + n_ocn <= 128;
set ocean_counts: n_ocn in {2, 4, 8, 16, 24, 32, 48, 64};
)";

}  // namespace

int main(int argc, char** argv) {
  using namespace hslb;

  std::string text;
  if (argc < 2 || std::string(argv[1]) == "--demo") {
    std::cout << "(no model file given; solving the built-in demo)\n\n"
              << kDemoModel << '\n';
    text = kDemoModel;
  } else {
    std::ifstream in(argv[1]);
    if (!in) {
      std::cerr << "cannot open " << argv[1] << '\n';
      return 1;
    }
    std::stringstream buffer;
    buffer << in.rdbuf();
    text = buffer.str();
  }

  try {
    const minlp::Model model = minlp::parse_ampl(text);
    std::cout << "parsed: " << model.num_vars() << " variables, "
              << model.linear_constraints().size() << " linear rows, "
              << model.links().size() << " links, "
              << model.nonlinear_constraints().size()
              << " nonlinear constraints, " << model.sos1_sets().size()
              << " SOS1 sets\n";

    const minlp::MinlpResult result = minlp::solve(model);
    std::cout << "status   : " << to_string(result.status) << '\n';
    if (!result.x.empty()) {
      std::cout << "objective: " << result.objective << '\n';
      common::Table table({"variable", "value"});
      for (std::size_t j = 0; j < model.num_vars(); ++j) {
        // Skip the SOS selection binaries; they are bookkeeping.
        if (model.variables()[j].type == minlp::VarType::kBinary) {
          continue;
        }
        table.add_row();
        table.cell(model.variables()[j].name);
        table.cell(result.x[j], 6);
      }
      std::cout << table;
    }
    std::cout << "solver   : " << result.stats.nodes_explored
              << " B&B nodes, " << result.stats.lp_solves << " LPs, "
              << result.stats.cuts_added << " cuts, "
              << common::format_fixed(result.stats.wall_seconds * 1e3, 2)
              << " ms\n";
  } catch (const Error& error) {
    std::cerr << "error: " << error.what() << '\n';
    return 1;
  }
  return 0;
}
