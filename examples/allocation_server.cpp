// An in-process "allocation server": the svc front end (solve cache ->
// coalescer -> worker pool -> HSLB pipeline) under a synthetic client load.
//
//   $ ./allocation_server [--workers=<n>] [--clients=<n>] [--requests=<n>]
//                         [--distinct=<n>] [--ttl=<seconds>]
//                         [--solver-threads=<n>] [--metrics] [--smoke]
//                         [--metrics-port=<port>] [--metrics-out=<file>]
//                         [--metrics-interval=<seconds>] [--trace-out=<file>]
//                         [--chaos-rate=<p>] [--chaos-seed=<n>]
//                         [--admission] [--deadline=<seconds>]
//                         [--corpus=<dir>] [--rebal]
//                         [--rebal-horizon=<n>] [--rebal-seed=<n>]
//
// <clients> threads issue <requests> allocation requests each, drawn from
// <distinct> distinct questions (different machine-slice sizes over one set
// of fitted Table II curves), then the serving counters are printed: how
// many requests hit the cache, how many coalesced onto an in-flight solve,
// and how many times the MINLP actually ran.  --smoke shrinks the workload
// to a CI-friendly size and asserts the invariants (exit 1 on violation).
//
// Telemetry endpoints: --metrics-port serves live Prometheus text on
// 127.0.0.1 (port 0 picks an ephemeral one, printed at startup) while the
// load runs; --metrics-out dumps the same exposition to a file every
// --metrics-interval seconds (default 1) plus once at exit; --trace-out
// writes the full request span tree as Chrome trace JSON at exit, ready for
// chrome://tracing or the hslb_trace analyzer.
//
// Fault drills: --chaos-rate injects deterministic faults (solver
// exceptions/stalls, cache poison, leader deaths, worker aborts) at the
// given total per-attempt probability, replayable under --chaos-seed; the
// degradation ladder then shows up in the serving table (stale/heuristic
// rows) and failed requests print their typed root cause (code, phase,
// message).  --admission turns on p99-driven shedding against --deadline.
//
// --corpus registers every scenario from a generated corpus directory
// (tools/hslb_scengen) in the service's case catalog and mixes
// scenario-by-name requests into the client stream, exercising the
// fingerprinted scenario cache keys and the N-component heuristic rung
// alongside the classic fitted-curve questions.
//
// --rebal runs the online rebalancing loop (src/rebal) after the client
// load, against the first catalog scenario that scripts drift (or a
// built-in drifting demo when none does): a drift-replay horizon is
// simulated twice (replay-identity check), compared against the
// never-rebalance static arm, and the drifting case is then requested
// through the service so the answer surfaces with the existing
// served/degraded response metadata.  --rebal-horizon and --rebal-seed
// control the replay; --smoke shrinks it and asserts the loop invariants.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "hslb/common/table.hpp"
#include "hslb/common/timing.hpp"
#include "hslb/hslb/report.hpp"
#include "hslb/obs/exposition.hpp"
#include "hslb/rebal/loop.hpp"
#include "hslb/scen/generate.hpp"
#include "hslb/scen/parse.hpp"
#include "hslb/svc/service.hpp"

namespace {

std::map<hslb::cesm::ComponentKind, hslb::perf::PerfModel> demo_fits() {
  using hslb::cesm::ComponentKind;
  using hslb::perf::PerfModel;
  using hslb::perf::PerfParams;
  std::map<ComponentKind, PerfModel> fits;
  fits[ComponentKind::kAtm] = PerfModel(PerfParams{40000.0, 0.001, 1.2, 10.0});
  fits[ComponentKind::kOcn] = PerfModel(PerfParams{25000.0, 0.002, 1.1, 20.0});
  fits[ComponentKind::kIce] = PerfModel(PerfParams{8000.0, 0.0, 1.0, 5.0});
  fits[ComponentKind::kLnd] = PerfModel(PerfParams{3000.0, 0.0, 1.0, 2.0});
  return fits;
}

// The drifting scenario the --rebal demo falls back to when no catalog
// scenario scripts drift: a 4-component layout with slow opposing trends
// and two regime shifts (atm up at step 60, ocn down at step 140).
hslb::scen::Scenario demo_drift_scenario() {
  return hslb::scen::parse_scenario(R"(scenario rebal_demo
machine nodes=48 cores_per_node=8 mem_gb_per_node=64
component atm curve=pow a=4000 b=0.5 c=1.2 d=10
component ocn curve=pow a=2500 b=0.4 c=1.1 d=8
component ice curve=pow a=800 b=0.2 c=1 d=4
component lnd curve=pow a=300 b=0.1 c=1 d=2
comm atm ocn 0.02
schedule ocn | (ice | lnd) -> atm
drift atm rate=0.0001 noise=0.02 shifts=60:1.6
drift ocn rate=-0.0001 noise=0.02 shifts=140:0.55
drift ice noise=0.015
)");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hslb;

  int workers = 4;
  int clients = 4;
  int requests_per_client = 32;
  int distinct = 8;
  double ttl_seconds = 0.0;
  int solver_threads = 1;
  bool show_metrics = false;
  bool smoke = false;
  int metrics_port = -1;  // -1 = no exposition server; 0 = ephemeral port
  std::string metrics_out;
  double metrics_interval = 1.0;
  std::string trace_out;
  double chaos_rate = 0.0;
  std::uint64_t chaos_seed = 0xC4A05ull;
  bool admission = false;
  double deadline_seconds = 0.0;
  std::string corpus_dir;
  bool rebal = false;
  long rebal_horizon = 400;
  std::uint64_t rebal_seed = 2026;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--workers=", 0) == 0) {
      workers = std::stoi(arg.substr(std::strlen("--workers=")));
    } else if (arg.rfind("--clients=", 0) == 0) {
      clients = std::stoi(arg.substr(std::strlen("--clients=")));
    } else if (arg.rfind("--requests=", 0) == 0) {
      requests_per_client = std::stoi(arg.substr(std::strlen("--requests=")));
    } else if (arg.rfind("--distinct=", 0) == 0) {
      distinct = std::stoi(arg.substr(std::strlen("--distinct=")));
    } else if (arg.rfind("--ttl=", 0) == 0) {
      ttl_seconds = std::stod(arg.substr(std::strlen("--ttl=")));
    } else if (arg.rfind("--solver-threads=", 0) == 0) {
      solver_threads = std::stoi(arg.substr(std::strlen("--solver-threads=")));
    } else if (arg == "--metrics") {
      show_metrics = true;
    } else if (arg == "--smoke") {
      smoke = true;
    } else if (arg.rfind("--metrics-port=", 0) == 0) {
      metrics_port = std::stoi(arg.substr(std::strlen("--metrics-port=")));
    } else if (arg.rfind("--metrics-out=", 0) == 0) {
      metrics_out = arg.substr(std::strlen("--metrics-out="));
    } else if (arg.rfind("--metrics-interval=", 0) == 0) {
      metrics_interval =
          std::stod(arg.substr(std::strlen("--metrics-interval=")));
    } else if (arg.rfind("--trace-out=", 0) == 0) {
      trace_out = arg.substr(std::strlen("--trace-out="));
    } else if (arg.rfind("--chaos-rate=", 0) == 0) {
      chaos_rate = std::stod(arg.substr(std::strlen("--chaos-rate=")));
    } else if (arg.rfind("--chaos-seed=", 0) == 0) {
      chaos_seed = std::stoull(arg.substr(std::strlen("--chaos-seed=")));
    } else if (arg == "--admission") {
      admission = true;
    } else if (arg.rfind("--deadline=", 0) == 0) {
      deadline_seconds = std::stod(arg.substr(std::strlen("--deadline=")));
    } else if (arg.rfind("--corpus=", 0) == 0) {
      corpus_dir = arg.substr(std::strlen("--corpus="));
    } else if (arg == "--rebal") {
      rebal = true;
    } else if (arg.rfind("--rebal-horizon=", 0) == 0) {
      rebal_horizon = std::stol(arg.substr(std::strlen("--rebal-horizon=")));
    } else if (arg.rfind("--rebal-seed=", 0) == 0) {
      rebal_seed = std::stoull(arg.substr(std::strlen("--rebal-seed=")));
    } else {
      std::cerr << "usage: allocation_server [--workers=<n>] [--clients=<n>]"
                   " [--requests=<n>] [--distinct=<n>] [--ttl=<seconds>]"
                   " [--solver-threads=<n>] [--metrics] [--smoke]"
                   " [--metrics-port=<port>] [--metrics-out=<file>]"
                   " [--metrics-interval=<seconds>] [--trace-out=<file>]"
                   " [--chaos-rate=<p>] [--chaos-seed=<n>] [--admission]"
                   " [--deadline=<seconds>] [--corpus=<dir>] [--rebal]"
                   " [--rebal-horizon=<n>] [--rebal-seed=<n>]\n";
      return 2;
    }
  }
  if (smoke) {
    workers = 2;
    clients = 3;
    requests_per_client = 12;
    distinct = 4;
    rebal_horizon = std::min(rebal_horizon, 200L);
  }

  obs::Registry registry;
  obs::TraceSession trace;
  svc::ServiceConfig config;
  config.workers = workers;
  config.cache.ttl_seconds = ttl_seconds;
  config.default_deadline_seconds = deadline_seconds;
  if (chaos_rate > 0.0) {
    config.chaos = svc::ChaosSpec::uniform(chaos_rate, chaos_seed);
    // Keep expired entries around: the stale-cache brownout rung needs
    // something checksummed to serve when the exact solve dies.
    config.cache.keep_expired = true;
    std::cout << "chaos: rate " << chaos_rate << ", seed " << chaos_seed
              << " (deterministic; same seed replays the same faults)\n";
  }
  config.admission.enabled = admission;
  config.obs.metrics = &registry;
  if (!trace_out.empty()) {
    config.obs.trace = &trace;
  }
  svc::AllocationService service(config);

  // Corpus scenarios become named catalog cases; the client load below
  // cycles through the small-family names (large scenarios stay registered
  // and addressable, but would dominate the demo's wall clock).
  std::vector<std::string> scenario_names;
  if (!corpus_dir.empty()) {
    const auto corpus = scen::load_corpus(corpus_dir);
    if (!corpus.has_value()) {
      std::cerr << "cannot load corpus: " << corpus.error().path << ": "
                << corpus.error().message << '\n';
      return 1;
    }
    for (const scen::Scenario& scenario : *corpus) {
      service.register_scenario(scenario);
      if (scenario.name.rfind("small", 0) == 0) {
        scenario_names.push_back(scenario.name);
      }
    }
    if (scenario_names.empty()) {
      for (const scen::Scenario& scenario : *corpus) {
        scenario_names.push_back(scenario.name);
      }
    }
    std::cout << "corpus: " << corpus->size() << " scenarios registered from "
              << corpus_dir << ", " << scenario_names.size()
              << " mixed into the client load\n";
  }

  std::optional<obs::ExpositionServer> exposition;
  if (metrics_port >= 0) {
    try {
      exposition.emplace(&registry, metrics_port);
    } catch (const std::exception& e) {
      std::cerr << "cannot start metrics endpoint: " << e.what() << '\n';
      return 1;
    }
    std::cout << "metrics: http://127.0.0.1:" << exposition->port()
              << "/metrics\n";
  }

  // Periodic Prometheus dumps while the load runs (atomic tmp+rename, so a
  // scraper tailing the file never sees a torn write).
  std::atomic<bool> keep_dumping{true};
  std::thread dumper;
  if (!metrics_out.empty()) {
    dumper = std::thread([&] {
      const auto step = std::chrono::milliseconds(50);
      auto next = std::chrono::steady_clock::now();
      while (keep_dumping.load()) {
        obs::write_metrics_file(metrics_out, registry.snapshot());
        next += std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(std::max(0.05, metrics_interval)));
        while (keep_dumping.load() && std::chrono::steady_clock::now() < next) {
          std::this_thread::sleep_for(step);
        }
      }
    });
  }

  const auto fits = demo_fits();
  std::cout << "allocation server: " << workers << " workers, " << clients
            << " clients x " << requests_per_client << " requests over "
            << distinct << " distinct questions\n";

  const common::WallTimer timer;
  std::vector<std::thread> threads;
  std::vector<int> failures(static_cast<std::size_t>(clients), 0);
  // Typed root causes of failed requests, tallied by (code, phase, message)
  // so the operator sees *why* requests failed, not just how many.
  std::mutex error_mutex;
  std::map<std::string, int> error_tally;
  threads.reserve(static_cast<std::size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      for (int i = 0; i < requests_per_client; ++i) {
        svc::AllocationRequest request;
        request.solver_threads = solver_threads;
        if (!scenario_names.empty() && (i + c) % 3 == 2) {
          // Every third request asks for a corpus scenario by name; the
          // cache key carries the scenario's fingerprint, so collisions
          // dedupe exactly like the classic questions.
          request.case_name = scenario_names[static_cast<std::size_t>(i + c) %
                                             scenario_names.size()];
          request.max_nodes = 20000;
          request.max_wall_seconds = 10.0;
        } else {
          request.fits = fits;
          // Walk the distinct questions in a client-specific order so the
          // very first wave already collides across clients.
          request.total_nodes = 64 + 32 * ((i + c) % distinct);
        }
        const svc::SolveOutcome outcome = service.solve(request);
        if (!outcome.has_value()) {
          ++failures[static_cast<std::size_t>(c)];
          std::string line = std::string(svc::to_string(outcome.error().code));
          if (!outcome.error().phase.empty()) {
            line += " [phase: " + outcome.error().phase + "]";
          }
          if (!outcome.error().message.empty()) {
            line += " " + outcome.error().message;
          }
          const std::lock_guard<std::mutex> lock(error_mutex);
          ++error_tally[line];
        }
      }
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  const double elapsed = timer.seconds();

  if (dumper.joinable()) {
    keep_dumping.store(false);
    dumper.join();
  }
  if (!metrics_out.empty()) {
    // Final snapshot with the complete run's counters.
    if (!obs::write_metrics_file(metrics_out, registry.snapshot())) {
      std::cerr << "cannot write " << metrics_out << '\n';
      return 1;
    }
    std::cout << "metrics snapshot written to " << metrics_out << '\n';
  }
  if (!trace_out.empty()) {
    std::ofstream out(trace_out);
    out << trace.to_chrome_json();
    if (!out) {
      std::cerr << "cannot write " << trace_out << '\n';
      return 1;
    }
    std::cout << "trace written to " << trace_out << '\n';
  }

  const svc::ServiceStats stats = service.stats();
  const svc::CacheStats cache = service.cache_stats();
  int failed = 0;
  for (const int f : failures) {
    failed += f;
  }

  common::Table table({"counter", "value"});
  const auto row = [&table](const std::string& name, long long value) {
    table.add_row();
    table.cell(name);
    table.cell(value);
  };
  row("requests submitted", stats.submitted);
  row("cache hits", stats.cache_hits);
  row("coalesced onto in-flight solves", stats.coalesced);
  row("solver executions", stats.solved);
  row("shed (queue full)", stats.shed_queue_full);
  row("shed (deadline)", stats.shed_deadline);
  if (admission) {
    row("shed (admission overload)", stats.shed_overload);
  }
  if (chaos_rate > 0.0) {
    row("chaos faults injected", stats.chaos_injected);
    row("hedged retries", stats.hedged_retries);
    row("served stale (brownout)", stats.served_stale);
    row("served heuristic (brownout)", stats.served_heuristic);
    row("shed (breaker open)", stats.shed_breaker);
    row("cache poison detected", cache.poison_detected);
  }
  row("failed", failed);
  std::cout << table;
  if (!error_tally.empty()) {
    std::cout << "failure root causes:\n";
    for (const auto& [line, count] : error_tally) {
      std::cout << "  " << count << "x " << line << '\n';
    }
  }

  const long long total = stats.submitted;
  const double hit_rate =
      total > 0 ? 100.0 * static_cast<double>(cache.hits) /
                      static_cast<double>(total)
                : 0.0;
  std::cout << "throughput : "
            << common::format_fixed(
                   static_cast<double>(total) / elapsed, 1)
            << " req/s (" << common::format_fixed(elapsed * 1e3, 1)
            << " ms total)\n"
            << "hit rate   : " << common::format_fixed(hit_rate, 1)
            << " % of all requests served from the cache\n";
  if (show_metrics) {
    std::cout << '\n' << core::render_metrics_block(registry);
  }

  if (rebal) {
    // Pick the drifting case: the first catalog scenario that scripts
    // drift, else the built-in demo (registered so it is addressable like
    // any other catalog case).
    scen::Scenario drifting = demo_drift_scenario();
    for (const std::string& name : scenario_names) {
      const auto registered = service.find_scenario(name);
      if (registered != nullptr && !registered->drift.empty()) {
        drifting = *registered;
        break;
      }
    }
    service.register_scenario(drifting);

    rebal::LoopOptions loop_options;
    loop_options.seed = rebal_seed;
    loop_options.horizon = rebal_horizon;
    loop_options.solver_threads = solver_threads;
    // The small demo layouts concentrate load in few components, so a
    // moderate imbalance is already worth acting on.
    loop_options.detector.fire_threshold = 0.08;
    loop_options.detector.clear_threshold = 0.03;
    rebal::LoopOptions static_options = loop_options;
    static_options.rebalance = false;

    std::cout << "\nrebalancing loop: scenario " << drifting.name
              << ", horizon " << rebal_horizon << ", seed " << rebal_seed
              << '\n';
    const rebal::HorizonResult live = rebal::run_horizon(drifting,
                                                         loop_options);
    const rebal::HorizonResult replay = rebal::run_horizon(drifting,
                                                           loop_options);
    const rebal::HorizonResult fixed = rebal::run_horizon(drifting,
                                                          static_options);

    common::Table loop_table({"arm", "core-hours", "fires", "rebalances",
                              "heuristic", "fingerprint"});
    const auto loop_row = [&loop_table](const std::string& arm,
                                        const rebal::HorizonResult& r) {
      loop_table.add_row();
      loop_table.cell(arm);
      loop_table.cell(common::format_fixed(r.core_hours, 1));
      loop_table.cell(static_cast<long long>(r.detector_fires));
      loop_table.cell(static_cast<long long>(r.rebalances));
      loop_table.cell(static_cast<long long>(r.heuristic_fallbacks));
      loop_table.cell(r.replay_fingerprint);
    };
    loop_row("static", fixed);
    loop_row("rebalancing", live);
    std::cout << loop_table;
    const double saved = fixed.core_hours - live.core_hours;
    std::cout << "core-hours saved vs static: "
              << common::format_fixed(saved, 1) << " ("
              << common::format_fixed(100.0 * saved / fixed.core_hours, 2)
              << " %)\nreplay identity: "
              << (live.replay_fingerprint == replay.replay_fingerprint
                      ? "ok"
                      : "BROKEN")
              << " (two runs, same seed)\n";

    // Surface the drifting case through the service: the answer carries the
    // ordinary served/degraded response metadata, so a brownout on this
    // path is flagged exactly like one on the client load above.
    svc::AllocationRequest request;
    request.case_name = drifting.name;
    request.max_nodes = 20000;
    request.max_wall_seconds = 10.0;
    request.solver_threads = solver_threads;
    const svc::SolveOutcome outcome = service.solve(request);
    if (outcome.has_value()) {
      std::cout << "service solve of " << drifting.name << ": served "
                << svc::to_string(outcome->served)
                << (outcome->degraded ? " (degraded)" : "")
                << ", objective "
                << common::format_fixed(outcome->scenario_objective, 3)
                << " s/step\n";
    } else {
      std::cout << "service solve of " << drifting.name << " failed: "
                << svc::to_string(outcome.error().code) << '\n';
    }

    if (smoke) {
      // Loop invariants: the detector fires on the scripted shifts, at
      // least one fire is adopted, rebalancing beats never-rebalancing on
      // machine time, replays are byte-identical per seed, and the service
      // answers the drifting case exactly (no chaos on this path).
      const bool service_ok = outcome.has_value() && !outcome->degraded &&
                              outcome->served == svc::ServeLevel::kExact;
      if (live.detector_fires < 1 || live.rebalances < 1 ||
          live.core_hours >= fixed.core_hours ||
          live.replay_fingerprint != replay.replay_fingerprint ||
          !service_ok) {
        std::cerr << "rebal smoke check failed\n";
        return 1;
      }
      std::cout << "rebal smoke check passed\n";
    }
  }

  if (smoke) {
    // Invariants the service guarantees regardless of scheduling: every
    // request resolves, and distinct questions bound the solver executions.
    // Under chaos, failed attempts legitimately re-run the solver and some
    // requests fail by design, so only the resolves-everything invariant
    // holds.
    const long long expected =
        static_cast<long long>(clients) * requests_per_client;
    const bool chaos_on = chaos_rate > 0.0;
    const long long distinct_questions =
        distinct + static_cast<long long>(scenario_names.size());
    if (stats.submitted != expected ||
        (!chaos_on &&
         (failed != 0 || stats.solved > distinct_questions ||
          stats.cache_hits + stats.coalesced + stats.solved < expected))) {
      std::cerr << "smoke check failed\n";
      return 1;
    }
    std::cout << "smoke check passed\n";
  }
  return 0;
}
