// Explore the three Figure 1 layouts at a chosen machine size: optimize
// each with HSLB, draw the area diagrams, and rank them -- the paper's
// Figure 4 experiment as an interactive tool.
//
//   $ ./layout_explorer [total_nodes]
#include <algorithm>
#include <cstdlib>
#include <cmath>
#include <iostream>

#include "hslb/hslb/pipeline.hpp"
#include "hslb/hslb/report.hpp"

int main(int argc, char** argv) {
  using namespace hslb;

  const int total_nodes = argc > 1 ? std::atoi(argv[1]) : 256;

  core::PipelineConfig base;
  base.case_config = cesm::one_degree_case();
  base.gather_totals = {128, 256, 512, 1024, 2048};
  base.total_nodes = total_nodes;

  std::cout << "Optimizing all three component layouts at " << total_nodes
            << " nodes...\n";
  const auto campaign = cesm::gather_benchmarks(
      base.case_config, cesm::LayoutKind::kHybrid, base.gather_totals,
      base.seed);

  struct Entry {
    cesm::LayoutKind kind;
    double predicted;
    double actual;
  };
  std::vector<Entry> ranking;

  for (const cesm::LayoutKind kind :
       {cesm::LayoutKind::kHybrid, cesm::LayoutKind::kSequentialGroup,
        cesm::LayoutKind::kFullySequential}) {
    core::PipelineConfig config = base;
    config.layout = kind;
    const core::HslbResult result =
        core::run_hslb_from_samples(config, campaign.samples);
    const cesm::Layout layout = result.allocation.as_layout(kind);
    const cesm::RunResult run =
        cesm::run_case(base.case_config, layout, base.seed + 1);

    std::cout << '\n'
              << core::render_layout_ascii(
                     layout, result.allocation.predicted_seconds)
              << "  predicted " << common::format_fixed(result.predicted_total, 1)
              << " s, measured " << common::format_fixed(run.model_seconds, 1)
              << " s\n";
    ranking.push_back({kind, result.predicted_total, run.model_seconds});
  }

  std::cout << "\nRanking (fastest first):\n";
  std::sort(ranking.begin(), ranking.end(),
            [](const Entry& a, const Entry& b) { return a.actual < b.actual; });
  for (std::size_t i = 0; i < ranking.size(); ++i) {
    std::cout << "  " << i + 1 << ". " << to_string(ranking[i].kind) << " -- "
              << common::format_fixed(ranking[i].actual, 1) << " s\n";
  }
  return 0;
}
