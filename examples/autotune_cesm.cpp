// Auto-tune a simulated CESM case end to end and compare against the
// manual-expert baseline -- the paper's headline workflow as a CLI tool.
//
//   $ ./autotune_cesm [1deg|eighth] [total_nodes] [--unconstrained-ocean]
//                     [--trace-out=<file.json>] [--metrics]
//                     [--fault-rate=<p>] [--fault-seed=<n>]
//                     [--solver-budget=<seconds>] [--solver-threads=<n>]
//                     [--threads=<n>] [--repeat=<n>]
//
// Examples:
//   ./autotune_cesm                      # 1-degree case at 128 nodes
//   ./autotune_cesm eighth 32768         # the paper's largest experiment
//   ./autotune_cesm eighth 32768 --unconstrained-ocean
//   ./autotune_cesm 1deg 512 --tune-ice        # learn CICE decompositions first
//   ./autotune_cesm 1deg 512 --trace-out=hslb.json --metrics
//   ./autotune_cesm 1deg 512 --fault-rate=0.2  # faulty campaign, resilient run
//   ./autotune_cesm 1deg 512 --threads=4 --repeat=32  # service path: replay
//                                        # the solve through the allocation
//                                        # service and report the hit rate
#include <atomic>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "hslb/hslb/manual_tuner.hpp"
#include "hslb/hslb/objectives.hpp"
#include "hslb/hslb/pipeline.hpp"
#include "hslb/hslb/report.hpp"
#include "hslb/svc/service.hpp"

int main(int argc, char** argv) {
  using namespace hslb;

  std::string case_name = "1deg";
  int total_nodes = 128;
  bool constrain_ocean = true;
  bool tune_ice = false;
  std::string trace_out;
  bool show_metrics = false;
  double fault_rate = 0.0;
  std::uint64_t fault_seed = cesm::FaultSpec{}.seed;
  double solver_budget = 0.0;
  int solver_threads = 1;
  int service_threads = 0;
  int service_repeat = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--unconstrained-ocean") == 0) {
      constrain_ocean = false;
    } else if (std::strcmp(argv[i], "--tune-ice") == 0) {
      tune_ice = true;
    } else if (std::strncmp(argv[i], "--trace-out=", 12) == 0) {
      trace_out = argv[i] + 12;
    } else if (std::strcmp(argv[i], "--metrics") == 0) {
      show_metrics = true;
    } else if (std::strncmp(argv[i], "--fault-rate=", 13) == 0) {
      fault_rate = std::stod(std::string(argv[i] + 13));
    } else if (std::strncmp(argv[i], "--fault-seed=", 13) == 0) {
      fault_seed = std::stoull(std::string(argv[i] + 13));
    } else if (std::strncmp(argv[i], "--solver-budget=", 16) == 0) {
      solver_budget = std::stod(std::string(argv[i] + 16));
    } else if (std::strncmp(argv[i], "--solver-threads=", 17) == 0) {
      solver_threads = std::atoi(argv[i] + 17);
    } else if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      service_threads = std::atoi(argv[i] + 10);
    } else if (std::strncmp(argv[i], "--repeat=", 9) == 0) {
      service_repeat = std::atoi(argv[i] + 9);
    } else if (std::isdigit(static_cast<unsigned char>(argv[i][0])) != 0) {
      total_nodes = std::atoi(argv[i]);
    } else {
      case_name = argv[i];
    }
  }

  core::PipelineConfig config;
  if (case_name == "eighth" || case_name == "1/8") {
    config.case_config = cesm::eighth_degree_case();
    config.gather_totals = {4096, 8192, 16384, 24576, 32768};
    if (total_nodes == 128) {
      total_nodes = 8192;  // a sensible default for the large case
    }
  } else {
    config.case_config = cesm::one_degree_case();
    config.gather_totals = {128, 256, 512, 1024, 2048};
  }
  config.total_nodes = total_nodes;
  config.constrain_ocean = constrain_ocean;
  config.tune_ice_decomposition = tune_ice;
  if (fault_rate > 0.0) {
    config.faults = cesm::FaultSpec::uniform(fault_rate, fault_seed);
  }
  config.solver.max_wall_seconds = solver_budget;
  config.solver.threads = solver_threads;

  obs::TraceSession trace;
  obs::Registry metrics;
  if (!trace_out.empty()) {
    config.obs.trace = &trace;
  }
  if (show_metrics || !trace_out.empty()) {
    config.obs.metrics = &metrics;
  }

  std::cout << "case        : " << config.case_config.name << '\n'
            << "machine     : " << config.case_config.machine.name << '\n'
            << "target size : " << total_nodes << " nodes ("
            << config.case_config.machine.cores(total_nodes) << " cores)\n"
            << "ocean counts: "
            << (constrain_ocean ? "restricted to the hard-coded set"
                                : "unconstrained (any integer)")
            << '\n'
            << "ice tuning  : "
            << (tune_ice ? "ML decomposition policy (ref. [10])"
                         : "CICE defaults")
            << "\n\n";

  const core::HslbResult hslb = core::run_hslb(config);

  core::ManualTunerConfig manual_config;
  manual_config.total_nodes = total_nodes;
  manual_config.constrain_ocean = constrain_ocean;
  const core::ManualResult manual =
      core::run_manual(config.case_config, manual_config, hslb.samples);

  std::cout << "Table III style comparison:\n"
            << core::render_table3_block(manual, hslb) << '\n';

  const double gain = 100.0 * (1.0 - hslb.actual_total / manual.actual_total);
  std::cout << "HSLB vs manual: "
            << common::format_fixed(gain, 1) << " % "
            << (gain >= 0 ? "faster" : "slower") << '\n';

  std::cout << "throughput    : "
            << common::format_fixed(
                   core::simulated_years_per_day(
                       config.case_config.simulated_days, hslb.actual_total),
                   2)
            << " simulated years/day (HSLB) vs "
            << common::format_fixed(
                   core::simulated_years_per_day(
                       config.case_config.simulated_days,
                       manual.actual_total),
                   2)
            << " (manual)\n";

  std::cout << "\nTiming file of the tuned run:\n"
            << cesm::render_timing_file(config.case_config, hslb.run);

  const std::string resilience = core::render_resilience_block(hslb);
  if (!resilience.empty()) {
    std::cout << '\n' << resilience;
  }

  if (service_threads > 0 || service_repeat > 0) {
    // Replay the tuned question through the allocation service, carrying the
    // fitted curves in the request: the MINLP runs once, every other repeat
    // is served from the cache or coalesced onto the in-flight solve.
    const int threads = service_threads > 0 ? service_threads : 4;
    const int repeat = service_repeat > 0 ? service_repeat : 32;
    svc::ServiceConfig service_config;
    service_config.workers = threads;
    svc::AllocationService service(service_config);

    svc::AllocationRequest request;
    request.case_name =
        config.case_config.name == cesm::eighth_degree_case().name ? "eighth"
                                                                   : "1deg";
    request.total_nodes = total_nodes;
    request.constrain_ocean = constrain_ocean;
    request.max_wall_seconds = solver_budget;
    request.solver_threads = solver_threads;
    for (const auto& [kind, fit] : hslb.fits) {
      request.fits[kind] = fit.model;
    }

    std::vector<std::thread> clients;
    std::atomic<int> agree{0};
    clients.reserve(static_cast<std::size_t>(threads));
    const int per_client = (repeat + threads - 1) / threads;
    for (int t = 0; t < threads; ++t) {
      clients.emplace_back([&] {
        for (int i = 0; i < per_client; ++i) {
          const svc::SolveOutcome outcome = service.solve(request);
          if (outcome.has_value() &&
              outcome.value().allocation.nodes == hslb.allocation.nodes) {
            agree.fetch_add(1);
          }
        }
      });
    }
    for (std::thread& client : clients) {
      client.join();
    }
    const svc::ServiceStats stats = service.stats();
    std::cout << "\nAllocation service (" << threads << " workers, "
              << stats.submitted << " identical requests): "
              << stats.solved << " solver run(s), " << stats.cache_hits
              << " cache hits, " << stats.coalesced << " coalesced; "
              << agree.load() << "/" << stats.submitted
              << " answers match the direct solve\n";
  }

  if (show_metrics) {
    std::cout << '\n' << core::render_metrics_block(metrics);
  }
  if (!trace_out.empty()) {
    std::ofstream out(trace_out, std::ios::binary);
    if (!out) {
      std::cerr << "cannot write trace to " << trace_out << '\n';
      return 1;
    }
    out << trace.to_chrome_json();
    std::cout << "\nTrace written to " << trace_out
              << " (open in chrome://tracing or ui.perfetto.dev)\n"
              << "Flame summary:\n"
              << trace.flame_summary();
  }
  return 0;
}
