file(REMOVE_RECURSE
  "CMakeFiles/test_minlp_property.dir/minlp_property_test.cpp.o"
  "CMakeFiles/test_minlp_property.dir/minlp_property_test.cpp.o.d"
  "test_minlp_property"
  "test_minlp_property.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_minlp_property.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
