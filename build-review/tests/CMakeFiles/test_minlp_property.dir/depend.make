# Empty dependencies file for test_minlp_property.
# This may be replaced when dependencies are built.
