# Empty dependencies file for test_cesm_grid.
# This may be replaced when dependencies are built.
