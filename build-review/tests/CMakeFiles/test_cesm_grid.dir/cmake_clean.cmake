file(REMOVE_RECURSE
  "CMakeFiles/test_cesm_grid.dir/cesm_grid_test.cpp.o"
  "CMakeFiles/test_cesm_grid.dir/cesm_grid_test.cpp.o.d"
  "test_cesm_grid"
  "test_cesm_grid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cesm_grid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
