file(REMOVE_RECURSE
  "CMakeFiles/test_lp_property.dir/lp_property_test.cpp.o"
  "CMakeFiles/test_lp_property.dir/lp_property_test.cpp.o.d"
  "test_lp_property"
  "test_lp_property.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lp_property.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
