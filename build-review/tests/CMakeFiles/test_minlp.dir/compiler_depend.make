# Empty compiler generated dependencies file for test_minlp.
# This may be replaced when dependencies are built.
