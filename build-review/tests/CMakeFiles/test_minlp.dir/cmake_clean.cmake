file(REMOVE_RECURSE
  "CMakeFiles/test_minlp.dir/minlp_test.cpp.o"
  "CMakeFiles/test_minlp.dir/minlp_test.cpp.o.d"
  "test_minlp"
  "test_minlp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_minlp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
