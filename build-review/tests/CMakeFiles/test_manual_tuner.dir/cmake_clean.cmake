file(REMOVE_RECURSE
  "CMakeFiles/test_manual_tuner.dir/manual_tuner_test.cpp.o"
  "CMakeFiles/test_manual_tuner.dir/manual_tuner_test.cpp.o.d"
  "test_manual_tuner"
  "test_manual_tuner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_manual_tuner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
