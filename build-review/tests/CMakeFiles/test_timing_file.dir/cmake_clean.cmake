file(REMOVE_RECURSE
  "CMakeFiles/test_timing_file.dir/timing_file_test.cpp.o"
  "CMakeFiles/test_timing_file.dir/timing_file_test.cpp.o.d"
  "test_timing_file"
  "test_timing_file.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_timing_file.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
