# Empty compiler generated dependencies file for test_timing_file.
# This may be replaced when dependencies are built.
