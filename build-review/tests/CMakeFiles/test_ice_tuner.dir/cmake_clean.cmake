file(REMOVE_RECURSE
  "CMakeFiles/test_ice_tuner.dir/ice_tuner_test.cpp.o"
  "CMakeFiles/test_ice_tuner.dir/ice_tuner_test.cpp.o.d"
  "test_ice_tuner"
  "test_ice_tuner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ice_tuner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
