file(REMOVE_RECURSE
  "CMakeFiles/test_lp.dir/lp_test.cpp.o"
  "CMakeFiles/test_lp.dir/lp_test.cpp.o.d"
  "test_lp"
  "test_lp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
