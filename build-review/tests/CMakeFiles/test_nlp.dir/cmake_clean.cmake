file(REMOVE_RECURSE
  "CMakeFiles/test_nlp.dir/nlp_test.cpp.o"
  "CMakeFiles/test_nlp.dir/nlp_test.cpp.o.d"
  "test_nlp"
  "test_nlp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nlp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
