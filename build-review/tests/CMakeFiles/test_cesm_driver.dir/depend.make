# Empty dependencies file for test_cesm_driver.
# This may be replaced when dependencies are built.
