file(REMOVE_RECURSE
  "CMakeFiles/test_cesm_driver.dir/cesm_driver_test.cpp.o"
  "CMakeFiles/test_cesm_driver.dir/cesm_driver_test.cpp.o.d"
  "test_cesm_driver"
  "test_cesm_driver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cesm_driver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
