file(REMOVE_RECURSE
  "CMakeFiles/test_whatif.dir/whatif_test.cpp.o"
  "CMakeFiles/test_whatif.dir/whatif_test.cpp.o.d"
  "test_whatif"
  "test_whatif.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_whatif.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
