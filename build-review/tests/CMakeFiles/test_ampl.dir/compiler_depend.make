# Empty compiler generated dependencies file for test_ampl.
# This may be replaced when dependencies are built.
