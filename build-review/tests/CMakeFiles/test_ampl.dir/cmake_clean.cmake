file(REMOVE_RECURSE
  "CMakeFiles/test_ampl.dir/ampl_test.cpp.o"
  "CMakeFiles/test_ampl.dir/ampl_test.cpp.o.d"
  "test_ampl"
  "test_ampl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ampl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
