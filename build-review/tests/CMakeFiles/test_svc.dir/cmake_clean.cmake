file(REMOVE_RECURSE
  "CMakeFiles/test_svc.dir/svc_test.cpp.o"
  "CMakeFiles/test_svc.dir/svc_test.cpp.o.d"
  "test_svc"
  "test_svc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_svc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
