# Empty dependencies file for test_layout_model.
# This may be replaced when dependencies are built.
