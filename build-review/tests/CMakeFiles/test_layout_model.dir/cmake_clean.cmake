file(REMOVE_RECURSE
  "CMakeFiles/test_layout_model.dir/layout_model_test.cpp.o"
  "CMakeFiles/test_layout_model.dir/layout_model_test.cpp.o.d"
  "test_layout_model"
  "test_layout_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_layout_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
