file(REMOVE_RECURSE
  "CMakeFiles/test_cesm_component.dir/cesm_component_test.cpp.o"
  "CMakeFiles/test_cesm_component.dir/cesm_component_test.cpp.o.d"
  "test_cesm_component"
  "test_cesm_component.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cesm_component.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
