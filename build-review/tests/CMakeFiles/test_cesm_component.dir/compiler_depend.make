# Empty compiler generated dependencies file for test_cesm_component.
# This may be replaced when dependencies are built.
