file(REMOVE_RECURSE
  "CMakeFiles/hslb_common.dir/common/rng.cpp.o"
  "CMakeFiles/hslb_common.dir/common/rng.cpp.o.d"
  "CMakeFiles/hslb_common.dir/common/table.cpp.o"
  "CMakeFiles/hslb_common.dir/common/table.cpp.o.d"
  "CMakeFiles/hslb_common.dir/common/timing.cpp.o"
  "CMakeFiles/hslb_common.dir/common/timing.cpp.o.d"
  "libhslb_common.a"
  "libhslb_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hslb_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
