# Empty compiler generated dependencies file for hslb_common.
# This may be replaced when dependencies are built.
