file(REMOVE_RECURSE
  "libhslb_common.a"
)
