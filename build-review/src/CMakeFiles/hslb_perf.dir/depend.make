# Empty dependencies file for hslb_perf.
# This may be replaced when dependencies are built.
