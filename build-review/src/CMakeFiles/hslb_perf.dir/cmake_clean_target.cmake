file(REMOVE_RECURSE
  "libhslb_perf.a"
)
