file(REMOVE_RECURSE
  "CMakeFiles/hslb_perf.dir/perf/fit.cpp.o"
  "CMakeFiles/hslb_perf.dir/perf/fit.cpp.o.d"
  "CMakeFiles/hslb_perf.dir/perf/perf_model.cpp.o"
  "CMakeFiles/hslb_perf.dir/perf/perf_model.cpp.o.d"
  "CMakeFiles/hslb_perf.dir/perf/sample_design.cpp.o"
  "CMakeFiles/hslb_perf.dir/perf/sample_design.cpp.o.d"
  "libhslb_perf.a"
  "libhslb_perf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hslb_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
