# Empty dependencies file for hslb_obs.
# This may be replaced when dependencies are built.
