file(REMOVE_RECURSE
  "CMakeFiles/hslb_obs.dir/obs/metrics.cpp.o"
  "CMakeFiles/hslb_obs.dir/obs/metrics.cpp.o.d"
  "CMakeFiles/hslb_obs.dir/obs/trace.cpp.o"
  "CMakeFiles/hslb_obs.dir/obs/trace.cpp.o.d"
  "libhslb_obs.a"
  "libhslb_obs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hslb_obs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
