file(REMOVE_RECURSE
  "libhslb_obs.a"
)
