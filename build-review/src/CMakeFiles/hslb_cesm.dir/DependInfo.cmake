
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cesm/campaign.cpp" "src/CMakeFiles/hslb_cesm.dir/cesm/campaign.cpp.o" "gcc" "src/CMakeFiles/hslb_cesm.dir/cesm/campaign.cpp.o.d"
  "/root/repo/src/cesm/component.cpp" "src/CMakeFiles/hslb_cesm.dir/cesm/component.cpp.o" "gcc" "src/CMakeFiles/hslb_cesm.dir/cesm/component.cpp.o.d"
  "/root/repo/src/cesm/configs.cpp" "src/CMakeFiles/hslb_cesm.dir/cesm/configs.cpp.o" "gcc" "src/CMakeFiles/hslb_cesm.dir/cesm/configs.cpp.o.d"
  "/root/repo/src/cesm/decomposition.cpp" "src/CMakeFiles/hslb_cesm.dir/cesm/decomposition.cpp.o" "gcc" "src/CMakeFiles/hslb_cesm.dir/cesm/decomposition.cpp.o.d"
  "/root/repo/src/cesm/driver.cpp" "src/CMakeFiles/hslb_cesm.dir/cesm/driver.cpp.o" "gcc" "src/CMakeFiles/hslb_cesm.dir/cesm/driver.cpp.o.d"
  "/root/repo/src/cesm/fault.cpp" "src/CMakeFiles/hslb_cesm.dir/cesm/fault.cpp.o" "gcc" "src/CMakeFiles/hslb_cesm.dir/cesm/fault.cpp.o.d"
  "/root/repo/src/cesm/grid.cpp" "src/CMakeFiles/hslb_cesm.dir/cesm/grid.cpp.o" "gcc" "src/CMakeFiles/hslb_cesm.dir/cesm/grid.cpp.o.d"
  "/root/repo/src/cesm/ice_tuner.cpp" "src/CMakeFiles/hslb_cesm.dir/cesm/ice_tuner.cpp.o" "gcc" "src/CMakeFiles/hslb_cesm.dir/cesm/ice_tuner.cpp.o.d"
  "/root/repo/src/cesm/layout.cpp" "src/CMakeFiles/hslb_cesm.dir/cesm/layout.cpp.o" "gcc" "src/CMakeFiles/hslb_cesm.dir/cesm/layout.cpp.o.d"
  "/root/repo/src/cesm/machine.cpp" "src/CMakeFiles/hslb_cesm.dir/cesm/machine.cpp.o" "gcc" "src/CMakeFiles/hslb_cesm.dir/cesm/machine.cpp.o.d"
  "/root/repo/src/cesm/timing_file.cpp" "src/CMakeFiles/hslb_cesm.dir/cesm/timing_file.cpp.o" "gcc" "src/CMakeFiles/hslb_cesm.dir/cesm/timing_file.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/CMakeFiles/hslb_common.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/hslb_perf.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/hslb_obs.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/hslb_nlp.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/hslb_linalg.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/hslb_expr.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
