file(REMOVE_RECURSE
  "libhslb_cesm.a"
)
