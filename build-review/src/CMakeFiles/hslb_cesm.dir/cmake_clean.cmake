file(REMOVE_RECURSE
  "CMakeFiles/hslb_cesm.dir/cesm/campaign.cpp.o"
  "CMakeFiles/hslb_cesm.dir/cesm/campaign.cpp.o.d"
  "CMakeFiles/hslb_cesm.dir/cesm/component.cpp.o"
  "CMakeFiles/hslb_cesm.dir/cesm/component.cpp.o.d"
  "CMakeFiles/hslb_cesm.dir/cesm/configs.cpp.o"
  "CMakeFiles/hslb_cesm.dir/cesm/configs.cpp.o.d"
  "CMakeFiles/hslb_cesm.dir/cesm/decomposition.cpp.o"
  "CMakeFiles/hslb_cesm.dir/cesm/decomposition.cpp.o.d"
  "CMakeFiles/hslb_cesm.dir/cesm/driver.cpp.o"
  "CMakeFiles/hslb_cesm.dir/cesm/driver.cpp.o.d"
  "CMakeFiles/hslb_cesm.dir/cesm/fault.cpp.o"
  "CMakeFiles/hslb_cesm.dir/cesm/fault.cpp.o.d"
  "CMakeFiles/hslb_cesm.dir/cesm/grid.cpp.o"
  "CMakeFiles/hslb_cesm.dir/cesm/grid.cpp.o.d"
  "CMakeFiles/hslb_cesm.dir/cesm/ice_tuner.cpp.o"
  "CMakeFiles/hslb_cesm.dir/cesm/ice_tuner.cpp.o.d"
  "CMakeFiles/hslb_cesm.dir/cesm/layout.cpp.o"
  "CMakeFiles/hslb_cesm.dir/cesm/layout.cpp.o.d"
  "CMakeFiles/hslb_cesm.dir/cesm/machine.cpp.o"
  "CMakeFiles/hslb_cesm.dir/cesm/machine.cpp.o.d"
  "CMakeFiles/hslb_cesm.dir/cesm/timing_file.cpp.o"
  "CMakeFiles/hslb_cesm.dir/cesm/timing_file.cpp.o.d"
  "libhslb_cesm.a"
  "libhslb_cesm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hslb_cesm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
