# Empty dependencies file for hslb_cesm.
# This may be replaced when dependencies are built.
