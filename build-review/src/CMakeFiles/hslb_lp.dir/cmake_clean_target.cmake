file(REMOVE_RECURSE
  "libhslb_lp.a"
)
