# Empty dependencies file for hslb_lp.
# This may be replaced when dependencies are built.
