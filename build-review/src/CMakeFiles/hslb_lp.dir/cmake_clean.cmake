file(REMOVE_RECURSE
  "CMakeFiles/hslb_lp.dir/lp/problem.cpp.o"
  "CMakeFiles/hslb_lp.dir/lp/problem.cpp.o.d"
  "CMakeFiles/hslb_lp.dir/lp/simplex.cpp.o"
  "CMakeFiles/hslb_lp.dir/lp/simplex.cpp.o.d"
  "libhslb_lp.a"
  "libhslb_lp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hslb_lp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
