# Empty compiler generated dependencies file for hslb_minlp.
# This may be replaced when dependencies are built.
