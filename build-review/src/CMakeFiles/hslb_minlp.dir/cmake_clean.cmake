file(REMOVE_RECURSE
  "CMakeFiles/hslb_minlp.dir/minlp/ampl.cpp.o"
  "CMakeFiles/hslb_minlp.dir/minlp/ampl.cpp.o.d"
  "CMakeFiles/hslb_minlp.dir/minlp/branch_and_bound.cpp.o"
  "CMakeFiles/hslb_minlp.dir/minlp/branch_and_bound.cpp.o.d"
  "CMakeFiles/hslb_minlp.dir/minlp/model.cpp.o"
  "CMakeFiles/hslb_minlp.dir/minlp/model.cpp.o.d"
  "CMakeFiles/hslb_minlp.dir/minlp/nlp_bb.cpp.o"
  "CMakeFiles/hslb_minlp.dir/minlp/nlp_bb.cpp.o.d"
  "CMakeFiles/hslb_minlp.dir/minlp/presolve.cpp.o"
  "CMakeFiles/hslb_minlp.dir/minlp/presolve.cpp.o.d"
  "CMakeFiles/hslb_minlp.dir/minlp/relaxation.cpp.o"
  "CMakeFiles/hslb_minlp.dir/minlp/relaxation.cpp.o.d"
  "libhslb_minlp.a"
  "libhslb_minlp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hslb_minlp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
