
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/minlp/ampl.cpp" "src/CMakeFiles/hslb_minlp.dir/minlp/ampl.cpp.o" "gcc" "src/CMakeFiles/hslb_minlp.dir/minlp/ampl.cpp.o.d"
  "/root/repo/src/minlp/branch_and_bound.cpp" "src/CMakeFiles/hslb_minlp.dir/minlp/branch_and_bound.cpp.o" "gcc" "src/CMakeFiles/hslb_minlp.dir/minlp/branch_and_bound.cpp.o.d"
  "/root/repo/src/minlp/model.cpp" "src/CMakeFiles/hslb_minlp.dir/minlp/model.cpp.o" "gcc" "src/CMakeFiles/hslb_minlp.dir/minlp/model.cpp.o.d"
  "/root/repo/src/minlp/nlp_bb.cpp" "src/CMakeFiles/hslb_minlp.dir/minlp/nlp_bb.cpp.o" "gcc" "src/CMakeFiles/hslb_minlp.dir/minlp/nlp_bb.cpp.o.d"
  "/root/repo/src/minlp/presolve.cpp" "src/CMakeFiles/hslb_minlp.dir/minlp/presolve.cpp.o" "gcc" "src/CMakeFiles/hslb_minlp.dir/minlp/presolve.cpp.o.d"
  "/root/repo/src/minlp/relaxation.cpp" "src/CMakeFiles/hslb_minlp.dir/minlp/relaxation.cpp.o" "gcc" "src/CMakeFiles/hslb_minlp.dir/minlp/relaxation.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/CMakeFiles/hslb_lp.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/hslb_nlp.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/hslb_expr.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/hslb_linalg.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/hslb_obs.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/hslb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
