file(REMOVE_RECURSE
  "libhslb_minlp.a"
)
