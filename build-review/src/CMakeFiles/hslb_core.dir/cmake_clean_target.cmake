file(REMOVE_RECURSE
  "libhslb_core.a"
)
