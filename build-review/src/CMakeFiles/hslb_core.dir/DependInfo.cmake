
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hslb/layout_model.cpp" "src/CMakeFiles/hslb_core.dir/hslb/layout_model.cpp.o" "gcc" "src/CMakeFiles/hslb_core.dir/hslb/layout_model.cpp.o.d"
  "/root/repo/src/hslb/manual_tuner.cpp" "src/CMakeFiles/hslb_core.dir/hslb/manual_tuner.cpp.o" "gcc" "src/CMakeFiles/hslb_core.dir/hslb/manual_tuner.cpp.o.d"
  "/root/repo/src/hslb/objectives.cpp" "src/CMakeFiles/hslb_core.dir/hslb/objectives.cpp.o" "gcc" "src/CMakeFiles/hslb_core.dir/hslb/objectives.cpp.o.d"
  "/root/repo/src/hslb/pipeline.cpp" "src/CMakeFiles/hslb_core.dir/hslb/pipeline.cpp.o" "gcc" "src/CMakeFiles/hslb_core.dir/hslb/pipeline.cpp.o.d"
  "/root/repo/src/hslb/report.cpp" "src/CMakeFiles/hslb_core.dir/hslb/report.cpp.o" "gcc" "src/CMakeFiles/hslb_core.dir/hslb/report.cpp.o.d"
  "/root/repo/src/hslb/resilience.cpp" "src/CMakeFiles/hslb_core.dir/hslb/resilience.cpp.o" "gcc" "src/CMakeFiles/hslb_core.dir/hslb/resilience.cpp.o.d"
  "/root/repo/src/hslb/whatif.cpp" "src/CMakeFiles/hslb_core.dir/hslb/whatif.cpp.o" "gcc" "src/CMakeFiles/hslb_core.dir/hslb/whatif.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/CMakeFiles/hslb_minlp.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/hslb_perf.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/hslb_cesm.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/hslb_obs.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/hslb_lp.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/hslb_nlp.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/hslb_expr.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/hslb_linalg.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/hslb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
