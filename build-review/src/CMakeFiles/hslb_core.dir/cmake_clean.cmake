file(REMOVE_RECURSE
  "CMakeFiles/hslb_core.dir/hslb/layout_model.cpp.o"
  "CMakeFiles/hslb_core.dir/hslb/layout_model.cpp.o.d"
  "CMakeFiles/hslb_core.dir/hslb/manual_tuner.cpp.o"
  "CMakeFiles/hslb_core.dir/hslb/manual_tuner.cpp.o.d"
  "CMakeFiles/hslb_core.dir/hslb/objectives.cpp.o"
  "CMakeFiles/hslb_core.dir/hslb/objectives.cpp.o.d"
  "CMakeFiles/hslb_core.dir/hslb/pipeline.cpp.o"
  "CMakeFiles/hslb_core.dir/hslb/pipeline.cpp.o.d"
  "CMakeFiles/hslb_core.dir/hslb/report.cpp.o"
  "CMakeFiles/hslb_core.dir/hslb/report.cpp.o.d"
  "CMakeFiles/hslb_core.dir/hslb/resilience.cpp.o"
  "CMakeFiles/hslb_core.dir/hslb/resilience.cpp.o.d"
  "CMakeFiles/hslb_core.dir/hslb/whatif.cpp.o"
  "CMakeFiles/hslb_core.dir/hslb/whatif.cpp.o.d"
  "libhslb_core.a"
  "libhslb_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hslb_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
