# Empty dependencies file for hslb_core.
# This may be replaced when dependencies are built.
