
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/expr/eval.cpp" "src/CMakeFiles/hslb_expr.dir/expr/eval.cpp.o" "gcc" "src/CMakeFiles/hslb_expr.dir/expr/eval.cpp.o.d"
  "/root/repo/src/expr/expr.cpp" "src/CMakeFiles/hslb_expr.dir/expr/expr.cpp.o" "gcc" "src/CMakeFiles/hslb_expr.dir/expr/expr.cpp.o.d"
  "/root/repo/src/expr/print.cpp" "src/CMakeFiles/hslb_expr.dir/expr/print.cpp.o" "gcc" "src/CMakeFiles/hslb_expr.dir/expr/print.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/CMakeFiles/hslb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
