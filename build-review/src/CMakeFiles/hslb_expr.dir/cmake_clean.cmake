file(REMOVE_RECURSE
  "CMakeFiles/hslb_expr.dir/expr/eval.cpp.o"
  "CMakeFiles/hslb_expr.dir/expr/eval.cpp.o.d"
  "CMakeFiles/hslb_expr.dir/expr/expr.cpp.o"
  "CMakeFiles/hslb_expr.dir/expr/expr.cpp.o.d"
  "CMakeFiles/hslb_expr.dir/expr/print.cpp.o"
  "CMakeFiles/hslb_expr.dir/expr/print.cpp.o.d"
  "libhslb_expr.a"
  "libhslb_expr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hslb_expr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
