file(REMOVE_RECURSE
  "libhslb_expr.a"
)
