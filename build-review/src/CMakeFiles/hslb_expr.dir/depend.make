# Empty dependencies file for hslb_expr.
# This may be replaced when dependencies are built.
