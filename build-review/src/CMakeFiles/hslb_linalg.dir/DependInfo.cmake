
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/linalg/factor.cpp" "src/CMakeFiles/hslb_linalg.dir/linalg/factor.cpp.o" "gcc" "src/CMakeFiles/hslb_linalg.dir/linalg/factor.cpp.o.d"
  "/root/repo/src/linalg/least_squares.cpp" "src/CMakeFiles/hslb_linalg.dir/linalg/least_squares.cpp.o" "gcc" "src/CMakeFiles/hslb_linalg.dir/linalg/least_squares.cpp.o.d"
  "/root/repo/src/linalg/matrix.cpp" "src/CMakeFiles/hslb_linalg.dir/linalg/matrix.cpp.o" "gcc" "src/CMakeFiles/hslb_linalg.dir/linalg/matrix.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/CMakeFiles/hslb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
