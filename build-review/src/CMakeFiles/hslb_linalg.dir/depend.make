# Empty dependencies file for hslb_linalg.
# This may be replaced when dependencies are built.
