file(REMOVE_RECURSE
  "libhslb_linalg.a"
)
