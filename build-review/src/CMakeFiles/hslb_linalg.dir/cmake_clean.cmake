file(REMOVE_RECURSE
  "CMakeFiles/hslb_linalg.dir/linalg/factor.cpp.o"
  "CMakeFiles/hslb_linalg.dir/linalg/factor.cpp.o.d"
  "CMakeFiles/hslb_linalg.dir/linalg/least_squares.cpp.o"
  "CMakeFiles/hslb_linalg.dir/linalg/least_squares.cpp.o.d"
  "CMakeFiles/hslb_linalg.dir/linalg/matrix.cpp.o"
  "CMakeFiles/hslb_linalg.dir/linalg/matrix.cpp.o.d"
  "libhslb_linalg.a"
  "libhslb_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hslb_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
