# Empty compiler generated dependencies file for hslb_nlp.
# This may be replaced when dependencies are built.
