file(REMOVE_RECURSE
  "CMakeFiles/hslb_nlp.dir/nlp/barrier.cpp.o"
  "CMakeFiles/hslb_nlp.dir/nlp/barrier.cpp.o.d"
  "CMakeFiles/hslb_nlp.dir/nlp/levenberg_marquardt.cpp.o"
  "CMakeFiles/hslb_nlp.dir/nlp/levenberg_marquardt.cpp.o.d"
  "CMakeFiles/hslb_nlp.dir/nlp/nnls.cpp.o"
  "CMakeFiles/hslb_nlp.dir/nlp/nnls.cpp.o.d"
  "libhslb_nlp.a"
  "libhslb_nlp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hslb_nlp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
