file(REMOVE_RECURSE
  "libhslb_nlp.a"
)
