file(REMOVE_RECURSE
  "libhslb_svc.a"
)
