# Empty compiler generated dependencies file for hslb_svc.
# This may be replaced when dependencies are built.
