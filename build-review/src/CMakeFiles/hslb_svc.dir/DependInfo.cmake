
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/svc/cache.cpp" "src/CMakeFiles/hslb_svc.dir/svc/cache.cpp.o" "gcc" "src/CMakeFiles/hslb_svc.dir/svc/cache.cpp.o.d"
  "/root/repo/src/svc/coalescer.cpp" "src/CMakeFiles/hslb_svc.dir/svc/coalescer.cpp.o" "gcc" "src/CMakeFiles/hslb_svc.dir/svc/coalescer.cpp.o.d"
  "/root/repo/src/svc/request.cpp" "src/CMakeFiles/hslb_svc.dir/svc/request.cpp.o" "gcc" "src/CMakeFiles/hslb_svc.dir/svc/request.cpp.o.d"
  "/root/repo/src/svc/service.cpp" "src/CMakeFiles/hslb_svc.dir/svc/service.cpp.o" "gcc" "src/CMakeFiles/hslb_svc.dir/svc/service.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/CMakeFiles/hslb_core.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/hslb_minlp.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/hslb_lp.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/hslb_cesm.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/hslb_perf.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/hslb_nlp.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/hslb_expr.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/hslb_linalg.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/hslb_obs.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/hslb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
