file(REMOVE_RECURSE
  "CMakeFiles/hslb_svc.dir/svc/cache.cpp.o"
  "CMakeFiles/hslb_svc.dir/svc/cache.cpp.o.d"
  "CMakeFiles/hslb_svc.dir/svc/coalescer.cpp.o"
  "CMakeFiles/hslb_svc.dir/svc/coalescer.cpp.o.d"
  "CMakeFiles/hslb_svc.dir/svc/request.cpp.o"
  "CMakeFiles/hslb_svc.dir/svc/request.cpp.o.d"
  "CMakeFiles/hslb_svc.dir/svc/service.cpp.o"
  "CMakeFiles/hslb_svc.dir/svc/service.cpp.o.d"
  "libhslb_svc.a"
  "libhslb_svc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hslb_svc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
