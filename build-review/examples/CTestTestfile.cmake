# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build-review/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(smoke_allocation_server "/root/repo/build-review/examples/allocation_server" "--smoke")
set_tests_properties(smoke_allocation_server PROPERTIES  TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
