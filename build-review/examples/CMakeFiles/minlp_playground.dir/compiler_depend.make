# Empty compiler generated dependencies file for minlp_playground.
# This may be replaced when dependencies are built.
