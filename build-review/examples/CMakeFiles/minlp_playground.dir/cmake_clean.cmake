file(REMOVE_RECURSE
  "CMakeFiles/minlp_playground.dir/minlp_playground.cpp.o"
  "CMakeFiles/minlp_playground.dir/minlp_playground.cpp.o.d"
  "minlp_playground"
  "minlp_playground.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minlp_playground.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
