# Empty compiler generated dependencies file for solve_ampl.
# This may be replaced when dependencies are built.
