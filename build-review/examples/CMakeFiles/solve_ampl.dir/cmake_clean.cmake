file(REMOVE_RECURSE
  "CMakeFiles/solve_ampl.dir/solve_ampl.cpp.o"
  "CMakeFiles/solve_ampl.dir/solve_ampl.cpp.o.d"
  "solve_ampl"
  "solve_ampl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/solve_ampl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
