# Empty compiler generated dependencies file for whatif_studies.
# This may be replaced when dependencies are built.
