file(REMOVE_RECURSE
  "CMakeFiles/whatif_studies.dir/whatif_studies.cpp.o"
  "CMakeFiles/whatif_studies.dir/whatif_studies.cpp.o.d"
  "whatif_studies"
  "whatif_studies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/whatif_studies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
