file(REMOVE_RECURSE
  "CMakeFiles/allocation_server.dir/allocation_server.cpp.o"
  "CMakeFiles/allocation_server.dir/allocation_server.cpp.o.d"
  "allocation_server"
  "allocation_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/allocation_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
