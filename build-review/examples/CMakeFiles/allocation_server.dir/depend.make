# Empty dependencies file for allocation_server.
# This may be replaced when dependencies are built.
