# Empty compiler generated dependencies file for autotune_cesm.
# This may be replaced when dependencies are built.
