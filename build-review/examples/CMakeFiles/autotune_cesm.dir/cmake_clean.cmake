file(REMOVE_RECURSE
  "CMakeFiles/autotune_cesm.dir/autotune_cesm.cpp.o"
  "CMakeFiles/autotune_cesm.dir/autotune_cesm.cpp.o.d"
  "autotune_cesm"
  "autotune_cesm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autotune_cesm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
