file(REMOVE_RECURSE
  "CMakeFiles/bench_objectives.dir/objectives.cpp.o"
  "CMakeFiles/bench_objectives.dir/objectives.cpp.o.d"
  "bench_objectives"
  "bench_objectives.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_objectives.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
