# Empty dependencies file for bench_objectives.
# This may be replaced when dependencies are built.
