file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_1deg.dir/table3_1deg.cpp.o"
  "CMakeFiles/bench_table3_1deg.dir/table3_1deg.cpp.o.d"
  "bench_table3_1deg"
  "bench_table3_1deg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_1deg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
