# Empty compiler generated dependencies file for bench_table3_1deg.
# This may be replaced when dependencies are built.
