# Empty compiler generated dependencies file for bench_tsync.
# This may be replaced when dependencies are built.
