file(REMOVE_RECURSE
  "CMakeFiles/bench_tsync.dir/tsync.cpp.o"
  "CMakeFiles/bench_tsync.dir/tsync.cpp.o.d"
  "bench_tsync"
  "bench_tsync.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tsync.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
