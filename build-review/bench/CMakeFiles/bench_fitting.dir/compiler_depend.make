# Empty compiler generated dependencies file for bench_fitting.
# This may be replaced when dependencies are built.
