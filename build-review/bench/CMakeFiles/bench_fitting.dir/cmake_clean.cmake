file(REMOVE_RECURSE
  "CMakeFiles/bench_fitting.dir/fitting.cpp.o"
  "CMakeFiles/bench_fitting.dir/fitting.cpp.o.d"
  "bench_fitting"
  "bench_fitting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fitting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
