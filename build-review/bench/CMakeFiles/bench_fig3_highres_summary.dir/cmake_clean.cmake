file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_highres_summary.dir/fig3_highres_summary.cpp.o"
  "CMakeFiles/bench_fig3_highres_summary.dir/fig3_highres_summary.cpp.o.d"
  "bench_fig3_highres_summary"
  "bench_fig3_highres_summary.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_highres_summary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
