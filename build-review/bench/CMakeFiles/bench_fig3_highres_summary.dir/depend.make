# Empty dependencies file for bench_fig3_highres_summary.
# This may be replaced when dependencies are built.
