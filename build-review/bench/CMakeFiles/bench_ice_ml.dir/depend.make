# Empty dependencies file for bench_ice_ml.
# This may be replaced when dependencies are built.
