file(REMOVE_RECURSE
  "CMakeFiles/bench_ice_ml.dir/ice_ml.cpp.o"
  "CMakeFiles/bench_ice_ml.dir/ice_ml.cpp.o.d"
  "bench_ice_ml"
  "bench_ice_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ice_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
