file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_unconstrained.dir/table3_unconstrained.cpp.o"
  "CMakeFiles/bench_table3_unconstrained.dir/table3_unconstrained.cpp.o.d"
  "bench_table3_unconstrained"
  "bench_table3_unconstrained.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_unconstrained.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
