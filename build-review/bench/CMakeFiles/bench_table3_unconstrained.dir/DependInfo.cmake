
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/table3_unconstrained.cpp" "bench/CMakeFiles/bench_table3_unconstrained.dir/table3_unconstrained.cpp.o" "gcc" "bench/CMakeFiles/bench_table3_unconstrained.dir/table3_unconstrained.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/CMakeFiles/hslb_svc.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/hslb_core.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/hslb_cesm.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/hslb_perf.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/hslb_minlp.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/hslb_nlp.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/hslb_lp.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/hslb_expr.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/hslb_linalg.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/hslb_obs.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/hslb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
