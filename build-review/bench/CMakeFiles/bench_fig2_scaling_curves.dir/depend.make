# Empty dependencies file for bench_fig2_scaling_curves.
# This may be replaced when dependencies are built.
