# Empty compiler generated dependencies file for bench_minlp_solver.
# This may be replaced when dependencies are built.
