file(REMOVE_RECURSE
  "CMakeFiles/bench_minlp_solver.dir/minlp_solver.cpp.o"
  "CMakeFiles/bench_minlp_solver.dir/minlp_solver.cpp.o.d"
  "bench_minlp_solver"
  "bench_minlp_solver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_minlp_solver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
