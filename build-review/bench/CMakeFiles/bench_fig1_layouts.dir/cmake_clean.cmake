file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_layouts.dir/fig1_layouts.cpp.o"
  "CMakeFiles/bench_fig1_layouts.dir/fig1_layouts.cpp.o.d"
  "bench_fig1_layouts"
  "bench_fig1_layouts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_layouts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
