file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_eighth.dir/table3_eighth.cpp.o"
  "CMakeFiles/bench_table3_eighth.dir/table3_eighth.cpp.o.d"
  "bench_table3_eighth"
  "bench_table3_eighth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_eighth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
