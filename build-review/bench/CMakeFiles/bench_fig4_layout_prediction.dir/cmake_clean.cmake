file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_layout_prediction.dir/fig4_layout_prediction.cpp.o"
  "CMakeFiles/bench_fig4_layout_prediction.dir/fig4_layout_prediction.cpp.o.d"
  "bench_fig4_layout_prediction"
  "bench_fig4_layout_prediction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_layout_prediction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
