#!/usr/bin/env bash
# One-command correctness gate: sanitized Debug build, full test suite, an
# observability-enabled smoke run of the quickstart example, and a
# ThreadSanitizer pass over the concurrent subsystems (svc + obs + the
# rebal loop's threaded warm re-solves).
#
# ASan and TSan cannot share a process, so the TSan pass uses its own build
# tree (build-tsan) and rebuilds only the suites that exercise threads.
#
# Usage: scripts/check.sh [build-dir]   (default: build-asan)
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${1:-${repo_root}/build-asan}"
tsan_dir="${repo_root}/build-tsan"
jobs="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

echo "== configure (Debug + ASan/UBSan) -> ${build_dir}"
cmake -B "${build_dir}" -S "${repo_root}" \
  -DCMAKE_BUILD_TYPE=Debug \
  -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-omit-frame-pointer" \
  -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=address,undefined"

echo "== build"
cmake --build "${build_dir}" -j "${jobs}"

echo "== ctest"
ctest --test-dir "${build_dir}" --output-on-failure -j "${jobs}"

echo "== observability smoke run (quickstart --trace-out --metrics)"
trace_file="${build_dir}/check-trace.json"
"${build_dir}/examples/quickstart" --trace-out="${trace_file}" --metrics

# The trace must be a loadable Chrome trace with all four phase spans.
for phase in hslb.gather hslb.fit hslb.solve hslb.execute; do
  grep -q "\"name\":\"${phase}\"" "${trace_file}" \
    || { echo "missing phase span ${phase} in ${trace_file}" >&2; exit 1; }
done
if command -v python3 >/dev/null 2>&1; then
  python3 -c "import json,sys; json.load(open(sys.argv[1]))" "${trace_file}"
else
  echo "note: python3 unavailable, JSON well-formedness check skipped"
fi

echo "== parallel-solver bench smoke run (identity check, tiny node budget)"
"${build_dir}/bench/bench_minlp_parallel" --smoke --repeats=1 \
  --out="${build_dir}/BENCH_minlp.json"

echo "== LP re-solve bench smoke under ASan (maintained factors vs cold)"
"${build_dir}/bench/bench_lp_resolve" --smoke --repeats=1 \
  --out="${build_dir}/BENCH_lp.json"

echo "== LP pivot-count drift gate (two runs diffed via hslb_report)"
# The sparse simplex's pivot/eta/factorization counters are deterministic:
# two runs of the same sequence must produce identical non-timing cells.
lp_drift_a="${build_dir}/check-lp-a"
lp_drift_b="${build_dir}/check-lp-b"
rm -rf "${lp_drift_a}" "${lp_drift_b}"
mkdir -p "${lp_drift_a}" "${lp_drift_b}"
"${build_dir}/bench/bench_lp_resolve" --smoke --repeats=1 \
  --out="${build_dir}/BENCH_lp.json" \
  --json-out="${lp_drift_a}/lp_resolve.json" 2>/dev/null
"${build_dir}/bench/bench_lp_resolve" --smoke --repeats=1 \
  --out="${build_dir}/BENCH_lp.json" \
  --json-out="${lp_drift_b}/lp_resolve.json" 2>/dev/null
"${build_dir}/tools/hslb_report" diff --bench=lp_resolve \
  --golden="${lp_drift_a}" --fresh="${lp_drift_b}"

echo "== rebal horizon bench smoke under ASan (control loop + replay identity)"
"${build_dir}/bench/bench_rebal_horizon" --smoke \
  --out="${build_dir}/BENCH_rebal.json"

echo "== scenario corpus smoke (fixed-seed generate + corpus bench)"
corpus_dir="${build_dir}/check-corpus"
rm -rf "${corpus_dir}"
"${build_dir}/tools/hslb_scengen" --out="${corpus_dir}" --seed=2014 --count=3
"${build_dir}/bench/bench_scen_corpus" --smoke --corpus="${corpus_dir}" \
  --out="${build_dir}/BENCH_scen.json"

echo "== configure (Debug + TSan) -> ${tsan_dir}"
cmake -B "${tsan_dir}" -S "${repo_root}" \
  -DCMAKE_BUILD_TYPE=Debug \
  -DCMAKE_CXX_FLAGS="-fsanitize=thread -fno-omit-frame-pointer" \
  -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=thread"

echo "== build (TSan: concurrent suites only)"
cmake --build "${tsan_dir}" -j "${jobs}" \
  --target test_svc test_svc_chaos test_scen test_obs test_telemetry \
  test_minlp_parallel test_lp_property test_rebal allocation_server \
  hslb_trace_cli bench_scen_corpus bench_lp_resolve bench_rebal_horizon

echo "== ctest (TSan: svc + chaos + scen + obs + telemetry + parallel solver"
echo "   + LP properties + rebal + smokes)"
ctest --test-dir "${tsan_dir}" --output-on-failure -j "${jobs}" \
  -R 'test_svc|test_svc_chaos|test_scen|test_obs|test_telemetry|test_minlp_parallel|test_lp_property|test_rebal|smoke_allocation_server|smoke_hslb_trace'

echo "== chaos smoke under TSan (deterministic faults, ladder on)"
"${tsan_dir}/examples/allocation_server" --smoke --chaos-rate=0.3 \
  --chaos-seed=7

echo "== corpus smoke under TSan (thread-scaling sweep, tiny slice)"
"${tsan_dir}/bench/bench_scen_corpus" --smoke --per-family=2 --limit=1 \
  --out="${tsan_dir}/BENCH_scen.json"

echo "== LP re-solve bench smoke under TSan (thread-local workspace reuse)"
"${tsan_dir}/bench/bench_lp_resolve" --smoke --repeats=1 \
  --out="${tsan_dir}/BENCH_lp.json"

echo "== rebal horizon bench smoke under TSan (threaded warm re-solves)"
"${tsan_dir}/bench/bench_rebal_horizon" --smoke \
  --out="${tsan_dir}/BENCH_rebal.json"

echo "== OK: build, tests, observability smoke run, and TSan pass all passed"
