#!/usr/bin/env python3
"""Markdown link checker for the repo's docs (stdlib only, no network).

Walks every tracked *.md file and verifies that

  * relative links point at files or directories that exist,
  * intra-document anchors (#section) resolve to a heading in the target
    file, using GitHub's anchor-slug rules,
  * reference-style link definitions are not dangling.

External links (http/https/mailto) are recorded but never fetched: CI must
stay hermetic, and a flaky remote host should not fail the build.  Exit
status is nonzero when any broken link is found.

Usage: scripts/check_links.py [root]     (default: repo root)
"""
from __future__ import annotations

import os
import re
import sys

# [text](target) -- stops at the first unescaped ')'; images share the form.
INLINE_LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
# [text][ref] and the matching "[ref]: target" definitions.
REF_LINK = re.compile(r"\[[^\]]+\]\[([^\]]+)\]")
REF_DEF = re.compile(r"^\[([^\]]+)\]:\s*(\S+)", re.MULTILINE)
HEADING = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
FENCE = re.compile(r"^(```|~~~).*?^\1\s*$", re.MULTILINE | re.DOTALL)

SKIP_DIRS = {".git", "build", "third_party", "node_modules", ".claude"}


def github_slug(heading: str) -> str:
    """GitHub's heading -> anchor id rule: lowercase, drop punctuation,
    spaces to hyphens.  Inline code/emphasis markers are stripped first."""
    text = re.sub(r"[`*_]", "", heading.strip())
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)  # linked headings
    text = text.lower()
    text = re.sub(r"[^\w\- ]", "", text, flags=re.UNICODE)
    return text.replace(" ", "-")


def md_files(root: str) -> list[str]:
    found = []
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = [d for d in dirnames if d not in SKIP_DIRS]
        for name in filenames:
            if name.endswith(".md"):
                found.append(os.path.join(dirpath, name))
    return sorted(found)


def anchors_of(path: str, cache: dict[str, set[str]]) -> set[str]:
    if path not in cache:
        with open(path, encoding="utf-8") as handle:
            text = FENCE.sub("", handle.read())
        slugs: set[str] = set()
        for match in HEADING.finditer(text):
            slug = github_slug(match.group(1))
            # GitHub de-duplicates repeated headings with -1, -2, ...
            candidate, n = slug, 0
            while candidate in slugs:
                n += 1
                candidate = f"{slug}-{n}"
            slugs.add(candidate)
        cache[path] = slugs
    return cache[path]


def check_file(path: str, root: str, cache: dict[str, set[str]]) -> list[str]:
    with open(path, encoding="utf-8") as handle:
        raw = handle.read()
    text = FENCE.sub("", raw)

    problems: list[str] = []
    targets = [m.group(1) for m in INLINE_LINK.finditer(text)]
    defs = {m.group(1).lower(): m.group(2) for m in REF_DEF.finditer(text)}
    for match in REF_LINK.finditer(text):
        ref = match.group(1).lower()
        if ref in defs:
            targets.append(defs[ref])
        else:
            problems.append(f"{path}: dangling reference link "
                            f"[{match.group(1)}]")

    for target in targets:
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        if target.startswith("#"):
            if github_slug(target[1:]) not in anchors_of(path, cache) and \
                    target[1:] not in anchors_of(path, cache):
                problems.append(f"{path}: broken anchor '{target}'")
            continue
        file_part, _, anchor = target.partition("#")
        resolved = os.path.normpath(
            os.path.join(os.path.dirname(path), file_part))
        if not os.path.exists(resolved):
            problems.append(f"{path}: broken link '{target}' "
                            f"(no such file {os.path.relpath(resolved, root)})")
            continue
        if anchor and resolved.endswith(".md"):
            if anchor not in anchors_of(resolved, cache) and \
                    github_slug(anchor) not in anchors_of(resolved, cache):
                problems.append(f"{path}: broken anchor '{target}'")
    return problems


def main() -> int:
    root = os.path.abspath(sys.argv[1] if len(sys.argv) > 1 else
                           os.path.join(os.path.dirname(__file__), ".."))
    cache: dict[str, set[str]] = {}
    files = md_files(root)
    errors: list[str] = []
    for path in files:
        errors.extend(check_file(path, root, cache))
    for message in errors:
        print(message, file=sys.stderr)
    print(f"check_links: {len(files)} markdown file(s), "
          f"{len(errors)} broken link(s)", file=sys.stderr)
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
