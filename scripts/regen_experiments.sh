#!/usr/bin/env bash
# Reproducible-results pipeline driver (DESIGN.md section 10).
#
#   scripts/regen_experiments.sh            # gate mode (default): re-run the
#                                           # doc benches, diff fresh artifacts
#                                           # against tests/golden/ under the
#                                           # tolerance policy, re-render
#                                           # EXPERIMENTS.md and byte-compare
#                                           # it with the committed file.
#                                           # Nonzero exit on drift/staleness.
#   scripts/regen_experiments.sh --update   # refresh tests/golden/*.json and
#                                           # rewrite EXPERIMENTS.md from the
#                                           # fresh run (commit the result).
#
# Environment:
#   BUILD_DIR       build tree holding bench/ and tools/ binaries
#                   (default: build)
#   HSLB_FRESH_DIR  where to write the fresh artifacts; kept after exit so CI
#                   can upload them (default: a mktemp dir, removed on exit)
#
# The two google-benchmark binaries are run with --benchmark_filter=NONE_
# so only the deterministic tables execute; timing cells never gate anything,
# so skipping the timers changes no gated number.
set -euo pipefail

cd "$(dirname "$0")/.."
build_dir="${BUILD_DIR:-build}"
mode="check"
if [[ "${1:-}" == "--update" ]]; then
  mode="update"
elif [[ -n "${1:-}" ]]; then
  echo "usage: $0 [--update]" >&2
  exit 2
fi

for binary in "${build_dir}/tools/hslb_report" "${build_dir}/bench/bench_fig1_layouts"; do
  if [[ ! -x "${binary}" ]]; then
    echo "missing ${binary} -- build first: cmake -B ${build_dir} -S . && cmake --build ${build_dir} -j" >&2
    exit 2
  fi
done

# The doc bench set, in the order of report::experiments_bench_set().
benches=(
  table3_1deg table3_eighth table3_unconstrained
  fig2_scaling_curves fig3_highres_summary fig4_layout_prediction
  minlp_solver objectives tsync
  fitting ice_ml fig1_layouts
  rebal_horizon
)
# Binaries that also register google-benchmark timers (skipped here).
gbench="minlp_solver fitting"

if [[ -n "${HSLB_FRESH_DIR:-}" ]]; then
  fresh="${HSLB_FRESH_DIR}"
  mkdir -p "${fresh}"
else
  fresh="$(mktemp -d "${TMPDIR:-/tmp}/hslb-artifacts.XXXXXX")"
  trap 'rm -rf "${fresh}"' EXIT
fi

echo "== re-running ${#benches[@]} doc benches into ${fresh}" >&2
for bench in "${benches[@]}"; do
  args=("--json-out=${fresh}/${bench}.json")
  if [[ " ${gbench} " == *" ${bench} "* ]]; then
    args+=("--benchmark_filter=NONE_")
  fi
  echo "  bench_${bench}" >&2
  "${build_dir}/bench/bench_${bench}" "${args[@]}" >/dev/null
done

report="${build_dir}/tools/hslb_report"
regen_command="scripts/regen_experiments.sh --update"

if [[ "${mode}" == "update" ]]; then
  mkdir -p tests/golden
  for bench in "${benches[@]}"; do
    cp "${fresh}/${bench}.json" "tests/golden/${bench}.json"
  done
  "${report}" render --artifacts=tests/golden --paper=docs/paper_reference.json \
    --out=EXPERIMENTS.md --regen-command="${regen_command}"
  echo "== refreshed tests/golden/ and EXPERIMENTS.md; review and commit" >&2
  exit 0
fi

status=0
echo "== drift gate: fresh artifacts vs tests/golden" >&2
"${report}" diff --golden=tests/golden --fresh="${fresh}" || status=1
echo "== staleness gate: EXPERIMENTS.md vs a fresh render" >&2
"${report}" check --artifacts="${fresh}" --paper=docs/paper_reference.json \
  --doc=EXPERIMENTS.md --regen-command="${regen_command}" || status=1
if [[ -n "${HSLB_FRESH_DIR:-}" ]]; then
  # Leave the regenerated doc next to the fresh artifacts for CI upload.
  "${report}" render --artifacts="${fresh}" --paper=docs/paper_reference.json \
    --out="${fresh}/EXPERIMENTS.regenerated.md" \
    --regen-command="${regen_command}" || status=1
fi
if [[ "${status}" -ne 0 ]]; then
  echo "regen_experiments: FAILED (numeric drift or stale EXPERIMENTS.md;" \
       "run $0 --update and commit if the change is intended)" >&2
else
  echo "regen_experiments: OK" >&2
fi
exit "${status}"
