// Tests for component oracles and the calibrated case configurations.
#include <cmath>

#include <gtest/gtest.h>

#include "hslb/cesm/component.hpp"
#include "hslb/cesm/configs.hpp"

namespace hslb::cesm {
namespace {

TEST(Component, TrueTimeFollowsBaseLaw) {
  TruthParams truth;
  truth.base = perf::PerfParams{1000.0, 0.0, 1.0, 5.0};
  const Component comp(ComponentKind::kAtm, truth);
  EXPECT_NEAR(comp.true_time(10), 105.0, 1e-9);
  EXPECT_NEAR(comp.true_time(100), 15.0, 1e-9);
  EXPECT_DOUBLE_EQ(comp.penalty_factor(10), 1.0);
}

TEST(Component, MeasurementNoiseIsSmallAndSeeded) {
  TruthParams truth;
  truth.base = perf::PerfParams{1000.0, 0.0, 1.0, 5.0};
  truth.noise_cv = 0.02;
  const Component comp(ComponentKind::kOcn, truth);
  common::Rng rng_a(1);
  common::Rng rng_b(1);
  EXPECT_DOUBLE_EQ(comp.measured_time(10, rng_a), comp.measured_time(10, rng_b));
  // Noise averages out to the true time.
  common::Rng rng(2);
  double sum = 0.0;
  constexpr int kRuns = 20000;
  for (int i = 0; i < kRuns; ++i) {
    sum += comp.measured_time(10, rng);
  }
  EXPECT_NEAR(sum / kRuns, comp.true_time(10), 0.01 * comp.true_time(10));
}

TEST(Component, PreferredCountPenalty) {
  TruthParams truth;
  truth.base = perf::PerfParams{1.0e6, 0.0, 1.0, 100.0};
  truth.preferred_counts = {480, 6124, 19460};
  truth.off_preferred_penalty = 0.28;
  const Component comp(ComponentKind::kOcn, truth);
  // At a preferred count: no penalty.
  EXPECT_NEAR(comp.penalty_factor(6124), 1.0, 1e-9);
  // Far from every preferred count: close to the full penalty.
  EXPECT_GT(comp.penalty_factor(11880), 1.15);
  EXPECT_LE(comp.penalty_factor(11880), 1.28 + 1e-9);
  // Slightly off a preferred count: small penalty.
  EXPECT_LT(comp.penalty_factor(6200), 1.02);
}

TEST(Component, DecompositionNoiseIsDeterministicScatter) {
  TruthParams truth;
  truth.base = perf::PerfParams{1.0e4, 0.0, 1.0, 10.0};
  truth.decomposition_noise = true;
  const Component comp(ComponentKind::kIce, truth);
  // Deterministic...
  EXPECT_DOUBLE_EQ(comp.true_time(100), comp.true_time(100));
  // ...but scattered: the penalty varies across nearby counts.
  double lo = 10.0;
  double hi = 0.0;
  for (int n = 100; n < 130; ++n) {
    const double f = comp.penalty_factor(n);
    lo = std::min(lo, f);
    hi = std::max(hi, f);
    EXPECT_GE(f, 1.0 - 1e-9);
  }
  EXPECT_GT(hi - lo, 0.01);
}

TEST(CaseConfig, OneDegreeCalibrationNearPaperTimings) {
  const CaseConfig config = one_degree_case();
  // Paper Table III 1-degree entries (tolerances ~10%: the calibration
  // inverts the published numbers, it does not copy them).
  EXPECT_NEAR(config.component(ComponentKind::kAtm).true_time(104), 307.0,
              31.0);
  EXPECT_NEAR(config.component(ComponentKind::kAtm).true_time(1664), 62.0,
              7.0);
  EXPECT_NEAR(config.component(ComponentKind::kOcn).true_time(24), 365.0,
              37.0);
  EXPECT_NEAR(config.component(ComponentKind::kLnd).true_time(15), 101.0,
              11.0);
  EXPECT_NEAR(config.component(ComponentKind::kIce).true_time(80), 109.0,
              20.0);
}

TEST(CaseConfig, EighthDegreeCalibrationNearPaperTimings) {
  const CaseConfig config = eighth_degree_case();
  EXPECT_NEAR(config.component(ComponentKind::kAtm).true_time(5836), 2534.0,
              260.0);
  EXPECT_NEAR(config.component(ComponentKind::kOcn).true_time(2356), 3785.0,
              380.0);
  EXPECT_NEAR(config.component(ComponentKind::kOcn).true_time(19460), 712.0,
              75.0);
  EXPECT_NEAR(config.component(ComponentKind::kIce).true_time(5350), 476.0,
              80.0);
  EXPECT_NEAR(config.component(ComponentKind::kLnd).true_time(138), 488.0,
              50.0);
}

TEST(CaseConfig, EighthDegreeOceanPenaltyReproducesMisfit) {
  // The paper: prediction 982-ish at 11880 nodes, actual 1255 -- a ~28%
  // penalty off the hard-coded counts.
  const CaseConfig config = eighth_degree_case();
  const Component& ocn = config.component(ComponentKind::kOcn);
  const double smooth = ocn.truth().base.a / 11880.0 + ocn.truth().base.d;
  EXPECT_GT(ocn.true_time(11880) / smooth, 1.15);
}

TEST(CaseConfig, AllComponentsPresent) {
  for (const CaseConfig& config :
       {one_degree_case(), eighth_degree_case()}) {
    for (const ComponentKind kind :
         {ComponentKind::kAtm, ComponentKind::kOcn, ComponentKind::kIce,
          ComponentKind::kLnd, ComponentKind::kRof, ComponentKind::kCpl}) {
      EXPECT_NO_THROW((void)config.component(kind)) << config.name;
    }
    EXPECT_FALSE(config.atm_allowed.empty());
    EXPECT_FALSE(config.ocn_allowed.empty());
    EXPECT_EQ(config.simulated_days, 5);
  }
}

TEST(CaseConfig, ScalingIsMonotoneOnSmoothComponents) {
  const CaseConfig config = one_degree_case();
  const Component& atm = config.component(ComponentKind::kAtm);
  double prev = atm.true_time(8);
  for (int n = 16; n <= 2048; n *= 2) {
    const double t = atm.true_time(n);
    EXPECT_LT(t, prev) << "atm must keep scaling through " << n;
    prev = t;
  }
}

TEST(ComponentNames, Complete) {
  EXPECT_STREQ(to_string(ComponentKind::kAtm), "atm");
  EXPECT_STREQ(long_name(ComponentKind::kOcn),
               "Parallel Ocean Program (POP)");
  EXPECT_STREQ(long_name(ComponentKind::kCpl), "Coupler (CPL7)");
}

}  // namespace
}  // namespace hslb::cesm
