// HSLB_OBS_DISABLE compiles the instrumentation macros down to nothing:
// even with a session and registry installed, HSLB_SPAN / HSLB_COUNT in
// this translation unit must record zero events and zero counts.
#define HSLB_OBS_DISABLE

#include <gtest/gtest.h>

#include "hslb/obs/obs.hpp"

namespace hslb::obs {
namespace {

TEST(ObsDisabled, MacrosCompileToNoOps) {
  TraceSession session;
  Registry registry;
  {
    Install install(&session, &registry);
    {
      HSLB_SPAN("disabled.span");
      HSLB_COUNT("disabled.count", 7);
    }
    // The context itself still works (only the macros are compiled out)...
    EXPECT_EQ(current_trace(), &session);
  }
  // ...but nothing was recorded by the macros above.
  EXPECT_TRUE(session.events().empty());
  EXPECT_DOUBLE_EQ(registry.counter("disabled.count").value(), 0.0);
  const MetricsSnapshot snap = registry.snapshot();
  EXPECT_EQ(snap.counters.size(), 1u);  // the probe lookup just above
  EXPECT_DOUBLE_EQ(snap.counters[0].second, 0.0);
}

}  // namespace
}  // namespace hslb::obs
