// Tests for the NLP layer: NNLS, Levenberg-Marquardt, and the barrier
// interior-point solver.
#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "hslb/common/rng.hpp"
#include "hslb/nlp/barrier.hpp"
#include "hslb/nlp/levenberg_marquardt.hpp"
#include "hslb/nlp/nnls.hpp"

namespace hslb::nlp {
namespace {

using linalg::Matrix;
using linalg::Vector;

// --- NNLS -------------------------------------------------------------------

TEST(Nnls, UnconstrainedInteriorSolution) {
  // Least squares solution already nonnegative: NNLS must find it exactly.
  const Matrix a = Matrix::from_rows({{1, 0}, {0, 1}, {1, 1}});
  const Vector b{1, 2, 3};
  const auto r = solve_nnls(a, b);
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.x[0], 1.0, 1e-9);
  EXPECT_NEAR(r.x[1], 2.0, 1e-9);
  EXPECT_NEAR(r.residual_norm, 0.0, 1e-9);
}

TEST(Nnls, ClampsNegativeCoordinates) {
  const Matrix a = Matrix::from_rows({{1, 0}, {0, 1}, {1, 1}});
  const Vector b{-1, 2, 1};
  const auto r = solve_nnls(a, b);
  EXPECT_NEAR(r.x[0], 0.0, 1e-10);
  EXPECT_NEAR(r.x[1], 1.5, 1e-9);
}

TEST(Nnls, AllZeroWhenGradientNonpositive) {
  const Matrix a = Matrix::from_rows({{1.0}, {1.0}});
  const Vector b{-1, -2};
  const auto r = solve_nnls(a, b);
  EXPECT_NEAR(r.x[0], 0.0, 1e-12);
}

class NnlsKktProperty : public ::testing::TestWithParam<int> {};

TEST_P(NnlsKktProperty, SatisfiesKktConditions) {
  common::Rng rng(static_cast<std::uint64_t>(GetParam()) * 271 + 3);
  const std::size_t m = 4 + static_cast<std::size_t>(rng.uniform_int(0, 8));
  const std::size_t n = 1 + static_cast<std::size_t>(rng.uniform_int(0, 4));
  Matrix a(m, n);
  Vector b(m);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      a(i, j) = rng.uniform(-1.0, 1.0);
    }
    b[i] = rng.uniform(-1.0, 1.0);
  }
  const auto r = solve_nnls(a, b);
  ASSERT_TRUE(r.converged);
  // KKT: grad = A^T (A x - b); x_j > 0 => grad_j == 0; x_j == 0 => grad_j >= 0.
  const Vector resid = linalg::subtract(linalg::matvec(a, r.x), b);
  const Vector grad = linalg::matvec_t(a, resid);
  for (std::size_t j = 0; j < n; ++j) {
    ASSERT_GE(r.x[j], -1e-12);
    if (r.x[j] > 1e-8) {
      EXPECT_NEAR(grad[j], 0.0, 1e-6) << "active coordinate gradient";
    } else {
      EXPECT_GE(grad[j], -1e-6) << "inactive coordinate multiplier sign";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomNnls, NnlsKktProperty, ::testing::Range(0, 30));

// --- Levenberg-Marquardt ----------------------------------------------------

TEST(Lm, FitsExponentialDecay) {
  // y = p0 * exp(-p1 * t), recover (2, 0.5) from clean data.
  std::vector<double> t;
  std::vector<double> y;
  for (int i = 0; i < 20; ++i) {
    t.push_back(0.2 * i);
    y.push_back(2.0 * std::exp(-0.5 * 0.2 * i));
  }
  const auto fn = [&](std::span<const double> theta, Vector& r, Matrix* jac) {
    for (std::size_t i = 0; i < t.size(); ++i) {
      const double e = std::exp(-theta[1] * t[i]);
      r[i] = theta[0] * e - y[i];
      if (jac) {
        (*jac)(i, 0) = e;
        (*jac)(i, 1) = -theta[0] * t[i] * e;
      }
    }
  };
  const Vector start{1.0, 1.0};
  const Vector lo{0.0, 0.0};
  const Vector hi{std::numeric_limits<double>::infinity(), std::numeric_limits<double>::infinity()};
  const auto r = minimize_lm(fn, start, lo, hi, t.size());
  EXPECT_NEAR(r.theta[0], 2.0, 1e-5);
  EXPECT_NEAR(r.theta[1], 0.5, 1e-5);
  EXPECT_LT(r.cost, 1e-12);
}

TEST(Lm, RespectsBoxBounds) {
  // min (x - 5)^2 with x <= 2: LM must stop at the bound.
  const auto fn = [](std::span<const double> theta, Vector& r, Matrix* jac) {
    r[0] = theta[0] - 5.0;
    if (jac) {
      (*jac)(0, 0) = 1.0;
    }
  };
  const Vector start{0.0};
  const Vector lo{-10.0};
  const Vector hi{2.0};
  const auto r = minimize_lm(fn, start, lo, hi, 1);
  EXPECT_NEAR(r.theta[0], 2.0, 1e-8);
}

TEST(Lm, NumericJacobianFallback) {
  // Callback never fills the Jacobian: forward differences must kick in.
  const auto fn = [](std::span<const double> theta, Vector& r, Matrix*) {
    r[0] = theta[0] * theta[0] - 4.0;
  };
  const Vector start{1.0};
  const Vector lo{0.0};
  const Vector hi{10.0};
  const auto r = minimize_lm(fn, start, lo, hi, 1);
  EXPECT_NEAR(r.theta[0], 2.0, 1e-5);
}

// --- Barrier solver ----------------------------------------------------------

TEST(Barrier, UnconstrainedQuadratic) {
  NlpProblem p;
  p.num_vars = 2;
  const auto x = expr::variable(0);
  const auto y = expr::variable(1);
  p.objective = (x - 1.0) * (x - 1.0) + 2.0 * (y + 0.5) * (y + 0.5);
  p.lower = {-10.0, -10.0};
  p.upper = {10.0, 10.0};
  const auto r = solve_barrier(p);
  ASSERT_EQ(r.status, NlpStatus::kOptimal);
  EXPECT_NEAR(r.x[0], 1.0, 1e-4);
  EXPECT_NEAR(r.x[1], -0.5, 1e-4);
}

TEST(Barrier, ActiveInequality) {
  // min (x-2)^2  s.t.  x <= 1  ->  x = 1.
  NlpProblem p;
  p.num_vars = 1;
  const auto x = expr::variable(0);
  p.objective = (x - 2.0) * (x - 2.0);
  p.constraints.push_back(x - 1.0);
  p.lower = {-100.0};
  p.upper = {100.0};
  const auto r = solve_barrier(p);
  ASSERT_EQ(r.status, NlpStatus::kOptimal);
  EXPECT_NEAR(r.x[0], 1.0, 1e-4);
  EXPECT_NEAR(r.objective, 1.0, 1e-3);
}

TEST(Barrier, ActiveBoxBound) {
  NlpProblem p;
  p.num_vars = 1;
  const auto x = expr::variable(0);
  p.objective = -x;  // push up
  p.lower = {0.0};
  p.upper = {3.0};
  const auto r = solve_barrier(p);
  ASSERT_EQ(r.status, NlpStatus::kOptimal);
  EXPECT_NEAR(r.x[0], 3.0, 1e-4);
}

TEST(Barrier, DetectsInfeasible) {
  // x <= -1 and x >= 1 cannot both hold.
  NlpProblem p;
  p.num_vars = 1;
  const auto x = expr::variable(0);
  p.objective = x;
  p.constraints.push_back(x + 1.0);   // x <= -1
  p.constraints.push_back(1.0 - x);   // x >= 1
  p.lower = {-10.0};
  p.upper = {10.0};
  EXPECT_EQ(solve_barrier(p).status, NlpStatus::kInfeasible);
}

TEST(Barrier, LayoutRelaxationShape) {
  // A miniature continuous layout-1 relaxation:
  //   min T  s.t.  T >= 1000/na + 5,  T >= 800/no + 3,  na + no <= 100.
  NlpProblem p;
  p.num_vars = 3;  // T, na, no
  const auto T = expr::variable(0);
  const auto na = expr::variable(1);
  const auto no = expr::variable(2);
  p.objective = T;
  p.constraints.push_back(1000.0 / na + 5.0 - T);
  p.constraints.push_back(800.0 / no + 3.0 - T);
  p.constraints.push_back(na + no - 100.0);
  p.lower = {0.0, 1.0, 1.0};
  p.upper = {1e6, 100.0, 100.0};
  const auto r = solve_barrier(p);
  ASSERT_EQ(r.status, NlpStatus::kOptimal);
  // Optimality: both time constraints active and nodes exhausted.
  EXPECT_NEAR(r.x[1] + r.x[2], 100.0, 1e-3);
  EXPECT_NEAR(1000.0 / r.x[1] + 5.0, r.objective, 1e-2);
  EXPECT_NEAR(800.0 / r.x[2] + 3.0, r.objective, 1e-2);
}

TEST(Barrier, StartPointUsedWhenInterior) {
  NlpProblem p;
  p.num_vars = 1;
  const auto x = expr::variable(0);
  p.objective = x * x;
  p.lower = {-5.0};
  p.upper = {5.0};
  const auto r = solve_barrier(p, linalg::Vector{2.0});
  ASSERT_EQ(r.status, NlpStatus::kOptimal);
  EXPECT_NEAR(r.x[0], 0.0, 1e-4);
}

TEST(Barrier, FixedVariableHandledByWidening) {
  NlpProblem p;
  p.num_vars = 2;
  const auto x = expr::variable(0);
  const auto y = expr::variable(1);
  p.objective = (x - 3.0) * (x - 3.0) + y * y;
  p.lower = {2.0, -1.0};
  p.upper = {2.0, 1.0};  // x fixed at 2
  const auto r = solve_barrier(p);
  ASSERT_EQ(r.status, NlpStatus::kOptimal);
  EXPECT_NEAR(r.x[0], 2.0, 1e-6);
  EXPECT_NEAR(r.x[1], 0.0, 1e-4);
}

}  // namespace
}  // namespace hslb::nlp
