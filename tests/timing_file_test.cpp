// Tests for the timing-file renderer/parser round trip, the typed parse
// errors, and parser robustness against corrupted/truncated inputs.
#include <gtest/gtest.h>

#include "hslb/cesm/driver.hpp"
#include "hslb/cesm/fault.hpp"
#include "hslb/cesm/timing_file.hpp"
#include "hslb/common/error.hpp"
#include "hslb/hslb/pipeline.hpp"

namespace hslb::cesm {
namespace {

class TimingFileFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    config_ = one_degree_case();
    run_ = run_case(config_, Layout::hybrid(80, 24, 104, 24), 42);
    text_ = render_timing_file(config_, run_);
  }
  CaseConfig config_;
  RunResult run_;
  std::string text_;
};

TEST_F(TimingFileFixture, RoundTripsMetadata) {
  const ParsedTimingFile parsed = parse_timing_file(text_);
  EXPECT_EQ(parsed.case_name, config_.name);
  EXPECT_EQ(parsed.machine, config_.machine.name);
  EXPECT_EQ(parsed.simulated_days, config_.simulated_days);
  EXPECT_NE(parsed.layout.find("layout-1"), std::string::npos);
}

TEST_F(TimingFileFixture, RoundTripsComponentRows) {
  const ParsedTimingFile parsed = parse_timing_file(text_);
  EXPECT_EQ(parsed.rows.size(), 6u);  // 4 modeled + rof + cpl
  for (const ComponentKind kind : kModeledComponents) {
    const auto row = parsed.find(to_string(kind));
    ASSERT_TRUE(row.has_value()) << to_string(kind);
    EXPECT_NEAR(row->seconds, run_.component_seconds.at(kind), 1e-3);
    EXPECT_EQ(row->nodes, run_.layout.at(kind));
    EXPECT_EQ(row->cores, config_.machine.cores(row->nodes));
  }
}

TEST_F(TimingFileFixture, RoundTripsTotals) {
  const ParsedTimingFile parsed = parse_timing_file(text_);
  EXPECT_NEAR(parsed.model_seconds, run_.model_seconds, 1e-3);
  EXPECT_NEAR(parsed.total_seconds, run_.total_seconds, 1e-3);
}

TEST_F(TimingFileFixture, RejectsGarbage) {
  EXPECT_THROW((void)parse_timing_file("not a timing file"),
               InvalidArgument);
  EXPECT_THROW((void)parse_timing_file(""), InvalidArgument);
}

TEST_F(TimingFileFixture, SamplesFeedThePipeline) {
  // Render timing files for the usual gather campaign, parse them back, and
  // run HSLB from the parsed samples: the full production loop.
  std::vector<ParsedTimingFile> files;
  for (const int total : {128, 256, 512, 1024, 2048}) {
    const Layout layout =
        reference_layout(config_, LayoutKind::kHybrid, total);
    const RunResult run = run_case(config_, layout, 1000 + total);
    files.push_back(parse_timing_file(render_timing_file(config_, run)));
  }
  const auto samples = samples_from_timing(files);
  EXPECT_EQ(samples.size(), 5u * 4u);

  core::PipelineConfig pipeline_config;
  pipeline_config.case_config = config_;
  pipeline_config.total_nodes = 128;
  const core::HslbResult result =
      core::run_hslb_from_samples(pipeline_config, samples);
  EXPECT_GT(result.predicted_total, 0.0);
  for (const ComponentKind kind : kModeledComponents) {
    EXPECT_GT(result.fits.at(kind).r_squared, 0.95);
  }
}

TEST_F(TimingFileFixture, SamplesRequireAllComponents) {
  ParsedTimingFile incomplete = parse_timing_file(text_);
  std::erase_if(incomplete.rows, [](const ParsedTimingFile::Row& row) {
    return row.component == "ocn";
  });
  EXPECT_THROW((void)samples_from_timing({incomplete}), InvalidArgument);
}

TEST_F(TimingFileFixture, TypedErrorsCarryLineContext) {
  // Break one component row's node count and check the error names the line.
  std::string broken = text_;
  const std::size_t pos = broken.find("\nocn");  // the component row, not metadata
  ASSERT_NE(pos, std::string::npos);
  const std::size_t digits = broken.find_first_of("0123456789", pos);
  ASSERT_NE(digits, std::string::npos);
  broken[digits] = '-';
  const TimingExpected<ParsedTimingFile> parsed = try_parse_timing_file(broken);
  ASSERT_FALSE(parsed.has_value());
  EXPECT_GT(parsed.error().line, 0);
  EXPECT_FALSE(parsed.error().line_text.empty());
  EXPECT_NE(parsed.error().to_string().find("line"), std::string::npos);
}

TEST_F(TimingFileFixture, TryParseMatchesThrowingParser) {
  const TimingExpected<ParsedTimingFile> parsed = try_parse_timing_file(text_);
  ASSERT_TRUE(parsed.has_value());
  const ParsedTimingFile reference = parse_timing_file(text_);
  EXPECT_EQ(parsed->case_name, reference.case_name);
  EXPECT_EQ(parsed->rows.size(), reference.rows.size());
  EXPECT_EQ(parsed->model_seconds, reference.model_seconds);

  const TimingExpected<ParsedTimingFile> garbage =
      try_parse_timing_file("not a timing file");
  EXPECT_FALSE(garbage.has_value());
  EXPECT_THROW((void)parse_timing_file("not a timing file"),
               InvalidArgument);
}

TEST_F(TimingFileFixture, SurvivesCorruptedAndTruncatedInputs) {
  // Fuzz-ish sweep: mangle a real timing file under many seeds.  The parser
  // must either produce a value or a typed error -- never crash or throw.
  int parsed_anyway = 0;
  int rejected = 0;
  for (std::uint64_t seed = 0; seed < 200; ++seed) {
    for (const std::string& mangled :
         {corrupt_text(text_, seed), truncate_text(text_, seed)}) {
      const TimingExpected<ParsedTimingFile> result =
          try_parse_timing_file(mangled);
      if (result.has_value()) {
        ++parsed_anyway;
      } else {
        ++rejected;
        EXPECT_FALSE(result.error().message.empty());
      }
    }
  }
  // Both outcomes must occur across 400 manglings for the sweep to mean
  // anything: most corruptions break the file, while truncations that cut
  // after the last needed section still parse.
  EXPECT_GT(rejected, 100);
  EXPECT_GT(parsed_anyway, 0);
}

}  // namespace
}  // namespace hslb::cesm
