// End-to-end request telemetry: the allocation service's span tree
// (request -> phases -> nested solver epochs), the Prometheus exposition
// render/parse round trip, the live scrape endpoint, and the trace
// analyzer's phase attribution -- the chain the hslb_trace tool and the
// svc_throughput bench rely on.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cmath>
#include <cstdint>
#include <map>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include <gtest/gtest.h>

#include "hslb/obs/attribution.hpp"
#include "hslb/obs/exposition.hpp"
#include "hslb/svc/service.hpp"

namespace hslb::obs {
namespace {

std::map<cesm::ComponentKind, perf::PerfModel> reference_fits() {
  using cesm::ComponentKind;
  std::map<ComponentKind, perf::PerfModel> fits;
  fits[ComponentKind::kAtm] =
      perf::PerfModel(perf::PerfParams{40000.0, 0.001, 1.2, 10.0});
  fits[ComponentKind::kOcn] =
      perf::PerfModel(perf::PerfParams{25000.0, 0.002, 1.1, 20.0});
  fits[ComponentKind::kIce] =
      perf::PerfModel(perf::PerfParams{8000.0, 0.0, 1.0, 5.0});
  fits[ComponentKind::kLnd] =
      perf::PerfModel(perf::PerfParams{3000.0, 0.0, 1.0, 2.0});
  return fits;
}

svc::AllocationRequest reference_request(int total_nodes) {
  svc::AllocationRequest request;
  request.total_nodes = total_nodes;
  request.fits = reference_fits();
  return request;
}

/// Run `distinct` cold solves (plus one repeat for a cache hit) against a
/// traced 2-worker service and return the trace + registry.
void run_traced_load(TraceSession* trace, Registry* registry, int distinct) {
  svc::ServiceConfig config;
  config.workers = 2;
  config.obs.trace = trace;
  config.obs.metrics = registry;
  svc::AllocationService service(config);
  for (int i = 0; i < distinct; ++i) {
    const svc::SolveOutcome outcome =
        service.solve(reference_request(64 + 16 * i));
    ASSERT_TRUE(outcome.has_value());
  }
  const svc::SolveOutcome repeat = service.solve(reference_request(64));
  ASSERT_TRUE(repeat.has_value());
}

// --- Service span tree. -----------------------------------------------------

TEST(Telemetry, ServiceEmitsOneRequestSpanPerRequest) {
  TraceSession trace;
  Registry registry;
  run_traced_load(&trace, &registry, 4);

  int request_spans = 0;
  int queue_phases = 0;
  for (const TraceEvent& e : trace.events()) {
    if (e.name == "svc.request") {
      ++request_spans;
      EXPECT_NE(e.id, 0u);
      EXPECT_EQ(e.parent, 0u);  // requests are roots
    } else if (e.name == "svc.phase.queue") {
      ++queue_phases;
      EXPECT_NE(e.parent, 0u);
    }
  }
  EXPECT_EQ(request_spans, 5);  // 4 cold + 1 cache hit
  EXPECT_EQ(queue_phases, 4);   // the cache hit never queued
}

TEST(Telemetry, SolverEpochsNestUnderOwningRequest) {
  TraceSession trace;
  Registry registry;
  run_traced_load(&trace, &registry, 2);

  const std::vector<TraceEvent> events = trace.events();
  std::unordered_map<std::uint64_t, const TraceEvent*> by_id;
  for (const TraceEvent& e : events) {
    if (e.id != 0) {
      by_id[e.id] = &e;
    }
  }
  // Every minlp.epoch span -- recorded on solver worker-pool threads --
  // must chain up to an svc.request root through parent links.
  int epochs = 0;
  for (const TraceEvent& e : events) {
    if (e.name != "minlp.epoch") {
      continue;
    }
    ++epochs;
    const TraceEvent* cursor = &e;
    bool reached_request = false;
    for (int hops = 0; hops < 32 && cursor->parent != 0; ++hops) {
      const auto it = by_id.find(cursor->parent);
      ASSERT_NE(it, by_id.end()) << "dangling parent id " << cursor->parent;
      cursor = it->second;
      if (cursor->name == "svc.request") {
        reached_request = true;
        break;
      }
    }
    EXPECT_TRUE(reached_request) << "epoch span floats outside any request";
  }
  EXPECT_GT(epochs, 0);
}

TEST(Telemetry, PhaseHistogramsPreRegisteredAndPopulated) {
  Registry registry;
  {
    svc::ServiceConfig config;
    config.workers = 1;
    config.obs.metrics = &registry;
    const svc::AllocationService service(config);
    // Schema-stable before any traffic: all phase histograms exist at 0.
    const MetricsSnapshot empty = registry.snapshot();
    for (const char* name :
         {"svc.admission.ms", "svc.queue.ms", "svc.cache.lookup.ms",
          "svc.coalesce.wait.ms", "svc.request.ms", "svc.solve.ms"}) {
      const MetricsSnapshot::HistogramRow* row = empty.find_histogram(name);
      ASSERT_NE(row, nullptr) << name;
      EXPECT_EQ(row->count, 0) << name;
    }
    EXPECT_DOUBLE_EQ(empty.gauge_value("svc.workers", -1.0), 1.0);
  }

  TraceSession trace;
  run_traced_load(&trace, &registry, 3);
  const MetricsSnapshot snap = registry.snapshot();
  EXPECT_EQ(snap.find_histogram("svc.request.ms")->count, 4);
  EXPECT_EQ(snap.find_histogram("svc.queue.ms")->count, 3);
  EXPECT_GE(snap.find_histogram("svc.cache.lookup.ms")->count, 4);
}

// --- Exposition round trip. -------------------------------------------------

TEST(Exposition, RenderParseRoundTrip) {
  Registry registry;
  registry.counter("svc.requests").add(7.0);
  registry.gauge("svc.workers").set(4.0);
  Histogram& h = registry.histogram("svc.request.ms", {1.0, 2.0, 5.0});
  h.observe(0.5);
  h.observe(1.5);
  h.observe(9.0);  // overflow
  registry.histogram("svc.queue.ms", {1.0, 2.0});  // zero observations

  const std::string text = render_prometheus(registry.snapshot());
  EXPECT_NE(text.find("# TYPE hslb_svc_requests counter"), std::string::npos);
  EXPECT_NE(text.find("hslb_svc_request_ms_bucket{le=\"+Inf\"} 3"),
            std::string::npos);
  // Zero-observation histograms still render their full ladder (satellite
  // guarantee: scrapes are schema-stable from the first request on).
  EXPECT_NE(text.find("hslb_svc_queue_ms_count 0"), std::string::npos);
  EXPECT_NE(text.find("hslb_svc_queue_ms_bucket{le=\"+Inf\"} 0"),
            std::string::npos);

  const auto parsed = parse_prometheus(text);
  ASSERT_TRUE(parsed.has_value()) << parsed.error();
  EXPECT_DOUBLE_EQ(parsed->counter_value("svc.requests"), 7.0);
  EXPECT_DOUBLE_EQ(parsed->gauge_value("svc.workers"), 4.0);
  const MetricsSnapshot::HistogramRow* row =
      parsed->find_histogram("svc.request.ms");
  ASSERT_NE(row, nullptr);
  EXPECT_EQ(row->count, 3);
  EXPECT_EQ(row->bounds, (std::vector<double>{1.0, 2.0, 5.0}));
  EXPECT_EQ(row->buckets, (std::vector<long long>{1, 1, 0, 1}));
  EXPECT_DOUBLE_EQ(row->sum, 11.0);
  const MetricsSnapshot::HistogramRow* empty =
      parsed->find_histogram("svc.queue.ms");
  ASSERT_NE(empty, nullptr);
  EXPECT_EQ(empty->count, 0);
}

TEST(Exposition, ServerServesLiveSnapshot) {
  Registry registry;
  registry.counter("svc.requests").add(3.0);
  ExpositionServer server(&registry, 0);  // ephemeral port
  ASSERT_GT(server.port(), 0);

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(server.port()));
  ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  ASSERT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                      sizeof(addr)),
            0);
  const std::string request = "GET /metrics HTTP/1.0\r\n\r\n";
  ASSERT_EQ(::send(fd, request.data(), request.size(), 0),
            static_cast<ssize_t>(request.size()));
  std::string response;
  char buffer[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
    if (n <= 0) {
      break;
    }
    response.append(buffer, static_cast<std::size_t>(n));
  }
  ::close(fd);
  EXPECT_NE(response.find("200 OK"), std::string::npos);
  EXPECT_NE(response.find("hslb_svc_requests 3"), std::string::npos);
  server.stop();
}

// A multi-KB scrape pulled through a deliberately tiny client receive
// buffer by a slow reader: the server's send() cannot take the payload in
// one piece, so this regresses the partial-send handling in write_all (a
// short send must resume at the first unsent byte, not drop the tail).
TEST(Exposition, ServerDeliversLargePayloadThroughSmallSocketBuffers) {
  Registry registry;
  for (int i = 0; i < 300; ++i) {
    Histogram& h = registry.histogram(
        "svc.shard" + std::to_string(i) + ".ms", {1.0, 2.0, 5.0, 10.0, 50.0});
    h.observe(static_cast<double>(i % 7));
  }
  const std::string expected_body = render_prometheus(registry.snapshot());
  ASSERT_GT(expected_body.size(), 16u * 1024u);  // genuinely multi-KB

  ExpositionServer server(&registry, 0);
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  // Shrink the client's receive window before connecting so the kernel
  // cannot swallow the whole response up front.
  const int tiny = 1024;
  ASSERT_EQ(::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &tiny, sizeof tiny), 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(server.port()));
  ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  ASSERT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                      sizeof(addr)),
            0);
  const std::string request = "GET /metrics HTTP/1.0\r\n\r\n";
  ASSERT_EQ(::send(fd, request.data(), request.size(), 0),
            static_cast<ssize_t>(request.size()));
  std::string response;
  char buffer[512];  // read in sips to keep the server blocked on send()
  for (;;) {
    const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
    if (n <= 0) {
      break;
    }
    response.append(buffer, static_cast<std::size_t>(n));
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ::close(fd);

  const std::size_t body_at = response.find("\r\n\r\n");
  ASSERT_NE(body_at, std::string::npos);
  const std::string body = response.substr(body_at + 4);
  EXPECT_EQ(body, expected_body);  // byte-complete: no dropped tail
  const auto parsed = parse_prometheus(body);
  ASSERT_TRUE(parsed.has_value()) << parsed.error();
  EXPECT_EQ(parsed->histograms.size(), 300u);
  server.stop();
}

// --- Attribution. -----------------------------------------------------------

TEST(Attribution, ChromeTraceRoundTripPreservesSpans) {
  TraceSession trace;
  Registry registry;
  run_traced_load(&trace, &registry, 2);
  const std::vector<TraceEvent> live = trace.events();
  const auto parsed = parse_chrome_trace(trace.to_chrome_json());
  ASSERT_TRUE(parsed.has_value()) << parsed.error();
  ASSERT_EQ(parsed->size(), live.size());
  const Attribution from_live = attribute_phases(live, 2.0);
  const Attribution from_file = attribute_phases(*parsed, 2.0);
  ASSERT_EQ(from_live.requests.size(), from_file.requests.size());
  EXPECT_EQ(from_live.dominant_p99_phase, from_file.dominant_p99_phase);
  for (std::size_t i = 0; i < from_live.requests.size(); ++i) {
    EXPECT_EQ(from_live.requests[i].span, from_file.requests[i].span);
    EXPECT_NEAR(from_live.requests[i].total_ms,
                from_file.requests[i].total_ms, 1e-3);
  }
}

TEST(Attribution, SharesSumToOneAndNameADominantPhase) {
  TraceSession trace;
  Registry registry;
  run_traced_load(&trace, &registry, 4);
  const Attribution attribution = attribute_phases(trace.events(), 2.0);
  ASSERT_EQ(attribution.requests.size(), 5u);
  ASSERT_EQ(attribution.percentiles.size(), 3u);
  for (const PercentileAttribution& pa : attribution.percentiles) {
    double sum = 0.0;
    for (std::size_t p = 0; p < kPhaseCount; ++p) {
      EXPECT_GE(pa.share[p], 0.0);
      sum += pa.share[p];
    }
    EXPECT_NEAR(sum, 1.0, 1e-9);
    EXPECT_GT(pa.latency_ms, 0.0);
  }
  // Cold MINLP solves dominate these requests; whichever solve sub-phase
  // wins, the verdict must name a real phase and the solver must show up.
  EXPECT_NE(attribution.dominant_p99_phase, "none");
  EXPECT_NE(attribution.dominant_p99_phase, "");
  const PercentileAttribution& p99 = attribution.percentiles.back();
  EXPECT_GT(p99.share[static_cast<std::size_t>(Phase::kSolveLp)] +
                p99.share[static_cast<std::size_t>(Phase::kSolveOther)],
            0.25);
  EXPECT_FALSE(attribution.verdict.empty());
  // Queueing check sized by the worker gauge the caller passes in.
  EXPECT_DOUBLE_EQ(attribution.queueing.workers, 2.0);
  EXPECT_GT(attribution.queueing.arrival_rate_hz, 0.0);
  EXPECT_FALSE(attribution.queueing.verdict.empty());
}

TEST(Attribution, JsonFormIsWellFormed) {
  TraceSession trace;
  Registry registry;
  run_traced_load(&trace, &registry, 2);
  const Attribution attribution = attribute_phases(trace.events(), 2.0);
  const report::Json json = attribution_json(attribution);
  const auto reparsed = report::parse_json(json.dump(1));
  ASSERT_TRUE(reparsed.has_value());
  EXPECT_EQ(reparsed->at("requests").as_number(), 3.0);
  EXPECT_FALSE(reparsed->at("dominant_p99_phase").as_string().empty());
  EXPECT_EQ(reparsed->at("percentiles").size(), 3u);
}

}  // namespace
}  // namespace hslb::obs
