// Property tests for the Table I layout models: randomized performance
// curves cross-checked against exhaustive enumeration of the feasible set,
// and AMPL-lite expression round trips.
#include <cmath>

#include <gtest/gtest.h>

#include "hslb/common/rng.hpp"
#include "hslb/hslb/layout_model.hpp"
#include "hslb/minlp/ampl.hpp"

namespace hslb::core {
namespace {

using cesm::ComponentKind;
using cesm::LayoutKind;

perf::PerfModel random_model(common::Rng& rng) {
  perf::PerfParams p;
  p.a = rng.uniform(100.0, 5000.0);
  if (rng.uniform() < 0.3) {
    p.b = rng.uniform(0.0, 0.05);
    p.c = rng.uniform(1.0, 1.5);
  } else {
    p.b = 0.0;
    p.c = 1.0;
  }
  p.d = rng.uniform(0.0, 20.0);
  return perf::PerfModel(p);
}

LayoutModelSpec random_spec(common::Rng& rng, int total_nodes) {
  LayoutModelSpec spec;
  spec.layout = LayoutKind::kHybrid;
  spec.total_nodes = total_nodes;
  spec.perf[ComponentKind::kAtm] = random_model(rng);
  spec.perf[ComponentKind::kOcn] = random_model(rng);
  spec.perf[ComponentKind::kIce] = random_model(rng);
  spec.perf[ComponentKind::kLnd] = random_model(rng);
  spec.min_nodes = {{ComponentKind::kAtm, 2},
                    {ComponentKind::kOcn, 1},
                    {ComponentKind::kIce, 1},
                    {ComponentKind::kLnd, 1}};
  if (rng.uniform() < 0.5) {
    spec.tsync = rng.uniform(1.0, 50.0);
  }
  return spec;
}

/// Exhaustive layout-1 optimum over the Table I feasible set.
double brute_force_layout1(const LayoutModelSpec& spec) {
  const int N = spec.total_nodes;
  const auto time_of = [&](ComponentKind kind, int n) {
    return spec.perf.at(kind)(n);
  };
  double best = lp::kInf;
  for (int no = 1; no <= N - 2; ++no) {
    const double t_ocn = time_of(ComponentKind::kOcn, no);
    for (int na = 2; na + no <= N; ++na) {
      const double t_atm = time_of(ComponentKind::kAtm, na);
      if (t_atm + 0.0 >= best && t_ocn >= best) {
        continue;  // cheap dominance cut
      }
      for (int ni = 1; ni < na; ++ni) {
        const double t_ice = time_of(ComponentKind::kIce, ni);
        // Under a tight Tsync, filling the whole group with land is not
        // always admissible, so nl must be enumerated too.
        for (int nl = 1; ni + nl <= na; ++nl) {
          const double t_lnd = time_of(ComponentKind::kLnd, nl);
          if (std::isfinite(spec.tsync) &&
              std::fabs(t_ice - t_lnd) > spec.tsync) {
            continue;
          }
          const double total =
              std::max(std::max(t_ice, t_lnd) + t_atm, t_ocn);
          best = std::min(best, total);
        }
      }
    }
  }
  return best;
}

class LayoutBruteForceProperty : public ::testing::TestWithParam<int> {};

TEST_P(LayoutBruteForceProperty, SolverMatchesEnumeration) {
  common::Rng rng(static_cast<std::uint64_t>(GetParam()) * 7127 + 3);
  const int total = static_cast<int>(rng.uniform_int(8, 28));
  const LayoutModelSpec spec = random_spec(rng, total);
  const double expected = brute_force_layout1(spec);

  const auto result = minlp::solve(build_layout_model(spec, nullptr));
  if (!std::isfinite(expected)) {
    EXPECT_EQ(result.status, minlp::MinlpStatus::kInfeasible);
    return;
  }
  ASSERT_EQ(result.status, minlp::MinlpStatus::kOptimal)
      << "N=" << total << " tsync=" << spec.tsync;
  EXPECT_NEAR(result.objective, expected, 1e-5 * (1.0 + expected))
      << "N=" << total << " tsync=" << spec.tsync;
}

INSTANTIATE_TEST_SUITE_P(RandomSpecs, LayoutBruteForceProperty,
                         ::testing::Range(0, 30));

// The solver's allocation must itself satisfy Table I (not merely match the
// optimal value).
class LayoutFeasibilityProperty : public ::testing::TestWithParam<int> {};

TEST_P(LayoutFeasibilityProperty, AllocationIsFeasible) {
  common::Rng rng(static_cast<std::uint64_t>(GetParam()) * 911 + 77);
  const int total = static_cast<int>(rng.uniform_int(16, 200));
  LayoutModelSpec spec = random_spec(rng, total);
  if (rng.uniform() < 0.5) {
    // Random ocean allocation set.
    std::vector<int> allowed;
    for (int v = 1; v <= total; v += static_cast<int>(rng.uniform_int(1, 5))) {
      allowed.push_back(v);
    }
    spec.ocn_allowed = allowed;
  }
  LayoutModelVars vars;
  const auto result = minlp::solve(build_layout_model(spec, &vars));
  if (result.status != minlp::MinlpStatus::kOptimal) {
    return;  // tight Tsync can make random instances infeasible; fine
  }
  const Allocation alloc = extract_allocation(spec, vars, result);
  const cesm::Layout layout = alloc.as_layout(spec.layout);
  EXPECT_FALSE(layout.invalid_reason(total));
  if (!spec.ocn_allowed.empty()) {
    const int ocn = alloc.nodes.at(ComponentKind::kOcn);
    bool member = false;
    for (const int v : spec.ocn_allowed) {
      member = member || v == ocn;
    }
    EXPECT_TRUE(member) << ocn;
  }
  if (std::isfinite(spec.tsync)) {
    EXPECT_LE(std::fabs(alloc.predicted_seconds.at(ComponentKind::kIce) -
                        alloc.predicted_seconds.at(ComponentKind::kLnd)),
              spec.tsync + 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(RandomSpecs, LayoutFeasibilityProperty,
                         ::testing::Range(0, 25));

// AMPL-lite round trip: the printed form of the model's expressions must
// parse back to the same function.
class AmplExprRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(AmplExprRoundTrip, PrintParseEvalAgree) {
  common::Rng rng(static_cast<std::uint64_t>(GetParam()) * 131 + 7);
  const perf::PerfModel model = random_model(rng);
  const expr::Expr original = model.as_expr(expr::variable(0, "n"));
  const std::string text = expr::to_string(original);
  const expr::Expr reparsed =
      minlp::parse_expression(text, std::vector<std::string>{"n"});
  for (int i = 0; i < 8; ++i) {
    const linalg::Vector at{rng.uniform(1.0, 500.0)};
    const double a = expr::eval(original, at);
    const double b = expr::eval(reparsed, at);
    EXPECT_NEAR(a, b, 1e-6 * (1.0 + std::fabs(a))) << text;
  }
}

INSTANTIATE_TEST_SUITE_P(RandomCurves, AmplExprRoundTrip,
                         ::testing::Range(0, 25));

}  // namespace
}  // namespace hslb::core
