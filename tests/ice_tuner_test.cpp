// Tests for the ML-based sea-ice decomposition tuner (the paper's
// companion work, reference [10]).
#include <cmath>

#include <gtest/gtest.h>

#include "hslb/cesm/configs.hpp"
#include "hslb/cesm/driver.hpp"
#include "hslb/cesm/ice_tuner.hpp"
#include "hslb/common/error.hpp"

namespace hslb::cesm {
namespace {

class IceTunerFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    config_ = one_degree_case();
    const Component& ice = config_.component(ComponentKind::kIce);
    options_.min_nodes = 8;
    options_.max_nodes = 2048;
    options_.counts = 8;
    samples_ = gather_ice_training(ice, options_);
  }
  CaseConfig config_;
  IceTunerOptions options_;
  std::vector<IceTrainingSample> samples_;
};

TEST_F(IceTunerFixture, GatherCoversEveryStrategyAndCount) {
  int per_strategy[kNumIceDecompositions] = {};
  for (const IceTrainingSample& sample : samples_) {
    ASSERT_GT(sample.seconds, 0.0);
    ++per_strategy[static_cast<int>(sample.decomposition)];
  }
  for (int d = 0; d < kNumIceDecompositions; ++d) {
    EXPECT_GE(per_strategy[d], options_.counts) << "strategy " << d;
  }
}

TEST_F(IceTunerFixture, GatherIsDeterministic) {
  const Component& ice = config_.component(ComponentKind::kIce);
  const auto again = gather_ice_training(ice, options_);
  ASSERT_EQ(again.size(), samples_.size());
  for (std::size_t i = 0; i < samples_.size(); ++i) {
    EXPECT_DOUBLE_EQ(again[i].seconds, samples_[i].seconds);
  }
}

TEST_F(IceTunerFixture, RejectsNonIceComponent) {
  const Component& atm = config_.component(ComponentKind::kAtm);
  EXPECT_THROW((void)gather_ice_training(atm, options_), InvalidArgument);
}

TEST_F(IceTunerFixture, PredictionsTrackGroundTruth) {
  const IceDecompositionTuner tuner(samples_);
  const Component& ice = config_.component(ComponentKind::kIce);
  for (const int n : {16, 64, 256, 1024}) {
    for (int d = 0; d < kNumIceDecompositions; ++d) {
      const double predicted =
          tuner.predicted_seconds(n, static_cast<IceDecomposition>(d));
      const double truth = ice.true_time_with(n, d);
      EXPECT_NEAR(predicted, truth, 0.15 * truth + 0.5)
          << "n=" << n << " d=" << d;
    }
  }
}

TEST_F(IceTunerFixture, BestStrategyBeatsDefaultOnAverage) {
  const IceDecompositionTuner tuner(samples_);
  const Component& ice = config_.component(ComponentKind::kIce);
  double tuned_total = 0.0;
  double default_total = 0.0;
  int wins = 0;
  int counts = 0;
  for (int n = 12; n <= 2048; n = static_cast<int>(n * 1.37) + 1) {
    const double tuned =
        ice.true_time_with(n, static_cast<int>(tuner.best_for(n)));
    const double fallback = ice.true_time(n);
    tuned_total += tuned;
    default_total += fallback;
    wins += tuned <= fallback + 1e-9;
    ++counts;
  }
  EXPECT_LT(tuned_total, default_total) << "tuning must help on aggregate";
  EXPECT_GE(wins, counts * 2 / 3) << "tuning should win on most counts";
}

TEST_F(IceTunerFixture, TunedPolicySmoothsTheScalingCurve) {
  // The paper's point: default decompositions make the ice curve noisy;
  // the learned policy should fit a Table II curve better.
  const IceDecompositionTuner tuner(samples_);
  const Component& ice = config_.component(ComponentKind::kIce);

  std::vector<double> nodes;
  std::vector<double> default_times;
  std::vector<double> tuned_times;
  for (int n = 12; n <= 2048; n = static_cast<int>(n * 1.6) + 1) {
    nodes.push_back(n);
    default_times.push_back(ice.true_time(n));
    tuned_times.push_back(
        ice.true_time_with(n, static_cast<int>(tuner.best_for(n))));
  }
  const auto fit_default = perf::fit(nodes, default_times);
  const auto fit_tuned = perf::fit(nodes, tuned_times);
  EXPECT_GE(fit_tuned.r_squared, fit_default.r_squared - 1e-6);
  EXPECT_LT(fit_tuned.rmse, fit_default.rmse + 1e-9);
}

TEST_F(IceTunerFixture, PolicyPlugsIntoTheDriver) {
  const IceDecompositionTuner tuner(samples_);
  CaseConfig tuned_config = config_;
  tuned_config.ice_decomposition_policy = tuner.policy();

  const Layout layout = Layout::hybrid(80, 24, 104, 24);
  const RunResult default_run = run_case(config_, layout, 7);
  const RunResult tuned_run = run_case(tuned_config, layout, 7);
  // Same seed, same layout: only the ice time may differ, and it should
  // not get worse.
  EXPECT_LE(tuned_run.component_seconds.at(ComponentKind::kIce),
            default_run.component_seconds.at(ComponentKind::kIce) * 1.02);
}

TEST_F(IceTunerFixture, RequiresTwoCountsPerStrategy) {
  std::vector<IceTrainingSample> thin;
  for (int d = 0; d < kNumIceDecompositions; ++d) {
    thin.push_back({64, static_cast<IceDecomposition>(d), 10.0});
  }
  EXPECT_THROW(IceDecompositionTuner tuner(thin), InvalidArgument);
}

TEST_F(IceTunerFixture, ExtrapolationFallsBackToFit) {
  const IceDecompositionTuner tuner(samples_);
  // Far outside the trained range, predictions come from the smooth fit and
  // must remain positive and finite.
  const double far = tuner.tuned_seconds(16384);
  EXPECT_GT(far, 0.0);
  EXPECT_TRUE(std::isfinite(far));
}

}  // namespace
}  // namespace hslb::cesm
