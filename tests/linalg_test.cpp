// Unit tests for dense linear algebra: factorizations and least squares.
#include <cmath>

#include <gtest/gtest.h>

#include "hslb/common/error.hpp"
#include "hslb/common/rng.hpp"
#include "hslb/linalg/factor.hpp"
#include "hslb/linalg/least_squares.hpp"
#include "hslb/linalg/matrix.hpp"

namespace hslb::linalg {
namespace {

Matrix random_matrix(std::size_t rows, std::size_t cols, common::Rng& rng) {
  Matrix m(rows, cols);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      m(r, c) = rng.uniform(-1.0, 1.0);
    }
  }
  return m;
}

TEST(Matrix, IdentityAndTranspose) {
  const Matrix id = Matrix::identity(3);
  EXPECT_EQ(id(0, 0), 1.0);
  EXPECT_EQ(id(0, 1), 0.0);
  Matrix m = Matrix::from_rows({{1, 2}, {3, 4}, {5, 6}});
  const Matrix t = m.transposed();
  EXPECT_EQ(t.rows(), 2u);
  EXPECT_EQ(t.cols(), 3u);
  EXPECT_EQ(t(0, 2), 5.0);
  EXPECT_EQ(t(1, 0), 2.0);
}

TEST(Matrix, FromRowsRejectsRagged) {
  EXPECT_THROW(Matrix::from_rows({{1, 2}, {3}}), InvalidArgument);
}

TEST(VectorOps, DotNormAxpy) {
  const Vector a{1, 2, 3};
  const Vector b{4, 5, 6};
  EXPECT_DOUBLE_EQ(dot(a, b), 32.0);
  EXPECT_DOUBLE_EQ(norm2(Vector{3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(norm_inf(Vector{-7, 2}), 7.0);
  Vector y{1, 1, 1};
  axpy(2.0, a, y);
  EXPECT_DOUBLE_EQ(y[2], 7.0);
}

TEST(VectorOps, SizeMismatchThrows) {
  const Vector a{1, 2};
  const Vector b{1};
  EXPECT_THROW((void)dot(a, b), InvalidArgument);
  EXPECT_THROW((void)subtract(a, b), InvalidArgument);
}

TEST(MatrixOps, MatvecAndGram) {
  const Matrix a = Matrix::from_rows({{1, 2}, {3, 4}});
  const Vector x{1, 1};
  const Vector y = matvec(a, x);
  EXPECT_DOUBLE_EQ(y[0], 3.0);
  EXPECT_DOUBLE_EQ(y[1], 7.0);
  const Matrix g = gram(a);  // A^T A
  EXPECT_DOUBLE_EQ(g(0, 0), 10.0);
  EXPECT_DOUBLE_EQ(g(0, 1), 14.0);
  EXPECT_DOUBLE_EQ(g(1, 0), 14.0);
  EXPECT_DOUBLE_EQ(g(1, 1), 20.0);
}

TEST(MatrixOps, MatmulAgainstHand) {
  const Matrix a = Matrix::from_rows({{1, 2}, {3, 4}});
  const Matrix b = Matrix::from_rows({{5, 6}, {7, 8}});
  const Matrix c = matmul(a, b);
  EXPECT_DOUBLE_EQ(c(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 50.0);
}

TEST(Lu, SolvesRandomSystems) {
  common::Rng rng(99);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 1 + static_cast<std::size_t>(rng.uniform_int(1, 12));
    Matrix a = random_matrix(n, n, rng);
    for (std::size_t i = 0; i < n; ++i) {
      a(i, i) += 3.0;  // keep well-conditioned
    }
    Vector x_true(n);
    for (auto& v : x_true) {
      v = rng.uniform(-2.0, 2.0);
    }
    const Vector b = matvec(a, x_true);
    const auto lu = LuFactor::compute(a);
    ASSERT_TRUE(lu.has_value());
    const Vector x = lu->solve(b);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(x[i], x_true[i], 1e-9) << "trial " << trial;
    }
  }
}

TEST(Lu, SolveTransposedMatchesExplicitTranspose) {
  common::Rng rng(31);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 1 + static_cast<std::size_t>(rng.uniform_int(1, 12));
    Matrix a = random_matrix(n, n, rng);
    for (std::size_t i = 0; i < n; ++i) {
      a(i, i) += 3.0;
    }
    Vector y_true(n);
    for (auto& v : y_true) {
      v = rng.uniform(-2.0, 2.0);
    }
    // b = A^T y_true.
    Vector b(n, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        b[j] += a(i, j) * y_true[i];
      }
    }
    const auto lu = LuFactor::compute(a);
    ASSERT_TRUE(lu.has_value());
    const Vector y = lu->solve_transposed(b);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(y[i], y_true[i], 1e-9) << "trial " << trial;
    }
  }
}

TEST(Lu, SolveTransposedOnBadlyRowScaledMatrix) {
  // A row scaled down to ~1e-15 is a ~1e-15 *column* of A^T: factoring A^T
  // directly would be declared singular by the absolute pivot threshold,
  // but the factorization of A solves both orientations.
  Matrix a = Matrix::from_rows({{1.0, 2.0, 0.5},
                                {3e-15, 1e-15, 2e-15},
                                {0.25, -1.0, 4.0}});
  const auto lu = LuFactor::compute(a);
  ASSERT_TRUE(lu.has_value());
  const Vector y_true{1.0, 2e14, -1.0};
  Vector b(3, 0.0);
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      b[j] += a(i, j) * y_true[i];
    }
  }
  const Vector y = lu->solve_transposed(b);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(y[i], y_true[i], 1e-6 * std::fabs(y_true[i]) + 1e-9) << i;
  }
}

TEST(Lu, DetectsSingular) {
  const Matrix a = Matrix::from_rows({{1, 2}, {2, 4}});
  EXPECT_FALSE(LuFactor::compute(a).has_value());
}

TEST(Lu, DeterminantOfKnownMatrix) {
  const Matrix a = Matrix::from_rows({{2, 0}, {0, 3}});
  const auto lu = LuFactor::compute(a);
  ASSERT_TRUE(lu.has_value());
  EXPECT_NEAR(lu->determinant(), 6.0, 1e-12);
  // Permutation flips sign correctly.
  const Matrix b = Matrix::from_rows({{0, 1}, {1, 0}});
  EXPECT_NEAR(LuFactor::compute(b)->determinant(), -1.0, 1e-12);
}

TEST(Cholesky, SolvesSpdSystem) {
  common::Rng rng(7);
  const std::size_t n = 6;
  const Matrix m = random_matrix(n, n, rng);
  Matrix spd = gram(m);  // PSD
  for (std::size_t i = 0; i < n; ++i) {
    spd(i, i) += 1.0;  // PD
  }
  Vector x_true(n, 1.5);
  const Vector b = matvec(spd, x_true);
  const auto chol = CholeskyFactor::compute(spd);
  ASSERT_TRUE(chol.has_value());
  EXPECT_EQ(chol->shift(), 0.0);
  const Vector x = chol->solve(b);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(x[i], 1.5, 1e-8);
  }
}

TEST(Cholesky, RegularizesIndefinite) {
  Matrix indef = Matrix::from_rows({{1, 0}, {0, -1}});
  const auto chol = CholeskyFactor::compute(indef);
  ASSERT_TRUE(chol.has_value());
  EXPECT_GT(chol->shift(), 1.0 - 1e-9);  // must shift past the -1 eigenvalue
}

TEST(Cholesky, GivesUpBeyondMaxShift) {
  Matrix indef = Matrix::from_rows({{-1e12, 0}, {0, -1e12}});
  EXPECT_FALSE(CholeskyFactor::compute(indef, 0.0, 1e3).has_value());
}

TEST(LeastSquares, ExactOnSquareSystem) {
  const Matrix a = Matrix::from_rows({{2, 1}, {1, 3}});
  const Vector b{5, 10};
  const auto r = solve_least_squares(a, b);
  EXPECT_TRUE(r.full_rank);
  EXPECT_NEAR(r.x[0], 1.0, 1e-10);
  EXPECT_NEAR(r.x[1], 3.0, 1e-10);
  EXPECT_NEAR(r.residual_norm, 0.0, 1e-10);
}

TEST(LeastSquares, OverdeterminedMatchesNormalEquations) {
  common::Rng rng(3);
  const Matrix a = random_matrix(20, 4, rng);
  Vector b(20);
  for (auto& v : b) {
    v = rng.uniform(-1.0, 1.0);
  }
  const auto r = solve_least_squares(a, b);
  // At the LS optimum, A^T (A x - b) = 0.
  const Vector resid = subtract(matvec(a, r.x), b);
  const Vector grad = matvec_t(a, resid);
  EXPECT_LT(norm_inf(grad), 1e-10);
}

TEST(LeastSquares, FlagsRankDeficiency) {
  const Matrix a = Matrix::from_rows({{1, 1}, {1, 1}, {1, 1}});
  const Vector b{1, 2, 3};
  const auto r = solve_least_squares(a, b);
  EXPECT_FALSE(r.full_rank);
  // Residual must still be the LS-optimal one (projection onto span{(1,1)}).
  EXPECT_NEAR(r.residual_norm, std::sqrt(2.0), 1e-6);
}

TEST(LeastSquares, RequiresRowsGeCols) {
  const Matrix a = Matrix::from_rows({{1, 2, 3}});
  const Vector b{1};
  EXPECT_THROW((void)solve_least_squares(a, b), InvalidArgument);
}

}  // namespace
}  // namespace hslb::linalg
