// Unit tests for dense linear algebra: factorizations and least squares.
#include <cmath>

#include <gtest/gtest.h>

#include "hslb/common/error.hpp"
#include "hslb/common/rng.hpp"
#include "hslb/linalg/factor.hpp"
#include "hslb/linalg/least_squares.hpp"
#include "hslb/linalg/matrix.hpp"
#include "hslb/linalg/sparse.hpp"

namespace hslb::linalg {
namespace {

Matrix random_matrix(std::size_t rows, std::size_t cols, common::Rng& rng) {
  Matrix m(rows, cols);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      m(r, c) = rng.uniform(-1.0, 1.0);
    }
  }
  return m;
}

TEST(Matrix, IdentityAndTranspose) {
  const Matrix id = Matrix::identity(3);
  EXPECT_EQ(id(0, 0), 1.0);
  EXPECT_EQ(id(0, 1), 0.0);
  Matrix m = Matrix::from_rows({{1, 2}, {3, 4}, {5, 6}});
  const Matrix t = m.transposed();
  EXPECT_EQ(t.rows(), 2u);
  EXPECT_EQ(t.cols(), 3u);
  EXPECT_EQ(t(0, 2), 5.0);
  EXPECT_EQ(t(1, 0), 2.0);
}

TEST(Matrix, FromRowsRejectsRagged) {
  EXPECT_THROW(Matrix::from_rows({{1, 2}, {3}}), InvalidArgument);
}

TEST(VectorOps, DotNormAxpy) {
  const Vector a{1, 2, 3};
  const Vector b{4, 5, 6};
  EXPECT_DOUBLE_EQ(dot(a, b), 32.0);
  EXPECT_DOUBLE_EQ(norm2(Vector{3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(norm_inf(Vector{-7, 2}), 7.0);
  Vector y{1, 1, 1};
  axpy(2.0, a, y);
  EXPECT_DOUBLE_EQ(y[2], 7.0);
}

TEST(VectorOps, SizeMismatchThrows) {
  const Vector a{1, 2};
  const Vector b{1};
  EXPECT_THROW((void)dot(a, b), InvalidArgument);
  EXPECT_THROW((void)subtract(a, b), InvalidArgument);
}

TEST(MatrixOps, MatvecAndGram) {
  const Matrix a = Matrix::from_rows({{1, 2}, {3, 4}});
  const Vector x{1, 1};
  const Vector y = matvec(a, x);
  EXPECT_DOUBLE_EQ(y[0], 3.0);
  EXPECT_DOUBLE_EQ(y[1], 7.0);
  const Matrix g = gram(a);  // A^T A
  EXPECT_DOUBLE_EQ(g(0, 0), 10.0);
  EXPECT_DOUBLE_EQ(g(0, 1), 14.0);
  EXPECT_DOUBLE_EQ(g(1, 0), 14.0);
  EXPECT_DOUBLE_EQ(g(1, 1), 20.0);
}

TEST(MatrixOps, MatmulAgainstHand) {
  const Matrix a = Matrix::from_rows({{1, 2}, {3, 4}});
  const Matrix b = Matrix::from_rows({{5, 6}, {7, 8}});
  const Matrix c = matmul(a, b);
  EXPECT_DOUBLE_EQ(c(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 50.0);
}

TEST(Lu, SolvesRandomSystems) {
  common::Rng rng(99);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 1 + static_cast<std::size_t>(rng.uniform_int(1, 12));
    Matrix a = random_matrix(n, n, rng);
    for (std::size_t i = 0; i < n; ++i) {
      a(i, i) += 3.0;  // keep well-conditioned
    }
    Vector x_true(n);
    for (auto& v : x_true) {
      v = rng.uniform(-2.0, 2.0);
    }
    const Vector b = matvec(a, x_true);
    const auto lu = LuFactor::compute(a);
    ASSERT_TRUE(lu.has_value());
    const Vector x = lu->solve(b);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(x[i], x_true[i], 1e-9) << "trial " << trial;
    }
  }
}

TEST(Lu, SolveTransposedMatchesExplicitTranspose) {
  common::Rng rng(31);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 1 + static_cast<std::size_t>(rng.uniform_int(1, 12));
    Matrix a = random_matrix(n, n, rng);
    for (std::size_t i = 0; i < n; ++i) {
      a(i, i) += 3.0;
    }
    Vector y_true(n);
    for (auto& v : y_true) {
      v = rng.uniform(-2.0, 2.0);
    }
    // b = A^T y_true.
    Vector b(n, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        b[j] += a(i, j) * y_true[i];
      }
    }
    const auto lu = LuFactor::compute(a);
    ASSERT_TRUE(lu.has_value());
    const Vector y = lu->solve_transposed(b);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(y[i], y_true[i], 1e-9) << "trial " << trial;
    }
  }
}

TEST(Lu, SolveTransposedOnBadlyRowScaledMatrix) {
  // A row scaled down to ~1e-15 is a ~1e-15 *column* of A^T: factoring A^T
  // directly would be declared singular by the absolute pivot threshold,
  // but the factorization of A solves both orientations.
  Matrix a = Matrix::from_rows({{1.0, 2.0, 0.5},
                                {3e-15, 1e-15, 2e-15},
                                {0.25, -1.0, 4.0}});
  const auto lu = LuFactor::compute(a);
  ASSERT_TRUE(lu.has_value());
  const Vector y_true{1.0, 2e14, -1.0};
  Vector b(3, 0.0);
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      b[j] += a(i, j) * y_true[i];
    }
  }
  const Vector y = lu->solve_transposed(b);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(y[i], y_true[i], 1e-6 * std::fabs(y_true[i]) + 1e-9) << i;
  }
}

TEST(Lu, DetectsSingular) {
  const Matrix a = Matrix::from_rows({{1, 2}, {2, 4}});
  EXPECT_FALSE(LuFactor::compute(a).has_value());
}

TEST(Lu, DeterminantOfKnownMatrix) {
  const Matrix a = Matrix::from_rows({{2, 0}, {0, 3}});
  const auto lu = LuFactor::compute(a);
  ASSERT_TRUE(lu.has_value());
  EXPECT_NEAR(lu->determinant(), 6.0, 1e-12);
  // Permutation flips sign correctly.
  const Matrix b = Matrix::from_rows({{0, 1}, {1, 0}});
  EXPECT_NEAR(LuFactor::compute(b)->determinant(), -1.0, 1e-12);
}

TEST(Cholesky, SolvesSpdSystem) {
  common::Rng rng(7);
  const std::size_t n = 6;
  const Matrix m = random_matrix(n, n, rng);
  Matrix spd = gram(m);  // PSD
  for (std::size_t i = 0; i < n; ++i) {
    spd(i, i) += 1.0;  // PD
  }
  Vector x_true(n, 1.5);
  const Vector b = matvec(spd, x_true);
  const auto chol = CholeskyFactor::compute(spd);
  ASSERT_TRUE(chol.has_value());
  EXPECT_EQ(chol->shift(), 0.0);
  const Vector x = chol->solve(b);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(x[i], 1.5, 1e-8);
  }
}

TEST(Cholesky, RegularizesIndefinite) {
  Matrix indef = Matrix::from_rows({{1, 0}, {0, -1}});
  const auto chol = CholeskyFactor::compute(indef);
  ASSERT_TRUE(chol.has_value());
  EXPECT_GT(chol->shift(), 1.0 - 1e-9);  // must shift past the -1 eigenvalue
}

TEST(Cholesky, GivesUpBeyondMaxShift) {
  Matrix indef = Matrix::from_rows({{-1e12, 0}, {0, -1e12}});
  EXPECT_FALSE(CholeskyFactor::compute(indef, 0.0, 1e3).has_value());
}

TEST(LeastSquares, ExactOnSquareSystem) {
  const Matrix a = Matrix::from_rows({{2, 1}, {1, 3}});
  const Vector b{5, 10};
  const auto r = solve_least_squares(a, b);
  EXPECT_TRUE(r.full_rank);
  EXPECT_NEAR(r.x[0], 1.0, 1e-10);
  EXPECT_NEAR(r.x[1], 3.0, 1e-10);
  EXPECT_NEAR(r.residual_norm, 0.0, 1e-10);
}

TEST(LeastSquares, OverdeterminedMatchesNormalEquations) {
  common::Rng rng(3);
  const Matrix a = random_matrix(20, 4, rng);
  Vector b(20);
  for (auto& v : b) {
    v = rng.uniform(-1.0, 1.0);
  }
  const auto r = solve_least_squares(a, b);
  // At the LS optimum, A^T (A x - b) = 0.
  const Vector resid = subtract(matvec(a, r.x), b);
  const Vector grad = matvec_t(a, resid);
  EXPECT_LT(norm_inf(grad), 1e-10);
}

TEST(LeastSquares, FlagsRankDeficiency) {
  const Matrix a = Matrix::from_rows({{1, 1}, {1, 1}, {1, 1}});
  const Vector b{1, 2, 3};
  const auto r = solve_least_squares(a, b);
  EXPECT_FALSE(r.full_rank);
  // Residual must still be the LS-optimal one (projection onto span{(1,1)}).
  EXPECT_NEAR(r.residual_norm, std::sqrt(2.0), 1e-6);
}

TEST(LeastSquares, RequiresRowsGeCols) {
  const Matrix a = Matrix::from_rows({{1, 2, 3}});
  const Vector b{1};
  EXPECT_THROW((void)solve_least_squares(a, b), InvalidArgument);
}

// --- Sparse LU + eta file (the revised-simplex basis machinery) ---------

SparseColumns from_dense(const Matrix& m) {
  SparseColumns out(static_cast<int>(m.rows()));
  for (std::size_t j = 0; j < m.cols(); ++j) {
    for (std::size_t i = 0; i < m.rows(); ++i) {
      out.add_entry(static_cast<int>(i), m(i, j));
    }
    out.finish_column();
  }
  return out;
}

Matrix random_sparse_square(std::size_t m, double density, common::Rng& rng) {
  Matrix out(m, m);
  for (std::size_t i = 0; i < m; ++i) {
    out(i, i) = rng.uniform(0.5, 2.0) * (rng.uniform(0.0, 1.0) < 0.5 ? -1 : 1);
    for (std::size_t j = 0; j < m; ++j) {
      if (i != j && rng.uniform(0.0, 1.0) < density) {
        out(i, j) = rng.uniform(-1.0, 1.0);
      }
    }
  }
  return out;
}

TEST(SparseLu, SolvesMatchDenseLu) {
  common::Rng rng(91);
  for (int trial = 0; trial < 30; ++trial) {
    const std::size_t m = 1 + static_cast<std::size_t>(rng.uniform(0.0, 24.0));
    const Matrix b = random_sparse_square(m, 0.2, rng);
    SparseLu lu;
    ASSERT_TRUE(lu.factorize(from_dense(b)));
    Vector rhs(m);
    for (double& v : rhs) {
      v = rng.uniform(-5.0, 5.0);
    }
    Vector x(m), y(m), work(m);
    lu.ftran(rhs, x, work);
    // Residual of B x = rhs.
    for (std::size_t i = 0; i < m; ++i) {
      double acc = 0.0;
      for (std::size_t j = 0; j < m; ++j) {
        acc += b(i, j) * x[j];
      }
      EXPECT_NEAR(acc, rhs[i], 1e-9) << "trial " << trial << " row " << i;
    }
    lu.btran(rhs, y, work);
    for (std::size_t j = 0; j < m; ++j) {
      double acc = 0.0;
      for (std::size_t i = 0; i < m; ++i) {
        acc += b(i, j) * y[i];
      }
      EXPECT_NEAR(acc, rhs[j], 1e-9) << "trial " << trial << " col " << j;
    }
  }
}

TEST(SparseLu, RejectsSingular) {
  Matrix b(3, 3);
  b(0, 0) = 1.0;
  b(1, 0) = 2.0;  // column 1 empty, column 2 a multiple of column 0
  b(0, 2) = 3.0;
  b(1, 2) = 6.0;
  SparseLu lu;
  EXPECT_FALSE(lu.factorize(from_dense(b)));
  EXPECT_FALSE(lu.valid());
}

TEST(SparseLu, DeterministicFactors) {
  common::Rng rng(17);
  const Matrix b = random_sparse_square(16, 0.3, rng);
  SparseLu first, second;
  ASSERT_TRUE(first.factorize(from_dense(b)));
  ASSERT_TRUE(second.factorize(from_dense(b)));
  Vector rhs(16, 1.0), x1(16), x2(16), work(16);
  first.ftran(rhs, x1, work);
  second.ftran(rhs, x2, work);
  for (std::size_t i = 0; i < 16; ++i) {
    EXPECT_EQ(x1[i], x2[i]);  // bit-identical, not merely close
  }
}

TEST(EtaFile, UpdatedSolvesMatchFreshFactorization) {
  // Replace basis columns one at a time; after each product-form update the
  // (base LU + eta file) solves must agree with a fresh LU of the explicitly
  // updated matrix.
  common::Rng rng(7);
  const std::size_t m = 12;
  Matrix b = random_sparse_square(m, 0.25, rng);
  SparseLu base;
  ASSERT_TRUE(base.factorize(from_dense(b)));
  EtaFile etas;
  Vector w(m), work(m);
  for (int update = 0; update < 8; ++update) {
    const std::size_t r = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(m) - 1));
    Vector col(m, 0.0);
    col[r] = rng.uniform(0.5, 1.5);  // keep the replacement well-conditioned
    for (std::size_t i = 0; i < m; ++i) {
      if (rng.uniform(0.0, 1.0) < 0.2) {
        col[i] = rng.uniform(-1.0, 1.0);
      }
    }
    // FTRAN image of the new column through the current factor.
    base.ftran(col, w, work);
    etas.apply_ftran(w);
    if (!etas.append(w, static_cast<int>(r), 1e-8)) {
      continue;  // too ill-conditioned to update; a real engine refactorizes
    }
    for (std::size_t i = 0; i < m; ++i) {
      b(i, r) = col[i];
    }
    SparseLu fresh;
    ASSERT_TRUE(fresh.factorize(from_dense(b)));
    Vector rhs(m);
    for (double& v : rhs) {
      v = rng.uniform(-2.0, 2.0);
    }
    Vector via_eta(m), via_fresh(m);
    base.ftran(rhs, via_eta, work);
    etas.apply_ftran(via_eta);
    fresh.ftran(rhs, via_fresh, work);
    for (std::size_t i = 0; i < m; ++i) {
      EXPECT_NEAR(via_eta[i], via_fresh[i], 1e-8) << "update " << update;
    }
    Vector bt_eta = rhs;
    etas.apply_btran(bt_eta);
    Vector y_eta(m);
    base.btran(bt_eta, y_eta, work);
    Vector y_fresh(m);
    fresh.btran(rhs, y_fresh, work);
    for (std::size_t i = 0; i < m; ++i) {
      EXPECT_NEAR(y_eta[i], y_fresh[i], 1e-8) << "update " << update;
    }
  }
  EXPECT_GT(etas.count(), 0);
}

TEST(EtaFile, RefusesUnstablePivot) {
  EtaFile etas;
  Vector w{1.0, 1e-12, 3.0};  // pivot entry far below the stability floor
  EXPECT_FALSE(etas.append(w, 1, 1e-8));
  EXPECT_EQ(etas.count(), 0);
}

}  // namespace
}  // namespace hslb::linalg
