// The service-layer chaos stack: deterministic fault draws (thread-order
// independent, replayable by seed), cache poison detection and stale
// serving, the per-case circuit breaker state machine, and the degradation
// ladder end to end -- brownout serves, hedged retries, coalesced followers
// receiving typed errors instead of hanging, and chaos-off byte-identity.
#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "hslb/obs/metrics.hpp"
#include "hslb/svc/service.hpp"

namespace hslb::svc {
namespace {

using cesm::ComponentKind;
using Clock = SolveCache::Clock;

std::map<ComponentKind, perf::PerfModel> reference_fits() {
  std::map<ComponentKind, perf::PerfModel> fits;
  fits[ComponentKind::kAtm] =
      perf::PerfModel(perf::PerfParams{40000.0, 0.001, 1.2, 10.0});
  fits[ComponentKind::kOcn] =
      perf::PerfModel(perf::PerfParams{25000.0, 0.002, 1.1, 20.0});
  fits[ComponentKind::kIce] =
      perf::PerfModel(perf::PerfParams{8000.0, 0.0, 1.0, 5.0});
  fits[ComponentKind::kLnd] =
      perf::PerfModel(perf::PerfParams{3000.0, 0.0, 1.0, 2.0});
  return fits;
}

AllocationRequest reference_request(int total_nodes = 128) {
  AllocationRequest request;
  request.case_name = "1deg";
  request.total_nodes = total_nodes;
  request.fits = reference_fits();
  return request;
}

/// A heavy request (big unconstrained slice) that occupies a worker while
/// identical requests pile up behind it.
AllocationRequest blocker_request() {
  AllocationRequest request;
  request.case_name = "eighth";
  request.total_nodes = 32768;
  request.constrain_ocean = false;
  request.constrain_atm = false;
  request.fits = reference_fits();
  return request;
}

AllocationResponse make_response(int atm_nodes) {
  AllocationResponse response;
  response.allocation.nodes[ComponentKind::kAtm] = atm_nodes;
  response.allocation.predicted_seconds[ComponentKind::kAtm] = 1.5;
  response.allocation.predicted_total = 1.5;
  response.solver_status = minlp::MinlpStatus::kOptimal;
  return response;
}

// --- The injector: a pure function of (seed, key, attempt). -----------------

TEST(ChaosInjector, DrawsAreThreadOrderIndependent) {
  const ChaosInjector injector(ChaosSpec::uniform(0.5, 1234));
  constexpr int kKeys = 64;
  constexpr int kAttempts = 4;
  std::vector<std::uint64_t> hashes;
  for (int k = 0; k < kKeys; ++k) {
    hashes.push_back(ChaosInjector::key_hash("key-" + std::to_string(k)));
  }
  // Serial reference, forward order.
  std::vector<ChaosKind> serial;
  std::vector<bool> serial_poison;
  for (int k = 0; k < kKeys; ++k) {
    for (int a = 0; a < kAttempts; ++a) {
      serial.push_back(injector.draw_solve(hashes[static_cast<std::size_t>(k)], a));
      serial_poison.push_back(
          injector.draw_poison(hashes[static_cast<std::size_t>(k)], a));
    }
  }
  // Concurrent draws in scrambled per-thread orders must agree exactly.
  std::vector<ChaosKind> concurrent(serial.size(), ChaosKind::kNone);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (int k = kKeys - 1; k >= 0; --k) {
        for (int a = 0; a < kAttempts; ++a) {
          if ((k + a) % 4 != t) {
            continue;
          }
          concurrent[static_cast<std::size_t>(k * kAttempts + a)] =
              injector.draw_solve(hashes[static_cast<std::size_t>(k)], a);
        }
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(serial, concurrent);
  // Same spec, fresh injector: the draws replay.
  const ChaosInjector replay(ChaosSpec::uniform(0.5, 1234));
  for (std::size_t i = 0; i < serial.size(); ++i) {
    const int k = static_cast<int>(i) / kAttempts;
    const int a = static_cast<int>(i) % kAttempts;
    EXPECT_EQ(replay.draw_solve(hashes[static_cast<std::size_t>(k)], a),
              serial[i]);
    EXPECT_EQ(replay.draw_poison(hashes[static_cast<std::size_t>(k)], a),
              serial_poison[i]);
  }
  // A different seed is a different fault schedule.
  const ChaosInjector reseeded(ChaosSpec::uniform(0.5, 99));
  std::size_t differing = 0;
  for (std::size_t i = 0; i < serial.size(); ++i) {
    const int k = static_cast<int>(i) / kAttempts;
    const int a = static_cast<int>(i) % kAttempts;
    if (reseeded.draw_solve(hashes[static_cast<std::size_t>(k)], a) !=
        serial[i]) {
      ++differing;
    }
  }
  EXPECT_GT(differing, 0u);
}

TEST(ChaosInjector, UniformSplitCoversEveryClassAtRoughlyTheAskedRate) {
  const double rate = 0.4;
  const ChaosSpec spec = ChaosSpec::uniform(rate, 7);
  EXPECT_TRUE(spec.enabled());
  EXPECT_NEAR(spec.solve_rate(), 0.85 * rate, 1e-12);
  const ChaosInjector injector(spec);
  std::map<ChaosKind, int> tally;
  constexpr int kDraws = 4000;
  for (int k = 0; k < kDraws; ++k) {
    ++tally[injector.draw_solve(
        ChaosInjector::key_hash("k" + std::to_string(k)), 0)];
  }
  // Every solve-path class fires, and the total is near the configured rate.
  EXPECT_GT(tally[ChaosKind::kSolveException], 0);
  EXPECT_GT(tally[ChaosKind::kSolveStall], 0);
  EXPECT_GT(tally[ChaosKind::kLeaderDeath], 0);
  EXPECT_GT(tally[ChaosKind::kWorkerAbort], 0);
  const double fault_share =
      1.0 - static_cast<double>(tally[ChaosKind::kNone]) / kDraws;
  EXPECT_NEAR(fault_share, spec.solve_rate(), 0.05);
}

TEST(ChaosInjector, FaultWindowScriptsFailThenRecover) {
  ChaosSpec spec;
  spec.solve_exception_prob = 1.0;
  spec.exempt_first_attempts = 2;
  spec.max_fault_attempts = 3;
  const ChaosInjector injector(spec);
  const std::uint64_t hash = ChaosInjector::key_hash("scripted");
  for (int attempt = 0; attempt < 10; ++attempt) {
    const bool in_window = attempt >= 2 && attempt < 5;
    EXPECT_EQ(injector.draw_solve(hash, attempt),
              in_window ? ChaosKind::kSolveException : ChaosKind::kNone)
        << "attempt " << attempt;
  }
  // A default spec is a guaranteed no-op.
  EXPECT_FALSE(ChaosSpec{}.enabled());
}

// --- Cache integrity: poison detection and stale serving. -------------------

TEST(ChaosCache, PoisonedEntryIsDetectedAndDroppedNotServed) {
  SolveCache cache(CacheConfig{});
  const auto now = Clock::now();
  cache.put("k", make_response(64), now);
  ASSERT_TRUE(cache.get("k", now).has_value());
  ASSERT_TRUE(cache.poison("k"));
  // The garbled bytes fail their checksum at lookup: a miss, never a serve.
  EXPECT_FALSE(cache.get("k", now).has_value());
  EXPECT_EQ(cache.stats().poison_detected, 1);
  EXPECT_EQ(cache.size(), 0u);
  // Poisoning a non-resident key is a no-op.
  EXPECT_FALSE(cache.poison("absent"));
}

TEST(ChaosCache, StaleRungServesExpiredButChecksummedEntries) {
  CacheConfig config;
  config.ttl_seconds = 10.0;
  config.keep_expired = true;
  SolveCache cache(config);
  const auto t0 = Clock::now();
  cache.put("k", make_response(96), t0);
  const auto later = t0 + std::chrono::seconds(25);
  // Fresh-path lookup reports a miss (and one expiration) but keeps the
  // entry for the ladder.
  EXPECT_FALSE(cache.get("k", later).has_value());
  EXPECT_EQ(cache.stats().expirations, 1);
  double stale_seconds = 0.0;
  const auto stale = cache.get_stale("k", later, &stale_seconds);
  ASSERT_TRUE(stale.has_value());
  EXPECT_EQ(stale->allocation.nodes.at(ComponentKind::kAtm), 96);
  EXPECT_NEAR(stale_seconds, 15.0, 0.5);
  EXPECT_EQ(cache.stats().stale_hits, 1);
  // get_stale still refuses poisoned bytes.
  ASSERT_TRUE(cache.poison("k"));
  EXPECT_FALSE(cache.get_stale("k", later).has_value());
  EXPECT_EQ(cache.stats().poison_detected, 1);
}

// --- The breaker state machine. ---------------------------------------------

TEST(Breaker, TripsOpenProbesHalfOpenAndRecovers) {
  BreakerConfig config;
  config.window = 8;
  config.min_samples = 4;
  config.failure_ratio = 0.5;
  config.open_rejects = 3;
  config.half_open_probes = 2;
  CircuitBreaker breaker(config);
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  // Failures below min_samples never trip.
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(breaker.allow());
    breaker.record(false);
  }
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  ASSERT_TRUE(breaker.allow());
  breaker.record(false);  // 4th failure: ratio 1.0 >= 0.5, samples >= 4
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);
  // Open absorbs open_rejects attempts, then goes half-open.
  for (int i = 0; i < 3; ++i) {
    EXPECT_FALSE(breaker.allow());
  }
  EXPECT_EQ(breaker.state(), BreakerState::kHalfOpen);
  // A failed probe re-opens immediately.
  ASSERT_TRUE(breaker.allow());
  breaker.record(false);
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);
  // Probe again; this time both probes succeed and the breaker closes.
  for (int i = 0; i < 3; ++i) {
    EXPECT_FALSE(breaker.allow());
  }
  EXPECT_EQ(breaker.state(), BreakerState::kHalfOpen);
  for (int i = 0; i < 2; ++i) {
    ASSERT_TRUE(breaker.allow());
    breaker.record(true);
  }
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  const BreakerStats stats = breaker.stats();
  EXPECT_EQ(stats.opened, 2);
  EXPECT_EQ(stats.closed, 1);
  EXPECT_EQ(stats.rejected, 6);
}

TEST(Breaker, HalfOpenBoundsConcurrentProbes) {
  BreakerConfig config;
  config.window = 4;
  config.min_samples = 2;
  config.open_rejects = 1;
  config.half_open_probes = 2;
  CircuitBreaker breaker(config);
  for (int i = 0; i < 2; ++i) {
    ASSERT_TRUE(breaker.allow());
    breaker.record(false);
  }
  ASSERT_EQ(breaker.state(), BreakerState::kOpen);
  EXPECT_FALSE(breaker.allow());  // absorbed reject -> half-open
  ASSERT_EQ(breaker.state(), BreakerState::kHalfOpen);
  EXPECT_TRUE(breaker.allow());
  EXPECT_TRUE(breaker.allow());
  EXPECT_FALSE(breaker.allow());  // third concurrent probe is turned away
}

// --- The ladder, end to end through the service. ----------------------------

TEST(ChaosService, HeuristicBrownoutWhenEverySolveThrows) {
  ServiceConfig config;
  config.workers = 1;
  config.chaos.solve_exception_prob = 1.0;
  AllocationService service(config);
  const SolveOutcome outcome = service.solve(reference_request(128));
  ASSERT_TRUE(outcome.has_value());
  EXPECT_TRUE(outcome->degraded);
  EXPECT_EQ(outcome->served, ServeLevel::kHeuristic);
  EXPECT_NE(outcome->fault_detail.find("chaos"), std::string::npos);
  // The brownout answer is a real allocation over the full slice.
  int total = 0;
  for (const auto& [kind, nodes] : outcome->allocation.nodes) {
    static_cast<void>(kind);
    total += nodes;
  }
  EXPECT_GT(total, 0);
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.served_heuristic, 1);
  EXPECT_EQ(stats.chaos_injected, 1);
  // Brownout answers never enter the cache.
  EXPECT_EQ(service.cache_stats().size, 0u);
}

TEST(ChaosService, StaleCacheOutranksHeuristicOnceWarm) {
  ServiceConfig config;
  config.workers = 1;
  config.cache.ttl_seconds = 1e-9;  // everything is stale immediately
  config.cache.keep_expired = true;
  config.chaos.solve_exception_prob = 1.0;
  config.chaos.exempt_first_attempts = 1;  // warm the cache cleanly first
  AllocationService service(config);
  const AllocationRequest request = reference_request(192);
  const SolveOutcome warm = service.solve(request);
  ASSERT_TRUE(warm.has_value());
  EXPECT_EQ(warm->served, ServeLevel::kExact);
  EXPECT_FALSE(warm->degraded);
  // Second ask: the fresh lookup misses (expired), the exact attempt dies,
  // and the ladder serves the expired-but-checksummed entry.
  const SolveOutcome stale = service.solve(request);
  ASSERT_TRUE(stale.has_value());
  EXPECT_TRUE(stale->degraded);
  EXPECT_EQ(stale->served, ServeLevel::kStaleCache);
  // The payload matches the exact answer it is a stale copy of.
  AllocationResponse comparable = *stale;
  comparable.degraded = false;
  comparable.served = ServeLevel::kExact;
  comparable.fault_detail.clear();
  EXPECT_EQ(to_json(comparable), to_json(*warm));
  EXPECT_EQ(service.stats().served_stale, 1);
}

TEST(ChaosService, HedgedRetryRecoversARetryableDeath) {
  ServiceConfig config;
  config.workers = 1;
  config.chaos.worker_abort_prob = 1.0;
  config.chaos.max_fault_attempts = 1;  // attempt 0 dies, attempt 1 is clean
  AllocationService service(config);
  const SolveOutcome outcome = service.solve(reference_request(128));
  ASSERT_TRUE(outcome.has_value());
  // The retry rescued the exact answer: no brownout, nothing degraded.
  EXPECT_EQ(outcome->served, ServeLevel::kExact);
  EXPECT_FALSE(outcome->degraded);
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.hedged_retries, 1);
  EXPECT_EQ(stats.chaos_injected, 1);
  EXPECT_EQ(stats.solved, 1);
}

TEST(ChaosService, CachePoisonIsDetectedAndReSolvedNotServed) {
  ServiceConfig config;
  config.workers = 1;
  config.chaos.cache_poison_prob = 1.0;  // every insert is garbled
  AllocationService service(config);
  const AllocationRequest request = reference_request(160);
  const SolveOutcome first = service.solve(request);
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->served, ServeLevel::kExact);
  // The poisoned entry must never be served: the checksum rejects it and
  // the service re-solves to the same exact answer.
  const SolveOutcome second = service.solve(request);
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->served, ServeLevel::kExact);
  EXPECT_EQ(to_json(*second), to_json(*first));
  EXPECT_GE(service.cache_stats().poison_detected, 1);
  EXPECT_EQ(service.stats().cache_hits, 0);
}

// The issue's scripted scenario: the coalescer leader dies mid-solve.
// Followers must receive the leader's typed error -- never hang -- and a
// follow-up request must re-solve successfully.
TEST(ChaosService, CoalescedFollowersGetTypedErrorWhenLeaderDies) {
  ServiceConfig config;
  config.workers = 1;
  config.ladder_enabled = false;  // surface the raw typed error
  config.hedged_retry = false;
  config.cache.ttl_seconds = 1e-9;         // answers expire immediately...
  config.cache.keep_expired = false;       // ...and are not retained
  config.chaos.leader_death_prob = 1.0;
  config.chaos.exempt_first_attempts = 1;  // attempt 0 clean (pre-warm)
  config.chaos.max_fault_attempts = 1;     // attempt 1 dies, attempt 2 clean
  AllocationService service(config);
  const AllocationRequest doomed = reference_request(224);
  // Attempt 0: establishes the per-key attempt counter cleanly.
  ASSERT_TRUE(service.solve(doomed).has_value());
  // Occupy the single worker so the doomed flight stays queued while
  // followers pile onto it.
  const AllocationService::Ticket blocker = service.submit(blocker_request());
  const AllocationService::Ticket leader = service.submit(doomed);
  EXPECT_FALSE(leader.cache_hit);
  std::vector<AllocationService::Ticket> followers;
  for (int i = 0; i < 4; ++i) {
    followers.push_back(service.submit(doomed));
  }
  // Every follower coalesced onto the queued leader.
  for (const AllocationService::Ticket& ticket : followers) {
    EXPECT_TRUE(ticket.coalesced);
  }
  // Attempt 1 is the leader's solve: the injected death fails the whole
  // flight with the typed root cause.  get() returning at all is the
  // no-hang guarantee (the suite would time out otherwise).
  const SolveOutcome led = leader.future.get();
  ASSERT_FALSE(led.has_value());
  EXPECT_EQ(led.error().code, ErrorCode::kSolveFailed);
  EXPECT_EQ(led.error().phase, "solve");
  EXPECT_NE(led.error().message.find("leader died"), std::string::npos);
  for (const AllocationService::Ticket& ticket : followers) {
    const SolveOutcome outcome = ticket.future.get();
    ASSERT_FALSE(outcome.has_value());
    EXPECT_EQ(outcome.error().code, ErrorCode::kSolveFailed);
    EXPECT_EQ(outcome.error().message, led.error().message);
  }
  ASSERT_TRUE(blocker.future.get().has_value());
  // Attempt 2 is past the fault window: the follow-up re-solves cleanly.
  const SolveOutcome retry = service.solve(doomed);
  ASSERT_TRUE(retry.has_value());
  EXPECT_EQ(retry->served, ServeLevel::kExact);
}

TEST(ChaosService, BreakerTripsShedsAndRecoversByCounts) {
  ServiceConfig config;
  config.workers = 1;
  config.ladder_enabled = false;
  config.hedged_retry = false;
  config.cache.ttl_seconds = 1e-9;
  config.chaos.solve_exception_prob = 1.0;
  config.chaos.max_fault_attempts = 6;  // fail 6 solve attempts, then heal
  config.breaker.window = 8;
  config.breaker.min_samples = 4;
  config.breaker.open_rejects = 3;
  config.breaker.half_open_probes = 1;
  AllocationService service(config);
  const AllocationRequest request = reference_request(256);
  // Drive requests until the service answers again: failures trip the
  // breaker, open-state requests shed without burning solve attempts, the
  // half-open probe lands after the fault window, and the case recovers.
  int solve_failures = 0;
  int breaker_sheds = 0;
  SolveOutcome last = service.solve(request);
  for (int i = 0; i < 40 && !last.has_value(); ++i) {
    if (last.error().phase == "breaker") {
      ++breaker_sheds;
    } else if (last.error().phase == "solve") {
      ++solve_failures;
    }
    last = service.solve(request);
  }
  ASSERT_TRUE(last.has_value());
  EXPECT_EQ(last->served, ServeLevel::kExact);
  EXPECT_GE(solve_failures, 4);  // enough to trip
  EXPECT_GE(breaker_sheds, 3);   // open state shed without solving
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.shed_breaker, breaker_sheds);
  const auto breaker = service.breaker_stats("1deg");
  ASSERT_TRUE(breaker.has_value());
  EXPECT_EQ(breaker->state, BreakerState::kClosed);
  EXPECT_GE(breaker->opened, 1);
  EXPECT_GE(breaker->closed, 1);
}

// --- Adaptive admission. ----------------------------------------------------

TEST(Admission, ShedsOnlyWhenTailOutrunsBudgetAndQueueIsNonEmpty) {
  obs::Registry registry;
  AdmissionConfig config;
  config.enabled = true;
  config.headroom = 1.0;
  config.min_observations = 8;
  config.refresh_interval = 1;
  config.min_queue_depth = 1;
  AdmissionController controller(config, &registry);
  obs::Histogram& histogram = registry.histogram(
      "svc.request.ms", obs::Registry::hdr_time_bounds());
  // Below min_observations the controller never sheds.
  for (int i = 0; i < 4; ++i) {
    histogram.observe(500.0);
  }
  EXPECT_TRUE(controller.admit(0.1, 5).admit);
  for (int i = 0; i < 4; ++i) {
    histogram.observe(500.0);
  }
  // Tail (~500 ms) over budget (100 ms) with a backed-up queue: shed.
  const AdmissionDecision shed = controller.admit(0.1, 5);
  EXPECT_FALSE(shed.admit);
  EXPECT_GT(shed.p99_ms, shed.budget_ms);
  EXPECT_EQ(controller.shed_count(), 1);
  // An empty queue always admits (nothing to wait behind)...
  EXPECT_TRUE(controller.admit(0.1, 0).admit);
  // ...as does a roomy budget, or no deadline at all.
  EXPECT_TRUE(controller.admit(10.0, 5).admit);
  EXPECT_TRUE(controller.admit(0.0, 5).admit);
}

// --- Chaos off: the exact pre-chaos code path. ------------------------------

TEST(ChaosService, DisabledChaosIsByteIdenticalToLadderFreeService) {
  ServiceConfig plain;
  plain.workers = 2;
  plain.ladder_enabled = false;
  plain.breaker_enabled = false;
  plain.hedged_retry = false;
  ServiceConfig guarded;  // defaults: ladder + breaker on, chaos disabled
  guarded.workers = 2;
  AllocationService a(plain);
  AllocationService b(guarded);
  for (const int nodes : {64, 128, 256}) {
    const SolveOutcome from_a = a.solve(reference_request(nodes));
    const SolveOutcome from_b = b.solve(reference_request(nodes));
    ASSERT_TRUE(from_a.has_value());
    ASSERT_TRUE(from_b.has_value());
    EXPECT_EQ(to_json(*from_a), to_json(*from_b));
    EXPECT_FALSE(from_b->degraded);
  }
  EXPECT_EQ(b.stats().chaos_injected, 0);
  EXPECT_EQ(b.stats().served_stale, 0);
  EXPECT_EQ(b.stats().served_heuristic, 0);
}

}  // namespace
}  // namespace hslb::svc
