// Tests for the AMPL-lite reader/writer.
#include <cmath>

#include <gtest/gtest.h>

#include "hslb/common/error.hpp"
#include "hslb/hslb/layout_model.hpp"
#include "hslb/minlp/ampl.hpp"
#include "hslb/minlp/branch_and_bound.hpp"

namespace hslb::minlp {
namespace {

TEST(AmplExpr, ParsesArithmetic) {
  const std::vector<std::string> vars{"x", "y"};
  const linalg::Vector at{3.0, 2.0};
  EXPECT_DOUBLE_EQ(expr::eval(parse_expression("2 * x + y", vars), at), 8.0);
  EXPECT_DOUBLE_EQ(expr::eval(parse_expression("x - y - 1", vars), at), 0.0);
  EXPECT_DOUBLE_EQ(expr::eval(parse_expression("x * (y + 1)", vars), at),
                   9.0);
  EXPECT_DOUBLE_EQ(expr::eval(parse_expression("x / y", vars), at), 1.5);
  EXPECT_DOUBLE_EQ(expr::eval(parse_expression("x ^ 2", vars), at), 9.0);
  EXPECT_DOUBLE_EQ(expr::eval(parse_expression("-x + 5", vars), at), 2.0);
  EXPECT_NEAR(expr::eval(parse_expression("exp(log(x))", vars), at), 3.0,
              1e-12);
}

TEST(AmplExpr, PrecedenceAndAssociativity) {
  const std::vector<std::string> vars{"x"};
  const linalg::Vector at{2.0};
  EXPECT_DOUBLE_EQ(expr::eval(parse_expression("1 + 2 * x", vars), at), 5.0);
  EXPECT_DOUBLE_EQ(expr::eval(parse_expression("8 / 2 / x", vars), at), 2.0);
  EXPECT_DOUBLE_EQ(expr::eval(parse_expression("2 ^ 3 ^ 1", vars), at), 8.0);
  EXPECT_DOUBLE_EQ(expr::eval(parse_expression("10 - 2 - 3", vars), at), 5.0);
}

TEST(AmplExpr, ScientificNotation) {
  const std::vector<std::string> vars{};
  EXPECT_DOUBLE_EQ(
      expr::eval(parse_expression("1.5e3 + 2.5e-1", vars), linalg::Vector{}),
      1500.25);
}

TEST(AmplExpr, Errors) {
  const std::vector<std::string> vars{"x"};
  EXPECT_THROW((void)parse_expression("x + unknown", vars), InvalidArgument);
  EXPECT_THROW((void)parse_expression("(x + 1", vars), InvalidArgument);
  EXPECT_THROW((void)parse_expression("x 3", vars), InvalidArgument);
}

TEST(AmplModel, ParsesTheQuickstartModel) {
  const std::string text = R"(
    # min T s.t. T >= 100/n + 0.5 n, n integer
    var T >= 0;
    var n integer >= 1 <= 100;
    var t >= 0;
    minimize obj: T;
    s.t. time_law: t = 100 / n + 0.5 * n;   # becomes a link
    s.t. bound: T >= t;
  )";
  Model model = parse_ampl(text);
  EXPECT_EQ(model.num_vars(), 3u);
  ASSERT_EQ(model.links().size(), 1u);
  EXPECT_EQ(model.linear_constraints().size(), 1u);

  const auto result = solve(model);
  ASSERT_EQ(result.status, MinlpStatus::kOptimal);
  EXPECT_NEAR(result.objective, 100.0 / 14.0 + 7.0, 1e-6);
}

TEST(AmplModel, LinkDetectionRequiresSingleForeignVariable) {
  const std::string text = R"(
    var a >= 0 <= 10;
    var b >= 0 <= 10;
    var c >= 0 <= 10;
    minimize obj: a;
    s.t. not_a_link: a = b * c;   # two foreign vars: stays nonlinear
  )";
  const Model model = parse_ampl(text);
  EXPECT_TRUE(model.links().empty());
  EXPECT_EQ(model.nonlinear_constraints().size(), 2u);  // both sides
}

TEST(AmplModel, RangeRowsAndSetStatement) {
  const std::string text = R"(
    var x integer >= 0 <= 100;
    var y integer >= 0 <= 100;
    minimize obj: x + y;
    s.t. band: 3 <= x + y <= 9;
    set xs: x in {2, 5, 11};
  )";
  Model model = parse_ampl(text);
  // restrict_to_set adds binaries + convexity/value rows + SOS.
  EXPECT_EQ(model.sos1_sets().size(), 1u);
  const auto result = solve(model);
  ASSERT_EQ(result.status, MinlpStatus::kOptimal);
  // Optimum: x = 2 (smallest member), y = 1 to reach the band floor.
  EXPECT_NEAR(result.objective, 3.0, 1e-7);
  EXPECT_NEAR(result.x[0], 2.0, 1e-6);
}

TEST(AmplModel, NegativeBoundsParse) {
  const std::string text = R"(
    var x >= -5 <= -1;
    minimize obj: x;
  )";
  const Model model = parse_ampl(text);
  EXPECT_DOUBLE_EQ(model.variables()[0].lower, -5.0);
  EXPECT_DOUBLE_EQ(model.variables()[0].upper, -1.0);
}

TEST(AmplModel, ErrorsCarryLineNumbers) {
  try {
    (void)parse_ampl("var x >= 0;\nnonsense y;\n");
    FAIL() << "should have thrown";
  } catch (const InvalidArgument& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos)
        << e.what();
  }
  EXPECT_THROW((void)parse_ampl(""), InvalidArgument);
  EXPECT_THROW((void)parse_ampl("var x >= 0; var x <= 1;"), InvalidArgument);
}

TEST(AmplRoundTrip, SimpleMinlp) {
  Model original;
  const auto T =
      original.add_variable("T", VarType::kContinuous, 0.0, 1e9);
  const auto n = original.add_variable("n", VarType::kInteger, 1.0, 100.0);
  const auto t =
      original.add_variable("t", VarType::kContinuous, 0.0, 1e9);
  auto fn = make_univariate(
      [](double v) { return 100.0 / v + 0.5 * v; },
      [](double v) { return -100.0 / (v * v) + 0.5; }, Curvature::kConvex);
  fn.as_expr = [](const expr::Expr& v) { return 100.0 / v + 0.5 * v; };
  original.add_link(t, n, fn, "law");
  original.add_linear({{T, 1.0}, {t, -1.0}}, 0.0, lp::kInf, "T>=t");
  original.minimize(original.var(T));

  const std::string text = write_ampl(original);
  Model reparsed = parse_ampl(text);
  EXPECT_EQ(reparsed.num_vars(), original.num_vars());
  EXPECT_EQ(reparsed.links().size(), original.links().size());

  const auto r1 = solve(original);
  const auto r2 = solve(reparsed);
  ASSERT_EQ(r1.status, MinlpStatus::kOptimal);
  ASSERT_EQ(r2.status, MinlpStatus::kOptimal);
  EXPECT_NEAR(r1.objective, r2.objective, 1e-7);
}

TEST(AmplRoundTrip, FullLayoutModel) {
  // The paper's actual Table I model survives a write/parse/solve loop.
  core::LayoutModelSpec spec;
  spec.layout = cesm::LayoutKind::kHybrid;
  spec.total_nodes = 64;
  spec.perf[cesm::ComponentKind::kAtm] =
      perf::PerfModel(perf::PerfParams{27000.0, 0.0, 1.0, 45.0});
  spec.perf[cesm::ComponentKind::kOcn] =
      perf::PerfModel(perf::PerfParams{7800.0, 0.0, 1.0, 41.0});
  spec.perf[cesm::ComponentKind::kIce] =
      perf::PerfModel(perf::PerfParams{7400.0, 0.0, 1.0, 12.0});
  spec.perf[cesm::ComponentKind::kLnd] =
      perf::PerfModel(perf::PerfParams{1480.0, 0.0, 1.0, 2.0});
  spec.ocn_allowed = {4, 8, 16, 24};
  spec.tsync = 30.0;
  const minlp::Model original = core::build_layout_model(spec, nullptr);

  const std::string text = write_ampl(original);
  Model reparsed = parse_ampl(text);

  const auto r1 = solve(original);
  const auto r2 = solve(reparsed);
  ASSERT_EQ(r1.status, MinlpStatus::kOptimal);
  ASSERT_EQ(r2.status, MinlpStatus::kOptimal);
  EXPECT_NEAR(r1.objective, r2.objective, 1e-5 * (1.0 + r1.objective));
}

TEST(AmplWriter, OutputMentionsEveryVariable) {
  Model m;
  (void)m.add_variable("alpha", VarType::kContinuous, 0.0, 1.0);
  (void)m.add_variable("beta", VarType::kBinary, 0.0, 1.0);
  m.minimize(m.var(0));
  const std::string text = write_ampl(m);
  EXPECT_NE(text.find("var alpha"), std::string::npos);
  EXPECT_NE(text.find("var beta binary"), std::string::npos);
  EXPECT_NE(text.find("minimize obj"), std::string::npos);
}

}  // namespace
}  // namespace hslb::minlp
