// Integration tests: the full four-step HSLB pipeline against the simulated
// CESM cases, including the paper's headline comparisons.
#include <cmath>
#include <map>
#include <string>

#include <gtest/gtest.h>

#include "hslb/hslb/manual_tuner.hpp"
#include "hslb/hslb/objectives.hpp"
#include "hslb/hslb/pipeline.hpp"

namespace hslb::core {
namespace {

using cesm::ComponentKind;
using cesm::LayoutKind;

class OneDegreePipeline : public ::testing::TestWithParam<int> {};

TEST_P(OneDegreePipeline, ProducesWellBalancedFeasibleLayouts) {
  const int total = GetParam();
  PipelineConfig config;
  config.case_config = cesm::one_degree_case();
  config.total_nodes = total;
  config.gather_totals = {128, 256, 512, 1024, 2048};
  const HslbResult result = run_hslb(config);

  // Fits are good (the paper reports R^2 close to 1 for every component).
  for (const ComponentKind kind : cesm::kModeledComponents) {
    EXPECT_GT(result.fits.at(kind).r_squared, 0.95) << cesm::to_string(kind);
  }

  // The allocation satisfies the layout-1 constraints.
  const cesm::Layout layout = result.allocation.as_layout(config.layout);
  EXPECT_FALSE(layout.invalid_reason(total));

  // Predicted and actual totals agree (the paper's key validation).
  EXPECT_NEAR(result.actual_total, result.predicted_total,
              0.10 * result.predicted_total)
      << "prediction must track execution";

  // Ocean count is in the allowed set.
  const int ocn = result.components.at(ComponentKind::kOcn).nodes;
  bool member = false;
  for (const int v : config.case_config.ocn_allowed) {
    member = member || v == ocn;
  }
  EXPECT_TRUE(member) << ocn;
}

INSTANTIATE_TEST_SUITE_P(PaperNodeCounts, OneDegreePipeline,
                         ::testing::Values(128, 256, 512, 1024, 2048));

TEST(Pipeline, HslbAtLeastMatchesManualAtOneDegree) {
  PipelineConfig config;
  config.case_config = cesm::one_degree_case();
  config.total_nodes = 128;
  config.gather_totals = {128, 256, 512, 1024, 2048};
  const HslbResult hslb = run_hslb(config);

  ManualTunerConfig manual_config;
  manual_config.total_nodes = 128;
  const ManualResult manual =
      run_manual(config.case_config, manual_config, hslb.samples);

  // "Manual, HSLB predicted, and HSLB actual total times are very close".
  EXPECT_NEAR(hslb.actual_total, manual.actual_total,
              0.15 * manual.actual_total);
  // HSLB must not lose badly to the expert.
  EXPECT_LE(hslb.actual_total, manual.actual_total * 1.08);
}

TEST(Pipeline, EighthDegreeConstrainedOceanPicksLargeCount) {
  // The paper's 32768-node result: HSLB chooses the 19460-node ocean.
  PipelineConfig config;
  config.case_config = cesm::eighth_degree_case();
  config.total_nodes = 32768;
  config.gather_totals = {4096, 8192, 16384, 24576, 32768};
  const HslbResult result = run_hslb(config);
  EXPECT_EQ(result.components.at(ComponentKind::kOcn).nodes, 19460);
  // Within a factor of the paper's 1593 s prediction shape.
  EXPECT_GT(result.predicted_total, 1200.0);
  EXPECT_LT(result.predicted_total, 2000.0);
}

TEST(Pipeline, UnconstrainedOceanImprovesPredictionButPaysPenalty) {
  PipelineConfig config;
  config.case_config = cesm::eighth_degree_case();
  config.total_nodes = 32768;
  config.gather_totals = {4096, 8192, 16384, 24576, 32768};
  const HslbResult constrained = run_hslb(config);

  PipelineConfig unconstrained_config = config;
  unconstrained_config.constrain_ocean = false;
  const HslbResult unconstrained =
      run_hslb_from_samples(unconstrained_config, constrained.samples);

  // Prediction improves substantially without the hard-coded set (the paper
  // reports ~40% predicted, ~25% actual).
  EXPECT_LT(unconstrained.predicted_total, 0.85 * constrained.predicted_total);

  // Executing the unconstrained allocation pays the off-preferred penalty:
  // actual lands above prediction but still beats the constrained actual.
  const cesm::Layout layout =
      unconstrained.allocation.as_layout(config.layout);
  const cesm::RunResult run =
      cesm::run_case(config.case_config, layout, 555);
  EXPECT_GT(run.model_seconds, unconstrained.predicted_total);
  EXPECT_LT(run.model_seconds, constrained.actual_total);
}

TEST(Pipeline, SosAndBinaryBranchingAgree) {
  PipelineConfig config;
  config.case_config = cesm::one_degree_case();
  config.total_nodes = 128;
  config.gather_totals = {128, 512, 2048};
  const HslbResult with_sos = run_hslb(config);

  PipelineConfig no_sos = config;
  no_sos.use_sos = false;
  no_sos.solver.use_sos_branching = false;
  const HslbResult without_sos =
      run_hslb_from_samples(no_sos, with_sos.samples);
  EXPECT_NEAR(with_sos.predicted_total, without_sos.predicted_total,
              1e-4 * with_sos.predicted_total);
  // The paper's claim: SOS branching explores far fewer nodes.
  EXPECT_LE(with_sos.solver_result.stats.nodes_explored,
            without_sos.solver_result.stats.nodes_explored);
}

TEST(Pipeline, FromSamplesSkipsGatherAndExecute) {
  PipelineConfig config;
  config.case_config = cesm::one_degree_case();
  config.total_nodes = 256;
  config.gather_totals = {128, 512, 2048};
  const HslbResult full = run_hslb(config);
  const HslbResult replay = run_hslb_from_samples(config, full.samples);
  EXPECT_NEAR(replay.predicted_total, full.predicted_total,
              1e-6 * full.predicted_total);
  EXPECT_EQ(replay.actual_total, 0.0);  // no execute step
}

TEST(Pipeline, ObservabilityCapturesAllFourPhases) {
  PipelineConfig config;
  config.case_config = cesm::one_degree_case();
  config.total_nodes = 128;
  config.gather_totals = {128, 512, 2048};

  obs::TraceSession trace;
  obs::Registry metrics;
  config.obs.trace = &trace;
  config.obs.metrics = &metrics;
  const HslbResult result = run_hslb(config);
  ASSERT_GT(result.predicted_total, 0.0);

  // One top-level span per pipeline phase...
  std::map<std::string, int> top_level;
  std::map<std::string, int> all;
  for (const obs::TraceEvent& e : trace.events()) {
    if (e.depth == 0) {
      ++top_level[e.name];
    }
    ++all[e.name];
  }
  EXPECT_EQ(top_level["hslb.gather"], 1);
  EXPECT_EQ(top_level["hslb.fit"], 1);
  EXPECT_EQ(top_level["hslb.solve"], 1);
  EXPECT_EQ(top_level["hslb.execute"], 1);
  // ...with nested per-campaign-size, per-component, and solver spans.
  EXPECT_EQ(all["cesm.gather.benchmark"], 3);
  EXPECT_EQ(all["hslb.fit.component"], 4);
  EXPECT_GE(all["minlp.solve"], 1);
  EXPECT_GE(all["nlp.lm"], 4);
  EXPECT_GE(all["cesm.run_case"], 4);  // 3 gather runs + 1 execute run

  // The metrics registry saw the solver and the fitter do real work.
  EXPECT_GT(metrics.counter("minlp.nodes_explored").value(), 0.0);
  EXPECT_GT(metrics.counter("minlp.lp_solves").value(), 0.0);
  EXPECT_GT(metrics.counter("nlp.lm.iterations").value(), 0.0);
  EXPECT_GT(metrics.counter("lp.simplex.pivots").value(), 0.0);
  EXPECT_GT(metrics.counter("cesm.days_simulated").value(), 0.0);
  EXPECT_GT(metrics.histogram("minlp.lp_solve_ms").count(), 0);

  // After the run the context is restored: nothing is installed.
  EXPECT_EQ(obs::current_trace(), nullptr);
  EXPECT_EQ(obs::current_metrics(), nullptr);

  // The exported trace is non-trivial and mentions the phases.
  const std::string json = trace.to_chrome_json();
  EXPECT_NE(json.find("hslb.gather"), std::string::npos);
  EXPECT_NE(json.find("hslb.execute"), std::string::npos);
}

TEST(Pipeline, ObservabilityOffRecordsNothing) {
  PipelineConfig config;
  config.case_config = cesm::one_degree_case();
  config.total_nodes = 128;
  config.gather_totals = {128, 512, 2048};
  const HslbResult result = run_hslb(config);  // no obs members set
  ASSERT_GT(result.predicted_total, 0.0);
  EXPECT_EQ(obs::current_trace(), nullptr);
  EXPECT_EQ(obs::current_metrics(), nullptr);
}

TEST(Pipeline, DeterministicInSeed) {
  PipelineConfig config;
  config.case_config = cesm::one_degree_case();
  config.total_nodes = 128;
  config.gather_totals = {128, 512, 2048};
  const HslbResult a = run_hslb(config);
  const HslbResult b = run_hslb(config);
  EXPECT_DOUBLE_EQ(a.predicted_total, b.predicted_total);
  EXPECT_DOUBLE_EQ(a.actual_total, b.actual_total);
  for (const ComponentKind kind : cesm::kModeledComponents) {
    EXPECT_EQ(a.components.at(kind).nodes, b.components.at(kind).nodes);
  }
}

TEST(Pipeline, DefaultGatherTotalsAreLogSpaced) {
  const auto totals = default_gather_totals(2048);
  ASSERT_GE(totals.size(), 4u);
  EXPECT_EQ(totals.back(), 2048);
  EXPECT_GE(totals.front(), 32);
}

TEST(Objectives, BalanceMetricsComputed) {
  std::map<ComponentKind, int> nodes{{ComponentKind::kIce, 80},
                                     {ComponentKind::kLnd, 24},
                                     {ComponentKind::kAtm, 104},
                                     {ComponentKind::kOcn, 24}};
  std::map<ComponentKind, double> seconds{{ComponentKind::kIce, 100.0},
                                          {ComponentKind::kLnd, 90.0},
                                          {ComponentKind::kAtm, 300.0},
                                          {ComponentKind::kOcn, 380.0}};
  const BalanceMetrics metrics =
      evaluate_balance(LayoutKind::kHybrid, nodes, seconds);
  EXPECT_DOUBLE_EQ(metrics.combined_total, 400.0);
  EXPECT_DOUBLE_EQ(metrics.max_component, 380.0);
  EXPECT_DOUBLE_EQ(metrics.min_component, 90.0);
  EXPECT_DOUBLE_EQ(metrics.icelnd_gap, 10.0);
  EXPECT_DOUBLE_EQ(metrics.node_seconds, 128 * 400.0);
}

TEST(Objectives, ThroughputMetric) {
  // 5 simulated days in 400 s of wall clock.
  const double sypd = simulated_years_per_day(5, 400.0);
  EXPECT_NEAR(sypd, (5.0 / 365.0) / (400.0 / 86400.0), 1e-9);
}

}  // namespace
}  // namespace hslb::core
