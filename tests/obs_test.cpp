// Tests for hslb::obs -- tracer (span nesting, Chrome JSON export, counter
// tracks), metrics (counters/gauges/histograms, registry tables), and the
// installable context the HSLB_* macros record through.
#include <cctype>
#include <cmath>
#include <cstdint>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "hslb/obs/obs.hpp"

namespace hslb::obs {
namespace {

// --- A minimal recursive-descent JSON validator. ---------------------------
// Accepts the RFC-8259 grammar (sufficient for the exporter's output) and
// returns false on any syntax error.  Values are not materialized; we only
// care that chrome://tracing's parser would accept the document.
class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : s_(text) {}

  bool valid() {
    skip_ws();
    if (!value()) {
      return false;
    }
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  bool value() {
    if (pos_ >= s_.size()) {
      return false;
    }
    switch (s_[pos_]) {
      case '{':
        return object();
      case '[':
        return array();
      case '"':
        return string();
      case 't':
        return literal("true");
      case 'f':
        return literal("false");
      case 'n':
        return literal("null");
      default:
        return number();
    }
  }

  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      if (!string()) {
        return false;
      }
      skip_ws();
      if (peek() != ':') {
        return false;
      }
      ++pos_;
      skip_ws();
      if (!value()) {
        return false;
      }
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == '}') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      if (!value()) {
        return false;
      }
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == ']') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool string() {
    if (peek() != '"') {
      return false;
    }
    ++pos_;
    while (pos_ < s_.size()) {
      const char c = s_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) {
          return false;
        }
        const char esc = s_[pos_];
        if (esc == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (pos_ >= s_.size() ||
                std::isxdigit(static_cast<unsigned char>(s_[pos_])) == 0) {
              return false;
            }
          }
        } else if (std::string("\"\\/bfnrt").find(esc) == std::string::npos) {
          return false;
        }
      } else if (static_cast<unsigned char>(c) < 0x20) {
        return false;
      }
      ++pos_;
    }
    return false;
  }

  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') {
      ++pos_;
    }
    while (std::isdigit(static_cast<unsigned char>(peek())) != 0) {
      ++pos_;
    }
    if (peek() == '.') {
      ++pos_;
      while (std::isdigit(static_cast<unsigned char>(peek())) != 0) {
        ++pos_;
      }
    }
    if (peek() == 'e' || peek() == 'E') {
      ++pos_;
      if (peek() == '+' || peek() == '-') {
        ++pos_;
      }
      while (std::isdigit(static_cast<unsigned char>(peek())) != 0) {
        ++pos_;
      }
    }
    return pos_ > start && s_[start] != '-' ? true : pos_ > start + 1;
  }

  bool literal(const std::string& word) {
    if (s_.compare(pos_, word.size(), word) != 0) {
      return false;
    }
    pos_ += word.size();
    return true;
  }

  char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }

  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_])) != 0) {
      ++pos_;
    }
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

std::optional<TraceEvent> find_event(const std::vector<TraceEvent>& events,
                                     const std::string& name) {
  for (const TraceEvent& e : events) {
    if (e.name == name) {
      return e;
    }
  }
  return std::nullopt;
}

// --- Tracer. ----------------------------------------------------------------

TEST(Trace, SpansNestByDepthAndTime) {
  TraceSession session;
  {
    ScopedSpan outer(&session, "outer");
    {
      ScopedSpan inner(&session, "inner");
    }
    {
      ScopedSpan sibling(&session, "sibling");
    }
  }
  const std::vector<TraceEvent> events = session.events();
  ASSERT_EQ(events.size(), 3u);

  const auto outer = find_event(events, "outer");
  const auto inner = find_event(events, "inner");
  const auto sibling = find_event(events, "sibling");
  ASSERT_TRUE(outer && inner && sibling);

  EXPECT_EQ(outer->depth, 0);
  EXPECT_EQ(inner->depth, 1);
  EXPECT_EQ(sibling->depth, 1);

  // Containment: the children start after the parent and end before it.
  EXPECT_GE(inner->start_us, outer->start_us);
  EXPECT_LE(inner->start_us + inner->duration_us,
            outer->start_us + outer->duration_us + 1e-6);
  // Siblings do not overlap.
  EXPECT_GE(sibling->start_us, inner->start_us + inner->duration_us - 1e-6);
}

TEST(Trace, DepthRestoredAfterScope) {
  TraceSession session;
  {
    ScopedSpan a(&session, "a");
  }
  {
    ScopedSpan b(&session, "b");
  }
  const std::vector<TraceEvent> events = session.events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].depth, 0);
  EXPECT_EQ(events[1].depth, 0);
}

TEST(Trace, ChromeJsonParses) {
  TraceSession session;
  {
    ScopedSpan span(&session, "phase \"quoted\"\nname");  // escaping
    span.arg("component", std::string("atm"));
    span.arg("nodes", static_cast<long long>(128));
    span.arg("seconds", 1.5);
    ScopedSpan nested(&session, "nested");
  }
  session.record_counter("residual", 42.5);

  const std::string json = session.to_chrome_json();
  EXPECT_TRUE(JsonChecker(json).valid()) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(json.find("\\\"quoted\\\""), std::string::npos);
}

TEST(Trace, EmptySessionStillExportsValidJson) {
  TraceSession session;
  EXPECT_TRUE(JsonChecker(session.to_chrome_json()).valid());
}

TEST(Trace, FlameSummaryAggregates) {
  TraceSession session;
  for (int i = 0; i < 3; ++i) {
    ScopedSpan span(&session, "repeated");
  }
  const std::string summary = session.flame_summary();
  EXPECT_NE(summary.find("repeated"), std::string::npos);
  EXPECT_NE(summary.find("3"), std::string::npos);
}

TEST(Trace, ThreadsGetDistinctIds) {
  TraceSession session;
  {
    ScopedSpan main_span(&session, "main");
  }
  std::thread worker([&session] { ScopedSpan span(&session, "worker"); });
  worker.join();
  const std::vector<TraceEvent> events = session.events();
  ASSERT_EQ(events.size(), 2u);
  const auto main_event = find_event(events, "main");
  const auto worker_event = find_event(events, "worker");
  ASSERT_TRUE(main_event && worker_event);
  EXPECT_NE(main_event->thread_id, worker_event->thread_id);
}

TEST(Trace, SpanIdsFormCrossReferencedTree) {
  TraceSession session;
  std::uint64_t outer_id = 0;
  std::uint64_t inner_id = 0;
  {
    ScopedSpan outer(&session, "outer");
    outer_id = outer.id();
    EXPECT_NE(outer_id, 0u);
    EXPECT_EQ(current_span(), outer_id);
    {
      ScopedSpan inner(&session, "inner");
      inner_id = inner.id();
      EXPECT_EQ(current_span(), inner_id);
    }
    EXPECT_EQ(current_span(), outer_id);
  }
  EXPECT_EQ(current_span(), 0u);
  EXPECT_NE(inner_id, outer_id);

  const std::vector<TraceEvent> events = session.events();
  const auto outer = find_event(events, "outer");
  const auto inner = find_event(events, "inner");
  ASSERT_TRUE(outer && inner);
  EXPECT_EQ(outer->id, outer_id);
  EXPECT_EQ(outer->parent, 0u);
  EXPECT_EQ(inner->parent, outer_id);
}

// --- Metrics. ---------------------------------------------------------------

TEST(Metrics, HistogramBucketCountsAreExact) {
  Histogram histogram({1.0, 2.0, 5.0});
  histogram.observe(0.5);   // <= 1
  histogram.observe(1.0);   // <= 1 (inclusive upper edge)
  histogram.observe(1.5);   // <= 2
  histogram.observe(4.0);   // <= 5
  histogram.observe(5.0);   // <= 5
  histogram.observe(100.0);  // overflow

  EXPECT_EQ(histogram.count(), 6);
  EXPECT_DOUBLE_EQ(histogram.sum(), 112.0);
  const std::vector<long long> buckets = histogram.bucket_counts();
  ASSERT_EQ(buckets.size(), 4u);
  EXPECT_EQ(buckets[0], 2);
  EXPECT_EQ(buckets[1], 1);
  EXPECT_EQ(buckets[2], 2);
  EXPECT_EQ(buckets[3], 1);
}

TEST(Metrics, CounterIsExactUnderConcurrency) {
  Registry registry;
  Counter& counter = registry.counter("hits");
  constexpr int kThreads = 4;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < kPerThread; ++i) {
        counter.add(1.0);
      }
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  EXPECT_DOUBLE_EQ(counter.value(), kThreads * kPerThread);
}

TEST(Metrics, RegistryHandsOutStableInstruments) {
  Registry registry;
  Counter& a = registry.counter("x");
  Counter& b = registry.counter("x");
  EXPECT_EQ(&a, &b);
  a.add(2.0);
  EXPECT_DOUBLE_EQ(registry.counter("x").value(), 2.0);

  registry.gauge("g").set(3.5);
  EXPECT_DOUBLE_EQ(registry.gauge("g").value(), 3.5);

  Histogram& h = registry.histogram("h", {1.0});
  h.observe(0.5);
  EXPECT_EQ(registry.histogram("h").count(), 1);
}

TEST(Metrics, SnapshotAndTablesRender) {
  Registry registry;
  registry.counter("minlp.nodes_explored").add(42.0);
  registry.gauge("minlp.best_bound").set(13.25);
  registry.histogram("lp_ms", {1.0, 10.0}).observe(2.5);

  const MetricsSnapshot snap = registry.snapshot();
  ASSERT_EQ(snap.counters.size(), 1u);
  EXPECT_EQ(snap.counters[0].first, "minlp.nodes_explored");
  EXPECT_DOUBLE_EQ(snap.counters[0].second, 42.0);
  ASSERT_EQ(snap.gauges.size(), 1u);
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].count, 1);

  const std::string counters = registry.counters_table().to_text();
  EXPECT_NE(counters.find("minlp.nodes_explored"), std::string::npos);
  EXPECT_NE(counters.find("42"), std::string::npos);
  const std::string histograms = registry.histograms_table().to_text();
  EXPECT_NE(histograms.find("lp_ms"), std::string::npos);
}

TEST(Metrics, ZeroObservationHistogramRendersWithCountZero) {
  Registry registry;
  registry.histogram("svc.request.ms", {1.0, 2.0});
  // Schema-stable scrapes: a pre-registered histogram that has seen nothing
  // still renders as a row with an explicit count=0, not a blank.
  const std::string text = registry.histograms_table().to_text();
  EXPECT_NE(text.find("svc.request.ms"), std::string::npos);
  EXPECT_NE(text.find("count=0"), std::string::npos);
}

// --- Histogram percentile math. ---------------------------------------------

MetricsSnapshot::HistogramRow row_of(const Histogram& histogram) {
  MetricsSnapshot::HistogramRow row;
  row.count = histogram.count();
  row.sum = histogram.sum();
  row.bounds = histogram.bounds();
  row.buckets = histogram.bucket_counts();
  return row;
}

TEST(Metrics, PercentileIsExactOnBucketBoundaries) {
  Histogram histogram({1.0, 2.0, 5.0});
  for (int i = 0; i < 5; ++i) {
    histogram.observe(1.0);  // inclusive upper edge of bucket 0
  }
  for (int i = 0; i < 4; ++i) {
    histogram.observe(2.0);
  }
  histogram.observe(4.0);
  const MetricsSnapshot::HistogramRow row = row_of(histogram);
  // Ranks: p50 -> 5th of 10 -> still bucket [.., 1]; p90 -> 9th -> [.., 2];
  // p99 -> 10th -> [.., 5].  Edge observations must not spill upward.
  EXPECT_DOUBLE_EQ(histogram_percentile(row, 0.50), 1.0);
  EXPECT_DOUBLE_EQ(histogram_percentile(row, 0.90), 2.0);
  EXPECT_DOUBLE_EQ(histogram_percentile(row, 0.99), 5.0);
  EXPECT_DOUBLE_EQ(histogram_percentile(row, 0.0), 1.0);  // rank clamps to 1
}

TEST(Metrics, PercentileOverflowAndEmptyBehaviour) {
  Histogram histogram({1.0, 2.0});
  EXPECT_TRUE(std::isnan(histogram_percentile(row_of(histogram), 0.5)));
  histogram.observe(0.5);
  histogram.observe(100.0);  // overflow bucket
  const MetricsSnapshot::HistogramRow row = row_of(histogram);
  EXPECT_DOUBLE_EQ(histogram_percentile(row, 0.50), 1.0);
  // The overflow bucket has no upper edge: the histogram cannot bound the
  // top rank, and says so instead of inventing a number.
  EXPECT_TRUE(std::isinf(histogram_percentile(row, 0.99)));
}

TEST(Metrics, MergeOfShardsMatchesSingleHistogram) {
  const std::vector<double> bounds = Registry::hdr_time_bounds();
  Histogram combined(bounds);
  Histogram left(bounds);
  Histogram right(bounds);
  for (int i = 1; i <= 200; ++i) {
    const double value = 0.01 * static_cast<double>(i * i);
    combined.observe(value);
    (i % 2 == 0 ? left : right).observe(value);
  }
  const MetricsSnapshot::HistogramRow merged =
      merge(row_of(left), row_of(right));
  const MetricsSnapshot::HistogramRow whole = row_of(combined);
  EXPECT_EQ(merged.count, whole.count);
  EXPECT_EQ(merged.buckets, whole.buckets);
  EXPECT_NEAR(merged.sum, whole.sum, 1e-9 * whole.sum);
  for (const double q : {0.5, 0.9, 0.99}) {
    EXPECT_DOUBLE_EQ(histogram_percentile(merged, q),
                     histogram_percentile(whole, q));
  }
}

TEST(Metrics, PercentilesStayMonotonicUnderMerge) {
  const std::vector<double> bounds = Registry::hdr_time_bounds();
  Histogram fast(bounds);
  Histogram slow(bounds);
  for (int i = 0; i < 100; ++i) {
    fast.observe(0.5);
    slow.observe(50.0 + static_cast<double>(i));
  }
  const MetricsSnapshot::HistogramRow fast_row = row_of(fast);
  const MetricsSnapshot::HistogramRow slow_row = row_of(slow);
  const MetricsSnapshot::HistogramRow merged = merge(fast_row, slow_row);
  for (const double q : {0.5, 0.9, 0.99}) {
    const double lo = histogram_percentile(fast_row, q);
    const double hi = histogram_percentile(slow_row, q);
    const double mid = histogram_percentile(merged, q);
    EXPECT_GE(mid, lo);
    EXPECT_LE(mid, hi);
  }
  // Folding in a strictly slower population can only raise the tail.
  EXPECT_GE(histogram_percentile(merged, 0.99),
            histogram_percentile(fast_row, 0.99));
}

TEST(Metrics, ShardedHistogramIsExactUnderConcurrency) {
  Histogram histogram({1.0, 2.0, 5.0});
  constexpr int kThreads = 8;  // == Histogram::kShards
  constexpr int kPerThread = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&histogram, t] {
      for (int i = 0; i < kPerThread; ++i) {
        histogram.observe(static_cast<double>(t % 4));
      }
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  EXPECT_EQ(histogram.count(), kThreads * kPerThread);
  long long total = 0;
  for (const long long b : histogram.bucket_counts()) {
    total += b;
  }
  EXPECT_EQ(total, kThreads * kPerThread);
}

// --- Context install + macros. ----------------------------------------------

TEST(Context, InstallOverlaysAndRestores) {
  ASSERT_EQ(current_trace(), nullptr);
  TraceSession outer_session;
  Registry outer_registry;
  {
    Install outer(&outer_session, &outer_registry);
    EXPECT_EQ(current_trace(), &outer_session);
    EXPECT_EQ(current_metrics(), &outer_registry);
    {
      // Null members leave the outer context in place.
      Install noop(Options{});
      EXPECT_EQ(current_trace(), &outer_session);
      EXPECT_EQ(current_metrics(), &outer_registry);
      TraceSession inner_session;
      Install inner(&inner_session, nullptr);
      EXPECT_EQ(current_trace(), &inner_session);
      EXPECT_EQ(current_metrics(), &outer_registry);
    }
    EXPECT_EQ(current_trace(), &outer_session);
  }
  EXPECT_EQ(current_trace(), nullptr);
  EXPECT_EQ(current_metrics(), nullptr);
}

TEST(Context, ParentSpanPropagatesAcrossThreads) {
  TraceSession session;
  std::uint64_t parent_id = 0;
  {
    Install outer(&session, nullptr);
    ScopedSpan parent(&session, "parent");
    parent_id = parent.id();
    // current_context() captures the open span; Install on another thread
    // seeds that thread's nesting so its spans join the same tree.
    const Options context = current_context();
    EXPECT_EQ(context.parent_span, parent_id);
    std::thread worker([&context, &session] {
      Install install(context);
      ScopedSpan child(&session, "child");
    });
    worker.join();
  }
  const std::vector<TraceEvent> events = session.events();
  const auto child = find_event(events, "child");
  ASSERT_TRUE(child.has_value());
  EXPECT_EQ(child->parent, parent_id);
}

TEST(Context, MacrosRecordThroughInstalledContext) {
  TraceSession session;
  Registry registry;
  {
    Install install(&session, &registry);
    HSLB_SPAN("macro.span");
    HSLB_COUNT("macro.count", 3);
    HSLB_COUNT("macro.count", 2);
  }
  EXPECT_EQ(session.events().size(), 1u);
  EXPECT_EQ(session.events()[0].name, "macro.span");
  EXPECT_DOUBLE_EQ(registry.counter("macro.count").value(), 5.0);
}

TEST(Context, MacrosAreInertWithoutContext) {
  ASSERT_EQ(current_trace(), nullptr);
  HSLB_SPAN("nobody.listens");
  HSLB_COUNT("nobody.counts", 1);
  // Nothing to assert beyond "did not crash": no session exists.
}

}  // namespace
}  // namespace hslb::obs
