// Tests for hslb::obs -- tracer (span nesting, Chrome JSON export, counter
// tracks), metrics (counters/gauges/histograms, registry tables), and the
// installable context the HSLB_* macros record through.
#include <cctype>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "hslb/obs/obs.hpp"

namespace hslb::obs {
namespace {

// --- A minimal recursive-descent JSON validator. ---------------------------
// Accepts the RFC-8259 grammar (sufficient for the exporter's output) and
// returns false on any syntax error.  Values are not materialized; we only
// care that chrome://tracing's parser would accept the document.
class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : s_(text) {}

  bool valid() {
    skip_ws();
    if (!value()) {
      return false;
    }
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  bool value() {
    if (pos_ >= s_.size()) {
      return false;
    }
    switch (s_[pos_]) {
      case '{':
        return object();
      case '[':
        return array();
      case '"':
        return string();
      case 't':
        return literal("true");
      case 'f':
        return literal("false");
      case 'n':
        return literal("null");
      default:
        return number();
    }
  }

  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      if (!string()) {
        return false;
      }
      skip_ws();
      if (peek() != ':') {
        return false;
      }
      ++pos_;
      skip_ws();
      if (!value()) {
        return false;
      }
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == '}') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      if (!value()) {
        return false;
      }
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == ']') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool string() {
    if (peek() != '"') {
      return false;
    }
    ++pos_;
    while (pos_ < s_.size()) {
      const char c = s_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) {
          return false;
        }
        const char esc = s_[pos_];
        if (esc == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (pos_ >= s_.size() ||
                std::isxdigit(static_cast<unsigned char>(s_[pos_])) == 0) {
              return false;
            }
          }
        } else if (std::string("\"\\/bfnrt").find(esc) == std::string::npos) {
          return false;
        }
      } else if (static_cast<unsigned char>(c) < 0x20) {
        return false;
      }
      ++pos_;
    }
    return false;
  }

  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') {
      ++pos_;
    }
    while (std::isdigit(static_cast<unsigned char>(peek())) != 0) {
      ++pos_;
    }
    if (peek() == '.') {
      ++pos_;
      while (std::isdigit(static_cast<unsigned char>(peek())) != 0) {
        ++pos_;
      }
    }
    if (peek() == 'e' || peek() == 'E') {
      ++pos_;
      if (peek() == '+' || peek() == '-') {
        ++pos_;
      }
      while (std::isdigit(static_cast<unsigned char>(peek())) != 0) {
        ++pos_;
      }
    }
    return pos_ > start && s_[start] != '-' ? true : pos_ > start + 1;
  }

  bool literal(const std::string& word) {
    if (s_.compare(pos_, word.size(), word) != 0) {
      return false;
    }
    pos_ += word.size();
    return true;
  }

  char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }

  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_])) != 0) {
      ++pos_;
    }
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

std::optional<TraceEvent> find_event(const std::vector<TraceEvent>& events,
                                     const std::string& name) {
  for (const TraceEvent& e : events) {
    if (e.name == name) {
      return e;
    }
  }
  return std::nullopt;
}

// --- Tracer. ----------------------------------------------------------------

TEST(Trace, SpansNestByDepthAndTime) {
  TraceSession session;
  {
    ScopedSpan outer(&session, "outer");
    {
      ScopedSpan inner(&session, "inner");
    }
    {
      ScopedSpan sibling(&session, "sibling");
    }
  }
  const std::vector<TraceEvent> events = session.events();
  ASSERT_EQ(events.size(), 3u);

  const auto outer = find_event(events, "outer");
  const auto inner = find_event(events, "inner");
  const auto sibling = find_event(events, "sibling");
  ASSERT_TRUE(outer && inner && sibling);

  EXPECT_EQ(outer->depth, 0);
  EXPECT_EQ(inner->depth, 1);
  EXPECT_EQ(sibling->depth, 1);

  // Containment: the children start after the parent and end before it.
  EXPECT_GE(inner->start_us, outer->start_us);
  EXPECT_LE(inner->start_us + inner->duration_us,
            outer->start_us + outer->duration_us + 1e-6);
  // Siblings do not overlap.
  EXPECT_GE(sibling->start_us, inner->start_us + inner->duration_us - 1e-6);
}

TEST(Trace, DepthRestoredAfterScope) {
  TraceSession session;
  {
    ScopedSpan a(&session, "a");
  }
  {
    ScopedSpan b(&session, "b");
  }
  const std::vector<TraceEvent> events = session.events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].depth, 0);
  EXPECT_EQ(events[1].depth, 0);
}

TEST(Trace, ChromeJsonParses) {
  TraceSession session;
  {
    ScopedSpan span(&session, "phase \"quoted\"\nname");  // escaping
    span.arg("component", std::string("atm"));
    span.arg("nodes", static_cast<long long>(128));
    span.arg("seconds", 1.5);
    ScopedSpan nested(&session, "nested");
  }
  session.record_counter("residual", 42.5);

  const std::string json = session.to_chrome_json();
  EXPECT_TRUE(JsonChecker(json).valid()) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(json.find("\\\"quoted\\\""), std::string::npos);
}

TEST(Trace, EmptySessionStillExportsValidJson) {
  TraceSession session;
  EXPECT_TRUE(JsonChecker(session.to_chrome_json()).valid());
}

TEST(Trace, FlameSummaryAggregates) {
  TraceSession session;
  for (int i = 0; i < 3; ++i) {
    ScopedSpan span(&session, "repeated");
  }
  const std::string summary = session.flame_summary();
  EXPECT_NE(summary.find("repeated"), std::string::npos);
  EXPECT_NE(summary.find("3"), std::string::npos);
}

TEST(Trace, ThreadsGetDistinctIds) {
  TraceSession session;
  {
    ScopedSpan main_span(&session, "main");
  }
  std::thread worker([&session] { ScopedSpan span(&session, "worker"); });
  worker.join();
  const std::vector<TraceEvent> events = session.events();
  ASSERT_EQ(events.size(), 2u);
  const auto main_event = find_event(events, "main");
  const auto worker_event = find_event(events, "worker");
  ASSERT_TRUE(main_event && worker_event);
  EXPECT_NE(main_event->thread_id, worker_event->thread_id);
}

// --- Metrics. ---------------------------------------------------------------

TEST(Metrics, HistogramBucketCountsAreExact) {
  Histogram histogram({1.0, 2.0, 5.0});
  histogram.observe(0.5);   // <= 1
  histogram.observe(1.0);   // <= 1 (inclusive upper edge)
  histogram.observe(1.5);   // <= 2
  histogram.observe(4.0);   // <= 5
  histogram.observe(5.0);   // <= 5
  histogram.observe(100.0);  // overflow

  EXPECT_EQ(histogram.count(), 6);
  EXPECT_DOUBLE_EQ(histogram.sum(), 112.0);
  const std::vector<long long> buckets = histogram.bucket_counts();
  ASSERT_EQ(buckets.size(), 4u);
  EXPECT_EQ(buckets[0], 2);
  EXPECT_EQ(buckets[1], 1);
  EXPECT_EQ(buckets[2], 2);
  EXPECT_EQ(buckets[3], 1);
}

TEST(Metrics, CounterIsExactUnderConcurrency) {
  Registry registry;
  Counter& counter = registry.counter("hits");
  constexpr int kThreads = 4;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < kPerThread; ++i) {
        counter.add(1.0);
      }
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  EXPECT_DOUBLE_EQ(counter.value(), kThreads * kPerThread);
}

TEST(Metrics, RegistryHandsOutStableInstruments) {
  Registry registry;
  Counter& a = registry.counter("x");
  Counter& b = registry.counter("x");
  EXPECT_EQ(&a, &b);
  a.add(2.0);
  EXPECT_DOUBLE_EQ(registry.counter("x").value(), 2.0);

  registry.gauge("g").set(3.5);
  EXPECT_DOUBLE_EQ(registry.gauge("g").value(), 3.5);

  Histogram& h = registry.histogram("h", {1.0});
  h.observe(0.5);
  EXPECT_EQ(registry.histogram("h").count(), 1);
}

TEST(Metrics, SnapshotAndTablesRender) {
  Registry registry;
  registry.counter("minlp.nodes_explored").add(42.0);
  registry.gauge("minlp.best_bound").set(13.25);
  registry.histogram("lp_ms", {1.0, 10.0}).observe(2.5);

  const MetricsSnapshot snap = registry.snapshot();
  ASSERT_EQ(snap.counters.size(), 1u);
  EXPECT_EQ(snap.counters[0].first, "minlp.nodes_explored");
  EXPECT_DOUBLE_EQ(snap.counters[0].second, 42.0);
  ASSERT_EQ(snap.gauges.size(), 1u);
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].count, 1);

  const std::string counters = registry.counters_table().to_text();
  EXPECT_NE(counters.find("minlp.nodes_explored"), std::string::npos);
  EXPECT_NE(counters.find("42"), std::string::npos);
  const std::string histograms = registry.histograms_table().to_text();
  EXPECT_NE(histograms.find("lp_ms"), std::string::npos);
}

// --- Context install + macros. ----------------------------------------------

TEST(Context, InstallOverlaysAndRestores) {
  ASSERT_EQ(current_trace(), nullptr);
  TraceSession outer_session;
  Registry outer_registry;
  {
    Install outer(&outer_session, &outer_registry);
    EXPECT_EQ(current_trace(), &outer_session);
    EXPECT_EQ(current_metrics(), &outer_registry);
    {
      // Null members leave the outer context in place.
      Install noop(Options{});
      EXPECT_EQ(current_trace(), &outer_session);
      EXPECT_EQ(current_metrics(), &outer_registry);
      TraceSession inner_session;
      Install inner(&inner_session, nullptr);
      EXPECT_EQ(current_trace(), &inner_session);
      EXPECT_EQ(current_metrics(), &outer_registry);
    }
    EXPECT_EQ(current_trace(), &outer_session);
  }
  EXPECT_EQ(current_trace(), nullptr);
  EXPECT_EQ(current_metrics(), nullptr);
}

TEST(Context, MacrosRecordThroughInstalledContext) {
  TraceSession session;
  Registry registry;
  {
    Install install(&session, &registry);
    HSLB_SPAN("macro.span");
    HSLB_COUNT("macro.count", 3);
    HSLB_COUNT("macro.count", 2);
  }
  EXPECT_EQ(session.events().size(), 1u);
  EXPECT_EQ(session.events()[0].name, "macro.span");
  EXPECT_DOUBLE_EQ(registry.counter("macro.count").value(), 5.0);
}

TEST(Context, MacrosAreInertWithoutContext) {
  ASSERT_EQ(current_trace(), nullptr);
  HSLB_SPAN("nobody.listens");
  HSLB_COUNT("nobody.counts", 1);
  // Nothing to assert beyond "did not crash": no session exists.
}

}  // namespace
}  // namespace hslb::obs
