// Unit + property tests for the expression DSL and its derivatives.
#include <cmath>

#include <gtest/gtest.h>

#include "hslb/common/rng.hpp"
#include "hslb/expr/expr.hpp"

namespace hslb::expr {
namespace {

using linalg::Vector;

TEST(Expr, ConstantFolding) {
  const Expr e = Expr(2.0) + Expr(3.0) * Expr(4.0);
  ASSERT_TRUE(e.is_constant());
  EXPECT_DOUBLE_EQ(e.constant_value(), 14.0);
}

TEST(Expr, IdentitySimplifications) {
  const Expr x = variable(0, "x");
  EXPECT_EQ((x + 0.0).ptr().get(), x.ptr().get());
  EXPECT_EQ((x * 1.0).ptr().get(), x.ptr().get());
  EXPECT_TRUE((x * 0.0).is_constant());
  EXPECT_EQ((x / 1.0).ptr().get(), x.ptr().get());
  EXPECT_EQ((-(-x)).ptr().get(), x.ptr().get());
  EXPECT_EQ(log(exp(x)).ptr().get(), x.ptr().get());
  EXPECT_EQ(exp(log(x)).ptr().get(), x.ptr().get());
}

TEST(Expr, EvalBasics) {
  const Expr x = variable(0, "x");
  const Expr y = variable(1, "y");
  const Expr e = 2.0 * x + y * y - x / y;
  const Vector at{3.0, 2.0};
  EXPECT_DOUBLE_EQ(eval(e, at), 6.0 + 4.0 - 1.5);
}

TEST(Expr, PowConstantExponent) {
  const Expr x = variable(0, "x");
  const Expr e = pow(x, 3.0);
  EXPECT_DOUBLE_EQ(eval(e, Vector{2.0}), 8.0);
}

TEST(Expr, PowVariableExponentRewrites) {
  const Expr x = variable(0, "x");
  const Expr c = variable(1, "c");
  const Expr e = pow(x, c);  // becomes exp(c log x)
  EXPECT_NEAR(eval(e, Vector{2.0, 3.0}), 8.0, 1e-12);
  EXPECT_NEAR(eval(e, Vector{5.0, 0.5}), std::sqrt(5.0), 1e-12);
}

TEST(Expr, PerformanceModelShape) {
  // The Table II function: a/n + b n^c + d.
  const Expr n = variable(0, "n");
  const Expr t = 27000.0 / n + 0.001 * pow(n, 1.1) + 45.0;
  const double v = eval(t, Vector{128.0});
  EXPECT_NEAR(v, 27000.0 / 128.0 + 0.001 * std::pow(128.0, 1.1) + 45.0,
              1e-10);
}

TEST(Expr, LinearityClassification) {
  const Expr x = variable(0);
  const Expr y = variable(1);
  EXPECT_EQ(Expr(3.0).linearity(), Linearity::kConstant);
  EXPECT_EQ(x.linearity(), Linearity::kLinear);
  EXPECT_EQ((2.0 * x + 3.0 * y - 1.0).linearity(), Linearity::kLinear);
  EXPECT_EQ((x / 2.0).linearity(), Linearity::kLinear);
  EXPECT_EQ((x * y).linearity(), Linearity::kNonlinear);
  EXPECT_EQ((1.0 / x).linearity(), Linearity::kNonlinear);
  EXPECT_EQ(pow(x, 2.0).linearity(), Linearity::kNonlinear);
}

TEST(Expr, AffineExtraction) {
  const Expr x = variable(0);
  const Expr y = variable(1);
  const auto affine = as_affine(2.0 * x - 0.5 * y + 7.0, 2);
  ASSERT_TRUE(affine.has_value());
  EXPECT_DOUBLE_EQ(affine->constant, 7.0);
  EXPECT_DOUBLE_EQ(affine->coeffs[0], 2.0);
  EXPECT_DOUBLE_EQ(affine->coeffs[1], -0.5);
  EXPECT_FALSE(as_affine(x * y, 2).has_value());
}

TEST(Expr, VariablesOfAndRemap) {
  const Expr x = variable(0);
  const Expr z = variable(2);
  const Expr e = x * z + z;
  const auto vars = variables_of(e);
  ASSERT_EQ(vars.size(), 2u);
  EXPECT_EQ(vars[0], 0u);
  EXPECT_EQ(vars[1], 2u);
  const std::vector<std::size_t> mapping{5, 6, 7};
  const Expr remapped = remap_variables(e, mapping);
  const auto new_vars = variables_of(remapped);
  EXPECT_EQ(new_vars[0], 5u);
  EXPECT_EQ(new_vars[1], 7u);
  Vector point(8, 0.0);
  point[5] = 2.0;
  point[7] = 3.0;
  EXPECT_DOUBLE_EQ(eval(remapped, point), 9.0);
}

TEST(Expr, MaxVarIndex) {
  EXPECT_FALSE(max_var_index(Expr(1.0)).has_value());
  EXPECT_EQ(*max_var_index(variable(4) + variable(2)), 4u);
}

TEST(Expr, PrintingRoundTripReadable) {
  const Expr n = variable(0, "n");
  const std::string s = to_string(27000.0 / n + 45.0);
  EXPECT_NE(s.find("27000 / n"), std::string::npos);
  EXPECT_NE(s.find("45"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Property: autodiff gradients and Hessians match finite differences for a
// family of randomly assembled expressions.
// ---------------------------------------------------------------------------

Expr random_expr(common::Rng& rng, std::size_t nvars, int depth) {
  if (depth <= 0) {
    if (rng.uniform() < 0.4) {
      return Expr(rng.uniform(0.5, 2.0));
    }
    return variable(static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(nvars) - 1)));
  }
  const Expr a = random_expr(rng, nvars, depth - 1);
  const Expr b = random_expr(rng, nvars, depth - 1);
  switch (rng.uniform_int(0, 5)) {
    case 0:
      return a + b;
    case 1:
      return a - b;
    case 2:
      return a * b;
    case 3:
      return a / (b * b + 1.0);  // keep denominators positive
    case 4:
      return exp(a * 0.1);
    default:
      return log(a * a + 1.5);
  }
}

class ExprDerivativeProperty : public ::testing::TestWithParam<int> {};

TEST_P(ExprDerivativeProperty, MatchesFiniteDifferences) {
  common::Rng rng(static_cast<std::uint64_t>(GetParam()) * 1234567 + 1);
  constexpr std::size_t kVars = 3;
  const Expr e = random_expr(rng, kVars, 3);

  Vector x(kVars);
  for (auto& v : x) {
    v = rng.uniform(0.5, 1.5);
  }
  const auto vgh = eval_hess(e, x, kVars);
  EXPECT_NEAR(vgh.value, eval(e, x), 1e-12);

  const double h = 1e-6;
  for (std::size_t i = 0; i < kVars; ++i) {
    Vector xp = x;
    Vector xm = x;
    xp[i] += h;
    xm[i] -= h;
    const double fd = (eval(e, xp) - eval(e, xm)) / (2.0 * h);
    const double scale = 1.0 + std::fabs(fd);
    EXPECT_NEAR(vgh.grad[i], fd, 1e-5 * scale) << "grad[" << i << "]";
    // Hessian column via gradient differences.
    const auto gp = eval_grad(e, xp, kVars);
    const auto gm = eval_grad(e, xm, kVars);
    for (std::size_t j = 0; j < kVars; ++j) {
      const double fd2 = (gp.grad[j] - gm.grad[j]) / (2.0 * h);
      EXPECT_NEAR(vgh.hess(j, i), fd2, 1e-4 * (1.0 + std::fabs(fd2)))
          << "hess(" << j << "," << i << ")";
    }
  }
  // Hessian symmetry.
  for (std::size_t i = 0; i < kVars; ++i) {
    for (std::size_t j = 0; j < kVars; ++j) {
      EXPECT_NEAR(vgh.hess(i, j), vgh.hess(j, i), 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomExpressions, ExprDerivativeProperty,
                         ::testing::Range(0, 25));

}  // namespace
}  // namespace hslb::expr
