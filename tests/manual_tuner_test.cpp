// Tests for the codified "manual" expert baseline.
#include <cmath>

#include <gtest/gtest.h>

#include "hslb/common/error.hpp"
#include "hslb/hslb/manual_tuner.hpp"

namespace hslb::core {
namespace {

using cesm::ComponentKind;
using cesm::LayoutKind;

TEST(ScalingCurve, InterpolatesLogLog) {
  // Perfect 1/n scaling: T(10) = 100, T(1000) = 1.
  const ScalingCurve curve({10.0, 100.0, 1000.0}, {100.0, 10.0, 1.0});
  EXPECT_NEAR(curve(10.0), 100.0, 1e-9);
  EXPECT_NEAR(curve(1000.0), 1.0, 1e-9);
  // Log-log linearity makes mid-range reads exact for power laws.
  EXPECT_NEAR(curve(31.6227766), 31.6227766, 1e-3);
}

TEST(ScalingCurve, ExtrapolatesWithEndSlopes) {
  const ScalingCurve curve({10.0, 100.0}, {100.0, 10.0});
  EXPECT_NEAR(curve(1000.0), 1.0, 1e-6);   // continues the 1/n slope
  EXPECT_NEAR(curve(1.0), 1000.0, 1e-6);
}

TEST(ScalingCurve, AveragesDuplicateCounts) {
  const ScalingCurve curve({10.0, 10.0, 100.0}, {90.0, 110.0, 10.0});
  // Repeated benchmarks at one count are averaged (arithmetically, like a
  // human averaging two plotted points): (90 + 110) / 2 = 100.
  EXPECT_NEAR(curve(10.0), 100.0, 1e-6);
}

TEST(ScalingCurve, RejectsDegenerateInput) {
  EXPECT_THROW(ScalingCurve({10.0}, {1.0}), InvalidArgument);
  EXPECT_THROW(ScalingCurve({10.0, 10.0}, {1.0, 2.0}), InvalidArgument);
  EXPECT_THROW(ScalingCurve({10.0, -1.0}, {1.0, 2.0}), InvalidArgument);
}

class ManualTunerFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    config_ = cesm::one_degree_case();
    campaign_ = cesm::gather_benchmarks(config_, LayoutKind::kHybrid,
                                        std::vector<int>{128, 256, 512, 1024,
                                                         2048},
                                        2014);
  }
  cesm::CaseConfig config_;
  cesm::CampaignResult campaign_;
};

TEST_F(ManualTunerFixture, ProducesValidLayout) {
  ManualTunerConfig tuner;
  tuner.total_nodes = 128;
  const ManualResult result = run_manual(config_, tuner, campaign_.samples);
  cesm::Layout layout = cesm::Layout::hybrid(
      result.nodes.at(ComponentKind::kIce),
      result.nodes.at(ComponentKind::kLnd),
      result.nodes.at(ComponentKind::kAtm),
      result.nodes.at(ComponentKind::kOcn));
  EXPECT_FALSE(layout.invalid_reason(128));
  EXPECT_GT(result.actual_total, 0.0);
  EXPECT_GT(result.estimated_total, 0.0);
}

TEST_F(ManualTunerFixture, PrefersRoundNumbers) {
  ManualTunerConfig tuner;
  tuner.total_nodes = 128;
  tuner.rounding = 8;
  const ManualResult result = run_manual(config_, tuner, campaign_.samples);
  // At least the ice/land split uses human granularity.
  EXPECT_EQ(result.nodes.at(ComponentKind::kOcn) % 2, 0);
}

TEST_F(ManualTunerFixture, EstimateIsSaneVsActual) {
  ManualTunerConfig tuner;
  tuner.total_nodes = 256;
  const ManualResult result = run_manual(config_, tuner, campaign_.samples);
  // Curve reads should be within ~25% of the measured run.
  EXPECT_NEAR(result.estimated_total, result.actual_total,
              0.25 * result.actual_total);
}

TEST_F(ManualTunerFixture, RespectsAllowedOceanSet) {
  ManualTunerConfig tuner;
  tuner.total_nodes = 512;
  const ManualResult result = run_manual(config_, tuner, campaign_.samples);
  const int ocn = result.nodes.at(ComponentKind::kOcn);
  bool member = false;
  for (const int v : config_.ocn_allowed) {
    member = member || v == ocn;
  }
  EXPECT_TRUE(member) << "ocn=" << ocn;
}

TEST_F(ManualTunerFixture, IceLandRoughlyBalanced) {
  ManualTunerConfig tuner;
  tuner.total_nodes = 1024;
  const ManualResult result = run_manual(config_, tuner, campaign_.samples);
  const double ti = result.estimated_seconds.at(ComponentKind::kIce);
  const double tl = result.estimated_seconds.at(ComponentKind::kLnd);
  // The expert balances the pair off the plots; allow generous slack for
  // the human granularity.
  EXPECT_LT(std::fabs(ti - tl), 0.5 * std::max(ti, tl) + 5.0);
}

TEST_F(ManualTunerFixture, DoesNotExtrapolateOcean) {
  // The expert must never allocate far beyond the benchmarked ocean range.
  ManualTunerConfig tuner;
  tuner.total_nodes = 2048;
  const ManualResult result = run_manual(config_, tuner, campaign_.samples);
  double max_sampled = 0.0;
  for (const auto& s : campaign_.samples) {
    if (s.kind == ComponentKind::kOcn) {
      max_sampled = std::max(max_sampled, static_cast<double>(s.nodes));
    }
  }
  EXPECT_LE(result.nodes.at(ComponentKind::kOcn), max_sampled * 1.25 + 1.0);
}

TEST_F(ManualTunerFixture, MoreCandidatesNeverHurtEstimate) {
  ManualTunerConfig few;
  few.total_nodes = 512;
  few.candidate_rounds = 3;
  ManualTunerConfig many = few;
  many.candidate_rounds = 12;
  const auto r_few = run_manual(config_, few, campaign_.samples);
  const auto r_many = run_manual(config_, many, campaign_.samples);
  EXPECT_LE(r_many.estimated_total, r_few.estimated_total + 1e-9);
}

}  // namespace
}  // namespace hslb::core
