// Tests for the structured bench-artifact layer (src/report/): schema
// round-trips, canonicalization, fingerprints, the drift gate's tolerance
// semantics, and the markdown/paper-reference helpers.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>

#include "hslb/common/error.hpp"
#include "hslb/common/numeric.hpp"
#include "hslb/report/diff.hpp"
#include "hslb/report/markdown.hpp"
#include "hslb/report/result_set.hpp"

namespace hslb::report {
namespace {

ResultSet sample_set() {
  ResultSet set;
  set.bench = "sample";
  set.title = "Sample bench";
  set.reference = "unit test";
  set.add("hslb", 128, "pred_total_s", 398.5934272719407, "s",
          Stability::kDeterministic, "total_nodes");
  set.add("hslb", 128, "nodes_ocn", 22, "nodes");
  set.add("hslb", 128, "solver_wall_ms", 11.25, "ms", Stability::kTiming);
  set.add("hslb", 2048, "pred_total_s", 80.59, "s");
  set.add("manual", 128, "est_total_s", 421.504658035483, "s",
          Stability::kDeterministic, "total_nodes");
  set.add_scalar("fit", "r_squared", 0.9988419547672202, "");
  return set;
}

// --- Canonical float text ---------------------------------------------------

TEST(ShortestDouble, RoundTripsAndCanonicalizes) {
  for (const double v : {0.1, 1.0 / 3.0, 398.5934272719407, 1e-300, 2.0,
                         -17.25, 6.02214076e23}) {
    const std::string text = common::shortest_double(v);
    EXPECT_EQ(std::stod(text), v) << text;
  }
  EXPECT_EQ(common::shortest_double(-0.0), "0");
  EXPECT_EQ(common::shortest_double(0.0), "0");
  EXPECT_EQ(common::shortest_double(
                std::numeric_limits<double>::quiet_NaN()),
            "nan");
}

// --- Schema round-trip ------------------------------------------------------

TEST(ResultSet, WriteParseWriteIsIdentical) {
  ResultSet set = sample_set();
  const std::string first = to_json(set);
  const auto parsed = from_json(first);
  ASSERT_TRUE(parsed.has_value()) << parsed.error().message;
  const std::string second = to_json(parsed.value());
  EXPECT_EQ(first, second);
  EXPECT_EQ(parsed.value().fingerprint(), set.fingerprint());
  EXPECT_EQ(parsed.value().bench, "sample");
  EXPECT_EQ(parsed.value().title, "Sample bench");
}

TEST(ResultSet, EmissionOrderDoesNotChangeCanonicalBytes) {
  ResultSet forward = sample_set();
  ResultSet backward;
  backward.bench = "sample";
  backward.title = "Sample bench";
  backward.reference = "unit test";
  backward.add_scalar("fit", "r_squared", 0.9988419547672202, "");
  backward.add("manual", 128, "est_total_s", 421.504658035483, "s",
               Stability::kDeterministic, "total_nodes");
  backward.add("hslb", 2048, "pred_total_s", 80.59, "s",
               Stability::kDeterministic, "total_nodes");
  backward.add("hslb", 128, "solver_wall_ms", 11.25, "ms",
               Stability::kTiming);
  backward.add("hslb", 128, "nodes_ocn", 22, "nodes");
  backward.add("hslb", 128, "pred_total_s", 398.5934272719407, "s");
  EXPECT_EQ(to_json(forward), to_json(backward));
  EXPECT_EQ(forward.fingerprint(), backward.fingerprint());
}

TEST(ResultSet, FingerprintIgnoresTimingCellsOnly) {
  ResultSet set = sample_set();
  const std::string base = set.fingerprint();

  ResultSet jittered = sample_set();
  for (Series& series : jittered.series) {
    for (Point& point : series.points) {
      for (Cell& cell : point.cells) {
        if (cell.stability == Stability::kTiming) {
          cell.value *= 3.7;  // wall-clock noise must not move the pin
        }
      }
    }
  }
  EXPECT_EQ(jittered.fingerprint(), base);

  ResultSet changed = sample_set();
  for (Series& series : changed.series) {
    for (Point& point : series.points) {
      for (Cell& cell : point.cells) {
        if (cell.metric == "pred_total_s" && point.x == 128) {
          cell.value += 1e-9;
        }
      }
    }
  }
  EXPECT_NE(changed.fingerprint(), base);
}

TEST(ResultSet, DuplicateMetricThrows) {
  ResultSet set;
  set.bench = "dup";
  set.add("s", 1, "m", 1.0, "s");
  EXPECT_THROW(set.add("s", 1, "m", 2.0, "s"), InvalidArgument);
}

TEST(ResultSet, ValueLookupIsHardError) {
  const ResultSet set = sample_set();
  EXPECT_DOUBLE_EQ(set.value("hslb", 128, "pred_total_s"),
                   398.5934272719407);
  EXPECT_THROW(set.value("hslb", 128, "no_such_metric"), Error);
  EXPECT_THROW(set.value("no_such_series", 128, "pred_total_s"), Error);
  EXPECT_THROW(set.value("hslb", 999, "pred_total_s"), Error);
}

TEST(ResultSet, ParserRejectsTamperedFingerprint) {
  std::string text = to_json(sample_set());
  const auto pos = text.find("\"fingerprint\": \"");
  ASSERT_NE(pos, std::string::npos);
  text[pos + 16] = text[pos + 16] == '0' ? '1' : '0';
  const auto parsed = from_json(text);
  ASSERT_FALSE(parsed.has_value());
  EXPECT_NE(parsed.error().message.find("fingerprint"), std::string::npos);
}

TEST(ResultSet, ParserRejectsUnknownSchemaVersion) {
  ResultSet set = sample_set();
  set.version = kSchemaVersion + 1;
  const auto parsed = from_json(to_json(set));
  ASSERT_FALSE(parsed.has_value());
  EXPECT_NE(parsed.error().message.find("version"), std::string::npos);
}

TEST(ResultSet, ParserRejectsGarbage) {
  EXPECT_FALSE(from_json("not json").has_value());
  EXPECT_FALSE(from_json("{}").has_value());
  EXPECT_FALSE(from_json("{\"version\": 1}").has_value());
}

TEST(ResultSet, NanSurvivesTheRoundTrip) {
  ResultSet set;
  set.bench = "nan";
  set.add("s", 0, "undefined_ratio",
          std::numeric_limits<double>::quiet_NaN(), "");
  const auto parsed = from_json(to_json(set));
  ASSERT_TRUE(parsed.has_value()) << parsed.error().message;
  const Cell* cell = parsed.value().find("s", 0, "undefined_ratio");
  ASSERT_NE(cell, nullptr);
  EXPECT_TRUE(std::isnan(cell->value));
  EXPECT_EQ(parsed.value().fingerprint(), set.fingerprint());
}

// --- Drift gate -------------------------------------------------------------

TEST(Diff, IdenticalSetsAreClean) {
  const DiffResult result = diff(sample_set(), sample_set());
  EXPECT_TRUE(result.ok());
  EXPECT_EQ(result.cells_compared, 5);
  EXPECT_EQ(result.cells_skipped_timing, 1);
}

TEST(Diff, SubToleranceWiggleIsNotDrift) {
  ResultSet fresh = sample_set();
  for (Series& series : fresh.series) {
    for (Point& point : series.points) {
      for (Cell& cell : point.cells) {
        if (cell.metric == "pred_total_s") {
          cell.value *= 1.0 + 1e-12;  // last-bit libm wiggle
        }
      }
    }
  }
  EXPECT_TRUE(diff(sample_set(), fresh).ok());
}

TEST(Diff, ValueDriftBeyondToleranceIsFlagged) {
  ResultSet fresh = sample_set();
  for (Series& series : fresh.series) {
    for (Point& point : series.points) {
      for (Cell& cell : point.cells) {
        if (cell.metric == "r_squared") {
          cell.value += 1e-3;
        }
      }
    }
  }
  const DiffResult result = diff(sample_set(), fresh);
  ASSERT_EQ(result.drifts.size(), 1u);
  EXPECT_EQ(result.drifts[0].kind, DriftKind::kValue);
  EXPECT_EQ(result.drifts[0].metric, "r_squared");
  EXPECT_FALSE(render_drift_report(result).empty());
}

TEST(Diff, IntegerUnitsCompareExactly) {
  ResultSet fresh = sample_set();
  for (Series& series : fresh.series) {
    for (Point& point : series.points) {
      for (Cell& cell : point.cells) {
        if (cell.metric == "nodes_ocn") {
          cell.value = 23;  // only ~4.5% off, but node counts are exact
        }
      }
    }
  }
  const DiffResult result = diff(sample_set(), fresh);
  ASSERT_EQ(result.drifts.size(), 1u);
  EXPECT_EQ(result.drifts[0].metric, "nodes_ocn");
}

TEST(Diff, TimingCellsAreSkippedUnlessAsked) {
  ResultSet fresh = sample_set();
  for (Series& series : fresh.series) {
    for (Point& point : series.points) {
      for (Cell& cell : point.cells) {
        if (cell.metric == "solver_wall_ms") {
          cell.value *= 1.2;  // 20% slower: inside timing_default's 50%
        }
      }
    }
  }
  EXPECT_TRUE(diff(sample_set(), fresh).ok());
  TolerancePolicy strict;
  strict.check_timing = true;
  EXPECT_TRUE(diff(sample_set(), fresh, strict).ok());
  for (Series& series : fresh.series) {
    for (Point& point : series.points) {
      for (Cell& cell : point.cells) {
        if (cell.metric == "solver_wall_ms") {
          cell.value *= 10.0;  // way past timing_default
        }
      }
    }
  }
  EXPECT_TRUE(diff(sample_set(), fresh).ok());
  EXPECT_FALSE(diff(sample_set(), fresh, strict).ok());
}

TEST(Diff, MissingAndExtraStructureIsAlwaysDrift) {
  ResultSet golden = sample_set();
  ResultSet fresh = sample_set();
  fresh.series.erase(fresh.series.begin());  // drop one series
  DiffResult result = diff(golden, fresh);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.drifts[0].kind, DriftKind::kMissingSeries);

  fresh = sample_set();
  fresh.add("brand_new", 1, "m", 1.0, "s");
  result = diff(golden, fresh);
  ASSERT_EQ(result.drifts.size(), 1u);
  EXPECT_EQ(result.drifts[0].kind, DriftKind::kExtraSeries);

  fresh = sample_set();
  fresh.add("hslb", 4096, "pred_total_s", 50.0, "s");
  result = diff(golden, fresh);
  ASSERT_EQ(result.drifts.size(), 1u);
  EXPECT_EQ(result.drifts[0].kind, DriftKind::kExtraPoint);

  fresh = sample_set();
  fresh.add("hslb", 128, "surprise_metric", 1.0, "s");
  result = diff(golden, fresh);
  ASSERT_EQ(result.drifts.size(), 1u);
  EXPECT_EQ(result.drifts[0].kind, DriftKind::kExtraMetric);
}

TEST(Diff, UnitOrStabilityChangeIsDrift) {
  ResultSet fresh = sample_set();
  for (Series& series : fresh.series) {
    for (Point& point : series.points) {
      for (Cell& cell : point.cells) {
        if (cell.metric == "est_total_s") {
          cell.unit = "ms";
        }
        if (cell.metric == "r_squared") {
          cell.stability = Stability::kTiming;
        }
      }
    }
  }
  // Golden iteration order: "manual" (unit change) before "fit" (stability).
  const DiffResult result = diff(sample_set(), fresh);
  ASSERT_EQ(result.drifts.size(), 2u);
  EXPECT_EQ(result.drifts[0].kind, DriftKind::kUnitChanged);
  EXPECT_EQ(result.drifts[0].metric, "est_total_s");
  EXPECT_EQ(result.drifts[1].kind, DriftKind::kStabilityChanged);
  EXPECT_EQ(result.drifts[1].metric, "r_squared");
}

TEST(Diff, MissingPointAndMetricAreDrift) {
  ResultSet fresh = sample_set();
  for (Series& series : fresh.series) {
    if (series.name == "hslb") {
      std::erase_if(series.points, [](const Point& p) { return p.x == 2048; });
    }
  }
  DiffResult result = diff(sample_set(), fresh);
  ASSERT_EQ(result.drifts.size(), 1u);
  EXPECT_EQ(result.drifts[0].kind, DriftKind::kMissingPoint);

  fresh = sample_set();
  for (Series& series : fresh.series) {
    for (Point& point : series.points) {
      std::erase_if(point.cells, [](const Cell& cell) {
        return cell.metric == "nodes_ocn";
      });
    }
  }
  result = diff(sample_set(), fresh);
  ASSERT_EQ(result.drifts.size(), 1u);
  EXPECT_EQ(result.drifts[0].kind, DriftKind::kMissingMetric);
  EXPECT_EQ(result.drifts[0].metric, "nodes_ocn");
}

TEST(Diff, BenchMismatchShortCircuits) {
  ResultSet fresh = sample_set();
  fresh.bench = "other";
  const DiffResult result = diff(sample_set(), fresh);
  ASSERT_EQ(result.drifts.size(), 1u);
  EXPECT_EQ(result.drifts[0].kind, DriftKind::kBenchMismatch);
}

TEST(Diff, NanAgreesWithNanAndDriftsAgainstNumbers) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  ResultSet golden;
  golden.bench = "nan";
  golden.add("s", 0, "ratio", nan, "");
  ResultSet fresh = golden;
  EXPECT_TRUE(diff(golden, fresh).ok());

  fresh.series[0].points[0].cells[0].value = 1.0;
  DiffResult result = diff(golden, fresh);
  ASSERT_EQ(result.drifts.size(), 1u);
  EXPECT_EQ(result.drifts[0].kind, DriftKind::kValue);
  EXPECT_NE(result.drifts[0].message.find("NaN"), std::string::npos);

  fresh.series[0].points[0].cells[0].value = nan;
  golden.series[0].points[0].cells[0].value = 1.0;
  EXPECT_FALSE(diff(golden, fresh).ok());
}

TEST(Diff, ZeroBaselineUsesAbsoluteToleranceOnly) {
  ResultSet golden;
  golden.bench = "zero";
  golden.add("s", 0, "offset_s", 0.0, "s");
  ResultSet fresh = golden;
  fresh.series[0].points[0].cells[0].value = 1e-13;  // inside abs 1e-12
  EXPECT_TRUE(diff(golden, fresh).ok());
  fresh.series[0].points[0].cells[0].value = 1e-6;
  EXPECT_FALSE(diff(golden, fresh).ok());
}

TEST(Diff, PerMetricOverridesAreMostSpecificFirst) {
  TolerancePolicy policy;
  policy.per_metric["offset_s"] = {0.5, 0.0};
  policy.per_metric["zero.offset_s"] = {0.25, 0.0};
  policy.per_metric["zero.s.offset_s"] = {0.1, 0.0};
  Cell cell;
  cell.metric = "offset_s";
  cell.unit = "s";
  EXPECT_DOUBLE_EQ(policy.for_cell("zero", "s", cell).rel, 0.1);
  EXPECT_DOUBLE_EQ(policy.for_cell("zero", "other", cell).rel, 0.25);
  EXPECT_DOUBLE_EQ(policy.for_cell("elsewhere", "s", cell).rel, 0.5);
  // Overrides beat the exact-compare rule for integer units too.
  cell.unit = "nodes";
  EXPECT_DOUBLE_EQ(policy.for_cell("zero", "s", cell).rel, 0.1);
}

// --- Markdown helpers -------------------------------------------------------

TEST(MarkdownTable, RendersGitHubPipeTable) {
  MarkdownTable table({"name", "value"});
  table.row({"plain", "1.0"});
  table.row({"pipe|inside", "2.0"});
  EXPECT_EQ(table.str(),
            "| name | value |\n"
            "|---|---|\n"
            "| plain | 1.0 |\n"
            "| pipe\\|inside | 2.0 |\n");
}

TEST(MarkdownTable, WrongColumnCountThrows) {
  MarkdownTable table({"a", "b"});
  EXPECT_THROW(table.row({"only one"}), InvalidArgument);
  EXPECT_THROW(MarkdownTable(std::vector<std::string>{}), InvalidArgument);
}

TEST(PaperRef, LoadsAndLooksUp) {
  const std::string path = ::testing::TempDir() + "paper_ref_test.json";
  {
    std::ofstream out(path, std::ios::binary);
    out << "{\n \"paper\": \"Someone et al.\",\n"
           " \"values\": {\"t.total_s@128\": 416.0},\n"
           " \"strings\": {\"t.claim\": \"very close\"}\n}\n";
  }
  const auto loaded = PaperRef::load(path);
  ASSERT_TRUE(loaded.has_value()) << loaded.error().message;
  EXPECT_EQ(loaded.value().citation(), "Someone et al.");
  EXPECT_DOUBLE_EQ(loaded.value().number("t.total_s@128"), 416.0);
  EXPECT_EQ(loaded.value().text("t.claim"), "very close");
  EXPECT_THROW(loaded.value().number("t.missing"), InvalidArgument);
  EXPECT_THROW(loaded.value().text("t.missing"), InvalidArgument);
  std::remove(path.c_str());
}

TEST(PaperRef, MissingFileAndBadShapeAreErrors) {
  EXPECT_FALSE(PaperRef::load("/no/such/file.json").has_value());
  const std::string path = ::testing::TempDir() + "paper_ref_bad.json";
  {
    std::ofstream out(path, std::ios::binary);
    out << "{\"values\": {}}";
  }
  EXPECT_FALSE(PaperRef::load(path).has_value());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace hslb::report
