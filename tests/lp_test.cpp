// Unit tests for the bounded-variable primal simplex on known LPs.
#include <gtest/gtest.h>

#include "hslb/common/error.hpp"
#include "hslb/lp/simplex.hpp"

namespace hslb::lp {
namespace {

TEST(Simplex, TextbookMaximization) {
  // max x + y  s.t.  x + 2y <= 4, 3x + y <= 6, x, y >= 0
  // optimum at (1.6, 1.2), value 2.8.
  LpProblem p;
  p.add_variable(0.0, kInf, -1.0, "x");
  p.add_variable(0.0, kInf, -1.0, "y");
  p.add_row({1, 2}, -kInf, 4);
  p.add_row({3, 1}, -kInf, 6);
  const auto s = solve(p);
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_NEAR(s.objective, -2.8, 1e-8);
  EXPECT_NEAR(s.x[0], 1.6, 1e-8);
  EXPECT_NEAR(s.x[1], 1.2, 1e-8);
}

TEST(Simplex, EqualityConstraint) {
  // min x + y  s.t.  x + y = 5, x in [0,2], y >= 0  -> any split; obj 5.
  LpProblem p;
  p.add_variable(0.0, 2.0, 1.0);
  p.add_variable(0.0, kInf, 1.0);
  p.add_row({1, 1}, 5.0, 5.0);
  const auto s = solve(p);
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_NEAR(s.objective, 5.0, 1e-8);
  EXPECT_NEAR(s.x[0] + s.x[1], 5.0, 1e-8);
}

TEST(Simplex, RangeRowAndNegativeBounds) {
  // min 2x - 3y  s.t.  1 <= x + y <= 3, x in [0,10], y in [-5,5].
  // Optimum: y as big as possible within row: y = 3, x = 0 -> obj -9.
  LpProblem p;
  p.add_variable(0.0, 10.0, 2.0);
  p.add_variable(-5.0, 5.0, -3.0);
  p.add_row({1, 1}, 1.0, 3.0);
  const auto s = solve(p);
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_NEAR(s.objective, -9.0, 1e-8);
  EXPECT_NEAR(s.x[1], 3.0, 1e-8);
}

TEST(Simplex, DetectsInfeasible) {
  LpProblem p;
  p.add_variable(0.0, 1.0, 1.0);
  p.add_row({1}, 2.0, 3.0);  // x in [2,3] but x <= 1
  EXPECT_EQ(solve(p).status, LpStatus::kInfeasible);
}

TEST(Simplex, DetectsInconsistentColumnBounds) {
  LpProblem p;
  p.add_variable(0.0, 5.0, 1.0);
  auto s = solve(p);
  EXPECT_EQ(s.status, LpStatus::kOptimal);
  p.set_col_bounds(0, 3.0, 5.0);
  EXPECT_EQ(solve(p).x.size(), 1u);
}

TEST(Simplex, DetectsUnbounded) {
  LpProblem p;
  p.add_variable(0.0, kInf, -1.0);  // min -x, x unbounded above
  p.add_variable(0.0, 1.0, 0.0);
  p.add_row({0, 1}, -kInf, 1.0);
  EXPECT_EQ(solve(p).status, LpStatus::kUnbounded);
}

TEST(Simplex, BoundedByColumnBoundsOnly) {
  // No rows at all: min -x with x <= 7 rests at the upper bound.
  LpProblem p;
  p.add_variable(2.0, 7.0, -1.0);
  const auto s = solve(p);
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_NEAR(s.x[0], 7.0, 1e-9);
}

TEST(Simplex, FreeVariable) {
  // min x  s.t.  x >= -3 via a row (variable itself unbounded).
  LpProblem p;
  p.add_variable(-kInf, kInf, 1.0);
  p.add_row({1}, -3.0, kInf);
  const auto s = solve(p);
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_NEAR(s.x[0], -3.0, 1e-8);
}

TEST(Simplex, ObjectiveOffsetIncluded) {
  LpProblem p;
  p.add_variable(1.0, 2.0, 1.0);
  p.set_objective_offset(100.0);
  const auto s = solve(p);
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_NEAR(s.objective, 101.0, 1e-9);
}

TEST(Simplex, DegenerateProblemTerminates) {
  // Many redundant constraints through the same vertex.
  LpProblem p;
  p.add_variable(0.0, kInf, -1.0);
  p.add_variable(0.0, kInf, -1.0);
  p.add_row({1, 1}, -kInf, 1.0);
  p.add_row({2, 2}, -kInf, 2.0);
  p.add_row({1, 0}, -kInf, 1.0);
  p.add_row({0, 1}, -kInf, 1.0);
  p.add_row({3, 3}, -kInf, 3.0);
  const auto s = solve(p);
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_NEAR(s.objective, -1.0, 1e-8);
}

TEST(Simplex, EmptyProblemIsTriviallyOptimal) {
  LpProblem p;
  p.set_objective_offset(5.0);
  const auto s = solve(p);
  EXPECT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_DOUBLE_EQ(s.objective, 5.0);
}

TEST(Simplex, FixedVariables) {
  // All variables fixed; feasibility decided by the rows.
  LpProblem p;
  p.add_variable(2.0, 2.0, 1.0);
  p.add_variable(3.0, 3.0, 1.0);
  p.add_row({1, 1}, 5.0, 5.0);
  const auto s = solve(p);
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_NEAR(s.objective, 5.0, 1e-9);

  LpProblem q;
  q.add_variable(2.0, 2.0, 1.0);
  q.add_row({1}, 3.0, 3.0);
  EXPECT_EQ(solve(q).status, LpStatus::kInfeasible);
}

TEST(LpProblem, RejectsRowBeforeAllVariables) {
  LpProblem p;
  p.add_variable(0.0, 1.0, 1.0);
  p.add_row({1}, 0.0, 1.0);
  EXPECT_THROW(p.add_variable(0.0, 1.0, 1.0), InvalidArgument);
}

TEST(LpProblem, RejectsWrongRowWidth) {
  LpProblem p;
  p.add_variable(0.0, 1.0, 1.0);
  EXPECT_THROW(p.add_row({1, 2}, 0.0, 1.0), InvalidArgument);
}

}  // namespace
}  // namespace hslb::lp
