// Tests for the FBBT presolve.
#include <cmath>

#include <gtest/gtest.h>

#include "hslb/minlp/branch_and_bound.hpp"
#include "hslb/minlp/presolve.hpp"

namespace hslb::minlp {
namespace {

TEST(Presolve, TightensFromLinearRows) {
  Model m;
  const auto x = m.add_variable("x", VarType::kContinuous, 0.0, 100.0);
  const auto y = m.add_variable("y", VarType::kContinuous, 0.0, 100.0);
  m.add_linear({{x, 1.0}, {y, 1.0}}, -lp::kInf, 10.0, "sum");
  m.add_linear({{y, 1.0}}, 3.0, lp::kInf, "ymin");
  const auto result = presolve(m);
  ASSERT_FALSE(result.infeasible);
  EXPECT_NEAR(result.upper[x], 7.0, 1e-9);  // x <= 10 - y_min
  EXPECT_NEAR(result.upper[y], 10.0, 1e-9);
  EXPECT_NEAR(result.lower[y], 3.0, 1e-9);
  EXPECT_GE(result.tightenings, 2);
}

TEST(Presolve, RoundsIntegerBounds) {
  Model m;
  const auto x = m.add_variable("x", VarType::kInteger, 0.0, 100.0);
  m.add_linear({{x, 2.0}}, 3.1, 9.9, "range");
  const auto result = presolve(m);
  ASSERT_FALSE(result.infeasible);
  EXPECT_DOUBLE_EQ(result.lower[x], 2.0);  // ceil(1.55)
  EXPECT_DOUBLE_EQ(result.upper[x], 4.0);  // floor(4.95)
}

TEST(Presolve, DetectsRowInfeasibility) {
  Model m;
  const auto x = m.add_variable("x", VarType::kContinuous, 0.0, 1.0);
  m.add_linear({{x, 1.0}}, 5.0, 6.0, "unreachable");
  EXPECT_TRUE(presolve(m).infeasible);
}

TEST(Presolve, DetectsEmptyIntegerRange) {
  Model m;
  const auto x = m.add_variable("x", VarType::kInteger, 0.0, 10.0);
  m.add_linear({{x, 1.0}}, 2.2, 2.8, "no integer");
  EXPECT_TRUE(presolve(m).infeasible);
}

TEST(Presolve, PropagatesThroughLinks) {
  Model m;
  const auto n = m.add_variable("n", VarType::kInteger, 10.0, 100.0);
  const auto t = m.add_variable("t", VarType::kContinuous, 0.0, 1e9);
  auto fn = make_univariate(
      [](double v) { return 1000.0 / v + 5.0; },
      [](double v) { return -1000.0 / (v * v); }, Curvature::kConvex);
  m.add_link(t, n, fn, "link");
  const auto result = presolve(m);
  ASSERT_FALSE(result.infeasible);
  // t in [f(100), f(10)] = [15, 105].
  EXPECT_NEAR(result.lower[t], 15.0, 1e-6);
  EXPECT_NEAR(result.upper[t], 105.0, 1e-6);
}

TEST(Presolve, LinkRangeFindsInteriorMinimum) {
  const auto fn = make_univariate(
      [](double v) { return 100.0 / v + 0.5 * v; },
      [](double v) { return -100.0 / (v * v) + 0.5; }, Curvature::kConvex);
  const FnRange range = univariate_range(fn, Curvature::kConvex, 1.0, 100.0);
  // Interior minimum at sqrt(200) ~ 14.142: f* = 2 sqrt(50) ~ 14.142.
  EXPECT_NEAR(range.min, 2.0 * std::sqrt(50.0), 1e-4);
  EXPECT_NEAR(range.max, 100.5, 1e-9);  // f(1) = 100.5
}

TEST(Presolve, LinkRangeConcave) {
  const auto fn = make_univariate(
      [](double v) { return std::sqrt(v); },
      [](double v) { return 0.5 / std::sqrt(v); }, Curvature::kConcave);
  const FnRange range = univariate_range(fn, Curvature::kConcave, 4.0, 25.0);
  EXPECT_NEAR(range.min, 2.0, 1e-9);
  EXPECT_NEAR(range.max, 5.0, 1e-9);
}

TEST(Presolve, FixpointConvergesThroughChains) {
  // x <= y, y <= z, z <= 5: the chain must propagate to x within rounds.
  Model m;
  const auto x = m.add_variable("x", VarType::kContinuous, 0.0, 100.0);
  const auto y = m.add_variable("y", VarType::kContinuous, 0.0, 100.0);
  const auto z = m.add_variable("z", VarType::kContinuous, 0.0, 100.0);
  m.add_linear({{x, 1.0}, {y, -1.0}}, -lp::kInf, 0.0);
  m.add_linear({{y, 1.0}, {z, -1.0}}, -lp::kInf, 0.0);
  m.add_linear({{z, 1.0}}, -lp::kInf, 5.0);
  const auto result = presolve(m);
  EXPECT_NEAR(result.upper[x], 5.0, 1e-9);
  EXPECT_NEAR(result.upper[y], 5.0, 1e-9);
  EXPECT_GE(result.rounds, 2);
}

TEST(Presolve, SolverUsesPresolve) {
  // The solve must agree with and without presolve; with it, the stats
  // should report tightenings on a model with propagation opportunities.
  const auto build = [] {
    Model m;
    const auto T = m.add_variable("T", VarType::kContinuous, 0.0, 1e9);
    const auto n = m.add_variable("n", VarType::kInteger, 1.0, 1000.0);
    const auto t = m.add_variable("t", VarType::kContinuous, 0.0, 1e9);
    auto fn = make_univariate(
        [](double v) { return 100.0 / v + 0.5 * v; },
        [](double v) { return -100.0 / (v * v) + 0.5; },
        Curvature::kConvex);
    m.add_link(t, n, fn, "link");
    m.add_linear({{T, 1.0}, {t, -1.0}}, 0.0, lp::kInf);
    m.add_linear({{n, 1.0}}, -lp::kInf, 40.0, "budget");
    m.minimize(m.var(T));
    return m;
  };
  Model with = build();
  const auto r_with = solve(with);
  Model without = build();
  SolverOptions opts;
  opts.use_presolve = false;
  const auto r_without = solve(without, opts);
  ASSERT_EQ(r_with.status, MinlpStatus::kOptimal);
  ASSERT_EQ(r_without.status, MinlpStatus::kOptimal);
  EXPECT_NEAR(r_with.objective, r_without.objective, 1e-7);
  EXPECT_GT(r_with.stats.presolve_tightenings, 0);
  EXPECT_EQ(r_without.stats.presolve_tightenings, 0);
}

TEST(Presolve, InfeasibleModelShortCircuitsSolve) {
  Model m;
  const auto x = m.add_variable("x", VarType::kInteger, 0.0, 10.0);
  m.add_linear({{x, 1.0}}, 2.2, 2.8, "no integer");
  m.minimize(m.var(x));
  const auto result = solve(m);
  EXPECT_EQ(result.status, MinlpStatus::kInfeasible);
  EXPECT_EQ(result.stats.lp_solves, 0) << "presolve should prove it alone";
}

}  // namespace
}  // namespace hslb::minlp
