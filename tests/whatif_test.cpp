// Tests for the what-if studies of section IV-C.
#include <gtest/gtest.h>

#include "hslb/common/error.hpp"
#include "hslb/cesm/configs.hpp"
#include "hslb/hslb/whatif.hpp"

namespace hslb::core {
namespace {

using cesm::ComponentKind;
using cesm::LayoutKind;

LayoutModelSpec spec_for_tests(int total_nodes) {
  LayoutModelSpec spec;
  spec.layout = LayoutKind::kHybrid;
  spec.total_nodes = total_nodes;
  spec.perf[ComponentKind::kAtm] =
      perf::PerfModel(perf::PerfParams{27000.0, 0.0, 1.0, 45.0});
  spec.perf[ComponentKind::kOcn] =
      perf::PerfModel(perf::PerfParams{7800.0, 0.0, 1.0, 41.0});
  spec.perf[ComponentKind::kIce] =
      perf::PerfModel(perf::PerfParams{7400.0, 0.0, 1.0, 12.0});
  spec.perf[ComponentKind::kLnd] =
      perf::PerfModel(perf::PerfParams{1480.0, 0.0, 1.0, 2.0});
  spec.min_nodes = {{ComponentKind::kAtm, 8},
                    {ComponentKind::kOcn, 2},
                    {ComponentKind::kIce, 4},
                    {ComponentKind::kLnd, 2}};
  return spec;
}

TEST(WhatIf, ConstraintEffectIsNonnegative) {
  LayoutModelSpec spec = spec_for_tests(128);
  spec.ocn_allowed = {8, 32};  // a deliberately poor set
  spec.atm_allowed = {64, 96};
  const ConstraintEffect effect = constraint_effect(spec);
  EXPECT_GE(effect.relative_cost, -1e-9)
      << "restricting the sets cannot make the optimum better";
  EXPECT_GE(effect.constrained_total, effect.unconstrained_total - 1e-6);
  // The constrained solution is in the sets.
  const int ocn = effect.constrained.nodes.at(ComponentKind::kOcn);
  EXPECT_TRUE(ocn == 8 || ocn == 32);
}

TEST(WhatIf, ConstraintEffectZeroWhenSetsContainOptimum) {
  LayoutModelSpec spec = spec_for_tests(128);
  const ConstraintEffect no_sets = constraint_effect(spec);
  EXPECT_NEAR(no_sets.relative_cost, 0.0, 1e-6);
}

TEST(WhatIf, ScalingForecastIsMonotone) {
  const LayoutModelSpec spec = spec_for_tests(64);
  const std::vector<int> sizes{64, 128, 256, 512, 1024};
  const auto forecast = scaling_forecast(spec, sizes);
  ASSERT_EQ(forecast.size(), sizes.size());
  for (std::size_t i = 1; i < forecast.size(); ++i) {
    EXPECT_LE(forecast[i].predicted_total,
              forecast[i - 1].predicted_total + 1e-6)
        << "more nodes can only help";
  }
  EXPECT_NEAR(forecast.front().efficiency, 1.0, 1e-9);
  // Efficiency decays as the serial floor bites (Amdahl).
  EXPECT_LT(forecast.back().efficiency, forecast.front().efficiency);
}

TEST(WhatIf, SwapComponentFasterOceanHelps) {
  const LayoutModelSpec spec = spec_for_tests(96);
  LayoutModelVars vars;
  const auto base = minlp::solve(build_layout_model(spec, &vars));
  ASSERT_EQ(base.status, minlp::MinlpStatus::kOptimal);

  // A 2x faster ocean ("replacing one component with another").
  const perf::PerfModel faster_ocean(
      perf::PerfParams{3900.0, 0.0, 1.0, 20.5});
  double new_total = 0.0;
  const Allocation swapped = swap_component(
      spec, ComponentKind::kOcn, faster_ocean, &new_total);
  EXPECT_LT(new_total, base.objective + 1e-9);
  EXPECT_GE(swapped.nodes.at(ComponentKind::kOcn), 1);
}

TEST(WhatIf, SwapComponentSlowerAtmosphereHurts) {
  const LayoutModelSpec spec = spec_for_tests(96);
  LayoutModelVars vars;
  const auto base = minlp::solve(build_layout_model(spec, &vars));
  const perf::PerfModel slower_atm(
      perf::PerfParams{54000.0, 0.0, 1.0, 90.0});
  double new_total = 0.0;
  (void)swap_component(spec, ComponentKind::kAtm, slower_atm, &new_total);
  EXPECT_GT(new_total, base.objective - 1e-9);
}

TEST(WhatIf, RecommendSizeFindsBothPoints) {
  const LayoutModelSpec spec = spec_for_tests(64);
  const std::vector<int> sizes{64, 128, 256, 512, 1024, 2048};
  const SizeRecommendation rec = recommend_size(spec, sizes, 0.5);
  EXPECT_GT(rec.cost_efficient_nodes, 0);
  EXPECT_GT(rec.fastest_nodes, 0);
  EXPECT_GE(rec.fastest_nodes, rec.cost_efficient_nodes)
      << "the fastest size is at least as large as the efficient one";
  EXPECT_LE(rec.fastest_total, rec.cost_efficient_total + 1e-9);
  EXPECT_EQ(rec.sweep.size(), sizes.size());
}

TEST(WhatIf, ScaledHardwareCasePreservesShape) {
  const cesm::CaseConfig base = cesm::one_degree_case();
  const cesm::CaseConfig fast =
      cesm::scaled_hardware_case(base, "2x machine", 2.0, 8192, 16);
  EXPECT_EQ(fast.machine.total_nodes, 8192);
  EXPECT_EQ(fast.machine.cores_per_node, 16);
  for (const ComponentKind kind : cesm::kModeledComponents) {
    const double before = base.component(kind).true_time(64);
    const double after = fast.component(kind).true_time(64);
    EXPECT_NEAR(after, before / 2.0, 1e-9 * before) << cesm::to_string(kind);
  }
  // Allowed sets truncated to the machine.
  for (const int n : fast.atm_allowed) {
    EXPECT_LE(n, 8192);
  }
  EXPECT_THROW((void)cesm::scaled_hardware_case(base, "bad", -1.0, 100, 4),
               InvalidArgument);
}

TEST(WhatIf, RecommendSizeRejectsImpossibleFloor) {
  const LayoutModelSpec spec = spec_for_tests(64);
  const std::vector<int> sizes{64, 2048};
  EXPECT_THROW((void)recommend_size(spec, sizes, 2.0), InvalidArgument);
}

}  // namespace
}  // namespace hslb::core
