// Tests for grids, decompositions, and the machine model.
#include <algorithm>

#include <gtest/gtest.h>

#include "hslb/cesm/decomposition.hpp"
#include "hslb/cesm/grid.hpp"
#include "hslb/cesm/machine.hpp"

namespace hslb::cesm {
namespace {

TEST(Grid, PaperGridSizes) {
  EXPECT_EQ(fv_one_degree().cells(), 288 * 192);
  EXPECT_EQ(pop_gx1().cells(), 320 * 384);
  EXPECT_EQ(pop_tx01().cells(), 3600LL * 2400LL);
  EXPECT_EQ(se_ne240().cells(), 6LL * 240LL * 240LL);
  EXPECT_EQ(se_ne240().kind, GridKind::kSpectralElement);
}

TEST(Grid, KindNames) {
  EXPECT_STREQ(to_string(GridKind::kFiniteVolume), "finite-volume");
  EXPECT_STREQ(to_string(GridKind::kTripole), "tripole");
}

TEST(Machine, IntrepidShape) {
  const Machine m = intrepid();
  EXPECT_EQ(m.total_nodes, 40960);
  EXPECT_EQ(m.cores_per_node, 4);
  EXPECT_EQ(m.total_cores(), 163840);  // the paper's 131,072 run used 32,768 nodes
  EXPECT_EQ(m.cores(32768), 131072);
  EXPECT_EQ(m.mpi_tasks_per_node * m.threads_per_task, m.cores_per_node);
}

TEST(Decomposition, OneDegreeAtmSetMatchesPaper) {
  // A = {1, 2, ..., 1638, 1664}.
  const auto a = atm_allowed_one_degree(40960);
  ASSERT_EQ(a.size(), 1639u);
  EXPECT_EQ(a.front(), 1);
  EXPECT_EQ(a[1637], 1638);
  EXPECT_EQ(a.back(), 1664);
  // Truncation keeps only members that fit.
  const auto small = atm_allowed_one_degree(100);
  EXPECT_EQ(small.back(), 100);
}

TEST(Decomposition, OneDegreeOcnSetMatchesPaper) {
  // O = {2, 4, ..., 480, 768}.
  const auto o = ocn_allowed_one_degree(40960);
  EXPECT_EQ(o.front(), 2);
  EXPECT_EQ(o[o.size() - 2], 480);
  EXPECT_EQ(o.back(), 768);
  for (std::size_t i = 0; i + 1 < o.size(); ++i) {
    EXPECT_EQ(o[i] % 2, 0);
  }
}

TEST(Decomposition, EighthDegreeOcnSetMatchesPaper) {
  const auto o = ocn_allowed_eighth_degree(40960);
  EXPECT_EQ(o, (std::vector<int>{480, 512, 2356, 3136, 4564, 6124, 19460}));
  // Truncated at 8192 the large counts disappear.
  const auto o_small = ocn_allowed_eighth_degree(8192);
  EXPECT_EQ(o_small.back(), 6124);
}

TEST(Decomposition, EighthDegreeAtmSetQuasiDense) {
  const auto a = atm_allowed_eighth_degree(32768);
  EXPECT_GE(a.size(), 1000u);
  for (const int v : a) {
    EXPECT_EQ(v % 4, 0);
    EXPECT_LE(v, 32768);
  }
}

TEST(Decomposition, EvenDecompositionCounts) {
  // 96 cells over 4-core nodes: n=1 (24/core), n=2 (12/core), n=3 (8/core),
  // n=4 (6/core), n=6, n=8, n=12, n=24 are exactly even.
  const auto counts = even_decomposition_counts(96, 24, 4, 0.0);
  for (const int n : {1, 2, 3, 4, 6, 8, 12, 24}) {
    EXPECT_NE(std::find(counts.begin(), counts.end(), n), counts.end())
        << "n=" << n;
  }
  // n=5 -> 96/20 = 4.8, ceil 5, imbalance 4%: excluded at tol 0.
  EXPECT_EQ(std::find(counts.begin(), counts.end(), 5), counts.end());
}

TEST(Decomposition, EvenDecompositionStopsAtCellCount) {
  const auto counts = even_decomposition_counts(16, 100, 4, 0.5);
  // More cores than cells is never allowed: max n = 4 (16 cells / 4 cores).
  EXPECT_LE(counts.back(), 4);
}

TEST(IceDecomposition, DefaultIsDeterministic) {
  for (const int n : {10, 100, 1000}) {
    EXPECT_EQ(default_ice_decomposition(n), default_ice_decomposition(n));
  }
}

TEST(IceDecomposition, DefaultVariesAcrossCounts) {
  // Over many counts, several strategies must appear (this is what makes
  // the sea-ice curve noisy in the paper).
  std::set<IceDecomposition> seen;
  for (int n = 1; n <= 200; ++n) {
    seen.insert(default_ice_decomposition(n));
  }
  EXPECT_GE(seen.size(), 4u);
}

TEST(IceDecomposition, EfficiencyInUnitRange) {
  for (int d = 0; d < kNumIceDecompositions; ++d) {
    for (const int n : {1, 7, 64, 999}) {
      const double e =
          ice_decomposition_efficiency(static_cast<IceDecomposition>(d), n);
      EXPECT_GT(e, 0.5);
      EXPECT_LE(e, 1.0);
    }
  }
}

}  // namespace
}  // namespace hslb::cesm
