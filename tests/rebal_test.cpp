// Tests for hslb::rebal -- the online rebalancing loop: the imbalance
// detector's hysteresis/cooldown state machine (no-fire under pure noise,
// fire-within-N under a scripted shift, blocked-state re-fire), the
// incremental re-fitter (RLS-equals-batch-LS at lambda=1, forgetting-factor
// tracking, CUSUM shift flagging, Huber robustness), the drift simulator's
// pure-hash determinism and the DSL drift round-trip, cross-solve warm
// starts reaching the same optimum as cold solves, and the horizon loop's
// replay-fingerprint determinism.
#include <algorithm>
#include <cmath>
#include <span>
#include <vector>

#include <gtest/gtest.h>

#include "hslb/common/rng.hpp"
#include "hslb/linalg/least_squares.hpp"
#include "hslb/minlp/branch_and_bound.hpp"
#include "hslb/rebal/detector.hpp"
#include "hslb/rebal/drift.hpp"
#include "hslb/rebal/loop.hpp"
#include "hslb/rebal/refit.hpp"
#include "hslb/scen/build.hpp"
#include "hslb/scen/parse.hpp"

namespace hslb::rebal {
namespace {

scen::Scenario drift_scenario() {
  return scen::parse_scenario(R"(scenario rebal_test
machine nodes=48 cores_per_node=8 mem_gb_per_node=64
component atm curve=pow a=4000 b=0.5 c=1.2 d=10
component ocn curve=pow a=2500 b=0.4 c=1.1 d=8
component ice curve=pow a=800 b=0.2 c=1 d=4
component lnd curve=pow a=300 b=0.1 c=1 d=2
comm atm ocn 0.02
schedule ocn | (ice | lnd) -> atm
drift atm rate=0.0001 noise=0.02 shifts=60:1.6
drift ocn rate=-0.0001 noise=0.02 shifts=140:0.55
drift ice noise=0.015
)");
}

// --- Detector state machine -------------------------------------------------

TEST(Detector, FractionalImbalance) {
  const std::vector<double> balanced = {1.0, 1.0, 1.0, 1.0};
  EXPECT_DOUBLE_EQ(fractional_imbalance(balanced), 0.0);
  const std::vector<double> skewed = {2.0, 1.0, 1.0};  // max 2, mean 4/3
  EXPECT_NEAR(fractional_imbalance(skewed), 0.5, 1e-12);
  EXPECT_DOUBLE_EQ(fractional_imbalance({}), 0.0);
}

TEST(Detector, FiresOnSustainedImbalanceAfterWindowFills) {
  DetectorOptions options;
  options.window = 4;
  options.sustain = 3;
  options.cooldown = 5;
  ImbalanceDetector detector(options);
  const std::vector<double> balanced = {1.0, 1.0};
  const std::vector<double> skewed = {1.5, 1.0};  // FLI = 0.2 > 0.15

  // Window not yet filled: even a hard imbalance cannot fire.
  EXPECT_FALSE(detector.observe(skewed));
  EXPECT_FALSE(detector.observe(skewed));
  EXPECT_FALSE(detector.observe(skewed));
  // Window fills on the 4th sample; sustain demands 3 consecutive
  // over-threshold steps from there.
  EXPECT_FALSE(detector.observe(skewed));
  EXPECT_FALSE(detector.observe(skewed));
  EXPECT_TRUE(detector.observe(skewed));
  EXPECT_EQ(detector.state(), ImbalanceDetector::State::kCooldown);
  EXPECT_EQ(detector.fires(), 1);

  // Cooldown swallows everything, even hard imbalance; the transition out
  // happens on the observe that spends the last cooldown step.
  for (int i = 0; i < options.cooldown; ++i) {
    EXPECT_FALSE(detector.observe(skewed));
  }
  // Cooldown elapsed with FLI still high: blocked, not re-armed.
  EXPECT_EQ(detector.state(), ImbalanceDetector::State::kBlocked);

  // Balance restored: the window drains below the clear threshold and the
  // detector re-arms.
  for (int i = 0; i < options.window + 1; ++i) {
    detector.observe(balanced);
  }
  EXPECT_EQ(detector.state(), ImbalanceDetector::State::kArmed);
  EXPECT_EQ(detector.fires(), 1);
}

TEST(Detector, BrokenSustainDoesNotFire) {
  DetectorOptions options;
  options.window = 2;
  options.sustain = 3;
  ImbalanceDetector detector(options);
  const std::vector<double> balanced = {1.0, 1.0};
  // Over threshold on a pure-skew window (FLI 0.167) but not on a mixed
  // skew/balanced window (FLI 0.09): the skew bursts below never sustain.
  const std::vector<double> skewed = {1.4, 1.0};
  for (int round = 0; round < 20; ++round) {
    // Two over-threshold steps, then a balanced stretch long enough to pull
    // the windowed FLI back down: the sustain count must keep resetting.
    EXPECT_FALSE(detector.observe(skewed));
    EXPECT_FALSE(detector.observe(skewed));
    EXPECT_FALSE(detector.observe(balanced));
    EXPECT_FALSE(detector.observe(balanced));
    EXPECT_FALSE(detector.observe(balanced));
  }
  EXPECT_EQ(detector.fires(), 0);
}

TEST(Detector, BlockedStateRefiresOnSustainedHardImbalance) {
  DetectorOptions options;
  options.window = 2;
  options.sustain = 2;
  options.cooldown = 3;
  ImbalanceDetector detector(options);
  const std::vector<double> skewed = {1.5, 1.0};

  int fire_step = -1;
  for (int step = 0; step < 4; ++step) {
    if (detector.observe(skewed)) {
      fire_step = step;
      break;
    }
  }
  ASSERT_GE(fire_step, 0);

  // Hold the imbalance through the cooldown: the detector lands in
  // kBlocked, then the sustained over-fire-threshold signal fires again
  // (the rebalance that followed the first fire moved the baseline, so a
  // persistent hard imbalance is new signal).
  int refire_step = -1;
  for (int step = 0; step < options.cooldown + options.sustain + 2; ++step) {
    if (detector.observe(skewed)) {
      refire_step = step;
      break;
    }
  }
  EXPECT_GE(refire_step, 0);
  EXPECT_EQ(detector.fires(), 2);
}

TEST(Detector, NoFireUnderPureNoise) {
  DetectorOptions options;  // defaults: window 16, fire 0.15, sustain 4
  ImbalanceDetector detector(options);
  common::Rng rng(7);
  std::vector<double> loads(4);
  for (int step = 0; step < 5000; ++step) {
    for (double& load : loads) {
      load = rng.lognormal_noise(0.05);  // 5% CV, mean 1
    }
    EXPECT_FALSE(detector.observe(loads)) << "fired at step " << step;
  }
  EXPECT_EQ(detector.fires(), 0);
}

TEST(Detector, FiresWithinWindowOfAScriptedShift) {
  DetectorOptions options;  // defaults
  ImbalanceDetector detector(options);
  common::Rng rng(11);
  std::vector<double> loads(4);
  constexpr int kShift = 200;
  int fire_step = -1;
  for (int step = 0; step < 400 && fire_step < 0; ++step) {
    for (std::size_t j = 0; j < loads.size(); ++j) {
      const double scale = (j == 0 && step >= kShift) ? 1.6 : 1.0;
      loads[j] = scale * rng.lognormal_noise(0.05);
    }
    if (detector.observe(loads)) {
      fire_step = step;
    }
  }
  ASSERT_GE(fire_step, kShift);
  // Worst case: the window must re-fill past the shift, plus the sustain.
  EXPECT_LE(fire_step, kShift + options.window + options.sustain + 5);
}

TEST(Detector, ResetWindowKeepsCooldown) {
  DetectorOptions options;
  options.window = 2;
  options.sustain = 1;
  options.cooldown = 10;
  ImbalanceDetector detector(options);
  const std::vector<double> skewed = {1.5, 1.0};
  detector.observe(skewed);
  ASSERT_TRUE(detector.observe(skewed));
  detector.reset_window();
  EXPECT_EQ(detector.state(), ImbalanceDetector::State::kCooldown);
  EXPECT_DOUBLE_EQ(detector.windowed_imbalance(), 0.0);
  for (int i = 0; i < options.cooldown; ++i) {
    EXPECT_FALSE(detector.observe(skewed));
  }
}

// --- Incremental re-fit -----------------------------------------------------

TEST(Refit, RlsWithUnitLambdaMatchesBatchLeastSquares) {
  // y = 2 x0 - 3 x1 + 0.5 + noise, fit with a bias column.
  common::Rng rng(3);
  const std::size_t n = 40;
  linalg::Matrix a(n, 3);
  linalg::Vector b(n);
  RecursiveLeastSquares rls(3, 1.0, 1e8);
  for (std::size_t i = 0; i < n; ++i) {
    const double x0 = rng.uniform(-2.0, 2.0);
    const double x1 = rng.uniform(-1.0, 3.0);
    const double y =
        2.0 * x0 - 3.0 * x1 + 0.5 + rng.uniform(-0.01, 0.01);
    a(i, 0) = x0;
    a(i, 1) = x1;
    a(i, 2) = 1.0;
    b[i] = y;
    const std::vector<double> x = {x0, x1, 1.0};
    rls.observe(x, y);
  }
  const linalg::LeastSquaresResult batch = linalg::solve_least_squares(a, b);
  ASSERT_EQ(rls.theta().size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    // The finite initial covariance is a weak prior toward zero; 1e8 makes
    // its bias far smaller than this tolerance.
    EXPECT_NEAR(rls.theta()[i], batch.x[i], 1e-4) << "coefficient " << i;
  }
}

TEST(Refit, ForgettingFactorTracksDriftingParameter) {
  // theta drifts linearly; lambda < 1 must track it with bounded lag, while
  // lambda = 1 averages the whole history and lags far behind.
  RecursiveLeastSquares tracking(1, 0.9);
  RecursiveLeastSquares averaging(1, 1.0);
  const double one = 1.0;
  const std::span<const double> x(&one, 1);
  double truth = 1.0;
  for (int step = 0; step < 400; ++step) {
    truth = 1.0 + 0.01 * step;
    tracking.observe(x, truth);
    averaging.observe(x, truth);
  }
  // Effective memory ~1/(1-lambda) = 10 samples -> lag ~ 10 * 0.01.
  EXPECT_NEAR(tracking.theta()[0], truth, 0.15);
  // The infinite-memory estimator averages the whole ramp and lags by
  // roughly half its height.
  EXPECT_GT(truth - averaging.theta()[0], 1.0);
}

TEST(Refit, CusumFlagsAShiftAndIgnoresNoise) {
  ResidualCusum cusum;  // k = 0.5, h = 12
  common::Rng rng(5);
  for (int step = 0; step < 2000; ++step) {
    ASSERT_FALSE(cusum.observe(rng.uniform(-1.0, 1.0)))
        << "false alarm at step " << step;
  }
  // A 2-sigma shift accumulates (2 - k) per step and crosses h within ~9.
  int flagged_after = -1;
  for (int step = 0; step < 20; ++step) {
    if (cusum.observe(2.0)) {
      flagged_after = step;
      break;
    }
  }
  ASSERT_GE(flagged_after, 0);
  EXPECT_LE(flagged_after, 10);
}

TEST(Refit, HuberLocationResistsOutliers) {
  // 10 inliers near 2.0, two gross outliers; the mean is dragged to ~18 but
  // the Huber location must stay with the inliers.
  std::vector<double> samples = {1.9, 2.0, 2.1, 1.95, 2.05, 2.0,
                                 1.98, 2.02, 1.97, 2.03, 100.0, 95.0};
  const double level = huber_location(samples);
  EXPECT_NEAR(level, 2.0, 0.1);
  EXPECT_DOUBLE_EQ(huber_location({}), 0.0);
}

TEST(Refit, ScaleTrackerFollowsSlowDriftAndJumpsOnShift) {
  ScaleTrackerOptions options;
  ScaleTracker tracker(options);
  common::Rng rng(13);
  long shift_flags = 0;
  // Slow drift, small against the noise floor (lag ~rate/(1-lambda) is a
  // fraction of the noise sigma): no regime shifts flagged, estimate
  // follows.
  double scale = 1.0;
  for (int step = 0; step < 500; ++step) {
    scale = std::exp(0.0001 * step);
    const ScaleTracker::Update update =
        tracker.observe(scale * rng.lognormal_noise(0.02));
    shift_flags += update.regime_shift ? 1 : 0;
  }
  EXPECT_EQ(shift_flags, 0);
  EXPECT_NEAR(tracker.scale(), scale, 0.05 * scale);
  // Step change: the CUSUM must flag it and the Huber re-fit must move the
  // estimate to the new level within a short window.
  bool flagged = false;
  for (int step = 0; step < 30; ++step) {
    const ScaleTracker::Update update =
        tracker.observe(1.6 * scale * rng.lognormal_noise(0.02));
    flagged = flagged || update.regime_shift;
  }
  EXPECT_TRUE(flagged);
  EXPECT_NEAR(tracker.scale(), 1.6 * scale, 0.08 * 1.6 * scale);
}

// --- Drift simulation and the DSL ------------------------------------------

TEST(Drift, ScaleCombinesTrendAndShifts) {
  scen::DriftSpec spec;
  spec.rate = 0.001;
  spec.shifts = {{100, 2.0}, {200, 0.5}};
  EXPECT_DOUBLE_EQ(drift_scale(spec, 0), 1.0);
  EXPECT_NEAR(drift_scale(spec, 99), std::exp(0.099), 1e-12);
  EXPECT_NEAR(drift_scale(spec, 100), 2.0 * std::exp(0.1), 1e-12);
  EXPECT_NEAR(drift_scale(spec, 200), 1.0 * std::exp(0.2), 1e-12);
}

TEST(Drift, DslRoundTripPreservesDriftAndFingerprint) {
  const scen::Scenario s = drift_scenario();
  ASSERT_EQ(s.drift.size(), 3u);
  EXPECT_EQ(s.drift[0].component, 0);
  EXPECT_DOUBLE_EQ(s.drift[0].rate, 0.0001);
  ASSERT_EQ(s.drift[0].shifts.size(), 1u);
  EXPECT_EQ(s.drift[0].shifts[0].step, 60);
  EXPECT_DOUBLE_EQ(s.drift[0].shifts[0].factor, 1.6);

  const std::string printed = scen::print_scenario(s, true);
  const scen::Scenario reparsed = scen::parse_scenario(printed);
  EXPECT_EQ(scen::print_scenario(reparsed, true), printed);
  EXPECT_EQ(scen::scenario_fingerprint(reparsed),
            scen::scenario_fingerprint(s));

  // Drift is part of the model: dropping it must change the fingerprint.
  scen::Scenario undrifted = s;
  undrifted.drift.clear();
  EXPECT_NE(scen::scenario_fingerprint(undrifted),
            scen::scenario_fingerprint(s));
}

TEST(Drift, DslRejectsBadDirectives) {
  const char* header =
      "scenario x\nmachine nodes=8\ncomponent a curve=pow a=10 b=0 c=1 d=1\n"
      "schedule a\n";
  EXPECT_FALSE(
      scen::try_parse_scenario(std::string(header) + "drift b rate=0.1\n")
          .has_value());
  EXPECT_FALSE(
      scen::try_parse_scenario(std::string(header) + "drift a noise=1.5\n")
          .has_value());
  EXPECT_FALSE(scen::try_parse_scenario(std::string(header) +
                                        "drift a shifts=10:2,5:3\n")
                   .has_value());
  EXPECT_FALSE(scen::try_parse_scenario(std::string(header) +
                                        "drift a shifts=10:-2\n")
                   .has_value());
  EXPECT_TRUE(scen::try_parse_scenario(std::string(header) +
                                       "drift a rate=0.1 shifts=5:2,9:0.5\n")
                  .has_value());
}

TEST(Drift, SimulatorIsDeterministicInSeedStepComponent) {
  const scen::Scenario s = drift_scenario();
  const DriftSimulator sim_a(s, 42);
  const DriftSimulator sim_b(s, 42);
  const DriftSimulator sim_other(s, 43);
  bool any_seed_difference = false;
  for (long step : {0L, 7L, 61L, 500L}) {
    for (int j = 0; j < 4; ++j) {
      const double a = sim_a.observed_seconds(j, step, 8);
      EXPECT_DOUBLE_EQ(a, sim_b.observed_seconds(j, step, 8));
      any_seed_difference = any_seed_difference ||
                            a != sim_other.observed_seconds(j, step, 8);
    }
  }
  EXPECT_TRUE(any_seed_difference);
  // lnd has no drift spec: scale 1, no noise.
  EXPECT_DOUBLE_EQ(sim_a.true_scale(3, 900), 1.0);
  const double lnd_curve = s.components[3].curve(8.0);
  EXPECT_DOUBLE_EQ(sim_a.observed_seconds(3, 900, 8), lnd_curve);
  EXPECT_EQ(sim_a.shift_steps(), (std::vector<long>{60, 140}));
}

TEST(Drift, ScaledScenarioScalesTheObjectiveConsistently) {
  const scen::Scenario s = drift_scenario();
  const std::vector<double> scales = {2.0, 1.0, 1.0, 1.0};
  const scen::Scenario scaled = scaled_scenario(s, scales);
  const std::vector<int> alloc = {24, 12, 8, 4};
  // atm's curve doubles exactly; others are untouched.
  EXPECT_DOUBLE_EQ(scaled.components[0].curve(24.0),
                   2.0 * s.components[0].curve(24.0));
  EXPECT_DOUBLE_EQ(scaled.components[1].curve(12.0),
                   s.components[1].curve(12.0));
  // The scaled scenario stays valid and buildable.
  scaled.validate();
  scen::ScenarioModelVars vars;
  (void)scen::build_scenario_model(scaled, &vars);
}

// --- Cross-solve warm starts ------------------------------------------------

TEST(WarmSolve, WarmStartReachesTheColdOptimum) {
  const scen::Scenario s = drift_scenario();
  scen::ScenarioModelVars vars;
  const minlp::Model base_model = scen::build_scenario_model(s, &vars);

  minlp::SolverOptions cold_options;
  cold_options.capture_warm_start = true;
  const minlp::MinlpResult first = minlp::solve(base_model, cold_options);
  ASSERT_EQ(first.status, minlp::MinlpStatus::kOptimal);
  ASSERT_FALSE(first.warm.empty());
  ASSERT_FALSE(first.warm.incumbent.empty());

  // Perturb the scenario the way the loop's re-fit does, then solve the new
  // model cold and warm: both must land on the same optimum.
  const std::vector<double> scales = {1.6, 0.9, 1.0, 1.0};
  const scen::Scenario drifted = scaled_scenario(s, scales);
  scen::ScenarioModelVars drifted_vars;
  const minlp::Model drifted_model =
      scen::build_scenario_model(drifted, &drifted_vars);

  const minlp::MinlpResult cold = minlp::solve(drifted_model, cold_options);
  minlp::SolverOptions warm_options = cold_options;
  warm_options.warm_start = &first.warm;
  const minlp::MinlpResult warm = minlp::solve(drifted_model, warm_options);

  ASSERT_EQ(warm.status, minlp::MinlpStatus::kOptimal);
  EXPECT_NEAR(warm.objective, cold.objective,
              1e-7 * (1.0 + std::fabs(cold.objective)));
  // The previous incumbent completes to a feasible point of the drifted
  // model (same bounds, scaled objective), priming the cutoff.
  EXPECT_GE(warm.stats.warm_incumbent_primes, 1);
  EXPECT_LE(warm.stats.nodes_explored, cold.stats.nodes_explored);
}

TEST(WarmSolve, CaptureOffLeavesResultUnchanged) {
  const scen::Scenario s = drift_scenario();
  scen::ScenarioModelVars vars;
  const minlp::Model model = scen::build_scenario_model(s, &vars);
  minlp::SolverOptions plain;
  minlp::SolverOptions capturing;
  capturing.capture_warm_start = true;
  const minlp::MinlpResult a = minlp::solve(model, plain);
  const minlp::MinlpResult b = minlp::solve(model, capturing);
  EXPECT_EQ(a.status, b.status);
  EXPECT_DOUBLE_EQ(a.objective, b.objective);
  EXPECT_EQ(a.stats.nodes_explored, b.stats.nodes_explored);
  EXPECT_EQ(a.stats.simplex_iterations, b.stats.simplex_iterations);
  EXPECT_TRUE(a.warm.empty());
  EXPECT_FALSE(b.warm.empty());
}

// --- The horizon loop -------------------------------------------------------

TEST(Loop, ScoreDetectorMatchesFiresToShifts) {
  // Shifts at 100 and 300; fires at 110 (TP), 170 (FP), 305 (TP).
  const DetectorScore score =
      score_detector({110, 170, 305}, {100, 300}, 50);
  EXPECT_EQ(score.true_positives, 2);
  EXPECT_EQ(score.false_positives, 1);
  EXPECT_EQ(score.false_negatives, 0);
  EXPECT_NEAR(score.precision, 2.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(score.recall, 1.0);
  // A fire before the shift does not match it.
  const DetectorScore early = score_detector({95}, {100}, 50);
  EXPECT_EQ(early.true_positives, 0);
  EXPECT_EQ(early.false_positives, 1);
  EXPECT_EQ(early.false_negatives, 1);
  // No fires, no shifts: vacuous perfection.
  const DetectorScore empty = score_detector({}, {}, 50);
  EXPECT_DOUBLE_EQ(empty.precision, 1.0);
  EXPECT_DOUBLE_EQ(empty.recall, 1.0);
}

TEST(Loop, HorizonReplayIsDeterministicPerSeed) {
  const scen::Scenario s = drift_scenario();
  LoopOptions options;
  options.horizon = 200;
  options.detector.fire_threshold = 0.08;
  options.detector.clear_threshold = 0.03;
  const HorizonResult a = run_horizon(s, options);
  const HorizonResult b = run_horizon(s, options);
  EXPECT_EQ(a.replay_fingerprint, b.replay_fingerprint);
  EXPECT_EQ(a.fire_steps, b.fire_steps);
  EXPECT_DOUBLE_EQ(a.core_hours, b.core_hours);
  EXPECT_EQ(a.final_allocation, b.final_allocation);

  LoopOptions other_seed = options;
  other_seed.seed = options.seed + 1;
  const HorizonResult c = run_horizon(s, other_seed);
  EXPECT_NE(a.replay_fingerprint, c.replay_fingerprint);
}

TEST(Loop, RebalancingBeatsStaticUnderAScriptedShift) {
  const scen::Scenario s = drift_scenario();
  LoopOptions loop_options;
  loop_options.horizon = 200;
  loop_options.detector.fire_threshold = 0.08;
  loop_options.detector.clear_threshold = 0.03;
  LoopOptions static_options = loop_options;
  static_options.rebalance = false;
  const HorizonResult rebalancing = run_horizon(s, loop_options);
  const HorizonResult fixed = run_horizon(s, static_options);
  EXPECT_GE(rebalancing.rebalances, 1);
  EXPECT_LT(rebalancing.core_hours, fixed.core_hours);
  // The static arm never rebalances and pays no overhead.
  EXPECT_EQ(fixed.rebalances, 0);
  EXPECT_DOUBLE_EQ(fixed.overhead_core_hours, 0.0);
  EXPECT_EQ(fixed.initial_allocation, fixed.final_allocation);
}

}  // namespace
}  // namespace hslb::rebal
