// Tests for the deterministic fault-injection layer and the fault-aware
// benchmark campaign: injector determinism, text corruption helpers, the
// snap_down fallback contract, and disabled-faults byte-identity.
#include <gtest/gtest.h>

#include <map>

#include "hslb/cesm/campaign.hpp"
#include "hslb/cesm/fault.hpp"
#include "hslb/common/error.hpp"

namespace hslb::cesm {
namespace {

TEST(FaultSpec, DefaultIsDisabled) {
  const FaultSpec spec;
  EXPECT_FALSE(spec.enabled());
  EXPECT_EQ(spec.total_rate(), 0.0);
}

TEST(FaultSpec, UniformSplitsTheRate) {
  const FaultSpec spec = FaultSpec::uniform(0.2, 7);
  EXPECT_TRUE(spec.enabled());
  EXPECT_NEAR(spec.total_rate(), 0.2, 1e-12);
  EXPECT_GT(spec.launch_failure_prob, 0.0);
  EXPECT_GT(spec.straggler_prob, 0.0);
  EXPECT_GT(spec.spike_prob, 0.0);
}

TEST(FaultInjector, DisabledSpecNeverFires) {
  const FaultInjector injector((FaultSpec()));
  for (std::uint64_t key = 0; key < 200; ++key) {
    for (int attempt = 0; attempt < 4; ++attempt) {
      EXPECT_EQ(injector.draw(key, attempt), FaultKind::kNone);
    }
  }
}

TEST(FaultInjector, DrawsArePureFunctionsOfKeyAndAttempt) {
  const FaultInjector a(FaultSpec::uniform(0.5, 99));
  const FaultInjector b(FaultSpec::uniform(0.5, 99));
  // Query b in reverse order: results must not depend on call order.
  std::map<std::pair<std::uint64_t, int>, FaultKind> forward;
  for (std::uint64_t key = 0; key < 100; ++key) {
    for (int attempt = 0; attempt < 3; ++attempt) {
      forward[{key, attempt}] = a.draw(key, attempt);
    }
  }
  for (auto it = forward.rbegin(); it != forward.rend(); ++it) {
    EXPECT_EQ(b.draw(it->first.first, it->first.second), it->second);
  }
}

TEST(FaultInjector, SeedChangesTheStream) {
  const FaultInjector a(FaultSpec::uniform(0.5, 1));
  const FaultInjector b(FaultSpec::uniform(0.5, 2));
  int differing = 0;
  for (std::uint64_t key = 0; key < 200; ++key) {
    if (a.draw(key, 0) != b.draw(key, 0)) {
      ++differing;
    }
  }
  EXPECT_GT(differing, 0);
}

TEST(FaultInjector, EmpiricalRateTracksTheSpec) {
  const FaultInjector injector(FaultSpec::uniform(0.2, 5));
  int fired = 0;
  const int trials = 20000;
  for (int key = 0; key < trials; ++key) {
    if (injector.draw(static_cast<std::uint64_t>(key), 0) !=
        FaultKind::kNone) {
      ++fired;
    }
  }
  const double rate = static_cast<double>(fired) / trials;
  EXPECT_NEAR(rate, 0.2, 0.02);
}

TEST(FaultInjector, SpikeTargetStaysInRange) {
  const FaultInjector injector(FaultSpec::uniform(1.0, 3));
  for (std::uint64_t key = 0; key < 500; ++key) {
    const int target = injector.spike_target(key, 1, 4);
    EXPECT_GE(target, 0);
    EXPECT_LT(target, 4);
  }
}

TEST(FaultText, CorruptionIsDeterministicAndDestructive) {
  const std::string text(400, 'x');
  const std::string once = corrupt_text(text, 11);
  const std::string again = corrupt_text(text, 11);
  EXPECT_EQ(once, again);
  EXPECT_NE(once, text);
  EXPECT_NE(corrupt_text(text, 12), once);
}

TEST(FaultText, TruncationShortensDeterministically) {
  std::string text;
  for (int i = 0; i < 50; ++i) {
    text += "line " + std::to_string(i) + "\n";
  }
  const std::string cut = truncate_text(text, 21);
  EXPECT_EQ(cut, truncate_text(text, 21));
  EXPECT_LT(cut.size(), text.size());
  EXPECT_FALSE(cut.empty());
}

TEST(SnapDown, PicksLargestMemberBelowLimit) {
  const std::vector<int> allowed{24, 40, 80, 120};
  EXPECT_EQ(snap_down(allowed, 100).value, 80);
  EXPECT_TRUE(snap_down(allowed, 100).fits);
  EXPECT_EQ(snap_down(allowed, 120).value, 120);
  EXPECT_TRUE(snap_down(allowed, 120).fits);
}

TEST(SnapDown, FlagsTheOverLimitFallback) {
  // No member fits below the limit: the old code silently returned the
  // set's minimum (which exceeds the limit); the contract now reports it.
  const std::vector<int> allowed{24, 40, 80};
  const SnapResult snapped = snap_down(allowed, 10);
  EXPECT_EQ(snapped.value, 24);
  EXPECT_FALSE(snapped.fits);
}

TEST(SnapDown, ReferenceLayoutRejectsImpossibleMachines) {
  // A machine slice smaller than the smallest allowed ocean count must fail
  // with a clear error instead of producing an over-committed layout.
  const CaseConfig config = one_degree_case();
  EXPECT_THROW(
      (void)reference_layout(config, LayoutKind::kHybrid, 2),
      InvalidArgument);
}

TEST(GatherFaults, DisabledOptionsMatchTheFaultFreeOverload) {
  const CaseConfig config = one_degree_case();
  const std::vector<int> totals{128, 256, 512};
  const CampaignResult plain =
      gather_benchmarks(config, LayoutKind::kHybrid, totals, 77);
  const CampaignResult optioned = gather_benchmarks(
      config, LayoutKind::kHybrid, totals, 77, GatherOptions{});
  ASSERT_EQ(plain.samples.size(), optioned.samples.size());
  for (std::size_t i = 0; i < plain.samples.size(); ++i) {
    EXPECT_EQ(plain.samples[i].kind, optioned.samples[i].kind);
    EXPECT_EQ(plain.samples[i].nodes, optioned.samples[i].nodes);
    EXPECT_EQ(plain.samples[i].seconds, optioned.samples[i].seconds);
  }
  EXPECT_FALSE(optioned.fault_report.any_faults());
  EXPECT_TRUE(optioned.fault_report.runs.empty());
}

TEST(GatherFaults, FaultyCampaignIsDeterministicInTheSeed) {
  const CaseConfig config = one_degree_case();
  const std::vector<int> totals{128, 256, 512, 1024};
  GatherOptions options;
  options.faults = FaultSpec::uniform(0.4, 1234);
  const CampaignResult first =
      gather_benchmarks(config, LayoutKind::kHybrid, totals, 5, options);
  const CampaignResult second =
      gather_benchmarks(config, LayoutKind::kHybrid, totals, 5, options);
  ASSERT_EQ(first.samples.size(), second.samples.size());
  for (std::size_t i = 0; i < first.samples.size(); ++i) {
    EXPECT_EQ(first.samples[i].seconds, second.samples[i].seconds);
  }
  EXPECT_EQ(first.fault_report.retries, second.fault_report.retries);
  EXPECT_EQ(first.fault_report.sim_seconds_lost,
            second.fault_report.sim_seconds_lost);
}

TEST(GatherFaults, ReportTalliesWhatTheInjectorDid) {
  const CaseConfig config = one_degree_case();
  const std::vector<int> totals{128, 256, 512, 1024, 2048};
  GatherOptions options;
  options.faults = FaultSpec::uniform(0.6, 42);
  const CampaignResult result =
      gather_benchmarks(config, LayoutKind::kHybrid, totals, 9, options);
  EXPECT_TRUE(result.fault_report.any_faults());
  EXPECT_EQ(result.fault_report.runs.size(), totals.size());
  // Retries are attempts beyond the first; each retry charges simulated
  // backoff time, so lost time moves with the retry count.
  if (result.fault_report.retries > 0) {
    EXPECT_GT(result.fault_report.sim_seconds_lost, 0.0);
  }
  // Completed runs plus gave-up runs account for every total.
  EXPECT_EQ(result.runs.size() + static_cast<std::size_t>(
                                     result.fault_report.giveups),
            totals.size());
}

}  // namespace
}  // namespace hslb::cesm
