// Property-based tests for the simplex: random instances are checked for
// feasibility of the returned point, consistency against known feasible
// points, and (in two dimensions) against brute-force vertex enumeration.
#include <cmath>
#include <optional>
#include <vector>

#include <gtest/gtest.h>

#include "hslb/common/rng.hpp"
#include "hslb/lp/simplex.hpp"

namespace hslb::lp {
namespace {

using linalg::Vector;

bool satisfies(const LpProblem& p, const Vector& x, double tol = 1e-6) {
  for (std::size_t j = 0; j < p.num_vars(); ++j) {
    if (x[j] < p.col_lower()[j] - tol || x[j] > p.col_upper()[j] + tol) {
      return false;
    }
  }
  for (const Row& row : p.rows()) {
    double v = 0.0;
    for (std::size_t j = 0; j < p.num_vars(); ++j) {
      v += row.coeffs[j] * x[j];
    }
    const double scale = 1.0 + std::fabs(v);
    if (v < row.lower - tol * scale || v > row.upper + tol * scale) {
      return false;
    }
  }
  return true;
}

double objective_at(const LpProblem& p, const Vector& x) {
  double v = p.objective_offset();
  for (std::size_t j = 0; j < p.num_vars(); ++j) {
    v += p.cost()[j] * x[j];
  }
  return v;
}

// ---------------------------------------------------------------------------
// Feasible-by-construction instances: solution must be feasible and at least
// as good as the seed point.
// ---------------------------------------------------------------------------

class SimplexFeasibleProperty : public ::testing::TestWithParam<int> {};

TEST_P(SimplexFeasibleProperty, OptimalBeatsSeedPoint) {
  common::Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 13);
  const std::size_t n = 1 + static_cast<std::size_t>(rng.uniform_int(1, 7));
  const std::size_t m = static_cast<std::size_t>(rng.uniform_int(1, 9));

  LpProblem p;
  Vector seed(n);
  for (std::size_t j = 0; j < n; ++j) {
    const double lo = rng.uniform(-5.0, 0.0);
    const double hi = lo + rng.uniform(0.5, 10.0);
    p.add_variable(lo, hi, rng.uniform(-2.0, 2.0));
    seed[j] = rng.uniform(lo, hi);
  }
  for (std::size_t i = 0; i < m; ++i) {
    Vector coeffs(n);
    double at_seed = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      coeffs[j] = rng.uniform(-2.0, 2.0);
      at_seed += coeffs[j] * seed[j];
    }
    // Row passes through the seed with slack on both sides.
    p.add_row(std::move(coeffs), at_seed - rng.uniform(0.0, 3.0),
              at_seed + rng.uniform(0.0, 3.0));
  }

  const auto s = solve(p);
  ASSERT_EQ(s.status, LpStatus::kOptimal)
      << "seed-feasible LP must be solvable";
  EXPECT_TRUE(satisfies(p, s.x)) << "returned point must be feasible";
  EXPECT_LE(s.objective, objective_at(p, seed) + 1e-6)
      << "optimum cannot be worse than a known feasible point";
}

INSTANTIATE_TEST_SUITE_P(RandomFeasible, SimplexFeasibleProperty,
                         ::testing::Range(0, 40));

// ---------------------------------------------------------------------------
// 2-D instances vs brute-force vertex enumeration.
// ---------------------------------------------------------------------------

std::optional<Vector> intersect(const Vector& a1, double b1, const Vector& a2,
                                double b2) {
  const double det = a1[0] * a2[1] - a1[1] * a2[0];
  if (std::fabs(det) < 1e-9) {
    return std::nullopt;
  }
  return Vector{(b1 * a2[1] - b2 * a1[1]) / det,
                (a1[0] * b2 - a2[0] * b1) / det};
}

class SimplexBruteForce2D : public ::testing::TestWithParam<int> {};

TEST_P(SimplexBruteForce2D, MatchesVertexEnumeration) {
  common::Rng rng(static_cast<std::uint64_t>(GetParam()) * 104729 + 7);

  LpProblem p;
  for (int j = 0; j < 2; ++j) {
    p.add_variable(rng.uniform(-3.0, 0.0), rng.uniform(0.5, 4.0),
                   rng.uniform(-2.0, 2.0));
  }
  const int m = static_cast<int>(rng.uniform_int(1, 4));
  for (int i = 0; i < m; ++i) {
    p.add_row({rng.uniform(-2.0, 2.0), rng.uniform(-2.0, 2.0)},
              -lp::kInf, rng.uniform(-1.0, 4.0));
  }

  // Candidate vertices: intersections of all pairs of "lines" (rows at their
  // bound + box edges).
  std::vector<std::pair<Vector, double>> lines;
  for (const Row& row : p.rows()) {
    lines.push_back({row.coeffs, row.upper});
  }
  lines.push_back({{1.0, 0.0}, p.col_lower()[0]});
  lines.push_back({{1.0, 0.0}, p.col_upper()[0]});
  lines.push_back({{0.0, 1.0}, p.col_lower()[1]});
  lines.push_back({{0.0, 1.0}, p.col_upper()[1]});

  double brute = lp::kInf;
  bool any_feasible = false;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    for (std::size_t j = i + 1; j < lines.size(); ++j) {
      const auto v = intersect(lines[i].first, lines[i].second,
                               lines[j].first, lines[j].second);
      if (v && satisfies(p, *v, 1e-7)) {
        any_feasible = true;
        brute = std::min(brute, objective_at(p, *v));
      }
    }
  }

  const auto s = solve(p);
  if (!any_feasible) {
    // Either truly infeasible or the optimum is interior-free; the simplex
    // must agree with infeasibility when no vertex exists.
    if (s.status == LpStatus::kOptimal) {
      EXPECT_TRUE(satisfies(p, s.x));
    }
    return;
  }
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_TRUE(satisfies(p, s.x));
  EXPECT_NEAR(s.objective, brute, 1e-5);
}

INSTANTIATE_TEST_SUITE_P(Random2D, SimplexBruteForce2D,
                         ::testing::Range(0, 60));

// Scaling property: doubling the cost vector doubles the optimal value of a
// problem with zero offset.
class SimplexScalingProperty : public ::testing::TestWithParam<int> {};

TEST_P(SimplexScalingProperty, CostScalingScalesObjective) {
  common::Rng rng(static_cast<std::uint64_t>(GetParam()) * 31 + 5);
  LpProblem p;
  const std::size_t n = 3;
  for (std::size_t j = 0; j < n; ++j) {
    p.add_variable(0.0, rng.uniform(1.0, 5.0), rng.uniform(-1.0, 1.0));
  }
  p.add_row({1.0, 1.0, 1.0}, 0.5, 4.0);

  const auto s1 = solve(p);
  ASSERT_EQ(s1.status, LpStatus::kOptimal);
  LpProblem doubled = p;
  for (std::size_t j = 0; j < n; ++j) {
    doubled.set_cost(j, 2.0 * p.cost()[j]);
  }
  const auto s2 = solve(doubled);
  ASSERT_EQ(s2.status, LpStatus::kOptimal);
  EXPECT_NEAR(s2.objective, 2.0 * s1.objective, 1e-7);
}

INSTANTIATE_TEST_SUITE_P(Scaling, SimplexScalingProperty,
                         ::testing::Range(0, 20));

// ---------------------------------------------------------------------------
// Warm-start properties: resolve_from_basis must reach the same optimum as a
// cold solve -- on the identical problem, after bound/cost modifications, and
// across row reorderings remapped with map_basis.
// ---------------------------------------------------------------------------

/// Random feasible-by-construction LP (same family as the first suite).
LpProblem random_feasible(common::Rng& rng, Vector* seed_out = nullptr) {
  const std::size_t n = 2 + static_cast<std::size_t>(rng.uniform_int(1, 6));
  const std::size_t m = 1 + static_cast<std::size_t>(rng.uniform_int(1, 8));
  LpProblem p;
  Vector seed(n);
  for (std::size_t j = 0; j < n; ++j) {
    const double lo = rng.uniform(-5.0, 0.0);
    const double hi = lo + rng.uniform(0.5, 10.0);
    p.add_variable(lo, hi, rng.uniform(-2.0, 2.0));
    seed[j] = rng.uniform(lo, hi);
  }
  for (std::size_t i = 0; i < m; ++i) {
    Vector coeffs(n);
    double at_seed = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      coeffs[j] = rng.uniform(-2.0, 2.0);
      at_seed += coeffs[j] * seed[j];
    }
    p.add_row(std::move(coeffs), at_seed - rng.uniform(0.1, 3.0),
              at_seed + rng.uniform(0.1, 3.0));
  }
  if (seed_out != nullptr) {
    *seed_out = seed;
  }
  return p;
}

class SimplexWarmStartProperty : public ::testing::TestWithParam<int> {};

TEST_P(SimplexWarmStartProperty, SameProblemResolveSkipsPhase1) {
  common::Rng rng(static_cast<std::uint64_t>(GetParam()) * 6151 + 3);
  const LpProblem p = random_feasible(rng);

  SimplexOptions capture;
  capture.capture_basis = true;
  const LpSolution cold = solve(p, capture);
  ASSERT_EQ(cold.status, LpStatus::kOptimal);
  if (cold.basis.empty()) {
    return;  // an artificial stayed basic; nothing to warm-start from
  }

  const LpSolution warm = resolve_from_basis(p, cold.basis);
  ASSERT_EQ(warm.status, LpStatus::kOptimal);
  EXPECT_TRUE(warm.warm_used);
  EXPECT_TRUE(warm.warm_phase1_skipped)
      << "re-solving the identical problem from its optimal basis must not "
         "re-run Phase I";
  EXPECT_EQ(warm.phase1_iterations, 0);
  EXPECT_NEAR(warm.objective, cold.objective, 1e-7);
  EXPECT_TRUE(satisfies(p, warm.x));
}

TEST_P(SimplexWarmStartProperty, ModifiedProblemResolveMatchesColdOptimum) {
  common::Rng rng(static_cast<std::uint64_t>(GetParam()) * 12289 + 11);
  Vector seed;
  LpProblem p = random_feasible(rng, &seed);

  SimplexOptions capture;
  capture.capture_basis = true;
  const LpSolution first = solve(p, capture);
  ASSERT_EQ(first.status, LpStatus::kOptimal);

  // Perturb the problem the way branch-and-bound does: tighten variable
  // bounds around a still-feasible point and nudge the costs.
  for (std::size_t j = 0; j < p.num_vars(); ++j) {
    if (rng.uniform(0.0, 1.0) < 0.5) {
      p.set_cost(j, p.cost()[j] + rng.uniform(-0.5, 0.5));
    }
    const double lo = std::min(seed[j], p.col_lower()[j] +
                                            rng.uniform(0.0, 0.5));
    const double hi = std::max(seed[j], p.col_upper()[j] -
                                            rng.uniform(0.0, 0.5));
    p.set_col_bounds(j, lo, hi);
  }

  const LpSolution cold = solve(p);
  const LpSolution warm = first.basis.empty()
                              ? resolve_from_basis(p, Basis{})
                              : resolve_from_basis(p, first.basis);
  ASSERT_EQ(cold.status, LpStatus::kOptimal);
  ASSERT_EQ(warm.status, LpStatus::kOptimal);
  EXPECT_NEAR(warm.objective, cold.objective, 1e-6)
      << "a warm solve must find the same optimal value as a cold solve";
  EXPECT_TRUE(satisfies(p, warm.x));
}

TEST_P(SimplexWarmStartProperty, RowReorderRemapMatchesColdOptimum) {
  common::Rng rng(static_cast<std::uint64_t>(GetParam()) * 24593 + 29);
  const LpProblem p = random_feasible(rng);

  SimplexOptions capture;
  capture.capture_basis = true;
  const LpSolution cold = solve(p, capture);
  ASSERT_EQ(cold.status, LpStatus::kOptimal);
  if (cold.basis.empty()) {
    return;
  }

  // Rebuild the problem with its rows reversed and remap the basis through
  // stable row keys -- the same mechanism branch-and-bound uses when the cut
  // set changes between parent and child.
  LpProblem reordered;
  for (std::size_t j = 0; j < p.num_vars(); ++j) {
    reordered.add_variable(p.col_lower()[j], p.col_upper()[j], p.cost()[j]);
  }
  std::vector<std::uint64_t> from_keys;
  std::vector<std::uint64_t> to_keys;
  const std::size_t m = p.rows().size();
  for (std::size_t i = 0; i < m; ++i) {
    from_keys.push_back(static_cast<std::uint64_t>(i));
  }
  for (std::size_t i = m; i-- > 0;) {
    const Row& row = p.rows()[i];
    Vector coeffs = row.coeffs;
    reordered.add_row(std::move(coeffs), row.lower, row.upper);
    to_keys.push_back(static_cast<std::uint64_t>(i));
  }

  const Basis mapped = map_basis(cold.basis, from_keys, to_keys);
  const LpSolution warm = resolve_from_basis(reordered, mapped);
  ASSERT_EQ(warm.status, LpStatus::kOptimal);
  EXPECT_TRUE(warm.warm_used);
  EXPECT_NEAR(warm.objective, cold.objective, 1e-7)
      << "reordering rows must not change the optimum a mapped basis reaches";
  EXPECT_TRUE(satisfies(reordered, warm.x));
}

TEST_P(SimplexWarmStartProperty, AddedRowSlackEntersBasisAndSkipsPhase1) {
  common::Rng rng(static_cast<std::uint64_t>(GetParam()) * 40961 + 17);
  const LpProblem p = random_feasible(rng);

  SimplexOptions capture;
  capture.capture_basis = true;
  const LpSolution cold = solve(p, capture);
  ASSERT_EQ(cold.status, LpStatus::kOptimal);
  if (cold.basis.empty()) {
    return;
  }

  // Append a new row that holds at the cold optimum -- the shape of a lazy
  // OA cut a child node inherits.  map_basis gives the new row a basic
  // slack, so the extended basis stays primal feasible and Phase I is
  // skipped even though the row set grew.
  LpProblem grown;
  for (std::size_t j = 0; j < p.num_vars(); ++j) {
    grown.add_variable(p.col_lower()[j], p.col_upper()[j], p.cost()[j]);
  }
  std::vector<std::uint64_t> from_keys;
  std::vector<std::uint64_t> to_keys;
  for (std::size_t i = 0; i < p.rows().size(); ++i) {
    const Row& row = p.rows()[i];
    Vector coeffs = row.coeffs;
    grown.add_row(std::move(coeffs), row.lower, row.upper);
    from_keys.push_back(static_cast<std::uint64_t>(i));
    to_keys.push_back(static_cast<std::uint64_t>(i));
  }
  Vector cut(p.num_vars());
  double at_opt = 0.0;
  for (std::size_t j = 0; j < p.num_vars(); ++j) {
    cut[j] = rng.uniform(-2.0, 2.0);
    at_opt += cut[j] * cold.x[j];
  }
  grown.add_row(std::move(cut), -kInf, at_opt + rng.uniform(0.1, 1.0));
  to_keys.push_back(1u << 20);  // a fresh key: no match in from_keys

  const Basis mapped = map_basis(cold.basis, from_keys, to_keys);
  const LpSolution warm = resolve_from_basis(grown, mapped);
  ASSERT_EQ(warm.status, LpStatus::kOptimal);
  EXPECT_TRUE(warm.warm_used);
  EXPECT_TRUE(warm.warm_phase1_skipped)
      << "a satisfied added row must not force the cold path";
  EXPECT_EQ(warm.phase1_iterations, 0);
  EXPECT_NEAR(warm.objective, cold.objective, 1e-7)
      << "a non-binding added row cannot change the optimum";
  EXPECT_TRUE(satisfies(grown, warm.x));
}

INSTANTIATE_TEST_SUITE_P(WarmStarts, SimplexWarmStartProperty,
                         ::testing::Range(0, 40));

// ---------------------------------------------------------------------------
// Sparse-engine properties: the maintained-LU engine must agree with the
// dense baseline, eta-updated solves must agree with fresh factorizations
// over whatever pivot sequence the instance produces, and a factor handoff
// can never change the optimum.
// ---------------------------------------------------------------------------

class SimplexSparseEngineProperty : public ::testing::TestWithParam<int> {};

TEST_P(SimplexSparseEngineProperty, SparseAndDenseReachTheSameOptimum) {
  common::Rng rng(static_cast<std::uint64_t>(GetParam()) * 52489 + 101);
  const LpProblem p = random_feasible(rng);
  SimplexOptions sparse_opts;
  sparse_opts.engine = LpEngine::kSparse;
  SimplexOptions dense_opts;
  dense_opts.engine = LpEngine::kDense;
  const LpSolution a = solve(p, sparse_opts);
  const LpSolution b = solve(p, dense_opts);
  ASSERT_EQ(a.status, LpStatus::kOptimal);
  ASSERT_EQ(b.status, LpStatus::kOptimal);
  EXPECT_NEAR(a.objective, b.objective, 1e-7);
  EXPECT_TRUE(satisfies(p, a.x));
  EXPECT_TRUE(satisfies(p, b.x));
}

TEST_P(SimplexSparseEngineProperty, EtaUpdatedSolvesMatchFreshFactorization) {
  // The same instance solved with the eta file effectively disabled
  // (refactorize after every pivot) and with a pure update path (triggers
  // pushed out of reach): every maintained solve along the randomized pivot
  // sequence must agree with a fresh LU of its basis.
  common::Rng rng(static_cast<std::uint64_t>(GetParam()) * 75611 + 7);
  const LpProblem p = random_feasible(rng);
  SimplexOptions fresh;
  fresh.refactor_interval = 1;
  SimplexOptions maintained;
  maintained.refactor_interval = 1 << 20;
  maintained.eta_fill_factor = 1e9;
  const LpSolution a = solve(p, fresh);
  const LpSolution b = solve(p, maintained);
  ASSERT_EQ(a.status, LpStatus::kOptimal);
  ASSERT_EQ(b.status, LpStatus::kOptimal);
  EXPECT_NEAR(a.objective, b.objective, 1e-7);
  EXPECT_TRUE(satisfies(p, b.x));
  // The maintained run really did ride the eta file: it never refactorizes,
  // while the fresh run rebuilds after every appended update.
  EXPECT_EQ(b.refactorizations, 0);
  if (b.eta_updates > 0) {
    EXPECT_GT(a.refactorizations, 0);
  }
}

TEST_P(SimplexSparseEngineProperty, FactorHandoffResolvesWithoutFreshLu) {
  common::Rng rng(static_cast<std::uint64_t>(GetParam()) * 93911 + 31);
  const LpProblem p = random_feasible(rng);
  std::vector<std::uint64_t> keys(p.rows().size());
  for (std::size_t i = 0; i < keys.size(); ++i) {
    keys[i] = static_cast<std::uint64_t>(i);
  }
  SimplexOptions capture;
  capture.capture_basis = true;
  capture.capture_factor = true;
  const LpSolution cold =
      resolve_from_basis(p, Basis{}, WarmFactor{nullptr, keys}, capture);
  ASSERT_EQ(cold.status, LpStatus::kOptimal);
  if (cold.basis.empty() || cold.factor == nullptr) {
    return;  // an artificial stayed basic; nothing to hand off
  }
  // Re-solving the identical problem from the captured basis + factor must
  // adopt the snapshot: zero fresh factorizations, same optimum.
  const LpSolution warm =
      resolve_from_basis(p, cold.basis, WarmFactor{cold.factor, keys}, capture);
  ASSERT_EQ(warm.status, LpStatus::kOptimal);
  EXPECT_TRUE(warm.factor_inherited);
  EXPECT_EQ(warm.factorizations, 0)
      << "an adopted factor must not be rebuilt on the identical problem";
  EXPECT_NEAR(warm.objective, cold.objective, 1e-7);
  EXPECT_TRUE(satisfies(p, warm.x));
}

INSTANTIATE_TEST_SUITE_P(SparseEngine, SimplexSparseEngineProperty,
                         ::testing::Range(0, 40));

TEST(SimplexSparseEngine, BorderedHandoffSurvivesAddedCutRows) {
  // Parent solve captures a factor; the child appends a non-binding row
  // under a fresh key (the OA-cut shape).  The bordered adoption must engage
  // on a healthy fraction of instances, and the optimum must match a cold
  // solve on every one of them whether it engaged or not.
  long inherits = 0;
  for (int trial = 0; trial < 40; ++trial) {
    common::Rng rng(static_cast<std::uint64_t>(trial) * 131071 + 11);
    const LpProblem p = random_feasible(rng);
    std::vector<std::uint64_t> from_keys(p.rows().size());
    for (std::size_t i = 0; i < from_keys.size(); ++i) {
      from_keys[i] = static_cast<std::uint64_t>(i);
    }
    SimplexOptions capture;
    capture.capture_basis = true;
    capture.capture_factor = true;
    const LpSolution cold =
        resolve_from_basis(p, Basis{}, WarmFactor{nullptr, from_keys}, capture);
    ASSERT_EQ(cold.status, LpStatus::kOptimal);
    if (cold.basis.empty() || cold.factor == nullptr) {
      continue;
    }

    LpProblem grown;
    for (std::size_t j = 0; j < p.num_vars(); ++j) {
      grown.add_variable(p.col_lower()[j], p.col_upper()[j], p.cost()[j]);
    }
    std::vector<std::uint64_t> to_keys = from_keys;
    for (const Row& row : p.rows()) {
      Vector coeffs = row.coeffs;
      grown.add_row(std::move(coeffs), row.lower, row.upper);
    }
    Vector cut(p.num_vars());
    double at_opt = 0.0;
    for (std::size_t j = 0; j < p.num_vars(); ++j) {
      cut[j] = rng.uniform(-2.0, 2.0);
      at_opt += cut[j] * cold.x[j];
    }
    grown.add_row(std::move(cut), -kInf, at_opt + rng.uniform(0.1, 1.0));
    to_keys.push_back(1u << 20);

    const Basis mapped = map_basis(cold.basis, from_keys, to_keys);
    const LpSolution warm = resolve_from_basis(
        grown, mapped, WarmFactor{cold.factor, to_keys}, capture);
    const LpSolution reference = solve(grown);
    ASSERT_EQ(reference.status, LpStatus::kOptimal);
    ASSERT_EQ(warm.status, LpStatus::kOptimal);
    EXPECT_NEAR(warm.objective, reference.objective, 1e-6);
    EXPECT_TRUE(satisfies(grown, warm.x));
    inherits += warm.factor_inherited ? 1 : 0;
  }
  EXPECT_GT(inherits, 0)
      << "the bordered parent->child adoption never engaged across 40 trials";
}

// ---------------------------------------------------------------------------
// Stability fallback regressions: refused eta updates must refactorize, and
// an ill-scaled basis must not derail the maintained-factor engine.
// ---------------------------------------------------------------------------

TEST(SimplexSparseStability, RefusedEtaFallsBackToRefactorization) {
  // eta_stability_tol > 1 refuses every product-form update (|w_r| can never
  // exceed max(1, ||w||_inf)), so each pivot must take the refactorization
  // fallback -- and the trajectory must not change.
  for (int trial = 0; trial < 20; ++trial) {
    common::Rng rng(static_cast<std::uint64_t>(trial) * 179426 + 3);
    const LpProblem p = random_feasible(rng);
    SimplexOptions strict;
    strict.eta_stability_tol = 1.5;
    const LpSolution a = solve(p, strict);
    const LpSolution b = solve(p);
    ASSERT_EQ(a.status, LpStatus::kOptimal);
    ASSERT_EQ(b.status, LpStatus::kOptimal);
    EXPECT_EQ(a.eta_updates, 0) << "no eta can survive a tolerance above 1";
    if (b.eta_updates > 0) {
      EXPECT_GT(a.refactorizations, 0)
          << "refused updates must rebuild the factorization";
    }
    EXPECT_NEAR(a.objective, b.objective, 1e-7);
    EXPECT_TRUE(satisfies(p, a.x));
  }
}

TEST(SimplexSparseStability, IllScaledColumnsStayCorrect) {
  // Rescale a feasible instance's columns across twelve orders of magnitude
  // (the substitution x_j = s_j * x'_j preserves the optimal value exactly).
  // Degenerate near-zero pivots in the scaled basis must trip the stability
  // fallback, not corrupt the solve.
  for (int trial = 0; trial < 20; ++trial) {
    common::Rng rng(static_cast<std::uint64_t>(trial) * 64601 + 19);
    const LpProblem p = random_feasible(rng);
    const LpSolution reference = solve(p);
    ASSERT_EQ(reference.status, LpStatus::kOptimal);

    LpProblem scaled;
    std::vector<double> s(p.num_vars());
    for (std::size_t j = 0; j < p.num_vars(); ++j) {
      s[j] = std::pow(10.0, rng.uniform(-6.0, 6.0));
      scaled.add_variable(p.col_lower()[j] / s[j], p.col_upper()[j] / s[j],
                          p.cost()[j] * s[j]);
    }
    for (const Row& row : p.rows()) {
      Vector coeffs(p.num_vars());
      for (std::size_t j = 0; j < p.num_vars(); ++j) {
        coeffs[j] = row.coeffs[j] * s[j];
      }
      scaled.add_row(std::move(coeffs), row.lower, row.upper);
    }

    SimplexOptions sparse_opts;
    sparse_opts.engine = LpEngine::kSparse;
    SimplexOptions dense_opts;
    dense_opts.engine = LpEngine::kDense;
    const LpSolution a = solve(scaled, sparse_opts);
    const LpSolution b = solve(scaled, dense_opts);
    ASSERT_EQ(a.status, LpStatus::kOptimal) << "trial " << trial;
    ASSERT_EQ(b.status, LpStatus::kOptimal) << "trial " << trial;
    const double tol = 1e-5 * (1.0 + std::fabs(reference.objective));
    EXPECT_NEAR(a.objective, reference.objective, tol) << "trial " << trial;
    EXPECT_NEAR(b.objective, reference.objective, tol) << "trial " << trial;
  }
}

}  // namespace
}  // namespace hslb::lp
