// Property-based tests for the simplex: random instances are checked for
// feasibility of the returned point, consistency against known feasible
// points, and (in two dimensions) against brute-force vertex enumeration.
#include <cmath>
#include <optional>
#include <vector>

#include <gtest/gtest.h>

#include "hslb/common/rng.hpp"
#include "hslb/lp/simplex.hpp"

namespace hslb::lp {
namespace {

using linalg::Vector;

bool satisfies(const LpProblem& p, const Vector& x, double tol = 1e-6) {
  for (std::size_t j = 0; j < p.num_vars(); ++j) {
    if (x[j] < p.col_lower()[j] - tol || x[j] > p.col_upper()[j] + tol) {
      return false;
    }
  }
  for (const Row& row : p.rows()) {
    double v = 0.0;
    for (std::size_t j = 0; j < p.num_vars(); ++j) {
      v += row.coeffs[j] * x[j];
    }
    const double scale = 1.0 + std::fabs(v);
    if (v < row.lower - tol * scale || v > row.upper + tol * scale) {
      return false;
    }
  }
  return true;
}

double objective_at(const LpProblem& p, const Vector& x) {
  double v = p.objective_offset();
  for (std::size_t j = 0; j < p.num_vars(); ++j) {
    v += p.cost()[j] * x[j];
  }
  return v;
}

// ---------------------------------------------------------------------------
// Feasible-by-construction instances: solution must be feasible and at least
// as good as the seed point.
// ---------------------------------------------------------------------------

class SimplexFeasibleProperty : public ::testing::TestWithParam<int> {};

TEST_P(SimplexFeasibleProperty, OptimalBeatsSeedPoint) {
  common::Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 13);
  const std::size_t n = 1 + static_cast<std::size_t>(rng.uniform_int(1, 7));
  const std::size_t m = static_cast<std::size_t>(rng.uniform_int(1, 9));

  LpProblem p;
  Vector seed(n);
  for (std::size_t j = 0; j < n; ++j) {
    const double lo = rng.uniform(-5.0, 0.0);
    const double hi = lo + rng.uniform(0.5, 10.0);
    p.add_variable(lo, hi, rng.uniform(-2.0, 2.0));
    seed[j] = rng.uniform(lo, hi);
  }
  for (std::size_t i = 0; i < m; ++i) {
    Vector coeffs(n);
    double at_seed = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      coeffs[j] = rng.uniform(-2.0, 2.0);
      at_seed += coeffs[j] * seed[j];
    }
    // Row passes through the seed with slack on both sides.
    p.add_row(std::move(coeffs), at_seed - rng.uniform(0.0, 3.0),
              at_seed + rng.uniform(0.0, 3.0));
  }

  const auto s = solve(p);
  ASSERT_EQ(s.status, LpStatus::kOptimal)
      << "seed-feasible LP must be solvable";
  EXPECT_TRUE(satisfies(p, s.x)) << "returned point must be feasible";
  EXPECT_LE(s.objective, objective_at(p, seed) + 1e-6)
      << "optimum cannot be worse than a known feasible point";
}

INSTANTIATE_TEST_SUITE_P(RandomFeasible, SimplexFeasibleProperty,
                         ::testing::Range(0, 40));

// ---------------------------------------------------------------------------
// 2-D instances vs brute-force vertex enumeration.
// ---------------------------------------------------------------------------

std::optional<Vector> intersect(const Vector& a1, double b1, const Vector& a2,
                                double b2) {
  const double det = a1[0] * a2[1] - a1[1] * a2[0];
  if (std::fabs(det) < 1e-9) {
    return std::nullopt;
  }
  return Vector{(b1 * a2[1] - b2 * a1[1]) / det,
                (a1[0] * b2 - a2[0] * b1) / det};
}

class SimplexBruteForce2D : public ::testing::TestWithParam<int> {};

TEST_P(SimplexBruteForce2D, MatchesVertexEnumeration) {
  common::Rng rng(static_cast<std::uint64_t>(GetParam()) * 104729 + 7);

  LpProblem p;
  for (int j = 0; j < 2; ++j) {
    p.add_variable(rng.uniform(-3.0, 0.0), rng.uniform(0.5, 4.0),
                   rng.uniform(-2.0, 2.0));
  }
  const int m = static_cast<int>(rng.uniform_int(1, 4));
  for (int i = 0; i < m; ++i) {
    p.add_row({rng.uniform(-2.0, 2.0), rng.uniform(-2.0, 2.0)},
              -lp::kInf, rng.uniform(-1.0, 4.0));
  }

  // Candidate vertices: intersections of all pairs of "lines" (rows at their
  // bound + box edges).
  std::vector<std::pair<Vector, double>> lines;
  for (const Row& row : p.rows()) {
    lines.push_back({row.coeffs, row.upper});
  }
  lines.push_back({{1.0, 0.0}, p.col_lower()[0]});
  lines.push_back({{1.0, 0.0}, p.col_upper()[0]});
  lines.push_back({{0.0, 1.0}, p.col_lower()[1]});
  lines.push_back({{0.0, 1.0}, p.col_upper()[1]});

  double brute = lp::kInf;
  bool any_feasible = false;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    for (std::size_t j = i + 1; j < lines.size(); ++j) {
      const auto v = intersect(lines[i].first, lines[i].second,
                               lines[j].first, lines[j].second);
      if (v && satisfies(p, *v, 1e-7)) {
        any_feasible = true;
        brute = std::min(brute, objective_at(p, *v));
      }
    }
  }

  const auto s = solve(p);
  if (!any_feasible) {
    // Either truly infeasible or the optimum is interior-free; the simplex
    // must agree with infeasibility when no vertex exists.
    if (s.status == LpStatus::kOptimal) {
      EXPECT_TRUE(satisfies(p, s.x));
    }
    return;
  }
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_TRUE(satisfies(p, s.x));
  EXPECT_NEAR(s.objective, brute, 1e-5);
}

INSTANTIATE_TEST_SUITE_P(Random2D, SimplexBruteForce2D,
                         ::testing::Range(0, 60));

// Scaling property: doubling the cost vector doubles the optimal value of a
// problem with zero offset.
class SimplexScalingProperty : public ::testing::TestWithParam<int> {};

TEST_P(SimplexScalingProperty, CostScalingScalesObjective) {
  common::Rng rng(static_cast<std::uint64_t>(GetParam()) * 31 + 5);
  LpProblem p;
  const std::size_t n = 3;
  for (std::size_t j = 0; j < n; ++j) {
    p.add_variable(0.0, rng.uniform(1.0, 5.0), rng.uniform(-1.0, 1.0));
  }
  p.add_row({1.0, 1.0, 1.0}, 0.5, 4.0);

  const auto s1 = solve(p);
  ASSERT_EQ(s1.status, LpStatus::kOptimal);
  LpProblem doubled = p;
  for (std::size_t j = 0; j < n; ++j) {
    doubled.set_cost(j, 2.0 * p.cost()[j]);
  }
  const auto s2 = solve(doubled);
  ASSERT_EQ(s2.status, LpStatus::kOptimal);
  EXPECT_NEAR(s2.objective, 2.0 * s1.objective, 1e-7);
}

INSTANTIATE_TEST_SUITE_P(Scaling, SimplexScalingProperty,
                         ::testing::Range(0, 20));

}  // namespace
}  // namespace hslb::lp
