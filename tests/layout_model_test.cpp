// Tests for the Table I layout MINLP models: constraint structure, solver
// solutions, Tsync behavior, objectives, and allocation extraction.
#include <cmath>

#include <gtest/gtest.h>

#include "hslb/common/error.hpp"
#include "hslb/hslb/layout_model.hpp"

namespace hslb::core {
namespace {

using cesm::ComponentKind;
using cesm::LayoutKind;

/// A clean synthetic spec with known analytic structure.
LayoutModelSpec synthetic_spec(LayoutKind layout, int total_nodes) {
  LayoutModelSpec spec;
  spec.layout = layout;
  spec.total_nodes = total_nodes;
  spec.perf[ComponentKind::kAtm] =
      perf::PerfModel(perf::PerfParams{27000.0, 0.0, 1.0, 45.0});
  spec.perf[ComponentKind::kOcn] =
      perf::PerfModel(perf::PerfParams{7800.0, 0.0, 1.0, 41.0});
  spec.perf[ComponentKind::kIce] =
      perf::PerfModel(perf::PerfParams{7400.0, 0.0, 1.0, 12.0});
  spec.perf[ComponentKind::kLnd] =
      perf::PerfModel(perf::PerfParams{1480.0, 0.0, 1.0, 2.0});
  spec.min_nodes = {{ComponentKind::kAtm, 8},
                    {ComponentKind::kOcn, 2},
                    {ComponentKind::kIce, 4},
                    {ComponentKind::kLnd, 2}};
  return spec;
}

/// Brute-force layout-1 optimum (no Tsync, no allocation sets).
double brute_force_layout1(const LayoutModelSpec& spec) {
  double best = lp::kInf;
  const int N = spec.total_nodes;
  const auto t = [&](ComponentKind k, int n) { return spec.perf.at(k)(n); };
  for (int no = 2; no < N - 8; ++no) {
    const int na = N - no;
    const double to = t(ComponentKind::kOcn, no);
    const double ta = t(ComponentKind::kAtm, na);
    for (int ni = 4; ni <= na - 2; ++ni) {
      const int nl = na - ni;
      const double icelnd = std::max(t(ComponentKind::kIce, ni),
                                     t(ComponentKind::kLnd, nl));
      best = std::min(best, std::max(icelnd + ta, to));
    }
  }
  return best;
}

TEST(LayoutModel, Layout1SolvesToBruteForceOptimum) {
  const LayoutModelSpec spec = synthetic_spec(LayoutKind::kHybrid, 64);
  LayoutModelVars vars;
  const minlp::Model model = build_layout_model(spec, &vars);
  const auto result = minlp::solve(model);
  ASSERT_EQ(result.status, minlp::MinlpStatus::kOptimal);
  EXPECT_NEAR(result.objective, brute_force_layout1(spec), 1e-4);
}

TEST(LayoutModel, SolutionSatisfiesTableIConstraints) {
  LayoutModelSpec spec = synthetic_spec(LayoutKind::kHybrid, 128);
  spec.tsync = 20.0;
  LayoutModelVars vars;
  const minlp::Model model = build_layout_model(spec, &vars);
  const auto result = minlp::solve(model);
  ASSERT_EQ(result.status, minlp::MinlpStatus::kOptimal);

  const Allocation alloc = extract_allocation(spec, vars, result);
  const int ni = alloc.nodes.at(ComponentKind::kIce);
  const int nl = alloc.nodes.at(ComponentKind::kLnd);
  const int na = alloc.nodes.at(ComponentKind::kAtm);
  const int no = alloc.nodes.at(ComponentKind::kOcn);
  EXPECT_LE(ni + nl, na);                     // line 21
  EXPECT_LE(na + no, spec.total_nodes);       // line 20
  const double ti = alloc.predicted_seconds.at(ComponentKind::kIce);
  const double tl = alloc.predicted_seconds.at(ComponentKind::kLnd);
  EXPECT_LE(std::fabs(ti - tl), spec.tsync + 1e-6);  // lines 18-19
  // T = max(max(ti, tl) + ta, to)  (line 13).
  EXPECT_NEAR(alloc.predicted_total,
              std::max(std::max(ti, tl) +
                           alloc.predicted_seconds.at(ComponentKind::kAtm),
                       alloc.predicted_seconds.at(ComponentKind::kOcn)),
              1e-9);
}

TEST(LayoutModel, TsyncTighteningNeverImproves) {
  // The paper notes extra synchronization constraints may reduce
  // performance: T*(tight Tsync) >= T*(loose Tsync).
  double prev = -1.0;
  for (const double tsync : {100.0, 20.0, 5.0, 1.0}) {
    LayoutModelSpec spec = synthetic_spec(LayoutKind::kHybrid, 96);
    spec.tsync = tsync;
    const minlp::Model model = build_layout_model(spec, nullptr);
    const auto result = minlp::solve(model);
    ASSERT_EQ(result.status, minlp::MinlpStatus::kOptimal) << tsync;
    if (prev >= 0.0) {
      EXPECT_GE(result.objective, prev - 1e-7) << "tsync=" << tsync;
    }
    prev = result.objective;
  }
}

TEST(LayoutModel, AllocationSetsRestrictSolution) {
  LayoutModelSpec spec = synthetic_spec(LayoutKind::kHybrid, 128);
  spec.ocn_allowed = {8, 16, 24, 32};
  spec.atm_allowed = {64, 96, 104, 112};
  LayoutModelVars vars;
  const minlp::Model model = build_layout_model(spec, &vars);
  const auto result = minlp::solve(model);
  ASSERT_EQ(result.status, minlp::MinlpStatus::kOptimal);
  const Allocation alloc = extract_allocation(spec, vars, result);
  const int no = alloc.nodes.at(ComponentKind::kOcn);
  const int na = alloc.nodes.at(ComponentKind::kAtm);
  EXPECT_TRUE(no == 8 || no == 16 || no == 24 || no == 32) << no;
  EXPECT_TRUE(na == 64 || na == 96 || na == 104 || na == 112) << na;
}

TEST(LayoutModel, SetRestrictionNeverImprovesOptimum) {
  const LayoutModelSpec free_spec = synthetic_spec(LayoutKind::kHybrid, 128);
  const auto free_result =
      minlp::solve(build_layout_model(free_spec, nullptr));
  LayoutModelSpec restricted = free_spec;
  restricted.ocn_allowed = {8, 24};
  const auto restricted_result =
      minlp::solve(build_layout_model(restricted, nullptr));
  ASSERT_EQ(free_result.status, minlp::MinlpStatus::kOptimal);
  ASSERT_EQ(restricted_result.status, minlp::MinlpStatus::kOptimal);
  EXPECT_GE(restricted_result.objective, free_result.objective - 1e-7);
}

TEST(LayoutModel, LayoutOrderingMatchesPaperFigure4) {
  // Layout 3 (fully sequential) must be the worst; layouts 1 and 2 similar.
  std::map<LayoutKind, double> optima;
  for (const LayoutKind kind :
       {LayoutKind::kHybrid, LayoutKind::kSequentialGroup,
        LayoutKind::kFullySequential}) {
    const LayoutModelSpec spec = synthetic_spec(kind, 128);
    const auto result = minlp::solve(build_layout_model(spec, nullptr));
    ASSERT_EQ(result.status, minlp::MinlpStatus::kOptimal);
    optima[kind] = result.objective;
  }
  EXPECT_GT(optima[LayoutKind::kFullySequential],
            optima[LayoutKind::kHybrid]);
  EXPECT_GT(optima[LayoutKind::kFullySequential],
            optima[LayoutKind::kSequentialGroup]);
  EXPECT_NEAR(optima[LayoutKind::kHybrid],
              optima[LayoutKind::kSequentialGroup],
              0.35 * optima[LayoutKind::kHybrid]);
}

TEST(LayoutModel, Layout3UsesWholeMachinePerComponent) {
  const LayoutModelSpec spec =
      synthetic_spec(LayoutKind::kFullySequential, 64);
  LayoutModelVars vars;
  const auto result = minlp::solve(build_layout_model(spec, &vars));
  ASSERT_EQ(result.status, minlp::MinlpStatus::kOptimal);
  const Allocation alloc = extract_allocation(spec, vars, result);
  // With everything sequential, each component takes all 64 nodes.
  for (const ComponentKind kind : cesm::kModeledComponents) {
    EXPECT_EQ(alloc.nodes.at(kind), 64) << cesm::to_string(kind);
  }
}

TEST(LayoutModel, ObjectiveVariantsOrdering) {
  // min-max gives the best total time; min-sum the worst (eq. 3 is "out of
  // consideration" per the paper).
  std::map<Objective, double> totals;
  for (const Objective obj :
       {Objective::kMinMax, Objective::kMaxMin, Objective::kMinSum}) {
    LayoutModelSpec spec = synthetic_spec(LayoutKind::kHybrid, 96);
    spec.objective = obj;
    LayoutModelVars vars;
    const auto result = minlp::solve(build_layout_model(spec, &vars));
    ASSERT_EQ(result.status, minlp::MinlpStatus::kOptimal)
        << to_string(obj);
    const Allocation alloc = extract_allocation(spec, vars, result);
    totals[obj] = alloc.predicted_total;
  }
  EXPECT_LE(totals[Objective::kMinMax], totals[Objective::kMaxMin] + 1e-6);
  EXPECT_LE(totals[Objective::kMinMax], totals[Objective::kMinSum] + 1e-6);
}

TEST(LayoutModel, ExtractAllocationConsistent) {
  const LayoutModelSpec spec = synthetic_spec(LayoutKind::kHybrid, 64);
  LayoutModelVars vars;
  const auto result = minlp::solve(build_layout_model(spec, &vars));
  ASSERT_EQ(result.status, minlp::MinlpStatus::kOptimal);
  const Allocation alloc = extract_allocation(spec, vars, result);
  // Predicted total equals the solver objective (min-max).
  EXPECT_NEAR(alloc.predicted_total, result.objective, 1e-6);
  // Times are the perf models evaluated at the node counts.
  for (const ComponentKind kind : cesm::kModeledComponents) {
    EXPECT_NEAR(alloc.predicted_seconds.at(kind),
                spec.perf.at(kind)(alloc.nodes.at(kind)), 1e-9);
  }
  // as_layout round-trips the node counts.
  const cesm::Layout layout = alloc.as_layout(spec.layout);
  EXPECT_EQ(layout.at(ComponentKind::kAtm),
            alloc.nodes.at(ComponentKind::kAtm));
}

TEST(LayoutModel, RejectsIncompleteSpec) {
  LayoutModelSpec spec;
  spec.total_nodes = 64;
  EXPECT_THROW((void)build_layout_model(spec, nullptr), InvalidArgument);
}

TEST(LayoutModel, InfeasibleWhenFloorsExceedMachine) {
  LayoutModelSpec spec = synthetic_spec(LayoutKind::kHybrid, 16);
  spec.min_nodes[ComponentKind::kAtm] = 14;
  spec.min_nodes[ComponentKind::kOcn] = 14;
  const auto result = minlp::solve(build_layout_model(spec, nullptr));
  EXPECT_EQ(result.status, minlp::MinlpStatus::kInfeasible);
}

}  // namespace
}  // namespace hslb::core
