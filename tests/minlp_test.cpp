// Tests for the MINLP layer: model construction, the LP/NLP-based
// branch-and-bound, SOS1 handling, and the NLP-BB alternative.
#include <cmath>

#include <gtest/gtest.h>

#include "hslb/common/error.hpp"
#include "hslb/minlp/branch_and_bound.hpp"
#include "hslb/minlp/nlp_bb.hpp"
#include "hslb/minlp/relaxation.hpp"

namespace hslb::minlp {
namespace {

/// Convex performance-like link: 100/n + 0.5 n (minimum near n = 14.14).
UnivariateFn convex_link() {
  auto fn = make_univariate(
      [](double n) { return 100.0 / n + 0.5 * n; },
      [](double n) { return -100.0 / (n * n) + 0.5; }, Curvature::kConvex);
  fn.as_expr = [](const expr::Expr& n) { return 100.0 / n + 0.5 * n; };
  return fn;
}

/// Minimal "min T s.t. T >= fn(n)" model over integer n in [lo, hi].
struct TinyModel {
  Model model;
  std::size_t T = 0;
  std::size_t n = 0;
  std::size_t t = 0;
};

TinyModel tiny_model(double lo, double hi) {
  TinyModel tm;
  tm.T = tm.model.add_variable("T", VarType::kContinuous, 0.0, 1e9);
  tm.n = tm.model.add_variable("n", VarType::kInteger, lo, hi);
  tm.t = tm.model.add_variable("t", VarType::kContinuous, 0.0, 1e9);
  tm.model.add_link(tm.t, tm.n, convex_link(), "link");
  tm.model.add_linear({{tm.T, 1.0}, {tm.t, -1.0}}, 0.0, lp::kInf, "T>=t");
  tm.model.minimize(tm.model.var(tm.T));
  return tm;
}

TEST(Model, VariablesAndObjective) {
  Model m;
  const auto x = m.add_variable("x", VarType::kContinuous, 0.0, 10.0);
  const auto y = m.add_variable("y", VarType::kInteger, 0.0, 5.0);
  m.minimize(2.0 * m.var(x) - m.var(y) + 3.0);
  EXPECT_EQ(m.num_vars(), 2u);
  EXPECT_DOUBLE_EQ(m.objective_coeffs()[x], 2.0);
  EXPECT_DOUBLE_EQ(m.objective_coeffs()[y], -1.0);
  EXPECT_DOUBLE_EQ(m.objective_offset(), 3.0);
  const linalg::Vector point{1.0, 2.0};
  EXPECT_DOUBLE_EQ(m.objective_value(point), 3.0);
}

TEST(Model, NonlinearObjectiveGetsEpigraph) {
  Model m;
  const auto x = m.add_variable("x", VarType::kContinuous, -5.0, 5.0);
  m.minimize(m.var(x) * m.var(x));
  // One extra variable (eta) and one nonlinear constraint appear.
  EXPECT_EQ(m.num_vars(), 2u);
  EXPECT_EQ(m.nonlinear_constraints().size(), 1u);
  (void)x;
}

TEST(Model, CheckFeasibleReportsViolations) {
  Model m;
  const auto x = m.add_variable("x", VarType::kInteger, 0.0, 10.0);
  m.add_linear({{x, 1.0}}, 2.0, 4.0, "range");
  linalg::Vector bad_integral{2.5};
  EXPECT_TRUE(m.check_feasible(bad_integral).has_value());
  linalg::Vector bad_row{9.0};
  EXPECT_TRUE(m.check_feasible(bad_row).has_value());
  linalg::Vector good{3.0};
  EXPECT_FALSE(m.check_feasible(good).has_value());
}

TEST(Model, RestrictToSetAddsMachinery) {
  Model m;
  const auto n = m.add_variable("n", VarType::kInteger, 2.0, 64.0);
  m.restrict_to_set(n, {2, 4, 8, 16, 32, 64}, /*use_sos=*/true, "set");
  EXPECT_EQ(m.num_vars(), 7u);          // n + 6 binaries
  EXPECT_EQ(m.linear_constraints().size(), 2u);  // convexity + value rows
  EXPECT_EQ(m.sos1_sets().size(), 1u);
}

TEST(DetectCurvature, ClassifiesCorrectly) {
  const auto convex = make_univariate([](double x) { return x * x; },
                                      [](double x) { return 2.0 * x; });
  EXPECT_EQ(detect_curvature(convex, 0.1, 10.0), Curvature::kConvex);
  const auto concave = make_univariate([](double x) { return std::sqrt(x); },
                                       [](double x) {
                                         return 0.5 / std::sqrt(x);
                                       });
  EXPECT_EQ(detect_curvature(concave, 0.1, 10.0), Curvature::kConcave);
  const auto linear = make_univariate([](double x) { return 2.0 * x + 1.0; },
                                      [](double) { return 2.0; });
  EXPECT_EQ(detect_curvature(linear, 0.0, 1.0), Curvature::kConvex);
  const auto mixed = make_univariate([](double x) { return std::sin(x); },
                                     [](double x) { return std::cos(x); });
  EXPECT_THROW((void)detect_curvature(mixed, 0.0, 6.0), InvalidArgument);
}

TEST(BranchAndBound, UnivariateMinimum) {
  TinyModel tm = tiny_model(1, 100);
  const auto r = solve(tm.model);
  ASSERT_EQ(r.status, MinlpStatus::kOptimal);
  // True integer optimum: f(14) = 100/14 + 7 = 14.142857...
  EXPECT_NEAR(r.x[tm.n], 14.0, 1e-6);
  EXPECT_NEAR(r.objective, 100.0 / 14.0 + 7.0, 1e-6);
}

TEST(BranchAndBound, ExpiredWallBudgetReturnsTimeLimit) {
  TinyModel tm = tiny_model(1, 100);
  SolverOptions options;
  options.max_wall_seconds = 1e-12;  // expires before the first node pops
  const auto r = solve(tm.model, options);
  EXPECT_EQ(r.status, MinlpStatus::kTimeLimit);
  EXPECT_TRUE(r.x.empty());  // no incumbent was found in time
}

TEST(BranchAndBound, GenerousWallBudgetStillSolvesToOptimality) {
  TinyModel tm = tiny_model(1, 100);
  SolverOptions options;
  options.max_wall_seconds = 3600.0;
  const auto r = solve(tm.model, options);
  ASSERT_EQ(r.status, MinlpStatus::kOptimal);
  EXPECT_NEAR(r.x[tm.n], 14.0, 1e-6);
}

TEST(BranchAndBound, RespectsTightBounds) {
  TinyModel tm = tiny_model(20, 100);  // unconstrained optimum excluded
  const auto r = solve(tm.model);
  ASSERT_EQ(r.status, MinlpStatus::kOptimal);
  EXPECT_NEAR(r.x[tm.n], 20.0, 1e-6);
}

TEST(BranchAndBound, SosSetSelectsBestMember) {
  TinyModel tm = tiny_model(2, 64);
  tm.model.restrict_to_set(tm.n, {2, 4, 8, 16, 32, 64}, true, "nset");
  const auto r = solve(tm.model);
  ASSERT_EQ(r.status, MinlpStatus::kOptimal);
  // f(8)=16.5, f(16)=14.25, f(32)=19.125 -> 16.
  EXPECT_NEAR(r.x[tm.n], 16.0, 1e-6);
  EXPECT_NEAR(r.objective, 14.25, 1e-6);
}

TEST(BranchAndBound, BinaryBranchingFindsSameOptimum) {
  TinyModel tm = tiny_model(2, 64);
  tm.model.restrict_to_set(tm.n, {2, 4, 8, 16, 32, 64}, false, "nset");
  SolverOptions opts;
  opts.use_sos_branching = false;
  const auto r = solve(tm.model, opts);
  ASSERT_EQ(r.status, MinlpStatus::kOptimal);
  EXPECT_NEAR(r.objective, 14.25, 1e-6);
}

TEST(BranchAndBound, InfeasibleModel) {
  Model m;
  const auto x = m.add_variable("x", VarType::kInteger, 0.0, 10.0);
  m.add_linear({{x, 1.0}}, 2.2, 2.8, "no integer in range");
  m.minimize(m.var(x));
  EXPECT_EQ(solve(m).status, MinlpStatus::kInfeasible);
}

TEST(BranchAndBound, PureMilp) {
  // Knapsack: max 10a + 6b + 4c, 5a + 4b + 3c <= 10, binaries.
  Model m;
  const auto a = m.add_variable("a", VarType::kBinary, 0.0, 1.0);
  const auto b = m.add_variable("b", VarType::kBinary, 0.0, 1.0);
  const auto c = m.add_variable("c", VarType::kBinary, 0.0, 1.0);
  m.add_linear({{a, 5.0}, {b, 4.0}, {c, 3.0}}, -lp::kInf, 10.0, "cap");
  m.minimize(-10.0 * m.var(a) - 6.0 * m.var(b) - 4.0 * m.var(c));
  const auto r = solve(m);
  ASSERT_EQ(r.status, MinlpStatus::kOptimal);
  EXPECT_NEAR(r.objective, -16.0, 1e-7);  // a + b
  EXPECT_NEAR(r.x[a], 1.0, 1e-7);
  EXPECT_NEAR(r.x[b], 1.0, 1e-7);
  EXPECT_NEAR(r.x[c], 0.0, 1e-7);
}

TEST(BranchAndBound, ConvexNonlinearConstraint) {
  // min -x - y  s.t.  x^2 + y^2 <= 4, x integer, y continuous.
  Model m;
  const auto x = m.add_variable("x", VarType::kInteger, 0.0, 3.0);
  const auto y = m.add_variable("y", VarType::kContinuous, 0.0, 3.0);
  m.add_nonlinear(m.var(x) * m.var(x) + m.var(y) * m.var(y), 4.0, "disk");
  m.minimize(-m.var(x) - m.var(y));
  const auto r = solve(m);
  ASSERT_EQ(r.status, MinlpStatus::kOptimal);
  // Candidates: x=0,y=2 (-2); x=1,y=sqrt3 (-2.732); x=2,y=0 (-2).
  EXPECT_NEAR(r.x[x], 1.0, 1e-6);
  EXPECT_NEAR(r.objective, -(1.0 + std::sqrt(3.0)), 1e-4);
}

TEST(BranchAndBound, ConcaveLinkHandledBySecants) {
  // t == sqrt(n) (concave), min T with T >= 20 - t: pushes t UP, so the
  // concave upper side binds and the tangent/chord roles flip.
  Model m;
  const auto T = m.add_variable("T", VarType::kContinuous, 0.0, 1e9);
  const auto n = m.add_variable("n", VarType::kInteger, 1.0, 100.0);
  const auto t = m.add_variable("t", VarType::kContinuous, 0.0, 1e9);
  auto fn = make_univariate(
      [](double v) { return std::sqrt(v); },
      [](double v) { return 0.5 / std::sqrt(v); }, Curvature::kConcave);
  m.add_link(t, n, fn, "sqrt");
  m.add_linear({{T, 1.0}, {t, 1.0}}, 20.0, lp::kInf, "T+t>=20");
  m.minimize(m.var(T));
  const auto r = solve(m);
  ASSERT_EQ(r.status, MinlpStatus::kOptimal);
  // Optimum: n = 100, t = 10, T = 10.
  EXPECT_NEAR(r.x[n], 100.0, 1e-6);
  EXPECT_NEAR(r.objective, 10.0, 1e-6);
}

TEST(BranchAndBound, TwoLinksCoupledByBudget) {
  // min T, T >= f(n1), T >= f(n2), n1 + n2 <= 40: balanced split optimal.
  Model m;
  const auto T = m.add_variable("T", VarType::kContinuous, 0.0, 1e9);
  const auto n1 = m.add_variable("n1", VarType::kInteger, 1.0, 100.0);
  const auto n2 = m.add_variable("n2", VarType::kInteger, 1.0, 100.0);
  const auto t1 = m.add_variable("t1", VarType::kContinuous, 0.0, 1e9);
  const auto t2 = m.add_variable("t2", VarType::kContinuous, 0.0, 1e9);
  m.add_link(t1, n1, convex_link(), "l1");
  m.add_link(t2, n2, convex_link(), "l2");
  m.add_linear({{T, 1.0}, {t1, -1.0}}, 0.0, lp::kInf);
  m.add_linear({{T, 1.0}, {t2, -1.0}}, 0.0, lp::kInf);
  m.add_linear({{n1, 1.0}, {n2, 1.0}}, -lp::kInf, 40.0, "budget");
  m.minimize(m.var(T));
  const auto r = solve(m);
  ASSERT_EQ(r.status, MinlpStatus::kOptimal);
  // Symmetric problem: optimum n1 = n2 = 14 (interior minimum fits budget).
  EXPECT_NEAR(r.objective, 100.0 / 14.0 + 7.0, 1e-6);
}

TEST(BranchAndBound, DepthFirstMatchesBestBound) {
  TinyModel tm1 = tiny_model(1, 100);
  SolverOptions dfs;
  dfs.node_selection = NodeSelection::kDepthFirst;
  const auto r1 = solve(tm1.model, dfs);
  TinyModel tm2 = tiny_model(1, 100);
  const auto r2 = solve(tm2.model);
  ASSERT_EQ(r1.status, MinlpStatus::kOptimal);
  ASSERT_EQ(r2.status, MinlpStatus::kOptimal);
  EXPECT_NEAR(r1.objective, r2.objective, 1e-9);
}

TEST(BranchAndBound, StatsArePopulated) {
  TinyModel tm = tiny_model(1, 100);
  const auto r = solve(tm.model);
  EXPECT_GT(r.stats.nodes_explored, 0);
  EXPECT_GT(r.stats.lp_solves, 0);
  EXPECT_GT(r.stats.cuts_added, 0);
  EXPECT_GE(r.stats.wall_seconds, 0.0);
  EXPECT_LE(r.stats.best_bound, r.objective + 1e-6);
}

TEST(BranchAndBound, LoggerReceivesProgress) {
  TinyModel tm = tiny_model(1, 100);
  std::vector<std::string> lines;
  SolverOptions opts;
  opts.logger = [&lines](const std::string& line) { lines.push_back(line); };
  opts.log_every_nodes = 1;
  const auto r = solve(tm.model, opts);
  ASSERT_EQ(r.status, MinlpStatus::kOptimal);
  ASSERT_FALSE(lines.empty());
  bool saw_presolve = false;
  bool saw_incumbent = false;
  bool saw_done = false;
  for (const std::string& line : lines) {
    saw_presolve |= line.rfind("presolve:", 0) == 0;
    saw_incumbent |= line.rfind("incumbent", 0) == 0;
    saw_done |= line.rfind("done:", 0) == 0;
  }
  EXPECT_TRUE(saw_presolve);
  EXPECT_TRUE(saw_incumbent);
  EXPECT_TRUE(saw_done);
}

TEST(BranchAndBound, EventSinkEmitsStructuredEvents) {
  TinyModel tm = tiny_model(1, 100);
  std::vector<SolverEvent> events;
  SolverOptions opts;
  opts.event_sink = [&events](const SolverEvent& e) { events.push_back(e); };
  opts.log_every_nodes = 1;
  const auto r = solve(tm.model, opts);
  ASSERT_EQ(r.status, MinlpStatus::kOptimal);
  ASSERT_FALSE(events.empty());

  // The last event is the final summary and matches the returned stats.
  const SolverEvent& done = events.back();
  EXPECT_EQ(done.kind, SolverEvent::Kind::kDone);
  EXPECT_EQ(done.node, r.stats.nodes_explored);
  EXPECT_EQ(done.lp_solves, r.stats.lp_solves);
  EXPECT_TRUE(done.have_incumbent);
  EXPECT_NEAR(done.incumbent, r.objective, 1e-9);

  // Every incumbent event improves on the previous one.
  double last_incumbent = lp::kInf;
  for (const SolverEvent& e : events) {
    if (e.kind == SolverEvent::Kind::kIncumbent) {
      EXPECT_LT(e.incumbent, last_incumbent);
      last_incumbent = e.incumbent;
    }
  }
}

// Regression: the first progress heartbeat fires at node 1 (not node 0, and
// not only once log_every_nodes nodes have passed), so short solves still
// produce one progress line.
TEST(BranchAndBound, FirstProgressEventFiresAtNodeOne) {
  TinyModel tm = tiny_model(1, 100);
  std::vector<SolverEvent> events;
  SolverOptions opts;
  opts.event_sink = [&events](const SolverEvent& e) { events.push_back(e); };
  opts.log_every_nodes = 1000000;  // cadence far beyond this solve's tree
  const auto r = solve(tm.model, opts);
  ASSERT_EQ(r.status, MinlpStatus::kOptimal);
  ASSERT_LT(r.stats.nodes_explored, opts.log_every_nodes);

  std::vector<long> progress_nodes;
  for (const SolverEvent& e : events) {
    if (e.kind == SolverEvent::Kind::kProgress) {
      progress_nodes.push_back(e.node);
    }
  }
  ASSERT_EQ(progress_nodes.size(), 1u);
  EXPECT_EQ(progress_nodes[0], 1);
}

TEST(BranchAndBound, ProgressCadenceRespectsLogEveryNodes) {
  TinyModel tm = tiny_model(1, 100);
  std::vector<SolverEvent> events;
  SolverOptions opts;
  opts.event_sink = [&events](const SolverEvent& e) { events.push_back(e); };
  opts.log_every_nodes = 2;
  (void)solve(tm.model, opts);
  for (const SolverEvent& e : events) {
    if (e.kind == SolverEvent::Kind::kProgress) {
      EXPECT_TRUE(e.node == 1 || e.node % 2 == 0) << "node " << e.node;
      EXPECT_GE(e.node, 1);
    }
  }
}

TEST(BranchAndBound, LegacyLoggerMatchesEventToLine) {
  TinyModel tm1 = tiny_model(1, 100);
  std::vector<std::string> lines;
  std::vector<std::string> rendered;
  SolverOptions opts;
  opts.logger = [&lines](const std::string& line) { lines.push_back(line); };
  opts.event_sink = [&rendered](const SolverEvent& e) {
    rendered.push_back(e.to_line());
  };
  opts.log_every_nodes = 1;
  (void)solve(tm1.model, opts);
  EXPECT_EQ(lines, rendered);
}

TEST(BranchAndBound, PruneStatsAndLpTimeArePopulated) {
  TinyModel tm = tiny_model(1, 100);
  const auto r = solve(tm.model);
  EXPECT_GE(r.stats.lp_seconds, 0.0);
  EXPECT_LE(r.stats.lp_seconds, r.stats.wall_seconds + 1e-6);
  EXPECT_GE(r.stats.incumbent_updates, 1);
  EXPECT_GE(r.stats.pruned_by_bound, 0);
  EXPECT_GE(r.stats.pruned_infeasible, 0);
}

TEST(NlpBb, MatchesLpNlpBb) {
  TinyModel tm1 = tiny_model(1, 100);
  const auto r_oa = solve(tm1.model);
  TinyModel tm2 = tiny_model(1, 100);
  const auto r_nlp = solve_nlp_bb(tm2.model);
  ASSERT_EQ(r_nlp.status, MinlpStatus::kOptimal);
  EXPECT_NEAR(r_nlp.objective, r_oa.objective, 1e-5);
}

TEST(NlpBb, RejectsSosModels) {
  TinyModel tm = tiny_model(2, 64);
  tm.model.restrict_to_set(tm.n, {2, 4, 8}, true, "s");
  EXPECT_THROW((void)solve_nlp_bb(tm.model), InvalidArgument);
}

TEST(Relaxation, ChordPinsClosedInterval) {
  TinyModel tm = tiny_model(5, 5);  // n fixed by bounds
  const auto curvature = resolve_curvatures(tm.model);
  CutPool pool;
  linalg::Vector lo{0.0, 5.0, 0.0};
  linalg::Vector hi{1e9, 5.0, 1e9};
  const auto master = build_master_lp(tm.model, pool, curvature, lo, hi);
  // t is pinned to f(5) = 22.5 exactly.
  EXPECT_NEAR(master.col_lower()[tm.t], 22.5, 1e-9);
  EXPECT_NEAR(master.col_upper()[tm.t], 22.5, 1e-9);
}

TEST(Relaxation, CompletionRoundsAndSolves) {
  TinyModel tm = tiny_model(1, 100);
  const auto curvature = resolve_curvatures(tm.model);
  CutPool pool;
  linalg::Vector lo{0.0, 1.0, 0.0};
  linalg::Vector hi{1e9, 100.0, 1e9};
  linalg::Vector x{0.0, 14.2, 0.0};  // fractional n
  const auto comp = complete_integer_point(tm.model, pool, curvature, x, lo,
                                           hi);
  ASSERT_TRUE(comp.has_value());
  EXPECT_NEAR(comp->x[tm.n], 14.0, 1e-9);
  EXPECT_NEAR(comp->objective, 100.0 / 14.0 + 7.0, 1e-7);
}

}  // namespace
}  // namespace hslb::minlp
