// Tests for the resilience layer: MAD outlier rejection, the fallback
// interpolant, the heuristic solver fallback, and the end-to-end property
// that a fault-injected pipeline lands within a few percent of the
// fault-free result without ever aborting.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "hslb/common/error.hpp"
#include "hslb/hslb/pipeline.hpp"
#include "hslb/hslb/resilience.hpp"

namespace hslb::core {
namespace {

using cesm::ComponentKind;

cesm::Series synthetic_series(double a, double d, std::size_t count) {
  cesm::Series series;
  for (std::size_t i = 0; i < count; ++i) {
    const double n = 32.0 * static_cast<double>(1 << i);
    series.nodes.push_back(n);
    series.seconds.push_back(a / n + d);
  }
  return series;
}

TEST(RejectOutliers, DropsASpikedSampleAndKeepsTheRest) {
  cesm::Series series = synthetic_series(4000.0, 30.0, 7);
  series.seconds[3] *= 10.0;  // an injected noise spike
  const FilteredSeries filtered =
      reject_outliers(series, 3.5, perf::FitOptions{});
  EXPECT_EQ(filtered.rejected, 1);
  ASSERT_EQ(filtered.series.nodes.size(), 6u);
  for (const double n : filtered.series.nodes) {
    EXPECT_NE(n, series.nodes[3]);
  }
}

TEST(RejectOutliers, KeepsACleanSeriesIntact) {
  const cesm::Series series = synthetic_series(4000.0, 30.0, 7);
  const FilteredSeries filtered =
      reject_outliers(series, 3.5, perf::FitOptions{});
  EXPECT_EQ(filtered.rejected, 0);
  EXPECT_EQ(filtered.series.nodes.size(), series.nodes.size());
}

TEST(RejectOutliers, PassesTinySeriesThrough) {
  cesm::Series series = synthetic_series(4000.0, 30.0, 3);
  series.seconds[0] *= 50.0;  // would be an outlier, but no quorum
  const FilteredSeries filtered =
      reject_outliers(series, 3.5, perf::FitOptions{});
  EXPECT_EQ(filtered.rejected, 0);
  EXPECT_EQ(filtered.series.nodes.size(), 3u);
}

TEST(FallbackFit, RecoversTheMonotoneCurveFromTwoSamples) {
  cesm::Series series;
  series.nodes = {64.0, 512.0};
  series.seconds = {4000.0 / 64.0 + 25.0, 4000.0 / 512.0 + 25.0};
  const perf::FitResult fit = fallback_fit(series);
  EXPECT_NEAR(fit.model(64.0), series.seconds[0], 1e-6);
  EXPECT_NEAR(fit.model(512.0), series.seconds[1], 1e-6);
  // Monotone non-increasing by construction.
  for (double n = 32.0; n < 2048.0; n *= 2.0) {
    EXPECT_GE(fit.model(n) + 1e-9, fit.model(2.0 * n));
  }
}

TEST(FallbackFit, RequiresAtLeastOneSample) {
  EXPECT_THROW((void)fallback_fit(cesm::Series{}), InvalidArgument);
}

LayoutModelSpec heuristic_spec(cesm::LayoutKind layout) {
  LayoutModelSpec spec;
  spec.layout = layout;
  spec.total_nodes = 128;
  spec.perf[ComponentKind::kAtm] =
      perf::PerfModel({60000.0, 0.0, 1.0, 40.0});
  spec.perf[ComponentKind::kOcn] =
      perf::PerfModel({20000.0, 0.0, 1.0, 80.0});
  spec.perf[ComponentKind::kIce] =
      perf::PerfModel({9000.0, 0.0, 1.0, 15.0});
  spec.perf[ComponentKind::kLnd] =
      perf::PerfModel({3000.0, 0.0, 1.0, 5.0});
  spec.ocn_allowed = {8, 16, 24, 40};
  return spec;
}

TEST(HeuristicAllocation, HybridRespectsTheStructure) {
  const LayoutModelSpec spec = heuristic_spec(cesm::LayoutKind::kHybrid);
  const Allocation allocation = heuristic_allocation(spec);
  const int ocn = allocation.nodes.at(ComponentKind::kOcn);
  const int atm = allocation.nodes.at(ComponentKind::kAtm);
  const int ice = allocation.nodes.at(ComponentKind::kIce);
  const int lnd = allocation.nodes.at(ComponentKind::kLnd);
  EXPECT_NE(std::find(spec.ocn_allowed.begin(), spec.ocn_allowed.end(), ocn),
            spec.ocn_allowed.end());
  EXPECT_LE(atm + ocn, spec.total_nodes);
  EXPECT_EQ(ice + lnd, atm);
  EXPECT_GT(allocation.predicted_total, 0.0);
}

TEST(HeuristicAllocation, CoversAllLayouts) {
  for (const cesm::LayoutKind layout :
       {cesm::LayoutKind::kHybrid, cesm::LayoutKind::kSequentialGroup,
        cesm::LayoutKind::kFullySequential}) {
    const Allocation allocation =
        heuristic_allocation(heuristic_spec(layout));
    EXPECT_GT(allocation.predicted_total, 0.0) << to_string(layout);
    for (const ComponentKind kind : cesm::kModeledComponents) {
      EXPECT_GE(allocation.nodes.at(kind), 1) << to_string(layout);
      EXPECT_LE(allocation.nodes.at(kind), 128) << to_string(layout);
    }
  }
}

PipelineConfig small_config() {
  PipelineConfig config;
  config.case_config = cesm::one_degree_case();
  config.total_nodes = 128;
  config.gather_totals = {128, 256, 512, 1024, 2048};
  return config;
}

TEST(ResilientPipeline, DisabledFaultsLeaveTheResultClean) {
  const HslbResult result = run_hslb(small_config());
  EXPECT_FALSE(result.degraded);
  EXPECT_FALSE(result.resilience.campaign.any_faults());
  EXPECT_TRUE(result.resilience.components.empty());
}

TEST(ResilientPipeline, TwentyPercentFaultsStayWithinFivePercent) {
  const HslbResult clean = run_hslb(small_config());

  PipelineConfig faulty = small_config();
  faulty.faults = cesm::FaultSpec::uniform(0.2, 2026);
  const HslbResult result = run_hslb(faulty);  // must not throw

  EXPECT_LE(std::fabs(result.predicted_total - clean.predicted_total),
            0.05 * clean.predicted_total);
  EXPECT_LE(std::fabs(result.actual_total - clean.actual_total),
            0.05 * clean.actual_total);
  EXPECT_FALSE(result.resilience.components.empty());
}

TEST(ResilientPipeline, SameSeedSameFaultsSameAnswer) {
  PipelineConfig config = small_config();
  config.faults = cesm::FaultSpec::uniform(0.25, 555);
  const HslbResult first = run_hslb(config);
  const HslbResult second = run_hslb(config);
  EXPECT_EQ(first.predicted_total, second.predicted_total);
  EXPECT_EQ(first.actual_total, second.actual_total);
  for (const ComponentKind kind : cesm::kModeledComponents) {
    EXPECT_EQ(first.allocation.nodes.at(kind),
              second.allocation.nodes.at(kind));
  }
  EXPECT_EQ(first.resilience.campaign.retries,
            second.resilience.campaign.retries);
}

TEST(ResilientPipeline, RobustFromSamplesShrugsOffInjectedSpikes) {
  PipelineConfig config = small_config();
  const HslbResult clean = run_hslb(config);

  std::vector<cesm::BenchmarkSample> samples = clean.samples;
  int spiked = 0;
  for (std::size_t i = 0; i < samples.size(); i += 7) {
    samples[i].seconds *= 9.0;  // corrupt every 7th sample
    ++spiked;
  }
  config.resilience.enabled = true;
  const HslbResult result = run_hslb_from_samples(config, samples);
  int rejected = 0;
  for (const auto& kv : result.resilience.components) {
    rejected += kv.second.samples_rejected;
  }
  EXPECT_GT(rejected, 0);
  // MAD rejection may shed a borderline clean sample alongside the spikes;
  // what matters is that the prediction is unharmed.
  EXPECT_LE(rejected, spiked + 2);
  EXPECT_LE(std::fabs(result.predicted_total - clean.predicted_total),
            0.05 * clean.predicted_total);
}

TEST(ResilientPipeline, ExhaustedSolverBudgetFallsBackHeuristically) {
  PipelineConfig config = small_config();
  config.resilience.enabled = true;
  config.solver.max_wall_seconds = 1e-12;  // expires before the first node
  const HslbResult result = run_hslb(config);
  EXPECT_TRUE(result.resilience.solver_fallback);
  EXPECT_TRUE(result.degraded);
  EXPECT_GT(result.predicted_total, 0.0);
  for (const ComponentKind kind : cesm::kModeledComponents) {
    EXPECT_GE(result.allocation.nodes.at(kind), 1);
  }
}

TEST(ResilientPipeline, ExhaustedBudgetWithoutResilienceStillThrows) {
  PipelineConfig config = small_config();
  config.solver.max_wall_seconds = 1e-12;
  EXPECT_THROW((void)run_hslb(config), InvalidArgument);
}

TEST(ResilientPipeline, TooFewSamplesDegradeInsteadOfAborting) {
  PipelineConfig config = small_config();
  const HslbResult clean = run_hslb(config);

  // Starve the ocean curve: keep only two of its samples.  Without the
  // resilience layer this is a hard error; with it the component falls back
  // to the monotone interpolant and the result is flagged degraded.
  std::vector<cesm::BenchmarkSample> samples;
  int ocean_kept = 0;
  for (const cesm::BenchmarkSample& sample : clean.samples) {
    if (sample.kind == ComponentKind::kOcn && ++ocean_kept > 2) {
      continue;
    }
    samples.push_back(sample);
  }
  EXPECT_THROW((void)run_hslb_from_samples(small_config(), samples),
               InvalidArgument);

  config.resilience.enabled = true;
  const HslbResult result = run_hslb_from_samples(config, samples);
  EXPECT_TRUE(result.degraded);
  EXPECT_TRUE(
      result.resilience.components.at(ComponentKind::kOcn).degraded_fit);
  EXPECT_GT(result.predicted_total, 0.0);
}

}  // namespace
}  // namespace hslb::core
