// The tier-1 staleness gate for the reproducible-results pipeline: the
// committed EXPERIMENTS.md must be byte-identical to a render from the
// committed goldens (tests/golden/*.json) and docs/paper_reference.json.
// If a bench's numbers change, `scripts/regen_experiments.sh --update`
// refreshes both goldens and doc in one step; forgetting to run it (or
// hand-editing the doc) fails here, in plain ctest, before CI.
//
// HSLB_SOURCE_DIR is injected by tests/CMakeLists.txt so the test reads
// the committed files from the source tree, not the build tree.
#include <gtest/gtest.h>

#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include "hslb/common/error.hpp"
#include "hslb/report/experiments_doc.hpp"
#include "hslb/report/markdown.hpp"
#include "hslb/report/result_set.hpp"

namespace hslb::report {
namespace {

// Must match scripts/regen_experiments.sh and the hslb_report CLI default;
// the rendered header embeds it, so a mismatch shows up as a byte diff.
constexpr const char* kRegenCommand = "scripts/regen_experiments.sh --update";

std::string source_path(const std::string& relative) {
  return std::string(HSLB_SOURCE_DIR) + "/" + relative;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in) << "cannot open " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

std::map<std::string, ResultSet> load_goldens() {
  std::map<std::string, ResultSet> artifacts;
  for (const std::string& bench : experiments_bench_set()) {
    auto parsed = read_file(source_path("tests/golden/" + bench + ".json"));
    EXPECT_TRUE(parsed.has_value())
        << (parsed ? "" : parsed.error().message);
    if (parsed.has_value()) {
      artifacts.emplace(bench, std::move(parsed.value()));
    }
  }
  return artifacts;
}

TEST(ExperimentsGate, GoldenArtifactsParseAndMatchTheirBenchIds) {
  const auto artifacts = load_goldens();
  ASSERT_EQ(artifacts.size(), experiments_bench_set().size());
  for (const auto& [bench, set] : artifacts) {
    EXPECT_EQ(set.bench, bench) << "golden file name does not match its "
                                   "embedded bench id";
    // read_file already verified the embedded fingerprint; recomputing here
    // guards against a parser that silently dropped deterministic cells.
    EXPECT_EQ(set.fingerprint().size(), 16u);
    EXPECT_FALSE(set.series.empty()) << bench;
  }
}

TEST(ExperimentsGate, CommittedDocIsByteIdenticalToARender) {
  const auto artifacts = load_goldens();
  ASSERT_EQ(artifacts.size(), experiments_bench_set().size());
  const auto paper = PaperRef::load(source_path("docs/paper_reference.json"));
  ASSERT_TRUE(paper.has_value()) << (paper ? "" : paper.error().message);

  const std::string rendered =
      render_experiments(artifacts, paper.value(), kRegenCommand);
  const std::string committed = slurp(source_path("EXPERIMENTS.md"));
  ASSERT_FALSE(committed.empty());

  if (rendered != committed) {
    std::size_t at = 0;
    const std::size_t limit = std::min(rendered.size(), committed.size());
    while (at < limit && rendered[at] == committed[at]) {
      ++at;
    }
    FAIL() << "EXPERIMENTS.md is stale: first difference at byte " << at
           << " (rendered " << rendered.size() << " bytes, committed "
           << committed.size() << ").  Run `" << kRegenCommand
           << "` and commit the result.";
  }
}

TEST(ExperimentsGate, RenderFailsLoudlyOnMissingArtifact) {
  auto artifacts = load_goldens();
  const auto paper = PaperRef::load(source_path("docs/paper_reference.json"));
  ASSERT_TRUE(paper.has_value());
  artifacts.erase("tsync");
  EXPECT_THROW(render_experiments(artifacts, paper.value(), kRegenCommand),
               Error);
}

}  // namespace
}  // namespace hslb::report
