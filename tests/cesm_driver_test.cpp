// Tests for layouts, the coupled driver, and benchmark campaigns.
#include <cmath>

#include <gtest/gtest.h>

#include "hslb/cesm/campaign.hpp"
#include "hslb/cesm/driver.hpp"
#include "hslb/common/error.hpp"

namespace hslb::cesm {
namespace {

TEST(Layout, FactoryAndAccess) {
  const Layout l = Layout::hybrid(80, 24, 104, 24);
  EXPECT_EQ(l.kind, LayoutKind::kHybrid);
  EXPECT_EQ(l.at(ComponentKind::kIce), 80);
  EXPECT_EQ(l.at(ComponentKind::kOcn), 24);
  EXPECT_EQ(l.footprint(), 128);
}

TEST(Layout, HybridNestingConstraints) {
  // ice + lnd must fit under atm; atm + ocn must fit the machine.
  EXPECT_FALSE(Layout::hybrid(80, 24, 104, 24).invalid_reason(128));
  EXPECT_TRUE(Layout::hybrid(90, 24, 104, 24).invalid_reason(128));
  EXPECT_TRUE(Layout::hybrid(80, 24, 110, 24).invalid_reason(128));
}

TEST(Layout, SequentialGroupConstraints) {
  EXPECT_FALSE(Layout::sequential_group(100, 100, 100, 28).invalid_reason(128));
  EXPECT_TRUE(Layout::sequential_group(101, 100, 100, 28).invalid_reason(128));
}

TEST(Layout, FullySequentialConstraints) {
  EXPECT_FALSE(
      Layout::fully_sequential(128, 128, 128, 128).invalid_reason(128));
  EXPECT_TRUE(
      Layout::fully_sequential(129, 128, 128, 128).invalid_reason(128));
}

TEST(Layout, RejectsZeroNodes) {
  EXPECT_THROW((void)Layout::hybrid(0, 1, 2, 1), InvalidArgument);
}

TEST(CombineTimes, MatchesTableIExpressions) {
  // Layout 1: max(max(ice, lnd) + atm, ocn).
  EXPECT_DOUBLE_EQ(combine_times(LayoutKind::kHybrid, 10, 8, 30, 35), 40.0);
  EXPECT_DOUBLE_EQ(combine_times(LayoutKind::kHybrid, 10, 8, 30, 45), 45.0);
  // Layout 2: max(ice + lnd + atm, ocn).
  EXPECT_DOUBLE_EQ(combine_times(LayoutKind::kSequentialGroup, 10, 8, 30, 45),
                   48.0);
  // Layout 3: plain sum.
  EXPECT_DOUBLE_EQ(combine_times(LayoutKind::kFullySequential, 10, 8, 30, 45),
                   93.0);
}

TEST(Driver, DeterministicInSeed) {
  const CaseConfig config = one_degree_case();
  const Layout layout = Layout::hybrid(80, 24, 104, 24);
  const RunResult a = run_case(config, layout, 42);
  const RunResult b = run_case(config, layout, 42);
  EXPECT_DOUBLE_EQ(a.total_seconds, b.total_seconds);
  EXPECT_DOUBLE_EQ(a.model_seconds, b.model_seconds);
  const RunResult c = run_case(config, layout, 43);
  EXPECT_NE(a.total_seconds, c.total_seconds);
}

TEST(Driver, ComponentTimersNearTruth) {
  const CaseConfig config = one_degree_case();
  const Layout layout = Layout::hybrid(80, 24, 104, 24);
  const RunResult run = run_case(config, layout, 7);
  for (const ComponentKind kind : kModeledComponents) {
    const double truth = config.component(kind).true_time(layout.at(kind));
    EXPECT_NEAR(run.component_seconds.at(kind), truth, 0.08 * truth)
        << to_string(kind);
  }
}

TEST(Driver, ModelTimeMatchesCombinedTimers) {
  // Day-level synchronization means model_seconds >= the combination of the
  // component totals (waits absorb the per-day scatter), but only slightly.
  const CaseConfig config = one_degree_case();
  const Layout layout = Layout::hybrid(80, 24, 104, 24);
  const RunResult run = run_case(config, layout, 11);
  const double combined = combine_times(
      layout.kind, run.component_seconds.at(ComponentKind::kIce),
      run.component_seconds.at(ComponentKind::kLnd),
      run.component_seconds.at(ComponentKind::kAtm),
      run.component_seconds.at(ComponentKind::kOcn));
  EXPECT_GE(run.model_seconds, combined - 1e-9);
  EXPECT_LE(run.model_seconds, combined * 1.10);
}

TEST(Driver, TotalIncludesCouplerOverhead) {
  const CaseConfig config = one_degree_case();
  const Layout layout = Layout::hybrid(80, 24, 104, 24);
  const RunResult run = run_case(config, layout, 3);
  EXPECT_GT(run.total_seconds, run.model_seconds);
  EXPECT_GT(run.component_seconds.at(ComponentKind::kCpl), 0.0);
  EXPECT_GT(run.component_seconds.at(ComponentKind::kRof), 0.0);
}

TEST(Driver, RejectsOverfullLayout) {
  const CaseConfig config = one_degree_case();
  const Layout layout = Layout::hybrid(80, 24, 104, 99999);
  EXPECT_THROW((void)run_case(config, layout, 1), InvalidArgument);
}

TEST(Driver, MoreNodesFasterRun) {
  const CaseConfig config = one_degree_case();
  const RunResult small = run_case(config, Layout::hybrid(60, 20, 80, 24), 5);
  const RunResult large =
      run_case(config, Layout::hybrid(600, 200, 800, 240), 5);
  EXPECT_LT(large.model_seconds, small.model_seconds);
}

TEST(Driver, SubDailyCouplingCostsSyncTime) {
  // With 48 exchanges per day (the real CESM cadence), every step's noise
  // becomes a synchronization point, so the wall clock can only grow while
  // the component timers stay near the same totals.
  CaseConfig coarse = one_degree_case();
  CaseConfig fine = one_degree_case();
  fine.coupling_steps_per_day = 48;
  const Layout layout = Layout::hybrid(80, 24, 104, 24);

  double coarse_total = 0.0;
  double fine_total = 0.0;
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    coarse_total += run_case(coarse, layout, seed).total_seconds;
    fine_total += run_case(fine, layout, seed).total_seconds;
  }
  EXPECT_GT(fine_total, coarse_total);
  EXPECT_LT(fine_total, coarse_total * 1.10) << "sync waste stays small";

  // Component busy-time totals stay statistically unchanged.
  const RunResult fine_run = run_case(fine, layout, 3);
  for (const ComponentKind kind : kModeledComponents) {
    const double truth = fine.component(kind).true_time(layout.at(kind));
    EXPECT_NEAR(fine_run.component_seconds.at(kind), truth, 0.05 * truth);
  }
}

TEST(Driver, RejectsNonpositiveCouplingSteps) {
  CaseConfig config = one_degree_case();
  config.coupling_steps_per_day = 0;
  EXPECT_THROW((void)run_case(config, Layout::hybrid(80, 24, 104, 24), 1),
               InvalidArgument);
}

TEST(Driver, TimingFileRendersAllComponents) {
  const CaseConfig config = one_degree_case();
  const RunResult run = run_case(config, Layout::hybrid(80, 24, 104, 24), 1);
  const std::string text = render_timing_file(config, run);
  for (const char* name : {"atm", "ocn", "ice", "lnd", "rof", "cpl"}) {
    EXPECT_NE(text.find(name), std::string::npos) << name;
  }
  EXPECT_NE(text.find("layout-1"), std::string::npos);
}

// --- Campaigns -----------------------------------------------------------------

TEST(Campaign, ReferenceLayoutIsValid) {
  const CaseConfig config = one_degree_case();
  for (const int total : {64, 128, 512, 2048}) {
    const Layout layout =
        reference_layout(config, LayoutKind::kHybrid, total);
    EXPECT_FALSE(layout.invalid_reason(total))
        << "total=" << total << ": "
        << *layout.invalid_reason(total);
  }
}

TEST(Campaign, GathersSamplesForEveryComponent) {
  const CaseConfig config = one_degree_case();
  const std::vector<int> totals{128, 256, 512, 1024, 2048};
  const CampaignResult campaign =
      gather_benchmarks(config, LayoutKind::kHybrid, totals, 9);
  EXPECT_EQ(campaign.runs.size(), totals.size());
  for (const ComponentKind kind : kModeledComponents) {
    const Series series = series_for(campaign.samples, kind);
    EXPECT_EQ(series.nodes.size(), totals.size()) << to_string(kind);
  }
}

TEST(Campaign, DeterministicAcrossCalls) {
  const CaseConfig config = one_degree_case();
  const std::vector<int> totals{128, 512, 2048};
  const auto a = gather_benchmarks(config, LayoutKind::kHybrid, totals, 4);
  const auto b = gather_benchmarks(config, LayoutKind::kHybrid, totals, 4);
  ASSERT_EQ(a.samples.size(), b.samples.size());
  for (std::size_t i = 0; i < a.samples.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.samples[i].seconds, b.samples[i].seconds);
  }
}

TEST(Campaign, CsvRoundTrip) {
  const CaseConfig config = one_degree_case();
  const auto campaign = gather_benchmarks(config, LayoutKind::kHybrid,
                                          std::vector<int>{128, 512}, 4);
  const std::string csv = samples_to_csv(campaign.samples);
  EXPECT_NE(csv.find("component,nodes,seconds"), std::string::npos);
  const auto parsed = samples_from_csv(csv);
  ASSERT_EQ(parsed.size(), campaign.samples.size());
  for (std::size_t i = 0; i < parsed.size(); ++i) {
    EXPECT_EQ(parsed[i].kind, campaign.samples[i].kind);
    EXPECT_EQ(parsed[i].nodes, campaign.samples[i].nodes);
    EXPECT_DOUBLE_EQ(parsed[i].seconds, campaign.samples[i].seconds);
  }
}

TEST(Campaign, CsvRejectsMalformedInput) {
  EXPECT_THROW((void)samples_from_csv("atm,12"), InvalidArgument);
  EXPECT_THROW((void)samples_from_csv("mars,12,1.5"), InvalidArgument);
  EXPECT_THROW((void)samples_from_csv("atm,-3,1.5"), InvalidArgument);
  EXPECT_TRUE(samples_from_csv("component,nodes,seconds\n").empty());
}

TEST(Campaign, SamplesSpanTheRange) {
  const CaseConfig config = one_degree_case();
  const std::vector<int> totals{128, 2048};
  const auto campaign =
      gather_benchmarks(config, LayoutKind::kHybrid, totals, 4);
  const Series atm = series_for(campaign.samples, ComponentKind::kAtm);
  const double lo = *std::min_element(atm.nodes.begin(), atm.nodes.end());
  const double hi = *std::max_element(atm.nodes.begin(), atm.nodes.end());
  EXPECT_GT(hi / lo, 8.0) << "atm samples must cover a wide node range";
}

}  // namespace
}  // namespace hslb::cesm
