// Property tests for the MINLP solver: random instances cross-checked
// against exhaustive enumeration (the instances are built small enough that
// brute force is exact).
#include <cmath>

#include <gtest/gtest.h>

#include "hslb/common/rng.hpp"
#include "hslb/minlp/branch_and_bound.hpp"
#include "hslb/minlp/nlp_bb.hpp"

namespace hslb::minlp {
namespace {

/// Random convex "performance" function a/n + b*n + d.
struct RandomFn {
  double a, b, d;
  double operator()(double n) const { return a / n + b * n + d; }
  UnivariateFn as_link() const {
    const RandomFn copy = *this;
    auto fn = make_univariate(
        [copy](double n) { return copy(n); },
        [copy](double n) { return -copy.a / (n * n) + copy.b; },
        Curvature::kConvex);
    fn.as_expr = [copy](const expr::Expr& n) {
      return copy.a / n + copy.b * n + copy.d;
    };
    return fn;
  }
};

/// Instance: min max(f1(n1), f2(n2)) s.t. n1 + n2 <= budget, integers >= 1.
struct Instance {
  RandomFn f1, f2;
  int budget;
};

Instance random_instance(common::Rng& rng) {
  Instance inst;
  inst.f1 = {rng.uniform(50.0, 500.0), rng.uniform(0.0, 0.5),
             rng.uniform(0.0, 10.0)};
  inst.f2 = {rng.uniform(50.0, 500.0), rng.uniform(0.0, 0.5),
             rng.uniform(0.0, 10.0)};
  inst.budget = static_cast<int>(rng.uniform_int(4, 60));
  return inst;
}

double brute_force(const Instance& inst) {
  double best = lp::kInf;
  for (int n1 = 1; n1 < inst.budget; ++n1) {
    for (int n2 = 1; n1 + n2 <= inst.budget; ++n2) {
      best = std::min(best, std::max(inst.f1(n1), inst.f2(n2)));
    }
  }
  return best;
}

Model build(const Instance& inst, std::size_t* n1_out = nullptr,
            std::size_t* n2_out = nullptr) {
  Model m;
  const auto T = m.add_variable("T", VarType::kContinuous, 0.0, 1e12);
  const auto n1 = m.add_variable("n1", VarType::kInteger, 1.0, inst.budget);
  const auto n2 = m.add_variable("n2", VarType::kInteger, 1.0, inst.budget);
  const auto t1 = m.add_variable("t1", VarType::kContinuous, 0.0, 1e12);
  const auto t2 = m.add_variable("t2", VarType::kContinuous, 0.0, 1e12);
  m.add_link(t1, n1, inst.f1.as_link(), "f1");
  m.add_link(t2, n2, inst.f2.as_link(), "f2");
  m.add_linear({{T, 1.0}, {t1, -1.0}}, 0.0, lp::kInf);
  m.add_linear({{T, 1.0}, {t2, -1.0}}, 0.0, lp::kInf);
  m.add_linear({{n1, 1.0}, {n2, 1.0}}, -lp::kInf, inst.budget, "budget");
  m.minimize(m.var(T));
  if (n1_out) {
    *n1_out = n1;
  }
  if (n2_out) {
    *n2_out = n2;
  }
  return m;
}

class MinlpBruteForceProperty : public ::testing::TestWithParam<int> {};

TEST_P(MinlpBruteForceProperty, MatchesExhaustiveEnumeration) {
  common::Rng rng(static_cast<std::uint64_t>(GetParam()) * 6151 + 11);
  const Instance inst = random_instance(rng);
  const double expected = brute_force(inst);

  Model m = build(inst);
  const auto r = solve(m);
  ASSERT_EQ(r.status, MinlpStatus::kOptimal) << "budget=" << inst.budget;
  EXPECT_NEAR(r.objective, expected, 1e-5 * (1.0 + expected))
      << "a1=" << inst.f1.a << " b1=" << inst.f1.b << " a2=" << inst.f2.a
      << " b2=" << inst.f2.b << " budget=" << inst.budget;
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, MinlpBruteForceProperty,
                         ::testing::Range(0, 40));

class MinlpSolverAgreementProperty : public ::testing::TestWithParam<int> {};

TEST_P(MinlpSolverAgreementProperty, AllSolversAgree) {
  common::Rng rng(static_cast<std::uint64_t>(GetParam()) * 773 + 29);
  const Instance inst = random_instance(rng);

  Model m1 = build(inst);
  const auto r_oa = solve(m1);

  Model m2 = build(inst);
  SolverOptions dfs;
  dfs.node_selection = NodeSelection::kDepthFirst;
  dfs.use_root_nlp = false;
  const auto r_dfs = solve(m2, dfs);

  Model m3 = build(inst);
  const auto r_nlpbb = solve_nlp_bb(m3);

  ASSERT_EQ(r_oa.status, MinlpStatus::kOptimal);
  ASSERT_EQ(r_dfs.status, MinlpStatus::kOptimal);
  ASSERT_EQ(r_nlpbb.status, MinlpStatus::kOptimal);
  EXPECT_NEAR(r_dfs.objective, r_oa.objective, 1e-5 * (1.0 + r_oa.objective));
  EXPECT_NEAR(r_nlpbb.objective, r_oa.objective,
              1e-4 * (1.0 + r_oa.objective));
}

INSTANTIATE_TEST_SUITE_P(SolverAgreement, MinlpSolverAgreementProperty,
                         ::testing::Range(0, 15));

class MinlpSosProperty : public ::testing::TestWithParam<int> {};

TEST_P(MinlpSosProperty, SosRestrictionMatchesFilteredBruteForce) {
  common::Rng rng(static_cast<std::uint64_t>(GetParam()) * 409 + 2);
  const Instance inst = random_instance(rng);

  // Allowed set for n1: powers of two within budget.
  std::vector<double> allowed;
  for (int v = 1; v < inst.budget; v *= 2) {
    allowed.push_back(v);
  }
  if (allowed.size() < 2) {
    GTEST_SKIP() << "budget too small for an interesting set";
  }

  double expected = lp::kInf;
  for (const double n1 : allowed) {
    for (int n2 = 1; n1 + n2 <= inst.budget; ++n2) {
      expected = std::min(expected, std::max(inst.f1(n1), inst.f2(n2)));
    }
  }

  std::size_t n1_var = 0;
  Model m = build(inst, &n1_var);
  m.restrict_to_set(n1_var, allowed, /*use_sos=*/true, "A");
  const auto r = solve(m);
  ASSERT_EQ(r.status, MinlpStatus::kOptimal);
  EXPECT_NEAR(r.objective, expected, 1e-5 * (1.0 + expected));
  // The chosen n1 must be a set member.
  bool member = false;
  for (const double v : allowed) {
    member = member || std::fabs(r.x[n1_var] - v) < 1e-6;
  }
  EXPECT_TRUE(member);
}

INSTANTIATE_TEST_SUITE_P(SosInstances, MinlpSosProperty,
                         ::testing::Range(0, 25));

// Monotonicity property: enlarging the budget can only improve the optimum.
class MinlpMonotonicityProperty : public ::testing::TestWithParam<int> {};

TEST_P(MinlpMonotonicityProperty, LargerBudgetNeverWorse) {
  common::Rng rng(static_cast<std::uint64_t>(GetParam()) * 53 + 17);
  Instance inst = random_instance(rng);
  inst.budget = std::max(inst.budget, 8);

  Model small = build(inst);
  const auto r_small = solve(small);

  Instance bigger = inst;
  bigger.budget = inst.budget * 2;
  Model big = build(bigger);
  const auto r_big = solve(big);

  ASSERT_EQ(r_small.status, MinlpStatus::kOptimal);
  ASSERT_EQ(r_big.status, MinlpStatus::kOptimal);
  EXPECT_LE(r_big.objective, r_small.objective + 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Monotonicity, MinlpMonotonicityProperty,
                         ::testing::Range(0, 15));

}  // namespace
}  // namespace hslb::minlp
