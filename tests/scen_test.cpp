// Tests for hslb::scen -- the scenario DSL (parser/printer round-trip as a
// property over the generated corpus, typed parse errors with line context),
// the generalized model lowering (both solvers recover planted optima,
// thread-count byte-identity), the N-component heuristic (feasible, inside
// the certified bracket), the deterministic generator (same seed -> byte-
// identical corpus), and the service's scenario cases (fingerprinted cache
// keys, the brownout ladder degrading instead of shedding on a 12-component
// corpus case).
#include <cmath>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "hslb/minlp/nlp_bb.hpp"
#include "hslb/scen/build.hpp"
#include "hslb/scen/generate.hpp"
#include "hslb/scen/parse.hpp"
#include "hslb/svc/service.hpp"

namespace hslb::scen {
namespace {

const char* kReference = R"(# paper layout 1, generalized
scenario layout1_like
machine nodes=128 cores_per_node=8 mem_gb_per_node=64
component atm curve=pow a=40000 b=0.001 c=1.2 d=10 mem_gb=100
component ocn curve=commpow a=25000 b=0.002 c=1.1 d=20 e=0.004
component ice curve=pow a=8000 b=0 c=1 d=5 min_nodes=2
component lnd curve=pow a=3000 b=0 c=1 d=2
comm atm ocn 0.003
schedule ocn | (ice | lnd) -> atm
)";

Scenario reference_scenario() { return parse_scenario(kReference); }

std::vector<int> alloc_vector(const Scenario& scenario,
                              const ScenAllocation& alloc) {
  std::vector<int> nodes;
  for (const ScenComponent& comp : scenario.components) {
    nodes.push_back(alloc.nodes.at(comp.name));
  }
  return nodes;
}

// --- DSL round-trip ---------------------------------------------------------

TEST(ScenParse, ReferenceScenarioParses) {
  const Scenario s = reference_scenario();
  EXPECT_EQ(s.name, "layout1_like");
  EXPECT_EQ(s.machine.nodes, 128);
  ASSERT_EQ(s.components.size(), 4u);
  EXPECT_EQ(s.components[0].name, "atm");
  // mem_gb=100 over 64 GB/node lifts atm's floor to 2.
  EXPECT_EQ(s.floor_of(0), 2);
  EXPECT_EQ(s.floor_of(2), 2);  // explicit min_nodes
  ASSERT_EQ(s.comm.size(), 1u);
  EXPECT_EQ(s.schedule.kind, ScheduleNode::Kind::kConcurrent);
  ASSERT_EQ(s.schedule.children.size(), 2u);
  EXPECT_EQ(s.schedule.children[1].kind, ScheduleNode::Kind::kSequential);
}

TEST(ScenParse, PrintParsePrintIsAFixedPoint) {
  // Property over the whole generated corpus: parse(print(s)) prints the
  // same bytes, and the fingerprint survives the round trip.
  GenerateOptions options;
  options.scenarios_per_family = 3;
  for (const GeneratedScenario& entry : generate_corpus(options)) {
    const std::string printed = print_scenario(entry.scenario, true);
    auto reparsed = try_parse_scenario(printed);
    ASSERT_TRUE(reparsed.has_value())
        << entry.scenario.name << ": " << reparsed.error().to_string();
    EXPECT_EQ(print_scenario(reparsed.value(), true), printed)
        << entry.scenario.name;
    EXPECT_EQ(scenario_fingerprint(reparsed.value()),
              scenario_fingerprint(entry.scenario));
    // Expectations survive the round trip too.
    EXPECT_EQ(reparsed->expect.optimum.has_value(),
              entry.scenario.expect.optimum.has_value());
  }
}

TEST(ScenParse, FingerprintIgnoresExpectationsAndFormatting) {
  const Scenario s = reference_scenario();
  Scenario annotated = s;
  annotated.expect.optimum = 123.0;
  EXPECT_EQ(scenario_fingerprint(s), scenario_fingerprint(annotated));
  // Whitespace and comments do not change the model.
  const Scenario respaced = parse_scenario(
      std::string("# a comment\n\n") + print_scenario(s, false));
  EXPECT_EQ(scenario_fingerprint(s), scenario_fingerprint(respaced));
  // A model change does.
  Scenario changed = s;
  changed.components[0].curve.pow.a += 1.0;
  EXPECT_NE(scenario_fingerprint(s), scenario_fingerprint(changed));
}

TEST(ScenParse, MalformedInputYieldsTypedErrorsWithLineContext) {
  struct Case {
    const char* text;
    int line;
    const char* needle;
  };
  const Case cases[] = {
      {"scenario x\nmachine nodes=8\nfrobnicate y\n", 3,
       "unknown directive"},
      {"scenario x\nmachine nodes=zero\n", 2, "positive integer"},
      {"scenario x\nmachine nodes=8\ncomponent a curve=pow a=oops\n", 3,
       "bad number"},
      {"scenario x\nmachine nodes=8\ncomponent a curve=pow\n"
       "component a curve=pow\nschedule a\n",
       4, "duplicate component"},
      {"scenario x\nmachine nodes=8\ncomponent a curve=pow\n"
       "schedule (a\n",
       4, "unbalanced"},
      {"scenario x\nmachine nodes=8\ncomponent a curve=pow\nschedule b\n", 4,
       "unknown component"},
      {"scenario x\nmachine nodes=8\n"
       "component a curve=pow points=1:2,3:4\nschedule a\n",
       3, "only valid with curve=piecewise"},
      {"scenario x\nmachine nodes=8\ncomponent a curve=sine\nschedule a\n", 3,
       "unknown curve kind"},
  };
  for (const Case& c : cases) {
    auto result = try_parse_scenario(c.text);
    ASSERT_FALSE(result.has_value()) << c.text;
    EXPECT_EQ(result.error().line, c.line) << c.text;
    EXPECT_NE(result.error().message.find(c.needle), std::string::npos)
        << "got: " << result.error().to_string();
    EXPECT_FALSE(result.error().line_text.empty());
  }
  // Document-level problems report line 0.
  auto no_schedule = try_parse_scenario(
      "scenario x\nmachine nodes=8\ncomponent a curve=pow\n");
  ASSERT_FALSE(no_schedule.has_value());
  EXPECT_EQ(no_schedule.error().line, 0);
  // A schedule that misses a component is a whole-document error from
  // validate().
  auto missing = try_parse_scenario(
      "scenario x\nmachine nodes=8\ncomponent a curve=pow\n"
      "component b curve=pow\nschedule a\n");
  ASSERT_FALSE(missing.has_value());
  EXPECT_NE(missing.error().message.find("exactly once"), std::string::npos);
}

TEST(ScenParse, NonConvexPiecewiseRejected) {
  auto result = try_parse_scenario(
      "scenario x\nmachine nodes=8\n"
      "component a curve=piecewise points=1:10,2:4,4:1,8:0.9\n"
      "component b curve=piecewise points=1:10,2:8,4:7.9,8:1\n"
      "schedule a -> b\n");
  ASSERT_FALSE(result.has_value());
  EXPECT_NE(result.error().message.find("convex"), std::string::npos);
}

// --- Evaluation + lowering --------------------------------------------------

TEST(ScenModel, ScheduleAlgebraMatchesPaperLayout) {
  const Scenario s = reference_scenario();
  const std::vector<int> nodes = {64, 32, 16, 8};  // atm ocn ice lnd
  const double t_atm = s.components[0].curve(64.0);
  const double t_ocn = s.components[1].curve(32.0);
  const double t_ice = s.components[2].curve(16.0);
  const double t_lnd = s.components[3].curve(8.0);
  // ocn | ((ice | lnd) -> atm): time = max(ocn, max(ice, lnd) + atm).
  EXPECT_NEAR(schedule_time(s, nodes),
              std::max(t_ocn, std::max(t_ice, t_lnd) + t_atm), 1e-9);
  // Requirement = ocn + max(ice + lnd, atm).
  EXPECT_EQ(schedule_requirement(s, nodes), 32 + std::max(16 + 8, 64));
  EXPECT_NEAR(comm_penalty(s, nodes), 0.003 * (64 + 32), 1e-12);
}

TEST(ScenModel, LoweredModelMatchesDirectEvaluation) {
  const Scenario s = reference_scenario();
  ScenarioModelVars vars;
  const minlp::Model model = build_scenario_model(s, &vars);
  minlp::SolverOptions options;
  options.max_nodes = 50000;
  const minlp::MinlpResult result = minlp::solve(model, options);
  ASSERT_EQ(result.status, minlp::MinlpStatus::kOptimal);
  const ScenAllocation alloc = extract_scenario_allocation(s, vars, result);
  // The solver's objective equals the pure evaluation of its own point.
  EXPECT_NEAR(result.objective, alloc.objective, 1e-5);
  EXPECT_LE(schedule_requirement(s, alloc_vector(s, alloc)),
            s.machine.nodes);
  // And beats (or ties) the greedy heuristic.
  EXPECT_LE(alloc.objective, heuristic_allocation(s).objective + 1e-6);
}

TEST(ScenModel, BothSolversRecoverPlantedOptimum) {
  GenerateOptions options;
  options.scenarios_per_family = 3;
  int checked = 0;
  for (const GeneratedScenario& entry : generate_corpus(options)) {
    const Scenario& s = entry.scenario;
    if (!s.expect.optimum.has_value() || entry.family.rfind("small", 0) != 0) {
      continue;
    }
    ScenarioModelVars vars;
    const minlp::Model model = build_scenario_model(s, &vars);
    const minlp::MinlpResult result = minlp::solve(model);
    ASSERT_EQ(result.status, minlp::MinlpStatus::kOptimal) << s.name;
    EXPECT_NEAR(result.objective, *s.expect.optimum,
                1e-6 * std::max(1.0, *s.expect.optimum))
        << s.name;
    if (nlp_bb_eligible(s)) {
      ScenarioModelVars nb_vars;
      const minlp::Model nb_model = build_scenario_model(s, &nb_vars);
      const minlp::MinlpResult nb = minlp::solve_nlp_bb(nb_model);
      ASSERT_EQ(nb.status, minlp::MinlpStatus::kOptimal) << s.name;
      EXPECT_NEAR(nb.objective, *s.expect.optimum,
                  1e-6 * std::max(1.0, *s.expect.optimum))
          << s.name;
    }
    ++checked;
  }
  EXPECT_GE(checked, 4);  // small families plant every third scenario
}

TEST(ScenModel, ThreadCountDoesNotChangeTheAnswer) {
  const Scenario s = reference_scenario();
  ScenarioModelVars vars;
  const minlp::Model model = build_scenario_model(s, &vars);
  minlp::SolverOptions serial;
  serial.threads = 1;
  minlp::SolverOptions parallel;
  parallel.threads = 4;
  const minlp::MinlpResult a = minlp::solve(model, serial);
  const minlp::MinlpResult b = minlp::solve(model, parallel);
  ASSERT_EQ(a.status, minlp::MinlpStatus::kOptimal);
  ASSERT_EQ(b.status, a.status);
  EXPECT_EQ(a.objective, b.objective);  // byte-identical, not just close
  ASSERT_EQ(a.x.size(), b.x.size());
  for (std::size_t i = 0; i < a.x.size(); ++i) {
    EXPECT_EQ(a.x[i], b.x[i]) << "x[" << i << "]";
  }
}

TEST(ScenModel, HeuristicStaysInsideTheCertifiedBracket) {
  GenerateOptions options;
  options.scenarios_per_family = 2;
  for (const GeneratedScenario& entry : generate_corpus(options)) {
    const Scenario& s = entry.scenario;
    const ScenAllocation alloc = heuristic_allocation(s);
    const std::vector<int> nodes = alloc_vector(s, alloc);
    EXPECT_LE(schedule_requirement(s, nodes), s.machine.nodes) << s.name;
    EXPECT_NEAR(alloc.objective, evaluate_objective(s, nodes), 1e-9);
    if (s.expect.optimum.has_value()) {
      EXPECT_GE(alloc.objective, *s.expect.optimum - 1e-9) << s.name;
    } else {
      ASSERT_TRUE(s.expect.bound.has_value());
      ASSERT_TRUE(s.expect.incumbent.has_value());
      EXPECT_GE(alloc.objective, *s.expect.bound - 1e-9) << s.name;
      // The planted incumbent IS the heuristic answer.
      EXPECT_NEAR(alloc.objective, *s.expect.incumbent, 1e-9) << s.name;
      EXPECT_LE(*s.expect.bound, *s.expect.incumbent + 1e-9) << s.name;
    }
  }
}

// --- Generator --------------------------------------------------------------

TEST(ScenGenerate, SameSeedIsByteIdentical) {
  GenerateOptions options;
  options.scenarios_per_family = 2;
  const std::vector<GeneratedScenario> a = generate_corpus(options);
  const std::vector<GeneratedScenario> b = generate_corpus(options);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(print_scenario(a[i].scenario, true),
              print_scenario(b[i].scenario, true));
  }
  EXPECT_EQ(corpus_manifest(a, options).fingerprint(),
            corpus_manifest(b, options).fingerprint());
  GenerateOptions reseeded = options;
  reseeded.seed = 4102;
  EXPECT_NE(corpus_manifest(generate_corpus(reseeded), reseeded).fingerprint(),
            corpus_manifest(a, options).fingerprint());
}

TEST(ScenGenerate, CorpusShapeAndExpectations) {
  GenerateOptions options;
  options.scenarios_per_family = 3;
  const std::vector<GeneratedScenario> corpus = generate_corpus(options);
  EXPECT_EQ(corpus.size(), 12u * 3u);
  for (const GeneratedScenario& entry : corpus) {
    const Scenario& s = entry.scenario;
    EXPECT_NO_THROW(s.validate()) << s.name;
    // Every scenario carries a planted optimum or a certified bracket.
    EXPECT_TRUE(s.expect.optimum.has_value() ||
                (s.expect.bound.has_value() &&
                 s.expect.incumbent.has_value()))
        << s.name;
    if (s.expect.optimum.has_value()) {
      EXPECT_TRUE(is_separable(s)) << s.name;
    }
  }
}

TEST(ScenGenerate, WriteAndLoadRoundTrip) {
  GenerateOptions options;
  options.scenarios_per_family = 1;
  const std::vector<GeneratedScenario> corpus = generate_corpus(options);
  const std::string dir =
      ::testing::TempDir() + "/scen_corpus_roundtrip";
  ASSERT_TRUE(write_corpus(dir, corpus, options));
  auto loaded = load_corpus(dir);
  ASSERT_TRUE(loaded.has_value()) << loaded.error().message;
  ASSERT_EQ(loaded->size(), corpus.size());
  // load_corpus sorts by filename; compare as name-keyed sets.
  std::vector<std::string> written;
  std::vector<std::string> read;
  for (const GeneratedScenario& entry : corpus) {
    written.push_back(print_scenario(entry.scenario, true));
  }
  for (const Scenario& s : loaded.value()) {
    read.push_back(print_scenario(s, true));
  }
  std::sort(written.begin(), written.end());
  std::sort(read.begin(), read.end());
  EXPECT_EQ(written, read);
  auto missing = load_corpus(dir + "/nope");
  EXPECT_FALSE(missing.has_value());
}

// --- Service integration ----------------------------------------------------

/// A 12-component corpus-style scenario for the service tests (medium
/// machine so the exact solve stays fast).
Scenario twelve_component_scenario() {
  GenerateOptions options;
  options.scenarios_per_family = 6;
  for (GeneratedScenario& entry : generate_corpus(options)) {
    if (entry.scenario.components.size() >= 12 &&
        !entry.scenario.expect.optimum.has_value()) {
      entry.scenario.name = "corpus12";
      return entry.scenario;
    }
  }
  ADD_FAILURE() << "no 12-component scenario in the generated corpus";
  return Scenario{};
}

svc::AllocationRequest scenario_request(const std::string& name) {
  svc::AllocationRequest request;
  request.case_name = name;
  request.max_wall_seconds = 20.0;
  request.max_nodes = 20000;
  return request;
}

TEST(ScenService, ScenarioCaseSolvesWithoutTimingData) {
  svc::ServiceConfig config;
  config.workers = 2;
  svc::AllocationService service(config);
  Scenario s = reference_scenario();
  s.name = "layout1_case";
  service.register_scenario(s);
  // No fits, no samples, total_nodes 0: classic validation would reject
  // this request; the scenario path serves it from the catalog.
  const svc::SolveOutcome outcome =
      service.solve(scenario_request("layout1_case"));
  ASSERT_TRUE(outcome.has_value())
      << static_cast<int>(outcome.error().code) << " "
      << outcome.error().message;
  EXPECT_EQ(outcome->scenario_nodes.size(), 4u);
  EXPECT_GT(outcome->scenario_objective, 0.0);
  EXPECT_FALSE(outcome->degraded);
  // The scenario block serializes; classic responses never carry it.
  EXPECT_NE(svc::to_json(*outcome).find("\"scenario\""), std::string::npos);
  // A request naming no registered scenario falls back to the classic
  // validation path, which rejects its missing timing data up front.
  const svc::SolveOutcome unknown =
      service.solve(scenario_request("no_such_case"));
  ASSERT_FALSE(unknown.has_value());
  EXPECT_EQ(unknown.error().code, svc::ErrorCode::kBadRequest);
}

TEST(ScenService, CacheKeyIncorporatesScenarioFingerprint) {
  svc::ServiceConfig config;
  config.workers = 1;
  svc::AllocationService service(config);
  Scenario s = reference_scenario();
  s.name = "fp_case";
  service.register_scenario(s);
  const svc::AllocationRequest request = scenario_request("fp_case");
  const std::string key1 = service.submit(request).key;
  EXPECT_NE(key1.find("|scen:"), std::string::npos);
  EXPECT_NE(key1.find(scenario_fingerprint(s)), std::string::npos);
  // Re-registering a changed scenario under the same name changes the key,
  // so the old cache line can never answer for the new model.
  Scenario changed = s;
  changed.components[0].curve.pow.a *= 2.0;
  service.register_scenario(changed);
  const std::string key2 = service.submit(request).key;
  EXPECT_NE(key1, key2);
  EXPECT_NE(key2.find(scenario_fingerprint(changed)), std::string::npos);
}

TEST(ScenService, LadderDegradesInsteadOfSheddingOnCorpusCase) {
  // Chaos makes every exact attempt throw; the regression claim is that a
  // 12-component corpus case still gets an answer (the scenario heuristic
  // rung) instead of a kSolveFailed shed.
  svc::ServiceConfig config;
  config.workers = 1;
  config.chaos.solve_exception_prob = 1.0;
  config.breaker_enabled = false;  // isolate the ladder from breaker trips
  svc::AllocationService service(config);
  const Scenario s = twelve_component_scenario();
  ASSERT_GE(s.components.size(), 12u);
  service.register_scenario(s);
  const svc::SolveOutcome outcome = service.solve(scenario_request(s.name));
  ASSERT_TRUE(outcome.has_value()) << outcome.error().message;
  EXPECT_TRUE(outcome->degraded);
  EXPECT_EQ(outcome->served, svc::ServeLevel::kHeuristic);
  EXPECT_EQ(outcome->scenario_nodes.size(), s.components.size());
  EXPECT_NE(outcome->fault_detail.find("chaos"), std::string::npos);
  // The brownout answer is the deterministic greedy allocation.
  EXPECT_NEAR(outcome->scenario_objective,
              heuristic_allocation(s).objective, 1e-9);
  const svc::ServiceStats stats = service.stats();
  EXPECT_EQ(stats.served_heuristic, 1);
  EXPECT_EQ(stats.failed, 0);
}

}  // namespace
}  // namespace hslb::scen
