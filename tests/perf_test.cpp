// Tests for the Table II performance model and the fitting pipeline.
#include <cmath>

#include <gtest/gtest.h>

#include "hslb/common/error.hpp"
#include "hslb/common/rng.hpp"
#include "hslb/perf/fit.hpp"
#include "hslb/perf/perf_model.hpp"
#include "hslb/perf/sample_design.hpp"

namespace hslb::perf {
namespace {

TEST(PerfModel, EvaluatesTableIIFunction) {
  const PerfModel m(PerfParams{1000.0, 0.01, 1.2, 5.0});
  const double n = 64.0;
  EXPECT_NEAR(m(n), 1000.0 / 64.0 + 0.01 * std::pow(64.0, 1.2) + 5.0, 1e-12);
  EXPECT_NEAR(m.scalable_term(n), 1000.0 / 64.0, 1e-12);
  EXPECT_NEAR(m.nonlinear_term(n), 0.01 * std::pow(64.0, 1.2), 1e-12);
  EXPECT_DOUBLE_EQ(m.serial_term(), 5.0);
}

TEST(PerfModel, DerivativeMatchesFiniteDifference) {
  const PerfModel m(PerfParams{500.0, 0.002, 1.4, 3.0});
  for (const double n : {2.0, 16.0, 200.0}) {
    const double h = 1e-5 * n;
    const double fd = (m(n + h) - m(n - h)) / (2.0 * h);
    EXPECT_NEAR(m.deriv(n), fd, 1e-5 * (1.0 + std::fabs(fd)));
  }
}

TEST(PerfModel, SerialFloorDominatesAtScale) {
  // Amdahl shape: as n grows, T approaches d from above.
  const PerfModel m(PerfParams{1.0e4, 0.0, 1.0, 7.0});
  EXPECT_GT(m(10.0), m(100.0));
  EXPECT_GT(m(100.0), m(10000.0));
  EXPECT_NEAR(m(1.0e8), 7.0, 1e-3);
}

TEST(PerfModel, RejectsNegativeParameters) {
  EXPECT_THROW(PerfModel(PerfParams{-1.0, 0.0, 1.0, 0.0}), InvalidArgument);
  EXPECT_THROW(PerfModel(PerfParams{1.0, -1.0, 1.0, 0.0}), InvalidArgument);
  EXPECT_THROW(PerfModel(PerfParams{1.0, 0.0, 1.0, -2.0}), InvalidArgument);
  EXPECT_THROW((void)PerfModel(PerfParams{1.0, 0.0, 1.0, 0.0})(0.0),
               InvalidArgument);
}

TEST(PerfModel, ConvexityFlag) {
  EXPECT_TRUE(PerfModel(PerfParams{1.0, 0.0, 0.5, 0.0}).is_convex());
  EXPECT_TRUE(PerfModel(PerfParams{1.0, 0.1, 1.5, 0.0}).is_convex());
  EXPECT_FALSE(PerfModel(PerfParams{1.0, 0.1, 0.5, 0.0}).is_convex());
}

TEST(PerfModel, ExprFormMatchesDirectEvaluation) {
  const PerfModel m(PerfParams{123.0, 0.02, 1.3, 4.0});
  const expr::Expr n = expr::variable(0, "n");
  const expr::Expr t = m.as_expr(n);
  for (const double v : {1.0, 17.0, 333.0}) {
    EXPECT_NEAR(expr::eval(t, linalg::Vector{v}), m(v), 1e-10);
  }
}

TEST(PerfModel, UnivariateFormConsistent) {
  const PerfModel m(PerfParams{123.0, 0.0, 1.0, 4.0});
  const auto fn = m.as_univariate();
  EXPECT_NEAR(fn.value(10.0), m(10.0), 1e-12);
  EXPECT_NEAR(fn.deriv(10.0), m.deriv(10.0), 1e-12);
  EXPECT_EQ(fn.curvature, minlp::Curvature::kConvex);
  ASSERT_TRUE(static_cast<bool>(fn.as_expr));
}

TEST(RSquared, PerfectAndPoorFits) {
  const linalg::Vector obs{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(r_squared(obs, obs), 1.0);
  const linalg::Vector mean_pred{2.5, 2.5, 2.5, 2.5};
  EXPECT_NEAR(r_squared(obs, mean_pred), 0.0, 1e-12);
}

// --- Fitting ------------------------------------------------------------------

TEST(Fit, RecoversCleanParameters) {
  const PerfParams truth{5000.0, 0.0, 1.0, 12.0};
  const PerfModel model(truth);
  std::vector<double> nodes{8, 16, 32, 64, 128, 256, 512};
  std::vector<double> times;
  for (const double n : nodes) {
    times.push_back(model(n));
  }
  const auto fit_result = fit(nodes, times);
  EXPECT_GT(fit_result.r_squared, 0.99999);
  EXPECT_NEAR(fit_result.model.params().a, truth.a, 0.02 * truth.a);
  EXPECT_NEAR(fit_result.model.params().d, truth.d, 0.05 * truth.d + 0.5);
  // Predictions must match truth everywhere in range.
  for (const double n : {10.0, 100.0, 400.0}) {
    EXPECT_NEAR(fit_result.model(n), model(n), 0.02 * model(n) + 0.1);
  }
}

class FitRecoveryProperty : public ::testing::TestWithParam<int> {};

TEST_P(FitRecoveryProperty, RecoversNoisyCurves) {
  common::Rng rng(static_cast<std::uint64_t>(GetParam()) * 911 + 31);
  const PerfParams truth{rng.uniform(1.0e3, 1.0e5), 0.0, 1.0,
                         rng.uniform(1.0, 100.0)};
  const PerfModel model(truth);

  std::vector<double> nodes;
  std::vector<double> times;
  for (const int n : design_benchmark_nodes(8, 2048, 6)) {
    nodes.push_back(n);
    times.push_back(model(n) * rng.lognormal_noise(0.02));
  }
  // Plain SSE (the paper's objective) overweights the large absolute times
  // at small node counts, so mid-range relative error can reach ~20%.
  const auto fit_result = fit(nodes, times);
  EXPECT_GT(fit_result.r_squared, 0.99) << "a=" << truth.a << " d=" << truth.d;
  for (const double n : {16.0, 128.0, 1024.0}) {
    EXPECT_NEAR(fit_result.model(n), model(n), 0.20 * model(n) + 0.5);
  }

  // Relative weighting distributes accuracy across the range: 10% holds.
  FitOptions rel;
  rel.relative_weighting = true;
  const auto rel_result = fit(nodes, times, rel);
  for (const double n : {16.0, 128.0, 1024.0}) {
    EXPECT_NEAR(rel_result.model(n), model(n), 0.10 * model(n) + 0.5);
  }
}

INSTANTIATE_TEST_SUITE_P(NoisyCurves, FitRecoveryProperty,
                         ::testing::Range(0, 25));

TEST(Fit, ConvexExponentFloorRespected) {
  const PerfModel truth(PerfParams{1000.0, 2.0, 0.4, 1.0});  // concave term
  std::vector<double> nodes{4, 8, 16, 32, 64, 128};
  std::vector<double> times;
  for (const double n : nodes) {
    times.push_back(truth(n));
  }
  FitOptions opts;  // default c_min = 1.0
  const auto r = fit(nodes, times, opts);
  EXPECT_GE(r.model.params().c, 1.0 - 1e-9);
  EXPECT_TRUE(r.model.is_convex());

  FitOptions free_opts;
  free_opts.c_min = 0.1;
  const auto r_free = fit(nodes, times, free_opts);
  EXPECT_GE(r.sse, r_free.sse - 1e-9)
      << "the unconstrained fit cannot be worse";
}

TEST(Fit, MultistartDoesNotDegrade) {
  std::vector<double> nodes{8, 32, 128, 512};
  std::vector<double> times{100.0, 30.0, 12.0, 8.0};
  FitOptions plain;
  const auto base = fit(nodes, times, plain);
  FitOptions multi = plain;
  multi.multistart = 8;
  const auto better = fit(nodes, times, multi);
  EXPECT_LE(better.sse, base.sse + 1e-9);
}

TEST(Fit, RejectsBadInputs) {
  const std::vector<double> two{1.0, 2.0};
  EXPECT_THROW((void)fit(two, two), InvalidArgument);
  const std::vector<double> nodes{1.0, 2.0, -3.0};
  const std::vector<double> times{1.0, 2.0, 3.0};
  EXPECT_THROW((void)fit(nodes, times), InvalidArgument);
}

// --- Prediction intervals -------------------------------------------------------

TEST(PredictionInterval, ZeroForNoiselessOverdeterminedFit) {
  const PerfModel truth(PerfParams{5000.0, 0.0, 1.0, 12.0});
  std::vector<double> nodes{8, 16, 32, 64, 128, 256};
  std::vector<double> times;
  for (const double n : nodes) {
    times.push_back(truth(n));
  }
  const auto r = fit(nodes, times);
  EXPECT_GT(r.degrees_of_freedom, 0);
  EXPECT_LT(prediction_stddev(r, 64.0), 1e-3);
}

TEST(PredictionInterval, GrowsWithNoiseAndExtrapolation) {
  const PerfModel truth(PerfParams{5000.0, 0.0, 1.0, 12.0});
  common::Rng rng(5);
  std::vector<double> nodes{8, 16, 32, 64, 128, 256};
  std::vector<double> clean;
  std::vector<double> noisy;
  for (const double n : nodes) {
    clean.push_back(truth(n));
    noisy.push_back(truth(n) * rng.lognormal_noise(0.05));
  }
  const auto fit_clean = fit(nodes, clean);
  const auto fit_noisy = fit(nodes, noisy);
  EXPECT_GT(prediction_stddev(fit_noisy, 64.0),
            prediction_stddev(fit_clean, 64.0));
  // Extrapolating far past the data is less certain than interpolating.
  EXPECT_GT(prediction_stddev(fit_noisy, 4096.0),
            prediction_stddev(fit_noisy, 64.0) * 0.5);
}

TEST(PredictionInterval, CoversTruthMostOfTheTime) {
  // ~2-sigma intervals should cover the true curve at interpolated counts.
  const PerfModel truth(PerfParams{20000.0, 0.0, 1.0, 30.0});
  int covered = 0;
  int total = 0;
  for (int trial = 0; trial < 20; ++trial) {
    common::Rng rng(100 + static_cast<std::uint64_t>(trial));
    std::vector<double> nodes{8, 16, 32, 64, 128, 256, 512};
    std::vector<double> times;
    for (const double n : nodes) {
      times.push_back(truth(n) * rng.lognormal_noise(0.02));
    }
    const auto r = fit(nodes, times);
    for (const double n : {24.0, 96.0, 384.0}) {
      const double err = std::fabs(r.model(n) - truth(n));
      covered += err <= 3.0 * prediction_stddev(r, n) + 1e-9;
      ++total;
    }
  }
  EXPECT_GE(covered, total * 7 / 10) << covered << "/" << total;
}

TEST(PredictionInterval, EmptyWhenExactlyDetermined) {
  const PerfModel truth(PerfParams{5000.0, 1.0, 1.2, 12.0});
  std::vector<double> nodes{8, 32, 128};  // 3 samples, 4 parameters
  std::vector<double> times;
  for (const double n : nodes) {
    times.push_back(truth(n));
  }
  const auto r = fit(nodes, times);
  EXPECT_LE(r.degrees_of_freedom, 0);
  EXPECT_DOUBLE_EQ(prediction_stddev(r, 64.0), 0.0);
}

// --- Sample design --------------------------------------------------------------

TEST(SampleDesign, EndpointsIncludedAndSorted) {
  const auto nodes = design_benchmark_nodes(8, 2048, 5);
  ASSERT_GE(nodes.size(), 2u);
  EXPECT_EQ(nodes.front(), 8);
  EXPECT_EQ(nodes.back(), 2048);
  for (std::size_t i = 1; i < nodes.size(); ++i) {
    EXPECT_GT(nodes[i], nodes[i - 1]);
  }
}

TEST(SampleDesign, LogSpacing) {
  const auto nodes = design_benchmark_nodes(10, 10000, 4);
  ASSERT_EQ(nodes.size(), 4u);
  // Ratios roughly constant for log spacing.
  const double r1 = static_cast<double>(nodes[1]) / nodes[0];
  const double r2 = static_cast<double>(nodes[2]) / nodes[1];
  EXPECT_NEAR(r1, r2, 0.2 * r1);
}

TEST(SampleDesign, DegenerateRange) {
  const auto nodes = design_benchmark_nodes(64, 64, 5);
  ASSERT_EQ(nodes.size(), 1u);
  EXPECT_EQ(nodes[0], 64);
}

TEST(SampleDesign, SnapToAllowed) {
  const std::vector<int> allowed{2, 4, 8, 480, 768};
  const auto snapped = snap_to_allowed({3, 100, 500, 9000}, allowed);
  EXPECT_EQ(snapped, (std::vector<int>{2, 8, 480, 768}));
}

}  // namespace
}  // namespace hslb::perf
