// Tests for report rendering: Table III blocks, Figure 1 diagrams, fit
// summaries.
#include <gtest/gtest.h>

#include "hslb/common/error.hpp"
#include "hslb/hslb/report.hpp"

namespace hslb::core {
namespace {

using cesm::ComponentKind;

class ReportFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    PipelineConfig config;
    config.case_config = cesm::one_degree_case();
    config.total_nodes = 128;
    config.gather_totals = {128, 512, 2048};
    hslb_ = run_hslb(config);

    ManualTunerConfig manual_config;
    manual_config.total_nodes = 128;
    manual_ = run_manual(config.case_config, manual_config, hslb_.samples);
  }
  HslbResult hslb_;
  ManualResult manual_;
};

TEST_F(ReportFixture, Table3BlockHasAllComponentsAndTotal) {
  const common::Table table = render_table3_block(manual_, hslb_);
  const std::string text = table.to_text();
  for (const char* name : {"lnd", "ice", "atm", "ocn", "Total time"}) {
    EXPECT_NE(text.find(name), std::string::npos) << name;
  }
  EXPECT_EQ(table.rows(), 5u);
  // The header mirrors the paper's column structure.
  EXPECT_NE(text.find("manual"), std::string::npos);
  EXPECT_NE(text.find("pred"), std::string::npos);
  EXPECT_NE(text.find("actual"), std::string::npos);
}

TEST_F(ReportFixture, Table3BlockWithoutManual) {
  const common::Table table = render_table3_block(hslb_);
  EXPECT_EQ(table.rows(), 5u);
  EXPECT_EQ(table.to_text().find("manual"), std::string::npos);
}

TEST_F(ReportFixture, FitSummaryShowsParametersAndR2) {
  const common::Table table = render_fit_summary(hslb_.fits);
  const std::string text = table.to_text();
  EXPECT_NE(text.find("R^2"), std::string::npos);
  EXPECT_EQ(table.rows(), 4u);
}

TEST_F(ReportFixture, LayoutAsciiDiagramContainsEveryComponent) {
  const cesm::Layout layout = hslb_.allocation.as_layout(
      cesm::LayoutKind::kHybrid);
  const std::string art =
      render_layout_ascii(layout, hslb_.allocation.predicted_seconds);
  EXPECT_NE(art.find('I'), std::string::npos);
  EXPECT_NE(art.find('L'), std::string::npos);
  EXPECT_NE(art.find('A'), std::string::npos);
  EXPECT_NE(art.find('O'), std::string::npos);
  EXPECT_NE(art.find("layout-1"), std::string::npos);
}

TEST_F(ReportFixture, LayoutAsciiAllThreeKinds) {
  std::map<ComponentKind, double> seconds{{ComponentKind::kIce, 100.0},
                                          {ComponentKind::kLnd, 95.0},
                                          {ComponentKind::kAtm, 300.0},
                                          {ComponentKind::kOcn, 390.0}};
  for (const auto kind :
       {cesm::LayoutKind::kHybrid, cesm::LayoutKind::kSequentialGroup,
        cesm::LayoutKind::kFullySequential}) {
    cesm::Layout layout;
    layout.kind = kind;
    layout.nodes = {{ComponentKind::kIce, 80},
                    {ComponentKind::kLnd, 24},
                    {ComponentKind::kAtm, 104},
                    {ComponentKind::kOcn, 24}};
    const std::string art = render_layout_ascii(layout, seconds);
    EXPECT_GT(art.size(), 100u) << to_string(kind);
  }
}

TEST_F(ReportFixture, RejectsTinyCanvas) {
  const cesm::Layout layout = hslb_.allocation.as_layout(
      cesm::LayoutKind::kHybrid);
  EXPECT_THROW((void)render_layout_ascii(
                   layout, hslb_.allocation.predicted_seconds, 5, 2),
               InvalidArgument);
}

}  // namespace
}  // namespace hslb::core
