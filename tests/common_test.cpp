// Unit tests for hslb::common -- RNG determinism/statistics and tables.
#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "hslb/common/arena.hpp"
#include "hslb/common/error.hpp"
#include "hslb/common/rng.hpp"
#include "hslb/common/table.hpp"
#include "hslb/common/timing.hpp"

namespace hslb::common {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDifferentStreams) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    same += a.next_u64() == b.next_u64();
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, ReseedRestartsStream) {
  Rng a(7);
  const std::uint64_t first = a.next_u64();
  a.next_u64();
  a.reseed(7);
  EXPECT_EQ(a.next_u64(), first);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanIsHalf) {
  Rng rng(11);
  double sum = 0.0;
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) {
    sum += rng.uniform();
  }
  EXPECT_NEAR(sum / kDraws, 0.5, 0.01);
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng rng(13);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t v = rng.uniform_int(3, 7);
    ASSERT_GE(v, 3);
    ASSERT_LE(v, 7);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, UniformIntSingleton) {
  Rng rng(17);
  EXPECT_EQ(rng.uniform_int(42, 42), 42);
}

TEST(Rng, UniformIntRejectsCrossedBounds) {
  Rng rng(1);
  EXPECT_THROW((void)rng.uniform_int(5, 4), InvalidArgument);
}

TEST(Rng, NormalMoments) {
  Rng rng(19);
  double sum = 0.0;
  double sum2 = 0.0;
  constexpr int kDraws = 200000;
  for (int i = 0; i < kDraws; ++i) {
    const double x = rng.normal();
    sum += x;
    sum2 += x * x;
  }
  EXPECT_NEAR(sum / kDraws, 0.0, 0.01);
  EXPECT_NEAR(sum2 / kDraws, 1.0, 0.02);
}

TEST(Rng, LognormalNoiseHasUnitMean) {
  Rng rng(23);
  for (const double cv : {0.01, 0.05, 0.2}) {
    double sum = 0.0;
    constexpr int kDraws = 100000;
    for (int i = 0; i < kDraws; ++i) {
      sum += rng.lognormal_noise(cv);
    }
    EXPECT_NEAR(sum / kDraws, 1.0, 5.0 * cv / std::sqrt(kDraws) + 0.005)
        << "cv=" << cv;
  }
}

TEST(Rng, LognormalNoiseZeroCvIsExactlyOne) {
  Rng rng(29);
  EXPECT_EQ(rng.lognormal_noise(0.0), 1.0);
}

TEST(Rng, LognormalNoiseIsPositive) {
  Rng rng(31);
  for (int i = 0; i < 10000; ++i) {
    ASSERT_GT(rng.lognormal_noise(0.5), 0.0);
  }
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a(37);
  Rng b = a.split();
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    same += a.next_u64() == b.next_u64();
  }
  EXPECT_EQ(same, 0);
}

TEST(Table, RendersAlignedColumns) {
  Table t({"name", "value"});
  t.add_row();
  t.cell(std::string("alpha"));
  t.cell(static_cast<long long>(42));
  t.add_row();
  t.cell(std::string("b"));
  t.cell(3.14159, 2);
  const std::string text = t.to_text();
  EXPECT_NE(text.find("alpha"), std::string::npos);
  EXPECT_NE(text.find("42"), std::string::npos);
  EXPECT_NE(text.find("3.14"), std::string::npos);
  // Header underline present.
  EXPECT_NE(text.find("---"), std::string::npos);
}

TEST(Table, MissingCellMarker) {
  Table t({"a", "b"});
  t.add_row();
  t.cell_missing();
  t.cell_missing();
  EXPECT_NE(t.to_text().find('-'), std::string::npos);
}

TEST(Table, CsvQuotesSpecials) {
  Table t({"x"});
  t.add_row();
  t.cell(std::string("va,lue\"q"));
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("\"va,lue\"\"q\""), std::string::npos);
}

TEST(Table, RejectsTooManyCells) {
  Table t({"only"});
  t.add_row();
  t.cell(std::string("one"));
  EXPECT_THROW(t.cell(std::string("two")), InvalidArgument);
}

TEST(Table, RejectsCellBeforeRow) {
  Table t({"only"});
  EXPECT_THROW(t.cell(std::string("x")), InvalidArgument);
}

TEST(FormatFixed, Rounds) {
  EXPECT_EQ(format_fixed(1.23456, 2), "1.23");
  EXPECT_EQ(format_fixed(1.235, 2), "1.24");
  EXPECT_EQ(format_fixed(-0.5, 0), "-0");  // iostream fixed rounding
}

TEST(WallTimer, MeasuresForwardTime) {
  WallTimer t;
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) {
    sink = sink + i;
  }
  EXPECT_GE(t.seconds(), 0.0);
  EXPECT_GE(t.milliseconds(), t.seconds());  // ms >= s numerically
}

TEST(WallTimer, LapReturnsSplitAndResetsLapEpoch) {
  WallTimer t;
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) {
    sink = sink + i;
  }
  const double first = t.lap();
  EXPECT_GT(first, 0.0);
  // The lap epoch was reset: an immediate second lap is (much) shorter than
  // the total elapsed time, and never negative.
  const double second = t.lap();
  EXPECT_GE(second, 0.0);
  EXPECT_LE(second, t.seconds());
}

TEST(WallTimer, LapsSumToTotalElapsed) {
  WallTimer t;
  double laps = 0.0;
  volatile double sink = 0.0;
  for (int k = 0; k < 3; ++k) {
    for (int i = 0; i < 10000; ++i) {
      sink = sink + i;
    }
    laps += t.lap();
  }
  const double total = t.seconds();
  EXPECT_LE(laps, total);
  // The tail after the last lap is the only part not covered by the laps.
  EXPECT_LE(total - laps, total);
  EXPECT_GE(laps, 0.0);
}

TEST(WallTimer, RestartResetsLapEpoch) {
  WallTimer t;
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) {
    sink = sink + i;
  }
  t.restart();
  // A lap right after restart() measures from the restart, not from the
  // original construction.
  EXPECT_LE(t.lap(), t.seconds() + 1e-3);
}

TEST(Error, RequireThrowsWithMessage) {
  try {
    HSLB_REQUIRE(false, "custom context");
    FAIL() << "should have thrown";
  } catch (const InvalidArgument& e) {
    EXPECT_NE(std::string(e.what()).find("custom context"),
              std::string::npos);
  }
}

TEST(Arena, BumpAllocatesAlignedAndRecycles) {
  Arena arena(64);  // tiny first chunk to force growth
  double* a = arena.allocate_array<double>(16);
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(a) % alignof(double), 0u);
  for (int i = 0; i < 16; ++i) {
    a[i] = i;
  }
  char* c = arena.allocate_array<char>(3);
  double* b = arena.allocate_array<double>(200);  // beyond the first chunk
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(b) % alignof(double), 0u);
  EXPECT_DOUBLE_EQ(a[15], 15.0);  // earlier block untouched by growth
  (void)c;
  const std::size_t grown = arena.capacity_bytes();
  arena.reset();
  // After reset the same chunks are reused: capacity must not grow when the
  // same allocation pattern replays.
  (void)arena.allocate_array<double>(16);
  (void)arena.allocate_array<char>(3);
  (void)arena.allocate_array<double>(200);
  EXPECT_EQ(arena.capacity_bytes(), grown);
}

TEST(VectorPool, ReusesCapacity) {
  VectorPool<double> pool;
  std::vector<double> v = pool.acquire();
  v.resize(100);
  const double* data = v.data();
  pool.release(std::move(v));
  EXPECT_EQ(pool.size(), 1u);
  std::vector<double> w = pool.acquire();
  EXPECT_TRUE(w.empty());
  EXPECT_GE(w.capacity(), 100u);
  EXPECT_EQ(w.data(), data);  // same buffer, no reallocation
  const std::vector<double> src{1.0, 2.0, 3.0};
  pool.release(std::move(w));
  const std::vector<double> copy = pool.acquire_copy(src);
  EXPECT_EQ(copy, src);
}

}  // namespace
}  // namespace hslb::common
