// Determinism suite for the parallel branch-and-bound: the solver's answer
// -- incumbent point, objective, bound, and every stats field that is not a
// wall-clock measurement -- must be byte-identical across worker thread
// counts and across repeated runs, for every Table I layout and for
// time-limited solves.  The epoch scheme is what makes this hold: nodes are
// popped in batches at deterministic points, evaluated against an immutable
// snapshot, and merged in batch order, so which thread ran a node never
// leaks into the result.
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>

#include <gtest/gtest.h>

#include "hslb/hslb/layout_model.hpp"
#include "hslb/minlp/nlp_bb.hpp"

namespace hslb::minlp {
namespace {

using cesm::ComponentKind;
using cesm::LayoutKind;

/// Synthetic Table I spec (same family as layout_model_test).
core::LayoutModelSpec synthetic_spec(LayoutKind layout, int total_nodes) {
  core::LayoutModelSpec spec;
  spec.layout = layout;
  spec.total_nodes = total_nodes;
  spec.perf[ComponentKind::kAtm] =
      perf::PerfModel(perf::PerfParams{27000.0, 0.0, 1.0, 45.0});
  spec.perf[ComponentKind::kOcn] =
      perf::PerfModel(perf::PerfParams{7800.0, 0.0, 1.0, 41.0});
  spec.perf[ComponentKind::kIce] =
      perf::PerfModel(perf::PerfParams{7400.0, 0.0, 1.0, 12.0});
  spec.perf[ComponentKind::kLnd] =
      perf::PerfModel(perf::PerfParams{1480.0, 0.0, 1.0, 2.0});
  spec.min_nodes = {{ComponentKind::kAtm, 8},
                    {ComponentKind::kOcn, 2},
                    {ComponentKind::kIce, 4},
                    {ComponentKind::kLnd, 2}};
  return spec;
}

std::string bits(double value) {
  std::uint64_t u = 0;
  std::memcpy(&u, &value, sizeof(u));
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(u));
  return buf;
}

/// Everything deterministic in a MinlpResult; excludes only the wall-clock
/// fields (wall_seconds, lp_seconds).
std::string fingerprint(const MinlpResult& r) {
  std::string out = std::to_string(static_cast<int>(r.status));
  out += '|' + bits(r.objective) + '|' + bits(r.stats.best_bound) + "|x:";
  for (std::size_t i = 0; i < r.x.size(); ++i) {
    out += bits(r.x[i]) + ',';
  }
  const SolveStats& s = r.stats;
  for (const long v :
       {static_cast<long>(s.presolve_tightenings), s.nodes_explored,
        s.lp_solves, s.nlp_solves, s.cuts_added, s.simplex_iterations,
        s.incumbent_updates, s.pruned_by_bound, s.pruned_infeasible, s.epochs,
        s.warm_lp_solves, s.warm_phase1_skips, s.warm_simplex_iterations,
        s.cold_simplex_iterations}) {
    out += '|' + std::to_string(v);
  }
  return out;
}

MinlpResult solve_layout(LayoutKind layout, int total_nodes,
                         const SolverOptions& options) {
  const core::LayoutModelSpec spec = synthetic_spec(layout, total_nodes);
  const Model model = core::build_layout_model(spec, nullptr);
  return solve(model, options);
}

class ParallelDeterminism : public ::testing::TestWithParam<LayoutKind> {};

TEST_P(ParallelDeterminism, ByteIdenticalAcrossThreadCountsAndRuns) {
  const LayoutKind layout = GetParam();
  SolverOptions options;
  options.threads = 1;
  const MinlpResult reference = solve_layout(layout, 64, options);
  ASSERT_EQ(reference.status, MinlpStatus::kOptimal);
  const std::string expected = fingerprint(reference);

  for (const int threads : {2, 8}) {
    options.threads = threads;
    const MinlpResult r = solve_layout(layout, 64, options);
    EXPECT_EQ(fingerprint(r), expected)
        << "threads=" << threads << " changed the result";
  }
  // Repeated run at a fixed thread count: no run-to-run nondeterminism.
  options.threads = 2;
  const MinlpResult again = solve_layout(layout, 64, options);
  EXPECT_EQ(fingerprint(again), expected);
}

TEST_P(ParallelDeterminism, ParallelAnswerMatchesSerialBaseline) {
  const LayoutKind layout = GetParam();
  // The pre-PR serial configuration: one node per epoch, cold LPs.
  SolverOptions serial;
  serial.threads = 1;
  serial.epoch_batch = 1;
  serial.warm_start_lp = false;
  const MinlpResult base = solve_layout(layout, 64, serial);
  ASSERT_EQ(base.status, MinlpStatus::kOptimal);

  SolverOptions parallel;
  parallel.threads = 4;
  const MinlpResult r = solve_layout(layout, 64, parallel);
  ASSERT_EQ(r.status, MinlpStatus::kOptimal);
  // The search path differs (batching changes which cuts a node sees), but
  // both solve the model exactly: same optimal value, consistent bound.
  EXPECT_NEAR(r.objective, base.objective,
              1e-6 * std::max(1.0, std::fabs(base.objective)));
  EXPECT_LE(r.stats.best_bound,
            r.objective + 1e-6 * std::max(1.0, std::fabs(r.objective)));
  EXPECT_NEAR(r.stats.best_bound, r.objective,
              1e-4 * std::max(1.0, std::fabs(r.objective)))
      << "an optimal solve must report a closed gap";
}

INSTANTIATE_TEST_SUITE_P(TableOneLayouts, ParallelDeterminism,
                         ::testing::Values(LayoutKind::kHybrid,
                                           LayoutKind::kSequentialGroup,
                                           LayoutKind::kFullySequential));

TEST(ParallelDeterminismTimeLimit, HugeBudgetSolvesToOptimalIdentically) {
  SolverOptions options;
  options.max_wall_seconds = 1e9;  // effectively unlimited, but the
                                   // time-limit code path is armed
  options.threads = 1;
  const MinlpResult reference = solve_layout(LayoutKind::kHybrid, 64, options);
  ASSERT_EQ(reference.status, MinlpStatus::kOptimal);
  for (const int threads : {2, 8}) {
    options.threads = threads;
    const MinlpResult r = solve_layout(LayoutKind::kHybrid, 64, options);
    EXPECT_EQ(fingerprint(r), fingerprint(reference));
  }
}

TEST(ParallelDeterminismTimeLimit, TinyBudgetTimesOutIdentically) {
  // A budget below any measurable epoch expires before the first epoch at
  // every thread count: the deterministic failure mode is "time limit, no
  // incumbent", not a thread-count-dependent partial search.
  SolverOptions options;
  options.max_wall_seconds = 1e-9;
  options.threads = 1;
  const MinlpResult reference = solve_layout(LayoutKind::kHybrid, 64, options);
  EXPECT_EQ(reference.status, MinlpStatus::kTimeLimit);
  const std::string expected = fingerprint(reference);
  for (const int threads : {2, 8}) {
    options.threads = threads;
    const MinlpResult r = solve_layout(LayoutKind::kHybrid, 64, options);
    EXPECT_EQ(r.status, MinlpStatus::kTimeLimit);
    EXPECT_EQ(fingerprint(r), expected);
  }
}

TEST(ParallelDeterminism, EpochBatchOneReproducesClassicSerialLoop) {
  // epoch_batch=1 with warm starts off is the exact pre-PR node loop; the
  // parallel machinery at any thread count must reproduce it byte for byte
  // (with one node per epoch there is never a second node to hand out, so
  // threads cannot change anything).
  SolverOptions serial;
  serial.epoch_batch = 1;
  serial.warm_start_lp = false;
  serial.threads = 1;
  const MinlpResult base = solve_layout(LayoutKind::kHybrid, 48, serial);
  serial.threads = 8;
  const MinlpResult threaded = solve_layout(LayoutKind::kHybrid, 48, serial);
  EXPECT_EQ(fingerprint(threaded), fingerprint(base));
}

TEST(NlpBbParallelDeterminism, ByteIdenticalAcrossThreadCounts) {
  // Set-free convex model for the NLP-based solver (it rejects SOS sets).
  const core::LayoutModelSpec spec =
      synthetic_spec(LayoutKind::kHybrid, 48);
  const Model model = core::build_layout_model(spec, nullptr);
  NlpBbOptions options;
  options.threads = 1;
  const MinlpResult reference = solve_nlp_bb(model, options);
  ASSERT_EQ(reference.status, MinlpStatus::kOptimal);
  const std::string expected = fingerprint(reference);
  for (const int threads : {2, 8}) {
    options.threads = threads;
    const MinlpResult r = solve_nlp_bb(model, options);
    EXPECT_EQ(fingerprint(r), expected)
        << "nlp_bb threads=" << threads << " changed the result";
  }
}

}  // namespace
}  // namespace hslb::minlp
