// Tests for hslb::svc -- canonical request keys (field-order and
// float-normalization invariance), the sharded LRU solve cache (eviction
// order, TTL), the in-flight coalescer (exactly one leader), and the
// allocation service end to end (cache hits byte-identical to cold solves,
// N identical concurrent requests -> one solver run, graceful shedding,
// shutdown).
#include <algorithm>
#include <atomic>
#include <chrono>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "hslb/hslb/pipeline.hpp"
#include "hslb/svc/service.hpp"

namespace hslb::svc {
namespace {

using cesm::ComponentKind;
using Clock = SolveCache::Clock;

/// Handcrafted Table II curves with realistic shapes (atm dominates, ocean
/// second, ice/land small) -- fast to solve, no gather/fit needed.
std::map<ComponentKind, perf::PerfModel> reference_fits() {
  std::map<ComponentKind, perf::PerfModel> fits;
  fits[ComponentKind::kAtm] =
      perf::PerfModel(perf::PerfParams{40000.0, 0.001, 1.2, 10.0});
  fits[ComponentKind::kOcn] =
      perf::PerfModel(perf::PerfParams{25000.0, 0.002, 1.1, 20.0});
  fits[ComponentKind::kIce] =
      perf::PerfModel(perf::PerfParams{8000.0, 0.0, 1.0, 5.0});
  fits[ComponentKind::kLnd] =
      perf::PerfModel(perf::PerfParams{3000.0, 0.0, 1.0, 2.0});
  return fits;
}

AllocationRequest reference_request(int total_nodes = 128) {
  AllocationRequest request;
  request.case_name = "1deg";
  request.total_nodes = total_nodes;
  request.fits = reference_fits();
  return request;
}

/// A deliberately heavy request (big unconstrained slice) used to occupy a
/// single worker while identical requests pile up behind it.
AllocationRequest blocker_request() {
  AllocationRequest request;
  request.case_name = "eighth";
  request.total_nodes = 32768;
  request.constrain_ocean = false;
  request.constrain_atm = false;
  request.fits = reference_fits();
  return request;
}

AllocationResponse make_response(int atm_nodes) {
  AllocationResponse response;
  response.allocation.nodes[ComponentKind::kAtm] = atm_nodes;
  response.allocation.predicted_seconds[ComponentKind::kAtm] = 1.5;
  response.allocation.predicted_total = 1.5;
  response.solver_status = minlp::MinlpStatus::kOptimal;
  return response;
}

// --- Canonical keys. --------------------------------------------------------

TEST(CanonicalKey, SampleOrderDoesNotMatter) {
  AllocationRequest a;
  a.total_nodes = 128;
  a.samples = {{ComponentKind::kAtm, 128, 100.0},
               {ComponentKind::kOcn, 64, 50.0},
               {ComponentKind::kAtm, 256, 60.0},
               {ComponentKind::kIce, 32, 10.0}};
  AllocationRequest b = a;
  std::mt19937 rng(7);
  for (int round = 0; round < 8; ++round) {
    std::shuffle(b.samples.begin(), b.samples.end(), rng);
    EXPECT_EQ(canonical_key(a), canonical_key(b));
  }
}

TEST(CanonicalKey, FitInsertionOrderDoesNotMatter) {
  AllocationRequest a = reference_request();
  AllocationRequest b;
  b.case_name = a.case_name;
  b.total_nodes = a.total_nodes;
  // Insert in reverse component order; std::map canonicalizes iteration.
  const auto fits = reference_fits();
  for (auto it = fits.rbegin(); it != fits.rend(); ++it) {
    b.fits[it->first] = it->second;
  }
  EXPECT_EQ(canonical_key(a), canonical_key(b));
}

TEST(CanonicalKey, FloatNormalization) {
  EXPECT_EQ(canonical_double(0.0), canonical_double(-0.0));
  EXPECT_EQ(canonical_double(0.5), "0.5");
  EXPECT_EQ(canonical_double(1.0), "1");
  // Distinct doubles stay distinct (round-trip formatting).
  EXPECT_NE(canonical_double(0.1), canonical_double(0.1 + 1e-17));
  AllocationRequest a = reference_request();
  a.tsync = 0.0;
  AllocationRequest b = reference_request();
  b.tsync = -0.0;
  EXPECT_EQ(canonical_key(a), canonical_key(b));
}

TEST(CanonicalKey, SolverBudgetIsPartOfTheKey) {
  AllocationRequest a = reference_request();
  AllocationRequest b = reference_request();
  b.max_wall_seconds = 30.0;
  EXPECT_NE(canonical_key(a), canonical_key(b));
  // ...but the queue deadline is serving QoS, not part of the question.
  AllocationRequest c = reference_request();
  c.deadline_seconds = 5.0;
  EXPECT_EQ(canonical_key(a), canonical_key(c));
}

TEST(CanonicalKey, FitsMaskSamplesAndFitOptions) {
  AllocationRequest a = reference_request();
  AllocationRequest b = reference_request();
  b.samples = {{ComponentKind::kAtm, 128, 100.0}};
  b.fit_options.robust_loss = true;
  EXPECT_EQ(canonical_key(a), canonical_key(b));
}

// --- Cache. -----------------------------------------------------------------

TEST(SolveCache, HitRefreshesLruOrder) {
  SolveCache cache(CacheConfig{/*capacity=*/2, /*shards=*/1, 0.0});
  const Clock::time_point t0 = Clock::now();
  cache.put("a", make_response(1), t0);
  cache.put("b", make_response(2), t0);
  ASSERT_TRUE(cache.get("a", t0).has_value());  // a becomes most recent
  cache.put("c", make_response(3), t0);         // evicts b, the LRU tail
  EXPECT_FALSE(cache.get("b", t0).has_value());
  ASSERT_TRUE(cache.get("a", t0).has_value());
  EXPECT_EQ(cache.get("a", t0)->allocation.nodes.at(ComponentKind::kAtm), 1);
  EXPECT_TRUE(cache.get("c", t0).has_value());
  EXPECT_EQ(cache.stats().evictions, 1);
  EXPECT_EQ(cache.size(), 2u);
}

TEST(SolveCache, TtlExpiresEntries) {
  SolveCache cache(CacheConfig{8, 1, /*ttl_seconds=*/10.0});
  const Clock::time_point t0 = Clock::now();
  cache.put("k", make_response(4), t0);
  EXPECT_TRUE(cache.get("k", t0 + std::chrono::seconds(5)).has_value());
  EXPECT_FALSE(cache.get("k", t0 + std::chrono::seconds(11)).has_value());
  EXPECT_EQ(cache.stats().expirations, 1);
  EXPECT_EQ(cache.size(), 0u);
  // Re-insertion restarts the clock.
  cache.put("k", make_response(4), t0 + std::chrono::seconds(12));
  EXPECT_TRUE(cache.get("k", t0 + std::chrono::seconds(20)).has_value());
}

TEST(SolveCache, OverwriteRefreshesValueAndInsertionTime) {
  SolveCache cache(CacheConfig{8, 1, /*ttl_seconds=*/10.0});
  const Clock::time_point t0 = Clock::now();
  cache.put("k", make_response(1), t0);
  cache.put("k", make_response(2), t0 + std::chrono::seconds(8));
  const auto hit = cache.get("k", t0 + std::chrono::seconds(15));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->allocation.nodes.at(ComponentKind::kAtm), 2);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(SolveCache, MetricsFlowIntoRegistry) {
  obs::Registry registry;
  SolveCache cache(CacheConfig{1, 1, 0.0}, &registry);
  const Clock::time_point t0 = Clock::now();
  cache.get("missing", t0);
  cache.put("a", make_response(1), t0);
  cache.get("a", t0);
  cache.put("b", make_response(2), t0);  // capacity 1: evicts a
  EXPECT_DOUBLE_EQ(registry.counter("svc.cache.hits").value(), 1.0);
  EXPECT_DOUBLE_EQ(registry.counter("svc.cache.misses").value(), 1.0);
  EXPECT_DOUBLE_EQ(registry.counter("svc.cache.evictions").value(), 1.0);
  EXPECT_DOUBLE_EQ(registry.gauge("svc.cache.size").value(), 1.0);
}

// --- Coalescer. -------------------------------------------------------------

TEST(Coalescer, ExactlyOneLeaderUnderConcurrency) {
  Coalescer coalescer;
  constexpr int kThreads = 8;
  std::atomic<int> leaders{0};
  std::vector<ResponseFuture> futures(kThreads);
  {
    std::vector<std::thread> threads;
    for (int i = 0; i < kThreads; ++i) {
      threads.emplace_back([&, i] {
        Coalescer::Join join = coalescer.join("hot-key");
        if (join.leader) {
          leaders.fetch_add(1);
        }
        futures[static_cast<std::size_t>(i)] = join.slot->future;
      });
    }
    for (std::thread& t : threads) {
      t.join();
    }
  }
  EXPECT_EQ(leaders.load(), 1);
  EXPECT_EQ(coalescer.in_flight(), 1u);

  coalescer.complete("hot-key", SolveOutcome(make_response(42)));
  for (const ResponseFuture& future : futures) {
    const SolveOutcome& outcome = future.get();
    ASSERT_TRUE(outcome.has_value());
    EXPECT_EQ(outcome.value().allocation.nodes.at(ComponentKind::kAtm), 42);
  }
  EXPECT_EQ(coalescer.in_flight(), 0u);

  // The key is retired: the next join starts a fresh flight.
  EXPECT_TRUE(coalescer.join("hot-key").leader);
}

// --- Service. ---------------------------------------------------------------

ServiceConfig small_service(int workers, std::size_t queue_capacity = 64) {
  ServiceConfig config;
  config.workers = workers;
  config.queue_capacity = queue_capacity;
  return config;
}

TEST(Service, SolveMatchesDirectPipelineByteForByte) {
  AllocationService service(small_service(2));
  const AllocationRequest request = reference_request();

  const SolveOutcome outcome = service.solve(request);
  ASSERT_TRUE(outcome.has_value());
  EXPECT_EQ(outcome.value().solver_status, minlp::MinlpStatus::kOptimal);

  // The same question answered without the service.
  core::PipelineConfig config;
  config.case_config = cesm::one_degree_case();
  config.total_nodes = request.total_nodes;
  const core::HslbResult direct =
      core::run_hslb_from_fits(config, request.fits);

  AllocationResponse reference;
  reference.allocation = direct.allocation;
  reference.tsync_used = direct.tsync_used;
  reference.solver_status = direct.solver_result.status;
  reference.nodes_explored = direct.solver_result.stats.nodes_explored;
  reference.degraded = direct.degraded;
  EXPECT_EQ(to_json(outcome.value()), to_json(reference));
}

TEST(Service, CacheHitIsByteIdenticalToColdSolve) {
  AllocationService service(small_service(2));
  const AllocationRequest request = reference_request();

  const AllocationService::Ticket cold = service.submit(request);
  const SolveOutcome cold_outcome = cold.future.get();
  ASSERT_TRUE(cold_outcome.has_value());
  EXPECT_FALSE(cold.cache_hit);

  const AllocationService::Ticket warm = service.submit(request);
  EXPECT_TRUE(warm.cache_hit);
  EXPECT_EQ(warm.key, cold.key);
  const SolveOutcome warm_outcome = warm.future.get();
  ASSERT_TRUE(warm_outcome.has_value());
  EXPECT_EQ(to_json(warm_outcome.value()), to_json(cold_outcome.value()));
  EXPECT_EQ(service.stats().solved, 1);
  EXPECT_EQ(service.stats().cache_hits, 1);
}

TEST(Service, SolvesFromSamplesViaFitPath) {
  // Synthetic samples straight off the reference curves.
  AllocationRequest request;
  request.case_name = "1deg";
  request.total_nodes = 128;
  const auto fits = reference_fits();
  for (const auto& [kind, model] : fits) {
    for (const int n : {32, 64, 128, 256, 512}) {
      request.samples.push_back(
          cesm::BenchmarkSample{kind, n, model(static_cast<double>(n))});
    }
  }

  AllocationService service(small_service(1));
  const SolveOutcome outcome = service.solve(request);
  ASSERT_TRUE(outcome.has_value());
  EXPECT_EQ(outcome.value().solver_status, minlp::MinlpStatus::kOptimal);
  EXPECT_GT(outcome.value().allocation.predicted_total, 0.0);

  core::PipelineConfig config;
  config.case_config = cesm::one_degree_case();
  config.total_nodes = request.total_nodes;
  const core::HslbResult direct =
      core::run_hslb_from_samples(config, request.samples);
  EXPECT_EQ(outcome.value().allocation.nodes, direct.allocation.nodes);
}

TEST(Service, IdenticalConcurrentRequestsRunTheSolverOnce) {
  // One worker, busy on a heavy blocker: every identical request submitted
  // meanwhile piles onto one coalescer slot and the solver runs once.
  AllocationService service(small_service(1));
  const AllocationService::Ticket blocker =
      service.submit(blocker_request());

  const AllocationRequest request = reference_request();
  constexpr int kIdentical = 6;
  std::vector<AllocationService::Ticket> tickets;
  for (int i = 0; i < kIdentical; ++i) {
    tickets.push_back(service.submit(request));
  }

  int leaders = 0;
  for (const AllocationService::Ticket& ticket : tickets) {
    if (!ticket.coalesced && !ticket.cache_hit) {
      ++leaders;
    }
  }
  EXPECT_EQ(leaders, 1);

  const std::string expected = to_json(tickets.front().future.get().value());
  for (const AllocationService::Ticket& ticket : tickets) {
    const SolveOutcome& outcome = ticket.future.get();
    ASSERT_TRUE(outcome.has_value());
    EXPECT_EQ(to_json(outcome.value()), expected);
  }
  ASSERT_TRUE(blocker.future.get().has_value());
  // Exactly two solver executions: the blocker and one leader.
  EXPECT_EQ(service.stats().solved, 2);
  EXPECT_EQ(service.stats().coalesced, kIdentical - 1);
}

TEST(Service, FullQueueShedsWithTypedError) {
  ServiceConfig config = small_service(1, /*queue_capacity=*/1);
  AllocationService service(config);
  // Occupy the worker, then wait until it has dequeued the blocker.
  const AllocationService::Ticket blocker =
      service.submit(blocker_request());
  while (service.queue_depth() > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const AllocationService::Ticket queued =
      service.submit(reference_request(96));
  const AllocationService::Ticket shed =
      service.submit(reference_request(160));
  const SolveOutcome& outcome = shed.future.get();
  ASSERT_FALSE(outcome.has_value());
  EXPECT_EQ(outcome.error().code, ErrorCode::kQueueFull);
  EXPECT_EQ(service.stats().shed_queue_full, 1);
  ASSERT_TRUE(queued.future.get().has_value());
  ASSERT_TRUE(blocker.future.get().has_value());
}

TEST(Service, ExpiredDeadlineShedsBeforeSolving) {
  AllocationService service(small_service(1));
  const AllocationService::Ticket blocker =
      service.submit(blocker_request());
  AllocationRequest request = reference_request();
  request.deadline_seconds = 1e-9;  // expires while queued behind the blocker
  const SolveOutcome outcome = service.solve(request);
  ASSERT_FALSE(outcome.has_value());
  EXPECT_EQ(outcome.error().code, ErrorCode::kDeadlineExceeded);
  EXPECT_EQ(service.stats().shed_deadline, 1);
  ASSERT_TRUE(blocker.future.get().has_value());
}

TEST(Service, ValidationErrorsResolveImmediately) {
  AllocationService service(small_service(1));

  AllocationRequest unknown = reference_request();
  unknown.case_name = "no-such-case";
  const SolveOutcome unknown_outcome = service.solve(unknown);
  ASSERT_FALSE(unknown_outcome.has_value());
  EXPECT_EQ(unknown_outcome.error().code, ErrorCode::kUnknownCase);

  AllocationRequest empty;
  empty.total_nodes = 128;
  const SolveOutcome empty_outcome = service.solve(empty);
  ASSERT_FALSE(empty_outcome.has_value());
  EXPECT_EQ(empty_outcome.error().code, ErrorCode::kBadRequest);

  AllocationRequest tiny = reference_request(/*total_nodes=*/4);
  const SolveOutcome tiny_outcome = service.solve(tiny);
  ASSERT_FALSE(tiny_outcome.has_value());
  EXPECT_EQ(tiny_outcome.error().code, ErrorCode::kBadRequest);
  EXPECT_EQ(service.stats().solved, 0);
}

TEST(Service, RegisteredCustomCaseIsServed) {
  AllocationService service(small_service(1));
  service.register_case(
      "scaled", cesm::scaled_hardware_case(cesm::one_degree_case(),
                                           "scaled", 2.0, 4096, 8));
  AllocationRequest request = reference_request();
  request.case_name = "scaled";
  const SolveOutcome outcome = service.solve(request);
  ASSERT_TRUE(outcome.has_value());
}

TEST(Service, ShutdownResolvesQueuedRequests) {
  auto service = std::make_unique<AllocationService>(small_service(1));
  const AllocationService::Ticket blocker =
      service->submit(blocker_request());
  std::vector<AllocationService::Ticket> queued;
  for (const int n : {64, 96, 160, 192}) {
    queued.push_back(service->submit(reference_request(n)));
  }
  service->shutdown();
  for (const AllocationService::Ticket& ticket : queued) {
    const SolveOutcome& outcome = ticket.future.get();
    if (!outcome.has_value()) {
      EXPECT_EQ(outcome.error().code, ErrorCode::kShutdown);
    }
  }
  // Submitting after shutdown fails cleanly too.
  const SolveOutcome late = service->solve(reference_request());
  ASSERT_FALSE(late.has_value());
  EXPECT_EQ(late.error().code, ErrorCode::kShutdown);
}

TEST(Service, ConcurrentMixedLoadIsConsistent) {
  // 4 workers x 6 client threads hammering 6 distinct questions: every
  // future resolves, per-key answers are identical, and the solver never
  // runs more than once per distinct key (cache + coalescing).
  ServiceConfig config = small_service(4, /*queue_capacity=*/256);
  obs::Registry registry;
  config.obs.metrics = &registry;
  AllocationService service(config);

  constexpr int kClients = 6;
  constexpr int kPerClient = 20;
  const std::vector<int> sizes = {64, 96, 128, 160, 192, 256};
  std::vector<std::vector<std::string>> seen(kClients);
  {
    std::vector<std::thread> clients;
    for (int c = 0; c < kClients; ++c) {
      clients.emplace_back([&, c] {
        std::mt19937 rng(static_cast<unsigned>(c) + 1);
        for (int i = 0; i < kPerClient; ++i) {
          const int total =
              sizes[rng() % sizes.size()];
          const SolveOutcome outcome =
              service.solve(reference_request(total));
          ASSERT_TRUE(outcome.has_value());
          seen[static_cast<std::size_t>(c)].push_back(
              std::to_string(total) + "=>" + to_json(outcome.value()));
        }
      });
    }
    for (std::thread& t : clients) {
      t.join();
    }
  }

  std::map<std::string, std::string> answer_by_size;
  for (const std::vector<std::string>& rows : seen) {
    for (const std::string& row : rows) {
      const std::string size = row.substr(0, row.find("=>"));
      const std::string answer = row.substr(row.find("=>") + 2);
      const auto [it, inserted] = answer_by_size.emplace(size, answer);
      EXPECT_EQ(it->second, answer) << "divergent answer for N=" << size;
    }
  }
  EXPECT_LE(service.stats().solved, static_cast<long long>(sizes.size()));
  EXPECT_EQ(service.stats().submitted, kClients * kPerClient);
  EXPECT_GT(registry.counter("svc.cache.hits").value(), 0.0);
}

}  // namespace
}  // namespace hslb::svc
