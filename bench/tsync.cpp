// Section III-A Tsync remark: "additional constraints, like Tsync, may
// actually result in reduced performance of the algorithm because it
// imposes additional synchronization constraints on the solution".
// Sweep the tolerance and watch the optimum degrade as it tightens.
#include <cmath>
#include <iostream>

#include "bench_util.hpp"
#include "hslb/common/error.hpp"
#include "hslb/hslb/report.hpp"

int main(int argc, char** argv) {
  using namespace hslb;
  const bench::ArtifactOptions artifact_options =
      bench::parse_artifact_args(argc, argv);
  const std::string title = "Section III-A -- Tsync tolerance sweep";
  const std::string reference = "Alexeev et al., IPDPSW'14, section III-A";
  bench::banner(title, reference);
  report::ResultSet results =
      bench::make_result_set("tsync", title, reference);

  const cesm::CaseConfig case_config = cesm::one_degree_case();
  core::PipelineConfig base =
      bench::make_config(case_config, 512, bench::one_degree_totals());
  const auto campaign = cesm::gather_benchmarks(
      case_config, base.layout, base.gather_totals, base.seed);

  common::Table table({"machine", "Tsync,s", "predicted T,s", "ice nodes",
                       "lnd nodes", "pred |Ti-Tl|,s", "B&B nodes"});
  for (const int total : {96, 512}) {
    for (const double tsync :
         {lp::kInf, 30.0, 8.0, 2.0, 1.0, 0.5, 0.2, 0.05}) {
      core::PipelineConfig config = base;
      config.total_nodes = total;
      config.tsync = std::isfinite(tsync) ? tsync : 1e9;
      table.add_row();
      table.cell(static_cast<long long>(total));
      table.cell(std::isfinite(tsync) ? common::format_fixed(tsync, 2)
                                      : std::string("inf"));
      const std::string series = "m" + std::to_string(total);
      // The sweep coordinate: the Tsync tolerance itself (inf -> 1e9, the
      // same stand-in the solver config uses).
      const double x = std::isfinite(tsync) ? tsync : 1e9;
      try {
        const core::HslbResult result =
            core::run_hslb_from_samples(config, campaign.samples);
        const double gap = std::fabs(
            result.allocation.predicted_seconds.at(
                cesm::ComponentKind::kIce) -
            result.allocation.predicted_seconds.at(
                cesm::ComponentKind::kLnd));
        table.cell(result.predicted_total, 3);
        table.cell(static_cast<long long>(
            result.allocation.nodes.at(cesm::ComponentKind::kIce)));
        table.cell(static_cast<long long>(
            result.allocation.nodes.at(cesm::ComponentKind::kLnd)));
        table.cell(gap, 3);
        table.cell(static_cast<long long>(
            result.solver_result.stats.nodes_explored));
        results.add(series, x, "feasible", 1.0, "count",
                    report::Stability::kDeterministic, "tsync_s");
        results.add(series, x, "pred_s", result.predicted_total, "s");
        results.add(series, x, "nodes_ice",
                    result.allocation.nodes.at(cesm::ComponentKind::kIce),
                    "nodes");
        results.add(series, x, "nodes_lnd",
                    result.allocation.nodes.at(cesm::ComponentKind::kLnd),
                    "nodes");
        results.add(series, x, "icelnd_gap_s", gap, "s");
        results.add(series, x, "bb_nodes",
                    static_cast<double>(
                        result.solver_result.stats.nodes_explored),
                    "count");
      } catch (const Error&) {
        table.cell(std::string("infeasible"));
        table.cell_missing();
        table.cell_missing();
        table.cell_missing();
        table.cell_missing();
        results.add(series, x, "feasible", 0.0, "count",
                    report::Stability::kDeterministic, "tsync_s");
      }
    }
  }
  std::cout << '\n' << table;
  std::cout << "\nShape check (paper III-A): the optimum is monotonically "
               "non-decreasing as Tsync tightens -- synchronization "
               "constraints can only cost time.\n";
  return bench::finish(std::move(results), artifact_options);
}
