// Section III-A Tsync remark: "additional constraints, like Tsync, may
// actually result in reduced performance of the algorithm because it
// imposes additional synchronization constraints on the solution".
// Sweep the tolerance and watch the optimum degrade as it tightens.
#include <cmath>
#include <iostream>

#include "bench_util.hpp"
#include "hslb/common/error.hpp"
#include "hslb/hslb/report.hpp"

int main() {
  using namespace hslb;
  bench::banner("Section III-A -- Tsync tolerance sweep",
                "Alexeev et al., IPDPSW'14, section III-A");

  const cesm::CaseConfig case_config = cesm::one_degree_case();
  core::PipelineConfig base =
      bench::make_config(case_config, 512, bench::one_degree_totals());
  const auto campaign = cesm::gather_benchmarks(
      case_config, base.layout, base.gather_totals, base.seed);

  common::Table table({"machine", "Tsync,s", "predicted T,s", "ice nodes",
                       "lnd nodes", "pred |Ti-Tl|,s", "B&B nodes"});
  for (const int total : {96, 512}) {
    for (const double tsync :
         {lp::kInf, 30.0, 8.0, 2.0, 1.0, 0.5, 0.2, 0.05}) {
      core::PipelineConfig config = base;
      config.total_nodes = total;
      config.tsync = std::isfinite(tsync) ? tsync : 1e9;
      table.add_row();
      table.cell(static_cast<long long>(total));
      table.cell(std::isfinite(tsync) ? common::format_fixed(tsync, 2)
                                      : std::string("inf"));
      try {
        const core::HslbResult result =
            core::run_hslb_from_samples(config, campaign.samples);
        const double gap = std::fabs(
            result.allocation.predicted_seconds.at(
                cesm::ComponentKind::kIce) -
            result.allocation.predicted_seconds.at(
                cesm::ComponentKind::kLnd));
        table.cell(result.predicted_total, 3);
        table.cell(static_cast<long long>(
            result.allocation.nodes.at(cesm::ComponentKind::kIce)));
        table.cell(static_cast<long long>(
            result.allocation.nodes.at(cesm::ComponentKind::kLnd)));
        table.cell(gap, 3);
        table.cell(static_cast<long long>(
            result.solver_result.stats.nodes_explored));
      } catch (const Error&) {
        table.cell(std::string("infeasible"));
        table.cell_missing();
        table.cell_missing();
        table.cell_missing();
        table.cell_missing();
      }
    }
  }
  std::cout << '\n' << table;
  std::cout << "\nShape check (paper III-A): the optimum is monotonically "
               "non-decreasing as Tsync tightens -- synchronization "
               "constraints can only cost time.\n";
  return 0;
}
