// Chaos sweep for the allocation service: availability and the degradation
// ladder under deterministic fault injection, plus adaptive admission vs
// the queue-depth-only baseline under overload.
//
//   $ ./bench_svc_chaos [--out=BENCH_svc_chaos.json]
//                       [--requests-per-rate=<n>] [--overload-requests=<n>]
//
// Three experiments:
//   sweep    -- fault rates {0, 5, 10, 20} %, one serial client against a
//               one-worker service (serial execution + pure-hash draws =
//               every cell replays exactly).  Each key's first solve is
//               exempt so the cache populates, then a tiny TTL forces every
//               later request back through the chaos-wrapped solve path;
//               the ladder (stale cache -> heuristic grid search) absorbs
//               the faults.  A ladder-off arm at 10 % shows what the rungs
//               buy.  Availability, the ladder-level distribution, breaker
//               trips, hedged retries, and injected-fault counts are all
//               deterministic artifact cells; latency is kTiming.
//   breaker  -- a scripted 100 %-failure window against one key drives the
//               per-case breaker through closed -> open -> half-open ->
//               closed; the transition counts are deterministic cells.
//   overload -- more concurrent clients than workers with a tight deadline:
//               the queue-depth baseline queues requests to die while
//               p99-driven admission sheds early (kOverloaded) and keeps
//               the served tail inside the deadline budget.  Timing cells.
//
// Exit gates (deterministic): chaos-off responses byte-identical to a plain
// pre-chaos service, >= 99 % availability at the 10 % fault rate, and the
// scripted breaker both trips and recovers.
#include <algorithm>
#include <atomic>
#include <cstring>
#include <iostream>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "hslb/common/table.hpp"
#include "hslb/common/timing.hpp"
#include "hslb/svc/service.hpp"

#include "bench_util.hpp"

namespace {

using namespace hslb;

std::map<cesm::ComponentKind, perf::PerfModel> bench_fits() {
  using cesm::ComponentKind;
  std::map<ComponentKind, perf::PerfModel> fits;
  fits[ComponentKind::kAtm] =
      perf::PerfModel(perf::PerfParams{40000.0, 0.001, 1.2, 10.0});
  fits[ComponentKind::kOcn] =
      perf::PerfModel(perf::PerfParams{25000.0, 0.002, 1.1, 20.0});
  fits[ComponentKind::kIce] =
      perf::PerfModel(perf::PerfParams{8000.0, 0.0, 1.0, 5.0});
  fits[ComponentKind::kLnd] =
      perf::PerfModel(perf::PerfParams{3000.0, 0.0, 1.0, 2.0});
  return fits;
}

svc::AllocationRequest make_request(int total_nodes) {
  svc::AllocationRequest request;
  request.total_nodes = total_nodes;
  request.fits = bench_fits();
  return request;
}

double percentile(std::vector<double> sorted, double p) {
  if (sorted.empty()) {
    return 0.0;
  }
  const auto index = static_cast<std::size_t>(
      p * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(index, sorted.size() - 1)];
}

/// One serial chaos arm: `requests` sequential solve() calls round-robin
/// over `keys` distinct questions against a one-worker service.
struct ChaosArm {
  double rate = 0.0;
  bool ladder = true;
  long long requests = 0;
  long long answered = 0;
  long long exact = 0;
  long long stale = 0;
  long long heuristic = 0;
  long long shed = 0;
  double p99_ms = 0.0;        ///< kTiming; everything else deterministic
  svc::ServiceStats stats;
  svc::CacheStats cache;
  svc::BreakerStats breaker;
};

ChaosArm run_chaos_arm(double rate, bool ladder, long long requests,
                       int keys) {
  svc::ServiceConfig config;
  config.workers = 1;
  config.queue_capacity = 64;
  config.chaos = svc::ChaosSpec::uniform(rate);
  // Each key's first solve is exempt: the cache populates cleanly before
  // the chaos starts, so the stale rung has something to serve.
  config.chaos.exempt_first_attempts = 1;
  // A vanishingly small TTL sends every repeat request back through the
  // solve path (fault opportunities) while keep_expired leaves the expired
  // entry behind for the stale rung.
  config.cache.ttl_seconds = 1e-9;
  config.cache.keep_expired = true;
  config.ladder_enabled = ladder;
  svc::AllocationService service(config);

  ChaosArm arm;
  arm.rate = rate;
  arm.ladder = ladder;
  arm.requests = requests;
  std::vector<double> latencies_ms;
  latencies_ms.reserve(static_cast<std::size_t>(requests));
  for (long long i = 0; i < requests; ++i) {
    const svc::AllocationRequest request =
        make_request(64 + 16 * static_cast<int>(i % keys));
    const common::WallTimer one;
    const svc::SolveOutcome outcome = service.solve(request);
    latencies_ms.push_back(one.milliseconds());
    if (!outcome.has_value()) {
      ++arm.shed;
      continue;
    }
    ++arm.answered;
    switch (outcome->served) {
      case svc::ServeLevel::kExact:
        ++arm.exact;
        break;
      case svc::ServeLevel::kStaleCache:
        ++arm.stale;
        break;
      case svc::ServeLevel::kHeuristic:
        ++arm.heuristic;
        break;
    }
  }
  std::sort(latencies_ms.begin(), latencies_ms.end());
  arm.p99_ms = percentile(latencies_ms, 0.99);
  arm.stats = service.stats();
  arm.cache = service.cache_stats();
  arm.breaker = service.breaker_stats("1deg").value_or(svc::BreakerStats{});
  return arm;
}

/// Scripted breaker lifecycle: one key, a bounded 100 %-solver-exception
/// window, enough traffic to trip the breaker, probe it, and close it again.
ChaosArm run_breaker_script(long long requests) {
  svc::ServiceConfig config;
  config.workers = 1;
  config.queue_capacity = 64;
  svc::ChaosSpec chaos;
  chaos.solve_exception_prob = 1.0;
  chaos.exempt_first_attempts = 1;  // populate the stale rung first
  chaos.max_fault_attempts = 8;     // then recover: attempts >= 9 are clean
  config.chaos = chaos;
  config.cache.ttl_seconds = 1e-9;
  config.cache.keep_expired = true;
  svc::AllocationService service(config);

  ChaosArm arm;
  arm.rate = 1.0;
  arm.requests = requests;
  const svc::AllocationRequest request = make_request(96);
  for (long long i = 0; i < requests; ++i) {
    const svc::SolveOutcome outcome = service.solve(request);
    if (!outcome.has_value()) {
      ++arm.shed;
      continue;
    }
    ++arm.answered;
    switch (outcome->served) {
      case svc::ServeLevel::kExact:
        ++arm.exact;
        break;
      case svc::ServeLevel::kStaleCache:
        ++arm.stale;
        break;
      case svc::ServeLevel::kHeuristic:
        ++arm.heuristic;
        break;
    }
  }
  arm.stats = service.stats();
  arm.cache = service.cache_stats();
  arm.breaker = service.breaker_stats("1deg").value_or(svc::BreakerStats{});
  return arm;
}

/// One overload arm: `clients` threads race `requests` distinct questions
/// into a deliberately underprovisioned service under a tight deadline.
struct OverloadArm {
  bool adaptive = false;
  long long requests = 0;
  long long served = 0;
  long long shed_deadline = 0;
  long long shed_overload = 0;
  double served_p99_ms = 0.0;  ///< tail of the *answered* requests
  /// Tail excluding the warmup quarter: the admission controller starts
  /// blind (min_observations), so the steady-state tail is the property
  /// the controller actually governs.
  double steady_p99_ms = 0.0;
};

OverloadArm run_overload_arm(bool adaptive, long long requests, int clients,
                             double deadline_seconds, double pace_ms) {
  svc::ServiceConfig config;
  config.workers = 1;
  config.queue_capacity = static_cast<std::size_t>(requests) + 16;
  config.default_deadline_seconds = deadline_seconds;
  if (adaptive) {
    config.admission.enabled = true;
    // Headroom accounts for the solve that still runs after the queue wait
    // the p99 measures: shed early enough that wait + solve fits.
    config.admission.headroom = 0.5;
    config.admission.min_observations = 4;
    config.admission.refresh_interval = 2;
    // The request histogram is cumulative, so once the warmup tail is in it
    // the p99 stays over budget; the depth floor is then what re-admits
    // work -- the policy degenerates to "cap the queue while the measured
    // tail is bad".  The in-flight solve is not in queue_depth, so a floor
    // of 1 admits only when nothing is queued ahead: a served request costs
    // at most ~2 solve-times (in-flight remainder + own solve), inside the
    // budget of headroom * deadline = 2.5 solve-times.  Paced clients make
    // this safe: a shed costs the caller a think-time, so the late request
    // indices are not burned in a shed storm while the queue drains.
    config.admission.min_queue_depth = 1;
  }
  obs::Registry metrics;  // the admission controller's p99 source
  config.obs.metrics = &metrics;
  svc::AllocationService service(config);

  std::mutex latencies_mutex;
  std::vector<std::pair<long long, double>> served_ms;  // (index, latency)
  std::atomic<long long> next{0};
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&] {
      std::vector<std::pair<long long, double>> local;
      for (;;) {
        const long long i = next.fetch_add(1);
        if (i >= requests) {
          break;
        }
        const svc::AllocationRequest request =
            make_request(64 + 8 * static_cast<int>(i));
        const common::WallTimer one;
        const svc::SolveOutcome outcome = service.solve(request);
        if (outcome.has_value()) {
          local.emplace_back(i, one.milliseconds());
        }
        // Pace the client so the offered load is a bounded multiple of the
        // service's capacity instead of an unbounded shed storm: a shed
        // must cost the client a think-time, as it would a real caller.
        std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
            pace_ms));
      }
      const std::lock_guard<std::mutex> lock(latencies_mutex);
      served_ms.insert(served_ms.end(), local.begin(), local.end());
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }

  OverloadArm arm;
  arm.adaptive = adaptive;
  arm.requests = requests;
  arm.served = static_cast<long long>(served_ms.size());
  const svc::ServiceStats stats = service.stats();
  arm.shed_deadline = stats.shed_deadline;
  arm.shed_overload = stats.shed_overload;
  std::vector<double> all;
  std::vector<double> steady;
  const long long warmup = requests / 4;
  for (const auto& [index, ms] : served_ms) {
    all.push_back(ms);
    if (index >= warmup) {
      steady.push_back(ms);
    }
  }
  std::sort(all.begin(), all.end());
  std::sort(steady.begin(), steady.end());
  arm.served_p99_ms = percentile(all, 0.99);
  arm.steady_p99_ms = percentile(steady, 0.99);
  return arm;
}

void record_chaos_arm(report::ResultSet* results, const std::string& series,
                      const ChaosArm& arm) {
  const double x = 100.0 * arm.rate;
  const auto det = [&](const std::string& metric, double value,
                       const std::string& unit = "count") {
    results->add(series, x, metric, value, unit,
                 report::Stability::kDeterministic, "fault_rate_pct");
  };
  det("requests", static_cast<double>(arm.requests));
  det("answered", static_cast<double>(arm.answered));
  det("availability",
      static_cast<double>(arm.answered) /
          static_cast<double>(std::max(1LL, arm.requests)),
      "");
  det("served_exact", static_cast<double>(arm.exact));
  det("served_stale", static_cast<double>(arm.stale));
  det("served_heuristic", static_cast<double>(arm.heuristic));
  det("shed", static_cast<double>(arm.shed));
  det("chaos_injected", static_cast<double>(arm.stats.chaos_injected));
  det("hedged_retries", static_cast<double>(arm.stats.hedged_retries));
  det("shed_breaker", static_cast<double>(arm.stats.shed_breaker));
  det("breaker_trips", static_cast<double>(arm.breaker.opened));
  det("breaker_recoveries", static_cast<double>(arm.breaker.closed));
  det("cache_poison_detected", static_cast<double>(arm.cache.poison_detected));
  results->add(series, x, "p99_ms", arm.p99_ms, "ms",
               report::Stability::kTiming);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hslb;
  bench::ArtifactOptions artifact_options =
      bench::parse_artifact_args(argc, argv);
  std::string out_path = "BENCH_svc_chaos.json";
  long long requests_per_rate = 60;
  long long overload_requests = 48;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--out=", 0) == 0) {
      out_path = arg.substr(std::strlen("--out="));
    } else if (arg.rfind("--requests-per-rate=", 0) == 0) {
      requests_per_rate =
          std::stoll(arg.substr(std::strlen("--requests-per-rate=")));
    } else if (arg.rfind("--overload-requests=", 0) == 0) {
      overload_requests =
          std::stoll(arg.substr(std::strlen("--overload-requests=")));
    } else {
      std::cerr << "usage: bench_svc_chaos [--out=<file.json>]"
                   " [--requests-per-rate=<n>] [--overload-requests=<n>]\n";
      return 2;
    }
  }

  const std::string title =
      "Allocation-service chaos sweep (degradation ladder + admission)";
  const std::string reference =
      "the svc fault model; deterministic injection, DESIGN.md section 12";
  bench::banner(title, reference);
  report::ResultSet results =
      bench::make_result_set("svc_chaos", title, reference);

  // --- Chaos-off byte-identity: the whole chaos/ladder/breaker machinery,
  // --- disabled, must not move a single output byte. ------------------------
  bool chaos_off_identical = true;
  {
    svc::ServiceConfig chaosless;  // rate-0 chaos spec, ladder armed
    chaosless.workers = 1;
    chaosless.cache.ttl_seconds = 1e-9;
    chaosless.cache.keep_expired = true;
    svc::AllocationService with_machinery(chaosless);
    svc::ServiceConfig plain;  // pre-chaos defaults
    plain.workers = 1;
    svc::AllocationService baseline(plain);
    for (const int nodes : {64, 96, 128}) {
      const svc::AllocationRequest request = make_request(nodes);
      // Two rounds: a cold solve and (machinery side) a TTL-expired
      // re-solve, both of which must match the plain service's bytes.
      const svc::SolveOutcome base = baseline.solve(request);
      for (int round = 0; round < 2; ++round) {
        const svc::SolveOutcome got = with_machinery.solve(request);
        if (!base.has_value() || !got.has_value() ||
            svc::to_json(got.value()) != svc::to_json(base.value())) {
          chaos_off_identical = false;
        }
      }
    }
  }

  // --- Deterministic sweep. -------------------------------------------------
  const int kKeys = 6;
  std::vector<ChaosArm> sweep;
  for (const double rate : {0.0, 0.05, 0.10, 0.20}) {
    sweep.push_back(
        run_chaos_arm(rate, /*ladder=*/true, requests_per_rate, kKeys));
  }
  const ChaosArm ladder_off =
      run_chaos_arm(0.10, /*ladder=*/false, requests_per_rate, kKeys);
  const ChaosArm breaker_script = run_breaker_script(40);

  common::Table table({"arm", "rate%", "req", "avail%", "exact", "stale",
                       "heur", "shed", "inject", "hedged", "trips"});
  const auto add_row = [&table](const std::string& name, const ChaosArm& a) {
    table.add_row();
    table.cell(name);
    table.cell(100.0 * a.rate, 0);
    table.cell(a.requests);
    table.cell(100.0 * static_cast<double>(a.answered) /
                   static_cast<double>(std::max(1LL, a.requests)),
               1);
    table.cell(a.exact);
    table.cell(a.stale);
    table.cell(a.heuristic);
    table.cell(a.shed);
    table.cell(a.stats.chaos_injected);
    table.cell(a.stats.hedged_retries);
    table.cell(a.breaker.opened);
  };
  for (const ChaosArm& arm : sweep) {
    add_row("ladder", arm);
  }
  add_row("ladder-off", ladder_off);
  add_row("breaker", breaker_script);
  std::cout << table;

  const ChaosArm& at10 = sweep[2];
  const double availability_at_10 =
      static_cast<double>(at10.answered) /
      static_cast<double>(std::max(1LL, at10.requests));
  const bool breaker_cycled =
      breaker_script.breaker.opened >= 1 && breaker_script.breaker.closed >= 1;
  std::cout << "availability at 10% fault rate: "
            << common::format_fixed(100.0 * availability_at_10, 2)
            << " % (gate: >= 99 %)\n"
            << "chaos-off outputs byte-identical to the pre-chaos service: "
            << (chaos_off_identical ? "yes" : "NO") << '\n'
            << "scripted breaker tripped " << breaker_script.breaker.opened
            << "x and recovered " << breaker_script.breaker.closed
            << "x (rejected " << breaker_script.breaker.rejected
            << " attempts while open)\n";

  // --- Overload: queue-depth baseline vs p99-driven admission. --------------
  // Calibrate the deadline to this host: a few times the median cold solve.
  double solve_ms = 0.0;
  {
    svc::ServiceConfig config;
    config.workers = 1;
    svc::AllocationService service(config);
    for (const int nodes : {72, 88, 104}) {
      const common::WallTimer one;
      (void)service.solve(make_request(nodes));
      solve_ms = std::max(solve_ms, one.milliseconds());
    }
  }
  const double deadline_seconds = std::max(0.025, 5.0 * solve_ms / 1e3);
  // 8 clients each pacing at ~4 solve-times offer roughly twice the
  // one-worker service's capacity: sustained overload, not a shed storm.
  const double pace_ms = 4.0 * solve_ms;
  const OverloadArm baseline =
      run_overload_arm(/*adaptive=*/false, overload_requests, /*clients=*/8,
                       deadline_seconds, pace_ms);
  const OverloadArm adaptive =
      run_overload_arm(/*adaptive=*/true, overload_requests, /*clients=*/8,
                       deadline_seconds, pace_ms);
  const double budget_ms = 1e3 * deadline_seconds;

  common::Table overload_table({"admission", "req", "served", "shed_dl",
                                "shed_ovl", "p99,ms", "steady_p99,ms",
                                "budget,ms"});
  const auto add_overload = [&](const std::string& name,
                                const OverloadArm& a) {
    overload_table.add_row();
    overload_table.cell(name);
    overload_table.cell(a.requests);
    overload_table.cell(a.served);
    overload_table.cell(a.shed_deadline);
    overload_table.cell(a.shed_overload);
    overload_table.cell(a.served_p99_ms, 2);
    overload_table.cell(a.steady_p99_ms, 2);
    overload_table.cell(budget_ms, 2);
  };
  add_overload("queue-depth", baseline);
  add_overload("p99-adaptive", adaptive);
  std::cout << '\n' << overload_table;
  std::cout << "adaptive steady-state served p99 "
            << common::format_fixed(adaptive.steady_p99_ms, 2)
            << " ms vs budget " << common::format_fixed(budget_ms, 2)
            << " ms (queue-depth baseline: "
            << common::format_fixed(baseline.steady_p99_ms, 2) << " ms)\n";

  // --- Artifact. ------------------------------------------------------------
  for (const ChaosArm& arm : sweep) {
    record_chaos_arm(&results, "chaos_sweep", arm);
  }
  record_chaos_arm(&results, "ladder_off", ladder_off);
  record_chaos_arm(&results, "breaker_script", breaker_script);
  results.add_scalar("summary", "availability_at_10pct", availability_at_10,
                     "");
  results.add_scalar("summary", "chaos_off_byte_identical",
                     chaos_off_identical ? 1.0 : 0.0, "count");
  results.add_scalar("summary", "breaker_cycled", breaker_cycled ? 1.0 : 0.0,
                     "count");
  for (const OverloadArm* arm : {&baseline, &adaptive}) {
    const double x = arm->adaptive ? 1.0 : 0.0;
    results.add("overload", x, "requests",
                static_cast<double>(arm->requests), "count",
                report::Stability::kTiming, "adaptive");
    results.add("overload", x, "served", static_cast<double>(arm->served),
                "count", report::Stability::kTiming);
    results.add("overload", x, "shed_deadline",
                static_cast<double>(arm->shed_deadline), "count",
                report::Stability::kTiming);
    results.add("overload", x, "shed_overload",
                static_cast<double>(arm->shed_overload), "count",
                report::Stability::kTiming);
    results.add("overload", x, "served_p99_ms", arm->served_p99_ms, "ms",
                report::Stability::kTiming);
    results.add("overload", x, "steady_p99_ms", arm->steady_p99_ms, "ms",
                report::Stability::kTiming);
    results.add("overload", x, "steady_p99_under_budget",
                arm->steady_p99_ms <= budget_ms ? 1.0 : 0.0, "count",
                report::Stability::kTiming);
  }
  results.add_scalar("summary", "overload_budget_ms", budget_ms, "ms",
                     report::Stability::kTiming);

  results.canonicalize();
  if (!report::write_file(results, out_path)) {
    std::cerr << "cannot write " << out_path << '\n';
    return 1;
  }
  std::cout << "JSON written to " << out_path << '\n';

  const bool gates_ok =
      chaos_off_identical && availability_at_10 >= 0.99 && breaker_cycled;
  if (!gates_ok) {
    std::cerr << "CHAOS GATE BREAK: identity=" << chaos_off_identical
              << " availability@10%=" << availability_at_10
              << " breaker_cycled=" << breaker_cycled << '\n';
  }
  return bench::finish(std::move(results), artifact_options, gates_ok);
}
