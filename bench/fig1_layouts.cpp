// Figure 1: the three CESM component layouts, rendered as area diagrams
// (component width = node share, height = time share) from actual simulated
// runs at 128 nodes of the 1-degree case.
#include <iostream>

#include "bench_util.hpp"
#include "hslb/cesm/campaign.hpp"
#include "hslb/hslb/report.hpp"

int main(int argc, char** argv) {
  using namespace hslb;
  const bench::ArtifactOptions artifact_options =
      bench::parse_artifact_args(argc, argv);
  const std::string title = "Figure 1 -- popular layouts of CESM components";
  const std::string reference = "Alexeev et al., IPDPSW'14, Fig. 1";
  bench::banner(title, reference);
  report::ResultSet results =
      bench::make_result_set("fig1_layouts", title, reference);

  const cesm::CaseConfig config = cesm::one_degree_case();
  constexpr int kTotal = 128;

  for (const cesm::LayoutKind kind :
       {cesm::LayoutKind::kHybrid, cesm::LayoutKind::kSequentialGroup,
        cesm::LayoutKind::kFullySequential}) {
    const cesm::Layout layout = cesm::reference_layout(config, kind, kTotal);
    const cesm::RunResult run = cesm::run_case(config, layout, 2014);

    std::map<cesm::ComponentKind, double> seconds;
    for (const cesm::ComponentKind component : cesm::kModeledComponents) {
      seconds[component] = run.component_seconds.at(component);
    }
    std::cout << '\n'
              << core::render_layout_ascii(layout, seconds) << '\n';
    std::cout << "  measured model time: " << run.model_seconds
              << " s for a " << config.simulated_days << "-day run on "
              << kTotal << " nodes\n";
  }

  std::cout << "\nShape check (paper: layout 3 is the worst, 1 and 2 are "
               "close):\n";
  for (const cesm::LayoutKind kind :
       {cesm::LayoutKind::kHybrid, cesm::LayoutKind::kSequentialGroup,
        cesm::LayoutKind::kFullySequential}) {
    const cesm::Layout layout = cesm::reference_layout(config, kind, kTotal);
    const cesm::RunResult run = cesm::run_case(config, layout, 2014);
    std::cout << "  " << to_string(kind) << ": " << run.model_seconds
              << " s\n";
    results.add_scalar(to_string(kind), "model_s", run.model_seconds, "s");
    for (const cesm::ComponentKind component : cesm::kModeledComponents) {
      results.add_scalar(to_string(kind),
                         std::string(cesm::to_string(component)) + "_s",
                         run.component_seconds.at(component), "s");
    }
  }
  return bench::finish(std::move(results), artifact_options);
}
