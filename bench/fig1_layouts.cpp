// Figure 1: the three CESM component layouts, rendered as area diagrams
// (component width = node share, height = time share) from actual simulated
// runs at 128 nodes of the 1-degree case.
#include <iostream>

#include "bench_util.hpp"
#include "hslb/cesm/campaign.hpp"
#include "hslb/hslb/report.hpp"

int main() {
  using namespace hslb;
  bench::banner("Figure 1 -- popular layouts of CESM components",
                "Alexeev et al., IPDPSW'14, Fig. 1");

  const cesm::CaseConfig config = cesm::one_degree_case();
  constexpr int kTotal = 128;

  for (const cesm::LayoutKind kind :
       {cesm::LayoutKind::kHybrid, cesm::LayoutKind::kSequentialGroup,
        cesm::LayoutKind::kFullySequential}) {
    const cesm::Layout layout = cesm::reference_layout(config, kind, kTotal);
    const cesm::RunResult run = cesm::run_case(config, layout, 2014);

    std::map<cesm::ComponentKind, double> seconds;
    for (const cesm::ComponentKind component : cesm::kModeledComponents) {
      seconds[component] = run.component_seconds.at(component);
    }
    std::cout << '\n'
              << core::render_layout_ascii(layout, seconds) << '\n';
    std::cout << "  measured model time: " << run.model_seconds
              << " s for a " << config.simulated_days << "-day run on "
              << kTotal << " nodes\n";
  }

  std::cout << "\nShape check (paper: layout 3 is the worst, 1 and 2 are "
               "close):\n";
  for (const cesm::LayoutKind kind :
       {cesm::LayoutKind::kHybrid, cesm::LayoutKind::kSequentialGroup,
        cesm::LayoutKind::kFullySequential}) {
    const cesm::Layout layout = cesm::reference_layout(config, kind, kTotal);
    const cesm::RunResult run = cesm::run_case(config, layout, 2014);
    std::cout << "  " << to_string(kind) << ": " << run.model_seconds
              << " s\n";
  }
  return 0;
}
