// Figure 2: scaling curves for each component in layout (1) at 1-degree
// resolution, with the fitted Table II parameters and the T^sca / T^nln /
// T^ser term decomposition shown in the paper's inset.
#include <iostream>

#include "bench_util.hpp"
#include "hslb/hslb/report.hpp"
#include "hslb/perf/fit.hpp"

int main(int argc, char** argv) {
  using namespace hslb;
  const bench::ArtifactOptions artifact_options =
      bench::parse_artifact_args(argc, argv);
  const std::string title =
      "Figure 2 -- component scaling curves, layout (1), 1 degree";
  const std::string reference = "Alexeev et al., IPDPSW'14, Fig. 2 + Table II";
  bench::banner(title, reference);
  report::ResultSet results =
      bench::make_result_set("fig2_scaling_curves", title, reference);

  const cesm::CaseConfig case_config = cesm::one_degree_case();
  const auto campaign = cesm::gather_benchmarks(
      case_config, cesm::LayoutKind::kHybrid, bench::one_degree_totals(),
      2014);

  std::map<cesm::ComponentKind, perf::FitResult> fits;
  for (const cesm::ComponentKind kind : cesm::kModeledComponents) {
    const cesm::Series series = cesm::series_for(campaign.samples, kind);
    fits[kind] = perf::fit(series.nodes, series.seconds);
  }

  std::cout << "\nFitted Table II parameters (R^2 close to 1 for every "
               "component, as in the paper):\n"
            << core::render_fit_summary(fits);
  for (const cesm::ComponentKind kind : cesm::kModeledComponents) {
    results.add_scalar(cesm::to_string(kind), "r_squared",
                       fits.at(kind).r_squared, "");
    results.add_scalar(cesm::to_string(kind), "rmse_s", fits.at(kind).rmse,
                       "s");
  }

  // Measured points per component.
  std::cout << "\nBenchmark samples (5-day runs):\n";
  common::Table samples({"component", "nodes", "measured,s", "fitted,s"});
  for (const cesm::ComponentKind kind : cesm::kModeledComponents) {
    const cesm::Series series = cesm::series_for(campaign.samples, kind);
    for (std::size_t i = 0; i < series.nodes.size(); ++i) {
      samples.add_row();
      samples.cell(std::string(cesm::to_string(kind)));
      samples.cell(static_cast<long long>(series.nodes[i]));
      samples.cell(series.seconds[i], 3);
      samples.cell(fits.at(kind).model(series.nodes[i]), 3);
    }
  }
  std::cout << samples;

  // Curve series: fitted curves over a node sweep (what the figure plots),
  // with the 1-sigma prediction interval of the noisiest curve (ice).
  std::cout << "\nFitted scaling curves (series for the figure):\n";
  common::Table curves(
      {"nodes", "lnd,s", "ice,s", "+-1sig(ice)", "atm,s", "ocn,s"});
  for (int n = 16; n <= 2048; n *= 2) {
    curves.add_row();
    curves.cell(static_cast<long long>(n));
    curves.cell(fits.at(cesm::ComponentKind::kLnd).model(n), 3);
    curves.cell(fits.at(cesm::ComponentKind::kIce).model(n), 3);
    curves.cell(
        perf::prediction_stddev(fits.at(cesm::ComponentKind::kIce), n), 3);
    curves.cell(fits.at(cesm::ComponentKind::kAtm).model(n), 3);
    curves.cell(fits.at(cesm::ComponentKind::kOcn).model(n), 3);
  }
  std::cout << curves;

  // The inset: term decomposition for the atmosphere curve.
  std::cout << "\nTerm decomposition, atmosphere (the Fig. 2 inset: "
               "T = T_sca + T_nln + T_ser):\n";
  const perf::PerfModel& atm = fits.at(cesm::ComponentKind::kAtm).model;
  common::Table terms({"nodes", "T,s", "T_sca,s", "T_nln,s", "T_ser,s"});
  for (int n = 16; n <= 2048; n *= 4) {
    terms.add_row();
    terms.cell(static_cast<long long>(n));
    terms.cell(atm(n), 3);
    terms.cell(atm.scalable_term(n), 3);
    terms.cell(atm.nonlinear_term(n), 4);
    terms.cell(atm.serial_term(), 3);
  }
  std::cout << terms;
  // Artifact: the inset decomposition over the full figure range, including
  // the 2048-node endpoint the printed *= 4 sweep stops short of.
  for (const int n : {16, 64, 256, 1024, 2048}) {
    results.add("atm_terms", n, "t_total_s", atm(n), "s",
                report::Stability::kDeterministic, "nodes");
    results.add("atm_terms", n, "t_sca_s", atm.scalable_term(n), "s");
    results.add("atm_terms", n, "t_nln_s", atm.nonlinear_term(n), "s");
    results.add("atm_terms", n, "t_ser_s", atm.serial_term(), "s");
  }
  std::cout << "\nShape check: T_sca dominates at small n, T_ser at large n "
               "(Amdahl), T_nln stays small on this machine -- as the paper "
               "observed on Intrepid.\n";
  return bench::finish(std::move(results), artifact_options);
}
