// Table II fitting study (section III-C):
//   * quality vs the number of benchmark points D (the paper recommends
//     "at least greater than four"),
//   * strategy ablation: VarPro grid alone vs +LM polish vs multistart vs
//     relative weighting,
//   * fit timing via google-benchmark.
#include <benchmark/benchmark.h>

#include <cmath>
#include <iostream>

#include "hslb/common/table.hpp"

#include "bench_util.hpp"
#include "hslb/perf/fit.hpp"
#include "hslb/perf/sample_design.hpp"

namespace {

using namespace hslb;

/// Noisy samples from the 1-degree atmosphere truth law.
void make_samples(int d, std::vector<double>* nodes,
                  std::vector<double>* times, std::uint64_t seed = 7) {
  const cesm::CaseConfig config = cesm::one_degree_case();
  const cesm::Component& atm =
      config.component(cesm::ComponentKind::kAtm);
  common::Rng rng(seed);
  nodes->clear();
  times->clear();
  for (const int n : perf::design_benchmark_nodes(16, 2048, d)) {
    nodes->push_back(n);
    times->push_back(atm.measured_time(n, rng));
  }
}

void BM_Fit(benchmark::State& state) {
  std::vector<double> nodes;
  std::vector<double> times;
  make_samples(static_cast<int>(state.range(0)), &nodes, &times);
  for (auto _ : state) {
    const auto result = perf::fit(nodes, times);
    benchmark::DoNotOptimize(result.r_squared);
  }
}
BENCHMARK(BM_Fit)->Arg(4)->Arg(6)->Arg(8)->Unit(benchmark::kMicrosecond);

void BM_FitMultistart(benchmark::State& state) {
  std::vector<double> nodes;
  std::vector<double> times;
  make_samples(6, &nodes, &times);
  perf::FitOptions options;
  options.multistart = static_cast<int>(state.range(0));
  for (auto _ : state) {
    const auto result = perf::fit(nodes, times, options);
    benchmark::DoNotOptimize(result.r_squared);
  }
}
BENCHMARK(BM_FitMultistart)->Arg(0)->Arg(8)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  using namespace hslb;
  bench::ArtifactOptions artifact_options =
      bench::parse_artifact_args(argc, argv);
  const std::string title = "Section III-C / Table II -- fitting study";
  const std::string reference =
      "Alexeev et al., IPDPSW'14, sections III-B/III-C";
  bench::banner(title, reference);
  report::ResultSet results =
      bench::make_result_set("fitting", title, reference);

  const cesm::CaseConfig config = cesm::one_degree_case();
  const cesm::Component& atm = config.component(cesm::ComponentKind::kAtm);

  // --- Quality vs number of benchmark points. ---------------------------------
  std::cout << "\nFit quality vs number of benchmark points D (truth: the "
               "1-degree atmosphere law):\n";
  common::Table dsweep({"D", "R^2", "RMSE,s", "err@96,%", "err@1536,%"});
  for (const int d : {3, 4, 5, 6, 8, 12}) {
    std::vector<double> nodes;
    std::vector<double> times;
    make_samples(d, &nodes, &times);
    const auto result = perf::fit(nodes, times);
    const auto rel_err = [&](int n) {
      return 100.0 * std::fabs(result.model(n) - atm.true_time(n)) /
             atm.true_time(n);
    };
    dsweep.add_row();
    dsweep.cell(static_cast<long long>(d));
    dsweep.cell(result.r_squared, 5);
    dsweep.cell(result.rmse, 3);
    dsweep.cell(rel_err(96), 2);
    dsweep.cell(rel_err(1536), 2);
    results.add("dsweep", d, "r_squared", result.r_squared, "",
                report::Stability::kDeterministic, "points");
    results.add("dsweep", d, "rmse_s", result.rmse, "s");
    results.add("dsweep", d, "err96_pct", rel_err(96), "%");
    results.add("dsweep", d, "err1536_pct", rel_err(1536), "%");
  }
  std::cout << dsweep;
  std::cout << "Shape check (paper III-C): about four points already give a "
               "well-fitted curve; more points mostly average the noise.\n";

  // --- Strategy ablation. -----------------------------------------------------
  std::cout << "\nFitting strategy ablation (D = 6):\n";
  common::Table strategies({"strategy", "R^2", "SSE", "err@96,%",
                            "err@1536,%"});
  std::vector<double> nodes;
  std::vector<double> times;
  make_samples(6, &nodes, &times);
  struct Entry {
    const char* name;
    perf::FitOptions options;
  };
  std::vector<Entry> entries;
  entries.push_back({"VarPro only", {}});
  entries.back().options.lm_polish = false;
  entries.push_back({"VarPro + LM", {}});
  entries.push_back({"+ multistart(8)", {}});
  entries.back().options.multistart = 8;
  entries.push_back({"relative weighting", {}});
  entries.back().options.relative_weighting = true;
  entries.push_back({"free exponent (c >= 0.1)", {}});
  entries.back().options.c_min = 0.1;

  for (const Entry& entry : entries) {
    const auto result = perf::fit(nodes, times, entry.options);
    const auto rel_err = [&](int n) {
      return 100.0 * std::fabs(result.model(n) - atm.true_time(n)) /
             atm.true_time(n);
    };
    strategies.add_row();
    strategies.cell(std::string(entry.name));
    strategies.cell(result.r_squared, 6);
    strategies.cell(result.sse, 3);
    strategies.cell(rel_err(96), 2);
    strategies.cell(rel_err(1536), 2);
    results.add_scalar(entry.name, "r_squared", result.r_squared, "");
    results.add_scalar(entry.name, "sse", result.sse, "");
    results.add_scalar(entry.name, "err96_pct", rel_err(96), "%");
    results.add_scalar(entry.name, "err1536_pct", rel_err(1536), "%");
  }
  std::cout << strategies;

  std::cout << "\nFit timing:\n";
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return bench::finish(std::move(results), artifact_options);
}
