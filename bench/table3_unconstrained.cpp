// Table III, final two blocks: 1/8-degree with the ocean node constraint
// REMOVED.  The optimizer may pick any integer ocean count; the prediction
// improves sharply, the executed run pays POP's off-preferred-count penalty
// (the paper's "ocean scaling curve was not captured well"), and a "tuned"
// variant snapped toward known sweet spots recovers part of the gap --
// exactly the workflow behind the paper's last Table III entry.
#include <cmath>
#include <iostream>

#include "bench_util.hpp"
#include "hslb/cesm/decomposition.hpp"
#include "hslb/hslb/report.hpp"

int main(int argc, char** argv) {
  using namespace hslb;
  const bench::ArtifactOptions artifact_options =
      bench::parse_artifact_args(argc, argv);
  const std::string title =
      "Table III -- 1/8-degree resolution, unconstrained ocean counts";
  const std::string reference =
      "Alexeev et al., IPDPSW'14, Table III (rows 5-6)";
  bench::banner(title, reference);
  report::ResultSet results =
      bench::make_result_set("table3_unconstrained", title, reference);

  const cesm::CaseConfig case_config = cesm::eighth_degree_case();
  core::PipelineConfig base =
      bench::make_config(case_config, 8192, bench::eighth_degree_totals());
  const auto campaign = cesm::gather_benchmarks(
      case_config, base.layout, base.gather_totals, base.seed);

  for (const int total : {8192, 32768}) {
    // Constrained run for the comparison baseline.
    core::PipelineConfig constrained = base;
    constrained.total_nodes = total;
    core::HslbResult con =
        core::run_hslb_from_samples(constrained, campaign.samples);
    const cesm::RunResult con_run = cesm::run_case(
        case_config, con.allocation.as_layout(constrained.layout),
        constrained.seed + 1);

    // Unconstrained solve.
    core::PipelineConfig unconstrained = constrained;
    unconstrained.constrain_ocean = false;
    core::HslbResult unc =
        core::run_hslb_from_samples(unconstrained, campaign.samples);
    const cesm::Layout unc_layout =
        unc.allocation.as_layout(unconstrained.layout);
    const cesm::RunResult unc_run =
        cesm::run_case(case_config, unc_layout, unconstrained.seed + 1);
    for (const cesm::ComponentKind kind : cesm::kModeledComponents) {
      unc.components[kind].actual_seconds =
          unc_run.component_seconds.at(kind);
    }
    unc.actual_total = unc_run.model_seconds;

    std::cout << "\n--- 1/8-degree, " << total
              << " nodes, unconstrained ocean ---\n"
              << core::render_table3_block(unc);

    std::cout << "constrained HSLB actual : "
              << common::format_fixed(con_run.model_seconds, 3) << " s\n"
              << "unconstrained predicted : "
              << common::format_fixed(unc.predicted_total, 3) << " s  ("
              << common::format_fixed(
                     100.0 * (1.0 - unc.predicted_total /
                                        con.predicted_total),
                     1)
              << " % better than constrained prediction; paper: ~40 % at "
                 "32768)\n"
              << "unconstrained actual    : "
              << common::format_fixed(unc.actual_total, 3)
              << " s  (above prediction: POP pays a penalty off its tuned "
                 "counts)\n"
              << "improvement vs constrained actual: "
              << common::format_fixed(
                     100.0 * (1.0 - unc.actual_total / con_run.model_seconds),
                     1)
              << " %   (paper: ~25 % at 32768)\n";

    // "Tuned actual": the paper chose the final allocation "based on the
    // HSLB predicted nodes but adjusting node counts toward known component
    // sweet spots".  Candidates: the raw prediction and the adjacent
    // preferred ocean counts; keep whichever the fitted models predict to
    // be fastest, then execute it.
    const int predicted_ocn =
        unc.components.at(cesm::ComponentKind::kOcn).nodes;
    const auto preferred = cesm::ocn_allowed_eighth_degree(total);
    std::vector<int> candidates{predicted_ocn};
    int below = -1;
    int above = -1;
    for (const int p : preferred) {
      if (p <= predicted_ocn && (below < 0 || p > below)) {
        below = p;
      }
      if (p >= predicted_ocn && (above < 0 || p < above)) {
        above = p;
      }
    }
    for (const int candidate : {below, above}) {
      if (candidate > 0 && candidate != predicted_ocn) {
        candidates.push_back(candidate);
      }
    }

    const auto predict_total = [&](const cesm::Layout& layout) {
      double ice = 0.0, lnd = 0.0, atm = 0.0, ocn = 0.0;
      ice = unc.fits.at(cesm::ComponentKind::kIce)
                .model(layout.at(cesm::ComponentKind::kIce));
      lnd = unc.fits.at(cesm::ComponentKind::kLnd)
                .model(layout.at(cesm::ComponentKind::kLnd));
      atm = unc.fits.at(cesm::ComponentKind::kAtm)
                .model(layout.at(cesm::ComponentKind::kAtm));
      ocn = unc.fits.at(cesm::ComponentKind::kOcn)
                .model(layout.at(cesm::ComponentKind::kOcn));
      return cesm::combine_times(layout.kind, ice, lnd, atm, ocn);
    };

    cesm::Layout tuned = unc_layout;
    double tuned_prediction = predict_total(unc_layout);
    for (const int candidate : candidates) {
      cesm::Layout trial = unc_layout;
      const int delta = predicted_ocn - candidate;
      trial.nodes[cesm::ComponentKind::kOcn] = candidate;
      trial.nodes[cesm::ComponentKind::kAtm] += delta;  // reuse freed nodes
      trial.nodes[cesm::ComponentKind::kIce] += delta;
      if (trial.nodes.at(cesm::ComponentKind::kAtm) < 1 ||
          trial.nodes.at(cesm::ComponentKind::kIce) < 1 ||
          trial.invalid_reason(total)) {
        continue;
      }
      const double prediction = predict_total(trial);
      if (prediction < tuned_prediction) {
        tuned_prediction = prediction;
        tuned = trial;
      }
    }
    const cesm::RunResult tuned_run =
        cesm::run_case(case_config, tuned, unconstrained.seed + 2);
    std::cout << "tuned allocation        : ocn " << predicted_ocn << " -> "
              << tuned.at(cesm::ComponentKind::kOcn) << ", predicted "
              << common::format_fixed(tuned_prediction, 3) << " s, actual "
              << common::format_fixed(tuned_run.model_seconds, 3) << " s\n";

    const double x = total;
    results.add("constrained", x, "pred_total_s", con.predicted_total, "s",
                report::Stability::kDeterministic, "total_nodes");
    results.add("constrained", x, "actual_total_s", con_run.model_seconds,
                "s");
    results.add("constrained", x, "nodes_ocn",
                con.allocation.nodes.at(cesm::ComponentKind::kOcn), "nodes");
    results.add("unconstrained", x, "pred_total_s", unc.predicted_total, "s",
                report::Stability::kDeterministic, "total_nodes");
    results.add("unconstrained", x, "actual_total_s", unc.actual_total, "s");
    results.add("unconstrained", x, "nodes_ocn", predicted_ocn, "nodes");
    results.add("tuned", x, "pred_total_s", tuned_prediction, "s",
                report::Stability::kDeterministic, "total_nodes");
    results.add("tuned", x, "actual_total_s", tuned_run.model_seconds, "s");
    results.add("tuned", x, "nodes_ocn",
                tuned.at(cesm::ComponentKind::kOcn), "nodes");
  }
  return bench::finish(std::move(results), artifact_options);
}
