// Figure 4: predicted scaling of layouts 1-3 at 1-degree resolution from
// the layout-1 fits, plus the experimental layout-1 curve; the paper
// reports R^2 = 1.0 between predicted and experimental layout 1.
#include <iostream>

#include "bench_util.hpp"
#include "hslb/hslb/report.hpp"
#include "hslb/perf/perf_model.hpp"

int main(int argc, char** argv) {
  using namespace hslb;
  const bench::ArtifactOptions artifact_options =
      bench::parse_artifact_args(argc, argv);
  const std::string title =
      "Figure 4 -- layout 1-3 scaling predictions, 1 degree";
  const std::string reference = "Alexeev et al., IPDPSW'14, Fig. 4";
  bench::banner(title, reference);
  report::ResultSet results =
      bench::make_result_set("fig4_layout_prediction", title, reference);

  const cesm::CaseConfig case_config = cesm::one_degree_case();
  core::PipelineConfig base =
      bench::make_config(case_config, 128, bench::one_degree_totals());
  const auto campaign = cesm::gather_benchmarks(
      case_config, base.layout, base.gather_totals, base.seed);

  common::Table series({"nodes", "layout1 pred,s", "layout2 pred,s",
                        "layout3 pred,s", "layout1 exp,s"});
  std::vector<double> predicted_l1;
  std::vector<double> experimental_l1;

  for (const int total : {128, 256, 512, 1024, 2048}) {
    series.add_row();
    series.cell(static_cast<long long>(total));

    double l1_pred = 0.0;
    std::optional<core::Allocation> l1_alloc;
    for (const cesm::LayoutKind kind :
         {cesm::LayoutKind::kHybrid, cesm::LayoutKind::kSequentialGroup,
          cesm::LayoutKind::kFullySequential}) {
      core::PipelineConfig config = base;
      config.total_nodes = total;
      config.layout = kind;
      const core::HslbResult result =
          core::run_hslb_from_samples(config, campaign.samples);
      series.cell(result.predicted_total, 1);
      const char* layout_series =
          kind == cesm::LayoutKind::kHybrid ? "layout1"
          : kind == cesm::LayoutKind::kSequentialGroup ? "layout2"
                                                       : "layout3";
      results.add(layout_series, total, "pred_s", result.predicted_total,
                  "s", report::Stability::kDeterministic, "total_nodes");
      if (kind == cesm::LayoutKind::kHybrid) {
        l1_pred = result.predicted_total;
        l1_alloc = result.allocation;
      }
    }

    // Execute the layout-1 optimum: the experimental series.
    const cesm::RunResult run = cesm::run_case(
        case_config, l1_alloc->as_layout(cesm::LayoutKind::kHybrid),
        base.seed + 1);
    series.cell(run.model_seconds, 1);
    results.add("layout1", total, "exp_s", run.model_seconds, "s");
    predicted_l1.push_back(l1_pred);
    experimental_l1.push_back(run.model_seconds);
  }
  std::cout << '\n' << series;

  const double r2 = perf::r_squared(experimental_l1, predicted_l1);
  std::cout << "\nR^2(predicted, experimental) for layout 1: "
            << common::format_fixed(r2, 4)
            << "   (paper: 1.0)\n";
  std::cout << "Shape check (paper Fig. 4): layouts 1 and 2 similar, "
               "layout 3 clearly the worst at every size.\n";
  results.add_scalar("fit", "r_squared", r2, "");
  return bench::finish(std::move(results), artifact_options);
}
