// LP re-solve microbenchmark: maintained factors vs refactorize-from-scratch.
//
//   $ ./bench_lp_resolve [--out=BENCH_lp.json] [--seed=<n>] [--cases=<n>]
//                        [--steps=<n>] [--repeats=<n>] [--smoke]
//
// Corpus-derived LP re-solve sequences, the exact shape branch-and-bound
// produces: each case lowers a generated scenario to its master LP, then
// replays a deterministic sequence of node-style edits (one integer bound
// tightened per step, a tangent cut appended every third step) and re-solves
// after every edit.  Three arms run the byte-identical sequence:
//
//   warm   sparse engine, parent basis + maintained-factor handoff between
//          consecutive solves (the branch-and-bound configuration),
//   cold   sparse engine, every solve factorizes from scratch,
//   dense  legacy dense engine (refactorizes every pivot; the pre-sparse
//          baseline).
//
// Every arm must report the same status and objective at every step (any
// disagreement exits nonzero), so the speedup is measured between solves
// that provably did the same job.  The artifact (PR 5 schema) carries the
// deterministic pivot/eta/factorization counters plus kTiming cells for the
// wall-clock numbers; in full mode the binary enforces the headline claim --
// geometric-mean warm-vs-cold speedup of at least 2x -- and fails otherwise.
#include <algorithm>
#include <cmath>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "hslb/common/rng.hpp"
#include "hslb/common/table.hpp"
#include "hslb/common/timing.hpp"
#include "hslb/lp/simplex.hpp"
#include "hslb/minlp/relaxation.hpp"
#include "hslb/scen/build.hpp"
#include "hslb/scen/generate.hpp"

namespace {

using namespace hslb;

/// One deterministic node-style edit of the root LP.
struct Step {
  std::ptrdiff_t var = -1;    ///< integer variable to tighten (-1: none)
  double new_upper = 0.0;     ///< its tightened upper bound
  std::ptrdiff_t link = -1;   ///< link to cut (-1: no cut this step)
  double point = 0.0;         ///< tangent point on that link's n variable
};

/// Aggregate counters for one arm over a whole sequence.
struct ArmStats {
  long solves = 0;
  long pivots = 0;
  long phase1_pivots = 0;
  long factorizations = 0;
  long refactorizations = 0;
  long eta_updates = 0;
  long factor_inherits = 0;
  long phase1_skips = 0;
  long infeasible = 0;
  double solve_seconds = 0.0;   ///< summed over the lp solves only
  std::string objective_bits;   ///< concatenated bit patterns, per step
  std::vector<double> objectives;  ///< per-step optima (NaN when infeasible)
};

enum class Arm { kWarm, kCold, kDense };

/// Replay the edit sequence once, accumulating one arm's counters.  The LP
/// built at step t is identical across arms by construction; only how it is
/// solved differs.
ArmStats run_arm(const minlp::Model& model,
                 const std::vector<minlp::Curvature>& curvature,
                 const minlp::CutPool& seeded, const std::vector<Step>& steps,
                 Arm arm) {
  ArmStats out;
  minlp::CutPool pool = seeded;
  const std::size_t n = model.num_vars();
  linalg::Vector root_lower(n);
  linalg::Vector root_upper(n);
  for (std::size_t j = 0; j < n; ++j) {
    root_lower[j] = model.variables()[j].lower;
    root_upper[j] = model.variables()[j].upper;
  }

  lp::SimplexOptions opts;
  opts.engine = arm == Arm::kDense ? lp::LpEngine::kDense : lp::LpEngine::kSparse;
  opts.capture_basis = arm == Arm::kWarm;
  opts.capture_factor = arm == Arm::kWarm;

  lp::Basis warm;
  std::vector<std::uint64_t> warm_keys;
  lp::FactorRef factor;
  std::vector<std::uint64_t> keys;
  std::uint64_t cut_id = 1u << 20;  // clear of the seeded root-tangent ids

  // Step -1 is the root LP; steps 0..T-1 apply one edit each (bounds reset
  // to the root box every step, cuts accumulate like a B&B pool).
  for (std::size_t t = 0; t <= steps.size(); ++t) {
    linalg::Vector lower = root_lower;
    linalg::Vector upper = root_upper;
    if (t > 0) {
      const Step& st = steps[t - 1];
      if (st.link >= 0) {
        (void)pool.add_link_tangent(model, curvature,
                                    static_cast<std::size_t>(st.link),
                                    st.point, cut_id++);
      }
      if (st.var >= 0) {
        upper[static_cast<std::size_t>(st.var)] = st.new_upper;
      }
    }
    const lp::LpProblem master = build_master_lp(
        model, pool, curvature, lower, upper, nullptr, &keys);

    common::WallTimer timer;
    lp::LpSolution sol;
    if (arm == Arm::kWarm) {
      sol = lp::resolve_from_basis(
          master,
          warm.empty() ? lp::Basis{} : lp::map_basis(warm, warm_keys, keys),
          lp::WarmFactor{factor, keys}, opts);
    } else {
      sol = lp::solve(master, opts);
    }
    out.solve_seconds += timer.seconds();

    ++out.solves;
    out.pivots += sol.iterations;
    out.phase1_pivots += sol.phase1_iterations;
    out.factorizations += sol.factorizations;
    out.refactorizations += sol.refactorizations;
    out.eta_updates += sol.eta_updates;
    out.factor_inherits += sol.factor_inherited ? 1 : 0;
    out.phase1_skips += sol.warm_phase1_skipped ? 1 : 0;
    if (sol.status == lp::LpStatus::kOptimal) {
      out.objective_bits += bench::bits(sol.objective) + ',';
      out.objectives.push_back(sol.objective);
      if (arm == Arm::kWarm) {
        if (!sol.basis.empty()) {
          warm = sol.basis;
          warm_keys = keys;
        }
        if (sol.factor != nullptr) {
          factor = sol.factor;
        }
      }
    } else {
      ++out.infeasible;
      out.objective_bits += "inf,";
      out.objectives.push_back(std::nan(""));
    }
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hslb;
  bench::ArtifactOptions artifact_options =
      bench::parse_artifact_args(argc, argv);
  std::string out_path = "BENCH_lp.json";
  std::uint64_t seed = 2014;
  int num_cases = 0;
  int num_steps = 0;
  int repeats = 3;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--out=", 0) == 0) {
      out_path = arg.substr(std::strlen("--out="));
    } else if (arg.rfind("--seed=", 0) == 0) {
      seed = std::stoull(arg.substr(std::strlen("--seed=")));
    } else if (arg.rfind("--cases=", 0) == 0) {
      num_cases = std::stoi(arg.substr(std::strlen("--cases=")));
    } else if (arg.rfind("--steps=", 0) == 0) {
      num_steps = std::stoi(arg.substr(std::strlen("--steps=")));
    } else if (arg.rfind("--repeats=", 0) == 0) {
      repeats = std::stoi(arg.substr(std::strlen("--repeats=")));
    } else if (arg == "--smoke") {
      smoke = true;
    } else {
      std::cerr << "usage: bench_lp_resolve [--out=<file.json>] [--seed=<n>]"
                   " [--cases=<n>] [--steps=<n>] [--repeats=<n>] [--smoke]\n";
      return 2;
    }
  }
  if (num_cases <= 0) {
    num_cases = smoke ? 2 : 6;
  }
  if (num_steps <= 0) {
    num_steps = smoke ? 12 : 48;
  }

  const std::string title =
      "LP re-solve: maintained LU factors vs refactorize-from-scratch";
  const std::string reference =
      "sparse revised simplex with eta updates and parent-factor handoff;"
      " warm re-solves vs cold solves on identical node-edit sequences";
  bench::banner(title, reference);
  if (smoke) {
    std::cout << "[smoke mode: short sequences, timings are not meaningful]\n";
  }

  // --- Corpus-derived cases: small/medium scenario master LPs. --------------
  scen::GenerateOptions gen;
  gen.seed = seed;
  gen.scenarios_per_family = 3;
  std::vector<scen::Scenario> cases;
  for (scen::GeneratedScenario& entry : scen::generate_corpus(gen)) {
    const std::string& name = entry.scenario.name;
    if (name.rfind("small", 0) == 0 || name.rfind("medium", 0) == 0) {
      cases.push_back(std::move(entry.scenario));
    }
    if (cases.size() >= static_cast<std::size_t>(num_cases)) {
      break;
    }
  }

  report::ResultSet artifact =
      bench::make_result_set("lp_resolve", title, reference);
  common::Table table({"case", "rows", "warm ms", "cold ms", "dense ms",
                       "speedup", "warm pivots", "cold pivots", "etas",
                       "inherits"});
  bool identity_ok = true;
  double log_speedup_sum = 0.0;
  double log_dense_speedup_sum = 0.0;
  int measured = 0;

  for (const scen::Scenario& s : cases) {
    scen::ScenarioModelVars vars;
    const minlp::Model model = scen::build_scenario_model(s, &vars);
    const std::vector<minlp::Curvature> curvature =
        minlp::resolve_curvatures(model);

    // Seed the pool the way the solver's root does (initial link tangents).
    minlp::CutPool seeded;
    std::uint64_t seed_id = 0;
    for (std::size_t li = 0; li < model.links().size(); ++li) {
      const minlp::UnivariateLink& link = model.links()[li];
      const double lo = model.variables()[link.n_var].lower;
      const double hi = model.variables()[link.n_var].upper;
      for (int k = 0; k < 5; ++k) {
        const double p = lo + (hi - lo) * (k + 1) / 6.0;
        if (seeded.add_link_tangent(model, curvature, li, p, seed_id)) {
          ++seed_id;
        }
      }
    }

    // Deterministic edit sequence.  Tightenings prefer integer variables
    // that are NOT link arguments so the chord rows -- and with them the
    // factor's row identity -- survive most steps, exactly like SOS/binary
    // branching in the tree; every third step appends a tangent cut, the
    // bordered-adoption shape.
    std::vector<std::size_t> link_vars;
    for (const minlp::UnivariateLink& link : model.links()) {
      link_vars.push_back(link.n_var);
    }
    std::vector<std::size_t> targets;
    std::vector<std::size_t> fallback;
    for (std::size_t j = 0; j < model.num_vars(); ++j) {
      const minlp::Variable& v = model.variables()[j];
      if (v.type == minlp::VarType::kContinuous || v.upper - v.lower < 1.0) {
        continue;
      }
      const bool is_link_var =
          std::find(link_vars.begin(), link_vars.end(), j) != link_vars.end();
      (is_link_var ? fallback : targets).push_back(j);
    }
    if (targets.empty()) {
      targets = fallback;
    }
    // Blocks of four steps share one tightening (the "node"): within a
    // block, consecutive LPs differ only by the appended cut rows, so the
    // bordered factor adoption can engage; the block boundary changes the
    // bounds -- and, for link variables, the chord rows -- forcing a fresh
    // factorization exactly as branching to a sibling subtree does.
    constexpr std::size_t kBlock = 4;
    common::Rng rng(seed ^ (0x9e3779b97f4a7c15ull * (measured + 1)));
    std::vector<Step> steps(static_cast<std::size_t>(num_steps));
    for (std::size_t t = 0; t < steps.size(); ++t) {
      Step& st = steps[t];
      if (!targets.empty()) {
        if (t % kBlock == 0) {
          const std::size_t block = t / kBlock;
          st.var = static_cast<std::ptrdiff_t>(targets[block % targets.size()]);
          const minlp::Variable& v =
              model.variables()[static_cast<std::size_t>(st.var)];
          st.new_upper =
              v.lower + std::floor(rng.uniform(0.0, v.upper - v.lower));
        } else {
          st.var = steps[t - 1].var;
          st.new_upper = steps[t - 1].new_upper;
        }
      }
      if (!model.links().empty() && t % kBlock != 0) {
        st.link = static_cast<std::ptrdiff_t>(t % model.links().size());
        const minlp::UnivariateLink& link =
            model.links()[static_cast<std::size_t>(st.link)];
        const double lo = model.variables()[link.n_var].lower;
        const double hi = model.variables()[link.n_var].upper;
        st.point = rng.uniform(lo + 0.05 * (hi - lo), hi - 0.05 * (hi - lo));
      }
    }

    // Warm-up + repeats: counters from the first replay, min solve time over
    // all replays, bit-stability across replays folded into identity_ok.
    std::cerr << "  case: " << s.name << '\n';
    ArmStats warm;
    ArmStats cold;
    ArmStats dense;
    for (int r = 0; r < repeats; ++r) {
      ArmStats w = run_arm(model, curvature, seeded, steps, Arm::kWarm);
      ArmStats c = run_arm(model, curvature, seeded, steps, Arm::kCold);
      ArmStats d = run_arm(model, curvature, seeded, steps, Arm::kDense);
      if (r == 0) {
        warm = std::move(w);
        cold = std::move(c);
        dense = std::move(d);
      } else {
        identity_ok = identity_ok && w.objective_bits == warm.objective_bits &&
                      c.objective_bits == cold.objective_bits &&
                      d.objective_bits == dense.objective_bits;
        warm.solve_seconds = std::min(warm.solve_seconds, w.solve_seconds);
        cold.solve_seconds = std::min(cold.solve_seconds, c.solve_seconds);
        dense.solve_seconds = std::min(dense.solve_seconds, d.solve_seconds);
      }
    }
    // The three arms must have solved the same sequence to the same optima.
    // Different pivot paths may land on different (degenerate) vertices, so
    // the cross-arm check is a tolerance on the objective, not bit equality;
    // bit equality is enforced within each arm across the repeats above.
    long objective_matches = 0;
    for (std::size_t t = 0; t < warm.objectives.size(); ++t) {
      const double w = warm.objectives[t];
      const double c = t < cold.objectives.size() ? cold.objectives[t]
                                                  : std::nan("");
      const double d = t < dense.objectives.size() ? dense.objectives[t]
                                                   : std::nan("");
      const bool same_feas = std::isnan(w) == std::isnan(c) &&
                             std::isnan(w) == std::isnan(d);
      const double tol = 1e-6 * (1.0 + std::fabs(std::isnan(c) ? 0.0 : c));
      const bool same_opt =
          std::isnan(w) ||
          (std::fabs(w - c) <= tol && std::fabs(d - c) <= tol);
      if (same_feas && same_opt) {
        ++objective_matches;
      } else {
        std::cerr << "OBJECTIVE DIVERGENCE: " << s.name << " step " << t
                  << " warm " << w << " cold " << c << " dense " << d << '\n';
        identity_ok = false;
      }
    }

    const double speedup =
        cold.solve_seconds / std::max(1e-12, warm.solve_seconds);
    const double dense_speedup =
        dense.solve_seconds / std::max(1e-12, warm.solve_seconds);
    log_speedup_sum += std::log(std::max(1e-12, speedup));
    log_dense_speedup_sum += std::log(std::max(1e-12, dense_speedup));
    ++measured;

    const std::size_t rows = model.linear_constraints().size();
    table.add_row();
    table.cell(s.name);
    table.cell(static_cast<long long>(rows));
    table.cell(warm.solve_seconds * 1e3, 2);
    table.cell(cold.solve_seconds * 1e3, 2);
    table.cell(dense.solve_seconds * 1e3, 2);
    table.cell(speedup, 2);
    table.cell(static_cast<long long>(warm.pivots));
    table.cell(static_cast<long long>(cold.pivots));
    table.cell(static_cast<long long>(warm.eta_updates));
    table.cell(static_cast<long long>(warm.factor_inherits));

    artifact.add(s.name, 0.0, "steps", static_cast<double>(warm.solves),
                 "count");
    artifact.add(s.name, 0.0, "warm_pivots",
                 static_cast<double>(warm.pivots), "count");
    artifact.add(s.name, 0.0, "warm_phase1_pivots",
                 static_cast<double>(warm.phase1_pivots), "count");
    artifact.add(s.name, 0.0, "cold_pivots",
                 static_cast<double>(cold.pivots), "count");
    artifact.add(s.name, 0.0, "dense_pivots",
                 static_cast<double>(dense.pivots), "count");
    artifact.add(s.name, 0.0, "warm_factorizations",
                 static_cast<double>(warm.factorizations), "count");
    artifact.add(s.name, 0.0, "warm_refactorizations",
                 static_cast<double>(warm.refactorizations), "count");
    artifact.add(s.name, 0.0, "cold_factorizations",
                 static_cast<double>(cold.factorizations), "count");
    artifact.add(s.name, 0.0, "eta_updates",
                 static_cast<double>(warm.eta_updates), "count");
    artifact.add(s.name, 0.0, "factor_inherits",
                 static_cast<double>(warm.factor_inherits), "count");
    artifact.add(s.name, 0.0, "phase1_skips",
                 static_cast<double>(warm.phase1_skips), "count");
    artifact.add(s.name, 0.0, "infeasible_steps",
                 static_cast<double>(cold.infeasible), "count");
    artifact.add(s.name, 0.0, "objective_matches",
                 static_cast<double>(objective_matches), "count");
    artifact.add(s.name, 0.0, "warm_ms", warm.solve_seconds * 1e3, "ms",
                 report::Stability::kTiming);
    artifact.add(s.name, 0.0, "cold_ms", cold.solve_seconds * 1e3, "ms",
                 report::Stability::kTiming);
    artifact.add(s.name, 0.0, "dense_ms", dense.solve_seconds * 1e3, "ms",
                 report::Stability::kTiming);
    artifact.add(s.name, 0.0, "speedup_warm_vs_cold", speedup, "",
                 report::Stability::kTiming);
    artifact.add(s.name, 0.0, "speedup_warm_vs_dense", dense_speedup, "",
                 report::Stability::kTiming);
  }

  std::cout << table;
  const double geomean =
      measured > 0 ? std::exp(log_speedup_sum / measured) : 0.0;
  const double dense_geomean =
      measured > 0 ? std::exp(log_dense_speedup_sum / measured) : 0.0;
  std::cout << "geomean warm-vs-cold speedup:  "
            << common::format_fixed(geomean, 2) << "x\n"
            << "geomean warm-vs-dense speedup: "
            << common::format_fixed(dense_geomean, 2) << "x\n";
  bool gate_ok = true;
  if (!smoke && geomean < 2.0) {
    std::cerr << "SPEEDUP GATE: geomean warm-vs-cold "
              << common::format_fixed(geomean, 2)
              << "x is below the required 2x\n";
    gate_ok = false;
  }

  artifact.add_scalar("summary", "cases", static_cast<double>(measured),
                      "count");
  artifact.add_scalar("summary", "geomean_speedup_warm_vs_cold", geomean, "",
                      report::Stability::kTiming);
  artifact.add_scalar("summary", "geomean_speedup_warm_vs_dense",
                      dense_geomean, "", report::Stability::kTiming);
  artifact.add_scalar("summary", "smoke", smoke ? 1.0 : 0.0, "count");
  artifact.canonicalize();
  if (!report::write_file(artifact, out_path)) {
    std::cerr << "cannot write " << out_path << '\n';
    return 1;
  }
  std::cout << "JSON written to " << out_path << '\n';
  return bench::finish(std::move(artifact), artifact_options,
                       identity_ok && gate_ok);
}
