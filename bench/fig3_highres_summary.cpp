// Figure 3: 1/8-degree total-time summary -- "human" guess vs HSLB
// prediction vs HSLB actual, across machine sizes (series for the figure).
#include <iostream>

#include "bench_util.hpp"
#include "hslb/hslb/report.hpp"

int main(int argc, char** argv) {
  using namespace hslb;
  const bench::ArtifactOptions artifact_options =
      bench::parse_artifact_args(argc, argv);
  const std::string title = "Figure 3 -- 1/8-degree scaling: human vs HSLB";
  const std::string reference = "Alexeev et al., IPDPSW'14, Fig. 3";
  bench::banner(title, reference);
  report::ResultSet results =
      bench::make_result_set("fig3_highres_summary", title, reference);

  const cesm::CaseConfig case_config = cesm::eighth_degree_case();
  core::PipelineConfig base =
      bench::make_config(case_config, 8192, bench::eighth_degree_totals());
  const auto campaign = cesm::gather_benchmarks(
      case_config, base.layout, base.gather_totals, base.seed);

  common::Table series({"nodes", "human guess,s", "HSLB predicted,s",
                        "HSLB actual,s", "HSLB/human"});
  for (const int total : {8192, 16384, 24576, 32768}) {
    core::PipelineConfig config = base;
    config.total_nodes = total;
    const core::HslbResult hslb =
        core::run_hslb_from_samples(config, campaign.samples);
    const cesm::RunResult run = cesm::run_case(
        case_config, hslb.allocation.as_layout(config.layout),
        config.seed + 1);

    core::ManualTunerConfig manual_config;
    manual_config.total_nodes = total;
    const core::ManualResult manual =
        core::run_manual(case_config, manual_config, campaign.samples);

    series.add_row();
    series.cell(static_cast<long long>(total));
    series.cell(manual.actual_total, 1);
    series.cell(hslb.predicted_total, 1);
    series.cell(run.model_seconds, 1);
    series.cell(run.model_seconds / manual.actual_total, 3);

    results.add("human", total, "actual_total_s", manual.actual_total, "s",
                report::Stability::kDeterministic, "total_nodes");
    results.add("hslb", total, "pred_total_s", hslb.predicted_total, "s",
                report::Stability::kDeterministic, "total_nodes");
    results.add("hslb", total, "actual_total_s", run.model_seconds, "s");
  }
  std::cout << '\n' << series;
  std::cout << "\nShape check (paper Fig. 3): predicted tracks actual "
               "closely; HSLB at or below the human guess, with the gap "
               "widening at scale.\n";
  return bench::finish(std::move(results), artifact_options);
}
