// Parallel branch-and-bound scaling on the Table I layout MINLPs.
//
//   $ ./bench_minlp_parallel [--out=BENCH_minlp.json] [--repeats=<n>]
//                            [--smoke]
//
// For each Table I layout case the harness solves the same model
//   * once with the pre-PR serial configuration
//     {threads=1, epoch_batch=1, warm_start_lp=false} -- the exact classic
//     node loop -- as the baseline, and
//   * with the default parallel configuration at 1 / 2 / 4 / 8 worker
//     threads.
// The parallel runs must be *byte-identical* across thread counts: the
// incumbent point, objective, bound, and every deterministic stats field
// are fingerprinted bit-for-bit and the binary exits nonzero on any
// mismatch.  Speedups (4-thread vs 1-thread, and 1-thread vs the serial
// baseline) are printed and written as JSON for CI artifact upload.
//
// --smoke shrinks the cases and node budgets so CI can run the identity
// check in seconds; timing numbers in smoke mode are not meaningful and the
// speedup fields are reported but not expected to clear any bar.
//
// --corpus=<dir> additionally sweeps one representative scenario per size
// grade from a generated scenario corpus (tools/hslb_scengen) through the
// identical serial/parallel harness, so the scaling story is not limited to
// the four hard-coded Table I layouts.
#include <algorithm>
#include <cstring>
#include <functional>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "hslb/common/table.hpp"
#include "hslb/minlp/branch_and_bound.hpp"
#include "hslb/scen/build.hpp"
#include "hslb/scen/generate.hpp"

namespace {

using namespace hslb;

/// Fits + layout-model spec for one Table I case (mirrors bench_minlp_solver).
struct Setup {
  cesm::CaseConfig case_config = cesm::one_degree_case();
  core::LayoutModelSpec spec;

  Setup(cesm::LayoutKind layout, int total_nodes, bool use_sos) {
    const auto campaign = cesm::gather_benchmarks(
        case_config, layout, std::vector<int>{128, 512, 2048, 8192, 32768},
        2014);
    spec.layout = layout;
    spec.total_nodes = total_nodes;
    spec.min_nodes = case_config.min_nodes;
    spec.use_sos = use_sos;
    for (const cesm::ComponentKind kind : cesm::kModeledComponents) {
      const cesm::Series series = cesm::series_for(campaign.samples, kind);
      spec.perf[kind] = perf::fit(series.nodes, series.seconds).model;
    }
    spec.atm_allowed = case_config.atm_allowed;
    spec.ocn_allowed = case_config.ocn_allowed;
  }
};

struct CaseSpec {
  std::string name;
  cesm::LayoutKind layout = cesm::LayoutKind::kHybrid;
  int total_nodes = 0;
  bool sos_branching = true;  ///< false: the paper's slow binary-branching mode
};

struct Run {
  int threads = 0;
  double seconds = 0.0;  ///< best-of-repeats solver wall time
  minlp::MinlpResult result;
};

int g_epoch_batch = 0;   ///< 0: solver default
int g_warm_start = -1;   ///< -1: solver default

minlp::SolverOptions parallel_options(int threads, bool smoke) {
  minlp::SolverOptions options;
  options.threads = threads;
  if (g_epoch_batch > 0) {
    options.epoch_batch = g_epoch_batch;
  }
  if (g_warm_start >= 0) {
    options.warm_start_lp = g_warm_start != 0;
  }
  if (smoke) {
    options.max_nodes = 4000;
  }
  return options;
}

minlp::SolverOptions serial_baseline_options(bool smoke) {
  minlp::SolverOptions options = parallel_options(1, smoke);
  options.epoch_batch = 1;
  options.warm_start_lp = false;
  return options;
}

/// Each repeat rebuilds the model through `make_model` so model construction
/// cost never leaks into the solver timing and no state carries over.
Run timed_solve(const std::function<minlp::Model()>& make_model,
                const minlp::SolverOptions& options, int repeats) {
  Run run;
  run.threads = options.threads;
  run.seconds = 1e300;
  for (int r = 0; r < repeats; ++r) {
    const minlp::Model model = make_model();
    minlp::MinlpResult result = minlp::solve(model, options);
    run.seconds = std::min(run.seconds, result.stats.wall_seconds);
    if (r == 0) {
      run.result = std::move(result);
    } else if (bench::result_fingerprint(result) !=
               bench::result_fingerprint(run.result)) {
      // Repeat-to-repeat nondeterminism is just as fatal as thread-count
      // dependence; flag it through the same channel.
      run.result.status = minlp::MinlpStatus::kInfeasible;
    }
  }
  return run;
}

struct CaseResult {
  CaseSpec spec;
  double serial_seconds = 0.0;
  long serial_nodes = 0;
  double serial_objective = 0.0;
  std::vector<Run> runs;  ///< parallel config at 1 / 2 / 4 / 8 threads
  bool byte_identical = true;
  bool matches_serial = true;  ///< same optimum as the serial baseline
  double speedup_4_vs_1 = 0.0;
  double one_thread_vs_serial = 0.0;  ///< > 1: parallel config at 1 thread wins
};

/// One case into the unified artifact: the serial baseline sits at x = 0,
/// the parallel configuration at x = threads.  Wall-clock-derived metrics
/// carry Stability::kTiming; search statistics and objectives are
/// deterministic (per smoke/full configuration).
void record_case(report::ResultSet* results, const CaseResult& c) {
  const std::string& series = c.spec.name;
  results->add(series, 0.0, "solve_ms", c.serial_seconds * 1e3, "ms",
               report::Stability::kTiming, "threads");
  results->add(series, 0.0, "bb_nodes", static_cast<double>(c.serial_nodes),
               "count");
  results->add(series, 0.0, "objective_s", c.serial_objective, "s");
  results->add(series, 0.0, "speedup_4_vs_1", c.speedup_4_vs_1, "",
               report::Stability::kTiming);
  results->add(series, 0.0, "one_thread_vs_serial", c.one_thread_vs_serial,
               "", report::Stability::kTiming);
  results->add(series, 0.0, "byte_identical", c.byte_identical ? 1.0 : 0.0,
               "count");
  results->add(series, 0.0, "matches_serial", c.matches_serial ? 1.0 : 0.0,
               "count");
  for (const Run& r : c.runs) {
    const minlp::SolveStats& s = r.result.stats;
    const double x = r.threads;
    results->add(series, x, "solve_ms", r.seconds * 1e3, "ms",
                 report::Stability::kTiming);
    results->add(series, x, "nodes_per_s",
                 static_cast<double>(s.nodes_explored) /
                     std::max(1e-12, r.seconds),
                 "1/s", report::Stability::kTiming);
    results->add(series, x, "bb_nodes",
                 static_cast<double>(s.nodes_explored), "count");
    results->add(series, x, "epochs", static_cast<double>(s.epochs),
                 "count");
    results->add(series, x, "lp_solves", static_cast<double>(s.lp_solves),
                 "count");
    results->add(series, x, "warm_lp_solves",
                 static_cast<double>(s.warm_lp_solves), "count");
    results->add(series, x, "warm_phase1_skips",
                 static_cast<double>(s.warm_phase1_skips), "count");
    // Per-node LP phase breakdown: where the LP time goes (factor / eta
    // update / pivot loop, wall-clock) and the deterministic event counts
    // behind it, so the maintained-factor speedup is attributable.
    results->add(series, x, "lp_ms", s.lp_seconds * 1e3, "ms",
                 report::Stability::kTiming);
    results->add(series, x, "lp_factor_ms", s.lp_factor_seconds * 1e3, "ms",
                 report::Stability::kTiming);
    results->add(series, x, "lp_update_ms", s.lp_update_seconds * 1e3, "ms",
                 report::Stability::kTiming);
    results->add(series, x, "lp_pivot_ms", s.lp_pivot_seconds * 1e3, "ms",
                 report::Stability::kTiming);
    results->add(series, x, "lp_factorizations",
                 static_cast<double>(s.lp_factorizations), "count");
    results->add(series, x, "lp_refactorizations",
                 static_cast<double>(s.lp_refactorizations), "count");
    results->add(series, x, "lp_eta_updates",
                 static_cast<double>(s.lp_eta_updates), "count");
    results->add(series, x, "lp_bound_flips",
                 static_cast<double>(s.lp_bound_flips), "count");
    results->add(series, x, "lp_factor_inherits",
                 static_cast<double>(s.lp_factor_inherits), "count");
    results->add(series, x, "lp_bt_fallbacks",
                 static_cast<double>(s.lp_bt_fallbacks), "count");
    results->add(series, x, "objective_s", r.result.objective, "s");
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hslb;
  bench::ArtifactOptions artifact_options =
      bench::parse_artifact_args(argc, argv);
  std::string out_path = "BENCH_minlp.json";
  std::string corpus_dir;
  int repeats = 3;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--out=", 0) == 0) {
      out_path = arg.substr(std::strlen("--out="));
    } else if (arg.rfind("--repeats=", 0) == 0) {
      repeats = std::stoi(arg.substr(std::strlen("--repeats=")));
    } else if (arg == "--smoke") {
      smoke = true;
    } else if (arg.rfind("--corpus=", 0) == 0) {
      corpus_dir = arg.substr(std::strlen("--corpus="));
    } else if (arg.rfind("--epoch-batch=", 0) == 0) {
      g_epoch_batch = std::stoi(arg.substr(std::strlen("--epoch-batch=")));
    } else if (arg.rfind("--warm=", 0) == 0) {
      g_warm_start = std::stoi(arg.substr(std::strlen("--warm=")));
    } else {
      std::cerr << "usage: bench_minlp_parallel [--out=<file.json>]"
                   " [--repeats=<n>] [--smoke] [--corpus=<dir>]\n";
      return 2;
    }
  }

  const std::string title =
      "Parallel branch-and-bound scaling (Table I layout MINLPs)";
  // The prose cell carried by the artifact.  Speedups at or below 1.0x on
  // the quick Table I layouts are expected, not a regression: those trees
  // are solved in milliseconds, too shallow to amortize epoch
  // synchronization -- the scaling story lives in the hardest case and in
  // the large corpus scenarios.
  const std::string reference =
      "deterministic epoch-parallel solver; hardware-dependent; speedups "
      "<= 1.0x on the quick Table I cases are expected (trees too shallow "
      "to amortize epoch batching)";
  bench::banner(title, reference);
  std::cout << "hardware threads: " << std::thread::hardware_concurrency()
            << (smoke ? "  [smoke mode: tiny node budgets, timings are"
                        " not meaningful]"
                      : "")
            << '\n';

  // The three Figure 1 / Table I layouts, plus the hybrid layout under
  // individual-binary branching -- the mode the paper reports as two orders
  // of magnitude slower, and therefore the hardest (most node-rich) case.
  const int big = smoke ? 512 : 40960;
  const int binary_total = smoke ? 128 : 2048;
  struct BenchCase {
    CaseSpec spec;
    std::function<minlp::Model()> make_model;
  };
  std::vector<BenchCase> bench_cases;
  for (const CaseSpec& spec : std::vector<CaseSpec>{
           {"hybrid", cesm::LayoutKind::kHybrid, big, true},
           {"sequential_group", cesm::LayoutKind::kSequentialGroup, big, true},
           {"fully_sequential", cesm::LayoutKind::kFullySequential, big, true},
           {"hybrid_binary", cesm::LayoutKind::kHybrid, binary_total, false},
       }) {
    const Setup setup(spec.layout, spec.total_nodes, /*use_sos=*/true);
    bench_cases.push_back({spec, [model_spec = setup.spec] {
                             return core::build_layout_model(model_spec,
                                                             nullptr);
                           }});
  }
  if (!corpus_dir.empty()) {
    const auto loaded = scen::load_corpus(corpus_dir);
    if (!loaded.has_value()) {
      std::cerr << "cannot load corpus: " << loaded.error().path << ": "
                << loaded.error().message << '\n';
      return 2;
    }
    // One representative scenario per size grade: the first (filename-
    // sorted, hence deterministic) bracket scenario carrying each grade
    // prefix.  Planted scenarios are skipped -- they are separable and
    // fully sequential by construction, with per-node LP costs an order of
    // magnitude above the DAG-structured ones.
    for (const char* grade : {"small_", "medium_", "large_"}) {
      for (const scen::Scenario& scenario : *loaded) {
        if (scenario.name.rfind(grade, 0) != 0 ||
            scenario.expect.optimum.has_value()) {
          continue;
        }
        CaseSpec spec;
        spec.name = "corpus/" + scenario.name;
        bench_cases.push_back({spec, [scenario] {
                                 scen::ScenarioModelVars vars;
                                 return scen::build_scenario_model(scenario,
                                                                   &vars);
                               }});
        break;
      }
    }
  }
  const std::vector<int> thread_counts = {1, 2, 4, 8};

  bool all_identical = true;
  std::vector<CaseResult> results;
  for (const BenchCase& bench_case : bench_cases) {
    const CaseSpec& spec = bench_case.spec;
    CaseResult cr;
    cr.spec = spec;

    minlp::SolverOptions serial = serial_baseline_options(smoke);
    serial.use_sos_branching = spec.sos_branching;
    // Warm-up solve so the first timed run does not pay first-touch costs.
    (void)minlp::solve(bench_case.make_model(),
                       parallel_options(1, /*smoke=*/true));
    std::cerr << "  " << spec.name << ": serial baseline\n";
    const Run serial_run = timed_solve(bench_case.make_model, serial, repeats);
    cr.serial_seconds = serial_run.seconds;
    cr.serial_nodes = serial_run.result.stats.nodes_explored;
    cr.serial_objective = serial_run.result.objective;

    std::string reference;
    for (const int threads : thread_counts) {
      std::cerr << "  " << spec.name << ": " << threads << " thread(s)\n";
      minlp::SolverOptions options = parallel_options(threads, smoke);
      options.use_sos_branching = spec.sos_branching;
      Run run = timed_solve(bench_case.make_model, options, repeats);
      const std::string fp = bench::result_fingerprint(run.result);
      if (reference.empty()) {
        reference = fp;
      } else if (fp != reference) {
        cr.byte_identical = false;
      }
      cr.runs.push_back(std::move(run));
    }

    // The answer (not the search path) must also agree with the serial
    // baseline: same status and the same optimum.  Tolerance, not bit,
    // comparison: the parallel config searches a different tree (epoch
    // batches, warm-started vertices), so it may return a different point
    // of the same quality -- any solver run only promises the optimum to
    // rel_gap.  Bit-identity is required, and checked above, across thread
    // counts within the one configuration.
    const double serial_obj = serial_run.result.objective;
    const double parallel_obj = cr.runs[0].result.objective;
    cr.matches_serial =
        serial_run.result.status == cr.runs[0].result.status &&
        std::fabs(parallel_obj - serial_obj) <=
            1e-6 * std::max(1.0, std::fabs(serial_obj));

    cr.speedup_4_vs_1 = cr.runs[0].seconds / std::max(1e-12, cr.runs[2].seconds);
    cr.one_thread_vs_serial =
        cr.serial_seconds / std::max(1e-12, cr.runs[0].seconds);
    all_identical = all_identical && cr.byte_identical && cr.matches_serial;
    results.push_back(std::move(cr));
  }

  common::Table table({"case", "threads", "time,ms", "nodes", "nodes/s",
                       "warm LPs", "phase-1 skips", "speedup"});
  for (const CaseResult& c : results) {
    table.add_row();
    table.cell(c.spec.name);
    table.cell(std::string("serial"));
    table.cell(c.serial_seconds * 1e3, 2);
    table.cell(static_cast<long long>(c.serial_nodes));
    table.cell(static_cast<double>(c.serial_nodes) /
                   std::max(1e-12, c.serial_seconds),
               0);
    table.cell(0LL);
    table.cell(0LL);
    table.cell(1.0, 2);
    for (const Run& r : c.runs) {
      table.add_row();
      table.cell(std::string(""));
      table.cell(static_cast<long long>(r.threads));
      table.cell(r.seconds * 1e3, 2);
      table.cell(static_cast<long long>(r.result.stats.nodes_explored));
      table.cell(static_cast<double>(r.result.stats.nodes_explored) /
                     std::max(1e-12, r.seconds),
                 0);
      table.cell(static_cast<long long>(r.result.stats.warm_lp_solves));
      table.cell(static_cast<long long>(r.result.stats.warm_phase1_skips));
      table.cell(c.runs[0].seconds / std::max(1e-12, r.seconds), 2);
    }
  }
  std::cout << table;

  // The hardest case (longest serial solve) carries the headline speedup.
  const CaseResult* hardest = &results[0];
  for (const CaseResult& c : results) {
    if (c.serial_seconds > hardest->serial_seconds) {
      hardest = &c;
    }
  }
  std::cout << "hardest case: " << hardest->spec.name << " -- 4-thread speedup "
            << common::format_fixed(hardest->speedup_4_vs_1, 2)
            << "x over 1 thread; 1-thread parallel config runs at "
            << common::format_fixed(100.0 * hardest->one_thread_vs_serial, 1)
            << " % of the serial baseline's pace\n"
            << "byte-identical across 1/2/4/8 threads and vs the serial "
               "baseline: "
            << (all_identical ? "yes" : "NO") << '\n';
  if (!smoke && hardest->speedup_4_vs_1 < 2.0) {
    std::cout << "warning: 4-thread speedup below 2x on the hardest case"
                 " (shared or small machine?)\n";
  }
  std::cout << "note: speedups <= 1.0x on the quick Table I cases are"
               " expected -- those trees are solved in milliseconds and are"
               " too shallow to amortize epoch synchronization\n";

  report::ResultSet artifact =
      bench::make_result_set("minlp_parallel", title, reference);
  for (const CaseResult& c : results) {
    record_case(&artifact, c);
  }
  artifact.add_scalar("summary", "hardware_threads",
                      std::thread::hardware_concurrency(), "count",
                      report::Stability::kTiming);
  artifact.add_scalar("summary", "smoke", smoke ? 1.0 : 0.0, "count");
  artifact.add_scalar("summary", "hardest_speedup_4_vs_1",
                      hardest->speedup_4_vs_1, "",
                      report::Stability::kTiming);
  artifact.add_scalar("summary", "byte_identical",
                      all_identical ? 1.0 : 0.0, "count");
  artifact.canonicalize();
  if (!report::write_file(artifact, out_path)) {
    std::cerr << "cannot write " << out_path << '\n';
    return 1;
  }
  std::cout << "JSON written to " << out_path << '\n';
  return bench::finish(std::move(artifact), artifact_options, all_identical);
}
