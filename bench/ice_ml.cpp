// Section IV-A + reference [10]: the sea-ice decomposition study.
//
// The paper traces the noisy CICE scaling curve to the default choice among
// seven decomposition strategies and announces a machine-learning companion
// method for choosing them.  This bench reproduces that storyline:
//   1. the default-decomposition ice curve is lumpy and fits poorly,
//   2. the learned per-count strategy choice smooths it,
//   3. feeding the policy into the full HSLB pipeline tightens the ice fit
//      and the end-to-end result.
#include <iostream>

#include "bench_util.hpp"
#include "hslb/cesm/ice_tuner.hpp"
#include "hslb/hslb/report.hpp"

int main(int argc, char** argv) {
  using namespace hslb;
  const bench::ArtifactOptions artifact_options =
      bench::parse_artifact_args(argc, argv);
  const std::string title =
      "Section IV-A / ref. [10] -- ML sea-ice decomposition tuning";
  const std::string reference = "Alexeev et al., IPDPSW'14, section IV-A";
  bench::banner(title, reference);
  report::ResultSet results =
      bench::make_result_set("ice_ml", title, reference);

  const cesm::CaseConfig case_config = cesm::one_degree_case();
  const cesm::Component& ice =
      case_config.component(cesm::ComponentKind::kIce);

  cesm::IceTunerOptions tuner_options;
  tuner_options.max_nodes = 2048;
  const auto training = cesm::gather_ice_training(ice, tuner_options);
  const cesm::IceDecompositionTuner tuner(training);
  std::cout << "\ntraining set: " << training.size() << " benchmark runs ("
            << cesm::kNumIceDecompositions << " strategies x "
            << tuner_options.counts << " counts x " << tuner_options.repeats
            << " repeats)\n";

  // --- Per-count comparison: default vs learned strategy. --------------------
  std::cout << "\nIce run time, default vs learned decomposition:\n";
  common::Table per_count({"nodes", "default strat", "default,s",
                           "learned strat", "learned,s", "gain,%"});
  double default_total = 0.0;
  double tuned_total = 0.0;
  for (int n = 16; n <= 2048; n *= 2) {
    const auto chosen = tuner.best_for(n);
    const double t_default = ice.true_time(n);
    const double t_tuned = ice.true_time_with(n, static_cast<int>(chosen));
    default_total += t_default;
    tuned_total += t_tuned;
    per_count.add_row();
    per_count.cell(static_cast<long long>(n));
    per_count.cell(static_cast<long long>(
        static_cast<int>(cesm::default_ice_decomposition(n))));
    per_count.cell(t_default, 3);
    per_count.cell(static_cast<long long>(static_cast<int>(chosen)));
    per_count.cell(t_tuned, 3);
    per_count.cell(100.0 * (1.0 - t_tuned / t_default), 1);
    results.add("default", n, "ice_s", t_default, "s",
                report::Stability::kDeterministic, "nodes");
    results.add("learned", n, "ice_s", t_tuned, "s",
                report::Stability::kDeterministic, "nodes");
  }
  std::cout << per_count;
  std::cout << "aggregate ice time reduction: "
            << common::format_fixed(
                   100.0 * (1.0 - tuned_total / default_total), 1)
            << " %\n";
  results.add_scalar("summary", "aggregate_gain_pct",
                     100.0 * (1.0 - tuned_total / default_total), "%");

  // --- Fit-quality effect (the paper's actual complaint). --------------------
  std::cout << "\nTable II fit quality of the ice curve:\n";
  std::vector<double> nodes;
  std::vector<double> default_times;
  std::vector<double> tuned_times;
  for (int n = 12; n <= 2048; n = static_cast<int>(n * 1.5) + 1) {
    nodes.push_back(n);
    default_times.push_back(ice.true_time(n));
    tuned_times.push_back(
        ice.true_time_with(n, static_cast<int>(tuner.best_for(n))));
  }
  const auto fit_default = perf::fit(nodes, default_times);
  const auto fit_tuned = perf::fit(nodes, tuned_times);
  common::Table fit_table({"curve", "R^2", "RMSE,s"});
  fit_table.add_row();
  fit_table.cell(std::string("default decompositions"));
  fit_table.cell(fit_default.r_squared, 5);
  fit_table.cell(fit_default.rmse, 3);
  fit_table.add_row();
  fit_table.cell(std::string("ML-tuned decompositions"));
  fit_table.cell(fit_tuned.r_squared, 5);
  fit_table.cell(fit_tuned.rmse, 3);
  std::cout << fit_table;
  results.add_scalar("fit_default", "r_squared", fit_default.r_squared, "");
  results.add_scalar("fit_default", "rmse_s", fit_default.rmse, "s");
  results.add_scalar("fit_learned", "r_squared", fit_tuned.r_squared, "");
  results.add_scalar("fit_learned", "rmse_s", fit_tuned.rmse, "s");

  // --- End-to-end pipeline effect. --------------------------------------------
  std::cout << "\nEnd-to-end HSLB at 128 nodes, with and without the learned "
               "policy:\n";
  common::Table e2e({"pipeline", "ice R^2", "predicted T,s", "actual T,s"});
  for (const bool tuned : {false, true}) {
    core::PipelineConfig config =
        bench::make_config(case_config, 128, bench::one_degree_totals());
    config.tune_ice_decomposition = tuned;
    const core::HslbResult result = core::run_hslb(config);
    e2e.add_row();
    e2e.cell(std::string(tuned ? "ML-tuned ice" : "default ice"));
    e2e.cell(result.fits.at(cesm::ComponentKind::kIce).r_squared, 5);
    e2e.cell(result.predicted_total, 3);
    e2e.cell(result.actual_total, 3);
    const std::string series = tuned ? "e2e_tuned" : "e2e_default";
    results.add_scalar(series, "ice_r_squared",
                       result.fits.at(cesm::ComponentKind::kIce).r_squared,
                       "");
    results.add_scalar(series, "pred_total_s", result.predicted_total, "s");
    results.add_scalar(series, "actual_total_s", result.actual_total, "s");
  }
  std::cout << e2e;
  std::cout << "\nShape check (paper IV-A): the default decompositions "
               "'increased the noise in the sea ice performance curve fit "
               "and impacted the timing estimates'; the learned policy "
               "removes most of that noise.\n";
  return bench::finish(std::move(results), artifact_options);
}
