// Online rebalancing horizon bench: the drift-tracking control loop vs the
// paper's static offline allocation, and warm vs cold in-loop re-solves.
//
//   $ ./bench_rebal_horizon [--out=BENCH_rebal.json] [--seed=<n>]
//                           [--horizon=<n>] [--smoke]
//
// One scenario with scripted drift (slow exponential trends, two step regime
// shifts, lognormal observation noise) is replayed over a long horizon by
// three arms:
//
//   static  solve once at step 0, never rebalance (the paper's offline HSLB
//           measured under drift),
//   warm    the full control loop; re-solves re-enter branch-and-bound from
//           the previous incumbent, root basis, and factor snapshot,
//   cold    the same loop with every re-solve starting from scratch.
//
// Every arm runs twice and must produce a byte-identical replay fingerprint
// (the in-binary determinism gate).  The loop arms must beat the static arm
// on cumulative core-hours, warm must not do more deterministic solver work
// (simplex pivots) than cold -- and in full mode must also win on re-solve
// wall time -- and the detector's fires are scored against the scripted
// regime-shift ground truth with precision and recall gated at 0.5.  The
// artifact (PR 5 schema) carries every deterministic counter plus kTiming
// cells for the wall-clock numbers.
#include <cmath>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "hslb/common/table.hpp"
#include "hslb/rebal/loop.hpp"
#include "hslb/scen/parse.hpp"

namespace {

using namespace hslb;

/// The bench scenario: eight pow-family components on a 192-node machine
/// with scripted drift -- large enough that each re-solve does real
/// branch-and-bound work, so the warm-vs-cold wall-time comparison measures
/// the solver and not fixed per-solve overhead.  atm slowly grows and jumps
/// 1.6x at ~35% of the horizon; ocn slowly shrinks and collapses to 0.55x
/// at ~70%; ice and wav are noise-only; the rest are clean.  The shift
/// steps scale with the horizon so smoke runs keep both regime shifts.
std::string scenario_text(long horizon) {
  const long shift1 = horizon * 35 / 100;
  const long shift2 = horizon * 70 / 100;
  std::string text = R"(# drift-tracking control loop bench scenario
scenario rebal_drift
machine nodes=192 cores_per_node=8 mem_gb_per_node=64
component atm curve=pow a=16000 b=0.09 c=1.2 d=10
component ocn curve=pow a=10000 b=0.09 c=1.1 d=8
component ice curve=pow a=3200 b=0.05 c=1 d=4
component lnd curve=pow a=1200 b=0.03 c=1 d=2
component rof curve=pow a=700 b=0.03 c=1 d=2
component glc curve=pow a=900 b=0.04 c=1 d=3
component wav curve=pow a=1500 b=0.05 c=1.05 d=3
component cpl curve=pow a=500 b=0.03 c=1 d=1
comm atm ocn 0.02
comm ocn wav 0.01
schedule ocn | wav | (ice | lnd | rof | glc | cpl) -> atm
)";
  text += "drift atm rate=0.00008 noise=0.02 shifts=" +
          std::to_string(shift1) + ":1.6\n";
  text += "drift ocn rate=-0.0001 noise=0.02 shifts=" +
          std::to_string(shift2) + ":0.55\n";
  text += "drift ice noise=0.015\n";
  text += "drift wav noise=0.015\n";
  return text;
}

rebal::LoopOptions arm_options(std::uint64_t seed, long horizon,
                               bool rebalance, bool warm) {
  rebal::LoopOptions options;
  options.seed = seed;
  options.horizon = horizon;
  options.rebalance = rebalance;
  options.warm = warm;
  // Eight components dilute the FLI of a single-component change: the
  // 0.55x downward shift on ocn lands near 0.06, so the default 0.15
  // trigger would sleep through it.  0.05/0.02 keeps a comfortable margin
  // over the 0.02 noise floor (windowed noise sigma ~0.005) while staying
  // above the slow drift's accumulation between rebalances (~0.035).
  options.detector.fire_threshold = 0.05;
  options.detector.clear_threshold = 0.02;
  return options;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hslb;
  bench::ArtifactOptions artifact_options =
      bench::parse_artifact_args(argc, argv);
  std::string out_path = "BENCH_rebal.json";
  std::uint64_t seed = 2026;
  long horizon = 0;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--out=", 0) == 0) {
      out_path = arg.substr(std::strlen("--out="));
    } else if (arg.rfind("--seed=", 0) == 0) {
      seed = std::stoull(arg.substr(std::strlen("--seed=")));
    } else if (arg.rfind("--horizon=", 0) == 0) {
      horizon = std::stol(arg.substr(std::strlen("--horizon=")));
    } else if (arg == "--smoke") {
      smoke = true;
    } else {
      std::cerr << "usage: bench_rebal_horizon [--out=<file.json>]"
                   " [--seed=<n>] [--horizon=<n>] [--smoke]\n";
      return 2;
    }
  }
  if (horizon <= 0) {
    horizon = smoke ? 240 : 1200;
  }

  const std::string title =
      "Online rebalancing: drift-tracking loop vs static allocation";
  const std::string reference =
      "closed control loop (imbalance detector + incremental re-fit + warm"
      " re-solve) vs the offline HSLB allocation under scripted drift";
  bench::banner(title, reference);
  if (smoke) {
    std::cout << "[smoke mode: short horizon, timings are not meaningful]\n";
  }

  const scen::Scenario scenario = scen::parse_scenario(scenario_text(horizon));
  const rebal::DriftSimulator ground_truth(scenario, seed);
  const std::vector<long> shift_steps = ground_truth.shift_steps();

  struct ArmSpec {
    const char* name;
    bool rebalance;
    bool warm;
  };
  const ArmSpec arms[] = {
      {"static", false, false}, {"warm", true, true}, {"cold", true, false}};

  // Every arm replays its horizon several times: all replays must agree on
  // the fingerprint (the byte-identity gate), and the resolve wall time
  // keeps the minimum across replays — wall clock is the only run-to-run
  // variation, and the minimum is the noise-robust estimate the full-mode
  // warm-vs-cold timing gate compares.  Replays are interleaved across the
  // arms (static, warm, cold, static, warm, cold, ...) rather than run
  // back-to-back per arm, so no arm systematically enjoys a warmer process
  // (allocator, caches, CPU boost) than another.  Smoke keeps two rounds
  // (identity only); full mode adds more so a scheduler hiccup cannot flip
  // the timing comparison.
  const int replays = smoke ? 2 : 6;
  bool identity_ok = true;
  std::vector<rebal::HorizonResult> results;
  for (int rep = 0; rep < replays; ++rep) {
    for (std::size_t i = 0; i < 3; ++i) {
      const ArmSpec& arm = arms[i];
      const rebal::LoopOptions options =
          arm_options(seed, horizon, arm.rebalance, arm.warm);
      if (rep == 0) {
        std::cerr << "  arm: " << arm.name << '\n';
        results.push_back(rebal::run_horizon(scenario, options));
        continue;
      }
      const rebal::HorizonResult again = rebal::run_horizon(scenario, options);
      if (results[i].replay_fingerprint != again.replay_fingerprint) {
        std::cerr << "REPLAY BREAK: arm " << arm.name << " fingerprints "
                  << results[i].replay_fingerprint << " vs "
                  << again.replay_fingerprint << '\n';
        identity_ok = false;
      }
      results[i].resolve_wall_seconds = std::min(
          results[i].resolve_wall_seconds, again.resolve_wall_seconds);
    }
  }
  const rebal::HorizonResult& arm_static = results[0];
  const rebal::HorizonResult& arm_warm = results[1];
  const rebal::HorizonResult& arm_cold = results[2];

  // Detector scoring against the scripted shifts: a fire within the window
  // (fill + sustain + slack) after a shift is a true positive.
  const rebal::LoopOptions scoring = arm_options(seed, horizon, true, true);
  const long match_window =
      scoring.detector.window + scoring.detector.sustain + 30;
  const rebal::DetectorScore score =
      rebal::score_detector(arm_warm.fire_steps, shift_steps, match_window);

  report::ResultSet artifact =
      bench::make_result_set("rebal_horizon", title, reference);
  common::Table table({"arm", "core-hours", "vs static", "fires", "rebal",
                       "fallbacks", "nodes", "pivots", "resolve ms"});
  for (std::size_t i = 0; i < results.size(); ++i) {
    const rebal::HorizonResult& r = results[i];
    const std::string name = arms[i].name;
    const double savings_pct =
        100.0 * (arm_static.core_hours - r.core_hours) /
        arm_static.core_hours;
    table.add_row();
    table.cell(name);
    table.cell(r.core_hours, 1);
    table.cell(common::format_fixed(savings_pct, 2) + "%");
    table.cell(static_cast<long long>(r.detector_fires));
    table.cell(static_cast<long long>(r.rebalances));
    table.cell(static_cast<long long>(r.heuristic_fallbacks));
    table.cell(static_cast<long long>(r.resolve_nodes));
    table.cell(static_cast<long long>(r.resolve_simplex_iterations));
    table.cell(r.resolve_wall_seconds * 1e3, 2);

    artifact.add(name, 0.0, "core_hours", r.core_hours, "core-h");
    artifact.add(name, 0.0, "step_seconds_sum", r.step_seconds_sum, "s");
    artifact.add(name, 0.0, "overhead_core_hours", r.overhead_core_hours,
                 "core-h");
    artifact.add(name, 0.0, "savings_vs_static_pct", savings_pct, "%");
    artifact.add(name, 0.0, "detector_fires",
                 static_cast<double>(r.detector_fires), "count");
    artifact.add(name, 0.0, "rebalances", static_cast<double>(r.rebalances),
                 "count");
    artifact.add(name, 0.0, "heuristic_fallbacks",
                 static_cast<double>(r.heuristic_fallbacks), "count");
    artifact.add(name, 0.0, "regime_shifts_flagged",
                 static_cast<double>(r.regime_shifts_flagged), "count");
    artifact.add(name, 0.0, "resolve_nodes",
                 static_cast<double>(r.resolve_nodes), "count");
    artifact.add(name, 0.0, "resolve_lp_solves",
                 static_cast<double>(r.resolve_lp_solves), "count");
    artifact.add(name, 0.0, "resolve_simplex_iterations",
                 static_cast<double>(r.resolve_simplex_iterations), "count");
    artifact.add(name, 0.0, "resolve_factor_inherits",
                 static_cast<double>(r.resolve_factor_inherits), "count");
    artifact.add(name, 0.0, "resolve_warm_primes",
                 static_cast<double>(r.resolve_warm_primes), "count");
    artifact.add(name, 0.0, "resolve_ms", r.resolve_wall_seconds * 1e3, "ms",
                 report::Stability::kTiming);
  }
  std::cout << table;
  std::cout << "replay fingerprints: static " << arm_static.replay_fingerprint
            << "  warm " << arm_warm.replay_fingerprint << "  cold "
            << arm_cold.replay_fingerprint << '\n';
  std::cout << "detector: " << score.true_positives << " TP, "
            << score.false_positives << " FP, " << score.false_negatives
            << " FN  (precision " << common::format_fixed(score.precision, 2)
            << ", recall " << common::format_fixed(score.recall, 2)
            << " over " << shift_steps.size() << " scripted shifts)\n";

  // --- Gates ----------------------------------------------------------------
  bool gate_ok = true;
  const auto require = [&gate_ok](bool ok, const std::string& what) {
    if (!ok) {
      std::cerr << "GATE: " << what << '\n';
      gate_ok = false;
    }
  };
  require(arm_warm.core_hours < arm_static.core_hours,
          "warm loop must beat the static allocation on core-hours");
  require(arm_cold.core_hours < arm_static.core_hours,
          "cold loop must beat the static allocation on core-hours");
  require(arm_warm.rebalances >= 2,
          "warm loop must rebalance at least twice (two scripted shifts)");
  require(arm_warm.resolve_simplex_iterations <=
              arm_cold.resolve_simplex_iterations,
          "warm re-solves must not pivot more than cold (deterministic"
          " proxy)");
  require(score.precision >= 0.5, "detector precision must be >= 0.5");
  require(score.recall >= 0.5, "detector recall must be >= 0.5");
  const double warm_speedup =
      arm_cold.resolve_wall_seconds /
      std::max(1e-12, arm_warm.resolve_wall_seconds);
  if (!smoke) {
    require(arm_warm.resolve_wall_seconds < arm_cold.resolve_wall_seconds,
            "warm re-solves must beat cold on wall time (full mode)");
  }
  std::cout << "warm-vs-cold re-solve speedup: "
            << common::format_fixed(warm_speedup, 2) << "x ("
            << (smoke ? "not gated in smoke mode" : "gated > 1x") << ")\n";

  artifact.add_scalar("detector", "true_positives",
                      static_cast<double>(score.true_positives), "count");
  artifact.add_scalar("detector", "false_positives",
                      static_cast<double>(score.false_positives), "count");
  artifact.add_scalar("detector", "false_negatives",
                      static_cast<double>(score.false_negatives), "count");
  artifact.add_scalar("detector", "precision", score.precision, "");
  artifact.add_scalar("detector", "recall", score.recall, "");
  artifact.add_scalar("summary", "horizon", static_cast<double>(horizon),
                      "steps");
  artifact.add_scalar("summary", "scripted_shifts",
                      static_cast<double>(shift_steps.size()), "count");
  artifact.add_scalar("summary", "core_hours_saved_vs_static",
                      arm_static.core_hours - arm_warm.core_hours, "core-h");
  artifact.add_scalar("summary", "warm_vs_cold_resolve_speedup", warm_speedup,
                      "", report::Stability::kTiming);
  artifact.add_scalar("summary", "smoke", smoke ? 1.0 : 0.0, "count");
  artifact.canonicalize();
  if (!report::write_file(artifact, out_path)) {
    std::cerr << "cannot write " << out_path << '\n';
    return 1;
  }
  std::cout << "JSON written to " << out_path << '\n';
  return bench::finish(std::move(artifact), artifact_options,
                       identity_ok && gate_ok);
}
