// Shared helpers for the paper-reproduction benchmark binaries.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>

#include "hslb/cesm/configs.hpp"
#include "hslb/hslb/manual_tuner.hpp"
#include "hslb/hslb/pipeline.hpp"
#include "hslb/minlp/branch_and_bound.hpp"
#include "hslb/report/result_set.hpp"

namespace hslb::bench {

/// A double's bit pattern as 16 hex digits -- the unit of bit-exact
/// identity checks (byte-identical across thread counts means equal
/// *patterns*, not merely equal within tolerance).
inline std::string bits(double value) {
  std::uint64_t u = 0;
  static_assert(sizeof(u) == sizeof(value));
  std::memcpy(&u, &value, sizeof(u));
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(u));
  return buf;
}

/// Bit-exact fingerprint of everything deterministic in a MinlpResult: the
/// incumbent point, objective, bound, and all stats except the wall-time
/// fields.  Two parallel runs at different thread counts must produce the
/// same string (shared by bench_minlp_parallel and bench_scen_corpus).
inline std::string result_fingerprint(const minlp::MinlpResult& r) {
  std::string out;
  out += std::to_string(static_cast<int>(r.status));
  out += '|' + bits(r.objective);
  out += '|' + bits(r.stats.best_bound);
  out += "|x:";
  for (std::size_t i = 0; i < r.x.size(); ++i) {
    out += bits(r.x[i]) + ',';
  }
  const minlp::SolveStats& s = r.stats;
  for (const long v :
       {static_cast<long>(s.presolve_tightenings), s.nodes_explored,
        s.lp_solves, s.nlp_solves, s.cuts_added, s.simplex_iterations,
        s.incumbent_updates, s.pruned_by_bound, s.pruned_infeasible, s.epochs,
        s.warm_lp_solves, s.warm_phase1_skips, s.warm_simplex_iterations,
        s.cold_simplex_iterations, s.lp_factorizations, s.lp_refactorizations,
        s.lp_eta_updates, s.lp_bound_flips, s.lp_bt_fallbacks,
        s.lp_factor_inherits}) {
    out += '|' + std::to_string(v);
  }
  return out;
}

/// Solution-level fingerprint: the answer only (status, objective, bound,
/// incumbent point), without the search counters.  For comparing
/// configurations that legitimately count work differently -- e.g. the
/// sparse vs dense simplex engines, which factorize and pivot on different
/// schedules but must land on the same tree and the same answer.
inline std::string solution_fingerprint(const minlp::MinlpResult& r) {
  std::string out;
  out += std::to_string(static_cast<int>(r.status));
  out += '|' + bits(r.objective);
  out += '|' + bits(r.stats.best_bound);
  out += "|x:";
  for (std::size_t i = 0; i < r.x.size(); ++i) {
    out += bits(r.x[i]) + ',';
  }
  out += '|' + std::to_string(r.stats.nodes_explored);
  return out;
}

inline void banner(const std::string& title, const std::string& reference) {
  std::cout << "\n==============================================================\n"
            << title << "\n"
            << "reproduces: " << reference << "\n"
            << "==============================================================\n";
}

/// The gather campaign sizes used throughout the paper's experiments.
inline std::vector<int> one_degree_totals() {
  return {128, 256, 512, 1024, 2048};
}

inline std::vector<int> eighth_degree_totals() {
  return {4096, 8192, 16384, 24576, 32768};
}

/// Standard pipeline config for a case at a target size.
inline core::PipelineConfig make_config(const cesm::CaseConfig& case_config,
                                        int total_nodes,
                                        std::vector<int> gather_totals) {
  core::PipelineConfig config;
  config.case_config = case_config;
  config.total_nodes = total_nodes;
  config.gather_totals = std::move(gather_totals);
  return config;
}

// ---------------------------------------------------------------------------
// Structured artifact emission (the results pipeline, DESIGN.md section 10).
//
// Every bench binary records the numbers it prints into a report::ResultSet
// and finishes through bench::finish().  Stdout stays byte-identical to the
// artifact-free output: all artifact status goes to stderr.

/// Flags every bench binary understands:
///   --json-out=<path>            write the ResultSet artifact to <path>
///   --expect-fingerprint=<hex>   exit nonzero unless the run's
///                                deterministic fingerprint matches
struct ArtifactOptions {
  std::string json_out;
  std::string expect_fingerprint;
};

/// Strip the shared artifact flags out of argv (compacting in place and
/// shrinking argc) so binaries with their own flag parsing -- the
/// google-benchmark ones included -- never see them.
inline ArtifactOptions parse_artifact_args(int& argc, char** argv) {
  ArtifactOptions options;
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--json-out=", 0) == 0) {
      options.json_out = arg.substr(std::strlen("--json-out="));
    } else if (arg.rfind("--expect-fingerprint=", 0) == 0) {
      options.expect_fingerprint =
          arg.substr(std::strlen("--expect-fingerprint="));
    } else {
      argv[kept++] = argv[i];
    }
  }
  argc = kept;
  return options;
}

/// Start a ResultSet carrying the same title/reference as the banner.
inline report::ResultSet make_result_set(const std::string& bench_id,
                                         const std::string& title,
                                         const std::string& reference) {
  report::ResultSet set;
  set.bench = bench_id;
  set.title = title;
  set.reference = reference;
  return set;
}

/// Final step of every bench main: write the artifact when requested, check
/// the optional fingerprint pin, and fold in the binary's own identity
/// verdict (byte-identity across thread counts, cached-vs-fresh equality,
/// ...).  Any break exits nonzero so CI cannot greenwash a bad run.
inline int finish(report::ResultSet set, const ArtifactOptions& options,
                  bool identity_ok = true) {
  set.canonicalize();
  const std::string fingerprint = set.fingerprint();
  if (!options.json_out.empty()) {
    if (!report::write_file(set, options.json_out)) {
      std::cerr << "cannot write artifact " << options.json_out << '\n';
      return 1;
    }
    std::cerr << "artifact: " << options.json_out << " (fingerprint "
              << fingerprint << ")\n";
  }
  bool ok = identity_ok;
  if (!options.expect_fingerprint.empty() &&
      options.expect_fingerprint != fingerprint) {
    std::cerr << "FINGERPRINT BREAK: expected " << options.expect_fingerprint
              << ", this run produced " << fingerprint << '\n';
    ok = false;
  }
  if (!identity_ok) {
    std::cerr << "IDENTITY BREAK: internal cross-check failed\n";
  }
  return ok ? 0 : 1;
}

}  // namespace hslb::bench
