// Shared helpers for the paper-reproduction benchmark binaries.
#pragma once

#include <iostream>
#include <string>

#include "hslb/cesm/configs.hpp"
#include "hslb/hslb/manual_tuner.hpp"
#include "hslb/hslb/pipeline.hpp"

namespace hslb::bench {

inline void banner(const std::string& title, const std::string& reference) {
  std::cout << "\n==============================================================\n"
            << title << "\n"
            << "reproduces: " << reference << "\n"
            << "==============================================================\n";
}

/// The gather campaign sizes used throughout the paper's experiments.
inline std::vector<int> one_degree_totals() {
  return {128, 256, 512, 1024, 2048};
}

inline std::vector<int> eighth_degree_totals() {
  return {4096, 8192, 16384, 24576, 32768};
}

/// Standard pipeline config for a case at a target size.
inline core::PipelineConfig make_config(const cesm::CaseConfig& case_config,
                                        int total_nodes,
                                        std::vector<int> gather_totals) {
  core::PipelineConfig config;
  config.case_config = case_config;
  config.total_nodes = total_nodes;
  config.gather_totals = std::move(gather_totals);
  return config;
}

}  // namespace hslb::bench
