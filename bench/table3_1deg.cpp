// Table III, 1-degree blocks: manual vs HSLB (predicted and actual) node
// allocations and timings at 128 and 2048 nodes (the paper also ran 256,
// 512, 1024; all five are reproduced).
#include <iostream>

#include "bench_util.hpp"
#include "hslb/hslb/report.hpp"

int main(int argc, char** argv) {
  using namespace hslb;
  const bench::ArtifactOptions artifact_options =
      bench::parse_artifact_args(argc, argv);
  const std::string title = "Table III -- 1-degree resolution, manual vs HSLB";
  const std::string reference =
      "Alexeev et al., IPDPSW'14, Table III (rows 1-2)";
  bench::banner(title, reference);
  report::ResultSet results =
      bench::make_result_set("table3_1deg", title, reference);

  const cesm::CaseConfig case_config = cesm::one_degree_case();

  // One shared gather campaign (both the expert and HSLB read it, exactly
  // as in the paper where the same benchmark data served both).
  core::PipelineConfig base =
      bench::make_config(case_config, 128, bench::one_degree_totals());
  const auto campaign = cesm::gather_benchmarks(
      case_config, base.layout, base.gather_totals, base.seed);

  for (const int total : {128, 256, 512, 1024, 2048}) {
    core::PipelineConfig config = base;
    config.total_nodes = total;
    core::HslbResult hslb = core::run_hslb_from_samples(config,
                                                        campaign.samples);
    // Execute step (run_hslb_from_samples skips it).
    const cesm::Layout layout = hslb.allocation.as_layout(config.layout);
    hslb.run = cesm::run_case(case_config, layout, config.seed + 1);
    for (const cesm::ComponentKind kind : cesm::kModeledComponents) {
      hslb.components[kind].actual_seconds =
          hslb.run.component_seconds.at(kind);
    }
    hslb.actual_total = hslb.run.model_seconds;

    core::ManualTunerConfig manual_config;
    manual_config.total_nodes = total;
    const core::ManualResult manual =
        core::run_manual(case_config, manual_config, campaign.samples);

    std::cout << "\n--- 1-degree resolution, " << total << " nodes ---\n"
              << core::render_table3_block(manual, hslb);
    const double ratio = hslb.actual_total / manual.actual_total;
    std::cout << "HSLB actual / manual actual = "
              << common::format_fixed(ratio, 3)
              << "   (paper: very close to 1 at this resolution)\n";
    std::cout << "solver: " << hslb.solver_result.stats.nodes_explored
              << " B&B nodes, " << hslb.solver_result.stats.lp_solves
              << " LPs, "
              << common::format_fixed(
                     hslb.solver_result.stats.wall_seconds * 1e3, 1)
              << " ms\n";

    const double x = total;
    results.add("manual", x, "est_total_s", manual.estimated_total, "s",
                report::Stability::kDeterministic, "total_nodes");
    results.add("manual", x, "actual_total_s", manual.actual_total, "s");
    results.add("hslb", x, "pred_total_s", hslb.predicted_total, "s",
                report::Stability::kDeterministic, "total_nodes");
    results.add("hslb", x, "actual_total_s", hslb.actual_total, "s");
    for (const cesm::ComponentKind kind : cesm::kModeledComponents) {
      const std::string name = cesm::to_string(kind);
      results.add("manual", x, "nodes_" + name,
                  manual.nodes.at(kind), "nodes");
      results.add("manual", x, name + "_s", manual.actual_seconds.at(kind),
                  "s");
      results.add("hslb", x, "nodes_" + name,
                  hslb.components.at(kind).nodes, "nodes");
      results.add("hslb", x, name + "_s",
                  hslb.components.at(kind).actual_seconds, "s");
      results.add("hslb", x, name + "_pred_s",
                  hslb.components.at(kind).predicted_seconds, "s");
    }
    results.add("hslb", x, "solver_bb_nodes",
                static_cast<double>(hslb.solver_result.stats.nodes_explored),
                "count");
    results.add("hslb", x, "solver_lp_solves",
                static_cast<double>(hslb.solver_result.stats.lp_solves),
                "count");
    results.add("hslb", x, "solver_wall_ms",
                hslb.solver_result.stats.wall_seconds * 1e3, "ms",
                report::Stability::kTiming);
  }
  return bench::finish(std::move(results), artifact_options);
}
