// Table III, 1-degree blocks: manual vs HSLB (predicted and actual) node
// allocations and timings at 128 and 2048 nodes (the paper also ran 256,
// 512, 1024; all five are reproduced).
#include <iostream>

#include "bench_util.hpp"
#include "hslb/hslb/report.hpp"

int main() {
  using namespace hslb;
  bench::banner("Table III -- 1-degree resolution, manual vs HSLB",
                "Alexeev et al., IPDPSW'14, Table III (rows 1-2)");

  const cesm::CaseConfig case_config = cesm::one_degree_case();

  // One shared gather campaign (both the expert and HSLB read it, exactly
  // as in the paper where the same benchmark data served both).
  core::PipelineConfig base =
      bench::make_config(case_config, 128, bench::one_degree_totals());
  const auto campaign = cesm::gather_benchmarks(
      case_config, base.layout, base.gather_totals, base.seed);

  for (const int total : {128, 256, 512, 1024, 2048}) {
    core::PipelineConfig config = base;
    config.total_nodes = total;
    core::HslbResult hslb = core::run_hslb_from_samples(config,
                                                        campaign.samples);
    // Execute step (run_hslb_from_samples skips it).
    const cesm::Layout layout = hslb.allocation.as_layout(config.layout);
    hslb.run = cesm::run_case(case_config, layout, config.seed + 1);
    for (const cesm::ComponentKind kind : cesm::kModeledComponents) {
      hslb.components[kind].actual_seconds =
          hslb.run.component_seconds.at(kind);
    }
    hslb.actual_total = hslb.run.model_seconds;

    core::ManualTunerConfig manual_config;
    manual_config.total_nodes = total;
    const core::ManualResult manual =
        core::run_manual(case_config, manual_config, campaign.samples);

    std::cout << "\n--- 1-degree resolution, " << total << " nodes ---\n"
              << core::render_table3_block(manual, hslb);
    const double ratio = hslb.actual_total / manual.actual_total;
    std::cout << "HSLB actual / manual actual = "
              << common::format_fixed(ratio, 3)
              << "   (paper: very close to 1 at this resolution)\n";
    std::cout << "solver: " << hslb.solver_result.stats.nodes_explored
              << " B&B nodes, " << hslb.solver_result.stats.lp_solves
              << " LPs, "
              << common::format_fixed(
                     hslb.solver_result.stats.wall_seconds * 1e3, 1)
              << " ms\n";
  }
  return 0;
}
