// Section III-D objective ablation (equations (1)-(3)): min-max vs max-min
// vs min-sum.  The paper: min-max performed slightly better than max-min
// and both much better than min-sum, which is "out of consideration".
#include <iostream>

#include "bench_util.hpp"
#include "hslb/hslb/objectives.hpp"
#include "hslb/hslb/report.hpp"

int main(int argc, char** argv) {
  using namespace hslb;
  const bench::ArtifactOptions artifact_options =
      bench::parse_artifact_args(argc, argv);
  const std::string title =
      "Section III-D -- objective function ablation (eqs. 1-3)";
  const std::string reference = "Alexeev et al., IPDPSW'14, section III-D";
  bench::banner(title, reference);
  report::ResultSet results =
      bench::make_result_set("objectives", title, reference);

  const cesm::CaseConfig case_config = cesm::one_degree_case();
  core::PipelineConfig base =
      bench::make_config(case_config, 128, bench::one_degree_totals());
  const auto campaign = cesm::gather_benchmarks(
      case_config, base.layout, base.gather_totals, base.seed);

  common::Table table({"nodes", "objective", "predicted T,s", "actual T,s",
                       "imbalance", "ice/lnd gap,s"});
  for (const int total : {128, 512, 2048}) {
    for (const core::Objective objective :
         {core::Objective::kMinMax, core::Objective::kMaxMin,
          core::Objective::kMinSum}) {
      core::PipelineConfig config = base;
      config.total_nodes = total;
      config.objective = objective;
      // The ablation compares objectives, not allocation sets: drop the
      // sets so all three objectives solve the same unrestricted problem.
      // (For max-min this also matters computationally -- maximizing the
      // minimum time is a concave maximization over the links, which outer
      // approximation cannot bound, so the tree is pure interval
      // refinement; cap it and take the best incumbent.)
      config.constrain_ocean = false;
      config.constrain_atm = false;
      config.solver.max_nodes = 20000;
      config.solver.rel_gap = 1e-4;
      const core::HslbResult result =
          core::run_hslb_from_samples(config, campaign.samples);
      const cesm::RunResult run = cesm::run_case(
          case_config, result.allocation.as_layout(config.layout),
          config.seed + 1);
      std::map<cesm::ComponentKind, double> actual;
      for (const cesm::ComponentKind kind : cesm::kModeledComponents) {
        actual[kind] = run.component_seconds.at(kind);
      }
      const core::BalanceMetrics metrics = core::evaluate_balance(
          config.layout, result.allocation.nodes, actual);

      table.add_row();
      table.cell(static_cast<long long>(total));
      table.cell(std::string(to_string(objective)));
      table.cell(result.predicted_total, 2);
      table.cell(run.model_seconds, 2);
      table.cell(metrics.imbalance, 2);
      table.cell(metrics.icelnd_gap, 2);

      const char* series = objective == core::Objective::kMinMax ? "minmax"
                           : objective == core::Objective::kMaxMin
                               ? "maxmin"
                               : "minsum";
      results.add(series, total, "pred_s", result.predicted_total, "s",
                  report::Stability::kDeterministic, "total_nodes");
      results.add(series, total, "actual_s", run.model_seconds, "s");
      results.add(series, total, "imbalance", metrics.imbalance, "");
      results.add(series, total, "icelnd_gap_s", metrics.icelnd_gap, "s");
    }
  }
  std::cout << '\n' << table;
  std::cout << "\nShape check (paper): min-max gives the best total time at "
               "every size; the alternatives trail it (the paper used "
               "min-max for this reason and calls min-sum 'out of "
               "consideration').\n";
  return bench::finish(std::move(results), artifact_options);
}
