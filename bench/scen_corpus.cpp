// Corpus-driven solver sweep over generated scenarios (DESIGN.md section 14).
//
//   $ ./bench_scen_corpus [--corpus=<dir>] [--out=BENCH_scen.json]
//                         [--seed=<n>] [--per-family=<n>] [--limit=<n>]
//                         [--repeats=<n>] [--smoke]
//
// Two sweeps over a scenario corpus (loaded from --corpus, else generated
// in-memory from the seed -- byte-identical to what tools/hslb_scengen
// writes):
//
//   1. Accuracy: every small/medium-family scenario (up to --limit per
//      family) is lowered onto the MINLP form and solved; the result must
//      land on the planted optimum, or inside the certified
//      [bound, incumbent] bracket, recorded at generation time.  Scenarios
//      the NLP-BB solver accepts (convex, no allowed sets) are solved a
//      second time through minlp::solve_nlp_bb against the same
//      expectation.  Any miss fails the binary.
//
//   2. Scaling: the node-richest large-family scenarios run at 1 / 2 / 4 /
//      8 solver threads.  Incumbent, objective, bound, and deterministic
//      stats must be byte-identical across thread counts (bit-for-bit
//      fingerprints; any mismatch exits nonzero).  The runs use a node
//      budget, never a wall-clock budget, so the search is identical no
//      matter how fast the machine is.  4-thread speedup is recorded per
//      scenario; in full mode a best speedup below 1.5x prints a warning
//      (shared machine?), in smoke mode timings are not meaningful.
//
// The artifact (PR 5 schema) carries deterministic cells (objectives,
// node counts, expectation verdicts) plus kTiming cells for wall-clock
// numbers, so CI's run-twice fingerprint gate covers the whole sweep.
#include <algorithm>
#include <cmath>
#include <cstring>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "hslb/common/table.hpp"
#include "hslb/minlp/branch_and_bound.hpp"
#include "hslb/minlp/nlp_bb.hpp"
#include "hslb/scen/build.hpp"
#include "hslb/scen/generate.hpp"

namespace {

using namespace hslb;

/// "large_hetero_memcomm_7" -> "large_hetero_memcomm".
std::string family_of(const std::string& scenario_name) {
  const std::size_t pos = scenario_name.find_last_of('_');
  return pos == std::string::npos ? scenario_name : scenario_name.substr(0, pos);
}

/// Did the solve land where the generator said it must?  Planted optima are
/// matched to the solver's own relative gap; brackets are one-sided checks
/// against the certified bound and incumbent.
bool within_expectation(const scen::Scenario& s,
                        const minlp::MinlpResult& result) {
  if (result.status != minlp::MinlpStatus::kOptimal) {
    return false;
  }
  if (s.expect.optimum.has_value()) {
    const double opt = *s.expect.optimum;
    return std::fabs(result.objective - opt) <= 1e-6 * std::max(1.0, opt);
  }
  if (s.expect.bound.has_value() && s.expect.incumbent.has_value()) {
    const double slack = 1e-6 * std::max(1.0, *s.expect.incumbent);
    return result.objective >= *s.expect.bound - slack &&
           result.objective <= *s.expect.incumbent + slack;
  }
  return false;  // every corpus scenario must carry an expectation
}

struct AccuracyRow {
  std::string family;
  int checked = 0;
  int ok = 0;
  int nlp_bb_checked = 0;
  int nlp_bb_ok = 0;
  double worst_gap = 0.0;  ///< max |objective - expectation anchor| seen
};

struct ScalingRun {
  int threads = 0;
  double seconds = 0.0;
  minlp::MinlpResult result;
};

struct ScalingCase {
  std::string name;
  std::size_t components = 0;
  std::vector<ScalingRun> runs;
  bool byte_identical = true;
  double speedup_4_vs_1 = 0.0;
};

minlp::MinlpResult solve_scenario(const scen::Scenario& s,
                                  const minlp::SolverOptions& options) {
  scen::ScenarioModelVars vars;
  const minlp::Model model = scen::build_scenario_model(s, &vars);
  return minlp::solve(model, options);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hslb;
  bench::ArtifactOptions artifact_options =
      bench::parse_artifact_args(argc, argv);
  std::string out_path = "BENCH_scen.json";
  std::string corpus_dir;
  std::uint64_t seed = 2014;
  int per_family = 0;  // 0: smoke-dependent default below
  int limit = 0;       // accuracy scenarios per family; 0: default below
  int repeats = 1;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--out=", 0) == 0) {
      out_path = arg.substr(std::strlen("--out="));
    } else if (arg.rfind("--corpus=", 0) == 0) {
      corpus_dir = arg.substr(std::strlen("--corpus="));
    } else if (arg.rfind("--seed=", 0) == 0) {
      seed = std::stoull(arg.substr(std::strlen("--seed=")));
    } else if (arg.rfind("--per-family=", 0) == 0) {
      per_family = std::stoi(arg.substr(std::strlen("--per-family=")));
    } else if (arg.rfind("--limit=", 0) == 0) {
      limit = std::stoi(arg.substr(std::strlen("--limit=")));
    } else if (arg.rfind("--repeats=", 0) == 0) {
      repeats = std::stoi(arg.substr(std::strlen("--repeats=")));
    } else if (arg == "--smoke") {
      smoke = true;
    } else {
      std::cerr << "usage: bench_scen_corpus [--corpus=<dir>]"
                   " [--out=<file.json>] [--seed=<n>] [--per-family=<n>]"
                   " [--limit=<n>] [--repeats=<n>] [--smoke]\n";
      return 2;
    }
  }
  if (limit <= 0) {
    limit = smoke ? 2 : 6;
  }

  const std::string title = "Scenario corpus solve sweep (DSL-lowered MINLPs)";
  const std::string reference =
      "generated corpus with planted optima / certified brackets;"
      " byte-identical across 1/2/4/8 threads";
  bench::banner(title, reference);

  // --- Assemble the corpus -------------------------------------------------
  std::vector<scen::Scenario> scenarios;
  if (!corpus_dir.empty()) {
    const auto loaded = scen::load_corpus(corpus_dir);
    if (!loaded.has_value()) {
      std::cerr << "cannot load corpus: " << loaded.error().path << ": "
                << loaded.error().message << '\n';
      return 2;
    }
    scenarios = *loaded;
    std::cout << "corpus: " << corpus_dir << " (" << scenarios.size()
              << " scenarios)\n";
  } else {
    scen::GenerateOptions gen;
    gen.seed = seed;
    gen.scenarios_per_family = per_family > 0 ? per_family : (smoke ? 3 : 18);
    for (scen::GeneratedScenario& entry : scen::generate_corpus(gen)) {
      scenarios.push_back(std::move(entry.scenario));
    }
    std::cout << "corpus: generated in-memory, seed " << seed << " ("
              << scenarios.size() << " scenarios)\n";
  }
  if (smoke) {
    std::cout << "[smoke mode: small accuracy slice, tiny node budgets,"
                 " timings are not meaningful]\n";
  }

  // --- Sweep 1: accuracy against planted optima / certified brackets ------
  // Small families always; medium too in full mode (their solves take
  // seconds, not milliseconds).
  std::vector<AccuracyRow> rows;
  auto row_for = [&rows](const std::string& family) -> AccuracyRow& {
    for (AccuracyRow& row : rows) {
      if (row.family == family) {
        return row;
      }
    }
    rows.push_back({family, 0, 0, 0, 0, 0.0});
    return rows.back();
  };
  report::ResultSet artifact =
      bench::make_result_set("scen_corpus", title, reference);
  minlp::SolverOptions accuracy_options;
  accuracy_options.threads = 1;
  accuracy_options.max_wall_seconds = smoke ? 10.0 : 60.0;
  bool accuracy_ok = true;
  for (const scen::Scenario& s : scenarios) {
    const std::string family = family_of(s.name);
    const bool graded_in = family.rfind("small", 0) == 0 ||
                           (!smoke && family.rfind("medium", 0) == 0);
    if (!graded_in) {
      continue;
    }
    AccuracyRow& row = row_for(family);
    if (row.checked >= limit) {
      continue;
    }
    const double x = row.checked;
    std::cerr << "  accuracy: " << s.name << '\n';
    const minlp::MinlpResult result = solve_scenario(s, accuracy_options);
    const bool ok = within_expectation(s, result);
    const double anchor = s.expect.optimum.has_value() ? *s.expect.optimum
                                                       : *s.expect.incumbent;
    row.checked += 1;
    row.ok += ok ? 1 : 0;
    row.worst_gap =
        std::max(row.worst_gap, std::fabs(result.objective - anchor));
    artifact.add(family, x, "objective_s", result.objective, "s");
    artifact.add(family, x, "within_expectation", ok ? 1.0 : 0.0, "count");
    artifact.add(family, x, "planted", s.expect.optimum.has_value() ? 1.0 : 0.0,
                 "count");
    artifact.add(family, x, "solve_ms", result.stats.wall_seconds * 1e3, "ms",
                 report::Stability::kTiming);
    if (scen::nlp_bb_eligible(s)) {
      scen::ScenarioModelVars vars;
      const minlp::Model model = scen::build_scenario_model(s, &vars);
      const minlp::MinlpResult nb = minlp::solve_nlp_bb(model);
      const bool nb_ok = within_expectation(s, nb);
      row.nlp_bb_checked += 1;
      row.nlp_bb_ok += nb_ok ? 1 : 0;
      artifact.add(family, x, "nlp_bb_within", nb_ok ? 1.0 : 0.0, "count");
      accuracy_ok = accuracy_ok && nb_ok;
      if (!nb_ok) {
        std::cerr << "ACCURACY MISS (nlp_bb): " << s.name << " objective "
                  << nb.objective << " vs expectation anchor " << anchor
                  << '\n';
      }
    }
    accuracy_ok = accuracy_ok && ok;
    if (!ok) {
      std::cerr << "ACCURACY MISS: " << s.name << " status "
                << minlp::to_string(result.status) << " objective "
                << result.objective << " vs expectation anchor " << anchor
                << '\n';
    }
  }

  common::Table accuracy_table(
      {"family", "checked", "on target", "nlp-bb checked", "nlp-bb on target",
       "worst gap,s"});
  int total_checked = 0;
  int total_nlp_bb = 0;
  for (const AccuracyRow& row : rows) {
    accuracy_table.add_row();
    accuracy_table.cell(row.family);
    accuracy_table.cell(static_cast<long long>(row.checked));
    accuracy_table.cell(static_cast<long long>(row.ok));
    accuracy_table.cell(static_cast<long long>(row.nlp_bb_checked));
    accuracy_table.cell(static_cast<long long>(row.nlp_bb_ok));
    accuracy_table.cell(row.worst_gap, 6);
    total_checked += row.checked;
    total_nlp_bb += row.nlp_bb_checked;
  }
  std::cout << accuracy_table;
  std::cout << "accuracy: " << total_checked << " scenario(s) checked, "
            << total_nlp_bb << " also through nlp_bb -- "
            << (accuracy_ok ? "all on target" : "MISSES (see stderr)") << '\n';

  // --- Sweep 2: thread scaling on the node-richest large scenarios --------
  // Planted scenarios are deliberately separable and fully sequential -- the
  // paper's hardest layout shape, with per-node LP costs an order of
  // magnitude above the DAG-structured ones -- so the scaling sweep takes
  // the bracket (non-planted) scenarios, richest first.
  std::vector<const scen::Scenario*> large;
  for (const scen::Scenario& s : scenarios) {
    if (family_of(s.name).rfind("large", 0) == 0 &&
        !s.expect.optimum.has_value()) {
      large.push_back(&s);
    }
  }
  if (large.empty()) {
    for (const scen::Scenario& s : scenarios) {
      if (family_of(s.name).rfind("large", 0) == 0) {
        large.push_back(&s);
      }
    }
  }
  std::stable_sort(large.begin(), large.end(),
                   [](const scen::Scenario* a, const scen::Scenario* b) {
                     return a->components.size() > b->components.size();
                   });
  const std::size_t scaling_count =
      std::min<std::size_t>(large.size(), smoke ? 1 : 3);
  const std::vector<int> thread_counts = {1, 2, 4, 8};
  bool all_identical = true;
  double best_speedup = 0.0;
  std::vector<ScalingCase> scaling;
  for (std::size_t i = 0; i < scaling_count; ++i) {
    const scen::Scenario& s = *large[i];
    ScalingCase sc;
    sc.name = s.name;
    sc.components = s.components.size();
    // A *node* budget, never a wall-clock one: the search must be a pure
    // function of the model and options so fingerprints can be compared
    // across thread counts.
    minlp::SolverOptions base;
    base.max_nodes = smoke ? 300 : 8000;
    {
      // Warm-up so the first timed run does not pay first-touch costs; a
      // short solve is enough to fault in the solver's working set.
      minlp::SolverOptions warm = base;
      warm.max_nodes = 200;
      (void)solve_scenario(s, warm);
    }
    std::string reference_fp;
    for (const int threads : thread_counts) {
      std::cerr << "  " << s.name << ": " << threads << " thread(s)\n";
      minlp::SolverOptions options = base;
      options.threads = threads;
      ScalingRun run;
      run.threads = threads;
      run.seconds = 1e300;
      for (int r = 0; r < repeats; ++r) {
        minlp::MinlpResult result = solve_scenario(s, options);
        run.seconds = std::min(run.seconds, result.stats.wall_seconds);
        if (r == 0) {
          run.result = std::move(result);
        } else if (bench::result_fingerprint(result) !=
                   bench::result_fingerprint(run.result)) {
          sc.byte_identical = false;
        }
      }
      const std::string fp = bench::result_fingerprint(run.result);
      if (reference_fp.empty()) {
        reference_fp = fp;
      } else if (fp != reference_fp) {
        sc.byte_identical = false;
      }
      sc.runs.push_back(std::move(run));
    }
    sc.speedup_4_vs_1 = sc.runs[0].seconds / std::max(1e-12, sc.runs[2].seconds);
    best_speedup = std::max(best_speedup, sc.speedup_4_vs_1);
    all_identical = all_identical && sc.byte_identical;
    scaling.push_back(std::move(sc));
  }

  common::Table scaling_table(
      {"scenario", "components", "threads", "time,ms", "nodes", "speedup"});
  for (const ScalingCase& sc : scaling) {
    for (const ScalingRun& run : sc.runs) {
      scaling_table.add_row();
      scaling_table.cell(run.threads == 1 ? sc.name : std::string(""));
      scaling_table.cell(static_cast<long long>(sc.components));
      scaling_table.cell(static_cast<long long>(run.threads));
      scaling_table.cell(run.seconds * 1e3, 2);
      scaling_table.cell(
          static_cast<long long>(run.result.stats.nodes_explored));
      scaling_table.cell(sc.runs[0].seconds / std::max(1e-12, run.seconds), 2);
    }
    const std::string series = "scaling/" + sc.name;
    for (const ScalingRun& run : sc.runs) {
      artifact.add(series, run.threads, "solve_ms", run.seconds * 1e3, "ms",
                   report::Stability::kTiming, "threads");
      artifact.add(series, run.threads, "bb_nodes",
                   static_cast<double>(run.result.stats.nodes_explored),
                   "count");
      artifact.add(series, run.threads, "objective_s", run.result.objective,
                   "s");
    }
    artifact.add(series, 0.0, "byte_identical", sc.byte_identical ? 1.0 : 0.0,
                 "count");
    artifact.add(series, 0.0, "speedup_4_vs_1", sc.speedup_4_vs_1, "",
                 report::Stability::kTiming);
  }
  std::cout << scaling_table;
  std::cout << "byte-identical across 1/2/4/8 threads: "
            << (all_identical ? "yes" : "NO") << '\n'
            << "best 4-thread speedup on a large scenario: "
            << common::format_fixed(best_speedup, 2) << "x\n";
  if (!smoke && best_speedup < 1.5) {
    std::cout << "warning: best 4-thread speedup below 1.5x"
                 " (shared or small machine?)\n";
  }

  artifact.add_scalar("summary", "scenarios",
                      static_cast<double>(scenarios.size()), "count");
  artifact.add_scalar("summary", "accuracy_checked", total_checked, "count");
  artifact.add_scalar("summary", "accuracy_ok", accuracy_ok ? 1.0 : 0.0,
                      "count");
  artifact.add_scalar("summary", "nlp_bb_checked", total_nlp_bb, "count");
  artifact.add_scalar("summary", "byte_identical", all_identical ? 1.0 : 0.0,
                      "count");
  artifact.add_scalar("summary", "best_speedup_4_vs_1", best_speedup, "",
                      report::Stability::kTiming);
  artifact.add_scalar("summary", "smoke", smoke ? 1.0 : 0.0, "count");
  artifact.canonicalize();
  if (!report::write_file(artifact, out_path)) {
    std::cerr << "cannot write " << out_path << '\n';
    return 1;
  }
  std::cout << "JSON written to " << out_path << '\n';
  return bench::finish(std::move(artifact), artifact_options,
                       accuracy_ok && all_identical);
}
