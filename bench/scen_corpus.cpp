// Corpus-driven solver sweep over generated scenarios (DESIGN.md section 14).
//
//   $ ./bench_scen_corpus [--corpus=<dir>] [--out=BENCH_scen.json]
//                         [--seed=<n>] [--per-family=<n>] [--limit=<n>]
//                         [--repeats=<n>] [--smoke]
//
// Two sweeps over a scenario corpus (loaded from --corpus, else generated
// in-memory from the seed -- byte-identical to what tools/hslb_scengen
// writes):
//
//   1. Accuracy: every small/medium-family scenario (up to --limit per
//      family) is lowered onto the MINLP form and solved; the result must
//      land on the planted optimum, or inside the certified
//      [bound, incumbent] bracket, recorded at generation time.  Scenarios
//      the NLP-BB solver accepts (convex, no allowed sets) are solved a
//      second time through minlp::solve_nlp_bb against the same
//      expectation.  Any miss fails the binary.
//
//   2. Scaling: the node-richest large-family scenarios run at 1 / 2 / 4 /
//      8 solver threads.  Incumbent, objective, bound, and deterministic
//      stats must be byte-identical across thread counts (bit-for-bit
//      fingerprints; any mismatch exits nonzero).  The runs use a node
//      budget, never a wall-clock budget, so the search is identical no
//      matter how fast the machine is.  4-thread speedup is recorded per
//      scenario; in full mode a best speedup below 1.5x prints a warning
//      (shared machine?), in smoke mode timings are not meaningful.  Each
//      scaling scenario additionally runs a dense-tableau A/B arm
//      (SolverOptions::lp_engine = kDense) that must land on the same
//      answer; its wall time and the per-node LP phase breakdown
//      (factor/update/pivot ms and counts) make the sparse engine's win
//      attributable rather than asserted.
//
// The artifact (PR 5 schema) carries deterministic cells (objectives,
// node counts, expectation verdicts) plus kTiming cells for wall-clock
// numbers, so CI's run-twice fingerprint gate covers the whole sweep.
#include <algorithm>
#include <cmath>
#include <cstring>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "hslb/common/table.hpp"
#include "hslb/minlp/branch_and_bound.hpp"
#include "hslb/minlp/nlp_bb.hpp"
#include "hslb/scen/build.hpp"
#include "hslb/scen/generate.hpp"

namespace {

using namespace hslb;

/// "large_hetero_memcomm_7" -> "large_hetero_memcomm".
std::string family_of(const std::string& scenario_name) {
  const std::size_t pos = scenario_name.find_last_of('_');
  return pos == std::string::npos ? scenario_name : scenario_name.substr(0, pos);
}

/// Did the solve land where the generator said it must?  Planted optima are
/// matched to the solver's own relative gap; brackets are one-sided checks
/// against the certified bound and incumbent.
bool within_expectation(const scen::Scenario& s,
                        const minlp::MinlpResult& result) {
  if (result.status != minlp::MinlpStatus::kOptimal) {
    return false;
  }
  if (s.expect.optimum.has_value()) {
    const double opt = *s.expect.optimum;
    return std::fabs(result.objective - opt) <= 1e-6 * std::max(1.0, opt);
  }
  if (s.expect.bound.has_value() && s.expect.incumbent.has_value()) {
    const double slack = 1e-6 * std::max(1.0, *s.expect.incumbent);
    return result.objective >= *s.expect.bound - slack &&
           result.objective <= *s.expect.incumbent + slack;
  }
  return false;  // every corpus scenario must carry an expectation
}

struct AccuracyRow {
  std::string family;
  int checked = 0;
  int ok = 0;
  int nlp_bb_checked = 0;
  int nlp_bb_ok = 0;
  double worst_gap = 0.0;  ///< max |objective - expectation anchor| seen
};

struct ScalingRun {
  int threads = 0;
  double seconds = 0.0;
  minlp::MinlpResult result;
};

struct ScalingCase {
  std::string name;
  std::size_t components = 0;
  std::vector<ScalingRun> runs;
  bool byte_identical = true;
  double speedup_4_vs_1 = 0.0;
  // Dense-tableau A/B arm (1 thread, lp_engine = kDense): same model and
  // node budget, different per-node LP machinery.
  double dense_seconds = 0.0;
  minlp::MinlpResult dense_result;
  bool dense_comparable = false;   ///< both arms solved to optimality
  bool dense_same_answer = true;   ///< objective agrees (tolerance); vacuous
                                   ///< when not comparable
  bool dense_bit_identical = false; ///< solution fingerprints match bit-for-bit
  double speedup_sparse_vs_dense = 0.0;
};

minlp::MinlpResult solve_scenario(const scen::Scenario& s,
                                  const minlp::SolverOptions& options) {
  scen::ScenarioModelVars vars;
  const minlp::Model model = scen::build_scenario_model(s, &vars);
  return minlp::solve(model, options);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hslb;
  bench::ArtifactOptions artifact_options =
      bench::parse_artifact_args(argc, argv);
  std::string out_path = "BENCH_scen.json";
  std::string corpus_dir;
  std::uint64_t seed = 2014;
  int per_family = 0;  // 0: smoke-dependent default below
  int limit = 0;       // accuracy scenarios per family; 0: default below
  int repeats = 1;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--out=", 0) == 0) {
      out_path = arg.substr(std::strlen("--out="));
    } else if (arg.rfind("--corpus=", 0) == 0) {
      corpus_dir = arg.substr(std::strlen("--corpus="));
    } else if (arg.rfind("--seed=", 0) == 0) {
      seed = std::stoull(arg.substr(std::strlen("--seed=")));
    } else if (arg.rfind("--per-family=", 0) == 0) {
      per_family = std::stoi(arg.substr(std::strlen("--per-family=")));
    } else if (arg.rfind("--limit=", 0) == 0) {
      limit = std::stoi(arg.substr(std::strlen("--limit=")));
    } else if (arg.rfind("--repeats=", 0) == 0) {
      repeats = std::stoi(arg.substr(std::strlen("--repeats=")));
    } else if (arg == "--smoke") {
      smoke = true;
    } else {
      std::cerr << "usage: bench_scen_corpus [--corpus=<dir>]"
                   " [--out=<file.json>] [--seed=<n>] [--per-family=<n>]"
                   " [--limit=<n>] [--repeats=<n>] [--smoke]\n";
      return 2;
    }
  }
  if (limit <= 0) {
    limit = smoke ? 2 : 6;
  }

  const std::string title = "Scenario corpus solve sweep (DSL-lowered MINLPs)";
  const std::string reference =
      "generated corpus with planted optima / certified brackets;"
      " byte-identical across 1/2/4/8 threads; dense-engine A/B arm";
  bench::banner(title, reference);

  // --- Assemble the corpus -------------------------------------------------
  std::vector<scen::Scenario> scenarios;
  if (!corpus_dir.empty()) {
    const auto loaded = scen::load_corpus(corpus_dir);
    if (!loaded.has_value()) {
      std::cerr << "cannot load corpus: " << loaded.error().path << ": "
                << loaded.error().message << '\n';
      return 2;
    }
    scenarios = *loaded;
    std::cout << "corpus: " << corpus_dir << " (" << scenarios.size()
              << " scenarios)\n";
  } else {
    scen::GenerateOptions gen;
    gen.seed = seed;
    gen.scenarios_per_family = per_family > 0 ? per_family : (smoke ? 3 : 18);
    for (scen::GeneratedScenario& entry : scen::generate_corpus(gen)) {
      scenarios.push_back(std::move(entry.scenario));
    }
    std::cout << "corpus: generated in-memory, seed " << seed << " ("
              << scenarios.size() << " scenarios)\n";
  }
  if (smoke) {
    std::cout << "[smoke mode: small accuracy slice, tiny node budgets,"
                 " timings are not meaningful]\n";
  }

  // --- Sweep 1: accuracy against planted optima / certified brackets ------
  // Small families always; medium too in full mode (their solves take
  // seconds, not milliseconds).
  std::vector<AccuracyRow> rows;
  auto row_for = [&rows](const std::string& family) -> AccuracyRow& {
    for (AccuracyRow& row : rows) {
      if (row.family == family) {
        return row;
      }
    }
    rows.push_back({family, 0, 0, 0, 0, 0.0});
    return rows.back();
  };
  report::ResultSet artifact =
      bench::make_result_set("scen_corpus", title, reference);
  minlp::SolverOptions accuracy_options;
  accuracy_options.threads = 1;
  accuracy_options.max_wall_seconds = smoke ? 10.0 : 60.0;
  bool accuracy_ok = true;
  bool dense_accuracy_ok = true;
  int dense_accuracy_checked = 0;
  for (const scen::Scenario& s : scenarios) {
    const std::string family = family_of(s.name);
    const bool graded_in = family.rfind("small", 0) == 0 ||
                           (!smoke && family.rfind("medium", 0) == 0);
    if (!graded_in) {
      continue;
    }
    AccuracyRow& row = row_for(family);
    if (row.checked >= limit) {
      continue;
    }
    const double x = row.checked;
    std::cerr << "  accuracy: " << s.name << '\n';
    const minlp::MinlpResult result = solve_scenario(s, accuracy_options);
    const bool ok = within_expectation(s, result);
    const double anchor = s.expect.optimum.has_value() ? *s.expect.optimum
                                                       : *s.expect.incumbent;
    row.checked += 1;
    row.ok += ok ? 1 : 0;
    row.worst_gap =
        std::max(row.worst_gap, std::fabs(result.objective - anchor));
    artifact.add(family, x, "objective_s", result.objective, "s");
    artifact.add(family, x, "within_expectation", ok ? 1.0 : 0.0, "count");
    artifact.add(family, x, "planted", s.expect.optimum.has_value() ? 1.0 : 0.0,
                 "count");
    artifact.add(family, x, "solve_ms", result.stats.wall_seconds * 1e3, "ms",
                 report::Stability::kTiming);
    // Dense-engine A/B on the solved-to-optimality small instances: the
    // legacy tableau path must land inside the same expectation window and
    // on (numerically) the same optimum as the sparse engine.  Small
    // families only -- dense solves of the medium DAGs take long enough to
    // trip the wall budget, which would make the check about speed, not
    // correctness.
    if (family.rfind("small", 0) == 0) {
      minlp::SolverOptions dense_acc = accuracy_options;
      dense_acc.lp_engine = lp::LpEngine::kDense;
      const minlp::MinlpResult dense_result = solve_scenario(s, dense_acc);
      const bool dense_ok =
          within_expectation(s, dense_result) &&
          std::fabs(dense_result.objective - result.objective) <=
              1e-6 * std::max(1.0, std::fabs(result.objective));
      dense_accuracy_checked += 1;
      dense_accuracy_ok = dense_accuracy_ok && dense_ok;
      artifact.add(family, x, "dense_within", dense_ok ? 1.0 : 0.0, "count");
      if (!dense_ok) {
        std::cerr << "ACCURACY MISS (dense engine): " << s.name << " status "
                  << minlp::to_string(dense_result.status) << " objective "
                  << dense_result.objective << " vs sparse "
                  << result.objective << '\n';
      }
    }
    if (scen::nlp_bb_eligible(s)) {
      scen::ScenarioModelVars vars;
      const minlp::Model model = scen::build_scenario_model(s, &vars);
      const minlp::MinlpResult nb = minlp::solve_nlp_bb(model);
      const bool nb_ok = within_expectation(s, nb);
      row.nlp_bb_checked += 1;
      row.nlp_bb_ok += nb_ok ? 1 : 0;
      artifact.add(family, x, "nlp_bb_within", nb_ok ? 1.0 : 0.0, "count");
      accuracy_ok = accuracy_ok && nb_ok;
      if (!nb_ok) {
        std::cerr << "ACCURACY MISS (nlp_bb): " << s.name << " objective "
                  << nb.objective << " vs expectation anchor " << anchor
                  << '\n';
      }
    }
    accuracy_ok = accuracy_ok && ok;
    if (!ok) {
      std::cerr << "ACCURACY MISS: " << s.name << " status "
                << minlp::to_string(result.status) << " objective "
                << result.objective << " vs expectation anchor " << anchor
                << '\n';
    }
  }

  common::Table accuracy_table(
      {"family", "checked", "on target", "nlp-bb checked", "nlp-bb on target",
       "worst gap,s"});
  int total_checked = 0;
  int total_nlp_bb = 0;
  for (const AccuracyRow& row : rows) {
    accuracy_table.add_row();
    accuracy_table.cell(row.family);
    accuracy_table.cell(static_cast<long long>(row.checked));
    accuracy_table.cell(static_cast<long long>(row.ok));
    accuracy_table.cell(static_cast<long long>(row.nlp_bb_checked));
    accuracy_table.cell(static_cast<long long>(row.nlp_bb_ok));
    accuracy_table.cell(row.worst_gap, 6);
    total_checked += row.checked;
    total_nlp_bb += row.nlp_bb_checked;
  }
  std::cout << accuracy_table;
  std::cout << "accuracy: " << total_checked << " scenario(s) checked, "
            << total_nlp_bb << " also through nlp_bb -- "
            << (accuracy_ok ? "all on target" : "MISSES (see stderr)") << '\n';

  // --- Sweep 2: thread scaling on the node-richest large scenarios --------
  // Planted scenarios are deliberately separable and fully sequential -- the
  // paper's hardest layout shape, with per-node LP costs an order of
  // magnitude above the DAG-structured ones -- so the scaling sweep takes
  // the bracket (non-planted) scenarios, richest first.
  std::vector<const scen::Scenario*> large;
  for (const scen::Scenario& s : scenarios) {
    if (family_of(s.name).rfind("large", 0) == 0 &&
        !s.expect.optimum.has_value()) {
      large.push_back(&s);
    }
  }
  if (large.empty()) {
    for (const scen::Scenario& s : scenarios) {
      if (family_of(s.name).rfind("large", 0) == 0) {
        large.push_back(&s);
      }
    }
  }
  std::stable_sort(large.begin(), large.end(),
                   [](const scen::Scenario* a, const scen::Scenario* b) {
                     return a->components.size() > b->components.size();
                   });
  const std::size_t scaling_count =
      std::min<std::size_t>(large.size(), smoke ? 1 : 3);
  const std::vector<int> thread_counts = {1, 2, 4, 8};
  bool all_identical = true;
  bool all_dense_match = true;
  bool all_dense_bits = true;
  int dense_comparable_count = 0;
  double best_speedup = 0.0;
  double best_vs_dense = 0.0;
  std::vector<ScalingCase> scaling;
  for (std::size_t i = 0; i < scaling_count; ++i) {
    const scen::Scenario& s = *large[i];
    ScalingCase sc;
    sc.name = s.name;
    sc.components = s.components.size();
    // A *node* budget, never a wall-clock one: the search must be a pure
    // function of the model and options so fingerprints can be compared
    // across thread counts.
    minlp::SolverOptions base;
    base.max_nodes = smoke ? 300 : 8000;
    {
      // Warm-up so the first timed run does not pay first-touch costs; a
      // short solve is enough to fault in the solver's working set.
      minlp::SolverOptions warm = base;
      warm.max_nodes = 200;
      (void)solve_scenario(s, warm);
    }
    std::string reference_fp;
    for (const int threads : thread_counts) {
      std::cerr << "  " << s.name << ": " << threads << " thread(s)\n";
      minlp::SolverOptions options = base;
      options.threads = threads;
      ScalingRun run;
      run.threads = threads;
      run.seconds = 1e300;
      for (int r = 0; r < repeats; ++r) {
        minlp::MinlpResult result = solve_scenario(s, options);
        run.seconds = std::min(run.seconds, result.stats.wall_seconds);
        if (r == 0) {
          run.result = std::move(result);
        } else if (bench::result_fingerprint(result) !=
                   bench::result_fingerprint(run.result)) {
          sc.byte_identical = false;
        }
      }
      const std::string fp = bench::result_fingerprint(run.result);
      if (reference_fp.empty()) {
        reference_fp = fp;
      } else if (fp != reference_fp) {
        sc.byte_identical = false;
      }
      sc.runs.push_back(std::move(run));
    }
    sc.speedup_4_vs_1 = sc.runs[0].seconds / std::max(1e-12, sc.runs[2].seconds);
    best_speedup = std::max(best_speedup, sc.speedup_4_vs_1);
    all_identical = all_identical && sc.byte_identical;

    // Dense-path arm: the same scenario and node budget through the legacy
    // dense tableau engine at one thread.  The two engines must land on the
    // same answer; bit identity of the solution is recorded separately
    // because the engines' arithmetic (maintained LU solves vs dense
    // eliminations) is only guaranteed to agree to tolerance.
    std::cerr << "  " << s.name << ": dense simplex arm\n";
    minlp::SolverOptions dense_options = base;
    dense_options.threads = 1;
    dense_options.lp_engine = lp::LpEngine::kDense;
    sc.dense_seconds = 1e300;
    for (int r = 0; r < repeats; ++r) {
      minlp::MinlpResult result = solve_scenario(s, dense_options);
      sc.dense_seconds = std::min(sc.dense_seconds, result.stats.wall_seconds);
      if (r == 0) {
        sc.dense_result = std::move(result);
      }
    }
    const minlp::MinlpResult& sparse_one = sc.runs[0].result;
    // The answers are only comparable when both searches ran to optimality:
    // under a node-budget truncation, ulp-level arithmetic differences
    // between the engines legitimately reroute the tree, and two different
    // partial searches report different incumbents.  (The accuracy sweep
    // above carries the solved-to-optimality dense A/B gate.)
    sc.dense_comparable =
        sc.dense_result.status == minlp::MinlpStatus::kOptimal &&
        sparse_one.status == minlp::MinlpStatus::kOptimal;
    if (sc.dense_comparable) {
      sc.dense_same_answer =
          std::fabs(sc.dense_result.objective - sparse_one.objective) <=
          1e-6 * std::max(1.0, std::fabs(sparse_one.objective));
      sc.dense_bit_identical = bench::solution_fingerprint(sc.dense_result) ==
                               bench::solution_fingerprint(sparse_one);
    }
    sc.speedup_sparse_vs_dense =
        sc.dense_seconds / std::max(1e-12, sc.runs[0].seconds);
    all_dense_match = all_dense_match && sc.dense_same_answer;
    if (sc.dense_comparable) {
      dense_comparable_count += 1;
      all_dense_bits = all_dense_bits && sc.dense_bit_identical;
    }
    best_vs_dense = std::max(best_vs_dense, sc.speedup_sparse_vs_dense);
    scaling.push_back(std::move(sc));
  }

  common::Table scaling_table({"scenario", "components", "threads", "time,ms",
                               "nodes", "LP factor,ms", "LP pivot,ms",
                               "etas", "inherits", "speedup"});
  for (const ScalingCase& sc : scaling) {
    for (const ScalingRun& run : sc.runs) {
      const minlp::SolveStats& st = run.result.stats;
      scaling_table.add_row();
      scaling_table.cell(run.threads == 1 ? sc.name : std::string(""));
      scaling_table.cell(static_cast<long long>(sc.components));
      scaling_table.cell(static_cast<long long>(run.threads));
      scaling_table.cell(run.seconds * 1e3, 2);
      scaling_table.cell(static_cast<long long>(st.nodes_explored));
      scaling_table.cell(st.lp_factor_seconds * 1e3, 2);
      scaling_table.cell(st.lp_pivot_seconds * 1e3, 2);
      scaling_table.cell(static_cast<long long>(st.lp_eta_updates));
      scaling_table.cell(static_cast<long long>(st.lp_factor_inherits));
      scaling_table.cell(sc.runs[0].seconds / std::max(1e-12, run.seconds), 2);
    }
    {
      const minlp::SolveStats& st = sc.dense_result.stats;
      scaling_table.add_row();
      scaling_table.cell(std::string(""));
      scaling_table.cell(static_cast<long long>(sc.components));
      scaling_table.cell(std::string("dense"));
      scaling_table.cell(sc.dense_seconds * 1e3, 2);
      scaling_table.cell(static_cast<long long>(st.nodes_explored));
      scaling_table.cell(st.lp_factor_seconds * 1e3, 2);
      scaling_table.cell(st.lp_pivot_seconds * 1e3, 2);
      scaling_table.cell(static_cast<long long>(st.lp_eta_updates));
      scaling_table.cell(static_cast<long long>(st.lp_factor_inherits));
      scaling_table.cell(sc.speedup_sparse_vs_dense, 2);
    }
    const std::string series = "scaling/" + sc.name;
    for (const ScalingRun& run : sc.runs) {
      const minlp::SolveStats& st = run.result.stats;
      artifact.add(series, run.threads, "solve_ms", run.seconds * 1e3, "ms",
                   report::Stability::kTiming, "threads");
      artifact.add(series, run.threads, "bb_nodes",
                   static_cast<double>(st.nodes_explored), "count");
      artifact.add(series, run.threads, "objective_s", run.result.objective,
                   "s");
      // Per-node LP phase breakdown: attributable time (factor / eta update
      // / pivot loop) plus the deterministic event counts behind it.
      artifact.add(series, run.threads, "lp_ms", st.lp_seconds * 1e3, "ms",
                   report::Stability::kTiming);
      artifact.add(series, run.threads, "lp_factor_ms",
                   st.lp_factor_seconds * 1e3, "ms",
                   report::Stability::kTiming);
      artifact.add(series, run.threads, "lp_update_ms",
                   st.lp_update_seconds * 1e3, "ms",
                   report::Stability::kTiming);
      artifact.add(series, run.threads, "lp_pivot_ms",
                   st.lp_pivot_seconds * 1e3, "ms",
                   report::Stability::kTiming);
      artifact.add(series, run.threads, "lp_factorizations",
                   static_cast<double>(st.lp_factorizations), "count");
      artifact.add(series, run.threads, "lp_refactorizations",
                   static_cast<double>(st.lp_refactorizations), "count");
      artifact.add(series, run.threads, "lp_eta_updates",
                   static_cast<double>(st.lp_eta_updates), "count");
      artifact.add(series, run.threads, "lp_bound_flips",
                   static_cast<double>(st.lp_bound_flips), "count");
      artifact.add(series, run.threads, "lp_factor_inherits",
                   static_cast<double>(st.lp_factor_inherits), "count");
      artifact.add(series, run.threads, "lp_bt_fallbacks",
                   static_cast<double>(st.lp_bt_fallbacks), "count");
    }
    artifact.add(series, 0.0, "byte_identical", sc.byte_identical ? 1.0 : 0.0,
                 "count");
    artifact.add(series, 0.0, "speedup_4_vs_1", sc.speedup_4_vs_1, "",
                 report::Stability::kTiming);
    // Dense-arm cells: the A/B answer checks are deterministic; wall time
    // and the derived speedup are not.
    artifact.add(series, 0.0, "dense_ms", sc.dense_seconds * 1e3, "ms",
                 report::Stability::kTiming);
    artifact.add(series, 0.0, "speedup_sparse_vs_dense",
                 sc.speedup_sparse_vs_dense, "", report::Stability::kTiming);
    artifact.add(series, 0.0, "dense_bb_nodes",
                 static_cast<double>(sc.dense_result.stats.nodes_explored),
                 "count");
    artifact.add(series, 0.0, "dense_comparable",
                 sc.dense_comparable ? 1.0 : 0.0, "count");
    artifact.add(series, 0.0, "dense_same_answer",
                 sc.dense_same_answer ? 1.0 : 0.0, "count");
    artifact.add(series, 0.0, "dense_bit_identical",
                 sc.dense_bit_identical ? 1.0 : 0.0, "count");
  }
  std::cout << scaling_table;
  std::cout << "byte-identical across 1/2/4/8 threads: "
            << (all_identical ? "yes" : "NO") << '\n';
  if (dense_comparable_count > 0) {
    std::cout << "dense arm lands on the same answer ("
              << dense_comparable_count << " comparable): "
              << (all_dense_match ? "yes" : "NO")
              << (all_dense_bits ? " (bit-identical solutions)"
                                 : " (to tolerance; bit patterns differ)")
              << '\n';
  } else {
    std::cout << "dense arm: no scaling scenario ran to optimality inside the"
                 " node budget; answer gate carried by the accuracy sweep ("
              << dense_accuracy_checked << " dense A/B solves, "
              << (dense_accuracy_ok ? "all on target" : "MISSES") << ")\n";
  }
  std::cout << "best 4-thread speedup on a large scenario: "
            << common::format_fixed(best_speedup, 2) << "x\n"
            << "best sparse-vs-dense speedup (1 thread): "
            << common::format_fixed(best_vs_dense, 2) << "x\n";
  if (!smoke && best_speedup < 1.5) {
    std::cout << "warning: best 4-thread speedup below 1.5x"
                 " (shared or small machine?)\n";
  }
  if (!smoke && best_vs_dense < 1.0) {
    std::cout << "warning: sparse engine not faster than the dense tableau"
                 " path on any large scenario\n";
  }

  artifact.add_scalar("summary", "scenarios",
                      static_cast<double>(scenarios.size()), "count");
  artifact.add_scalar("summary", "accuracy_checked", total_checked, "count");
  artifact.add_scalar("summary", "accuracy_ok", accuracy_ok ? 1.0 : 0.0,
                      "count");
  artifact.add_scalar("summary", "nlp_bb_checked", total_nlp_bb, "count");
  artifact.add_scalar("summary", "byte_identical", all_identical ? 1.0 : 0.0,
                      "count");
  artifact.add_scalar("summary", "dense_accuracy_checked",
                      dense_accuracy_checked, "count");
  artifact.add_scalar("summary", "dense_accuracy_ok",
                      dense_accuracy_ok ? 1.0 : 0.0, "count");
  artifact.add_scalar("summary", "dense_comparable", dense_comparable_count,
                      "count");
  artifact.add_scalar("summary", "dense_same_answer",
                      all_dense_match ? 1.0 : 0.0, "count");
  artifact.add_scalar("summary", "dense_bit_identical",
                      all_dense_bits ? 1.0 : 0.0, "count");
  artifact.add_scalar("summary", "best_speedup_4_vs_1", best_speedup, "",
                      report::Stability::kTiming);
  artifact.add_scalar("summary", "best_speedup_sparse_vs_dense", best_vs_dense,
                      "", report::Stability::kTiming);
  artifact.add_scalar("summary", "smoke", smoke ? 1.0 : 0.0, "count");
  artifact.canonicalize();
  if (!report::write_file(artifact, out_path)) {
    std::cerr << "cannot write " << out_path << '\n';
    return 1;
  }
  std::cout << "JSON written to " << out_path << '\n';
  return bench::finish(
      std::move(artifact), artifact_options,
      accuracy_ok && dense_accuracy_ok && all_identical && all_dense_match);
}
