// Load generator for the allocation service: request throughput and cache
// behaviour at 1 / 4 / 16 worker threads.
//
//   $ ./bench_svc_throughput [--out=BENCH_svc.json] [--requests=<n>]
//                            [--warm-requests=<n>]
//
// Two phases per worker count:
//   cold -- every request is a distinct question (unique machine-slice
//           size), so the cache never hits and each request costs a full
//           MINLP solve: this measures how solver throughput scales with
//           the worker pool.
//   warm -- the same few questions asked over and over: after the first
//           wave everything is a cache hit, and each answer is checked
//           byte-for-byte against a fresh solve from a cold service.
//
// Results (req/s, p50/p99 latency, hit rate, byte-identity) are printed as
// a table and written as a report::ResultSet artifact for CI upload.  The
// throughput numbers are host wall-clock and carry Stability::kTiming; only
// the byte-identity verdict is deterministic (and gates the exit code).
#include <algorithm>
#include <atomic>
#include <cstring>
#include <iostream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "hslb/common/table.hpp"
#include "hslb/common/timing.hpp"
#include "hslb/svc/service.hpp"

#include "bench_util.hpp"

namespace {

using namespace hslb;

std::map<cesm::ComponentKind, perf::PerfModel> bench_fits() {
  using cesm::ComponentKind;
  std::map<ComponentKind, perf::PerfModel> fits;
  fits[ComponentKind::kAtm] =
      perf::PerfModel(perf::PerfParams{40000.0, 0.001, 1.2, 10.0});
  fits[ComponentKind::kOcn] =
      perf::PerfModel(perf::PerfParams{25000.0, 0.002, 1.1, 20.0});
  fits[ComponentKind::kIce] =
      perf::PerfModel(perf::PerfParams{8000.0, 0.0, 1.0, 5.0});
  fits[ComponentKind::kLnd] =
      perf::PerfModel(perf::PerfParams{3000.0, 0.0, 1.0, 2.0});
  return fits;
}

svc::AllocationRequest make_request(int total_nodes) {
  svc::AllocationRequest request;
  request.total_nodes = total_nodes;
  request.fits = bench_fits();
  return request;
}

double percentile(std::vector<double> sorted, double p) {
  if (sorted.empty()) {
    return 0.0;
  }
  const auto index = static_cast<std::size_t>(
      p * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(index, sorted.size() - 1)];
}

struct PhaseResult {
  int workers = 0;
  long long requests = 0;
  double seconds = 0.0;
  double req_per_s = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double hit_rate = 0.0;  ///< fraction of requests served from the cache
  long long solves = 0;
};

/// Drive `requests` solve() calls from `clients` threads, each request built
/// by `question(i)` over a round-robin of request indices.
template <typename QuestionFn>
PhaseResult run_phase(int workers, int clients, long long requests,
                      const QuestionFn& question) {
  svc::ServiceConfig config;
  config.workers = workers;
  config.queue_capacity = static_cast<std::size_t>(requests) + 16;
  svc::AllocationService service(config);

  std::mutex latencies_mutex;
  std::vector<double> latencies_ms;
  latencies_ms.reserve(static_cast<std::size_t>(requests));
  std::atomic<long long> next{0};
  std::atomic<long long> failures{0};

  const common::WallTimer timer;
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&] {
      std::vector<double> local;
      for (;;) {
        const long long i = next.fetch_add(1);
        if (i >= requests) {
          break;
        }
        const svc::AllocationRequest request = question(i);
        const common::WallTimer one;
        const svc::SolveOutcome outcome = service.solve(request);
        local.push_back(one.milliseconds());
        if (!outcome.has_value()) {
          failures.fetch_add(1);
        }
      }
      const std::lock_guard<std::mutex> lock(latencies_mutex);
      latencies_ms.insert(latencies_ms.end(), local.begin(), local.end());
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }

  PhaseResult result;
  result.workers = workers;
  result.requests = requests;
  result.seconds = timer.seconds();
  result.req_per_s = static_cast<double>(requests) / result.seconds;
  std::sort(latencies_ms.begin(), latencies_ms.end());
  result.p50_ms = percentile(latencies_ms, 0.50);
  result.p99_ms = percentile(latencies_ms, 0.99);
  const svc::ServiceStats stats = service.stats();
  result.hit_rate = static_cast<double>(stats.cache_hits) /
                    static_cast<double>(std::max(1LL, stats.submitted));
  result.solves = stats.solved;
  if (failures.load() != 0) {
    std::cerr << "warning: " << failures.load() << " requests failed\n";
  }
  return result;
}

void record_phase(report::ResultSet* results, const std::string& series,
                  const PhaseResult& r) {
  const double x = r.workers;
  results->add(series, x, "requests", static_cast<double>(r.requests),
               "count", report::Stability::kTiming, "workers");
  results->add(series, x, "req_per_s", r.req_per_s, "req/s",
               report::Stability::kTiming);
  results->add(series, x, "p50_ms", r.p50_ms, "ms",
               report::Stability::kTiming);
  results->add(series, x, "p99_ms", r.p99_ms, "ms",
               report::Stability::kTiming);
  results->add(series, x, "hit_rate", r.hit_rate, "",
               report::Stability::kTiming);
  results->add(series, x, "solves", static_cast<double>(r.solves), "count",
               report::Stability::kTiming);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hslb;
  bench::ArtifactOptions artifact_options =
      bench::parse_artifact_args(argc, argv);
  std::string out_path = "BENCH_svc.json";
  long long cold_requests = 48;
  long long warm_requests = 400;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--out=", 0) == 0) {
      out_path = arg.substr(std::strlen("--out="));
    } else if (arg.rfind("--requests=", 0) == 0) {
      cold_requests = std::stoll(arg.substr(std::strlen("--requests=")));
    } else if (arg.rfind("--warm-requests=", 0) == 0) {
      warm_requests = std::stoll(arg.substr(std::strlen("--warm-requests=")));
    } else {
      std::cerr << "usage: bench_svc_throughput [--out=<file.json>]"
                   " [--requests=<n>] [--warm-requests=<n>]\n";
      return 2;
    }
  }

  const std::string title =
      "Allocation-service throughput (cache cold and warm)";
  const std::string reference =
      "the svc worker-pool front end; hardware-dependent";
  bench::banner(title, reference);
  report::ResultSet results =
      bench::make_result_set("svc_throughput", title, reference);
  std::cout << "hardware threads: " << std::thread::hardware_concurrency()
            << " (worker scaling needs cores; single-core machines serialize"
               " the pool)\n";

  // Cold: every request a distinct question -> zero cache hits by design.
  const auto cold_question = [](long long i) {
    return make_request(64 + 8 * static_cast<int>(i));
  };
  std::vector<PhaseResult> cold;
  for (const int workers : {1, 4, 16}) {
    cold.push_back(run_phase(workers, /*clients=*/std::max(2, workers),
                             cold_requests, cold_question));
  }

  // Warm: four recurring questions -> everything past the first wave hits.
  const std::vector<int> warm_sizes = {128, 192, 256, 320};
  const auto warm_question = [&warm_sizes](long long i) {
    return make_request(
        warm_sizes[static_cast<std::size_t>(i) % warm_sizes.size()]);
  };
  const PhaseResult warm =
      run_phase(/*workers=*/4, /*clients=*/4, warm_requests, warm_question);

  // Byte-identity: each warm answer vs a fresh solve on a cold service.
  bool byte_identical = true;
  {
    svc::ServiceConfig config;
    config.workers = 1;
    svc::AllocationService warm_service(config);
    for (const int nodes : warm_sizes) {
      const svc::AllocationRequest request = make_request(nodes);
      const svc::SolveOutcome first = warm_service.solve(request);
      const svc::AllocationService::Ticket again = warm_service.submit(request);
      const svc::SolveOutcome cached = again.future.get();
      svc::AllocationService fresh_service(config);
      const svc::SolveOutcome fresh = fresh_service.solve(request);
      if (!first.has_value() || !cached.has_value() || !fresh.has_value() ||
          !again.cache_hit ||
          svc::to_json(cached.value()) != svc::to_json(fresh.value())) {
        byte_identical = false;
      }
    }
  }

  common::Table table(
      {"phase", "workers", "requests", "req/s", "p50,ms", "p99,ms", "hit%"});
  const auto add = [&table](const std::string& phase, const PhaseResult& r) {
    table.add_row();
    table.cell(phase);
    table.cell(static_cast<long long>(r.workers));
    table.cell(r.requests);
    table.cell(r.req_per_s, 1);
    table.cell(r.p50_ms, 2);
    table.cell(r.p99_ms, 2);
    table.cell(100.0 * r.hit_rate, 1);
  };
  for (const PhaseResult& r : cold) {
    add("cold", r);
  }
  add("warm", warm);
  std::cout << table;

  const double speedup = cold[1].req_per_s / cold[0].req_per_s;
  std::cout << "cold speedup, 4 vs 1 workers: "
            << common::format_fixed(speedup, 2) << "x\n"
            << "warm hit rate: " << common::format_fixed(
                   100.0 * warm.hit_rate, 1)
            << " % (cached answers byte-identical to fresh solves: "
            << (byte_identical ? "yes" : "NO") << ")\n";

  for (const PhaseResult& r : cold) {
    record_phase(&results, "cold", r);
  }
  record_phase(&results, "warm", warm);
  results.add_scalar("summary", "hardware_threads",
                     std::thread::hardware_concurrency(), "count",
                     report::Stability::kTiming);
  results.add_scalar("summary", "cold_speedup_4_vs_1", speedup, "",
                     report::Stability::kTiming);
  // The only deterministic claim this bench makes: cached answers are
  // byte-identical to fresh solves.  It is the exit-code gate too.
  results.add_scalar("summary", "warm_byte_identical",
                     byte_identical ? 1.0 : 0.0, "count");
  results.canonicalize();
  if (!report::write_file(results, out_path)) {
    std::cerr << "cannot write " << out_path << '\n';
    return 1;
  }
  std::cout << "JSON written to " << out_path << '\n';
  return bench::finish(std::move(results), artifact_options, byte_identical);
}
