// Load generator for the allocation service: request throughput and cache
// behaviour at 1 / 4 / 16 worker threads.
//
//   $ ./bench_svc_throughput [--out=BENCH_svc.json] [--requests=<n>]
//                            [--warm-requests=<n>] [--trace-out=<file>]
//                            [--metrics-out=<file>]
//
// Two phases per worker count:
//   cold -- every request is a distinct question (unique machine-slice
//           size), so the cache never hits and each request costs a full
//           MINLP solve: this measures how solver throughput scales with
//           the worker pool.
//   warm -- the same few questions asked over and over: after the first
//           wave everything is a cache hit, and each answer is checked
//           byte-for-byte against a fresh solve from a cold service.
//
// The cold sweep runs with request telemetry installed: each run collects a
// span trace + HDR histograms, and the per-phase latency attribution
// (obs/attribution.hpp) is folded into the artifact as a
// "phase_attribution" series -- the machine-readable answer to "which phase
// makes p99 climb at 16 workers".  A second 4-worker cold run with the
// sinks detached measures the telemetry overhead.  --trace-out and
// --metrics-out dump the 16-worker run's Chrome trace and Prometheus
// snapshot for the hslb_trace analyzer (the CI smoke gate).
//
// Results (req/s, p50/p99 latency, hit rate, byte-identity) are printed as
// a table and written as a report::ResultSet artifact for CI upload.  The
// throughput numbers are host wall-clock and carry Stability::kTiming; the
// byte-identity verdict and the attribution taxonomy cells are
// deterministic (byte-identity also gates the exit code).
#include <algorithm>
#include <atomic>
#include <cstring>
#include <fstream>
#include <iostream>
#include <limits>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "hslb/common/table.hpp"
#include "hslb/common/timing.hpp"
#include "hslb/obs/attribution.hpp"
#include "hslb/obs/exposition.hpp"
#include "hslb/svc/service.hpp"

#include "bench_util.hpp"

namespace {

using namespace hslb;

std::map<cesm::ComponentKind, perf::PerfModel> bench_fits() {
  using cesm::ComponentKind;
  std::map<ComponentKind, perf::PerfModel> fits;
  fits[ComponentKind::kAtm] =
      perf::PerfModel(perf::PerfParams{40000.0, 0.001, 1.2, 10.0});
  fits[ComponentKind::kOcn] =
      perf::PerfModel(perf::PerfParams{25000.0, 0.002, 1.1, 20.0});
  fits[ComponentKind::kIce] =
      perf::PerfModel(perf::PerfParams{8000.0, 0.0, 1.0, 5.0});
  fits[ComponentKind::kLnd] =
      perf::PerfModel(perf::PerfParams{3000.0, 0.0, 1.0, 2.0});
  return fits;
}

svc::AllocationRequest make_request(int total_nodes) {
  svc::AllocationRequest request;
  request.total_nodes = total_nodes;
  request.fits = bench_fits();
  return request;
}

double percentile(std::vector<double> sorted, double p) {
  if (sorted.empty()) {
    return 0.0;
  }
  const auto index = static_cast<std::size_t>(
      p * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(index, sorted.size() - 1)];
}

struct PhaseResult {
  int workers = 0;
  long long requests = 0;
  double seconds = 0.0;
  double req_per_s = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double hit_rate = 0.0;  ///< fraction of requests served from the cache
  long long solves = 0;
};

/// Drive `requests` solve() calls from `clients` threads, each request built
/// by `question(i)` over a round-robin of request indices.  Non-null
/// `trace`/`metrics` install request telemetry on the service.
template <typename QuestionFn>
PhaseResult run_phase(int workers, int clients, long long requests,
                      const QuestionFn& question,
                      obs::TraceSession* trace = nullptr,
                      obs::Registry* metrics = nullptr) {
  svc::ServiceConfig config;
  config.workers = workers;
  config.queue_capacity = static_cast<std::size_t>(requests) + 16;
  config.obs.trace = trace;
  config.obs.metrics = metrics;
  svc::AllocationService service(config);

  std::mutex latencies_mutex;
  std::vector<double> latencies_ms;
  latencies_ms.reserve(static_cast<std::size_t>(requests));
  std::atomic<long long> next{0};
  std::atomic<long long> failures{0};

  const common::WallTimer timer;
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&] {
      std::vector<double> local;
      for (;;) {
        const long long i = next.fetch_add(1);
        if (i >= requests) {
          break;
        }
        const svc::AllocationRequest request = question(i);
        const common::WallTimer one;
        const svc::SolveOutcome outcome = service.solve(request);
        local.push_back(one.milliseconds());
        if (!outcome.has_value()) {
          failures.fetch_add(1);
        }
      }
      const std::lock_guard<std::mutex> lock(latencies_mutex);
      latencies_ms.insert(latencies_ms.end(), local.begin(), local.end());
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }

  PhaseResult result;
  result.workers = workers;
  result.requests = requests;
  result.seconds = timer.seconds();
  result.req_per_s = static_cast<double>(requests) / result.seconds;
  std::sort(latencies_ms.begin(), latencies_ms.end());
  result.p50_ms = percentile(latencies_ms, 0.50);
  result.p99_ms = percentile(latencies_ms, 0.99);
  const svc::ServiceStats stats = service.stats();
  result.hit_rate = static_cast<double>(stats.cache_hits) /
                    static_cast<double>(std::max(1LL, stats.submitted));
  result.solves = stats.solved;
  if (failures.load() != 0) {
    std::cerr << "warning: " << failures.load() << " requests failed\n";
  }
  return result;
}

void record_phase(report::ResultSet* results, const std::string& series,
                  const PhaseResult& r) {
  const double x = r.workers;
  results->add(series, x, "requests", static_cast<double>(r.requests),
               "count", report::Stability::kTiming, "workers");
  results->add(series, x, "req_per_s", r.req_per_s, "req/s",
               report::Stability::kTiming);
  results->add(series, x, "p50_ms", r.p50_ms, "ms",
               report::Stability::kTiming);
  results->add(series, x, "p99_ms", r.p99_ms, "ms",
               report::Stability::kTiming);
  results->add(series, x, "hit_rate", r.hit_rate, "",
               report::Stability::kTiming);
  results->add(series, x, "solves", static_cast<double>(r.solves), "count",
               report::Stability::kTiming);
}

/// Share of `phase` in the attribution's `quantile` row (0 when absent).
double share_at(const obs::Attribution& attribution, double quantile,
                obs::Phase phase) {
  for (const obs::PercentileAttribution& pa : attribution.percentiles) {
    if (pa.quantile == quantile) {
      return pa.share[static_cast<std::size_t>(phase)];
    }
  }
  return 0.0;
}

bool write_text_file(const std::string& path, const std::string& text) {
  std::ofstream out(path);
  out << text;
  return static_cast<bool>(out);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hslb;
  bench::ArtifactOptions artifact_options =
      bench::parse_artifact_args(argc, argv);
  std::string out_path = "BENCH_svc.json";
  std::string trace_out;
  std::string metrics_out;
  long long cold_requests = 48;
  long long warm_requests = 400;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--out=", 0) == 0) {
      out_path = arg.substr(std::strlen("--out="));
    } else if (arg.rfind("--requests=", 0) == 0) {
      cold_requests = std::stoll(arg.substr(std::strlen("--requests=")));
    } else if (arg.rfind("--warm-requests=", 0) == 0) {
      warm_requests = std::stoll(arg.substr(std::strlen("--warm-requests=")));
    } else if (arg.rfind("--trace-out=", 0) == 0) {
      trace_out = arg.substr(std::strlen("--trace-out="));
    } else if (arg.rfind("--metrics-out=", 0) == 0) {
      metrics_out = arg.substr(std::strlen("--metrics-out="));
    } else {
      std::cerr << "usage: bench_svc_throughput [--out=<file.json>]"
                   " [--requests=<n>] [--warm-requests=<n>]"
                   " [--trace-out=<file>] [--metrics-out=<file>]\n";
      return 2;
    }
  }

  const std::string title =
      "Allocation-service throughput (cache cold and warm)";
  const std::string reference =
      "the svc worker-pool front end; hardware-dependent";
  bench::banner(title, reference);
  report::ResultSet results =
      bench::make_result_set("svc_throughput", title, reference);
  std::cout << "hardware threads: " << std::thread::hardware_concurrency()
            << " (worker scaling needs cores; single-core machines serialize"
               " the pool)\n";

  // Cold: every request a distinct question -> zero cache hits by design.
  // Telemetry is on: each run collects a span trace + phase histograms, and
  // the per-worker-count attribution explains where p50/p99 latency goes.
  const auto cold_question = [](long long i) {
    return make_request(64 + 8 * static_cast<int>(i));
  };
  std::vector<PhaseResult> cold;
  std::vector<obs::Attribution> cold_attribution;
  std::unique_ptr<obs::TraceSession> deep_trace;   // 16-worker run, kept
  std::unique_ptr<obs::Registry> deep_metrics;     // for --trace/metrics-out
  for (const int workers : {1, 4, 16}) {
    auto trace = std::make_unique<obs::TraceSession>();
    auto metrics = std::make_unique<obs::Registry>();
    cold.push_back(run_phase(workers, /*clients=*/std::max(2, workers),
                             cold_requests, cold_question, trace.get(),
                             metrics.get()));
    cold_attribution.push_back(obs::attribute_phases(
        trace->events(), static_cast<double>(workers)));
    deep_trace = std::move(trace);
    deep_metrics = std::move(metrics);
  }

  // Telemetry overhead: alternating cold runs with sinks attached/detached,
  // best-of-three each.  One worker keeps the phase serialized (the most
  // repeatable configuration on small hosts) and the min filters scheduler
  // noise; the residual delta is the cost of spans + histogram observes.
  double overhead_on_s = std::numeric_limits<double>::infinity();
  double overhead_off_s = std::numeric_limits<double>::infinity();
  for (int rep = 0; rep < 3; ++rep) {
    obs::TraceSession rep_trace;
    obs::Registry rep_metrics;
    overhead_on_s = std::min(
        overhead_on_s, run_phase(/*workers=*/1, /*clients=*/2, cold_requests,
                                 cold_question, &rep_trace, &rep_metrics)
                           .seconds);
    overhead_off_s = std::min(
        overhead_off_s,
        run_phase(/*workers=*/1, /*clients=*/2, cold_requests, cold_question)
            .seconds);
  }
  const double telemetry_overhead_pct =
      100.0 * (overhead_on_s - overhead_off_s) /
      std::max(1e-9, overhead_off_s);

  // Warm: four recurring questions -> everything past the first wave hits.
  const std::vector<int> warm_sizes = {128, 192, 256, 320};
  const auto warm_question = [&warm_sizes](long long i) {
    return make_request(
        warm_sizes[static_cast<std::size_t>(i) % warm_sizes.size()]);
  };
  const PhaseResult warm =
      run_phase(/*workers=*/4, /*clients=*/4, warm_requests, warm_question);

  // Byte-identity: each warm answer vs a fresh solve on a cold service.
  bool byte_identical = true;
  {
    svc::ServiceConfig config;
    config.workers = 1;
    svc::AllocationService warm_service(config);
    for (const int nodes : warm_sizes) {
      const svc::AllocationRequest request = make_request(nodes);
      const svc::SolveOutcome first = warm_service.solve(request);
      const svc::AllocationService::Ticket again = warm_service.submit(request);
      const svc::SolveOutcome cached = again.future.get();
      svc::AllocationService fresh_service(config);
      const svc::SolveOutcome fresh = fresh_service.solve(request);
      if (!first.has_value() || !cached.has_value() || !fresh.has_value() ||
          !again.cache_hit ||
          svc::to_json(cached.value()) != svc::to_json(fresh.value())) {
        byte_identical = false;
      }
    }
  }

  common::Table table(
      {"phase", "workers", "requests", "req/s", "p50,ms", "p99,ms", "hit%"});
  const auto add = [&table](const std::string& phase, const PhaseResult& r) {
    table.add_row();
    table.cell(phase);
    table.cell(static_cast<long long>(r.workers));
    table.cell(r.requests);
    table.cell(r.req_per_s, 1);
    table.cell(r.p50_ms, 2);
    table.cell(r.p99_ms, 2);
    table.cell(100.0 * r.hit_rate, 1);
  };
  for (const PhaseResult& r : cold) {
    add("cold", r);
  }
  add("warm", warm);
  std::cout << table;

  const double speedup = cold[1].req_per_s / cold[0].req_per_s;
  std::cout << "cold speedup, 4 vs 1 workers: "
            << common::format_fixed(speedup, 2) << "x\n"
            << "warm hit rate: " << common::format_fixed(
                   100.0 * warm.hit_rate, 1)
            << " % (cached answers byte-identical to fresh solves: "
            << (byte_identical ? "yes" : "NO") << ")\n"
            << "telemetry overhead, 1-worker cold phase (best of 3): "
            << common::format_fixed(telemetry_overhead_pct, 2) << " %\n";

  const obs::Attribution& deep = cold_attribution.back();
  std::cout << "\nphase attribution, 16-worker cold run:\n"
            << obs::attribution_table(deep) << deep.verdict << '\n';

  for (const PhaseResult& r : cold) {
    record_phase(&results, "cold", r);
  }
  record_phase(&results, "warm", warm);

  // Phase-attribution series: per worker count, the share of p50/p99
  // latency spent in each phase.  The taxonomy cell is deterministic -- it
  // pins the schema the hslb_trace analyzer consumes -- while the shares
  // are wall-clock and stay kTiming.
  for (std::size_t k = 0; k < cold.size(); ++k) {
    const double x = cold[k].workers;
    results.add("phase_attribution", x, "taxonomy_phases",
                static_cast<double>(obs::kPhaseCount), "count",
                report::Stability::kDeterministic, "workers");
    for (std::size_t p = 0; p < obs::kPhaseCount; ++p) {
      const auto phase = static_cast<obs::Phase>(p);
      std::string label = obs::phase_name(phase);
      std::replace(label.begin(), label.end(), '.', '_');
      results.add("phase_attribution", x, "p50_share_" + label,
                  share_at(cold_attribution[k], 0.50, phase), "",
                  report::Stability::kTiming);
      results.add("phase_attribution", x, "p99_share_" + label,
                  share_at(cold_attribution[k], 0.99, phase), "",
                  report::Stability::kTiming);
    }
  }
  results.add_scalar("summary", "attribution_phase_count",
                     static_cast<double>(obs::kPhaseCount), "count");
  double dominant_index = -1.0;
  for (std::size_t p = 0; p < obs::kPhaseCount; ++p) {
    if (deep.dominant_p99_phase ==
        obs::phase_name(static_cast<obs::Phase>(p))) {
      dominant_index = static_cast<double>(p);
    }
  }
  results.add_scalar("summary", "dominant_p99_phase_index_16w",
                     dominant_index, "", report::Stability::kTiming);
  results.add_scalar("summary", "utilization_16w",
                     deep.queueing.utilization, "",
                     report::Stability::kTiming);

  results.add_scalar("summary", "hardware_threads",
                     std::thread::hardware_concurrency(), "count",
                     report::Stability::kTiming);
  results.add_scalar("summary", "cold_speedup_4_vs_1", speedup, "",
                     report::Stability::kTiming);
  results.add_scalar("summary", "telemetry_overhead_pct",
                     telemetry_overhead_pct, "",
                     report::Stability::kTiming);
  // The only deterministic claim this bench makes: cached answers are
  // byte-identical to fresh solves.  It is the exit-code gate too.
  results.add_scalar("summary", "warm_byte_identical",
                     byte_identical ? 1.0 : 0.0, "count");
  results.canonicalize();
  if (!report::write_file(results, out_path)) {
    std::cerr << "cannot write " << out_path << '\n';
    return 1;
  }
  std::cout << "JSON written to " << out_path << '\n';

  // 16-worker run artifacts for the hslb_trace analyzer / CI upload.
  if (!trace_out.empty()) {
    if (!write_text_file(trace_out, deep_trace->to_chrome_json())) {
      std::cerr << "cannot write " << trace_out << '\n';
      return 1;
    }
    std::cout << "Chrome trace written to " << trace_out << '\n';
  }
  if (!metrics_out.empty()) {
    if (!obs::write_metrics_file(metrics_out, deep_metrics->snapshot())) {
      std::cerr << "cannot write " << metrics_out << '\n';
      return 1;
    }
    std::cout << "Prometheus snapshot written to " << metrics_out << '\n';
  }
  return bench::finish(std::move(results), artifact_options, byte_identical);
}
