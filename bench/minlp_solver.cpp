// Section III-E solver claims:
//   * "the MINLP for 40960 nodes took less than 60 seconds to solve on one
//     core" -- we time the full-machine model (google-benchmark);
//   * special-ordered-set branching "improved the runtime of the MINLP
//     solver by two orders of magnitude" over branching on the individual
//     binary variables -- SOS vs binary ablation;
//   * MINOTAUR "offers several algorithms": LP/NLP-BB vs NLP-BB comparison
//     on the unconstrained (no SOS) model.
#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_util.hpp"
#include "hslb/hslb/report.hpp"
#include "hslb/minlp/nlp_bb.hpp"

namespace {

using namespace hslb;

/// Fits + spec shared by every benchmark in this binary.
struct Setup {
  cesm::CaseConfig case_config = cesm::one_degree_case();
  core::LayoutModelSpec spec;

  explicit Setup(int total_nodes, bool with_sets = true, bool use_sos = true) {
    const auto campaign = cesm::gather_benchmarks(
        case_config, cesm::LayoutKind::kHybrid,
        std::vector<int>{128, 512, 2048, 8192, 32768}, 2014);
    spec.layout = cesm::LayoutKind::kHybrid;
    spec.total_nodes = total_nodes;
    spec.min_nodes = case_config.min_nodes;
    spec.use_sos = use_sos;
    for (const cesm::ComponentKind kind : cesm::kModeledComponents) {
      const cesm::Series series = cesm::series_for(campaign.samples, kind);
      spec.perf[kind] = perf::fit(series.nodes, series.seconds).model;
    }
    if (with_sets) {
      spec.atm_allowed = case_config.atm_allowed;
      spec.ocn_allowed = case_config.ocn_allowed;
    }
  }
};

void BM_FullMachineSolve(benchmark::State& state) {
  Setup setup(40960);
  for (auto _ : state) {
    const minlp::Model model = core::build_layout_model(setup.spec, nullptr);
    const auto result = minlp::solve(model);
    if (result.status != minlp::MinlpStatus::kOptimal) {
      state.SkipWithError("solve failed");
    }
    benchmark::DoNotOptimize(result.objective);
  }
}
BENCHMARK(BM_FullMachineSolve)->Unit(benchmark::kMillisecond);

void BM_SolveBySize(benchmark::State& state) {
  Setup setup(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    const minlp::Model model = core::build_layout_model(setup.spec, nullptr);
    const auto result = minlp::solve(model);
    benchmark::DoNotOptimize(result.objective);
  }
}
BENCHMARK(BM_SolveBySize)->Arg(128)->Arg(1024)->Arg(8192)->Arg(40960)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  using namespace hslb;
  bench::ArtifactOptions artifact_options =
      bench::parse_artifact_args(argc, argv);
  const std::string title = "Section III-E -- MINLP solver performance";
  const std::string reference =
      "Alexeev et al., IPDPSW'14, section III-E claims";
  bench::banner(title, reference);
  report::ResultSet results =
      bench::make_result_set("minlp_solver", title, reference);

  // --- SOS vs binary branching ablation. -------------------------------------
  std::cout << "\nSOS1 branching vs individual-binary branching (the paper "
               "reports ~100x):\n";
  common::Table ablation({"machine nodes", "strategy", "B&B nodes", "LPs",
                          "time,ms", "objective,s"});
  for (const int total : {128, 512, 2048}) {
    for (const bool use_sos : {true, false}) {
      Setup setup(total, /*with_sets=*/true, use_sos);
      minlp::SolverOptions options;
      options.use_sos_branching = use_sos;
      const minlp::Model model =
          core::build_layout_model(setup.spec, nullptr);
      const auto result = minlp::solve(model, options);
      ablation.add_row();
      ablation.cell(static_cast<long long>(total));
      ablation.cell(std::string(use_sos ? "SOS1" : "binary"));
      ablation.cell(static_cast<long long>(result.stats.nodes_explored));
      ablation.cell(static_cast<long long>(result.stats.lp_solves));
      ablation.cell(result.stats.wall_seconds * 1e3, 1);
      ablation.cell(result.objective, 3);
      const char* series = use_sos ? "sos" : "binary";
      results.add(series, total, "bb_nodes",
                  static_cast<double>(result.stats.nodes_explored), "count",
                  report::Stability::kDeterministic, "total_nodes");
      results.add(series, total, "lp_solves",
                  static_cast<double>(result.stats.lp_solves), "count");
      results.add(series, total, "objective_s", result.objective, "s");
      results.add(series, total, "wall_ms",
                  result.stats.wall_seconds * 1e3, "ms",
                  report::Stability::kTiming);
    }
  }
  std::cout << ablation;

  // --- Presolve ablation. ------------------------------------------------------
  std::cout << "\nFBBT presolve on/off:\n";
  common::Table presolve_table({"machine nodes", "presolve", "tightenings",
                                "B&B nodes", "LPs", "time,ms"});
  for (const int total : {128, 2048}) {
    for (const bool use_presolve : {true, false}) {
      Setup setup(total);
      minlp::SolverOptions options;
      options.use_presolve = use_presolve;
      const minlp::Model model =
          core::build_layout_model(setup.spec, nullptr);
      const auto result = minlp::solve(model, options);
      presolve_table.add_row();
      presolve_table.cell(static_cast<long long>(total));
      presolve_table.cell(std::string(use_presolve ? "on" : "off"));
      presolve_table.cell(
          static_cast<long long>(result.stats.presolve_tightenings));
      presolve_table.cell(static_cast<long long>(result.stats.nodes_explored));
      presolve_table.cell(static_cast<long long>(result.stats.lp_solves));
      presolve_table.cell(result.stats.wall_seconds * 1e3, 1);
      const char* series = use_presolve ? "presolve_on" : "presolve_off";
      results.add(series, total, "tightenings",
                  static_cast<double>(result.stats.presolve_tightenings),
                  "count", report::Stability::kDeterministic, "total_nodes");
      results.add(series, total, "bb_nodes",
                  static_cast<double>(result.stats.nodes_explored), "count");
      results.add(series, total, "lp_solves",
                  static_cast<double>(result.stats.lp_solves), "count");
      results.add(series, total, "wall_ms",
                  result.stats.wall_seconds * 1e3, "ms",
                  report::Stability::kTiming);
    }
  }
  std::cout << presolve_table;

  // --- LP/NLP-BB vs NLP-BB on a set-free model. -------------------------------
  std::cout << "\nLP/NLP-based B&B vs NLP-based B&B (set-free model):\n";
  common::Table algos({"machine nodes", "algorithm", "B&B nodes",
                       "subproblem solves", "time,ms", "objective,s"});
  for (const int total : {128, 512}) {
    Setup setup(total, /*with_sets=*/false);
    {
      const minlp::Model model = core::build_layout_model(setup.spec, nullptr);
      const auto r = minlp::solve(model);
      algos.add_row();
      algos.cell(static_cast<long long>(total));
      algos.cell(std::string("LP/NLP-BB"));
      algos.cell(static_cast<long long>(r.stats.nodes_explored));
      algos.cell(static_cast<long long>(r.stats.lp_solves));
      algos.cell(r.stats.wall_seconds * 1e3, 1);
      algos.cell(r.objective, 3);
      results.add("lpnlp_bb", total, "bb_nodes",
                  static_cast<double>(r.stats.nodes_explored), "count",
                  report::Stability::kDeterministic, "total_nodes");
      results.add("lpnlp_bb", total, "subproblem_solves",
                  static_cast<double>(r.stats.lp_solves), "count");
      results.add("lpnlp_bb", total, "objective_s", r.objective, "s");
      results.add("lpnlp_bb", total, "wall_ms", r.stats.wall_seconds * 1e3,
                  "ms", report::Stability::kTiming);
    }
    {
      const minlp::Model model = core::build_layout_model(setup.spec, nullptr);
      const auto r = minlp::solve_nlp_bb(model);
      algos.add_row();
      algos.cell(static_cast<long long>(total));
      algos.cell(std::string("NLP-BB"));
      algos.cell(static_cast<long long>(r.stats.nodes_explored));
      algos.cell(static_cast<long long>(r.stats.nlp_solves));
      algos.cell(r.stats.wall_seconds * 1e3, 1);
      algos.cell(r.objective, 3);
      results.add("nlp_bb", total, "bb_nodes",
                  static_cast<double>(r.stats.nodes_explored), "count",
                  report::Stability::kDeterministic, "total_nodes");
      results.add("nlp_bb", total, "subproblem_solves",
                  static_cast<double>(r.stats.nlp_solves), "count");
      results.add("nlp_bb", total, "objective_s", r.objective, "s");
      results.add("nlp_bb", total, "wall_ms", r.stats.wall_seconds * 1e3,
                  "ms", report::Stability::kTiming);
    }
  }
  std::cout << algos;

  // --- The < 60 s full-machine claim, via google-benchmark. ------------------
  std::cout << "\nFull-machine (40960 nodes) solve timing -- the paper's "
               "'< 60 s on one core' claim:\n";
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return bench::finish(std::move(results), artifact_options);
}
