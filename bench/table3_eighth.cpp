// Table III, 1/8-degree blocks with the hard-coded ocean node counts
// {480, 512, 2356, 3136, 4564, 6124, 19460}: manual vs HSLB at 8192 and
// 32768 nodes.
#include <iostream>

#include "bench_util.hpp"
#include "hslb/hslb/report.hpp"

int main() {
  using namespace hslb;
  bench::banner(
      "Table III -- 1/8-degree resolution, constrained ocean counts",
      "Alexeev et al., IPDPSW'14, Table III (rows 3-4)");

  const cesm::CaseConfig case_config = cesm::eighth_degree_case();
  core::PipelineConfig base =
      bench::make_config(case_config, 8192, bench::eighth_degree_totals());
  const auto campaign = cesm::gather_benchmarks(
      case_config, base.layout, base.gather_totals, base.seed);

  for (const int total : {8192, 32768}) {
    core::PipelineConfig config = base;
    config.total_nodes = total;
    core::HslbResult hslb =
        core::run_hslb_from_samples(config, campaign.samples);
    const cesm::Layout layout = hslb.allocation.as_layout(config.layout);
    hslb.run = cesm::run_case(case_config, layout, config.seed + 1);
    for (const cesm::ComponentKind kind : cesm::kModeledComponents) {
      hslb.components[kind].actual_seconds =
          hslb.run.component_seconds.at(kind);
    }
    hslb.actual_total = hslb.run.model_seconds;

    core::ManualTunerConfig manual_config;
    manual_config.total_nodes = total;
    const core::ManualResult manual =
        core::run_manual(case_config, manual_config, campaign.samples);

    std::cout << "\n--- 1/8-degree resolution, " << total << " nodes ---\n"
              << core::render_table3_block(manual, hslb);
    const double gain =
        100.0 * (1.0 - hslb.actual_total / manual.actual_total);
    std::cout << "HSLB improvement over manual: "
              << common::format_fixed(gain, 1)
              << " %   (paper: up to ~10 % at this resolution)\n";
    std::cout << "solver: " << hslb.solver_result.stats.nodes_explored
              << " B&B nodes, " << hslb.solver_result.stats.lp_solves
              << " LPs, "
              << common::format_fixed(hslb.solver_result.stats.wall_seconds,
                                      2)
              << " s\n";
  }
  return 0;
}
