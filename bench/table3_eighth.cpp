// Table III, 1/8-degree blocks with the hard-coded ocean node counts
// {480, 512, 2356, 3136, 4564, 6124, 19460}: manual vs HSLB at 8192 and
// 32768 nodes.
#include <iostream>

#include "bench_util.hpp"
#include "hslb/hslb/report.hpp"

int main(int argc, char** argv) {
  using namespace hslb;
  const bench::ArtifactOptions artifact_options =
      bench::parse_artifact_args(argc, argv);
  const std::string title =
      "Table III -- 1/8-degree resolution, constrained ocean counts";
  const std::string reference =
      "Alexeev et al., IPDPSW'14, Table III (rows 3-4)";
  bench::banner(title, reference);
  report::ResultSet results =
      bench::make_result_set("table3_eighth", title, reference);

  const cesm::CaseConfig case_config = cesm::eighth_degree_case();
  core::PipelineConfig base =
      bench::make_config(case_config, 8192, bench::eighth_degree_totals());
  const auto campaign = cesm::gather_benchmarks(
      case_config, base.layout, base.gather_totals, base.seed);

  for (const int total : {8192, 32768}) {
    core::PipelineConfig config = base;
    config.total_nodes = total;
    core::HslbResult hslb =
        core::run_hslb_from_samples(config, campaign.samples);
    const cesm::Layout layout = hslb.allocation.as_layout(config.layout);
    hslb.run = cesm::run_case(case_config, layout, config.seed + 1);
    for (const cesm::ComponentKind kind : cesm::kModeledComponents) {
      hslb.components[kind].actual_seconds =
          hslb.run.component_seconds.at(kind);
    }
    hslb.actual_total = hslb.run.model_seconds;

    core::ManualTunerConfig manual_config;
    manual_config.total_nodes = total;
    const core::ManualResult manual =
        core::run_manual(case_config, manual_config, campaign.samples);

    std::cout << "\n--- 1/8-degree resolution, " << total << " nodes ---\n"
              << core::render_table3_block(manual, hslb);
    const double gain =
        100.0 * (1.0 - hslb.actual_total / manual.actual_total);
    std::cout << "HSLB improvement over manual: "
              << common::format_fixed(gain, 1)
              << " %   (paper: up to ~10 % at this resolution)\n";
    std::cout << "solver: " << hslb.solver_result.stats.nodes_explored
              << " B&B nodes, " << hslb.solver_result.stats.lp_solves
              << " LPs, "
              << common::format_fixed(hslb.solver_result.stats.wall_seconds,
                                      2)
              << " s\n";

    const double x = total;
    results.add("manual", x, "est_total_s", manual.estimated_total, "s",
                report::Stability::kDeterministic, "total_nodes");
    results.add("manual", x, "actual_total_s", manual.actual_total, "s");
    results.add("hslb", x, "pred_total_s", hslb.predicted_total, "s",
                report::Stability::kDeterministic, "total_nodes");
    results.add("hslb", x, "actual_total_s", hslb.actual_total, "s");
    for (const cesm::ComponentKind kind : cesm::kModeledComponents) {
      const std::string name = cesm::to_string(kind);
      results.add("manual", x, "nodes_" + name, manual.nodes.at(kind),
                  "nodes");
      results.add("hslb", x, "nodes_" + name,
                  hslb.components.at(kind).nodes, "nodes");
    }
    results.add("hslb", x, "solver_bb_nodes",
                static_cast<double>(hslb.solver_result.stats.nodes_explored),
                "count");
    results.add("hslb", x, "solver_lp_solves",
                static_cast<double>(hslb.solver_result.stats.lp_solves),
                "count");
    results.add("hslb", x, "solver_wall_ms",
                hslb.solver_result.stats.wall_seconds * 1e3, "ms",
                report::Stability::kTiming);
  }
  return bench::finish(std::move(results), artifact_options);
}
