#include "hslb/cesm/campaign.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "hslb/common/error.hpp"
#include "hslb/obs/obs.hpp"

namespace hslb::cesm {
namespace {

/// Largest member of `allowed` that is <= limit, or the smallest member if
/// none fits (caller validates against the machine afterwards).
int snap_down(const std::vector<int>& allowed, int limit) {
  HSLB_REQUIRE(!allowed.empty(), "empty allowed set");
  int best = -1;
  for (const int v : allowed) {
    if (v <= limit) {
      best = std::max(best, v);
    }
  }
  return best > 0 ? best : *std::min_element(allowed.begin(), allowed.end());
}

/// Member of `allowed` nearest to target (ties: smaller).
int snap_nearest(const std::vector<int>& allowed, int target) {
  HSLB_REQUIRE(!allowed.empty(), "empty allowed set");
  int best = allowed.front();
  for (const int v : allowed) {
    if (std::abs(v - target) < std::abs(best - target)) {
      best = v;
    }
  }
  return best;
}

}  // namespace

Layout reference_layout(const CaseConfig& config, LayoutKind kind, int total) {
  HSLB_REQUIRE(total >= 8, "campaign totals must be at least 8 nodes");

  const int min_ocn = config.min_nodes_for(ComponentKind::kOcn);
  const int min_atm = config.min_nodes_for(ComponentKind::kAtm);
  const int min_ice = config.min_nodes_for(ComponentKind::kIce);
  const int min_lnd = config.min_nodes_for(ComponentKind::kLnd);

  int ocn = snap_nearest(config.ocn_allowed,
                         std::max(min_ocn, static_cast<int>(total * 0.2)));
  if (ocn > total - min_atm) {
    ocn = snap_down(config.ocn_allowed, total - min_atm);
  }
  int atm = snap_down(config.atm_allowed, total - ocn);
  atm = std::max(atm, min_atm);

  int ice = std::max(min_ice, static_cast<int>(std::lround(atm * 0.6)));
  int lnd = atm - ice;
  if (lnd < min_lnd) {
    lnd = min_lnd;
    ice = atm - lnd;
  }
  HSLB_REQUIRE(ice >= 1 && lnd >= 1, "total too small for a reference layout");

  switch (kind) {
    case LayoutKind::kHybrid:
      return Layout::hybrid(ice, lnd, atm, ocn);
    case LayoutKind::kSequentialGroup:
      return Layout::sequential_group(ice, lnd, atm, ocn);
    case LayoutKind::kFullySequential:
      return Layout::fully_sequential(ice, lnd, atm, ocn);
  }
  throw InvalidArgument("unknown layout kind");
}

CampaignResult gather_benchmarks(const CaseConfig& config, LayoutKind kind,
                                 std::span<const int> totals,
                                 std::uint64_t seed) {
  HSLB_REQUIRE(!totals.empty(), "campaign needs at least one total");

  CampaignResult out;
  out.runs.resize(totals.size());

  // Each run gets an independent deterministic seed so the loop can execute
  // in any order (and in parallel) without changing results.
  std::vector<std::uint64_t> run_seeds(totals.size());
  {
    common::Rng seeder(seed);
    for (auto& s : run_seeds) {
      s = seeder.next_u64();
    }
  }

#pragma omp parallel for schedule(dynamic)
  for (std::ptrdiff_t i = 0;
       i < static_cast<std::ptrdiff_t>(totals.size()); ++i) {
    const auto idx = static_cast<std::size_t>(i);
    obs::ScopedSpan span("cesm.gather.benchmark");
    if (span.active()) {
      span.arg("total_nodes", static_cast<long long>(totals[idx]));
    }
    const Layout layout = reference_layout(config, kind, totals[idx]);
    out.runs[idx] = run_case(config, layout, run_seeds[idx]);
    HSLB_COUNT("cesm.gather.benchmarks", 1);
  }

  for (const RunResult& run : out.runs) {
    for (const ComponentKind component : kModeledComponents) {
      out.samples.push_back(BenchmarkSample{
          component, run.layout.at(component),
          run.component_seconds.at(component)});
    }
  }
  return out;
}

std::string samples_to_csv(const std::vector<BenchmarkSample>& samples) {
  std::ostringstream os;
  os << "component,nodes,seconds\n";
  os.precision(17);
  for (const BenchmarkSample& sample : samples) {
    os << to_string(sample.kind) << ',' << sample.nodes << ','
       << sample.seconds << '\n';
  }
  return os.str();
}

std::vector<BenchmarkSample> samples_from_csv(const std::string& csv) {
  std::vector<BenchmarkSample> out;
  std::istringstream lines(csv);
  std::string line;
  int line_number = 0;
  while (std::getline(lines, line)) {
    ++line_number;
    if (line.empty() || line == "component,nodes,seconds" ||
        line.rfind("component,", 0) == 0) {
      continue;
    }
    const auto first = line.find(',');
    const auto second = line.find(',', first + 1);
    HSLB_REQUIRE(first != std::string::npos && second != std::string::npos,
                 "samples CSV line " + std::to_string(line_number) +
                     " is malformed");
    const std::string name = line.substr(0, first);
    BenchmarkSample sample;
    bool known = false;
    for (const ComponentKind kind : kModeledComponents) {
      if (name == to_string(kind)) {
        sample.kind = kind;
        known = true;
      }
    }
    HSLB_REQUIRE(known, "samples CSV line " + std::to_string(line_number) +
                            ": unknown component '" + name + "'");
    sample.nodes = std::stoi(line.substr(first + 1, second - first - 1));
    sample.seconds = std::stod(line.substr(second + 1));
    HSLB_REQUIRE(sample.nodes > 0 && sample.seconds > 0.0,
                 "samples CSV line " + std::to_string(line_number) +
                     ": values must be positive");
    out.push_back(sample);
  }
  return out;
}

Series series_for(const std::vector<BenchmarkSample>& samples,
                  ComponentKind kind) {
  Series out;
  for (const BenchmarkSample& s : samples) {
    if (s.kind == kind) {
      out.nodes.push_back(s.nodes);
      out.seconds.push_back(s.seconds);
    }
  }
  return out;
}

}  // namespace hslb::cesm
