#include "hslb/cesm/campaign.hpp"

#include <algorithm>
#include <cmath>
#include <optional>
#include <sstream>

#include "hslb/cesm/timing_file.hpp"
#include "hslb/common/error.hpp"
#include "hslb/obs/obs.hpp"

namespace hslb::cesm {

SnapResult snap_down(const std::vector<int>& allowed, int limit) {
  HSLB_REQUIRE(!allowed.empty(), "empty allowed set");
  int best = -1;
  for (const int v : allowed) {
    if (v <= limit) {
      best = std::max(best, v);
    }
  }
  if (best > 0) {
    return SnapResult{best, true};
  }
  // No member fits below the limit: fall back to the smallest member, which
  // exceeds it.  The flag makes the overshoot explicit to the caller.
  return SnapResult{*std::min_element(allowed.begin(), allowed.end()), false};
}

int snap_nearest(const std::vector<int>& allowed, int target) {
  HSLB_REQUIRE(!allowed.empty(), "empty allowed set");
  int best = allowed.front();
  for (const int v : allowed) {
    if (std::abs(v - target) < std::abs(best - target)) {
      best = v;
    }
  }
  return best;
}

Layout reference_layout(const CaseConfig& config, LayoutKind kind, int total) {
  HSLB_REQUIRE(total >= 8, "campaign totals must be at least 8 nodes");

  const int min_ocn = config.min_nodes_for(ComponentKind::kOcn);
  const int min_atm = config.min_nodes_for(ComponentKind::kAtm);
  const int min_ice = config.min_nodes_for(ComponentKind::kIce);
  const int min_lnd = config.min_nodes_for(ComponentKind::kLnd);

  int ocn = snap_nearest(config.ocn_allowed,
                         std::max(min_ocn, static_cast<int>(total * 0.2)));
  if (ocn > total - min_atm) {
    const SnapResult snapped = snap_down(config.ocn_allowed, total - min_atm);
    if (!snapped.fits) {
      // Even the smallest allowed ocean overshoots the atmosphere floor;
      // the layout cannot fit this machine slice.  Fail loudly instead of
      // handing back an over-limit count for the driver to reject later.
      HSLB_COUNT("cesm.campaign.snap_fallbacks", 1);
      throw InvalidArgument(
          "no allowed ocean count fits " + std::to_string(total) +
          " total nodes (smallest allowed is " +
          std::to_string(snapped.value) + ", atmosphere floor is " +
          std::to_string(min_atm) + ")");
    }
    ocn = snapped.value;
  }
  const SnapResult atm_snapped = snap_down(config.atm_allowed, total - ocn);
  if (!atm_snapped.fits) {
    HSLB_COUNT("cesm.campaign.snap_fallbacks", 1);
    throw InvalidArgument(
        "no allowed atmosphere count fits the " + std::to_string(total - ocn) +
        " nodes left beside the ocean (smallest allowed is " +
        std::to_string(atm_snapped.value) + ")");
  }
  int atm = std::max(atm_snapped.value, min_atm);

  int ice = std::max(min_ice, static_cast<int>(std::lround(atm * 0.6)));
  int lnd = atm - ice;
  if (lnd < min_lnd) {
    lnd = min_lnd;
    ice = atm - lnd;
  }
  HSLB_REQUIRE(ice >= 1 && lnd >= 1, "total too small for a reference layout");

  switch (kind) {
    case LayoutKind::kHybrid:
      return Layout::hybrid(ice, lnd, atm, ocn);
    case LayoutKind::kSequentialGroup:
      return Layout::sequential_group(ice, lnd, atm, ocn);
    case LayoutKind::kFullySequential:
      return Layout::fully_sequential(ice, lnd, atm, ocn);
  }
  throw InvalidArgument("unknown layout kind");
}

namespace {

/// Deterministic per-run seeds so the gather loop can execute in any order
/// (and in parallel) without changing results.
std::vector<std::uint64_t> make_run_seeds(std::size_t count,
                                          std::uint64_t seed) {
  std::vector<std::uint64_t> run_seeds(count);
  common::Rng seeder(seed);
  for (auto& s : run_seeds) {
    s = seeder.next_u64();
  }
  return run_seeds;
}

/// The four modeled-component samples of one completed run.
std::vector<BenchmarkSample> samples_of(const RunResult& run) {
  std::vector<BenchmarkSample> out;
  for (const ComponentKind component : kModeledComponents) {
    out.push_back(BenchmarkSample{component, run.layout.at(component),
                                  run.component_seconds.at(component)});
  }
  return out;
}

/// Outcome of one fault-injected benchmark run.
struct FaultedRun {
  std::optional<RunResult> run;          ///< empty when the run gave up
  std::vector<BenchmarkSample> samples;  ///< empty when the run gave up
  RunFaultLog log;
};

/// Execute one benchmark run under fault injection: bounded retries with
/// exponential backoff (charged to the simulated clock), straggler slowdown
/// threaded into the driver, timing files round-tripped -- and possibly
/// corrupted -- through the parser.
FaultedRun run_with_faults(const CaseConfig& config, const Layout& layout,
                           std::uint64_t run_seed, int total,
                           const FaultInjector& injector,
                           const common::RetryPolicy& retry) {
  FaultedRun out;
  out.log.total_nodes = total;
  common::SimClock lost;

  for (int attempt = 0; attempt < retry.max_attempts; ++attempt) {
    out.log.attempts = attempt + 1;
    if (attempt > 0) {
      lost.advance(retry.backoff_for(attempt - 1));
    }
    const FaultKind fault = injector.draw(run_seed, attempt);
    out.log.faults.push_back(fault);

    if (fault == FaultKind::kLaunchFailure) {
      HSLB_COUNT("cesm.fault.launch_failures", 1);
      continue;  // the job never started; resubmit after backoff
    }
    if (fault == FaultKind::kHang) {
      HSLB_COUNT("cesm.fault.hangs", 1);
      lost.advance(retry.run_timeout_seconds);  // killed at the timeout
      continue;
    }

    // The run executes.  Attempt 0 uses the campaign seed itself so a
    // clean first try is the same run the fault-free campaign performs.
    const std::uint64_t attempt_seed =
        run_seed + 0x9e3779b97f4a7c15ull * static_cast<std::uint64_t>(attempt);
    RunPerturbation perturbation;
    if (fault == FaultKind::kStraggler) {
      HSLB_COUNT("cesm.fault.stragglers", 1);
      perturbation.slowdown = injector.spec().straggler_multiplier;
    }
    RunResult run = run_case(config, layout, attempt_seed, perturbation);

    if (fault == FaultKind::kNoiseSpike) {
      HSLB_COUNT("cesm.fault.noise_spikes", 1);
      const int target = injector.spike_target(
          run_seed, attempt, static_cast<int>(std::size(kModeledComponents)));
      const ComponentKind victim = kModeledComponents[target];
      run.component_seconds.at(victim) *= injector.spec().spike_multiplier;
    }

    if (fault == FaultKind::kCorruptOutput ||
        fault == FaultKind::kTruncatedOutput) {
      // The job finished but its timing file is damaged: round-trip the
      // rendered file through the hardened parser and retry on failure.
      const std::uint64_t text_seed = injector.text_seed(run_seed, attempt);
      std::string text = render_timing_file(config, run);
      if (fault == FaultKind::kCorruptOutput) {
        HSLB_COUNT("cesm.fault.corrupt_files", 1);
        text = corrupt_text(text, text_seed);
      } else {
        HSLB_COUNT("cesm.fault.truncated_files", 1);
        text = truncate_text(text, text_seed);
      }
      const auto parsed = try_parse_timing_file(text);
      if (!parsed) {
        continue;  // unusable output; rerun the benchmark
      }
      const auto parsed_samples = try_samples_from_timing({*parsed});
      if (!parsed_samples) {
        continue;
      }
      // The damage went unnoticed by the parser: the (possibly garbled)
      // values enter the sample set, as they would from a real file.  MAD
      // outlier rejection downstream is the safety net.
      out.run = std::move(run);
      out.samples = *parsed_samples;
      out.log.sim_seconds_lost = lost.seconds();
      return out;
    }

    out.samples = samples_of(run);
    out.run = std::move(run);
    out.log.sim_seconds_lost = lost.seconds();
    return out;
  }

  out.log.succeeded = false;
  out.log.sim_seconds_lost = lost.seconds();
  return out;
}

}  // namespace

CampaignResult gather_benchmarks(const CaseConfig& config, LayoutKind kind,
                                 std::span<const int> totals,
                                 std::uint64_t seed) {
  HSLB_REQUIRE(!totals.empty(), "campaign needs at least one total");

  CampaignResult out;
  out.runs.resize(totals.size());

  const std::vector<std::uint64_t> run_seeds =
      make_run_seeds(totals.size(), seed);

  // The obs context is thread-local: capture the caller's and re-install it
  // on each OpenMP worker so benchmark spans/counters keep flowing.
  const obs::Options obs_context = obs::current_context();
#pragma omp parallel for schedule(dynamic)
  for (std::ptrdiff_t i = 0;
       i < static_cast<std::ptrdiff_t>(totals.size()); ++i) {
    const auto idx = static_cast<std::size_t>(i);
    const obs::Install install(obs_context);
    obs::ScopedSpan span("cesm.gather.benchmark");
    if (span.active()) {
      span.arg("total_nodes", static_cast<long long>(totals[idx]));
    }
    const Layout layout = reference_layout(config, kind, totals[idx]);
    out.runs[idx] = run_case(config, layout, run_seeds[idx]);
    HSLB_COUNT("cesm.gather.benchmarks", 1);
  }

  for (const RunResult& run : out.runs) {
    for (const ComponentKind component : kModeledComponents) {
      out.samples.push_back(BenchmarkSample{
          component, run.layout.at(component),
          run.component_seconds.at(component)});
    }
  }
  return out;
}

CampaignResult gather_benchmarks(const CaseConfig& config, LayoutKind kind,
                                 std::span<const int> totals,
                                 std::uint64_t seed,
                                 const GatherOptions& options) {
  if (!options.faults.enabled()) {
    return gather_benchmarks(config, kind, totals, seed);
  }
  HSLB_REQUIRE(!totals.empty(), "campaign needs at least one total");
  HSLB_REQUIRE(options.retry.max_attempts >= 1,
               "retry policy needs at least one attempt");

  const FaultInjector injector(options.faults);
  const std::vector<std::uint64_t> run_seeds =
      make_run_seeds(totals.size(), seed);
  std::vector<FaultedRun> outcomes(totals.size());

  const obs::Options obs_context = obs::current_context();
#pragma omp parallel for schedule(dynamic)
  for (std::ptrdiff_t i = 0;
       i < static_cast<std::ptrdiff_t>(totals.size()); ++i) {
    const auto idx = static_cast<std::size_t>(i);
    const obs::Install install(obs_context);
    obs::ScopedSpan span("cesm.gather.benchmark");
    if (span.active()) {
      span.arg("total_nodes", static_cast<long long>(totals[idx]));
    }
    const Layout layout = reference_layout(config, kind, totals[idx]);
    outcomes[idx] = run_with_faults(config, layout, run_seeds[idx],
                                    totals[idx], injector, options.retry);
    HSLB_COUNT("cesm.gather.benchmarks", 1);
  }

  CampaignResult out;
  for (FaultedRun& outcome : outcomes) {
    CampaignFaultReport& report = out.fault_report;
    for (const FaultKind fault : outcome.log.faults) {
      switch (fault) {
        case FaultKind::kLaunchFailure:
          ++report.launch_failures;
          break;
        case FaultKind::kHang:
          ++report.hangs;
          break;
        case FaultKind::kStraggler:
          ++report.stragglers;
          break;
        case FaultKind::kCorruptOutput:
          ++report.corrupt_files;
          break;
        case FaultKind::kTruncatedOutput:
          ++report.truncated_files;
          break;
        case FaultKind::kNoiseSpike:
          ++report.noise_spikes;
          break;
        case FaultKind::kNone:
          break;
      }
    }
    report.retries += outcome.log.attempts - 1;
    report.sim_seconds_lost += outcome.log.sim_seconds_lost;
    if (!outcome.log.succeeded) {
      ++report.giveups;
    } else {
      out.samples.insert(out.samples.end(), outcome.samples.begin(),
                         outcome.samples.end());
      out.runs.push_back(std::move(*outcome.run));
    }
    report.runs.push_back(std::move(outcome.log));
  }
  HSLB_COUNT("cesm.gather.retries", out.fault_report.retries);
  HSLB_COUNT("cesm.gather.giveups", out.fault_report.giveups);
  HSLB_COUNT("cesm.gather.sim_seconds_lost",
             out.fault_report.sim_seconds_lost);
  return out;
}

std::string samples_to_csv(const std::vector<BenchmarkSample>& samples) {
  std::ostringstream os;
  os << "component,nodes,seconds\n";
  os.precision(17);
  for (const BenchmarkSample& sample : samples) {
    os << to_string(sample.kind) << ',' << sample.nodes << ','
       << sample.seconds << '\n';
  }
  return os.str();
}

std::vector<BenchmarkSample> samples_from_csv(const std::string& csv) {
  std::vector<BenchmarkSample> out;
  std::istringstream lines(csv);
  std::string line;
  int line_number = 0;
  while (std::getline(lines, line)) {
    ++line_number;
    if (line.empty() || line == "component,nodes,seconds" ||
        line.rfind("component,", 0) == 0) {
      continue;
    }
    const auto first = line.find(',');
    const auto second = line.find(',', first + 1);
    HSLB_REQUIRE(first != std::string::npos && second != std::string::npos,
                 "samples CSV line " + std::to_string(line_number) +
                     " is malformed");
    const std::string name = line.substr(0, first);
    BenchmarkSample sample;
    bool known = false;
    for (const ComponentKind kind : kModeledComponents) {
      if (name == to_string(kind)) {
        sample.kind = kind;
        known = true;
      }
    }
    HSLB_REQUIRE(known, "samples CSV line " + std::to_string(line_number) +
                            ": unknown component '" + name + "'");
    sample.nodes = std::stoi(line.substr(first + 1, second - first - 1));
    sample.seconds = std::stod(line.substr(second + 1));
    HSLB_REQUIRE(sample.nodes > 0 && sample.seconds > 0.0,
                 "samples CSV line " + std::to_string(line_number) +
                     ": values must be positive");
    out.push_back(sample);
  }
  return out;
}

Series series_for(const std::vector<BenchmarkSample>& samples,
                  ComponentKind kind) {
  Series out;
  for (const BenchmarkSample& s : samples) {
    if (s.kind == kind) {
      out.nodes.push_back(s.nodes);
      out.seconds.push_back(s.seconds);
    }
  }
  return out;
}

}  // namespace hslb::cesm
