#include "hslb/cesm/decomposition.hpp"

#include <algorithm>
#include <cmath>

#include "hslb/common/error.hpp"

namespace hslb::cesm {
namespace {

/// Deterministic 64-bit mix (SplitMix64 finalizer) for per-count jitter.
std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Uniform double in [0, 1) from a hash of (salt, n).
double hash01(std::uint64_t salt, int n) {
  return static_cast<double>(mix(salt * 0x100000001b3ull +
                                 static_cast<std::uint64_t>(n)) >>
                             11) *
         0x1.0p-53;
}

}  // namespace

std::vector<int> even_decomposition_counts(std::int64_t cells, int max_nodes,
                                           int cores_per_node,
                                           double imbalance_tol) {
  HSLB_REQUIRE(cells > 0, "grid must have cells");
  HSLB_REQUIRE(max_nodes >= 1 && cores_per_node >= 1,
               "need positive node and core counts");
  std::vector<int> out;
  for (int n = 1; n <= max_nodes; ++n) {
    const std::int64_t cores =
        static_cast<std::int64_t>(n) * cores_per_node;
    if (cores > cells) {
      break;  // more cores than cells: no even decomposition exists
    }
    const double avg = static_cast<double>(cells) / static_cast<double>(cores);
    const double busiest =
        static_cast<double>((cells + cores - 1) / cores);  // ceil
    if (busiest / avg - 1.0 <= imbalance_tol) {
      out.push_back(n);
    }
  }
  return out;
}

std::vector<int> atm_allowed_one_degree(int max_nodes) {
  std::vector<int> out;
  for (int n = 1; n <= std::min(max_nodes, 1638); ++n) {
    out.push_back(n);
  }
  if (max_nodes >= 1664) {
    out.push_back(1664);
  }
  return out;
}

std::vector<int> atm_allowed_eighth_degree(int max_nodes) {
  std::vector<int> out;
  for (int n = 16; n <= max_nodes; n += 4) {
    out.push_back(n);
  }
  return out;
}

std::vector<int> ocn_allowed_one_degree(int max_nodes) {
  std::vector<int> out;
  for (int n = 2; n <= std::min(max_nodes, 480); n += 2) {
    out.push_back(n);
  }
  if (max_nodes >= 768) {
    out.push_back(768);
  }
  return out;
}

std::vector<int> ocn_allowed_eighth_degree(int max_nodes) {
  std::vector<int> all{480, 512, 2356, 3136, 4564, 6124, 19460};
  std::vector<int> out;
  for (const int n : all) {
    if (n <= max_nodes) {
      out.push_back(n);
    }
  }
  return out;
}

IceDecomposition default_ice_decomposition(int nodes) {
  HSLB_REQUIRE(nodes >= 1, "node count must be positive");
  // CICE's default picks a strategy from the block-size heuristics; the
  // mapping is deterministic but looks irregular as a function of count.
  const auto pick = mix(0xC1CEull * 0x9e3779b97f4a7c15ull +
                        static_cast<std::uint64_t>(nodes)) %
                    kNumIceDecompositions;
  return static_cast<IceDecomposition>(pick);
}

double ice_decomposition_efficiency(IceDecomposition decomposition,
                                    int nodes) {
  HSLB_REQUIRE(nodes >= 1, "node count must be positive");
  // Strategy families have different baseline quality; on top of that the
  // interaction with the block size at a specific count adds determinstic
  // jitter.  Calibrated so the sea-ice curve shows the ~10% scatter the
  // paper reports for default decompositions.
  double base = 1.0;
  switch (decomposition) {
    case IceDecomposition::kSpaceCurve:
      base = 1.00;
      break;
    case IceDecomposition::kCartesian:
      base = 0.97;
      break;
    case IceDecomposition::kSectRobin:
      base = 0.96;
      break;
    case IceDecomposition::kRoundRobin:
      base = 0.94;
      break;
    case IceDecomposition::kBlkRobin:
      base = 0.93;
      break;
    case IceDecomposition::kSlenderX1:
      base = 0.91;
      break;
    case IceDecomposition::kSlenderX2:
      base = 0.90;
      break;
  }
  const double jitter =
      0.06 * hash01(static_cast<std::uint64_t>(decomposition) + 17, nodes);
  return std::clamp(base - jitter, 0.5, 1.0);
}

}  // namespace hslb::cesm
