#include "hslb/cesm/layout.hpp"

#include <algorithm>
#include <sstream>

#include "hslb/common/error.hpp"

namespace hslb::cesm {

const char* to_string(LayoutKind kind) {
  switch (kind) {
    case LayoutKind::kHybrid:
      return "layout-1 (hybrid)";
    case LayoutKind::kSequentialGroup:
      return "layout-2 (sequential group + ocean)";
    case LayoutKind::kFullySequential:
      return "layout-3 (fully sequential)";
  }
  return "unknown";
}

namespace {

Layout make(LayoutKind kind, int ice, int lnd, int atm, int ocn) {
  HSLB_REQUIRE(ice >= 1 && lnd >= 1 && atm >= 1 && ocn >= 1,
               "every component needs at least one node");
  Layout layout;
  layout.kind = kind;
  layout.nodes = {{ComponentKind::kIce, ice},
                  {ComponentKind::kLnd, lnd},
                  {ComponentKind::kAtm, atm},
                  {ComponentKind::kOcn, ocn}};
  return layout;
}

}  // namespace

Layout Layout::hybrid(int ice, int lnd, int atm, int ocn) {
  return make(LayoutKind::kHybrid, ice, lnd, atm, ocn);
}

Layout Layout::sequential_group(int ice, int lnd, int atm, int ocn) {
  return make(LayoutKind::kSequentialGroup, ice, lnd, atm, ocn);
}

Layout Layout::fully_sequential(int ice, int lnd, int atm, int ocn) {
  return make(LayoutKind::kFullySequential, ice, lnd, atm, ocn);
}

int Layout::at(ComponentKind component) const {
  const auto it = nodes.find(component);
  HSLB_REQUIRE(it != nodes.end(), "layout has no allocation for component");
  return it->second;
}

std::optional<std::string> Layout::invalid_reason(int total_nodes) const {
  const int ice = at(ComponentKind::kIce);
  const int lnd = at(ComponentKind::kLnd);
  const int atm = at(ComponentKind::kAtm);
  const int ocn = at(ComponentKind::kOcn);
  std::ostringstream why;
  switch (kind) {
    case LayoutKind::kHybrid:
      // Table I lines 20-21: ice + lnd nest under atm; atm + ocn <= N.
      if (ice + lnd > atm) {
        why << "ice+lnd (" << ice + lnd << ") exceeds atm group (" << atm
            << ")";
        return why.str();
      }
      if (atm + ocn > total_nodes) {
        why << "atm+ocn (" << atm + ocn << ") exceeds machine ("
            << total_nodes << ")";
        return why.str();
      }
      return std::nullopt;
    case LayoutKind::kSequentialGroup:
      // Table I lines 24-26: each of ice/lnd/atm fits beside the ocean.
      for (const auto& [component, n] :
           {std::pair{ComponentKind::kIce, ice},
            std::pair{ComponentKind::kLnd, lnd},
            std::pair{ComponentKind::kAtm, atm}}) {
        if (n > total_nodes - ocn) {
          why << to_string(component) << " (" << n << ") exceeds N - ocn ("
              << total_nodes - ocn << ")";
          return why.str();
        }
      }
      return std::nullopt;
    case LayoutKind::kFullySequential:
      // Table I line 28: every component fits on the machine.
      for (const auto& [component, n] : nodes) {
        if (n > total_nodes) {
          why << to_string(component) << " (" << n << ") exceeds machine ("
              << total_nodes << ")";
          return why.str();
        }
      }
      return std::nullopt;
  }
  return "unknown layout kind";
}

int Layout::footprint() const {
  const int ice = at(ComponentKind::kIce);
  const int lnd = at(ComponentKind::kLnd);
  const int atm = at(ComponentKind::kAtm);
  const int ocn = at(ComponentKind::kOcn);
  switch (kind) {
    case LayoutKind::kHybrid:
      return std::max(atm, ice + lnd) + ocn;
    case LayoutKind::kSequentialGroup:
      return std::max({ice, lnd, atm}) + ocn;
    case LayoutKind::kFullySequential:
      return std::max({ice, lnd, atm, ocn});
  }
  return 0;
}

double combine_times(LayoutKind kind, double ice, double lnd, double atm,
                     double ocn) {
  switch (kind) {
    case LayoutKind::kHybrid:
      return std::max(std::max(ice, lnd) + atm, ocn);
    case LayoutKind::kSequentialGroup:
      return std::max(ice + lnd + atm, ocn);
    case LayoutKind::kFullySequential:
      return ice + lnd + atm + ocn;
  }
  return 0.0;
}

}  // namespace hslb::cesm
