#include "hslb/cesm/component.hpp"

#include <algorithm>
#include <cmath>

#include "hslb/cesm/decomposition.hpp"
#include "hslb/common/error.hpp"

namespace hslb::cesm {

const char* to_string(ComponentKind kind) {
  switch (kind) {
    case ComponentKind::kAtm:
      return "atm";
    case ComponentKind::kOcn:
      return "ocn";
    case ComponentKind::kIce:
      return "ice";
    case ComponentKind::kLnd:
      return "lnd";
    case ComponentKind::kRof:
      return "rof";
    case ComponentKind::kCpl:
      return "cpl";
  }
  return "???";
}

const char* long_name(ComponentKind kind) {
  switch (kind) {
    case ComponentKind::kAtm:
      return "Community Atmosphere Model (CAM)";
    case ComponentKind::kOcn:
      return "Parallel Ocean Program (POP)";
    case ComponentKind::kIce:
      return "Community Ice Code (CICE)";
    case ComponentKind::kLnd:
      return "Community Land Model (CLM)";
    case ComponentKind::kRof:
      return "River Transport Model (RTM)";
    case ComponentKind::kCpl:
      return "Coupler (CPL7)";
  }
  return "unknown";
}

Component::Component(ComponentKind kind, TruthParams truth)
    : kind_(kind), truth_(std::move(truth)), base_(truth_.base) {}

double Component::penalty_factor(int nodes) const {
  HSLB_REQUIRE(nodes >= 1, "node count must be positive");
  double factor = 1.0;

  if (!truth_.preferred_counts.empty() && truth_.off_preferred_penalty > 0.0) {
    // Relative distance to the nearest preferred count; full efficiency at a
    // preferred count, saturating slowdown far from all of them.
    double rel = std::numeric_limits<double>::infinity();
    for (const int p : truth_.preferred_counts) {
      rel = std::min(rel, std::fabs(nodes - p) / static_cast<double>(p));
    }
    factor *= 1.0 + truth_.off_preferred_penalty * (1.0 - std::exp(-3.0 * rel));
  }

  if (truth_.decomposition_noise) {
    const IceDecomposition decomp = default_ice_decomposition(nodes);
    factor /= ice_decomposition_efficiency(decomp, nodes);
  }
  return factor;
}

double Component::true_time(int nodes) const {
  return base_(static_cast<double>(nodes)) * penalty_factor(nodes);
}

double Component::measured_time(int nodes, common::Rng& rng) const {
  return true_time(nodes) * rng.lognormal_noise(truth_.noise_cv);
}

double Component::true_time_with(int nodes, int decomposition) const {
  if (!truth_.decomposition_noise) {
    return true_time(nodes);
  }
  HSLB_REQUIRE(decomposition >= 0 && decomposition < kNumIceDecompositions,
               "unknown decomposition strategy");
  double factor = 1.0;
  if (!truth_.preferred_counts.empty() && truth_.off_preferred_penalty > 0.0) {
    factor = penalty_factor(nodes) *
             ice_decomposition_efficiency(default_ice_decomposition(nodes),
                                          nodes);
    // penalty_factor folds in the default decomposition; strip it above and
    // apply the requested strategy below.
  }
  factor /= ice_decomposition_efficiency(
      static_cast<IceDecomposition>(decomposition), nodes);
  return base_(static_cast<double>(nodes)) * factor;
}

double Component::measured_time_with(int nodes, int decomposition,
                                     common::Rng& rng) const {
  return true_time_with(nodes, decomposition) *
         rng.lognormal_noise(truth_.noise_cv);
}

}  // namespace hslb::cesm
