#include "hslb/cesm/timing_file.hpp"

#include <sstream>

#include "hslb/common/error.hpp"

namespace hslb::cesm {
namespace {

std::string trim(const std::string& text) {
  const auto begin = text.find_first_not_of(" \t\r");
  if (begin == std::string::npos) {
    return "";
  }
  const auto end = text.find_last_not_of(" \t\r");
  return text.substr(begin, end - begin + 1);
}

/// "  key : value" -> value; the key must be the first word of the line
/// (so "model time (..., layout-combined): ..." does not match "layout").
std::string value_of(const std::string& line, const std::string& key) {
  const std::string trimmed = trim(line);
  if (trimmed.rfind(key, 0) != 0) {
    return "";
  }
  const auto colon = trimmed.find(':', key.size());
  if (colon == std::string::npos) {
    return "";
  }
  return trim(trimmed.substr(colon + 1));
}

/// Last numeric token of a "...: 123.456 s" summary line.
double trailing_seconds(const std::string& line) {
  std::istringstream words(line.substr(line.find(':') + 1));
  double value = 0.0;
  words >> value;
  HSLB_REQUIRE(static_cast<bool>(words), "malformed summary line: " + line);
  return value;
}

bool is_known_component(const std::string& name) {
  for (const char* known : {"atm", "ocn", "ice", "lnd", "rof", "cpl"}) {
    if (name == known) {
      return true;
    }
  }
  return false;
}

}  // namespace

std::optional<ParsedTimingFile::Row> ParsedTimingFile::find(
    const std::string& component) const {
  for (const Row& row : rows) {
    if (row.component == component) {
      return row;
    }
  }
  return std::nullopt;
}

ParsedTimingFile parse_timing_file(const std::string& text) {
  ParsedTimingFile out;
  bool saw_header = false;

  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.find("CESM timing summary") != std::string::npos) {
      saw_header = true;
      continue;
    }
    if (const std::string v = value_of(line, "case"); !v.empty()) {
      out.case_name = v;
      continue;
    }
    if (const std::string v = value_of(line, "machine"); !v.empty()) {
      out.machine = v;
      continue;
    }
    if (const std::string v = value_of(line, "layout"); !v.empty()) {
      out.layout = v;
      continue;
    }
    if (const std::string v = value_of(line, "run length"); !v.empty()) {
      std::istringstream words(v);
      words >> out.simulated_days;
      continue;
    }
    if (line.find("model time") != std::string::npos) {
      out.model_seconds = trailing_seconds(line);
      continue;
    }
    if (line.find("total wall clock") != std::string::npos) {
      out.total_seconds = trailing_seconds(line);
      continue;
    }
    // Component table row: "<name> <nodes> <cores> <seconds> <sec/day>".
    std::istringstream words(line);
    ParsedTimingFile::Row row;
    if (words >> row.component >> row.nodes >> row.cores >> row.seconds >>
            row.seconds_per_day &&
        is_known_component(row.component)) {
      out.rows.push_back(row);
    }
  }

  HSLB_REQUIRE(saw_header, "not a CESM timing summary");
  HSLB_REQUIRE(!out.rows.empty(), "timing summary contains no components");
  HSLB_REQUIRE(out.simulated_days > 0, "timing summary lacks the run length");
  return out;
}

std::vector<BenchmarkSample> samples_from_timing(
    const std::vector<ParsedTimingFile>& files) {
  std::vector<BenchmarkSample> samples;
  for (const ParsedTimingFile& file : files) {
    for (const ComponentKind kind : kModeledComponents) {
      const auto row = file.find(to_string(kind));
      HSLB_REQUIRE(row.has_value(),
                   std::string("timing file lacks component ") +
                       to_string(kind));
      samples.push_back(BenchmarkSample{kind, row->nodes, row->seconds});
    }
  }
  return samples;
}

}  // namespace hslb::cesm
