#include "hslb/cesm/timing_file.hpp"

#include <sstream>

#include "hslb/common/error.hpp"

namespace hslb::cesm {
namespace {

std::string trim(const std::string& text) {
  const auto begin = text.find_first_not_of(" \t\r");
  if (begin == std::string::npos) {
    return "";
  }
  const auto end = text.find_last_not_of(" \t\r");
  return text.substr(begin, end - begin + 1);
}

/// "  key : value" -> value; the key must be the first word of the line
/// (so "model time (..., layout-combined): ..." does not match "layout").
std::string value_of(const std::string& line, const std::string& key) {
  const std::string trimmed = trim(line);
  if (trimmed.rfind(key, 0) != 0) {
    return "";
  }
  const auto colon = trimmed.find(':', key.size());
  if (colon == std::string::npos) {
    return "";
  }
  return trim(trimmed.substr(colon + 1));
}

/// Last numeric token of a "...: 123.456 s" summary line, or nothing when
/// the number is garbled or missing.
std::optional<double> trailing_seconds(const std::string& line) {
  const auto colon = line.find(':');
  if (colon == std::string::npos) {
    return std::nullopt;
  }
  std::istringstream words(line.substr(colon + 1));
  double value = 0.0;
  words >> value;
  if (!words) {
    return std::nullopt;
  }
  return value;
}

bool is_known_component(const std::string& name) {
  for (const char* known : {"atm", "ocn", "ice", "lnd", "rof", "cpl"}) {
    if (name == known) {
      return true;
    }
  }
  return false;
}

TimingParseError parse_error(std::string message, int line = 0,
                             std::string line_text = "") {
  TimingParseError out;
  out.message = std::move(message);
  out.line = line;
  out.line_text = std::move(line_text);
  return out;
}

}  // namespace

std::string TimingParseError::to_string() const {
  std::string out = message;
  if (line > 0) {
    out += " (line " + std::to_string(line);
    if (!line_text.empty()) {
      out += ": '" + line_text + "'";
    }
    out += ")";
  }
  return out;
}

std::optional<ParsedTimingFile::Row> ParsedTimingFile::find(
    const std::string& component) const {
  for (const Row& row : rows) {
    if (row.component == component) {
      return row;
    }
  }
  return std::nullopt;
}

TimingExpected<ParsedTimingFile> try_parse_timing_file(
    const std::string& text) {
  ParsedTimingFile out;
  bool saw_header = false;

  std::istringstream lines(text);
  std::string line;
  int line_number = 0;
  while (std::getline(lines, line)) {
    ++line_number;
    if (line.find("CESM timing summary") != std::string::npos) {
      saw_header = true;
      continue;
    }
    if (const std::string v = value_of(line, "case"); !v.empty()) {
      out.case_name = v;
      continue;
    }
    if (const std::string v = value_of(line, "machine"); !v.empty()) {
      out.machine = v;
      continue;
    }
    if (const std::string v = value_of(line, "layout"); !v.empty()) {
      out.layout = v;
      continue;
    }
    if (const std::string v = value_of(line, "run length"); !v.empty()) {
      std::istringstream words(v);
      if (!(words >> out.simulated_days) || out.simulated_days <= 0) {
        return common::make_unexpected(parse_error(
            "run length is not a positive day count", line_number, line));
      }
      continue;
    }
    if (line.find("model time") != std::string::npos) {
      const auto seconds = trailing_seconds(line);
      if (!seconds) {
        return common::make_unexpected(
            parse_error("malformed model-time summary line", line_number,
                        line));
      }
      out.model_seconds = *seconds;
      continue;
    }
    if (line.find("total wall clock") != std::string::npos) {
      const auto seconds = trailing_seconds(line);
      if (!seconds) {
        return common::make_unexpected(parse_error(
            "malformed wall-clock summary line", line_number, line));
      }
      out.total_seconds = *seconds;
      continue;
    }
    // Component table row: "<name> <nodes> <cores> <seconds> <sec/day>".
    std::istringstream words(line);
    ParsedTimingFile::Row row;
    if (words >> row.component >> row.nodes >> row.cores >> row.seconds >>
            row.seconds_per_day &&
        is_known_component(row.component)) {
      if (row.nodes <= 0 || row.cores < 0 || row.seconds < 0.0) {
        return common::make_unexpected(parse_error(
            "component row for '" + row.component +
                "' carries non-positive nodes or negative timings",
            line_number, line));
      }
      out.rows.push_back(row);
    }
  }

  if (!saw_header) {
    return common::make_unexpected(
        parse_error("not a CESM timing summary (header line missing)"));
  }
  if (out.rows.empty()) {
    return common::make_unexpected(
        parse_error("timing summary contains no component rows"));
  }
  if (out.simulated_days <= 0) {
    return common::make_unexpected(
        parse_error("timing summary lacks the run length"));
  }
  return out;
}

TimingExpected<std::vector<BenchmarkSample>> try_samples_from_timing(
    const std::vector<ParsedTimingFile>& files) {
  std::vector<BenchmarkSample> samples;
  for (std::size_t i = 0; i < files.size(); ++i) {
    for (const ComponentKind kind : kModeledComponents) {
      const auto row = files[i].find(to_string(kind));
      if (!row.has_value()) {
        return common::make_unexpected(parse_error(
            "timing file " + std::to_string(i + 1) + " lacks component " +
            to_string(kind)));
      }
      if (row->nodes <= 0 || row->seconds <= 0.0) {
        return common::make_unexpected(parse_error(
            "timing file " + std::to_string(i + 1) + " component " +
            to_string(kind) + " has non-positive nodes or seconds"));
      }
      samples.push_back(BenchmarkSample{kind, row->nodes, row->seconds});
    }
  }
  return samples;
}

ParsedTimingFile parse_timing_file(const std::string& text) {
  auto parsed = try_parse_timing_file(text);
  if (!parsed) {
    throw InvalidArgument(parsed.error().to_string());
  }
  return std::move(parsed.value());
}

std::vector<BenchmarkSample> samples_from_timing(
    const std::vector<ParsedTimingFile>& files) {
  auto samples = try_samples_from_timing(files);
  if (!samples) {
    throw InvalidArgument(samples.error().to_string());
  }
  return std::move(samples.value());
}

}  // namespace hslb::cesm
