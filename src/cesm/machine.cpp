#include "hslb/cesm/machine.hpp"

namespace hslb::cesm {

Machine intrepid() {
  Machine m;
  m.name = "Intrepid (IBM Blue Gene/P)";
  m.total_nodes = 40960;
  m.cores_per_node = 4;
  m.mpi_tasks_per_node = 1;
  m.threads_per_task = 4;
  return m;
}

}  // namespace hslb::cesm
