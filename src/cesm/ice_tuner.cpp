#include "hslb/cesm/ice_tuner.hpp"

#include <algorithm>
#include <cmath>

#include "hslb/common/error.hpp"
#include "hslb/perf/sample_design.hpp"

namespace hslb::cesm {

std::vector<IceTrainingSample> gather_ice_training(
    const Component& ice, const IceTunerOptions& options) {
  HSLB_REQUIRE(ice.truth().decomposition_noise,
               "training only makes sense for a decomposition-sensitive "
               "component (the sea ice model)");
  HSLB_REQUIRE(options.counts >= 2 && options.repeats >= 1,
               "need at least two counts and one repeat");

  common::Rng rng(options.seed);
  std::vector<IceTrainingSample> samples;
  for (const int n : perf::design_benchmark_nodes(
           options.min_nodes, options.max_nodes, options.counts)) {
    for (int d = 0; d < kNumIceDecompositions; ++d) {
      for (int r = 0; r < options.repeats; ++r) {
        samples.push_back(IceTrainingSample{
            n, static_cast<IceDecomposition>(d),
            ice.measured_time_with(n, d, rng)});
      }
    }
  }
  return samples;
}

IceDecompositionTuner::IceDecompositionTuner(
    std::vector<IceTrainingSample> samples, int knn)
    : knn_(std::max(1, knn)) {
  // Bucket by (strategy, node count), averaging repeats.
  struct Bucket {
    double node_count = 0.0;
    double total = 0.0;
    int observations = 0;
  };
  std::vector<std::vector<Bucket>> buckets(kNumIceDecompositions);
  std::sort(samples.begin(), samples.end(),
            [](const IceTrainingSample& a, const IceTrainingSample& b) {
              return std::tie(a.decomposition, a.nodes) <
                     std::tie(b.decomposition, b.nodes);
            });
  for (const IceTrainingSample& sample : samples) {
    HSLB_REQUIRE(sample.nodes > 0 && sample.seconds > 0.0,
                 "training samples must be positive");
    auto& strategy_buckets =
        buckets[static_cast<std::size_t>(sample.decomposition)];
    if (!strategy_buckets.empty() &&
        strategy_buckets.back().node_count == sample.nodes) {
      strategy_buckets.back().total += sample.seconds;
      ++strategy_buckets.back().observations;
    } else {
      strategy_buckets.push_back(Bucket{static_cast<double>(sample.nodes),
                                        sample.seconds, 1});
    }
  }

  for (int d = 0; d < kNumIceDecompositions; ++d) {
    const auto& strategy_buckets = buckets[static_cast<std::size_t>(d)];
    HSLB_REQUIRE(strategy_buckets.size() >= 2,
                 "every strategy needs samples at >= 2 node counts");
    StrategyModel& model = models_[d];
    std::vector<double> nodes;
    std::vector<double> seconds;
    for (const Bucket& bucket : strategy_buckets) {
      const double mean = bucket.total / bucket.observations;
      model.log_nodes.push_back(std::log(bucket.node_count));
      model.log_seconds.push_back(std::log(mean));
      nodes.push_back(bucket.node_count);
      seconds.push_back(mean);
    }
    if (nodes.size() >= 3) {
      model.fit = perf::fit(nodes, seconds);
    }
  }
}

double IceDecompositionTuner::predicted_seconds(
    int nodes, IceDecomposition decomposition) const {
  HSLB_REQUIRE(nodes >= 1, "node count must be positive");
  const StrategyModel& model =
      models_[static_cast<std::size_t>(decomposition)];
  const double x = std::log(static_cast<double>(nodes));

  // Outside the trained range, trust the smooth Table II fit if we have one.
  if ((x < model.log_nodes.front() || x > model.log_nodes.back()) &&
      model.fit.converged) {
    return model.fit.model(nodes);
  }

  // k-nearest-neighbor inverse-distance interpolation in log space.
  std::vector<std::pair<double, double>> by_distance;  // (distance, log t)
  for (std::size_t i = 0; i < model.log_nodes.size(); ++i) {
    by_distance.emplace_back(std::fabs(model.log_nodes[i] - x),
                             model.log_seconds[i]);
  }
  std::sort(by_distance.begin(), by_distance.end());
  const std::size_t k =
      std::min<std::size_t>(static_cast<std::size_t>(knn_),
                            by_distance.size());
  double weight_sum = 0.0;
  double value = 0.0;
  for (std::size_t i = 0; i < k; ++i) {
    const double w = 1.0 / (by_distance[i].first + 1e-9);
    weight_sum += w;
    value += w * by_distance[i].second;
  }
  return std::exp(value / weight_sum);
}

IceDecomposition IceDecompositionTuner::best_for(int nodes) const {
  IceDecomposition best = IceDecomposition::kCartesian;
  double best_time = lp::kInf;
  for (int d = 0; d < kNumIceDecompositions; ++d) {
    const double t =
        predicted_seconds(nodes, static_cast<IceDecomposition>(d));
    if (t < best_time) {
      best_time = t;
      best = static_cast<IceDecomposition>(d);
    }
  }
  return best;
}

double IceDecompositionTuner::tuned_seconds(int nodes) const {
  return predicted_seconds(nodes, best_for(nodes));
}

IceDecompositionPolicy IceDecompositionTuner::policy() const {
  // Copy the tuner into the closure so the policy outlives it.
  const IceDecompositionTuner copy = *this;
  return [copy](int nodes) { return copy.best_for(nodes); };
}

const perf::FitResult& IceDecompositionTuner::strategy_fit(
    IceDecomposition decomposition) const {
  return models_[static_cast<std::size_t>(decomposition)].fit;
}

}  // namespace hslb::cesm
