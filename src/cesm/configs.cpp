// Ground-truth calibration.
//
// The hidden Table II laws below were derived by inverting the paper's own
// Table III timings (two measured points per component determine a and d;
// b, c are small increasing terms as the paper observed on Intrepid):
//   1 degree    atm: 104 -> ~307 s, 1664 -> ~62 s      =>  a ~ 2.7e4, d ~ 45
//               ocn:  24 -> ~366 s,  384 -> ~62 s      =>  a ~ 7.8e3, d ~ 42
//               ice:  80 -> ~109 s, 1280 -> ~18 s      =>  a ~ 7.8e3, d ~ 12
//               lnd:  15 -> ~101 s,  384 -> ~5.8 s     =>  a ~ 1.5e3, d ~ 2
//   1/8 degree  atm: 5836 -> ~2534 s, 26644 -> ~787 s  =>  a ~ 1.3e7, d ~ 297
//               ocn: 2356 -> ~3785 s, 19460 -> ~712 s  =>  a ~ 8.2e6, d ~ 289
//               ice: 5350 -> ~476 s, 24424 -> ~214 s   =>  a ~ 1.8e6, d ~ 141
//               lnd:  138 -> ~488 s,  2220 -> ~44 s    =>  a ~ 6.5e4, d ~ 15
#include "hslb/cesm/configs.hpp"

#include "hslb/cesm/decomposition.hpp"
#include "hslb/common/error.hpp"

namespace hslb::cesm {

const Component& CaseConfig::component(ComponentKind kind) const {
  const auto it = components.find(kind);
  HSLB_REQUIRE(it != components.end(), "case has no such component");
  return it->second;
}

int CaseConfig::min_nodes_for(ComponentKind kind) const {
  const auto it = min_nodes.find(kind);
  return it == min_nodes.end() ? 1 : it->second;
}

namespace {

Component make_component(ComponentKind kind, double a, double b, double c,
                         double d, double noise_cv = 0.015) {
  TruthParams truth;
  truth.base = perf::PerfParams{a, b, c, d};
  truth.noise_cv = noise_cv;
  return Component(kind, truth);
}

}  // namespace

CaseConfig one_degree_case() {
  CaseConfig config;
  config.name = "1deg (CESM1.1.1, f09 FV atm/lnd, gx1 ocn/ice)";
  config.machine = intrepid();
  config.atm_grid = fv_one_degree();
  config.lnd_grid = fv_one_degree();
  config.ocn_grid = pop_gx1();
  config.ice_grid = pop_gx1();

  config.components[ComponentKind::kAtm] =
      make_component(ComponentKind::kAtm, 2.72e4, 3.0e-4, 1.15, 44.0);
  config.components[ComponentKind::kOcn] =
      make_component(ComponentKind::kOcn, 7.78e3, 2.0e-4, 1.1, 41.0);
  {
    // CICE: default decompositions make the measured curve lumpy (IV-A).
    TruthParams ice;
    ice.base = perf::PerfParams{7.4e3, 1.0e-4, 1.1, 10.0};
    ice.noise_cv = 0.02;
    ice.decomposition_noise = true;
    config.components[ComponentKind::kIce] =
        Component(ComponentKind::kIce, ice);
  }
  config.components[ComponentKind::kLnd] =
      make_component(ComponentKind::kLnd, 1.48e3, 1.0e-4, 1.1, 1.8);
  // Small players, excluded from the HSLB models but present in runs.
  config.components[ComponentKind::kRof] =
      make_component(ComponentKind::kRof, 6.0e1, 0.0, 1.0, 0.6);
  config.components[ComponentKind::kCpl] =
      make_component(ComponentKind::kCpl, 2.4e2, 1.0e-4, 1.1, 2.0);

  config.atm_allowed = atm_allowed_one_degree(config.machine.total_nodes);
  config.ocn_allowed = ocn_allowed_one_degree(config.machine.total_nodes);
  config.min_nodes = {{ComponentKind::kAtm, 8},
                      {ComponentKind::kOcn, 2},
                      {ComponentKind::kIce, 4},
                      {ComponentKind::kLnd, 2}};
  return config;
}

CaseConfig eighth_degree_case() {
  CaseConfig config;
  config.name = "1/8deg (CESM1.2, ne240 SE atm, 1/4deg lnd, tx0.1 ocn/ice)";
  config.machine = intrepid();
  config.atm_grid = se_ne240();
  config.lnd_grid = fv_quarter_degree();
  config.ocn_grid = pop_tx01();
  config.ice_grid = pop_tx01();

  config.components[ComponentKind::kAtm] =
      make_component(ComponentKind::kAtm, 1.305e7, 1.0e-4, 1.1, 290.0);
  {
    // POP at 1/10 degree: efficient only near its tuned decompositions; an
    // arbitrary count pays up to ~28% (the "not captured by the fit" effect
    // behind the unconstrained-ocean entries of Table III).
    TruthParams ocn;
    ocn.base = perf::PerfParams{8.24e6, 2.0e-4, 1.1, 280.0};
    ocn.noise_cv = 0.015;
    ocn.preferred_counts = ocn_allowed_eighth_degree(40960);
    ocn.off_preferred_penalty = 0.28;
    config.components[ComponentKind::kOcn] =
        Component(ComponentKind::kOcn, ocn);
  }
  {
    TruthParams ice;
    ice.base = perf::PerfParams{1.75e6, 2.0e-4, 1.1, 135.0};
    ice.noise_cv = 0.02;
    ice.decomposition_noise = true;
    config.components[ComponentKind::kIce] =
        Component(ComponentKind::kIce, ice);
  }
  config.components[ComponentKind::kLnd] =
      make_component(ComponentKind::kLnd, 6.5e4, 2.0e-4, 1.1, 14.0);
  config.components[ComponentKind::kRof] =
      make_component(ComponentKind::kRof, 1.2e3, 0.0, 1.0, 3.0);
  config.components[ComponentKind::kCpl] =
      make_component(ComponentKind::kCpl, 2.0e4, 1.0e-3, 1.1, 18.0);

  config.atm_allowed = atm_allowed_eighth_degree(config.machine.total_nodes);
  config.ocn_allowed = ocn_allowed_eighth_degree(config.machine.total_nodes);
  config.min_nodes = {{ComponentKind::kAtm, 256},
                      {ComponentKind::kOcn, 480},
                      {ComponentKind::kIce, 128},
                      {ComponentKind::kLnd, 32}};
  return config;
}

CaseConfig scaled_hardware_case(const CaseConfig& base, std::string name,
                                double node_speedup, int total_nodes,
                                int cores_per_node) {
  HSLB_REQUIRE(node_speedup > 0.0, "node speedup must be positive");
  HSLB_REQUIRE(total_nodes >= 8 && cores_per_node >= 1,
               "machine must have at least 8 nodes and 1 core per node");
  CaseConfig out = base;
  out.name = std::move(name);
  out.machine.name = out.name + " (hypothetical)";
  out.machine.total_nodes = total_nodes;
  out.machine.cores_per_node = cores_per_node;
  out.machine.threads_per_task = cores_per_node;

  for (auto& [kind, component] : out.components) {
    TruthParams truth = component.truth();
    // Every time term shrinks by the per-node speedup; the shape of the
    // scaling law (and therefore the layout problem) is preserved.
    truth.base.a /= node_speedup;
    truth.base.b /= node_speedup;
    truth.base.d /= node_speedup;
    component = Component(kind, truth);
  }

  // Keep only allowed counts that fit the new machine.
  std::erase_if(out.atm_allowed,
                [total_nodes](int n) { return n > total_nodes; });
  std::erase_if(out.ocn_allowed,
                [total_nodes](int n) { return n > total_nodes; });
  HSLB_REQUIRE(!out.atm_allowed.empty() && !out.ocn_allowed.empty(),
               "no allowed allocation fits the scaled machine");
  return out;
}

}  // namespace hslb::cesm
