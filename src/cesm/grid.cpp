#include "hslb/cesm/grid.hpp"

namespace hslb::cesm {

const char* to_string(GridKind kind) {
  switch (kind) {
    case GridKind::kFiniteVolume:
      return "finite-volume";
    case GridKind::kSpectralElement:
      return "spectral-element";
    case GridKind::kDisplacedPole:
      return "displaced-pole";
    case GridKind::kTripole:
      return "tripole";
  }
  return "unknown";
}

Grid fv_one_degree() {
  return Grid{GridKind::kFiniteVolume, "f09 (0.9x1.25 FV)", 288, 192};
}

Grid fv_quarter_degree() {
  return Grid{GridKind::kFiniteVolume, "quarter-degree FV", 1152, 768};
}

Grid se_ne240() {
  // 6 cube faces x ne^2 elements, ne = 240.
  return Grid{GridKind::kSpectralElement, "ne240 (1/8 deg HOMME-SE)", 240,
              6 * 240};
}

Grid pop_gx1() {
  return Grid{GridKind::kDisplacedPole, "gx1 (1 deg displaced pole)", 320, 384};
}

Grid pop_tx01() {
  return Grid{GridKind::kTripole, "tx0.1 (1/10 deg tripole)", 3600, 2400};
}

}  // namespace hslb::cesm
