#include "hslb/cesm/fault.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>

#include "hslb/common/error.hpp"

namespace hslb::cesm {

std::uint64_t mix_fault_key(std::uint64_t seed, std::uint64_t run_key,
                            std::uint64_t salt) {
  std::uint64_t z = seed ^ (run_key * 0x9e3779b97f4a7c15ull) ^
                    (salt * 0xbf58476d1ce4e5b9ull);
  z ^= z >> 30;
  z *= 0xbf58476d1ce4e5b9ull;
  z ^= z >> 27;
  z *= 0x94d049bb133111ebull;
  z ^= z >> 31;
  return z;
}

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNone:
      return "none";
    case FaultKind::kLaunchFailure:
      return "launch-failure";
    case FaultKind::kHang:
      return "hang";
    case FaultKind::kStraggler:
      return "straggler";
    case FaultKind::kCorruptOutput:
      return "corrupt-output";
    case FaultKind::kTruncatedOutput:
      return "truncated-output";
    case FaultKind::kNoiseSpike:
      return "noise-spike";
  }
  return "unknown";
}

bool FaultSpec::enabled() const { return total_rate() > 0.0; }

double FaultSpec::total_rate() const {
  return launch_failure_prob + hang_prob + straggler_prob + corrupt_prob +
         truncate_prob + spike_prob;
}

FaultSpec FaultSpec::uniform(double rate, std::uint64_t seed) {
  HSLB_REQUIRE(rate >= 0.0 && rate <= 1.0,
               "fault rate must be a probability");
  FaultSpec spec;
  spec.launch_failure_prob = 0.30 * rate;
  spec.hang_prob = 0.10 * rate;
  spec.straggler_prob = 0.20 * rate;
  spec.corrupt_prob = 0.10 * rate;
  spec.truncate_prob = 0.10 * rate;
  spec.spike_prob = 0.20 * rate;
  spec.seed = seed;
  return spec;
}

FaultInjector::FaultInjector(FaultSpec spec) : spec_(spec) {
  HSLB_REQUIRE(spec_.total_rate() <= 1.0,
               "fault probabilities must sum to at most 1");
  HSLB_REQUIRE(spec_.straggler_multiplier >= 1.0 &&
                   spec_.spike_multiplier >= 1.0,
               "fault multipliers must be >= 1");
}

FaultKind FaultInjector::draw(std::uint64_t run_key, int attempt) const {
  if (!spec_.enabled()) {
    return FaultKind::kNone;
  }
  common::Rng rng(mix_fault_key(spec_.seed, run_key,
                                0xA7ull + static_cast<std::uint64_t>(attempt)));
  const double u = rng.uniform();
  double edge = spec_.launch_failure_prob;
  if (u < edge) {
    return FaultKind::kLaunchFailure;
  }
  edge += spec_.hang_prob;
  if (u < edge) {
    return FaultKind::kHang;
  }
  edge += spec_.straggler_prob;
  if (u < edge) {
    return FaultKind::kStraggler;
  }
  edge += spec_.corrupt_prob;
  if (u < edge) {
    return FaultKind::kCorruptOutput;
  }
  edge += spec_.truncate_prob;
  if (u < edge) {
    return FaultKind::kTruncatedOutput;
  }
  edge += spec_.spike_prob;
  if (u < edge) {
    return FaultKind::kNoiseSpike;
  }
  return FaultKind::kNone;
}

int FaultInjector::spike_target(std::uint64_t run_key, int attempt,
                                int choices) const {
  HSLB_REQUIRE(choices >= 1, "spike_target needs at least one choice");
  common::Rng rng(mix_fault_key(spec_.seed, run_key,
                                0x51ull + static_cast<std::uint64_t>(attempt)));
  return static_cast<int>(rng.uniform_int(0, choices - 1));
}

std::uint64_t FaultInjector::text_seed(std::uint64_t run_key,
                                       int attempt) const {
  return mix_fault_key(spec_.seed, run_key,
                       0x7Eull + static_cast<std::uint64_t>(attempt));
}

std::string corrupt_text(const std::string& text, std::uint64_t seed) {
  if (text.empty()) {
    return text;
  }
  common::Rng rng(seed);
  std::string out = text;
  const auto len = static_cast<std::int64_t>(out.size());
  // A handful of short junk bursts, like a partially flushed buffer.
  const int bursts = 2 + static_cast<int>(rng.uniform_int(0, 3));
  for (int b = 0; b < bursts; ++b) {
    const auto start =
        static_cast<std::size_t>(rng.uniform_int(0, len - 1));
    const auto burst_len = static_cast<std::size_t>(rng.uniform_int(3, 24));
    for (std::size_t i = start;
         i < std::min(out.size(), start + burst_len); ++i) {
      out[i] = static_cast<char>(rng.uniform_int(33, 126));
    }
  }
  // Scatter digit swaps so some numbers silently change value.
  const int swaps = 4 + static_cast<int>(rng.uniform_int(0, 7));
  for (int s = 0; s < swaps; ++s) {
    const auto at = static_cast<std::size_t>(rng.uniform_int(0, len - 1));
    if (std::isdigit(static_cast<unsigned char>(out[at])) != 0) {
      out[at] = static_cast<char>('0' + rng.uniform_int(0, 9));
    }
  }
  return out;
}

std::string truncate_text(const std::string& text, std::uint64_t seed) {
  if (text.size() < 2) {
    return "";
  }
  common::Rng rng(seed);
  const double keep = rng.uniform(0.1, 0.9);
  return text.substr(0, static_cast<std::size_t>(
                            keep * static_cast<double>(text.size())));
}

}  // namespace hslb::cesm
