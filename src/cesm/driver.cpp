#include "hslb/cesm/driver.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "hslb/common/error.hpp"
#include "hslb/common/table.hpp"
#include "hslb/common/timing.hpp"
#include "hslb/obs/obs.hpp"

namespace hslb::cesm {
namespace {

/// Log-spaced edges for per-day *simulated* component seconds.
std::vector<double> day_seconds_bounds() {
  return {0.1, 0.3, 1.0, 3.0, 10.0, 30.0, 100.0, 300.0, 1000.0};
}

/// Cached per-run instruments (null members when no registry installed).
struct DriverMetrics {
  obs::Histogram* day_ice = nullptr;
  obs::Histogram* day_lnd = nullptr;
  obs::Histogram* day_atm = nullptr;
  obs::Histogram* day_ocn = nullptr;
  obs::Histogram* day_wall_ms = nullptr;
  obs::Counter* wait_atm_group = nullptr;
  obs::Counter* wait_ocn_group = nullptr;
  obs::Counter* days = nullptr;

  explicit DriverMetrics(obs::Registry* registry) {
    if (registry == nullptr) {
      return;
    }
    day_ice = &registry->histogram("cesm.day_seconds.ice",
                                   day_seconds_bounds());
    day_lnd = &registry->histogram("cesm.day_seconds.lnd",
                                   day_seconds_bounds());
    day_atm = &registry->histogram("cesm.day_seconds.atm",
                                   day_seconds_bounds());
    day_ocn = &registry->histogram("cesm.day_seconds.ocn",
                                   day_seconds_bounds());
    day_wall_ms = &registry->histogram("cesm.day_driver_ms");
    wait_atm_group = &registry->counter("cesm.sync_wait_s.atm_group");
    wait_ocn_group = &registry->counter("cesm.sync_wait_s.ocn_group");
    days = &registry->counter("cesm.days_simulated");
  }
};

/// One component's per-day busy time: the 5-day truth law divided across
/// days with independent per-day jitter (so day-to-day imbalance shows up in
/// the component timers and in the sync waits, as on the real machine).
double day_time(const Component& component, int nodes, int days,
                common::Rng& rng) {
  const double per_day = component.true_time(nodes) / days;
  return per_day * rng.lognormal_noise(component.truth().noise_cv);
}

/// Sea-ice day time honoring an optional learned decomposition policy.
double ice_day_time(const Component& ice, int nodes, int days,
                    common::Rng& rng, const IceDecompositionPolicy& policy) {
  if (!policy || !ice.truth().decomposition_noise) {
    return day_time(ice, nodes, days, rng);
  }
  const int decomposition = static_cast<int>(policy(nodes));
  const double per_day = ice.true_time_with(nodes, decomposition) / days;
  return per_day * rng.lognormal_noise(ice.truth().noise_cv);
}

}  // namespace

RunResult run_case(const CaseConfig& config, const Layout& layout,
                   std::uint64_t seed) {
  return run_case(config, layout, seed, RunPerturbation{});
}

RunResult run_case(const CaseConfig& config, const Layout& layout,
                   std::uint64_t seed, const RunPerturbation& perturbation) {
  HSLB_REQUIRE(perturbation.slowdown >= 1.0,
               "run perturbation slowdown must be >= 1");
  if (const auto why = layout.invalid_reason(config.machine.total_nodes)) {
    throw InvalidArgument("layout does not fit the machine: " + *why);
  }
  const int days = config.simulated_days;
  HSLB_REQUIRE(days >= 1, "need at least one simulated day");
  const int steps = config.coupling_steps_per_day;
  HSLB_REQUIRE(steps >= 1, "need at least one coupling step per day");

  obs::ScopedSpan run_span("cesm.run_case");
  if (run_span.active()) {
    run_span.arg("layout", std::string(to_string(layout.kind)));
    run_span.arg("nodes", static_cast<long long>(layout.footprint()));
    run_span.arg("days", static_cast<long long>(config.simulated_days));
  }
  const DriverMetrics metrics(obs::current_metrics());
  common::WallTimer day_timer;

  common::Rng rng(seed);
  RunResult out;
  out.layout = layout;

  const int n_ice = layout.at(ComponentKind::kIce);
  const int n_lnd = layout.at(ComponentKind::kLnd);
  const int n_atm = layout.at(ComponentKind::kAtm);
  const int n_ocn = layout.at(ComponentKind::kOcn);

  const Component& ice = config.component(ComponentKind::kIce);
  const Component& lnd = config.component(ComponentKind::kLnd);
  const Component& atm = config.component(ComponentKind::kAtm);
  const Component& ocn = config.component(ComponentKind::kOcn);
  const Component& rof = config.component(ComponentKind::kRof);
  const Component& cpl = config.component(ComponentKind::kCpl);

  std::map<ComponentKind, double>& timers = out.component_seconds;

  double model_total = 0.0;
  double wall_total = 0.0;
  const int day_slices = days * steps;
  for (int day = 0; day < days; ++day) {
    // The ocean advances a whole day between couplings; the atmosphere
    // group exchanges `steps` times within the day, each step paying the
    // synchronization of its own noise draw.  A straggler perturbation
    // stretches every draw uniformly (slowdown 1.0 is exact identity).
    const double slow = perturbation.slowdown;
    const double t_ocn = day_time(ocn, n_ocn, days, rng) * slow;

    double t_ice = 0.0;
    double t_lnd = 0.0;
    double t_atm = 0.0;
    double t_rof = 0.0;
    double t_cpl = 0.0;
    double atm_side_day = 0.0;  // layouts 1-2: elapsed time of the group
    double serial_day = 0.0;    // layout 3: everything sequential
    for (int step = 0; step < steps; ++step) {
      const double s_ice = ice_day_time(ice, n_ice, day_slices, rng,
                                        config.ice_decomposition_policy) *
                           slow;
      const double s_lnd = day_time(lnd, n_lnd, day_slices, rng) * slow;
      const double s_atm = day_time(atm, n_atm, day_slices, rng) * slow;
      // River shares the land group; coupler shares the atmosphere group.
      const double s_rof = day_time(rof, n_lnd, day_slices, rng) * slow;
      const double s_cpl = day_time(cpl, n_atm, day_slices, rng) * slow;
      t_ice += s_ice;
      t_lnd += s_lnd;
      t_atm += s_atm;
      t_rof += s_rof;
      t_cpl += s_cpl;
      switch (layout.kind) {
        case LayoutKind::kHybrid:
          atm_side_day += std::max(s_ice, s_lnd + s_rof) + s_atm;
          break;
        case LayoutKind::kSequentialGroup:
          atm_side_day += s_ice + s_lnd + s_rof + s_atm;
          break;
        case LayoutKind::kFullySequential:
          serial_day += s_ice + s_lnd + s_rof + s_atm;
          break;
      }
    }

    timers[ComponentKind::kIce] += t_ice;
    timers[ComponentKind::kLnd] += t_lnd;
    timers[ComponentKind::kAtm] += t_atm;
    timers[ComponentKind::kOcn] += t_ocn;
    timers[ComponentKind::kRof] += t_rof;
    timers[ComponentKind::kCpl] += t_cpl;

    model_total += combine_times(layout.kind, t_ice, t_lnd, t_atm, t_ocn);
    double wall_day = 0.0;
    switch (layout.kind) {
      case LayoutKind::kHybrid:
      case LayoutKind::kSequentialGroup:
        wall_day = std::max(atm_side_day, t_ocn);
        break;
      case LayoutKind::kFullySequential:
        wall_day = serial_day + t_ocn;
        break;
    }
    wall_total += wall_day + t_cpl;

    if (metrics.days != nullptr) {
      metrics.days->add(1.0);
      metrics.day_ice->observe(t_ice);
      metrics.day_lnd->observe(t_lnd);
      metrics.day_atm->observe(t_atm);
      metrics.day_ocn->observe(t_ocn);
      // Real (driver) wall time spent computing this simulated day.
      metrics.day_wall_ms->observe(day_timer.lap() * 1e3);
      // Sync wait: the layout group that finishes early idles until the
      // other side's coupling point (zero for the fully sequential layout).
      if (layout.kind != LayoutKind::kFullySequential) {
        metrics.wait_atm_group->add(wall_day - atm_side_day);
        metrics.wait_ocn_group->add(wall_day - t_ocn);
      }
    }
  }

  out.model_seconds = model_total;
  out.total_seconds = wall_total;
  return out;
}

std::string render_timing_file(const CaseConfig& config,
                               const RunResult& result) {
  std::ostringstream os;
  os << "---------------- CESM timing summary (simulated) ----------------\n";
  os << "  case        : " << config.name << '\n';
  os << "  machine     : " << config.machine.name << '\n';
  os << "  layout      : " << to_string(result.layout.kind) << '\n';
  os << "  run length  : " << config.simulated_days << " simulated days\n\n";

  common::Table table({"component", "nodes", "cores", "seconds", "sec/day"});
  for (const auto& [kind, seconds] : result.component_seconds) {
    table.add_row();
    table.cell(std::string(to_string(kind)));
    int nodes = 0;
    if (result.layout.nodes.count(kind) != 0) {
      nodes = result.layout.nodes.at(kind);
    } else if (kind == ComponentKind::kRof) {
      nodes = result.layout.at(ComponentKind::kLnd);
    } else if (kind == ComponentKind::kCpl) {
      nodes = result.layout.at(ComponentKind::kAtm);
    }
    table.cell(static_cast<long long>(nodes));
    table.cell(static_cast<long long>(config.machine.cores(nodes)));
    table.cell(seconds, 3);
    table.cell(seconds / config.simulated_days, 3);
  }
  os << table.to_text();
  os << '\n';
  os << "  model time (4 components, layout-combined): "
     << common::format_fixed(result.model_seconds, 3) << " s\n";
  os << "  total wall clock (incl. cpl/rof)          : "
     << common::format_fixed(result.total_seconds, 3) << " s\n";
  return os.str();
}

}  // namespace hslb::cesm
