#include "hslb/hslb/resilience.hpp"

#include <algorithm>
#include <cmath>

#include "hslb/common/error.hpp"
#include "hslb/hslb/objectives.hpp"
#include "hslb/nlp/nnls.hpp"
#include "hslb/obs/obs.hpp"

namespace hslb::core {
namespace {

using cesm::ComponentKind;

double median_of(std::vector<double> values) {
  HSLB_ASSERT(!values.empty(), "median of empty vector");
  std::sort(values.begin(), values.end());
  const std::size_t m = values.size() / 2;
  return values.size() % 2 == 1 ? values[m]
                                : 0.5 * (values[m - 1] + values[m]);
}

int min_nodes_of(const LayoutModelSpec& spec, ComponentKind kind) {
  const auto it = spec.min_nodes.find(kind);
  return it == spec.min_nodes.end() ? 1 : std::max(1, it->second);
}

/// Score under the spec's objective; lower is better for all three.
double objective_score(const LayoutModelSpec& spec,
                       const BalanceMetrics& metrics) {
  switch (spec.objective) {
    case Objective::kMinMax:
      return metrics.combined_total;
    case Objective::kMaxMin:
      return -metrics.min_component;
    case Objective::kMinSum:
      return metrics.sum_components;
  }
  return metrics.combined_total;
}

/// Candidate counts for a component: the allowed set when one is given,
/// otherwise ~24 log-spaced integers across [lo, hi].
std::vector<int> candidate_counts(const std::vector<int>& allowed, int lo,
                                  int hi) {
  std::vector<int> out;
  if (!allowed.empty()) {
    for (const int v : allowed) {
      if (v >= lo && v <= hi) {
        out.push_back(v);
      }
    }
    return out;
  }
  if (hi < lo) {
    return out;
  }
  const double log_lo = std::log(static_cast<double>(lo));
  const double log_hi = std::log(static_cast<double>(std::max(lo + 1, hi)));
  constexpr int kSteps = 24;
  int previous = 0;
  for (int k = 0; k <= kSteps; ++k) {
    const int v = static_cast<int>(std::lround(
        std::exp(log_lo + (log_hi - log_lo) * k / kSteps)));
    const int clamped = std::clamp(v, lo, hi);
    if (clamped != previous) {
      out.push_back(clamped);
      previous = clamped;
    }
  }
  return out;
}

}  // namespace

bool ResilienceReport::degraded() const {
  if (solver_fallback) {
    return true;
  }
  for (const auto& kv : components) {
    if (kv.second.degraded_fit) {
      return true;
    }
  }
  return false;
}

FilteredSeries reject_outliers(const cesm::Series& series, double threshold,
                               const perf::FitOptions& fit_options) {
  HSLB_REQUIRE(threshold > 0.0, "outlier threshold must be positive");
  FilteredSeries out;
  if (series.nodes.size() < 4) {
    out.series = series;  // too few samples for a meaningful MAD
    return out;
  }

  // Robust pre-fit so outliers do not drag the reference curve toward
  // themselves before being measured against it.
  perf::FitOptions robust = fit_options;
  robust.robust_loss = true;
  const perf::FitResult reference =
      perf::fit(series.nodes, series.seconds, robust);

  // Relative residuals against the robust curve.
  std::vector<double> residuals(series.nodes.size());
  for (std::size_t i = 0; i < series.nodes.size(); ++i) {
    const double predicted = reference.model(series.nodes[i]);
    residuals[i] = (series.seconds[i] - predicted) /
                   std::max(std::fabs(predicted), 1e-12);
  }
  const double center = median_of(residuals);
  std::vector<double> deviations(residuals.size());
  for (std::size_t i = 0; i < residuals.size(); ++i) {
    deviations[i] = std::fabs(residuals[i] - center);
  }
  const double mad = std::max(median_of(deviations), 1e-12);

  for (std::size_t i = 0; i < series.nodes.size(); ++i) {
    const double z = 0.6745 * deviations[i] / mad;
    // The absolute floor keeps ultra-tight series (MAD ~ 0) from shedding
    // good samples over sub-percent wiggles.
    if (z > threshold && deviations[i] > 0.05) {
      ++out.rejected;
      HSLB_COUNT("hslb.resilience.outliers_rejected", 1);
      continue;
    }
    out.series.nodes.push_back(series.nodes[i]);
    out.series.seconds.push_back(series.seconds[i]);
  }
  return out;
}

perf::FitResult fallback_fit(const cesm::Series& series) {
  HSLB_REQUIRE(!series.nodes.empty(),
               "fallback fit needs at least one sample");
  const std::size_t m = series.nodes.size();
  linalg::Matrix a(m, 2);
  for (std::size_t i = 0; i < m; ++i) {
    HSLB_REQUIRE(series.nodes[i] > 0.0, "node counts must be positive");
    a(i, 0) = 1.0 / series.nodes[i];
    a(i, 1) = 1.0;
  }
  const nlp::NnlsResult nnls = nlp::solve_nnls(a, series.seconds);

  perf::PerfParams params;
  params.a = nnls.x[0];
  params.d = nnls.x[1];
  perf::FitResult out;
  out.model = perf::PerfModel(params);
  out.sse = nnls.residual_norm * nnls.residual_norm;
  out.rmse = std::sqrt(out.sse / static_cast<double>(m));
  std::vector<double> predicted(m);
  for (std::size_t i = 0; i < m; ++i) {
    predicted[i] = out.model(series.nodes[i]);
  }
  out.r_squared = perf::r_squared(series.seconds, predicted);
  out.converged = nnls.converged;
  out.degrees_of_freedom = static_cast<int>(m) - 2;
  HSLB_COUNT("hslb.resilience.fallback_fits", 1);
  return out;
}

Allocation heuristic_allocation(const LayoutModelSpec& spec) {
  HSLB_REQUIRE(spec.total_nodes >= 4, "machine slice too small");
  for (const ComponentKind kind : cesm::kModeledComponents) {
    HSLB_REQUIRE(spec.perf.count(kind) == 1,
                 "heuristic allocation needs every fitted curve");
  }
  HSLB_COUNT("hslb.resilience.heuristic_solves", 1);

  const int total = spec.total_nodes;
  const int min_atm = min_nodes_of(spec, ComponentKind::kAtm);
  const int min_ocn = min_nodes_of(spec, ComponentKind::kOcn);
  const int min_ice = min_nodes_of(spec, ComponentKind::kIce);
  const int min_lnd = min_nodes_of(spec, ComponentKind::kLnd);

  const auto evaluate = [&spec](const std::map<ComponentKind, int>& nodes) {
    std::map<ComponentKind, double> seconds;
    for (const auto& [kind, n] : nodes) {
      seconds[kind] = spec.perf.at(kind)(static_cast<double>(n));
    }
    return std::make_pair(evaluate_balance(spec.layout, nodes, seconds),
                          seconds);
  };

  bool found = false;
  double best_score = 0.0;
  Allocation best;

  const auto consider = [&](const std::map<ComponentKind, int>& nodes) {
    const auto [metrics, seconds] = evaluate(nodes);
    const double score = objective_score(spec, metrics);
    if (!found || score < best_score) {
      found = true;
      best_score = score;
      best.nodes = nodes;
      best.predicted_seconds = seconds;
      best.predicted_total = metrics.combined_total;
    }
  };

  if (spec.layout == cesm::LayoutKind::kFullySequential) {
    // Everything runs one after another: give every component the machine
    // (snapped into its allowed set where one exists).
    std::map<ComponentKind, int> nodes;
    nodes[ComponentKind::kOcn] =
        spec.ocn_allowed.empty()
            ? total
            : cesm::snap_down(spec.ocn_allowed, total).value;
    nodes[ComponentKind::kAtm] =
        spec.atm_allowed.empty()
            ? total
            : cesm::snap_down(spec.atm_allowed, total).value;
    nodes[ComponentKind::kIce] = total;
    nodes[ComponentKind::kLnd] = total;
    consider(nodes);
  } else {
    for (const int ocn :
         candidate_counts(spec.ocn_allowed, min_ocn, total - min_atm)) {
      const int side = total - ocn;  // nodes left beside the ocean
      int atm = side;
      if (!spec.atm_allowed.empty()) {
        const cesm::SnapResult snapped =
            cesm::snap_down(spec.atm_allowed, side);
        if (!snapped.fits) {
          continue;
        }
        atm = snapped.value;
      }
      if (atm < min_atm) {
        continue;
      }
      if (spec.layout == cesm::LayoutKind::kSequentialGroup) {
        // Ice, land, and atmosphere run sequentially on the same slice.
        std::map<ComponentKind, int> nodes{{ComponentKind::kOcn, ocn},
                                           {ComponentKind::kAtm, atm},
                                           {ComponentKind::kIce, side},
                                           {ComponentKind::kLnd, side}};
        consider(nodes);
        continue;
      }
      // Hybrid: ice and land split the atmosphere group.
      for (int percent = 5; percent <= 95; percent += 5) {
        const int ice = std::max(
            min_ice, static_cast<int>(std::lround(atm * percent / 100.0)));
        const int lnd = atm - ice;
        if (lnd < min_lnd) {
          continue;
        }
        std::map<ComponentKind, int> nodes{{ComponentKind::kOcn, ocn},
                                           {ComponentKind::kAtm, atm},
                                           {ComponentKind::kIce, ice},
                                           {ComponentKind::kLnd, lnd}};
        consider(nodes);
      }
    }
  }

  HSLB_REQUIRE(found, "heuristic fallback found no feasible allocation");
  return best;
}

}  // namespace hslb::core
