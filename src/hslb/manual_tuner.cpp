#include "hslb/hslb/manual_tuner.hpp"

#include <algorithm>
#include <cmath>

#include "hslb/common/error.hpp"

namespace hslb::core {

using cesm::ComponentKind;
using cesm::LayoutKind;

ScalingCurve::ScalingCurve(std::vector<double> nodes,
                           std::vector<double> seconds) {
  HSLB_REQUIRE(nodes.size() == seconds.size() && nodes.size() >= 2,
               "scaling curve needs at least two samples");
  // Sort by node count and average duplicate counts (repeated benchmarks).
  std::vector<std::pair<double, double>> points;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    HSLB_REQUIRE(nodes[i] > 0.0 && seconds[i] > 0.0,
                 "scaling samples must be positive");
    points.emplace_back(nodes[i], seconds[i]);
  }
  std::sort(points.begin(), points.end());
  for (std::size_t i = 0; i < points.size(); ++i) {
    double t_sum = points[i].second;
    std::size_t count = 1;
    while (i + 1 < points.size() && points[i + 1].first == points[i].first) {
      ++i;
      t_sum += points[i].second;
      ++count;
    }
    log_n_.push_back(std::log(points[i].first));
    log_t_.push_back(std::log(t_sum / static_cast<double>(count)));
  }
  HSLB_REQUIRE(log_n_.size() >= 2,
               "scaling curve needs two distinct node counts");
}

double ScalingCurve::operator()(double nodes) const {
  HSLB_REQUIRE(nodes > 0.0, "scaling curve read needs nodes > 0");
  const double x = std::log(nodes);
  std::size_t hi = 1;
  while (hi + 1 < log_n_.size() && log_n_[hi] < x) {
    ++hi;
  }
  const std::size_t lo = hi - 1;
  const double f = (x - log_n_[lo]) / (log_n_[hi] - log_n_[lo]);
  return std::exp(log_t_[lo] + f * (log_t_[hi] - log_t_[lo]));
}

namespace {

int round_to_multiple(double value, int multiple) {
  const int m = std::max(1, multiple);
  return std::max(m, static_cast<int>(std::lround(value / m)) * m);
}

/// Allowed-set member that is nearest the target, preferring "round"
/// numbers (multiples of `rounding`) when one is close.
int human_snap(const std::vector<int>& allowed, int target, int rounding) {
  HSLB_REQUIRE(!allowed.empty(), "empty allowed set");
  int nearest = allowed.front();
  int nearest_round = -1;
  for (const int v : allowed) {
    if (std::abs(v - target) < std::abs(nearest - target)) {
      nearest = v;
    }
    if (v % std::max(1, rounding) == 0 &&
        (nearest_round < 0 ||
         std::abs(v - target) < std::abs(nearest_round - target))) {
      nearest_round = v;
    }
  }
  // Prefer the round value if it costs at most ~15% extra distance.
  if (nearest_round > 0 &&
      std::abs(nearest_round - target) <=
          std::max(2.0, 0.15 * target + std::abs(nearest - target))) {
    return nearest_round;
  }
  return nearest;
}

}  // namespace

ManualResult run_manual(const cesm::CaseConfig& case_config,
                        const ManualTunerConfig& config,
                        const std::vector<cesm::BenchmarkSample>& samples) {
  HSLB_REQUIRE(config.total_nodes >= 8, "machine slice too small");
  const int N = config.total_nodes;

  // Read the plots: one interpolated curve per component.
  std::map<ComponentKind, ScalingCurve> curves;
  std::map<ComponentKind, double> max_sampled;
  for (const ComponentKind kind : cesm::kModeledComponents) {
    const cesm::Series series = cesm::series_for(samples, kind);
    curves.emplace(kind, ScalingCurve(series.nodes, series.seconds));
    max_sampled[kind] =
        *std::max_element(series.nodes.begin(), series.nodes.end());
  }
  const auto read = [&](ComponentKind kind, int nodes) {
    return curves.at(kind)(nodes);
  };

  const int min_ice = case_config.min_nodes_for(ComponentKind::kIce);
  const int min_lnd = case_config.min_nodes_for(ComponentKind::kLnd);
  const int min_atm = case_config.min_nodes_for(ComponentKind::kAtm);
  const int min_ocn = case_config.min_nodes_for(ComponentKind::kOcn);

  // An expert does not allocate (far) beyond the benchmarked range: curve
  // reads out there would be extrapolation, which they rightly distrust.
  const int ocn_cap = static_cast<int>(
      std::min<double>(N - min_atm, max_sampled[ComponentKind::kOcn] * 1.25));

  // Candidate ocean allocations: a handful of fractions of the machine.
  std::vector<int> ocn_candidates;
  for (int k = 0; k < std::max(2, config.candidate_rounds); ++k) {
    const double frac =
        0.08 + (0.30 - 0.08) * k / std::max(1, config.candidate_rounds - 1);
    int target = static_cast<int>(frac * N);
    target = std::clamp(target, min_ocn, std::max(min_ocn, ocn_cap));
    int choice;
    if (config.constrain_ocean && !case_config.ocn_allowed.empty()) {
      std::vector<int> feasible;
      for (const int v : case_config.ocn_allowed) {
        if (v >= min_ocn && v <= ocn_cap) {
          feasible.push_back(v);
        }
      }
      if (feasible.empty()) {
        continue;
      }
      choice = human_snap(feasible, target, config.rounding);
    } else {
      choice = std::clamp(round_to_multiple(target, config.rounding), min_ocn,
                          std::max(min_ocn, ocn_cap));
    }
    if (std::find(ocn_candidates.begin(), ocn_candidates.end(), choice) ==
        ocn_candidates.end()) {
      ocn_candidates.push_back(choice);
    }
  }
  HSLB_REQUIRE(!ocn_candidates.empty(), "no feasible ocean candidate");

  // Evaluate each candidate off the plots and keep the best-looking one.
  ManualResult best;
  best.estimated_total = lp::kInf;
  for (const int ocn : ocn_candidates) {
    const int atm_budget = N - ocn;
    if (atm_budget < min_atm) {
      continue;
    }
    int atm;
    if (!case_config.atm_allowed.empty()) {
      std::vector<int> feasible;
      for (const int v : case_config.atm_allowed) {
        if (v >= min_atm && v <= atm_budget) {
          feasible.push_back(v);
        }
      }
      if (feasible.empty()) {
        continue;
      }
      atm = human_snap(feasible, atm_budget, config.rounding);
    } else {
      atm = std::clamp(round_to_multiple(atm_budget, config.rounding),
                       min_atm, atm_budget);
    }

    // Split the atmosphere group between ice and land, balancing the two
    // curve reads at human granularity (layout 1); the other layouts give
    // each sequential component the whole group.
    int ice = 0;
    int lnd = 0;
    if (config.layout == LayoutKind::kHybrid) {
      double best_gap = lp::kInf;
      const int step = std::max(1, config.rounding);
      for (int trial_ice = min_ice; trial_ice <= atm - min_lnd;
           trial_ice += step) {
        const int trial_lnd = atm - trial_ice;
        const double gap = std::fabs(read(ComponentKind::kIce, trial_ice) -
                                     read(ComponentKind::kLnd, trial_lnd));
        if (gap < best_gap) {
          best_gap = gap;
          ice = trial_ice;
          lnd = trial_lnd;
        }
      }
      if (ice == 0) {
        continue;  // group too small to split
      }
    } else {
      ice = lnd = atm;
    }

    const double t_ice = read(ComponentKind::kIce, ice);
    const double t_lnd = read(ComponentKind::kLnd, lnd);
    const double t_atm = read(ComponentKind::kAtm, atm);
    const double t_ocn = read(ComponentKind::kOcn, ocn);
    const double total =
        cesm::combine_times(config.layout, t_ice, t_lnd, t_atm, t_ocn);
    if (total < best.estimated_total) {
      best.estimated_total = total;
      best.nodes = {{ComponentKind::kIce, ice},
                    {ComponentKind::kLnd, lnd},
                    {ComponentKind::kAtm, atm},
                    {ComponentKind::kOcn, ocn}};
      best.estimated_seconds = {{ComponentKind::kIce, t_ice},
                                {ComponentKind::kLnd, t_lnd},
                                {ComponentKind::kAtm, t_atm},
                                {ComponentKind::kOcn, t_ocn}};
    }
  }
  HSLB_REQUIRE(std::isfinite(best.estimated_total),
               "manual tuner found no feasible layout");

  // Submit the chosen layout.
  Allocation allocation;
  allocation.nodes = best.nodes;
  const cesm::Layout layout = allocation.as_layout(config.layout);
  best.run = cesm::run_case(case_config, layout, config.seed);
  for (const ComponentKind kind : cesm::kModeledComponents) {
    best.actual_seconds[kind] = best.run.component_seconds.at(kind);
  }
  best.actual_total = best.run.model_seconds;
  return best;
}

}  // namespace hslb::core
