#include "hslb/hslb/objectives.hpp"

#include <algorithm>
#include <cmath>

#include "hslb/common/error.hpp"

namespace hslb::core {

using cesm::ComponentKind;

BalanceMetrics evaluate_balance(
    cesm::LayoutKind layout, const std::map<ComponentKind, int>& nodes,
    const std::map<ComponentKind, double>& seconds) {
  BalanceMetrics out;
  out.min_component = lp::kInf;
  for (const ComponentKind kind : cesm::kModeledComponents) {
    HSLB_REQUIRE(seconds.count(kind) == 1,
                 "evaluate_balance needs a time for every component");
    const double t = seconds.at(kind);
    out.max_component = std::max(out.max_component, t);
    out.min_component = std::min(out.min_component, t);
    out.sum_components += t;
  }
  out.combined_total = cesm::combine_times(
      layout, seconds.at(ComponentKind::kIce), seconds.at(ComponentKind::kLnd),
      seconds.at(ComponentKind::kAtm), seconds.at(ComponentKind::kOcn));
  out.imbalance =
      out.min_component > 0.0 ? out.max_component / out.min_component - 1.0
                              : lp::kInf;
  out.icelnd_gap = std::fabs(seconds.at(ComponentKind::kIce) -
                             seconds.at(ComponentKind::kLnd));

  int footprint = 0;
  if (!nodes.empty()) {
    const int ice = nodes.at(ComponentKind::kIce);
    const int lnd = nodes.at(ComponentKind::kLnd);
    const int atm = nodes.at(ComponentKind::kAtm);
    const int ocn = nodes.at(ComponentKind::kOcn);
    switch (layout) {
      case cesm::LayoutKind::kHybrid:
        footprint = std::max(atm, ice + lnd) + ocn;
        break;
      case cesm::LayoutKind::kSequentialGroup:
        footprint = std::max({ice, lnd, atm}) + ocn;
        break;
      case cesm::LayoutKind::kFullySequential:
        footprint = std::max({ice, lnd, atm, ocn});
        break;
    }
  }
  out.node_seconds = footprint * out.combined_total;
  return out;
}

double simulated_years_per_day(int days, double seconds) {
  HSLB_REQUIRE(days >= 1 && seconds > 0.0,
               "throughput needs positive days and seconds");
  const double model_years = days / 365.0;
  const double wall_days = seconds / 86400.0;
  return model_years / wall_days;
}

}  // namespace hslb::core
