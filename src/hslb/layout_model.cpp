#include "hslb/hslb/layout_model.hpp"

#include <algorithm>
#include <cmath>

#include "hslb/common/error.hpp"

namespace hslb::core {

using cesm::ComponentKind;
using cesm::LayoutKind;

const char* to_string(Objective objective) {
  switch (objective) {
    case Objective::kMinMax:
      return "min-max (eq. 1)";
    case Objective::kMaxMin:
      return "max-min (eq. 2)";
    case Objective::kMinSum:
      return "min-sum (eq. 3)";
  }
  return "unknown";
}

namespace {

/// Keep only set members inside [lo, hi].
std::vector<double> filter_set(const std::vector<int>& values, int lo,
                               int hi) {
  std::vector<double> out;
  for (const int v : values) {
    if (v >= lo && v <= hi) {
      out.push_back(v);
    }
  }
  return out;
}

}  // namespace

minlp::Model build_layout_model(const LayoutModelSpec& spec,
                                LayoutModelVars* vars_out) {
  HSLB_REQUIRE(spec.total_nodes >= 4, "need at least 4 nodes to lay out");
  for (const ComponentKind kind : cesm::kModeledComponents) {
    HSLB_REQUIRE(spec.perf.count(kind) == 1,
                 "spec needs a fitted performance model for every component");
  }

  minlp::Model model;
  LayoutModelVars vars;

  const int N = spec.total_nodes;
  const auto floor_of = [&](ComponentKind kind) {
    const auto it = spec.min_nodes.find(kind);
    return it == spec.min_nodes.end() ? 1 : std::max(1, it->second);
  };

  // T and (for layout 1) T_icelnd.
  vars.total_time = model.add_variable("T", minlp::VarType::kContinuous, 0.0,
                                       lp::kInf);
  if (spec.layout == LayoutKind::kHybrid) {
    vars.icelnd_time = model.add_variable(
        "T_icelnd", minlp::VarType::kContinuous, 0.0, lp::kInf);
  } else {
    vars.icelnd_time = vars.total_time;
  }

  // n_j and t_j with the defined-time links t_j == T_j(n_j).
  for (const ComponentKind kind : cesm::kModeledComponents) {
    const std::string tag = cesm::to_string(kind);
    const int lo = floor_of(kind);
    HSLB_REQUIRE(lo <= N, "memory floor exceeds machine size");
    vars.nodes[kind] = model.add_variable("n_" + tag, minlp::VarType::kInteger,
                                          lo, N);
    vars.times[kind] = model.add_variable("t_" + tag,
                                          minlp::VarType::kContinuous, 0.0,
                                          lp::kInf);
    model.add_link(vars.times[kind], vars.nodes[kind],
                   spec.perf.at(kind).as_univariate(), "T_" + tag);
  }

  const std::size_t T = vars.total_time;
  const std::size_t Til = vars.icelnd_time;
  const std::size_t ni = vars.nodes.at(ComponentKind::kIce);
  const std::size_t nl = vars.nodes.at(ComponentKind::kLnd);
  const std::size_t na = vars.nodes.at(ComponentKind::kAtm);
  const std::size_t no = vars.nodes.at(ComponentKind::kOcn);
  const std::size_t ti = vars.times.at(ComponentKind::kIce);
  const std::size_t tl = vars.times.at(ComponentKind::kLnd);
  const std::size_t ta = vars.times.at(ComponentKind::kAtm);
  const std::size_t to = vars.times.at(ComponentKind::kOcn);

  // --- Temporal constraints (Table I lines 14-19, 22-23, 27). --------------
  switch (spec.layout) {
    case LayoutKind::kHybrid:
      model.add_linear({{Til, 1.0}, {ti, -1.0}}, 0.0, lp::kInf,
                       "Ticelnd>=Ti");
      model.add_linear({{Til, 1.0}, {tl, -1.0}}, 0.0, lp::kInf,
                       "Ticelnd>=Tl");
      model.add_linear({{T, 1.0}, {Til, -1.0}, {ta, -1.0}}, 0.0, lp::kInf,
                       "T>=Ticelnd+Ta");
      model.add_linear({{T, 1.0}, {to, -1.0}}, 0.0, lp::kInf, "T>=To");
      if (std::isfinite(spec.tsync)) {
        HSLB_REQUIRE(spec.tsync >= 0.0, "Tsync must be nonnegative");
        // Tl >= Ti - Tsync and Tl <= Ti + Tsync (lines 18-19).
        model.add_linear({{tl, 1.0}, {ti, -1.0}}, -spec.tsync, spec.tsync,
                         "|Tl-Ti|<=Tsync");
      }
      break;
    case LayoutKind::kSequentialGroup:
      model.add_linear({{T, 1.0}, {ti, -1.0}, {tl, -1.0}, {ta, -1.0}}, 0.0,
                       lp::kInf, "T>=Ti+Tl+Ta");
      model.add_linear({{T, 1.0}, {to, -1.0}}, 0.0, lp::kInf, "T>=To");
      break;
    case LayoutKind::kFullySequential:
      model.add_linear(
          {{T, 1.0}, {ti, -1.0}, {tl, -1.0}, {ta, -1.0}, {to, -1.0}}, 0.0,
          lp::kInf, "T>=Ti+Tl+Ta+To");
      break;
  }

  // --- Node constraints (Table I lines 20-21, 24-26, 28). ------------------
  // Under the max-min objective (eq. 2) the node rows become equalities:
  // maximizing the minimum component time only makes sense when every node
  // must be used, otherwise starving all components is "optimal".
  const double slack_lo =
      spec.objective == Objective::kMaxMin ? 0.0 : -lp::kInf;
  switch (spec.layout) {
    case LayoutKind::kHybrid:
      model.add_linear({{na, 1.0}, {no, 1.0}},
                       spec.objective == Objective::kMaxMin ? N : slack_lo, N,
                       "na+no<=N");
      model.add_linear({{ni, 1.0}, {nl, 1.0}, {na, -1.0}}, slack_lo, 0.0,
                       "ni+nl<=na");
      break;
    case LayoutKind::kSequentialGroup:
      model.add_linear({{ni, 1.0}, {no, 1.0}}, slack_lo == 0.0 ? N : slack_lo,
                       N, "ni<=N-no");
      model.add_linear({{nl, 1.0}, {no, 1.0}}, slack_lo == 0.0 ? N : slack_lo,
                       N, "nl<=N-no");
      model.add_linear({{na, 1.0}, {no, 1.0}}, slack_lo == 0.0 ? N : slack_lo,
                       N, "na<=N-no");
      break;
    case LayoutKind::kFullySequential:
      if (spec.objective == Objective::kMaxMin) {
        for (const std::size_t nj : {ni, nl, na, no}) {
          model.add_linear({{nj, 1.0}}, N, N, "n==N");
        }
      }
      break;  // otherwise n_j <= N is enforced by the variable bounds
  }

  // --- Allocation sets (Table I lines 5-6, 12, 29-31). ---------------------
  if (!spec.ocn_allowed.empty()) {
    const auto values = filter_set(spec.ocn_allowed,
                                   floor_of(ComponentKind::kOcn), N);
    HSLB_REQUIRE(!values.empty(), "no allowed ocean count fits the machine");
    model.restrict_to_set(no, values, spec.use_sos, "O");
  }
  if (!spec.atm_allowed.empty()) {
    const auto values = filter_set(spec.atm_allowed,
                                   floor_of(ComponentKind::kAtm), N);
    HSLB_REQUIRE(!values.empty(), "no allowed atm count fits the machine");
    model.restrict_to_set(na, values, spec.use_sos, "A");
  }

  // --- Objective (section III-D). -------------------------------------------
  switch (spec.objective) {
    case Objective::kMinMax:
      model.minimize(model.var(T));
      break;
    case Objective::kMaxMin: {
      // max min_j t_j  ==  min -M with M <= t_j for all j.
      const std::size_t M = model.add_variable(
          "M", minlp::VarType::kContinuous, 0.0, lp::kInf);
      for (const ComponentKind kind : cesm::kModeledComponents) {
        model.add_linear({{M, 1.0}, {vars.times.at(kind), -1.0}}, -lp::kInf,
                         0.0, "M<=t");
      }
      model.minimize(-model.var(M));
      break;
    }
    case Objective::kMinSum: {
      expr::Expr total = expr::constant(0.0);
      for (const ComponentKind kind : cesm::kModeledComponents) {
        total += model.var(vars.times.at(kind));
      }
      model.minimize(total);
      break;
    }
  }

  if (vars_out != nullptr) {
    *vars_out = vars;
  }
  return model;
}

cesm::Layout Allocation::as_layout(LayoutKind kind) const {
  const int ice = nodes.at(ComponentKind::kIce);
  const int lnd = nodes.at(ComponentKind::kLnd);
  const int atm = nodes.at(ComponentKind::kAtm);
  const int ocn = nodes.at(ComponentKind::kOcn);
  switch (kind) {
    case LayoutKind::kHybrid:
      return cesm::Layout::hybrid(ice, lnd, atm, ocn);
    case LayoutKind::kSequentialGroup:
      return cesm::Layout::sequential_group(ice, lnd, atm, ocn);
    case LayoutKind::kFullySequential:
      return cesm::Layout::fully_sequential(ice, lnd, atm, ocn);
  }
  throw InvalidArgument("unknown layout kind");
}

Allocation extract_allocation(const LayoutModelSpec& spec,
                              const LayoutModelVars& vars,
                              const minlp::MinlpResult& result) {
  HSLB_REQUIRE(result.status == minlp::MinlpStatus::kOptimal ||
                   result.status == minlp::MinlpStatus::kNodeLimit,
               "solver did not produce a usable solution");
  HSLB_REQUIRE(!result.x.empty(), "solver result has no point");

  Allocation out;
  double ice = 0.0;
  double lnd = 0.0;
  double atm = 0.0;
  double ocn = 0.0;
  for (const ComponentKind kind : cesm::kModeledComponents) {
    const int n = static_cast<int>(
        std::llround(result.x[vars.nodes.at(kind)]));
    out.nodes[kind] = n;
    const double t = spec.perf.at(kind)(n);
    out.predicted_seconds[kind] = t;
    switch (kind) {
      case ComponentKind::kIce:
        ice = t;
        break;
      case ComponentKind::kLnd:
        lnd = t;
        break;
      case ComponentKind::kAtm:
        atm = t;
        break;
      case ComponentKind::kOcn:
        ocn = t;
        break;
      default:
        break;
    }
  }
  out.predicted_total = cesm::combine_times(spec.layout, ice, lnd, atm, ocn);
  return out;
}

}  // namespace hslb::core
