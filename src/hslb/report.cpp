#include "hslb/hslb/report.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "hslb/common/error.hpp"

namespace hslb::core {

using cesm::ComponentKind;

common::Table render_table3_block(const ManualResult& manual,
                                  const HslbResult& hslb) {
  common::Table table({"components", "manual #nodes", "manual time,s",
                       "HSLB #nodes", "HSLB pred,s", "HSLB actual,s"});
  for (const ComponentKind kind : cesm::kModeledComponents) {
    table.add_row();
    table.cell(std::string(cesm::to_string(kind)));
    table.cell(static_cast<long long>(manual.nodes.at(kind)));
    table.cell(manual.actual_seconds.at(kind), 3);
    table.cell(static_cast<long long>(hslb.components.at(kind).nodes));
    table.cell(hslb.components.at(kind).predicted_seconds, 3);
    table.cell(hslb.components.at(kind).actual_seconds, 3);
  }
  table.add_row();
  table.cell(std::string("Total time"));
  table.cell_missing();
  table.cell(manual.actual_total, 3);
  table.cell_missing();
  table.cell(hslb.predicted_total, 3);
  table.cell(hslb.actual_total, 3);
  return table;
}

common::Table render_table3_block(const HslbResult& hslb) {
  common::Table table(
      {"components", "HSLB #nodes", "HSLB pred,s", "HSLB actual,s"});
  for (const ComponentKind kind : cesm::kModeledComponents) {
    table.add_row();
    table.cell(std::string(cesm::to_string(kind)));
    table.cell(static_cast<long long>(hslb.components.at(kind).nodes));
    table.cell(hslb.components.at(kind).predicted_seconds, 3);
    table.cell(hslb.components.at(kind).actual_seconds, 3);
  }
  table.add_row();
  table.cell(std::string("Total time"));
  table.cell_missing();
  table.cell(hslb.predicted_total, 3);
  table.cell(hslb.actual_total, 3);
  return table;
}

std::string render_layout_ascii(
    const cesm::Layout& layout,
    const std::map<ComponentKind, double>& seconds, int width, int height) {
  HSLB_REQUIRE(width >= 20 && height >= 6, "diagram too small");
  const int ice = layout.at(ComponentKind::kIce);
  const int lnd = layout.at(ComponentKind::kLnd);
  const int atm = layout.at(ComponentKind::kAtm);
  const int ocn = layout.at(ComponentKind::kOcn);
  const double t_ice = seconds.at(ComponentKind::kIce);
  const double t_lnd = seconds.at(ComponentKind::kLnd);
  const double t_atm = seconds.at(ComponentKind::kAtm);
  const double t_ocn = seconds.at(ComponentKind::kOcn);

  const double total_time = cesm::combine_times(layout.kind, t_ice, t_lnd,
                                                t_atm, t_ocn);
  const int total_nodes = layout.footprint();

  std::vector<std::string> canvas(static_cast<std::size_t>(height),
                                  std::string(static_cast<std::size_t>(width),
                                              ' '));
  const auto col = [&](double nodes) {
    return std::clamp(static_cast<int>(std::lround(nodes / total_nodes *
                                                   (width - 1))),
                      0, width - 1);
  };
  const auto row = [&](double time) {
    return std::clamp(static_cast<int>(std::lround(time / total_time *
                                                   (height - 1))),
                      0, height - 1);
  };
  const auto box = [&](int c0, int c1, int r0, int r1, char fill) {
    for (int r = r0; r <= r1; ++r) {
      for (int c = c0; c <= c1; ++c) {
        canvas[static_cast<std::size_t>(height - 1 - r)]
              [static_cast<std::size_t>(c)] = fill;
      }
    }
  };

  switch (layout.kind) {
    case cesm::LayoutKind::kHybrid: {
      // Left group: ice | lnd side by side at the bottom, atm stacked above;
      // right group: ocn full height of its own time.
      const int group_w = col(std::max(atm, ice + lnd));
      const double phase = std::max(t_ice, t_lnd);
      box(0, std::max(0, col(ice) - 1), 0, row(phase), 'I');
      box(col(ice), group_w, 0, row(phase), 'L');
      box(0, group_w, std::min(height - 1, row(phase) + 1),
          row(phase + t_atm), 'A');
      box(std::min(width - 1, group_w + 2), width - 1, 0, row(t_ocn), 'O');
      break;
    }
    case cesm::LayoutKind::kSequentialGroup: {
      const int group_w = col(std::max({ice, lnd, atm}));
      box(0, group_w, 0, row(t_ice), 'I');
      box(0, group_w, std::min(height - 1, row(t_ice) + 1),
          row(t_ice + t_lnd), 'L');
      box(0, group_w, std::min(height - 1, row(t_ice + t_lnd) + 1),
          row(t_ice + t_lnd + t_atm), 'A');
      box(std::min(width - 1, group_w + 2), width - 1, 0, row(t_ocn), 'O');
      break;
    }
    case cesm::LayoutKind::kFullySequential: {
      box(0, width - 1, 0, row(t_ice), 'I');
      box(0, width - 1, std::min(height - 1, row(t_ice) + 1),
          row(t_ice + t_lnd), 'L');
      box(0, width - 1, std::min(height - 1, row(t_ice + t_lnd) + 1),
          row(t_ice + t_lnd + t_atm), 'A');
      box(0, width - 1,
          std::min(height - 1, row(t_ice + t_lnd + t_atm) + 1),
          height - 1, 'O');
      break;
    }
  }

  std::ostringstream os;
  os << to_string(layout.kind) << "   (width = nodes, height = time)\n";
  for (const std::string& line : canvas) {
    os << "  |" << line << "|\n";
  }
  os << "  I=ice(" << ice << ") L=lnd(" << lnd << ") A=atm(" << atm
     << ") O=ocn(" << ocn << "), total "
     << common::format_fixed(total_time, 1) << " s on " << total_nodes
     << " nodes\n";
  return os.str();
}

std::string render_resilience_block(const HslbResult& hslb) {
  const ResilienceReport& report = hslb.resilience;
  const cesm::CampaignFaultReport& campaign = report.campaign;

  bool component_activity = false;
  for (const auto& kv : report.components) {
    const ComponentResilience& entry = kv.second;
    if (entry.samples_rejected > 0 || entry.resample_runs > 0 ||
        entry.degraded_fit) {
      component_activity = true;
    }
  }
  if (!campaign.any_faults() && !component_activity &&
      !report.solver_fallback) {
    return {};
  }

  std::ostringstream os;
  os << "Resilience report ("
     << (hslb.degraded ? "DEGRADED result" : "clean result") << ")\n";
  os << "  campaign: " << campaign.launch_failures << " launch failures, "
     << campaign.hangs << " hangs, " << campaign.stragglers
     << " stragglers, " << campaign.corrupt_files << " corrupt + "
     << campaign.truncated_files << " truncated timing files, "
     << campaign.noise_spikes << " noise spikes\n";
  os << "  retries: " << campaign.retries << " (" << campaign.giveups
     << " runs gave up), "
     << common::format_fixed(campaign.sim_seconds_lost, 0)
     << " simulated seconds lost to backoff/timeouts\n";

  if (!report.components.empty()) {
    common::Table table(
        {"component", "samples used", "rejected", "resample rounds", "fit"});
    for (const ComponentKind kind : cesm::kModeledComponents) {
      const auto it = report.components.find(kind);
      if (it == report.components.end()) {
        continue;
      }
      table.add_row();
      table.cell(std::string(cesm::to_string(kind)));
      table.cell(static_cast<long long>(it->second.samples_used));
      table.cell(static_cast<long long>(it->second.samples_rejected));
      table.cell(static_cast<long long>(it->second.resample_runs));
      table.cell(std::string(it->second.degraded_fit ? "FALLBACK a/n+d"
                                                     : "full"));
    }
    os << table.to_text();
  }
  if (report.solver_fallback) {
    os << "  solver: budget exhausted without incumbent -- heuristic "
          "grid-search allocation used\n";
  }
  return os.str();
}

std::string render_metrics_block(const obs::Registry& registry) {
  std::ostringstream os;
  os << "Observability metrics\n";
  os << registry.counters_table().to_text();
  const common::Table histograms = registry.histograms_table();
  if (histograms.rows() > 0) {
    os << '\n' << histograms.to_text();
  }
  return os.str();
}

common::Table render_fit_summary(
    const std::map<ComponentKind, perf::FitResult>& fits) {
  common::Table table({"component", "a", "b", "c", "d", "R^2", "RMSE,s"});
  for (const ComponentKind kind : cesm::kModeledComponents) {
    const auto it = fits.find(kind);
    HSLB_REQUIRE(it != fits.end(), "missing fit for component");
    const perf::PerfParams& p = it->second.model.params();
    table.add_row();
    table.cell(std::string(cesm::to_string(kind)));
    table.cell(p.a, 2);
    table.cell(p.b, 6);
    table.cell(p.c, 3);
    table.cell(p.d, 3);
    table.cell(it->second.r_squared, 5);
    table.cell(it->second.rmse, 3);
  }
  return table;
}

}  // namespace hslb::core
