#include "hslb/hslb/whatif.hpp"

#include "hslb/common/error.hpp"

namespace hslb::core {
namespace {

/// Solve a spec and extract the allocation; throws if the solve fails.
Allocation solve_spec(const LayoutModelSpec& spec,
                      const minlp::SolverOptions& options) {
  LayoutModelVars vars;
  const minlp::Model model = build_layout_model(spec, &vars);
  const minlp::MinlpResult result = minlp::solve(model, options);
  HSLB_REQUIRE(result.status == minlp::MinlpStatus::kOptimal,
               std::string("what-if solve failed: ") +
                   minlp::to_string(result.status));
  return extract_allocation(spec, vars, result);
}

}  // namespace

ConstraintEffect constraint_effect(const LayoutModelSpec& spec,
                                   const minlp::SolverOptions& options) {
  ConstraintEffect out;
  out.constrained = solve_spec(spec, options);
  out.constrained_total = out.constrained.predicted_total;

  LayoutModelSpec free_spec = spec;
  free_spec.atm_allowed.clear();
  free_spec.ocn_allowed.clear();
  out.unconstrained = solve_spec(free_spec, options);
  out.unconstrained_total = out.unconstrained.predicted_total;

  out.relative_cost =
      out.constrained_total / out.unconstrained_total - 1.0;
  return out;
}

std::vector<ScalingPoint> scaling_forecast(
    const LayoutModelSpec& spec, std::span<const int> sizes,
    const minlp::SolverOptions& options) {
  HSLB_REQUIRE(!sizes.empty(), "scaling forecast needs at least one size");
  std::vector<ScalingPoint> out;
  double t_ref = 0.0;
  int n_ref = 0;
  for (const int total : sizes) {
    LayoutModelSpec sized = spec;
    sized.total_nodes = total;
    ScalingPoint point;
    point.total_nodes = total;
    point.allocation = solve_spec(sized, options);
    point.predicted_total = point.allocation.predicted_total;
    if (n_ref == 0) {
      n_ref = total;
      t_ref = point.predicted_total;
    }
    point.efficiency = (t_ref / point.predicted_total) /
                       (static_cast<double>(total) / n_ref);
    out.push_back(std::move(point));
  }
  return out;
}

Allocation swap_component(const LayoutModelSpec& spec,
                          cesm::ComponentKind kind,
                          const perf::PerfModel& replacement,
                          double* new_total,
                          const minlp::SolverOptions& options) {
  LayoutModelSpec swapped = spec;
  swapped.perf[kind] = replacement;
  Allocation allocation = solve_spec(swapped, options);
  if (new_total != nullptr) {
    *new_total = allocation.predicted_total;
  }
  return allocation;
}

SizeRecommendation recommend_size(const LayoutModelSpec& spec,
                                  std::span<const int> sizes,
                                  double efficiency_floor,
                                  const minlp::SolverOptions& options) {
  HSLB_REQUIRE(efficiency_floor > 0.0 && efficiency_floor <= 1.0,
               "efficiency floor must be in (0, 1]");
  SizeRecommendation out;
  out.sweep = scaling_forecast(spec, sizes, options);
  out.fastest_total = lp::kInf;
  for (const ScalingPoint& point : out.sweep) {
    if (point.efficiency >= efficiency_floor) {
      out.cost_efficient_nodes = point.total_nodes;
      out.cost_efficient_total = point.predicted_total;
    }
    if (point.predicted_total < out.fastest_total) {
      out.fastest_total = point.predicted_total;
      out.fastest_nodes = point.total_nodes;
    }
  }
  HSLB_REQUIRE(out.cost_efficient_nodes > 0,
               "no swept size satisfies the efficiency floor");
  return out;
}

}  // namespace hslb::core
