#include "hslb/hslb/pipeline.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <utility>

#include "hslb/common/error.hpp"
#include "hslb/cesm/ice_tuner.hpp"
#include "hslb/perf/sample_design.hpp"

namespace hslb::core {

using cesm::ComponentKind;

std::vector<int> default_gather_totals(int total_nodes) {
  HSLB_REQUIRE(total_nodes >= 32, "target machine slice too small");
  const int lo = std::max(32, total_nodes / 16);
  return perf::design_benchmark_nodes(lo, total_nodes, 5);
}

namespace {

/// Re-run the benchmark campaign for one targeted re-sampling round.
using Resampler = std::function<cesm::CampaignResult(int round)>;

void merge_fault_report(cesm::CampaignFaultReport* into,
                        const cesm::CampaignFaultReport& extra) {
  into->runs.insert(into->runs.end(), extra.runs.begin(), extra.runs.end());
  into->launch_failures += extra.launch_failures;
  into->hangs += extra.hangs;
  into->stragglers += extra.stragglers;
  into->corrupt_files += extra.corrupt_files;
  into->truncated_files += extra.truncated_files;
  into->noise_spikes += extra.noise_spikes;
  into->retries += extra.retries;
  into->giveups += extra.giveups;
  into->sim_seconds_lost += extra.sim_seconds_lost;
}

/// The shared step-3 core: finish the spec (allowed sets, tsync), solve the
/// Table I MINLP, and fill the allocation + per-component outcomes.  `spec`
/// must already carry the fitted performance functions.  All state lives in
/// the arguments -- the function is reentrant across threads.
void solve_step(const PipelineConfig& config, LayoutModelSpec& spec,
                bool resilient, HslbResult* out) {
  if (config.constrain_atm) {
    spec.atm_allowed = config.case_config.atm_allowed;
  }
  if (config.constrain_ocean) {
    spec.ocn_allowed = config.case_config.ocn_allowed;
  }
  if (config.tsync >= 0.0) {
    spec.tsync = config.tsync;
  } else {
    // Auto tolerance: 25% of the fitted sea-ice time at a mid-size ice
    // allocation -- loose enough to always admit a solution, tight enough
    // to force the ice/land balance of Table I lines 18-19.
    const double ref = spec.perf.at(ComponentKind::kIce)(
        std::max(1.0, config.total_nodes / 2.0));
    spec.tsync = std::max(1.0, 0.25 * ref);
  }
  out->tsync_used = spec.tsync;

  LayoutModelVars vars;
  {
    HSLB_SPAN("hslb.solve");
    const minlp::Model model = build_layout_model(spec, &vars);
    out->solver_result = minlp::solve(model, config.solver);
  }
  // A node- or time-limited solve with an incumbent is still a usable
  // allocation (callers bound max_nodes/max_wall_seconds for the expensive
  // objective ablations and for fault-injected campaigns).
  const bool usable =
      out->solver_result.status == minlp::MinlpStatus::kOptimal ||
      ((out->solver_result.status == minlp::MinlpStatus::kNodeLimit ||
        out->solver_result.status == minlp::MinlpStatus::kTimeLimit) &&
       !out->solver_result.x.empty());
  if (usable) {
    out->allocation = extract_allocation(spec, vars, out->solver_result);
  } else if (resilient) {
    // Budget ran out without an incumbent (or the solve failed outright):
    // degrade to the direct grid search over the allowed sets.
    out->allocation = heuristic_allocation(spec);
    out->resilience.solver_fallback = true;
  } else {
    HSLB_REQUIRE(usable, std::string("MINLP solve failed: ") +
                             minlp::to_string(out->solver_result.status));
  }
  out->predicted_total = out->allocation.predicted_total;

  for (const ComponentKind kind : cesm::kModeledComponents) {
    ComponentOutcome outcome;
    outcome.nodes = out->allocation.nodes.at(kind);
    outcome.predicted_seconds = out->allocation.predicted_seconds.at(kind);
    out->components[kind] = outcome;
  }
}

HslbResult solve_and_execute(const PipelineConfig& config,
                             std::vector<cesm::BenchmarkSample> samples,
                             bool execute,
                             cesm::CampaignFaultReport campaign_report,
                             const Resampler& resample) {
  HSLB_REQUIRE(config.total_nodes >= 8, "target machine slice too small");
  const bool resilient =
      config.resilience.enabled || config.faults.enabled();
  HslbResult out;
  out.samples = std::move(samples);

  // --- Step 2: fit (four least-squares problems, Table II). ----------------
  LayoutModelSpec spec;
  spec.layout = config.layout;
  spec.total_nodes = config.total_nodes;
  spec.objective = config.objective;
  spec.use_sos = config.use_sos;
  spec.min_nodes = config.case_config.min_nodes;
  {
    HSLB_SPAN("hslb.fit");

    // Clean each component's series.  When the resilience layer is engaged
    // this rejects MAD outliers first, and -- if a component drops below
    // its clean-sample quorum -- spends the re-sampling budget on extra
    // campaign rounds before conceding to a fallback fit.
    std::map<ComponentKind, cesm::Series> clean;
    std::map<ComponentKind, ComponentResilience> tally;
    int rounds = 0;
    for (;;) {
      clean.clear();
      bool quorum_missing = false;
      for (const ComponentKind kind : cesm::kModeledComponents) {
        cesm::Series series = cesm::series_for(out.samples, kind);
        ComponentResilience& entry = tally[kind];
        if (resilient) {
          FilteredSeries filtered =
              reject_outliers(series, config.resilience.outlier_threshold,
                              config.fit_options);
          entry.samples_rejected = filtered.rejected;
          series = std::move(filtered.series);
        }
        if (static_cast<int>(series.nodes.size()) <
            config.resilience.min_clean_samples) {
          quorum_missing = true;
        }
        entry.samples_used = static_cast<int>(series.nodes.size());
        clean[kind] = std::move(series);
      }
      if (!resilient || !quorum_missing || !resample ||
          rounds >= config.resilience.max_resample_rounds) {
        break;
      }
      ++rounds;
      HSLB_COUNT("hslb.resilience.resample_rounds", 1);
      cesm::CampaignResult extra = resample(rounds);
      out.samples.insert(out.samples.end(), extra.samples.begin(),
                         extra.samples.end());
      merge_fault_report(&campaign_report, extra.fault_report);
      for (const ComponentKind kind : cesm::kModeledComponents) {
        tally[kind].resample_runs = rounds;
      }
    }

    perf::FitOptions fit_options = config.fit_options;
    if (resilient && config.resilience.robust_fit) {
      fit_options.robust_loss = true;
    }
    for (const ComponentKind kind : cesm::kModeledComponents) {
      obs::ScopedSpan span("hslb.fit.component");
      if (span.active()) {
        span.arg("component", std::string(cesm::to_string(kind)));
      }
      const cesm::Series& series = clean.at(kind);
      if (static_cast<int>(series.nodes.size()) >= 3) {
        out.fits[kind] =
            perf::fit(series.nodes, series.seconds, fit_options);
      } else if (resilient && !series.nodes.empty()) {
        // Too few clean samples even after re-sampling: fall back to the
        // monotone a/n + d interpolant and flag the curve as degraded.
        out.fits[kind] = fallback_fit(series);
        tally[kind].degraded_fit = true;
      } else {
        HSLB_REQUIRE(series.nodes.size() >= 3,
                     "need at least 3 samples per component to fit");
      }
      spec.perf[kind] = out.fits.at(kind).model;
    }
    if (resilient) {
      out.resilience.components = std::move(tally);
    }
  }

  // --- Step 3: solve the Table I MINLP. -------------------------------------
  solve_step(config, spec, resilient, &out);

  // --- Step 4: execute at the optimal allocation. ---------------------------
  if (execute) {
    HSLB_SPAN("hslb.execute");
    const cesm::Layout layout = out.allocation.as_layout(config.layout);
    out.run = cesm::run_case(config.case_config, layout, config.seed + 1);
    for (const ComponentKind kind : cesm::kModeledComponents) {
      out.components[kind].actual_seconds =
          out.run.component_seconds.at(kind);
    }
    out.actual_total = out.run.model_seconds;
  }

  out.resilience.campaign = std::move(campaign_report);
  out.degraded = out.resilience.degraded();
  if (out.degraded) {
    HSLB_COUNT("hslb.resilience.degraded_results", 1);
  }
  return out;
}

}  // namespace

HslbResult run_hslb(const PipelineConfig& config) {
  const obs::Install install(config.obs);

  // --- Step 0 (optional): learn a sea-ice decomposition policy. --------------
  PipelineConfig effective = config;
  if (config.tune_ice_decomposition) {
    HSLB_SPAN("hslb.tune_ice");
    cesm::IceTunerOptions tuner_options;
    tuner_options.max_nodes = config.total_nodes;
    tuner_options.seed = config.seed ^ 0x1CEDECull;
    const auto training = cesm::gather_ice_training(
        config.case_config.component(cesm::ComponentKind::kIce),
        tuner_options);
    const cesm::IceDecompositionTuner tuner(training);
    effective.case_config.ice_decomposition_policy = tuner.policy();
  }

  // --- Step 1: gather. -------------------------------------------------------
  std::vector<int> totals = effective.gather_totals;
  if (totals.empty()) {
    totals = default_gather_totals(effective.total_nodes);
  }
  cesm::GatherOptions gather_options;
  gather_options.faults = effective.faults;
  gather_options.retry = effective.resilience.retry;
  cesm::CampaignResult campaign;
  {
    HSLB_SPAN("hslb.gather");
    campaign = cesm::gather_benchmarks(effective.case_config,
                                       effective.layout, totals,
                                       effective.seed, gather_options);
  }

  // Targeted re-sampling: another full campaign round under a shifted seed
  // (both for the run streams and for the fault draws, so a re-run does not
  // replay the exact faults that starved the component in the first place).
  const Resampler resample = [&effective, &totals,
                              &gather_options](int round) {
    const std::uint64_t shift =
        0x9e3779b97f4a7c15ull * static_cast<std::uint64_t>(round);
    cesm::GatherOptions options = gather_options;
    options.faults.seed += shift;
    return cesm::gather_benchmarks(effective.case_config, effective.layout,
                                   totals, effective.seed + shift, options);
  };
  return solve_and_execute(effective, std::move(campaign.samples),
                           /*execute=*/true,
                           std::move(campaign.fault_report), resample);
}

HslbResult run_hslb_from_samples(
    const PipelineConfig& config,
    const std::vector<cesm::BenchmarkSample>& samples) {
  const obs::Install install(config.obs);
  // Archived samples cannot be re-gathered: no resampler, so a component
  // short on clean data degrades straight to the fallback fit.
  return solve_and_execute(config, samples, /*execute=*/false,
                           cesm::CampaignFaultReport{}, Resampler{});
}

HslbResult run_hslb_from_fits(
    const PipelineConfig& config,
    const std::map<cesm::ComponentKind, perf::PerfModel>& fits) {
  const obs::Install install(config.obs);
  HSLB_REQUIRE(config.total_nodes >= 8, "target machine slice too small");

  HslbResult out;
  LayoutModelSpec spec;
  spec.layout = config.layout;
  spec.total_nodes = config.total_nodes;
  spec.objective = config.objective;
  spec.use_sos = config.use_sos;
  spec.min_nodes = config.case_config.min_nodes;
  for (const ComponentKind kind : cesm::kModeledComponents) {
    HSLB_REQUIRE(fits.count(kind) != 0,
                 std::string("missing fitted curve for component ") +
                     cesm::to_string(kind));
    spec.perf[kind] = fits.at(kind);
    // Wrap the given model so HslbResult carries the same shape as the
    // fitted paths; no residual statistics exist for a shipped curve.
    perf::FitResult wrapped;
    wrapped.model = fits.at(kind);
    wrapped.converged = true;
    out.fits[kind] = std::move(wrapped);
  }

  const bool resilient =
      config.resilience.enabled || config.faults.enabled();
  solve_step(config, spec, resilient, &out);
  out.degraded = out.resilience.degraded();
  return out;
}

}  // namespace hslb::core
