#include "hslb/hslb/pipeline.hpp"

#include <algorithm>
#include <cmath>

#include "hslb/common/error.hpp"
#include "hslb/cesm/ice_tuner.hpp"
#include "hslb/perf/sample_design.hpp"

namespace hslb::core {

using cesm::ComponentKind;

std::vector<int> default_gather_totals(int total_nodes) {
  HSLB_REQUIRE(total_nodes >= 32, "target machine slice too small");
  const int lo = std::max(32, total_nodes / 16);
  return perf::design_benchmark_nodes(lo, total_nodes, 5);
}

namespace {

HslbResult solve_and_execute(const PipelineConfig& config,
                             std::vector<cesm::BenchmarkSample> samples,
                             bool execute) {
  HSLB_REQUIRE(config.total_nodes >= 8, "target machine slice too small");
  HslbResult out;
  out.samples = std::move(samples);

  // --- Step 2: fit (four least-squares problems, Table II). ----------------
  LayoutModelSpec spec;
  spec.layout = config.layout;
  spec.total_nodes = config.total_nodes;
  spec.objective = config.objective;
  spec.use_sos = config.use_sos;
  spec.min_nodes = config.case_config.min_nodes;
  {
    HSLB_SPAN("hslb.fit");
    for (const ComponentKind kind : cesm::kModeledComponents) {
      obs::ScopedSpan span("hslb.fit.component");
      if (span.active()) {
        span.arg("component", std::string(cesm::to_string(kind)));
      }
      const cesm::Series series = cesm::series_for(out.samples, kind);
      HSLB_REQUIRE(series.nodes.size() >= 3,
                   "need at least 3 samples per component to fit");
      out.fits[kind] = perf::fit(series.nodes, series.seconds,
                                 config.fit_options);
      spec.perf[kind] = out.fits.at(kind).model;
    }
  }

  // --- Step 3: solve the Table I MINLP. -------------------------------------
  if (config.constrain_atm) {
    spec.atm_allowed = config.case_config.atm_allowed;
  }
  if (config.constrain_ocean) {
    spec.ocn_allowed = config.case_config.ocn_allowed;
  }
  if (config.tsync >= 0.0) {
    spec.tsync = config.tsync;
  } else {
    // Auto tolerance: 25% of the fitted sea-ice time at a mid-size ice
    // allocation -- loose enough to always admit a solution, tight enough
    // to force the ice/land balance of Table I lines 18-19.
    const double ref = spec.perf.at(ComponentKind::kIce)(
        std::max(1.0, config.total_nodes / 2.0));
    spec.tsync = std::max(1.0, 0.25 * ref);
  }
  out.tsync_used = spec.tsync;

  LayoutModelVars vars;
  {
    HSLB_SPAN("hslb.solve");
    const minlp::Model model = build_layout_model(spec, &vars);
    out.solver_result = minlp::solve(model, config.solver);
  }
  // A node-limited solve with an incumbent is still a usable allocation
  // (callers bound max_nodes for the expensive objective ablations).
  const bool usable =
      out.solver_result.status == minlp::MinlpStatus::kOptimal ||
      (out.solver_result.status == minlp::MinlpStatus::kNodeLimit &&
       !out.solver_result.x.empty());
  HSLB_REQUIRE(usable, std::string("MINLP solve failed: ") +
                           minlp::to_string(out.solver_result.status));
  out.allocation = extract_allocation(spec, vars, out.solver_result);
  out.predicted_total = out.allocation.predicted_total;

  for (const ComponentKind kind : cesm::kModeledComponents) {
    ComponentOutcome outcome;
    outcome.nodes = out.allocation.nodes.at(kind);
    outcome.predicted_seconds = out.allocation.predicted_seconds.at(kind);
    out.components[kind] = outcome;
  }

  // --- Step 4: execute at the optimal allocation. ---------------------------
  if (execute) {
    HSLB_SPAN("hslb.execute");
    const cesm::Layout layout = out.allocation.as_layout(config.layout);
    out.run = cesm::run_case(config.case_config, layout, config.seed + 1);
    for (const ComponentKind kind : cesm::kModeledComponents) {
      out.components[kind].actual_seconds =
          out.run.component_seconds.at(kind);
    }
    out.actual_total = out.run.model_seconds;
  }
  return out;
}

}  // namespace

HslbResult run_hslb(const PipelineConfig& config) {
  const obs::Install install(config.obs);

  // --- Step 0 (optional): learn a sea-ice decomposition policy. --------------
  PipelineConfig effective = config;
  if (config.tune_ice_decomposition) {
    HSLB_SPAN("hslb.tune_ice");
    cesm::IceTunerOptions tuner_options;
    tuner_options.max_nodes = config.total_nodes;
    tuner_options.seed = config.seed ^ 0x1CEDECull;
    const auto training = cesm::gather_ice_training(
        config.case_config.component(cesm::ComponentKind::kIce),
        tuner_options);
    const cesm::IceDecompositionTuner tuner(training);
    effective.case_config.ice_decomposition_policy = tuner.policy();
  }

  // --- Step 1: gather. -------------------------------------------------------
  std::vector<int> totals = effective.gather_totals;
  if (totals.empty()) {
    totals = default_gather_totals(effective.total_nodes);
  }
  cesm::CampaignResult campaign;
  {
    HSLB_SPAN("hslb.gather");
    campaign = cesm::gather_benchmarks(effective.case_config,
                                       effective.layout, totals,
                                       effective.seed);
  }
  return solve_and_execute(effective, campaign.samples, /*execute=*/true);
}

HslbResult run_hslb_from_samples(
    const PipelineConfig& config,
    const std::vector<cesm::BenchmarkSample>& samples) {
  const obs::Install install(config.obs);
  return solve_and_execute(config, samples, /*execute=*/false);
}

}  // namespace hslb::core
