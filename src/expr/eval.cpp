// Evaluation and derivative propagation.
//
// Derivatives use dense forward propagation of (value, gradient, Hessian)
// triples through the DAG with per-node memoization.  For the model sizes in
// this library (tens of variables) this is simpler and no slower than
// taped reverse mode, and it yields exact Hessians for the barrier solver.
#include <cmath>
#include <unordered_map>

#include "hslb/common/error.hpp"
#include "hslb/expr/expr.hpp"

namespace hslb::expr {
namespace {

using linalg::Matrix;
using linalg::Vector;

/// Rank-one symmetric update: H += s * (a b^T + b a^T).
void add_sym_outer(Matrix& h, double s, const Vector& a, const Vector& b) {
  const std::size_t n = a.size();
  for (std::size_t i = 0; i < n; ++i) {
    if (a[i] == 0.0 && b[i] == 0.0) {
      continue;
    }
    for (std::size_t j = 0; j < n; ++j) {
      h(i, j) += s * (a[i] * b[j] + b[i] * a[j]);
    }
  }
}

/// H += s * g g^T.
void add_outer(Matrix& h, double s, const Vector& g) {
  const std::size_t n = g.size();
  for (std::size_t i = 0; i < n; ++i) {
    if (g[i] == 0.0) {
      continue;
    }
    for (std::size_t j = 0; j < n; ++j) {
      h(i, j) += s * g[i] * g[j];
    }
  }
}

/// Value-only evaluator with memoization over shared nodes.
class ValueEvaluator {
 public:
  explicit ValueEvaluator(std::span<const double> x) : x_(x) {}

  double visit(const Node& node) {
    if (const auto it = memo_.find(&node); it != memo_.end()) {
      return it->second;
    }
    const double v = compute(node);
    memo_.emplace(&node, v);
    return v;
  }

 private:
  double compute(const Node& node) {
    switch (node.op) {
      case Op::kConst:
        return node.value;
      case Op::kVar:
        HSLB_REQUIRE(node.var_index < x_.size(),
                     "variable index out of range of evaluation point");
        return x_[node.var_index];
      case Op::kAdd: {
        double sum = 0.0;
        for (const auto& child : node.children) {
          sum += visit(*child);
        }
        return sum;
      }
      case Op::kMul:
        return visit(*node.children[0]) * visit(*node.children[1]);
      case Op::kDiv:
        return visit(*node.children[0]) / visit(*node.children[1]);
      case Op::kPow:
        return std::pow(visit(*node.children[0]), node.value);
      case Op::kNeg:
        return -visit(*node.children[0]);
      case Op::kLog:
        return std::log(visit(*node.children[0]));
      case Op::kExp:
        return std::exp(visit(*node.children[0]));
    }
    throw InternalError("unhandled expression op");
  }

  std::span<const double> x_;
  std::unordered_map<const Node*, double> memo_;
};

struct Triple {
  double value = 0.0;
  Vector grad;
  Matrix hess;
};

/// (value, gradient, Hessian) evaluator with memoization.  `want_hess`
/// controls whether second derivatives are propagated.
class DerivEvaluator {
 public:
  DerivEvaluator(std::span<const double> x, std::size_t nvars, bool want_hess)
      : x_(x), nvars_(nvars), want_hess_(want_hess) {}

  const Triple& visit(const Node& node) {
    if (const auto it = memo_.find(&node); it != memo_.end()) {
      return it->second;
    }
    return memo_.emplace(&node, compute(node)).first->second;
  }

 private:
  Triple blank() const {
    Triple t;
    t.grad.assign(nvars_, 0.0);
    if (want_hess_) {
      t.hess = Matrix(nvars_, nvars_);
    }
    return t;
  }

  Triple compute(const Node& node) {
    switch (node.op) {
      case Op::kConst: {
        Triple t = blank();
        t.value = node.value;
        return t;
      }
      case Op::kVar: {
        HSLB_REQUIRE(node.var_index < nvars_,
                     "variable index exceeds declared variable count");
        Triple t = blank();
        t.value = x_[node.var_index];
        t.grad[node.var_index] = 1.0;
        return t;
      }
      case Op::kAdd: {
        Triple t = blank();
        for (const auto& child : node.children) {
          const Triple& c = visit(*child);
          t.value += c.value;
          for (std::size_t i = 0; i < nvars_; ++i) {
            t.grad[i] += c.grad[i];
          }
          if (want_hess_) {
            t.hess += c.hess;
          }
        }
        return t;
      }
      case Op::kNeg: {
        const Triple& c = visit(*node.children[0]);
        Triple t = blank();
        t.value = -c.value;
        for (std::size_t i = 0; i < nvars_; ++i) {
          t.grad[i] = -c.grad[i];
        }
        if (want_hess_) {
          t.hess = c.hess;
          t.hess *= -1.0;
        }
        return t;
      }
      case Op::kMul: {
        const Triple& u = visit(*node.children[0]);
        const Triple& v = visit(*node.children[1]);
        Triple t = blank();
        t.value = u.value * v.value;
        for (std::size_t i = 0; i < nvars_; ++i) {
          t.grad[i] = u.grad[i] * v.value + v.grad[i] * u.value;
        }
        if (want_hess_) {
          t.hess = u.hess;
          t.hess *= v.value;
          Matrix hv = v.hess;
          hv *= u.value;
          t.hess += hv;
          add_sym_outer(t.hess, 1.0, u.grad, v.grad);
        }
        return t;
      }
      case Op::kDiv: {
        const Triple& u = visit(*node.children[0]);
        const Triple& v = visit(*node.children[1]);
        const double inv = 1.0 / v.value;
        Triple t = blank();
        t.value = u.value * inv;
        // grad = gu/v - u gv / v^2
        for (std::size_t i = 0; i < nvars_; ++i) {
          t.grad[i] = u.grad[i] * inv - u.value * v.grad[i] * inv * inv;
        }
        if (want_hess_) {
          // H(u/v) = Hu/v - u Hv/v^2 - (gu gv^T + gv gu^T)/v^2
          //          + 2 u gv gv^T / v^3
          t.hess = u.hess;
          t.hess *= inv;
          Matrix hv = v.hess;
          hv *= -u.value * inv * inv;
          t.hess += hv;
          add_sym_outer(t.hess, -inv * inv, u.grad, v.grad);
          add_outer(t.hess, 2.0 * u.value * inv * inv * inv, v.grad);
        }
        return t;
      }
      case Op::kPow: {
        const Triple& u = visit(*node.children[0]);
        const double p = node.value;
        const double up = std::pow(u.value, p);
        const double up1 = std::pow(u.value, p - 1.0);
        const double up2 = std::pow(u.value, p - 2.0);
        Triple t = blank();
        t.value = up;
        for (std::size_t i = 0; i < nvars_; ++i) {
          t.grad[i] = p * up1 * u.grad[i];
        }
        if (want_hess_) {
          t.hess = u.hess;
          t.hess *= p * up1;
          add_outer(t.hess, p * (p - 1.0) * up2, u.grad);
        }
        return t;
      }
      case Op::kLog: {
        const Triple& u = visit(*node.children[0]);
        const double inv = 1.0 / u.value;
        Triple t = blank();
        t.value = std::log(u.value);
        for (std::size_t i = 0; i < nvars_; ++i) {
          t.grad[i] = u.grad[i] * inv;
        }
        if (want_hess_) {
          t.hess = u.hess;
          t.hess *= inv;
          add_outer(t.hess, -inv * inv, u.grad);
        }
        return t;
      }
      case Op::kExp: {
        const Triple& u = visit(*node.children[0]);
        const double val = std::exp(u.value);
        Triple t = blank();
        t.value = val;
        for (std::size_t i = 0; i < nvars_; ++i) {
          t.grad[i] = val * u.grad[i];
        }
        if (want_hess_) {
          t.hess = u.hess;
          add_outer(t.hess, 1.0, u.grad);
          t.hess *= val;
        }
        return t;
      }
    }
    throw InternalError("unhandled expression op");
  }

  std::span<const double> x_;
  std::size_t nvars_;
  bool want_hess_;
  std::unordered_map<const Node*, Triple> memo_;
};

}  // namespace

double eval(const Expr& e, std::span<const double> x) {
  ValueEvaluator evaluator(x);
  return evaluator.visit(e.node());
}

ValGrad eval_grad(const Expr& e, std::span<const double> x,
                  std::size_t nvars) {
  HSLB_REQUIRE(x.size() >= nvars, "evaluation point smaller than nvars");
  DerivEvaluator evaluator(x, nvars, /*want_hess=*/false);
  const Triple& t = evaluator.visit(e.node());
  return ValGrad{t.value, t.grad};
}

ValGradHess eval_hess(const Expr& e, std::span<const double> x,
                      std::size_t nvars) {
  HSLB_REQUIRE(x.size() >= nvars, "evaluation point smaller than nvars");
  DerivEvaluator evaluator(x, nvars, /*want_hess=*/true);
  const Triple& t = evaluator.visit(e.node());
  return ValGradHess{t.value, t.grad, t.hess};
}

}  // namespace hslb::expr
