// Infix AMPL-like rendering of expressions, for model dumps and debugging.
#include <sstream>
#include <string>

#include "hslb/common/error.hpp"
#include "hslb/expr/expr.hpp"

namespace hslb::expr {
namespace {

// Precedence levels for parenthesization: higher binds tighter.
int precedence(Op op) {
  switch (op) {
    case Op::kAdd:
      return 1;
    case Op::kNeg:
      return 2;
    case Op::kMul:
    case Op::kDiv:
      return 3;
    case Op::kPow:
      return 4;
    case Op::kConst:
    case Op::kVar:
    case Op::kLog:
    case Op::kExp:
      return 5;
  }
  return 5;
}

std::string render_const(double v) {
  // Shortest representation that still round-trips exactly: try increasing
  // precision until re-parsing reproduces the value.
  for (int precision = 6; precision <= 17; ++precision) {
    std::ostringstream os;
    os.precision(precision);
    os << v;
    if (std::stod(os.str()) == v) {
      return os.str();
    }
  }
  std::ostringstream os;
  os.precision(17);
  os << v;
  return os.str();
}

std::string render(const Node& node);

std::string child(const Node& parent, const Node& kid) {
  if (precedence(kid.op) < precedence(parent.op)) {
    return "(" + render(kid) + ")";
  }
  return render(kid);
}

std::string render(const Node& node) {
  switch (node.op) {
    case Op::kConst:
      return render_const(node.value);
    case Op::kVar:
      return node.var_name;
    case Op::kAdd: {
      std::string out;
      for (std::size_t i = 0; i < node.children.size(); ++i) {
        const Node& kid = *node.children[i];
        if (i > 0 && kid.op == Op::kNeg) {
          out += " - " + child(node, *kid.children[0]);
        } else {
          if (i > 0) {
            out += " + ";
          }
          out += child(node, kid);
        }
      }
      return out;
    }
    case Op::kMul:
      return child(node, *node.children[0]) + " * " +
             child(node, *node.children[1]);
    case Op::kDiv:
      return child(node, *node.children[0]) + " / " +
             child(node, *node.children[1]);
    case Op::kPow:
      return child(node, *node.children[0]) + "^" + render_const(node.value);
    case Op::kNeg:
      return "-" + child(node, *node.children[0]);
    case Op::kLog:
      return "log(" + render(*node.children[0]) + ")";
    case Op::kExp:
      return "exp(" + render(*node.children[0]) + ")";
  }
  throw InternalError("unhandled expression op in printer");
}

}  // namespace

std::string to_string(const Expr& e) {
  return render(e.node());
}

}  // namespace hslb::expr
