// Expression construction with constant folding and light simplification.
#include "hslb/expr/expr.hpp"

#include <algorithm>
#include <cmath>

#include "hslb/common/error.hpp"

namespace hslb::expr {
namespace {

std::shared_ptr<const Node> make_const(double c) {
  auto node = std::make_shared<Node>();
  node->op = Op::kConst;
  node->value = c;
  return node;
}

std::shared_ptr<const Node> make_node(
    Op op, std::vector<std::shared_ptr<const Node>> children,
    double payload = 0.0) {
  auto node = std::make_shared<Node>();
  node->op = op;
  node->children = std::move(children);
  node->value = payload;
  return node;
}

bool is_const(const Expr& e, double v) {
  return e.is_constant() && e.constant_value() == v;
}

}  // namespace

Expr::Expr() : node_(make_const(0.0)) {}

Expr::Expr(double c) : node_(make_const(c)) {}

double Expr::constant_value() const {
  HSLB_REQUIRE(is_constant(), "constant_value() on a non-constant expression");
  return node_->value;
}

Expr variable(std::size_t index, std::string name) {
  auto node = std::make_shared<Node>();
  node->op = Op::kVar;
  node->var_index = index;
  node->var_name = name.empty() ? "x" + std::to_string(index) : std::move(name);
  return Expr(std::move(node));
}

Expr constant(double c) {
  return Expr(c);
}

Expr operator+(const Expr& a, const Expr& b) {
  if (a.is_constant() && b.is_constant()) {
    return Expr(a.constant_value() + b.constant_value());
  }
  if (is_const(a, 0.0)) {
    return b;
  }
  if (is_const(b, 0.0)) {
    return a;
  }
  // Flatten nested sums into one n-ary add for cheaper evaluation.
  std::vector<std::shared_ptr<const Node>> kids;
  for (const Expr* e : {&a, &b}) {
    if (e->node().op == Op::kAdd) {
      kids.insert(kids.end(), e->node().children.begin(),
                  e->node().children.end());
    } else {
      kids.push_back(e->ptr());
    }
  }
  return Expr(make_node(Op::kAdd, std::move(kids)));
}

Expr operator-(const Expr& a) {
  if (a.is_constant()) {
    return Expr(-a.constant_value());
  }
  if (a.node().op == Op::kNeg) {
    return Expr(a.node().children[0]);
  }
  return Expr(make_node(Op::kNeg, {a.ptr()}));
}

Expr operator-(const Expr& a, const Expr& b) {
  if (a.is_constant() && b.is_constant()) {
    return Expr(a.constant_value() - b.constant_value());
  }
  if (is_const(b, 0.0)) {
    return a;
  }
  return a + (-b);
}

Expr operator*(const Expr& a, const Expr& b) {
  if (a.is_constant() && b.is_constant()) {
    return Expr(a.constant_value() * b.constant_value());
  }
  if (is_const(a, 0.0) || is_const(b, 0.0)) {
    return Expr(0.0);
  }
  if (is_const(a, 1.0)) {
    return b;
  }
  if (is_const(b, 1.0)) {
    return a;
  }
  return Expr(make_node(Op::kMul, {a.ptr(), b.ptr()}));
}

Expr operator/(const Expr& a, const Expr& b) {
  HSLB_REQUIRE(!is_const(b, 0.0), "division by the constant zero");
  if (a.is_constant() && b.is_constant()) {
    return Expr(a.constant_value() / b.constant_value());
  }
  if (is_const(b, 1.0)) {
    return a;
  }
  if (is_const(a, 0.0)) {
    return Expr(0.0);
  }
  return Expr(make_node(Op::kDiv, {a.ptr(), b.ptr()}));
}

Expr& operator+=(Expr& a, const Expr& b) {
  a = a + b;
  return a;
}

Expr& operator-=(Expr& a, const Expr& b) {
  a = a - b;
  return a;
}

Expr pow(const Expr& base, const Expr& exponent) {
  if (exponent.is_constant()) {
    const double p = exponent.constant_value();
    if (base.is_constant()) {
      return Expr(std::pow(base.constant_value(), p));
    }
    if (p == 0.0) {
      return Expr(1.0);
    }
    if (p == 1.0) {
      return base;
    }
    return Expr(make_node(Op::kPow, {base.ptr()}, p));
  }
  // General exponent: u^v == exp(v * log(u)); valid for u > 0, which holds
  // for every use in this library (node counts and times are positive).
  return exp(exponent * log(base));
}

Expr log(const Expr& x) {
  if (x.is_constant()) {
    HSLB_REQUIRE(x.constant_value() > 0.0, "log of a non-positive constant");
    return Expr(std::log(x.constant_value()));
  }
  if (x.node().op == Op::kExp) {
    return Expr(x.node().children[0]);
  }
  return Expr(make_node(Op::kLog, {x.ptr()}));
}

Expr exp(const Expr& x) {
  if (x.is_constant()) {
    return Expr(std::exp(x.constant_value()));
  }
  if (x.node().op == Op::kLog) {
    return Expr(x.node().children[0]);
  }
  return Expr(make_node(Op::kExp, {x.ptr()}));
}

Expr sum(std::span<const Expr> terms) {
  Expr total(0.0);
  for (const Expr& t : terms) {
    total += t;
  }
  return total;
}

Linearity Expr::linearity() const {
  switch (node_->op) {
    case Op::kConst:
      return Linearity::kConstant;
    case Op::kVar:
      return Linearity::kLinear;
    case Op::kNeg:
      return Expr(node_->children[0]).linearity();
    case Op::kAdd: {
      Linearity worst = Linearity::kConstant;
      for (const auto& child : node_->children) {
        const Linearity l = Expr(child).linearity();
        if (l == Linearity::kNonlinear) {
          return Linearity::kNonlinear;
        }
        if (l == Linearity::kLinear) {
          worst = Linearity::kLinear;
        }
      }
      return worst;
    }
    case Op::kMul: {
      const Linearity l0 = Expr(node_->children[0]).linearity();
      const Linearity l1 = Expr(node_->children[1]).linearity();
      if (l0 == Linearity::kConstant) {
        return l1;
      }
      if (l1 == Linearity::kConstant) {
        return l0;
      }
      return Linearity::kNonlinear;
    }
    case Op::kDiv: {
      const Linearity l0 = Expr(node_->children[0]).linearity();
      const Linearity l1 = Expr(node_->children[1]).linearity();
      if (l1 == Linearity::kConstant) {
        return l0;
      }
      return Linearity::kNonlinear;
    }
    case Op::kPow:
    case Op::kLog:
    case Op::kExp:
      return Linearity::kNonlinear;
  }
  return Linearity::kNonlinear;
}

std::optional<std::size_t> max_var_index(const Expr& e) {
  const Node& n = e.node();
  std::optional<std::size_t> best;
  if (n.op == Op::kVar) {
    best = n.var_index;
  }
  for (const auto& child : n.children) {
    if (const auto sub = max_var_index(Expr(child))) {
      best = best ? std::max(*best, *sub) : *sub;
    }
  }
  return best;
}

namespace {

void collect_vars(const Node& node, std::vector<std::size_t>& out) {
  if (node.op == Op::kVar) {
    out.push_back(node.var_index);
  }
  for (const auto& child : node.children) {
    collect_vars(*child, out);
  }
}

std::shared_ptr<const Node> remap_node(
    const std::shared_ptr<const Node>& node,
    std::span<const std::size_t> mapping) {
  if (node->op == Op::kVar) {
    HSLB_REQUIRE(node->var_index < mapping.size(),
                 "remap_variables: unmapped variable index");
    auto copy = std::make_shared<Node>(*node);
    copy->var_index = mapping[node->var_index];
    return copy;
  }
  if (node->children.empty()) {
    return node;
  }
  auto copy = std::make_shared<Node>(*node);
  for (auto& child : copy->children) {
    child = remap_node(child, mapping);
  }
  return copy;
}

}  // namespace

std::vector<std::size_t> variables_of(const Expr& e) {
  std::vector<std::size_t> out;
  collect_vars(e.node(), out);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

Expr remap_variables(const Expr& e, std::span<const std::size_t> mapping) {
  return Expr(remap_node(e.ptr(), mapping));
}

namespace {

std::shared_ptr<const Node> substitute_node(
    const std::shared_ptr<const Node>& node, std::size_t index,
    const Expr& replacement) {
  if (node->op == Op::kVar) {
    return node->var_index == index ? replacement.ptr() : node;
  }
  if (node->children.empty()) {
    return node;
  }
  auto copy = std::make_shared<Node>(*node);
  for (auto& child : copy->children) {
    child = substitute_node(child, index, replacement);
  }
  return copy;
}

}  // namespace

Expr substitute(const Expr& e, std::size_t index, const Expr& replacement) {
  return Expr(substitute_node(e.ptr(), index, replacement));
}

std::optional<AffineForm> as_affine(const Expr& e, std::size_t nvars) {
  if (e.linearity() == Linearity::kNonlinear) {
    return std::nullopt;
  }
  // For a structurally affine expression, the gradient is globally constant
  // and the value at the origin is the constant term.
  AffineForm form;
  const linalg::Vector origin(nvars, 0.0);
  const ValGrad vg = eval_grad(e, origin, nvars);
  form.constant = vg.value;
  form.coeffs = vg.grad;
  return form;
}

}  // namespace hslb::expr
