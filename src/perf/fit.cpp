#include "hslb/perf/fit.hpp"

#include <algorithm>
#include <cmath>

#include "hslb/common/error.hpp"
#include "hslb/linalg/factor.hpp"
#include "hslb/nlp/levenberg_marquardt.hpp"
#include "hslb/nlp/nnls.hpp"
#include "hslb/obs/obs.hpp"

namespace hslb::perf {
namespace {

using linalg::Matrix;
using linalg::Vector;

/// For a fixed exponent c, solve the (a, b, d) >= 0 subproblem by NNLS and
/// return the sum of squared residuals.
double varpro_at(double c, std::span<const double> nodes,
                 std::span<const double> times,
                 std::span<const double> weights, PerfParams* best) {
  const std::size_t m = nodes.size();
  Matrix a(m, 3);
  Vector rhs(m);
  for (std::size_t i = 0; i < m; ++i) {
    a(i, 0) = weights[i] / nodes[i];
    a(i, 1) = weights[i] * std::pow(nodes[i], c);
    a(i, 2) = weights[i];
    rhs[i] = weights[i] * times[i];
  }
  const auto r = nlp::solve_nnls(a, rhs);
  if (best) {
    best->a = r.x[0];
    best->b = r.x[1];
    best->c = c;
    best->d = r.x[2];
  }
  return r.residual_norm * r.residual_norm;
}

double sse_of(const PerfParams& p, std::span<const double> nodes,
              std::span<const double> times,
              std::span<const double> weights) {
  const PerfModel model(p);
  double sse = 0.0;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const double r = weights[i] * (times[i] - model(nodes[i]));
    sse += r * r;
  }
  return sse;
}

/// Huber cost with a MAD-adaptive transition, matching the LM fitter's IRLS
/// weighting: candidate fits are compared under the same robust objective
/// they were polished against.
double huber_cost_of(const PerfParams& p, std::span<const double> nodes,
                     std::span<const double> times,
                     std::span<const double> weights, double delta) {
  const PerfModel model(p);
  Vector r(nodes.size());
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    r[i] = weights[i] * (times[i] - model(nodes[i]));
  }
  Vector magnitudes(r.size());
  for (std::size_t i = 0; i < r.size(); ++i) {
    magnitudes[i] = std::fabs(r[i]);
  }
  Vector sorted(magnitudes);
  std::sort(sorted.begin(), sorted.end());
  const double median = sorted[sorted.size() / 2];
  const double threshold = delta * std::max(1.4826 * median, 1e-12);
  double cost = 0.0;
  for (const double m : magnitudes) {
    cost += m <= threshold ? 0.5 * m * m
                           : threshold * (m - 0.5 * threshold);
  }
  return cost;
}

}  // namespace

FitResult fit(std::span<const double> nodes, std::span<const double> times,
              const FitOptions& opts) {
  HSLB_REQUIRE(nodes.size() == times.size(), "fit: series size mismatch");
  HSLB_REQUIRE(nodes.size() >= 3, "fit needs at least 3 samples");
  HSLB_REQUIRE(opts.c_min >= 0.0 && opts.c_min < opts.c_max,
               "fit: invalid exponent range");
  for (const double n : nodes) {
    HSLB_REQUIRE(n > 0.0, "fit: node counts must be positive");
  }

  HSLB_SPAN("perf.fit");
  HSLB_COUNT("perf.fit.calls", 1);

  // Residual weights: 1 (plain SSE, the paper's choice) or 1/y_i.
  Vector weights(nodes.size(), 1.0);
  if (opts.relative_weighting) {
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      HSLB_REQUIRE(times[i] > 0.0,
                   "relative weighting needs positive observed times");
      weights[i] = 1.0 / times[i];
    }
  }

  // --- VarPro grid over the exponent. --------------------------------------
  PerfParams best;
  double best_sse = lp::kInf;
  for (int k = 0; k <= opts.c_grid; ++k) {
    const double c =
        opts.c_min + (opts.c_max - opts.c_min) * k / std::max(1, opts.c_grid);
    PerfParams p;
    const double sse = varpro_at(c, nodes, times, weights, &p);
    if (sse < best_sse) {
      best_sse = sse;
      best = p;
    }
  }

  // Golden-section refinement of c around the best grid cell.
  {
    const double step = (opts.c_max - opts.c_min) / std::max(1, opts.c_grid);
    double lo = std::max(opts.c_min, best.c - step);
    double hi = std::min(opts.c_max, best.c + step);
    constexpr double kGolden = 0.6180339887498949;
    for (int it = 0; it < 40 && hi - lo > 1e-7; ++it) {
      const double c1 = hi - kGolden * (hi - lo);
      const double c2 = lo + kGolden * (hi - lo);
      PerfParams p1;
      PerfParams p2;
      const double s1 = varpro_at(c1, nodes, times, weights, &p1);
      const double s2 = varpro_at(c2, nodes, times, weights, &p2);
      if (s1 <= s2) {
        hi = c2;
        if (s1 < best_sse) {
          best_sse = s1;
          best = p1;
        }
      } else {
        lo = c1;
        if (s2 < best_sse) {
          best_sse = s2;
          best = p2;
        }
      }
    }
  }

  // --- Optional LM polish over all four parameters. -------------------------
  const auto residual_fn = [&](std::span<const double> theta, Vector& r,
                               Matrix* jac) {
    const double a = theta[0];
    const double b = theta[1];
    const double c = theta[2];
    const double d = theta[3];
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      const double n = nodes[i];
      const double nc = std::pow(n, c);
      const double w = weights[i];
      r[i] = w * (a / n + b * nc + d - times[i]);
      if (jac) {
        (*jac)(i, 0) = w / n;
        (*jac)(i, 1) = w * nc;
        (*jac)(i, 2) = w * b * nc * std::log(n);
        (*jac)(i, 3) = w;
      }
    }
  };

  if (opts.lm_polish) {
    const Vector lower{0.0, 0.0, opts.c_min, 0.0};
    const Vector upper{lp::kInf, lp::kInf, opts.c_max, lp::kInf};

    nlp::LmOptions lm_options;
    if (opts.robust_loss) {
      lm_options.loss = nlp::LmLoss::kHuber;
      lm_options.huber_delta = opts.huber_delta;
    }

    std::vector<Vector> starts;
    starts.push_back({best.a, best.b, best.c, best.d});
    common::Rng rng(opts.seed);
    const double y_scale =
        *std::max_element(times.begin(), times.end());
    const double n_max = *std::max_element(nodes.begin(), nodes.end());
    for (int s = 0; s < opts.multistart; ++s) {
      starts.push_back({rng.uniform(0.0, y_scale * n_max),
                        rng.uniform(0.0, y_scale / n_max),
                        rng.uniform(opts.c_min, opts.c_max),
                        rng.uniform(0.0, y_scale)});
    }
    // Candidates compete under the objective that was optimized: plain SSE
    // normally, the MAD-adaptive Huber cost in robust mode (an outlier-
    // chasing low-SSE fit must not beat a robust one there).
    double best_score =
        opts.robust_loss
            ? huber_cost_of(best, nodes, times, weights, opts.huber_delta)
            : best_sse;
    for (const Vector& start : starts) {
      const auto lm = nlp::minimize_lm(residual_fn, start, lower, upper,
                                       nodes.size(), lm_options);
      const PerfParams p{lm.theta[0], lm.theta[1], lm.theta[2], lm.theta[3]};
      const double score =
          opts.robust_loss
              ? huber_cost_of(p, nodes, times, weights, opts.huber_delta)
              : sse_of(p, nodes, times, weights);
      if (score < best_score) {
        best_score = score;
        best = p;
        best_sse = sse_of(p, nodes, times, weights);
      }
    }
  }

  FitResult out;
  out.model = PerfModel(best);
  // Report sse/rmse in plain (unweighted) units regardless of weighting.
  {
    const Vector unit(nodes.size(), 1.0);
    out.sse = sse_of(best, nodes, times, unit);
  }
  out.rmse = std::sqrt(out.sse / static_cast<double>(nodes.size()));
  Vector predicted(nodes.size());
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    predicted[i] = out.model(nodes[i]);
  }
  out.r_squared = r_squared(times, predicted);
  out.converged = true;

  // Parameter covariance for prediction intervals: sigma^2 (J^T J)^{-1}
  // with J the (unweighted) Jacobian of the model at the solution.  Columns
  // of parameters pinned at zero (b, and c whenever b == 0) are dropped --
  // they would make J^T J singular -- and their covariance rows stay zero.
  std::vector<std::size_t> active{0, 3};  // a and d always move
  if (best.b > 1e-12) {
    active.push_back(1);
    active.push_back(2);
  }
  out.degrees_of_freedom =
      static_cast<int>(nodes.size()) - static_cast<int>(active.size());
  if (out.degrees_of_freedom > 0) {
    const auto column_of = [&](std::size_t param, double n) {
      const double nc = std::pow(n, best.c);
      switch (param) {
        case 0:
          return 1.0 / n;
        case 1:
          return nc;
        case 2:
          return best.b * nc * std::log(n);
        default:
          return 1.0;
      }
    };
    Matrix jac(nodes.size(), active.size());
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      for (std::size_t k = 0; k < active.size(); ++k) {
        jac(i, k) = column_of(active[k], nodes[i]);
      }
    }
    const Matrix jtj = linalg::gram(jac);
    if (const auto lu = linalg::LuFactor::compute(jtj)) {
      const double sigma2 = out.sse / out.degrees_of_freedom;
      out.covariance = Matrix(4, 4);
      for (std::size_t col = 0; col < active.size(); ++col) {
        Vector e(active.size(), 0.0);
        e[col] = 1.0;
        const Vector column = lu->solve(e);
        for (std::size_t row = 0; row < active.size(); ++row) {
          out.covariance(active[row], active[col]) = sigma2 * column[row];
        }
      }
    }
  }
  return out;
}

double prediction_stddev(const FitResult& fit_result, double n) {
  HSLB_REQUIRE(n > 0.0, "prediction_stddev needs n > 0");
  if (fit_result.covariance.empty()) {
    return 0.0;
  }
  const PerfParams& p = fit_result.model.params();
  const double nc = std::pow(n, p.c);
  const Vector g{1.0 / n, nc, p.b * nc * std::log(n), 1.0};
  const Vector cg = linalg::matvec(fit_result.covariance, g);
  const double variance = linalg::dot(g, cg);
  return variance > 0.0 ? std::sqrt(variance) : 0.0;
}

}  // namespace hslb::perf
