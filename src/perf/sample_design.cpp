#include "hslb/perf/sample_design.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "hslb/common/error.hpp"

namespace hslb::perf {

std::vector<int> design_benchmark_nodes(int min_nodes, int max_nodes,
                                        int count) {
  HSLB_REQUIRE(min_nodes >= 1, "min_nodes must be >= 1");
  HSLB_REQUIRE(max_nodes >= min_nodes, "max_nodes must be >= min_nodes");
  HSLB_REQUIRE(count >= 2, "need at least two design points");

  std::vector<int> nodes;
  const double llo = std::log(static_cast<double>(min_nodes));
  const double lhi = std::log(static_cast<double>(max_nodes));
  for (int i = 0; i < count; ++i) {
    const double f = count == 1 ? 0.0 : static_cast<double>(i) / (count - 1);
    nodes.push_back(
        static_cast<int>(std::lround(std::exp(llo + (lhi - llo) * f))));
  }
  nodes.front() = min_nodes;
  nodes.back() = max_nodes;
  std::sort(nodes.begin(), nodes.end());
  nodes.erase(std::unique(nodes.begin(), nodes.end()), nodes.end());
  return nodes;
}

std::vector<int> snap_to_allowed(const std::vector<int>& designed,
                                 const std::vector<int>& allowed) {
  HSLB_REQUIRE(!allowed.empty(), "allowed set must be nonempty");
  std::vector<int> sorted_allowed = allowed;
  std::sort(sorted_allowed.begin(), sorted_allowed.end());

  std::vector<int> out;
  for (const int n : designed) {
    const auto it =
        std::lower_bound(sorted_allowed.begin(), sorted_allowed.end(), n);
    int best;
    if (it == sorted_allowed.end()) {
      best = sorted_allowed.back();
    } else if (it == sorted_allowed.begin()) {
      best = sorted_allowed.front();
    } else {
      const int above = *it;
      const int below = *(it - 1);
      best = (std::abs(above - n) < std::abs(n - below)) ? above : below;
    }
    out.push_back(best);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace hslb::perf
