#include "hslb/perf/perf_model.hpp"

#include <cmath>

#include "hslb/common/error.hpp"

namespace hslb::perf {

PerfModel::PerfModel(PerfParams params) : params_(params) {
  HSLB_REQUIRE(params.a >= 0.0 && params.b >= 0.0 && params.d >= 0.0,
               "performance parameters a, b, d must be nonnegative (Table II)");
  HSLB_REQUIRE(params.c >= 0.0, "exponent c must be nonnegative (Table II)");
}

double PerfModel::operator()(double n) const {
  HSLB_REQUIRE(n > 0.0, "performance model needs n > 0");
  return scalable_term(n) + nonlinear_term(n) + serial_term();
}

double PerfModel::deriv(double n) const {
  HSLB_REQUIRE(n > 0.0, "performance model needs n > 0");
  double d = -params_.a / (n * n);
  if (params_.b > 0.0) {
    d += params_.b * params_.c * std::pow(n, params_.c - 1.0);
  }
  return d;
}

double PerfModel::scalable_term(double n) const {
  return params_.a / n;
}

double PerfModel::nonlinear_term(double n) const {
  return params_.b == 0.0 ? 0.0 : params_.b * std::pow(n, params_.c);
}

double PerfModel::serial_term() const {
  return params_.d;
}

expr::Expr PerfModel::as_expr(const expr::Expr& n) const {
  expr::Expr t = params_.a / n + params_.d;
  if (params_.b > 0.0) {
    t += params_.b * expr::pow(n, params_.c);
  }
  return t;
}

minlp::UnivariateFn PerfModel::as_univariate() const {
  minlp::UnivariateFn fn;
  const PerfModel copy = *this;
  fn.value = [copy](double n) { return copy(n); };
  fn.deriv = [copy](double n) { return copy.deriv(n); };
  fn.as_expr = [copy](const expr::Expr& n) { return copy.as_expr(n); };
  fn.curvature =
      is_convex() ? minlp::Curvature::kConvex : minlp::Curvature::kAuto;
  return fn;
}

bool PerfModel::is_convex() const {
  return params_.b == 0.0 || params_.c >= 1.0;
}

double r_squared(std::span<const double> observed,
                 std::span<const double> predicted) {
  HSLB_REQUIRE(observed.size() == predicted.size() && !observed.empty(),
               "r_squared needs matching nonempty series");
  double mean = 0.0;
  for (const double y : observed) {
    mean += y;
  }
  mean /= static_cast<double>(observed.size());
  double ss_res = 0.0;
  double ss_tot = 0.0;
  for (std::size_t i = 0; i < observed.size(); ++i) {
    ss_res += (observed[i] - predicted[i]) * (observed[i] - predicted[i]);
    ss_tot += (observed[i] - mean) * (observed[i] - mean);
  }
  if (ss_tot == 0.0) {
    return ss_res == 0.0 ? 1.0 : 0.0;
  }
  return 1.0 - ss_res / ss_tot;
}

}  // namespace hslb::perf
