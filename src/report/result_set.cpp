#include "hslb/report/result_set.hpp"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "hslb/common/error.hpp"
#include "hslb/common/numeric.hpp"

namespace hslb::report {

const char* to_string(Stability stability) {
  switch (stability) {
    case Stability::kDeterministic:
      return "deterministic";
    case Stability::kTiming:
      return "timing";
  }
  return "unknown";
}

void ResultSet::add(const std::string& series_name, double x,
                    const std::string& metric, double value,
                    const std::string& unit, Stability stability,
                    const std::string& x_label) {
  Series* target = nullptr;
  for (Series& s : series) {
    if (s.name == series_name) {
      target = &s;
      break;
    }
  }
  if (target == nullptr) {
    series.push_back(Series{series_name, x_label, {}});
    target = &series.back();
  }
  Point* point = nullptr;
  for (Point& p : target->points) {
    if (p.x == x) {
      point = &p;
      break;
    }
  }
  if (point == nullptr) {
    target->points.push_back(Point{x, {}});
    point = &target->points.back();
  }
  for (const Cell& cell : point->cells) {
    HSLB_REQUIRE(cell.metric != metric,
                 "duplicate metric '" + metric + "' in series '" +
                     series_name + "' of bench '" + bench + "'");
  }
  point->cells.push_back(Cell{metric, value, unit, stability});
}

void ResultSet::add_scalar(const std::string& series_name,
                           const std::string& metric, double value,
                           const std::string& unit, Stability stability) {
  add(series_name, 0.0, metric, value, unit, stability);
}

const Series* ResultSet::find_series(const std::string& series_name) const {
  for (const Series& s : series) {
    if (s.name == series_name) {
      return &s;
    }
  }
  return nullptr;
}

const Point* ResultSet::find_point(const std::string& series_name,
                                   double x) const {
  const Series* s = find_series(series_name);
  if (s == nullptr) {
    return nullptr;
  }
  for (const Point& p : s->points) {
    if (p.x == x) {
      return &p;
    }
  }
  return nullptr;
}

const Cell* ResultSet::find(const std::string& series_name, double x,
                            const std::string& metric) const {
  const Point* p = find_point(series_name, x);
  if (p == nullptr) {
    return nullptr;
  }
  for (const Cell& cell : p->cells) {
    if (cell.metric == metric) {
      return &cell;
    }
  }
  return nullptr;
}

double ResultSet::value(const std::string& series_name, double x,
                        const std::string& metric) const {
  const Cell* cell = find(series_name, x, metric);
  HSLB_REQUIRE(cell != nullptr,
               "bench '" + bench + "': no cell " + series_name + "@" +
                   common::shortest_double(x) + "." + metric);
  return cell->value;
}

void ResultSet::canonicalize() {
  for (Series& s : series) {
    for (Point& p : s.points) {
      std::sort(p.cells.begin(), p.cells.end(),
                [](const Cell& a, const Cell& b) { return a.metric < b.metric; });
    }
    std::sort(s.points.begin(), s.points.end(),
              [](const Point& a, const Point& b) { return a.x < b.x; });
  }
  std::sort(series.begin(), series.end(),
            [](const Series& a, const Series& b) { return a.name < b.name; });
}

std::string ResultSet::fingerprint() const {
  // Canonical byte stream of the deterministic content only.
  ResultSet copy = *this;
  copy.canonicalize();
  std::string bytes = "hslb-results-v" + std::to_string(copy.version);
  bytes += '|' + copy.bench;
  for (const Series& s : copy.series) {
    for (const Point& p : s.points) {
      for (const Cell& cell : p.cells) {
        if (cell.stability != Stability::kDeterministic) {
          continue;
        }
        bytes += '|' + s.name + '@' + common::shortest_double(p.x) + ':' +
                 cell.metric + '=' + common::shortest_double(cell.value) +
                 cell.unit;
      }
    }
  }
  // FNV-1a, 64 bit.
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (const char c : bytes) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ULL;
  }
  char buf[20];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(hash));
  return buf;
}

std::string to_json(const ResultSet& set, int indent) {
  ResultSet copy = set;
  copy.canonicalize();

  Json root = Json::object();
  root.set("hslb_results_version", Json::integer(copy.version));
  root.set("bench", Json::string(copy.bench));
  root.set("title", Json::string(copy.title));
  root.set("reference", Json::string(copy.reference));
  root.set("fingerprint", Json::string(copy.fingerprint()));

  Json series = Json::array();
  for (const Series& s : copy.series) {
    Json js = Json::object();
    js.set("name", Json::string(s.name));
    js.set("x_label", Json::string(s.x_label));
    Json points = Json::array();
    for (const Point& p : s.points) {
      Json jp = Json::object();
      jp.set("x", Json::number(p.x));
      Json cells = Json::array();
      for (const Cell& cell : p.cells) {
        Json jc = Json::object();
        jc.set("metric", Json::string(cell.metric));
        jc.set("value", Json::number(cell.value));
        jc.set("unit", Json::string(cell.unit));
        jc.set("stability", Json::string(to_string(cell.stability)));
        cells.push_back(std::move(jc));
      }
      jp.set("cells", std::move(cells));
      points.push_back(std::move(jp));
    }
    js.set("points", std::move(points));
    series.push_back(std::move(js));
  }
  root.set("series", std::move(series));
  std::string out = root.dump(indent);
  out += '\n';
  return out;
}

namespace {

common::Unexpected<ResultSetParseError> parse_fail(const std::string& what) {
  return common::make_unexpected(ResultSetParseError{what});
}

}  // namespace

common::Expected<ResultSet, ResultSetParseError> from_json(
    const std::string& text) {
  const auto doc = parse_json(text);
  if (!doc) {
    return parse_fail("JSON parse error at line " +
                      std::to_string(doc.error().line) + ": " +
                      doc.error().message);
  }
  const Json& root = doc.value();
  if (!root.is_object()) {
    return parse_fail("artifact root must be an object");
  }
  const Json* version = root.find("hslb_results_version");
  if (version == nullptr || !version->is_number()) {
    return parse_fail("missing hslb_results_version");
  }
  ResultSet set;
  set.version = static_cast<int>(version->as_number());
  if (set.version != kSchemaVersion) {
    return parse_fail("unsupported schema version " +
                      std::to_string(set.version) + " (reader knows " +
                      std::to_string(kSchemaVersion) + ")");
  }
  for (const char* key : {"bench", "title", "reference"}) {
    const Json* field = root.find(key);
    if (field == nullptr || !field->is_string()) {
      return parse_fail(std::string("missing string field '") + key + "'");
    }
  }
  set.bench = root.at("bench").as_string();
  set.title = root.at("title").as_string();
  set.reference = root.at("reference").as_string();

  const Json* series = root.find("series");
  if (series == nullptr || !series->is_array()) {
    return parse_fail("missing series array");
  }
  for (std::size_t i = 0; i < series->size(); ++i) {
    const Json& js = series->at(i);
    if (!js.is_object() || js.find("name") == nullptr ||
        !js.at("name").is_string() || js.find("points") == nullptr ||
        !js.at("points").is_array()) {
      return parse_fail("malformed series entry");
    }
    Series s;
    s.name = js.at("name").as_string();
    if (const Json* x_label = js.find("x_label");
        x_label != nullptr && x_label->is_string()) {
      s.x_label = x_label->as_string();
    }
    const Json& points = js.at("points");
    for (std::size_t j = 0; j < points.size(); ++j) {
      const Json& jp = points.at(j);
      if (!jp.is_object() || jp.find("x") == nullptr ||
          !jp.at("x").is_number() || jp.find("cells") == nullptr ||
          !jp.at("cells").is_array()) {
        return parse_fail("malformed point in series '" + s.name + "'");
      }
      Point p;
      p.x = jp.at("x").as_number();
      const Json& cells = jp.at("cells");
      for (std::size_t k = 0; k < cells.size(); ++k) {
        const Json& jc = cells.at(k);
        if (!jc.is_object() || jc.find("metric") == nullptr ||
            !jc.at("metric").is_string() || jc.find("value") == nullptr ||
            !jc.at("value").is_number()) {
          return parse_fail("malformed cell in series '" + s.name + "'");
        }
        Cell cell;
        cell.metric = jc.at("metric").as_string();
        cell.value = jc.at("value").as_number();
        if (const Json* unit = jc.find("unit");
            unit != nullptr && unit->is_string()) {
          cell.unit = unit->as_string();
        }
        cell.stability = Stability::kDeterministic;
        if (const Json* stability = jc.find("stability");
            stability != nullptr && stability->is_string()) {
          const std::string& tag = stability->as_string();
          if (tag == "timing") {
            cell.stability = Stability::kTiming;
          } else if (tag != "deterministic") {
            return parse_fail("unknown stability '" + tag + "'");
          }
        }
        p.cells.push_back(std::move(cell));
      }
      s.points.push_back(std::move(p));
    }
    set.series.push_back(std::move(s));
  }

  if (const Json* fingerprint = root.find("fingerprint");
      fingerprint != nullptr && fingerprint->is_string()) {
    const std::string recomputed = set.fingerprint();
    if (fingerprint->as_string() != recomputed) {
      return parse_fail("fingerprint mismatch: file says " +
                        fingerprint->as_string() + ", content hashes to " +
                        recomputed + " (artifact corrupted or hand-edited)");
    }
  } else {
    return parse_fail("missing fingerprint");
  }
  return set;
}

bool write_file(const ResultSet& set, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    return false;
  }
  out << to_json(set);
  return static_cast<bool>(out);
}

common::Expected<ResultSet, ResultSetParseError> read_file(
    const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return parse_fail("cannot open " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  auto parsed = from_json(buffer.str());
  if (!parsed) {
    return parse_fail(path + ": " + parsed.error().message);
  }
  return parsed;
}

}  // namespace hslb::report
