#include "hslb/report/markdown.hpp"

#include <fstream>
#include <sstream>

#include "hslb/common/error.hpp"

namespace hslb::report {

MarkdownTable::MarkdownTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  HSLB_REQUIRE(!header_.empty(), "markdown table needs at least one column");
}

namespace {

std::string escape_cell(const std::string& text) {
  std::string out;
  for (const char c : text) {
    if (c == '|') {
      out += "\\|";
    } else {
      out += c;
    }
  }
  return out;
}

}  // namespace

MarkdownTable& MarkdownTable::row(std::vector<std::string> cells) {
  HSLB_REQUIRE(cells.size() == header_.size(),
               "markdown table row has " + std::to_string(cells.size()) +
                   " cells, header has " + std::to_string(header_.size()));
  rows_.push_back(std::move(cells));
  return *this;
}

std::string MarkdownTable::str() const {
  std::string out = "|";
  for (const std::string& h : header_) {
    out += ' ' + escape_cell(h) + " |";
  }
  out += "\n|";
  for (std::size_t i = 0; i < header_.size(); ++i) {
    out += "---|";
  }
  out += '\n';
  for (const auto& row : rows_) {
    out += '|';
    for (const std::string& cell : row) {
      out += ' ' + escape_cell(cell) + " |";
    }
    out += '\n';
  }
  return out;
}

common::Expected<PaperRef, PaperRefError> PaperRef::load(
    const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return common::make_unexpected(PaperRefError{"cannot open " + path});
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const auto doc = parse_json(buffer.str());
  if (!doc) {
    return common::make_unexpected(PaperRefError{
        path + ": JSON parse error at line " +
        std::to_string(doc.error().line) + ": " + doc.error().message});
  }
  const Json& root = doc.value();
  if (!root.is_object() || root.find("values") == nullptr ||
      !root.at("values").is_object() || root.find("strings") == nullptr ||
      !root.at("strings").is_object() || root.find("paper") == nullptr ||
      !root.at("paper").is_string()) {
    return common::make_unexpected(PaperRefError{
        path + ": expected {paper, values, strings} object"});
  }
  PaperRef ref;
  ref.values_ = root.at("values");
  ref.strings_ = root.at("strings");
  ref.citation_ = root.at("paper").as_string();
  return ref;
}

double PaperRef::number(const std::string& key) const {
  const Json* found = values_.find(key);
  HSLB_REQUIRE(found != nullptr && found->is_number(),
               "paper_reference.json: missing numeric value '" + key + "'");
  return found->as_number();
}

std::string PaperRef::text(const std::string& key) const {
  const Json* found = strings_.find(key);
  HSLB_REQUIRE(found != nullptr && found->is_string(),
               "paper_reference.json: missing string value '" + key + "'");
  return found->as_string();
}

}  // namespace hslb::report
