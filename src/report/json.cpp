#include "hslb/report/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <cstring>

#include "hslb/common/error.hpp"
#include "hslb/common/numeric.hpp"

namespace hslb::report {

Json Json::null() { return Json(); }

Json Json::boolean(bool value) {
  Json j;
  j.kind_ = Kind::kBool;
  j.bool_ = value;
  return j;
}

Json Json::number(double value) {
  Json j;
  j.kind_ = Kind::kNumber;
  j.number_ = value;
  return j;
}

Json Json::integer(long long value) {
  return number(static_cast<double>(value));
}

Json Json::string(std::string value) {
  Json j;
  j.kind_ = Kind::kString;
  j.string_ = std::move(value);
  return j;
}

Json Json::array() {
  Json j;
  j.kind_ = Kind::kArray;
  return j;
}

Json Json::object() {
  Json j;
  j.kind_ = Kind::kObject;
  return j;
}

bool Json::as_bool() const {
  HSLB_ASSERT(is_bool(), "Json::as_bool on a non-bool");
  return bool_;
}

double Json::as_number() const {
  HSLB_ASSERT(is_number(), "Json::as_number on a non-number");
  return number_;
}

const std::string& Json::as_string() const {
  HSLB_ASSERT(is_string(), "Json::as_string on a non-string");
  return string_;
}

std::size_t Json::size() const {
  return is_array() ? array_.size() : object_.size();
}

const Json& Json::at(std::size_t index) const {
  HSLB_ASSERT(is_array() && index < array_.size(), "Json array index");
  return array_[index];
}

void Json::push_back(Json value) {
  HSLB_ASSERT(is_array(), "Json::push_back on a non-array");
  array_.push_back(std::move(value));
}

const Json* Json::find(const std::string& key) const {
  if (!is_object()) {
    return nullptr;
  }
  for (const auto& [name, value] : object_) {
    if (name == key) {
      return &value;
    }
  }
  return nullptr;
}

const Json& Json::at(const std::string& key) const {
  const Json* found = find(key);
  HSLB_ASSERT(found != nullptr, "Json object key missing");
  return *found;
}

void Json::set(std::string key, Json value) {
  HSLB_ASSERT(is_object(), "Json::set on a non-object");
  for (auto& [name, existing] : object_) {
    if (name == key) {
      existing = std::move(value);
      return;
    }
  }
  object_.emplace_back(std::move(key), std::move(value));
}

const std::vector<std::pair<std::string, Json>>& Json::items() const {
  HSLB_ASSERT(is_object(), "Json::items on a non-object");
  return object_;
}

std::string json_quote(const std::string& text) {
  std::string out = "\"";
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;  // UTF-8 bytes pass through untouched
        }
    }
  }
  out += '"';
  return out;
}

namespace {

void newline_indent(std::string* out, int indent, int depth) {
  if (indent > 0) {
    out->push_back('\n');
    out->append(static_cast<std::size_t>(indent * depth), ' ');
  }
}

}  // namespace

void Json::dump_to(std::string* out, int indent, int depth) const {
  switch (kind_) {
    case Kind::kNull:
      *out += "null";
      return;
    case Kind::kBool:
      *out += bool_ ? "true" : "false";
      return;
    case Kind::kNumber:
      // Infinities have no JSON spelling; the schema never emits them, and
      // NaN round-trips through the string "nan" (strtod parses it back).
      *out += common::shortest_double(number_);
      return;
    case Kind::kString:
      *out += json_quote(string_);
      return;
    case Kind::kArray: {
      *out += '[';
      for (std::size_t i = 0; i < array_.size(); ++i) {
        if (i > 0) {
          *out += ',';
        }
        newline_indent(out, indent, depth + 1);
        array_[i].dump_to(out, indent, depth + 1);
      }
      if (!array_.empty()) {
        newline_indent(out, indent, depth);
      }
      *out += ']';
      return;
    }
    case Kind::kObject: {
      *out += '{';
      for (std::size_t i = 0; i < object_.size(); ++i) {
        if (i > 0) {
          *out += ',';
        }
        newline_indent(out, indent, depth + 1);
        *out += json_quote(object_[i].first);
        *out += ':';
        if (indent > 0) {
          *out += ' ';
        }
        object_[i].second.dump_to(out, indent, depth + 1);
      }
      if (!object_.empty()) {
        newline_indent(out, indent, depth);
      }
      *out += '}';
      return;
    }
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(&out, indent, 0);
  return out;
}

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  common::Expected<Json, JsonParseError> run() {
    skip_whitespace();
    Json value;
    if (!parse_value(&value)) {
      return common::make_unexpected(error_);
    }
    skip_whitespace();
    if (pos_ != text_.size()) {
      return fail_at("trailing characters after JSON document");
    }
    return value;
  }

 private:
  common::Unexpected<JsonParseError> fail_at(const std::string& message) {
    if (error_.message.empty()) {
      error_.message = message;
      error_.offset = pos_;
      error_.line = 1;
      for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
        if (text_[i] == '\n') {
          ++error_.line;
        }
      }
    }
    return common::make_unexpected(error_);
  }

  bool fail(const std::string& message) {
    (void)fail_at(message);
    return false;
  }

  void skip_whitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool parse_literal(const char* literal) {
    const std::size_t n = std::strlen(literal);
    if (text_.compare(pos_, n, literal) == 0) {
      pos_ += n;
      return true;
    }
    return false;
  }

  bool parse_string(std::string* out) {
    if (!consume('"')) {
      return fail("expected '\"'");
    }
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') {
        return true;
      }
      if (c == '\\') {
        if (pos_ >= text_.size()) {
          break;
        }
        const char esc = text_[pos_++];
        switch (esc) {
          case '"':
            *out += '"';
            break;
          case '\\':
            *out += '\\';
            break;
          case '/':
            *out += '/';
            break;
          case 'n':
            *out += '\n';
            break;
          case 't':
            *out += '\t';
            break;
          case 'r':
            *out += '\r';
            break;
          case 'b':
            *out += '\b';
            break;
          case 'f':
            *out += '\f';
            break;
          case 'u': {
            if (pos_ + 4 > text_.size()) {
              return fail("truncated \\u escape");
            }
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') {
                code |= static_cast<unsigned>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                code |= static_cast<unsigned>(h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                code |= static_cast<unsigned>(h - 'A' + 10);
              } else {
                return fail("bad hex digit in \\u escape");
              }
            }
            if (code > 0x7f) {
              return fail("non-ASCII \\u escape unsupported");
            }
            *out += static_cast<char>(code);
            break;
          }
          default:
            return fail("unknown escape character");
        }
      } else {
        *out += c;
      }
    }
    return fail("unterminated string");
  }

  bool parse_number(Json* out) {
    const std::size_t start = pos_;
    if (parse_literal("nan")) {  // shortest_double's NaN spelling
      *out = Json::number(std::nan(""));
      return true;
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) {
      return fail("expected a value");
    }
    const std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') {
      pos_ = start;
      return fail("malformed number");
    }
    *out = Json::number(value);
    return true;
  }

  bool parse_value(Json* out) {
    if (depth_ > kMaxDepth) {
      return fail("nesting too deep");
    }
    skip_whitespace();
    if (pos_ >= text_.size()) {
      return fail("unexpected end of input");
    }
    const char c = text_[pos_];
    if (c == '{') {
      ++pos_;
      *out = Json::object();
      skip_whitespace();
      if (consume('}')) {
        return true;
      }
      ++depth_;
      for (;;) {
        skip_whitespace();
        std::string key;
        if (!parse_string(&key)) {
          return false;
        }
        skip_whitespace();
        if (!consume(':')) {
          return fail("expected ':' in object");
        }
        Json value;
        if (!parse_value(&value)) {
          return false;
        }
        if (out->find(key) != nullptr) {
          return fail("duplicate object key: " + key);
        }
        out->set(std::move(key), std::move(value));
        skip_whitespace();
        if (consume(',')) {
          continue;
        }
        if (consume('}')) {
          --depth_;
          return true;
        }
        return fail("expected ',' or '}' in object");
      }
    }
    if (c == '[') {
      ++pos_;
      *out = Json::array();
      skip_whitespace();
      if (consume(']')) {
        return true;
      }
      ++depth_;
      for (;;) {
        Json value;
        if (!parse_value(&value)) {
          return false;
        }
        out->push_back(std::move(value));
        skip_whitespace();
        if (consume(',')) {
          continue;
        }
        if (consume(']')) {
          --depth_;
          return true;
        }
        return fail("expected ',' or ']' in array");
      }
    }
    if (c == '"') {
      std::string s;
      if (!parse_string(&s)) {
        return false;
      }
      *out = Json::string(std::move(s));
      return true;
    }
    if (parse_literal("true")) {
      *out = Json::boolean(true);
      return true;
    }
    if (parse_literal("false")) {
      *out = Json::boolean(false);
      return true;
    }
    if (parse_literal("null")) {
      *out = Json::null();
      return true;
    }
    return parse_number(out);
  }

  static constexpr int kMaxDepth = 64;

  const std::string& text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
  JsonParseError error_;
};

}  // namespace

common::Expected<Json, JsonParseError> parse_json(const std::string& text) {
  return Parser(text).run();
}

}  // namespace hslb::report
