#include "hslb/report/experiments_doc.hpp"

#include <algorithm>
#include <cmath>

#include "hslb/common/error.hpp"
#include "hslb/common/table.hpp"

namespace hslb::report {

const std::vector<std::string>& experiments_bench_set() {
  static const std::vector<std::string> kSet = {
      "table3_1deg",    "table3_eighth", "table3_unconstrained",
      "fig2_scaling_curves", "fig3_highres_summary", "fig4_layout_prediction",
      "minlp_solver",   "objectives",    "tsync",
      "fitting",        "ice_ml",        "fig1_layouts",
      "rebal_horizon",
  };
  return kSet;
}

namespace {

/// Rounded rendering for the docs; artifacts keep full precision.
std::string f(double value, int precision) {
  return common::format_fixed(value, precision);
}

/// Integer-valued cells (node counts, B&B nodes) rendered without decimals.
std::string n(double value) { return common::format_fixed(value, 0); }

/// Percent improvement of `candidate` over `baseline` (positive = faster).
double gain_pct(double candidate, double baseline) {
  return 100.0 * (1.0 - candidate / baseline);
}

}  // namespace

std::string render_experiments(
    const std::map<std::string, ResultSet>& artifacts, const PaperRef& paper,
    const std::string& regen_command) {
  const auto art = [&artifacts](const std::string& bench) -> const ResultSet& {
    const auto it = artifacts.find(bench);
    if (it == artifacts.end()) {
      throw Error("render_experiments: missing artifact '" + bench + "'");
    }
    if (it->second.bench != bench) {
      throw Error("render_experiments: artifact for '" + bench +
                  "' carries bench id '" + it->second.bench + "'");
    }
    return it->second;
  };
  for (const std::string& bench : experiments_bench_set()) {
    (void)art(bench);  // fail fast on an incomplete artifact directory
  }

  std::string out;
  out +=
      "# EXPERIMENTS — paper vs measured\n"
      "\n"
      "<!-- GENERATED FILE — do not edit by hand.\n"
      "     Regenerate with: " + regen_command + "\n"
      "     Renderer: tools/hslb_report render (src/report/experiments_doc"
      ".cpp);\n"
      "     measured numbers come from the bench artifacts under tests/"
      "golden/,\n"
      "     paper numbers from docs/paper_reference.json.  See DESIGN.md "
      "§10. -->\n"
      "\n"
      "Every table and figure of " + paper.citation() + ",\n"
      "reproduced by the bench binaries in `bench/`. Absolute numbers come "
      "from our\n"
      "simulated substrate calibrated to the paper's published timings (see "
      "DESIGN.md\n"
      "§2), so the comparison below is about *shape*: who wins, by what "
      "factor, where\n"
      "the crossovers fall. All runs are deterministic (seeded); every "
      "measured number\n"
      "below is looked up from a recorded bench artifact, never typed in by "
      "hand.\n"
      "Wall-clock timings are machine-dependent and deliberately excluded "
      "from this\n"
      "file (they live in the artifacts with a `timing` stability tag).\n";

  // --- Table III, 1 degree. -------------------------------------------------
  {
    const ResultSet& a = art("table3_1deg");
    out +=
        "\n## Table III — 1° resolution (`bench_table3_1deg`)\n"
        "\n"
        "The paper's claim: at 1° \"" + paper.text("table3_1deg.claim") +
        "\".\n"
        "\n";
    MarkdownTable table({"", "paper manual", "paper HSLB pred / actual",
                         "our manual", "our HSLB pred / actual"});
    for (const int total : {128, 2048}) {
      const std::string at = "@" + std::to_string(total);
      table.row(
          {std::to_string(total) + " nodes, total",
           f(paper.number("table3_1deg.manual_total_s" + at), 1) + " s",
           f(paper.number("table3_1deg.hslb_pred_s" + at), 1) + " / " +
               f(paper.number("table3_1deg.hslb_actual_s" + at), 1) + " s",
           f(a.value("manual", total, "actual_total_s"), 1) + " s",
           f(a.value("hslb", total, "pred_total_s"), 1) + " / " +
               f(a.value("hslb", total, "actual_total_s"), 1) + " s"});
    }
    out += table.str();
    const double r128 = a.value("hslb", 128, "actual_total_s") /
                        a.value("manual", 128, "actual_total_s");
    const double r2048 = a.value("hslb", 2048, "actual_total_s") /
                         a.value("manual", 2048, "actual_total_s");
    const double pr128 = paper.number("table3_1deg.hslb_actual_s@128") /
                         paper.number("table3_1deg.manual_total_s@128");
    const double pr2048 = paper.number("table3_1deg.hslb_actual_s@2048") /
                          paper.number("table3_1deg.manual_total_s@2048");
    out +=
        "\nShape reproduced: manual ≈ HSLB within a few percent at both "
        "sizes (ratios\n" +
        f(r128, 2) + " and " + f(r2048, 2) + "; paper " + f(pr128, 2) +
        " and " + f(pr2048, 2) +
        "); allocations differ substantially (e.g.\nocean " +
        n(a.value("manual", 128, "nodes_ocn")) + " manual vs " +
        n(a.value("hslb", 128, "nodes_ocn")) +
        " HSLB at 128; paper had " +
        n(paper.number("table3_1deg.manual_nodes_ocn@128")) + " vs " +
        n(paper.number("table3_1deg.hslb_nodes_ocn@128")) + " and lnd " +
        n(paper.number("table3_1deg.manual_nodes_lnd@128")) + " vs " +
        n(paper.number("table3_1deg.hslb_nodes_lnd@128")) +
        "). The\npaper's exact allocations at 128 (lnd " +
        n(paper.number("table3_1deg.manual_nodes_lnd@128")) + "/" +
        n(paper.number("table3_1deg.hslb_nodes_lnd@128")) + ", ice " +
        n(paper.number("table3_1deg.manual_nodes_ice@128")) + "/" +
        n(paper.number("table3_1deg.hslb_nodes_ice@128")) + ", atm " +
        n(paper.number("table3_1deg.manual_nodes_atm@128")) + "/" +
        n(paper.number("table3_1deg.hslb_nodes_atm@128")) + ", ocn " +
        n(paper.number("table3_1deg.manual_nodes_ocn@128")) + "/" +
        n(paper.number("table3_1deg.hslb_nodes_ocn@128")) +
        ") compare\nto ours (lnd " +
        n(a.value("manual", 128, "nodes_lnd")) + "/" +
        n(a.value("hslb", 128, "nodes_lnd")) + ", ice " +
        n(a.value("manual", 128, "nodes_ice")) + "/" +
        n(a.value("hslb", 128, "nodes_ice")) + ", atm " +
        n(a.value("manual", 128, "nodes_atm")) + "/" +
        n(a.value("hslb", 128, "nodes_atm")) + ", ocn " +
        n(a.value("manual", 128, "nodes_ocn")) + "/" +
        n(a.value("hslb", 128, "nodes_ocn")) +
        ") — same structure:\natm-dominant group with ice+lnd nested "
        "exactly (ni+nl = na), small ocean. The\nice row is the noisiest, "
        "for the paper's stated reason (default CICE\ndecompositions "
        "scatter the ice curve).\n";
  }

  // --- Table III, 1/8 degree, constrained ocean. ----------------------------
  {
    const ResultSet& a = art("table3_eighth");
    out +=
        "\n## Table III — 1/8° constrained ocean (`bench_table3_eighth`)\n"
        "\n"
        "Paper: HSLB improves on manual \"" +
        paper.text("table3_eighth.claim") +
        "\" at 8192 and 32768 with\nthe hard-coded ocean set "
        "{480, 512, 2356, 3136, 4564, 6124, 19460}.\n"
        "\n";
    MarkdownTable table({"", "paper manual", "paper HSLB pred / actual",
                         "ours manual", "ours HSLB pred / actual"});
    for (const int total : {8192, 32768}) {
      const std::string at = "@" + std::to_string(total);
      table.row(
          {std::to_string(total) + ", total",
           f(paper.number("table3_eighth.manual_total_s" + at), 1) + " s",
           f(paper.number("table3_eighth.hslb_pred_s" + at), 1) + " / " +
               f(paper.number("table3_eighth.hslb_actual_s" + at), 1) + " s",
           f(a.value("manual", total, "actual_total_s"), 1) + " s",
           f(a.value("hslb", total, "pred_total_s"), 1) + " / " +
               f(a.value("hslb", total, "actual_total_s"), 1) + " s"});
      table.row(
          {std::to_string(total) + ", ocean pick",
           n(paper.number("table3_eighth.manual_nodes_ocn" + at)),
           n(paper.number("table3_eighth.hslb_nodes_ocn" + at)),
           n(a.value("manual", total, "nodes_ocn")),
           n(a.value("hslb", total, "nodes_ocn"))});
    }
    out += table.str();
    const double our8 = gain_pct(a.value("hslb", 8192, "actual_total_s"),
                                 a.value("manual", 8192, "actual_total_s"));
    const double our32 = gain_pct(a.value("hslb", 32768, "actual_total_s"),
                                  a.value("manual", 32768, "actual_total_s"));
    const double paper8 =
        gain_pct(paper.number("table3_eighth.hslb_actual_s@8192"),
                 paper.number("table3_eighth.manual_total_s@8192"));
    const double paper32 =
        gain_pct(paper.number("table3_eighth.hslb_actual_s@32768"),
                 paper.number("table3_eighth.manual_total_s@32768"));
    out +=
        "\nShape (and here even the numbers) reproduced: " + f(our8, 1) +
        " % HSLB win at 8192 (paper\n" + f(paper8, 1) + " %), " +
        f(our32, 1) + " % at 32768 (paper " + f(paper32, 1) +
        " %), and the *same discrete ocean choices* at\nboth sizes — "
        "including the paper's signature move of jumping the ocean to\n" +
        n(paper.number("table3_eighth.hslb_nodes_ocn@32768")) +
        " nodes at 32768. Our 32768 prediction (" +
        f(a.value("hslb", 32768, "pred_total_s"), 1) +
        " s) lands within " +
        f(std::fabs(a.value("hslb", 32768, "pred_total_s") -
                    paper.number("table3_eighth.hslb_pred_s@32768")),
          1) +
        " s of\nthe paper's (" +
        f(paper.number("table3_eighth.hslb_pred_s@32768"), 1) +
        " s) because the truth laws were calibrated by inverting\nthe "
        "paper's Table III.\n";
  }

  // --- Table III, 1/8 degree, unconstrained ocean. --------------------------
  {
    const ResultSet& a = art("table3_unconstrained");
    const double pred_gain =
        gain_pct(a.value("unconstrained", 32768, "pred_total_s"),
                 a.value("constrained", 32768, "pred_total_s"));
    const double actual_gain =
        gain_pct(a.value("unconstrained", 32768, "actual_total_s"),
                 a.value("constrained", 32768, "actual_total_s"));
    const double pred_gain8 =
        gain_pct(a.value("unconstrained", 8192, "pred_total_s"),
                 a.value("constrained", 8192, "pred_total_s"));
    const double actual_gain8 =
        gain_pct(a.value("unconstrained", 8192, "actual_total_s"),
                 a.value("constrained", 8192, "actual_total_s"));
    out +=
        "\n## Table III — 1/8° unconstrained ocean "
        "(`bench_table3_unconstrained`)\n"
        "\n"
        "Paper: removing the ocean-count constraint cuts the *predicted* "
        "time\n~" + n(paper.number("table3_unconstrained.pred_gain_pct")) +
        " % at 32768 (" +
        f(paper.number("table3_unconstrained.pred_s@32768"), 1) + " s vs " +
        f(paper.number("table3_eighth.hslb_pred_s@32768"), 1) +
        " s constrained); the executed run pays more\nthan predicted (" +
        f(paper.number("table3_unconstrained.actual_s@32768"), 1) +
        " s) because the fit missed POP's behaviour off its tuned\ncounts; "
        "the realized win over the constrained actual is ~" +
        n(paper.number("table3_unconstrained.actual_gain_pct")) + " %.\n"
        "\n";
    MarkdownTable table({"", "paper", "ours"});
    table.row({"32768 unconstrained predicted",
               f(paper.number("table3_unconstrained.pred_s@32768"), 1) +
                   " s (ocn " +
                   n(paper.number(
                       "table3_unconstrained.pred_nodes_ocn@32768")) + ")",
               f(a.value("unconstrained", 32768, "pred_total_s"), 1) +
                   " s (ocn " +
                   n(a.value("unconstrained", 32768, "nodes_ocn")) + ")"});
    table.row({"32768 unconstrained actual",
               f(paper.number("table3_unconstrained.actual_s@32768"), 1) +
                   " s (ocn " +
                   n(paper.number(
                       "table3_unconstrained.actual_nodes_ocn@32768")) + ")",
               f(a.value("unconstrained", 32768, "actual_total_s"), 1) +
                   " s"});
    table.row({"prediction improvement vs constrained",
               "~" + n(paper.number("table3_unconstrained.pred_gain_pct")) +
                   " %",
               f(pred_gain, 1) + " %"});
    table.row({"actual improvement vs constrained",
               "~" + n(paper.number("table3_unconstrained.actual_gain_pct")) +
                   " %",
               f(actual_gain, 1) + " %"});
    table.row({"8192 unconstrained",
               "\"" + paper.text("table3_unconstrained.claim8192") + "\"",
               f(pred_gain8, 1) + " % predicted, " + f(actual_gain8, 1) +
                   " % actual"});
    out += table.str();
    const double ocn_err =
        100.0 *
        std::fabs(a.value("unconstrained", 32768, "nodes_ocn") -
                  paper.number("table3_unconstrained.pred_nodes_ocn@32768")) /
        paper.number("table3_unconstrained.pred_nodes_ocn@32768");
    out +=
        "\nAll four shapes hold: big predicted win at 32768 (the "
        "unconstrained ocean\npick of " +
        n(a.value("unconstrained", 32768, "nodes_ocn")) +
        " nodes lands within " + f(ocn_err, 1) + " % of the paper's " +
        n(paper.number("table3_unconstrained.pred_nodes_ocn@32768")) +
        "), actual above\nprediction (the off-preferred-count penalty our "
        "POP oracle models),\na realized double-digit win, and a much "
        "smaller effect at 8192.\n";
  }

  // --- Figure 2. ------------------------------------------------------------
  {
    const ResultSet& a = art("fig2_scaling_curves");
    out +=
        "\n## Figure 2 — component scaling curves, 1° "
        "(`bench_fig2_scaling_curves`)\n"
        "\n"
        "Paper: Table II fits with R² \"" + paper.text("fig2.claim") +
        "\"; the ice\nfit is the worst because default decompositions "
        "scatter its curve; T^sca\ndominates at small n, T^ser at large n, "
        "T^nln stays small on this machine.\n"
        "\n";
    struct Fit {
      std::string name;
      double r2;
    };
    std::vector<Fit> fits;
    for (const char* comp : {"atm", "ocn", "ice", "lnd"}) {
      fits.push_back({comp, a.value(comp, 0, "r_squared")});
    }
    const auto worst = std::min_element(
        fits.begin(), fits.end(),
        [](const Fit& x, const Fit& y) { return x.r2 < y.r2; });
    out += "Measured: R² = ";
    for (std::size_t i = 0; i < fits.size(); ++i) {
      out += (i > 0 ? ", " : "") + f(fits[i].r2, 5) + " (" + fits[i].name +
             (fits[i].name == worst->name ? " — the lowest, as in the paper"
                                          : "") +
             ")";
    }
    out += ".\nTerm decomposition: atm T^sca " +
           n(a.value("atm_terms", 16, "t_sca_s")) + "→" +
           n(a.value("atm_terms", 2048, "t_sca_s")) + " s and T^ser " +
           f(a.value("atm_terms", 16, "t_ser_s"), 1) +
           " s constant\nacross 16→2048 nodes, T^nln < 0.1 s everywhere.\n";
  }

  // --- Figure 3. ------------------------------------------------------------
  {
    const ResultSet& a = art("fig3_highres_summary");
    out +=
        "\n## Figure 3 — 1/8° human vs HSLB (`bench_fig3_highres_summary`)\n"
        "\n"
        "Paper: predicted tracks actual; HSLB at/below the human guess.\n"
        "\n";
    MarkdownTable table({"nodes", "human actual", "HSLB predicted",
                         "HSLB actual", "prediction error",
                         "HSLB / human"});
    double max_err = 0.0;
    double min_ratio = 1e300;
    double max_ratio = 0.0;
    for (const int total : {8192, 16384, 24576, 32768}) {
      const double human = a.value("human", total, "actual_total_s");
      const double pred = a.value("hslb", total, "pred_total_s");
      const double actual = a.value("hslb", total, "actual_total_s");
      const double err = 100.0 * std::fabs(pred - actual) / actual;
      const double ratio = actual / human;
      max_err = std::max(max_err, err);
      min_ratio = std::min(min_ratio, ratio);
      max_ratio = std::max(max_ratio, ratio);
      table.row({std::to_string(total), f(human, 0) + " s", f(pred, 0) + " s",
                 f(actual, 0) + " s", f(err, 1) + " %", f(ratio, 2)});
    }
    out += table.str();
    out += "\nPrediction error ≤ " + f(max_err, 1) +
           " % everywhere; HSLB ≤ human at every size (ratio\n" +
           f(min_ratio, 2) + "–" + f(max_ratio, 2) + ").\n";
  }

  // --- Figure 4. ------------------------------------------------------------
  {
    const ResultSet& a = art("fig4_layout_prediction");
    out +=
        "\n## Figure 4 — layout 1–3 predictions, 1° "
        "(`bench_fig4_layout_prediction`)\n"
        "\n"
        "Paper: layouts 1 and 2 perform similarly, layout 3 worst; R² "
        "between\npredicted and experimental layout-1 equals " +
        f(paper.number("fig4.r_squared"), 1) + ".\n"
        "\n";
    MarkdownTable table(
        {"nodes", "L1 predicted", "L2 predicted", "L3 predicted",
         "L3 vs L1", "L2 vs L1"});
    double min3 = 1e300;
    double max3 = 0.0;
    double max2 = 0.0;
    for (const int total : {128, 256, 512, 1024, 2048}) {
      const double l1 = a.value("layout1", total, "pred_s");
      const double l2 = a.value("layout2", total, "pred_s");
      const double l3 = a.value("layout3", total, "pred_s");
      const double worse3 = 100.0 * (l3 / l1 - 1.0);
      const double worse2 = 100.0 * (l2 / l1 - 1.0);
      min3 = std::min(min3, worse3);
      max3 = std::max(max3, worse3);
      max2 = std::max(max2, worse2);
      table.row({std::to_string(total), f(l1, 0) + " s", f(l2, 0) + " s",
                 f(l3, 0) + " s", "+" + f(worse3, 0) + " %",
                 "+" + f(worse2, 0) + " %"});
    }
    out += table.str();
    out += "\nLayout 3 is " + f(min3, 0) + "–" + f(max3, 0) +
           " % worse everywhere; layouts 1–2 within " + f(max2, 0) +
           " %.\nR²(pred, exp) for layout 1 = **" +
           f(a.value("fit", 0, "r_squared"), 3) + "** (paper: " +
           f(paper.number("fig4.r_squared"), 1) + ").\n";
  }

  // --- Section III-E solver claims. -----------------------------------------
  {
    const ResultSet& a = art("minlp_solver");
    out +=
        "\n## §III-E solver claims (`bench_minlp_solver`)\n"
        "\n"
        "* Paper: the " + n(paper.number("minlp.full_machine_nodes")) +
        "-node MINLP solves \"" + paper.text("minlp.claim_60s") +
        "\".\n  Measured: well inside the " +
        n(paper.number("minlp.full_machine_budget_s")) +
        " s budget on modern hardware (run\n  `bench_minlp_solver` for the "
        "BM_FullMachineSolve timer; wall-clock numbers\n  are "
        "machine-dependent and not baked into this generated file).\n"
        "* Paper: SOS branching \"" + paper.text("minlp.claim_sos") +
        "\"\n  over branching on individual binaries (~" +
        n(paper.number("minlp.sos_speedup_x")) +
        "×). Measured (B&B nodes, SOS vs binary):\n  ";
    bool first = true;
    double min_ratio = 1e300;
    double max_ratio = 0.0;
    for (const int total : {128, 512, 2048}) {
      const double sos = a.value("sos", total, "bb_nodes");
      const double bin = a.value("binary", total, "bb_nodes");
      min_ratio = std::min(min_ratio, bin / sos);
      max_ratio = std::max(max_ratio, bin / sos);
      out += std::string(first ? "" : ", ") + n(sos) + " vs " + n(bin) +
             " at N=" + std::to_string(total);
      first = false;
    }
    out +=
        " — " + n(min_ratio) + "–" + n(max_ratio) +
        "× fewer\n  nodes on these set sizes (the paper's " +
        n(paper.number("minlp.sos_speedup_x")) +
        "× was measured on the full " +
        n(paper.number("minlp.full_machine_nodes")) +
        "-node\n  instance with its larger sets; the direction and "
        "scale-dependence reproduce).\n"
        "* MINOTAUR \"offers several algorithms\": LP/NLP-BB vs NLP-BB "
        "agree to the same\n  optimum";
    double max_obj_gap = 0.0;
    for (const int total : {128, 512}) {
      max_obj_gap = std::max(
          max_obj_gap,
          std::fabs(a.value("lpnlp_bb", total, "objective_s") -
                    a.value("nlp_bb", total, "objective_s")) /
              a.value("nlp_bb", total, "objective_s"));
    }
    out += " (objectives within " + f(100.0 * max_obj_gap, 2) +
           " %); LP/NLP-BB explores " +
           n(a.value("lpnlp_bb", 128, "bb_nodes")) + " vs " +
           n(a.value("nlp_bb", 128, "bb_nodes")) +
           " B&B nodes\n  at N=128 and needs no NLP subproblem solves.\n"
           "* FBBT presolve: " +
           n(a.value("presolve_on", 128, "tightenings")) +
           " bound tightenings at N=128 trim the search from " +
           n(a.value("presolve_off", 128, "bb_nodes")) + " nodes / " +
           n(a.value("presolve_off", 128, "lp_solves")) +
           " LPs to\n  " + n(a.value("presolve_on", 128, "bb_nodes")) +
           " nodes / " + n(a.value("presolve_on", 128, "lp_solves")) +
           " LPs (" + n(a.value("presolve_off", 2048, "bb_nodes")) + "/" +
           n(a.value("presolve_off", 2048, "lp_solves")) + " to " +
           n(a.value("presolve_on", 2048, "bb_nodes")) + "/" +
           n(a.value("presolve_on", 2048, "lp_solves")) + " at N=2048).\n";
  }

  // --- Section III-D objectives. --------------------------------------------
  {
    const ResultSet& a = art("objectives");
    out +=
        "\n## §III-D objectives (`bench_objectives`)\n"
        "\n"
        "Paper: min-max (used in the paper) better than max-min; min-sum \"" +
        paper.text("objectives.claim") +
        "\".\nMeasured actual totals (set-free model so all three "
        "objectives face the same\nsearch space):\n"
        "\n";
    MarkdownTable table({"nodes", "min-max", "min-sum", "max-min"});
    bool minmax_best = true;
    for (const int total : {128, 512, 2048}) {
      const double mm = a.value("minmax", total, "actual_s");
      const double ms = a.value("minsum", total, "actual_s");
      const double xm = a.value("maxmin", total, "actual_s");
      minmax_best = minmax_best && mm <= ms && mm <= xm;
      table.row({std::to_string(total), f(mm, 1) + " s", f(ms, 1) + " s",
                 f(xm, 1) + " s"});
    }
    out += table.str();
    out += minmax_best
               ? "\nMin-max is best at every size, as the paper found; our "
                 "max-min trails by more\nthan the paper's because it "
                 "optimizes balance (its ice/land gaps are the\nsmallest "
                 "of the three) at the expense of speed under the "
                 "full-resource-use\nconstraint it needs to be well "
                 "posed.\n"
               : "\n**Deviation from the paper: min-max is NOT best at "
                 "every size in this run.**\n";
  }

  // --- Section III-A Tsync. -------------------------------------------------
  {
    const ResultSet& a = art("tsync");
    out +=
        "\n## §III-A Tsync (`bench_tsync`)\n"
        "\n"
        "Paper: extra synchronization constraints \"" +
        paper.text("tsync.claim") + "\".\n";
    const Series* m96 = a.find_series("m96");
    if (m96 == nullptr) {
      throw Error("tsync artifact: missing series m96");
    }
    // Points are canonicalized by ascending x; walk from the loosest
    // tolerance (x = 1e9 stands in for "unconstrained") down.
    std::vector<Point> points(m96->points);
    std::sort(points.begin(), points.end(),
              [](const Point& x, const Point& y) { return x.x > y.x; });
    const double base = a.value("m96", points.front().x, "pred_s");
    const double base_nodes = a.value("m96", points.front().x, "bb_nodes");
    double flat_until = points.front().x;
    double jump_x = 0.0;
    double jump_val = 0.0;
    double jump_nodes = 0.0;
    double infeasible_x = 0.0;
    bool has_jump = false;
    bool has_infeasible = false;
    for (const Point& p : points) {
      if (a.value("m96", p.x, "feasible") == 0.0) {
        infeasible_x = p.x;
        has_infeasible = true;
        break;
      }
      const double pred = a.value("m96", p.x, "pred_s");
      if (pred <= base * (1.0 + 1e-9)) {
        flat_until = p.x;
      } else if (!has_jump) {
        jump_x = p.x;
        jump_val = pred;
        jump_nodes = a.value("m96", p.x, "bb_nodes");
        has_jump = true;
      }
    }
    out += "Measured at 96 nodes: the optimum is flat at " + f(base, 1) +
           " s down to\nTsync = " + f(flat_until, 1) + " s";
    if (has_jump) {
      out += ", then rises to " + f(jump_val, 1) + " s at " + f(jump_x, 1) +
             " s — and the B&B tree\ngrows from " + n(base_nodes) + " to " +
             n(jump_nodes) + " nodes";
    }
    if (has_infeasible) {
      out += "; at " + f(infeasible_x, 2) +
             " s the model is infeasible outright";
    }
    out += ".\nMonotone non-decreasing as the tolerance tightens, with a "
           "visible crossover.\n";
    // Does the constraint ever bind at 512 nodes?
    const Series* m512 = a.find_series("m512");
    if (m512 == nullptr) {
      throw Error("tsync artifact: missing series m512");
    }
    std::vector<Point> p512(m512->points);
    std::sort(p512.begin(), p512.end(),
              [](const Point& x, const Point& y) { return x.x > y.x; });
    const double base512 = a.value("m512", p512.front().x, "pred_s");
    bool binds512 = false;
    for (const Point& p : p512) {
      if (a.value("m512", p.x, "feasible") == 0.0 ||
          a.value("m512", p.x, "pred_s") > base512 * (1.0 + 1e-9)) {
        binds512 = true;
      }
    }
    out += binds512
               ? "At 512 nodes the tightest tolerances bind as well.\n"
               : "At 512 nodes the constraint never binds (the ice/land "
                 "balance is already\nnearly exact), also a "
                 "paper-consistent outcome.\n";
  }

  // --- Section III-C fitting. -----------------------------------------------
  {
    const ResultSet& a = art("fitting");
    out +=
        "\n## §III-C / Table II fitting (`bench_fitting`)\n"
        "\n"
        "Paper: \"" + paper.text("fitting.claim") +
        "\" benchmark points per component suffice.\n"
        "\n";
    MarkdownTable table({"D", "R²", "err@96", "err@1536"});
    for (const int d : {3, 4, 6, 12}) {
      table.row({std::to_string(d), f(a.value("dsweep", d, "r_squared"), 5),
                 f(a.value("dsweep", d, "err96_pct"), 2) + " %",
                 f(a.value("dsweep", d, "err1536_pct"), 2) + " %"});
    }
    out += table.str();
    out +=
        "\nD=" + n(paper.number("fitting.min_points")) +
        "–6 reaches R² ≥ 0.999 with ≈1 % mid-range errors, and more "
        "points\nmostly average the noise — the paper's recommendation "
        "holds. Strategy\nablation: VarPro alone (R² " +
        f(a.value("VarPro only", 0, "r_squared"), 5) +
        ") ≈ VarPro+LM (" +
        f(a.value("VarPro + LM", 0, "r_squared"), 5) +
        ") on clean curves;\nrelative weighting trades mid-range error (" +
        f(a.value("relative weighting", 0, "err96_pct"), 2) + " % vs " +
        f(a.value("VarPro + LM", 0, "err96_pct"), 2) +
        " % at n=96) against\nthe absolute fit; freeing the exponent "
        "(c ≥ 0.1) changes little because the\nfitted b ≈ 0 — exactly the "
        "paper's observation on Intrepid.\n";
  }

  // --- Section IV-A ice ML. -------------------------------------------------
  {
    const ResultSet& a = art("ice_ml");
    out +=
        "\n## §IV-A / ref. [10] — ML ice decomposition (`bench_ice_ml`)\n"
        "\n"
        "The paper's companion direction, implemented end to end. Measured: "
        "the\nlearned per-count strategy choice never loses to CICE's "
        "default, cuts\naggregate ice time " +
        f(a.value("summary", 0, "aggregate_gain_pct"), 1) +
        " % across 16–2048 nodes, and improves the Table II\nfit of the "
        "ice curve from RMSE " +
        f(a.value("fit_default", 0, "rmse_s"), 1) + " s to " +
        f(a.value("fit_learned", 0, "rmse_s"), 1) + " s (R² " +
        f(a.value("fit_default", 0, "r_squared"), 5) + " → " +
        f(a.value("fit_learned", 0, "r_squared"), 5) +
        ").\nPlugged into the full pipeline it lifts the fitted ice R² "
        "from " + f(a.value("e2e_default", 0, "ice_r_squared"), 5) +
        " to\n" + f(a.value("e2e_tuned", 0, "ice_r_squared"), 5) +
        " and the executed total improves from " +
        f(a.value("e2e_default", 0, "actual_total_s"), 1) + " to " +
        f(a.value("e2e_tuned", 0, "actual_total_s"), 1) +
        " s at 128 nodes.\n";
  }

  // --- Figure 1. ------------------------------------------------------------
  {
    const ResultSet& a = art("fig1_layouts");
    const double l1 = a.value("layout-1 (hybrid)", 0, "model_s");
    const double l2 =
        a.value("layout-2 (sequential group + ocean)", 0, "model_s");
    const double l3 = a.value("layout-3 (fully sequential)", 0, "model_s");
    out +=
        "\n## Figure 1 (`bench_fig1_layouts`)\n"
        "\n"
        "Rendered as ASCII area diagrams from real simulated runs; the "
        "measured\nordering at 128 nodes (hybrid " + f(l1, 0) +
        " s ≈ sequential-group " + f(l2, 0) +
        " s < fully-sequential\n" + f(l3, 0) +
        " s) matches the paper's discussion.\n";
  }

  // --- Online rebalancing horizon. ------------------------------------------
  {
    const ResultSet& a = art("rebal_horizon");
    const double static_ch = a.value("static", 0, "core_hours");
    const double warm_ch = a.value("warm", 0, "core_hours");
    const double cold_ch = a.value("cold", 0, "core_hours");
    out +=
        "\n## Beyond the paper — online rebalancing under drift "
        "(`bench_rebal_horizon`)\n"
        "\n"
        "The paper's allocation is static. DESIGN.md §16's control loop "
        "re-fits and\nwarm re-solves when the drift simulator pushes the "
        "components off balance;\nthis bench races it against "
        "never-rebalancing over a " +
        n(a.value("summary", 0, "horizon")) + "-step horizon with\n" +
        n(a.value("summary", 0, "scripted_shifts")) +
        " scripted regime shifts (modeled rebalance overhead included in "
        "the loop's\ncost):\n"
        "\n";
    MarkdownTable table({"arm", "core-hours", "vs static", "fires",
                         "rebalances", "B&B nodes", "simplex pivots"});
    for (const char* arm : {"static", "warm", "cold"}) {
      table.row({arm, f(a.value(arm, 0, "core_hours"), 1),
                 f(a.value(arm, 0, "savings_vs_static_pct"), 2) + " %",
                 n(a.value(arm, 0, "detector_fires")),
                 n(a.value(arm, 0, "rebalances")),
                 n(a.value(arm, 0, "resolve_nodes")),
                 n(a.value(arm, 0, "resolve_simplex_iterations"))});
    }
    out += table.str();
    out +=
        "\nRebalancing saves " + f(static_ch - warm_ch, 1) +
        " core-hours (" +
        f(a.value("warm", 0, "savings_vs_static_pct"), 2) +
        " %) over the horizon. Warm and cold adopt\nidentical allocations "
        "(warmth changes the path to the optimum, never the\noptimum: " +
        f(warm_ch, 1) + " vs " + f(cold_ch, 1) +
        " core-hours), but the warm re-solves need " +
        n(a.value("warm", 0, "resolve_simplex_iterations")) +
        "\nsimplex pivots where cold needs " +
        n(a.value("cold", 0, "resolve_simplex_iterations")) +
        " — the incumbent/basis/factor handoff at\nwork. The detector "
        "scores precision " + f(a.value("detector", 0, "precision"), 2) +
        ", recall " + f(a.value("detector", 0, "recall"), 2) +
        " against the scripted\nshifts (" +
        n(a.value("detector", 0, "true_positives")) + " matched, " +
        n(a.value("detector", 0, "false_positives")) + " spurious, " +
        n(a.value("detector", 0, "false_negatives")) +
        " missed). Re-solve wall time is `timing`-tagged in\nthe artifact; "
        "the deterministic pivot counts above are the "
        "machine-independent\nproxy for the same claim.\n";
  }

  // --- Known deviations. ----------------------------------------------------
  out +=
      "\n## Known deviations\n"
      "\n"
      "* Absolute times track the paper only as closely as the calibration "
      "of the\n  hidden truth laws (typically within 1–10 %); this is by "
      "construction.\n"
      "* Our manual-expert baseline is an algorithm, not a person; at 1° it "
      "is\n  sometimes slightly *worse* than the paper's expert (who had "
      "years of CESM\n  tuning experience), so HSLB's margin at 128 nodes "
      "is larger than the\n  paper's near-tie.\n"
      "* The paper's \"tuned actual\" entry moved the ocean to " +
      n(paper.number("table3_unconstrained.actual_nodes_ocn@32768")) +
      " nodes using\n  decomposition knowledge our fitted models do not "
      "have; our tuning step\n  keeps the predicted count when no preferred "
      "count predicts faster.\n"
      "* SOS-vs-binary speedup is measured on our smaller set sizes rather "
      "than the\n  paper's " + n(paper.number("minlp.sos_speedup_x")) +
      "× on their largest instance; the gap widens with set size\n  in our "
      "sweep, consistent with their claim.\n"
      "* Wall-clock numbers (solver milliseconds, fit microseconds, "
      "service\n  throughput) are tagged `timing` in the artifacts and "
      "never rendered here;\n  re-run the benches to measure them on your "
      "hardware.\n";

  return out;
}

}  // namespace hslb::report
