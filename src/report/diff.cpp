#include "hslb/report/diff.hpp"

#include <cmath>

#include "hslb/common/numeric.hpp"

namespace hslb::report {

const char* to_string(DriftKind kind) {
  switch (kind) {
    case DriftKind::kValue:
      return "value";
    case DriftKind::kMissingSeries:
      return "missing_series";
    case DriftKind::kMissingPoint:
      return "missing_point";
    case DriftKind::kMissingMetric:
      return "missing_metric";
    case DriftKind::kExtraSeries:
      return "extra_series";
    case DriftKind::kExtraPoint:
      return "extra_point";
    case DriftKind::kExtraMetric:
      return "extra_metric";
    case DriftKind::kUnitChanged:
      return "unit_changed";
    case DriftKind::kStabilityChanged:
      return "stability_changed";
    case DriftKind::kBenchMismatch:
      return "bench_mismatch";
  }
  return "unknown";
}

Tolerance TolerancePolicy::for_cell(const std::string& bench,
                                    const std::string& series,
                                    const Cell& cell) const {
  for (const std::string& key :
       {bench + "." + series + "." + cell.metric, bench + "." + cell.metric,
        cell.metric}) {
    const auto found = per_metric.find(key);
    if (found != per_metric.end()) {
      return found->second;
    }
  }
  // Integer-valued units carry no rounding noise: exact or it drifted.
  if (cell.unit == "nodes" || cell.unit == "count") {
    return Tolerance{0.0, 0.0};
  }
  return cell.stability == Stability::kTiming ? timing_default
                                              : deterministic_default;
}

namespace {

std::string where(const std::string& bench, const std::string& series,
                  double x, const std::string& metric) {
  return bench + ": " + series + "@" + common::shortest_double(x) +
         (metric.empty() ? "" : "." + metric);
}

void add_drift(DiffResult* out, Drift drift) {
  out->drifts.push_back(std::move(drift));
}

}  // namespace

DiffResult diff(const ResultSet& golden, const ResultSet& fresh,
                const TolerancePolicy& policy) {
  DiffResult out;
  if (golden.bench != fresh.bench) {
    Drift d;
    d.kind = DriftKind::kBenchMismatch;
    d.bench = golden.bench;
    d.message = "comparing bench '" + golden.bench + "' against '" +
                fresh.bench + "'";
    add_drift(&out, std::move(d));
    return out;
  }

  for (const Series& gs : golden.series) {
    const Series* fs = fresh.find_series(gs.name);
    if (fs == nullptr) {
      Drift d;
      d.kind = DriftKind::kMissingSeries;
      d.bench = golden.bench;
      d.series = gs.name;
      d.message = golden.bench + ": series '" + gs.name +
                  "' missing from fresh run";
      add_drift(&out, std::move(d));
      continue;
    }
    for (const Point& gp : gs.points) {
      const Point* fp = fresh.find_point(gs.name, gp.x);
      if (fp == nullptr) {
        Drift d;
        d.kind = DriftKind::kMissingPoint;
        d.bench = golden.bench;
        d.series = gs.name;
        d.x = gp.x;
        d.message = where(golden.bench, gs.name, gp.x, "") +
                    " missing from fresh run";
        add_drift(&out, std::move(d));
        continue;
      }
      for (const Cell& gc : gp.cells) {
        const Cell* fc = fresh.find(gs.name, gp.x, gc.metric);
        Drift d;
        d.bench = golden.bench;
        d.series = gs.name;
        d.x = gp.x;
        d.metric = gc.metric;
        d.golden = gc.value;
        if (fc == nullptr) {
          d.kind = DriftKind::kMissingMetric;
          d.message = where(golden.bench, gs.name, gp.x, gc.metric) +
                      " missing from fresh run";
          add_drift(&out, std::move(d));
          continue;
        }
        d.fresh = fc->value;
        if (gc.unit != fc->unit) {
          d.kind = DriftKind::kUnitChanged;
          d.message = where(golden.bench, gs.name, gp.x, gc.metric) +
                      " unit changed '" + gc.unit + "' -> '" + fc->unit + "'";
          add_drift(&out, std::move(d));
          continue;
        }
        if (gc.stability != fc->stability) {
          d.kind = DriftKind::kStabilityChanged;
          d.message = where(golden.bench, gs.name, gp.x, gc.metric) +
                      " stability changed " +
                      std::string(to_string(gc.stability)) + " -> " +
                      to_string(fc->stability);
          add_drift(&out, std::move(d));
          continue;
        }
        if (gc.stability == Stability::kTiming && !policy.check_timing) {
          ++out.cells_skipped_timing;
          continue;
        }
        ++out.cells_compared;

        const bool golden_nan = std::isnan(gc.value);
        const bool fresh_nan = std::isnan(fc->value);
        if (golden_nan && fresh_nan) {
          continue;  // the recorded not-a-number reproduced
        }
        const Tolerance tol = policy.for_cell(golden.bench, gs.name, gc);
        bool pass = false;
        double rel = 0.0;
        if (!golden_nan && !fresh_nan) {
          const double delta = std::fabs(fc->value - gc.value);
          const double scale = std::fabs(gc.value);
          rel = scale > 0.0 ? delta / scale : 0.0;
          // Zero baseline: relative error is undefined, the absolute
          // tolerance alone decides.
          pass = delta <= tol.abs ||
                 (scale > 0.0 && delta <= tol.rel * scale);
        }
        if (!pass) {
          d.kind = DriftKind::kValue;
          d.rel_error = rel;
          d.message = where(golden.bench, gs.name, gp.x, gc.metric) +
                      " golden " + common::shortest_double(gc.value) +
                      " fresh " + common::shortest_double(fc->value) +
                      (golden_nan || fresh_nan
                           ? " (NaN on one side)"
                           : " (rel " + common::shortest_double(rel) + ")");
          add_drift(&out, std::move(d));
        }
      }
      // Fresh metrics the golden never recorded.
      for (const Cell& fc : fp->cells) {
        if (golden.find(gs.name, gp.x, fc.metric) == nullptr) {
          Drift d;
          d.kind = DriftKind::kExtraMetric;
          d.bench = golden.bench;
          d.series = gs.name;
          d.x = gp.x;
          d.metric = fc.metric;
          d.fresh = fc.value;
          d.message = where(golden.bench, gs.name, gp.x, fc.metric) +
                      " present in fresh run but not in golden";
          add_drift(&out, std::move(d));
        }
      }
    }
    for (const Point& fp : fs->points) {
      if (golden.find_point(gs.name, fp.x) == nullptr) {
        Drift d;
        d.kind = DriftKind::kExtraPoint;
        d.bench = golden.bench;
        d.series = gs.name;
        d.x = fp.x;
        d.message = where(golden.bench, gs.name, fp.x, "") +
                    " present in fresh run but not in golden";
        add_drift(&out, std::move(d));
      }
    }
  }
  for (const Series& fs : fresh.series) {
    if (golden.find_series(fs.name) == nullptr) {
      Drift d;
      d.kind = DriftKind::kExtraSeries;
      d.bench = golden.bench;
      d.series = fs.name;
      d.message = golden.bench + ": series '" + fs.name +
                  "' present in fresh run but not in golden";
      add_drift(&out, std::move(d));
    }
  }
  return out;
}

std::string render_drift_report(const DiffResult& result) {
  if (result.ok()) {
    return "";
  }
  std::string out;
  for (const Drift& d : result.drifts) {
    out += "DRIFT [" + std::string(to_string(d.kind)) + "] " + d.message +
           "\n";
  }
  out += std::to_string(result.drifts.size()) + " drift(s), " +
         std::to_string(result.cells_compared) + " cell(s) compared, " +
         std::to_string(result.cells_skipped_timing) +
         " timing cell(s) skipped\n";
  return out;
}

}  // namespace hslb::report
