#include "hslb/nlp/levenberg_marquardt.hpp"

#include <algorithm>
#include <cmath>

#include "hslb/common/error.hpp"
#include "hslb/linalg/factor.hpp"
#include "hslb/obs/obs.hpp"

namespace hslb::nlp {
namespace {

using linalg::Matrix;
using linalg::Vector;

Vector clamp_to_box(std::span<const double> x, std::span<const double> lo,
                    std::span<const double> up) {
  Vector out(x.begin(), x.end());
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = std::clamp(out[i], lo[i], up[i]);
  }
  return out;
}

/// Forward-difference Jacobian fallback.
void numeric_jacobian(const ResidualFn& fn, std::span<const double> theta,
                      const Vector& r0, Matrix& jac) {
  Vector perturbed(theta.begin(), theta.end());
  Vector r(r0.size());
  for (std::size_t j = 0; j < theta.size(); ++j) {
    const double h = 1e-7 * std::max(1.0, std::fabs(theta[j]));
    perturbed[j] = theta[j] + h;
    fn(perturbed, r, nullptr);
    for (std::size_t i = 0; i < r.size(); ++i) {
      jac(i, j) = (r[i] - r0[i]) / h;
    }
    perturbed[j] = theta[j];
  }
}

/// Robust scale of a residual vector: 1.4826 * MAD about the median
/// (consistent with sigma for Gaussian residuals).
double mad_scale(const Vector& r) {
  Vector sorted(r);
  std::sort(sorted.begin(), sorted.end());
  const auto median_of = [](Vector& v) {
    const std::size_t m = v.size() / 2;
    std::nth_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(m),
                     v.end());
    return v.size() % 2 == 1
               ? v[m]
               : 0.5 * (v[m] +
                        *std::max_element(
                            v.begin(),
                            v.begin() + static_cast<std::ptrdiff_t>(m)));
  };
  const double med = median_of(sorted);
  Vector deviations(r.size());
  for (std::size_t i = 0; i < r.size(); ++i) {
    deviations[i] = std::fabs(r[i] - med);
  }
  return 1.4826 * median_of(deviations);
}

LmResult minimize_lm_core(const ResidualFn& fn,
                          std::span<const double> theta0,
                          std::span<const double> lower,
                          std::span<const double> upper,
                          std::size_t num_residuals,
                          const LmOptions& options) {
  const std::size_t n = theta0.size();
  HSLB_REQUIRE(lower.size() == n && upper.size() == n,
               "LM bound sizes must match parameter count");
  HSLB_REQUIRE(num_residuals >= 1, "LM needs at least one residual");

  HSLB_SPAN("nlp.lm");
  obs::Registry* metrics = obs::current_metrics();
  obs::Counter* c_iterations =
      metrics != nullptr ? &metrics->counter("nlp.lm.iterations") : nullptr;
  obs::Counter* c_lambda_up = metrics != nullptr
                                  ? &metrics->counter("nlp.lm.lambda_increases")
                                  : nullptr;
  obs::Counter* c_steps =
      metrics != nullptr ? &metrics->counter("nlp.lm.steps_accepted") : nullptr;
  obs::TraceSession* trace = obs::current_trace();
  if (metrics != nullptr) {
    metrics->counter("nlp.lm.calls").add(1.0);
  }

  LmResult out;
  out.theta = clamp_to_box(theta0, lower, upper);

  Vector r(num_residuals);
  Matrix jac(num_residuals, n);

  // Detect whether the callback provides an analytic Jacobian: call once
  // with a poisoned matrix and see if it was written.
  bool analytic = true;
  {
    Matrix probe(num_residuals, n,
                 std::numeric_limits<double>::quiet_NaN());
    fn(out.theta, r, &probe);
    analytic = !std::isnan(probe(0, 0));
    if (analytic) {
      jac = probe;
    } else {
      numeric_jacobian(fn, out.theta, r, jac);
    }
  }
  out.cost = 0.5 * linalg::dot(r, r);

  double lambda = options.initial_lambda;

  for (int iter = 0; iter < options.max_iterations; ++iter) {
    out.iterations = iter + 1;
    if (c_iterations != nullptr) {
      c_iterations->add(1.0);
    }
    if (trace != nullptr) {
      // Residual-norm / damping trajectories as Chrome counter tracks.
      trace->record_counter("nlp.lm.residual_norm",
                            std::sqrt(2.0 * out.cost));
      trace->record_counter("nlp.lm.lambda", lambda);
    }

    const Vector grad = linalg::matvec_t(jac, r);  // J^T r
    if (linalg::norm_inf(grad) < options.gradient_tol) {
      out.converged = true;
      break;
    }

    const Matrix jtj = linalg::gram(jac);

    bool stepped = false;
    for (int attempt = 0; attempt < 30 && !stepped; ++attempt) {
      // Solve (J^T J + lambda * diag(J^T J)) delta = -J^T r.
      Matrix damped = jtj;
      for (std::size_t i = 0; i < n; ++i) {
        damped(i, i) += lambda * std::max(jtj(i, i), 1e-12);
      }
      const auto chol = linalg::CholeskyFactor::compute(damped);
      if (!chol) {
        lambda *= 10.0;
        if (c_lambda_up != nullptr) {
          c_lambda_up->add(1.0);
        }
        continue;
      }
      Vector delta = chol->solve(grad);
      for (double& d : delta) {
        d = -d;
      }

      Vector trial(out.theta);
      linalg::axpy(1.0, delta, trial);
      trial = clamp_to_box(trial, lower, upper);

      Vector step = linalg::subtract(trial, out.theta);
      if (linalg::norm2(step) <
          options.step_tol * (1.0 + linalg::norm2(out.theta))) {
        out.converged = true;
        stepped = true;
        break;
      }

      Vector r_trial(num_residuals);
      fn(trial, r_trial, nullptr);
      const double cost_trial = 0.5 * linalg::dot(r_trial, r_trial);

      if (cost_trial < out.cost) {
        out.theta = trial;
        out.cost = cost_trial;
        r = r_trial;
        if (analytic) {
          fn(out.theta, r, &jac);
        } else {
          numeric_jacobian(fn, out.theta, r, jac);
        }
        lambda = std::max(lambda * 0.3, 1e-12);
        stepped = true;
        if (c_steps != nullptr) {
          c_steps->add(1.0);
        }
      } else {
        lambda *= 10.0;
        if (c_lambda_up != nullptr) {
          c_lambda_up->add(1.0);
        }
        if (lambda > 1e14) {
          out.converged = true;  // damping saturated: local minimum
          stepped = true;
        }
      }
    }
    if (out.converged) {
      break;
    }
    if (!stepped) {
      break;  // could not make progress
    }
  }
  return out;
}

}  // namespace

LmResult minimize_lm(const ResidualFn& fn, std::span<const double> theta0,
                     std::span<const double> lower,
                     std::span<const double> upper,
                     std::size_t num_residuals, const LmOptions& options) {
  if (options.loss == LmLoss::kLeastSquares) {
    return minimize_lm_core(fn, theta0, lower, upper, num_residuals, options);
  }

  // Huber via IRLS: alternate a weighted least-squares LM solve with a
  // reweighting pass.  Residuals beyond huber_delta robust-sigmas of zero
  // get weight delta/|r| (bounded influence); inliers keep weight 1.
  HSLB_REQUIRE(options.huber_delta > 0.0, "huber_delta must be positive");
  HSLB_REQUIRE(options.irls_rounds >= 1, "need at least one IRLS round");
  obs::Registry* metrics = obs::current_metrics();

  Vector weights(num_residuals, 1.0);
  Vector start(theta0.begin(), theta0.end());
  LmOptions inner = options;
  inner.loss = LmLoss::kLeastSquares;
  LmResult out;

  for (int round = 0; round < options.irls_rounds; ++round) {
    if (metrics != nullptr) {
      metrics->counter("nlp.lm.irls_rounds").add(1.0);
    }
    const ResidualFn weighted = [&fn, &weights](
                                    std::span<const double> theta, Vector& r,
                                    Matrix* jacobian) {
      fn(theta, r, jacobian);
      for (std::size_t i = 0; i < r.size(); ++i) {
        const double sw = std::sqrt(weights[i]);
        r[i] *= sw;
        if (jacobian != nullptr && !std::isnan((*jacobian)(0, 0))) {
          for (std::size_t j = 0; j < jacobian->cols(); ++j) {
            (*jacobian)(i, j) *= sw;
          }
        }
      }
    };
    out = minimize_lm_core(weighted, start, lower, upper, num_residuals,
                           inner);

    // Reweight from the *unweighted* residuals at the new point.
    Vector r(num_residuals);
    fn(out.theta, r, nullptr);
    const double sigma = mad_scale(r);
    const double threshold =
        options.huber_delta * std::max(sigma, 1e-12);
    double max_change = 0.0;
    for (std::size_t i = 0; i < num_residuals; ++i) {
      const double magnitude = std::fabs(r[i]);
      const double w =
          magnitude <= threshold ? 1.0 : threshold / magnitude;
      max_change = std::max(max_change, std::fabs(w - weights[i]));
      weights[i] = w;
    }
    start = out.theta;
    if (max_change < 1e-6) {
      break;  // weights settled: the robust fixed point is reached
    }
  }
  return out;
}

}  // namespace hslb::nlp
