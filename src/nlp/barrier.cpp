#include "hslb/nlp/barrier.hpp"

#include <algorithm>
#include <cmath>

#include "hslb/common/error.hpp"
#include "hslb/linalg/factor.hpp"

namespace hslb::nlp {
namespace {

using expr::Expr;
using linalg::Matrix;
using linalg::Vector;

constexpr double kInf = std::numeric_limits<double>::infinity();

/// One inequality row of the folded system (user constraint or box side).
struct Inequality {
  enum class Kind { kExpr, kLower, kUpper } kind = Kind::kExpr;
  std::size_t index = 0;  ///< constraint index or variable index

  /// g(x): the constraint value (<= 0 feasible).
  double value(const NlpProblem& p, const Vector& x) const {
    switch (kind) {
      case Kind::kExpr:
        return expr::eval(p.constraints[index], x);
      case Kind::kLower:
        return p.lower[index] - x[index];
      case Kind::kUpper:
        return x[index] - p.upper[index];
    }
    return 0.0;
  }
};

struct KktResiduals {
  Vector dual;            // grad f + J^T z
  Vector primal;          // g + s (raw, used by the Newton rhs)
  Vector primal_scaled;   // (g + s) / (1 + s): immune to the float
                          // cancellation noise of far-away slack rows
  double gap = 0.0;       // s.z / m
  double norm() const {
    return std::max(linalg::norm_inf(dual),
                    linalg::norm_inf(primal_scaled));
  }
};

/// Full iterate state.
struct State {
  Vector x, s, z;
};

class PrimalDualSolver {
 public:
  PrimalDualSolver(const NlpProblem& p, const BarrierOptions& opts)
      : p_(p), opts_(opts), n_(p.num_vars) {
    for (std::size_t i = 0; i < p.constraints.size(); ++i) {
      rows_.push_back({Inequality::Kind::kExpr, i});
    }
    for (std::size_t j = 0; j < n_; ++j) {
      if (std::isfinite(p.lower[j])) {
        rows_.push_back({Inequality::Kind::kLower, j});
      }
      if (std::isfinite(p.upper[j])) {
        rows_.push_back({Inequality::Kind::kUpper, j});
      }
    }
    m_ = rows_.size();
  }

  NlpResult run(Vector x0) {
    NlpResult out;
    State st;
    st.x = std::move(x0);
    clamp_into_box(st.x);
    st.s.assign(m_, 1.0);
    st.z.assign(m_, 1.0);
    for (std::size_t i = 0; i < m_; ++i) {
      st.s[i] = std::max(-rows_[i].value(p_, st.x), 1.0);
    }

    if (m_ == 0) {
      return solve_unconstrained(std::move(st.x));
    }

    double mu = dot_gap(st);
    int iter = 0;
    for (; iter < opts_.max_iterations; ++iter) {
      const KktResiduals res = residuals(st);
      const double f_scale =
          1.0 + linalg::norm_inf(objective_gradient(st.x));
      if (res.norm() <= opts_.residual_tol * f_scale &&
          res.gap <= std::max(opts_.gap_tol, 1e-11 * f_scale)) {
        out.status = NlpStatus::kOptimal;
        break;
      }

      mu = std::max(opts_.sigma * dot_gap(st), 0.1 * opts_.gap_tol);

      // Assemble and solve the condensed Newton system:
      //   (W + J^T S^{-1} Z J) dx = -(r_d + J^T S^{-1} (Z r_p - r_c))
      // with r_c = S Z e - mu e.
      Matrix jac(m_, n_);
      Matrix w = objective_hessian(st.x);
      Vector rhs(n_, 0.0);
      for (std::size_t j = 0; j < n_; ++j) {
        rhs[j] = -res.dual[j];
      }
      for (std::size_t i = 0; i < m_; ++i) {
        const Vector grad_i = row_gradient(i, st.x, st.z[i], &w);
        for (std::size_t j = 0; j < n_; ++j) {
          jac(i, j) = grad_i[j];
        }
        const double rc = st.s[i] * st.z[i] - mu;
        const double coeff =
            (st.z[i] * res.primal[i] - rc) / st.s[i];
        for (std::size_t j = 0; j < n_; ++j) {
          rhs[j] -= grad_i[j] * coeff;
        }
        const double ratio = st.z[i] / st.s[i];
        for (std::size_t a = 0; a < n_; ++a) {
          if (grad_i[a] == 0.0) {
            continue;
          }
          for (std::size_t b = 0; b < n_; ++b) {
            w(a, b) += ratio * grad_i[a] * grad_i[b];
          }
        }
      }
      const auto chol = linalg::CholeskyFactor::compute(w);
      if (!chol) {
        break;  // numerically dead; report best effort below
      }
      const Vector dx = chol->solve(rhs);

      // Recover ds, dz.
      Vector ds(m_), dz(m_);
      for (std::size_t i = 0; i < m_; ++i) {
        double jdx = 0.0;
        for (std::size_t j = 0; j < n_; ++j) {
          jdx += jac(i, j) * dx[j];
        }
        ds[i] = -res.primal[i] - jdx;
        const double rc = st.s[i] * st.z[i] - mu;
        dz[i] = (-rc - st.z[i] * ds[i]) / st.s[i];
      }

      // Fraction-to-boundary step lengths.
      constexpr double kTau = 0.995;
      double alpha = 1.0;
      for (std::size_t i = 0; i < m_; ++i) {
        if (ds[i] < 0.0) {
          alpha = std::min(alpha, -kTau * st.s[i] / ds[i]);
        }
        if (dz[i] < 0.0) {
          alpha = std::min(alpha, -kTau * st.z[i] / dz[i]);
        }
      }

      // Residual-norm backtracking (keeps the infeasible-start iteration
      // globally stable on nonquadratic constraints).  The per-row scaling
      // weights are FROZEN at the current iterate: weights that move with
      // the trial slack would turn genuine Newton descent directions into
      // merit ascent whenever a violated row's slack shrinks quickly.
      Vector weights(m_);
      for (std::size_t i = 0; i < m_; ++i) {
        weights[i] = 1.0 / (1.0 + st.s[i]);
      }
      const double merit0 = merit(st, mu, weights);
      bool moved = false;
      for (int ls = 0; ls < 30 && alpha > 1e-14; ++ls) {
        State trial;
        trial.x = st.x;
        trial.s = st.s;
        trial.z = st.z;
        linalg::axpy(alpha, dx, trial.x);
        linalg::axpy(alpha, ds, trial.s);
        linalg::axpy(alpha, dz, trial.z);
        clamp_into_box(trial.x);
        if (merit(trial, mu, weights) <= merit0 * (1.0 - 1e-4 * alpha) + 1e-14) {
          st = std::move(trial);
          moved = true;
          break;
        }
        alpha *= 0.5;
      }
      if (!moved) {
        // Take the tiny safeguarded step anyway; pure stalls end via the
        // iteration limit.
        linalg::axpy(alpha, dx, st.x);
        linalg::axpy(alpha, ds, st.s);
        linalg::axpy(alpha, dz, st.z);
        clamp_into_box(st.x);
      }
    }

    out.newton_iterations = iter;
    out.x = st.x;
    out.objective = expr::eval(p_.objective, st.x);
    if (out.status != NlpStatus::kOptimal) {
      // Distinguish "never got primal feasible" from a plain stall.
      const KktResiduals res = residuals(st);
      double violation = 0.0;
      for (std::size_t i = 0; i < m_; ++i) {
        violation = std::max(violation, rows_[i].value(p_, st.x));
      }
      out.status = violation > 1e-6 ? NlpStatus::kInfeasible
                                    : NlpStatus::kIterationLimit;
      (void)res;
    }
    return out;
  }

  /// Default start: box midpoint with capped offsets (the literal midpoint
  /// of a huge range is a numerically terrible iterate).
  Vector default_start() const {
    Vector x0(n_, 1.0);
    for (std::size_t j = 0; j < n_; ++j) {
      const bool flo = std::isfinite(p_.lower[j]);
      const bool fup = std::isfinite(p_.upper[j]);
      if (flo && fup) {
        const double half = 0.5 * (p_.upper[j] - p_.lower[j]);
        const double cap = 10.0 * (1.0 + std::fabs(p_.lower[j]));
        x0[j] = p_.lower[j] + std::min(half, cap);
      } else if (flo) {
        x0[j] = p_.lower[j] + std::max(1.0, std::fabs(p_.lower[j]));
      } else if (fup) {
        x0[j] = p_.upper[j] - std::max(1.0, std::fabs(p_.upper[j]));
      }
    }
    return x0;
  }

 private:
  /// Keep x strictly inside any finite box sides (the box rows assume the
  /// barrier slacks stay meaningful; expression constraints need no such
  /// guard -- their slacks absorb violations).
  void clamp_into_box(Vector& x) const {
    for (std::size_t j = 0; j < n_; ++j) {
      const double lo = p_.lower[j];
      const double up = p_.upper[j];
      if (std::isfinite(lo) && std::isfinite(up) && lo == up) {
        x[j] = lo;
        continue;
      }
      if (std::isfinite(lo)) {
        x[j] = std::max(x[j], lo - 1e3 * (1.0 + std::fabs(lo)));
      }
      if (std::isfinite(up)) {
        x[j] = std::min(x[j], up + 1e3 * (1.0 + std::fabs(up)));
      }
    }
  }

  NlpResult solve_unconstrained(Vector x) {
    // Plain Newton with backtracking; only used when there are neither
    // constraints nor finite bounds.
    NlpResult out;
    for (int it = 0; it < opts_.max_iterations; ++it) {
      const auto f = expr::eval_hess(p_.objective, x, n_);
      if (linalg::norm_inf(f.grad) < opts_.residual_tol) {
        break;
      }
      const auto chol = linalg::CholeskyFactor::compute(f.hess);
      if (!chol) {
        break;
      }
      Vector step = chol->solve(f.grad);
      for (double& v : step) {
        v = -v;
      }
      double alpha = 1.0;
      for (int ls = 0; ls < 40; ++ls) {
        Vector trial = x;
        linalg::axpy(alpha, step, trial);
        if (expr::eval(p_.objective, trial) < f.value) {
          x = trial;
          break;
        }
        alpha *= 0.5;
      }
      ++out.newton_iterations;
    }
    out.status = NlpStatus::kOptimal;
    out.objective = expr::eval(p_.objective, x);
    out.x = std::move(x);
    return out;
  }

  Vector objective_gradient(const Vector& x) const {
    return expr::eval_grad(p_.objective, x, n_).grad;
  }

  Matrix objective_hessian(const Vector& x) const {
    return expr::eval_hess(p_.objective, x, n_).hess;
  }

  /// Gradient of inequality row i; if `w` is given, z_i * Hess(g_i) is
  /// accumulated into it (box rows have zero Hessian).
  Vector row_gradient(std::size_t i, const Vector& x, double z,
                      Matrix* w) const {
    const Inequality& row = rows_[i];
    switch (row.kind) {
      case Inequality::Kind::kExpr: {
        const auto gv = expr::eval_hess(p_.constraints[row.index], x, n_);
        if (w != nullptr && z != 0.0) {
          Matrix h = gv.hess;
          h *= z;
          *w += h;
        }
        return gv.grad;
      }
      case Inequality::Kind::kLower: {
        Vector g(n_, 0.0);
        g[row.index] = -1.0;
        return g;
      }
      case Inequality::Kind::kUpper: {
        Vector g(n_, 0.0);
        g[row.index] = 1.0;
        return g;
      }
    }
    return Vector(n_, 0.0);
  }

  double dot_gap(const State& st) const {
    return linalg::dot(st.s, st.z) / static_cast<double>(m_);
  }

  KktResiduals residuals(const State& st) const {
    KktResiduals res;
    res.dual = objective_gradient(st.x);
    res.primal.assign(m_, 0.0);
    res.primal_scaled.assign(m_, 0.0);
    for (std::size_t i = 0; i < m_; ++i) {
      const Vector grad_i = row_gradient(i, st.x, 0.0, nullptr);
      linalg::axpy(st.z[i], grad_i, res.dual);
      res.primal[i] = rows_[i].value(p_, st.x) + st.s[i];
      res.primal_scaled[i] = res.primal[i] / (1.0 + st.s[i]);
    }
    res.gap = dot_gap(st);
    return res;
  }

  /// Line-search merit: squared norm of the full perturbed KKT residual,
  /// with the primal rows scaled by caller-frozen weights.
  double merit(const State& st, double mu,
               const Vector& primal_weights) const {
    for (std::size_t i = 0; i < m_; ++i) {
      if (st.s[i] <= 0.0 || st.z[i] <= 0.0) {
        return kInf;
      }
    }
    const KktResiduals res = residuals(st);
    double total = linalg::dot(res.dual, res.dual);
    for (std::size_t i = 0; i < m_; ++i) {
      const double wp = primal_weights[i] * res.primal[i];
      const double rc = st.s[i] * st.z[i] - mu;
      total += wp * wp + rc * rc;
    }
    return total;
  }

  const NlpProblem& p_;
  BarrierOptions opts_;
  std::size_t n_ = 0;
  std::size_t m_ = 0;
  std::vector<Inequality> rows_;
};

}  // namespace

const char* to_string(NlpStatus status) {
  switch (status) {
    case NlpStatus::kOptimal:
      return "optimal";
    case NlpStatus::kInfeasible:
      return "infeasible";
    case NlpStatus::kIterationLimit:
      return "iteration-limit";
  }
  return "unknown";
}

NlpResult solve_barrier(const NlpProblem& problem,
                        std::optional<Vector> start,
                        const BarrierOptions& options) {
  HSLB_REQUIRE(problem.lower.size() == problem.num_vars &&
                   problem.upper.size() == problem.num_vars,
               "NLP bound sizes must match num_vars");
  for (std::size_t j = 0; j < problem.num_vars; ++j) {
    HSLB_REQUIRE(problem.lower[j] <= problem.upper[j],
                 "NLP variable bounds crossed");
  }

  // Fixed variables break the strict-interior requirement of the barrier
  // rows; widen them a hair (the iterate is clamped back afterwards).
  NlpProblem widened = problem;
  std::vector<std::size_t> fixed;
  for (std::size_t j = 0; j < problem.num_vars; ++j) {
    if (widened.lower[j] == widened.upper[j]) {
      const double eps = 1e-9 * std::max(1.0, std::fabs(widened.lower[j]));
      fixed.push_back(j);
      widened.lower[j] -= eps;
      widened.upper[j] += eps;
    }
  }

  PrimalDualSolver solver(widened, options);
  Vector x0 = start ? std::move(*start) : solver.default_start();
  NlpResult out = solver.run(std::move(x0));
  for (const std::size_t j : fixed) {
    out.x[j] = problem.lower[j];
  }
  if (!fixed.empty() && out.status == NlpStatus::kOptimal) {
    out.objective = expr::eval(problem.objective, out.x);
  }
  return out;
}

}  // namespace hslb::nlp
