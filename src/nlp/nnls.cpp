// Lawson-Hanson active-set NNLS.
#include "hslb/nlp/nnls.hpp"

#include <algorithm>
#include <cmath>

#include "hslb/common/error.hpp"
#include "hslb/linalg/least_squares.hpp"

namespace hslb::nlp {
namespace {

using linalg::Matrix;
using linalg::Vector;

/// Unconstrained least squares restricted to the passive column set.
Vector solve_on_passive(const Matrix& a, std::span<const double> b,
                        const std::vector<bool>& passive) {
  std::vector<std::size_t> cols;
  for (std::size_t j = 0; j < passive.size(); ++j) {
    if (passive[j]) {
      cols.push_back(j);
    }
  }
  Vector full(passive.size(), 0.0);
  if (cols.empty()) {
    return full;
  }
  Matrix sub(a.rows(), cols.size());
  for (std::size_t r = 0; r < a.rows(); ++r) {
    for (std::size_t k = 0; k < cols.size(); ++k) {
      sub(r, k) = a(r, cols[k]);
    }
  }
  const auto ls = linalg::solve_least_squares(sub, b);
  for (std::size_t k = 0; k < cols.size(); ++k) {
    full[cols[k]] = ls.x[k];
  }
  return full;
}

}  // namespace

NnlsResult solve_nnls(const Matrix& a, std::span<const double> b,
                      int max_iterations) {
  HSLB_REQUIRE(a.rows() == b.size(), "NNLS rhs size mismatch");
  const std::size_t n = a.cols();

  NnlsResult out;
  out.x.assign(n, 0.0);
  std::vector<bool> passive(n, false);

  const double tol = 1e-10 * std::max(1.0, a.frobenius_norm());

  for (int iter = 0; iter < max_iterations; ++iter) {
    out.iterations = iter;
    // Gradient of 1/2||Ax-b||^2 is A^T (A x - b); w = -gradient.
    const Vector resid = linalg::subtract(linalg::matvec(a, out.x), b);
    const Vector w = linalg::scale(-1.0, linalg::matvec_t(a, resid));

    // Most-violating active column.
    std::ptrdiff_t best = -1;
    double best_w = tol;
    for (std::size_t j = 0; j < n; ++j) {
      if (!passive[j] && w[j] > best_w) {
        best_w = w[j];
        best = static_cast<std::ptrdiff_t>(j);
      }
    }
    if (best < 0) {
      break;  // KKT satisfied
    }
    passive[static_cast<std::size_t>(best)] = true;

    // Inner loop: restore feasibility of the passive-set LS solution.
    for (;;) {
      const Vector z = solve_on_passive(a, b, passive);
      bool all_positive = true;
      for (std::size_t j = 0; j < n; ++j) {
        if (passive[j] && z[j] <= tol) {
          all_positive = false;
          break;
        }
      }
      if (all_positive) {
        out.x = z;
        break;
      }
      // Step from x toward z until the first passive coordinate hits zero.
      double alpha = 1.0;
      for (std::size_t j = 0; j < n; ++j) {
        if (passive[j] && z[j] <= tol) {
          const double denom = out.x[j] - z[j];
          if (denom > 0.0) {
            alpha = std::min(alpha, out.x[j] / denom);
          }
        }
      }
      for (std::size_t j = 0; j < n; ++j) {
        out.x[j] += alpha * (z[j] - out.x[j]);
      }
      for (std::size_t j = 0; j < n; ++j) {
        if (passive[j] && out.x[j] <= tol) {
          passive[j] = false;
          out.x[j] = 0.0;
        }
      }
    }
  }

  out.converged = out.iterations < max_iterations - 1;
  const Vector resid = linalg::subtract(linalg::matvec(a, out.x), b);
  out.residual_norm = linalg::norm2(resid);
  return out;
}

}  // namespace hslb::nlp
