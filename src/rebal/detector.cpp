#include "hslb/rebal/detector.hpp"

#include <algorithm>

#include "hslb/common/error.hpp"

namespace hslb::rebal {

double fractional_imbalance(std::span<const double> loads) {
  if (loads.empty()) {
    return 0.0;
  }
  double peak = loads[0];
  double total = 0.0;
  for (const double load : loads) {
    peak = std::max(peak, load);
    total += load;
  }
  const double mean = total / static_cast<double>(loads.size());
  if (mean <= 0.0) {
    return 0.0;
  }
  return peak / mean - 1.0;
}

ImbalanceDetector::ImbalanceDetector(const DetectorOptions& options)
    : options_(options) {
  HSLB_REQUIRE(options_.window >= 1, "detector window must be >= 1");
  HSLB_REQUIRE(options_.sustain >= 1, "detector sustain must be >= 1");
  HSLB_REQUIRE(options_.cooldown >= 0, "detector cooldown must be >= 0");
  HSLB_REQUIRE(options_.fire_threshold > 0.0 &&
                   options_.clear_threshold >= 0.0 &&
                   options_.clear_threshold <= options_.fire_threshold,
               "detector needs 0 <= clear_threshold <= fire_threshold");
}

double ImbalanceDetector::windowed_imbalance() const {
  if (filled_ == 0) {
    return 0.0;
  }
  // FLI over the per-component window means; the common 1/filled factor
  // cancels in max/mean, so the sums are used directly.
  return fractional_imbalance(window_sums_);
}

void ImbalanceDetector::reset_window() {
  std::fill(window_sums_.begin(), window_sums_.end(), 0.0);
  std::fill(ring_.begin(), ring_.end(), 0.0);
  filled_ = 0;
  next_slot_ = 0;
  sustain_count_ = 0;
}

bool ImbalanceDetector::observe(std::span<const double> loads) {
  HSLB_REQUIRE(!loads.empty(), "detector needs at least one component");
  if (components_ == 0) {
    components_ = loads.size();
    window_sums_.assign(components_, 0.0);
    ring_.assign(components_ * static_cast<std::size_t>(options_.window),
                 0.0);
  }
  HSLB_REQUIRE(loads.size() == components_,
               "detector component count changed between steps");

  // Slide the per-component window.
  for (std::size_t j = 0; j < components_; ++j) {
    double& slot =
        ring_[j * static_cast<std::size_t>(options_.window) +
              static_cast<std::size_t>(next_slot_)];
    window_sums_[j] += loads[j] - slot;
    slot = loads[j];
  }
  next_slot_ = (next_slot_ + 1) % options_.window;
  filled_ = std::min(filled_ + 1, options_.window);

  const double fli = windowed_imbalance();

  switch (state_) {
    case State::kCooldown:
      if (--cooldown_left_ <= 0) {
        // Hysteresis: the trigger re-arms only below the clear threshold.
        state_ = fli < options_.clear_threshold ? State::kArmed
                                                : State::kBlocked;
      }
      return false;
    case State::kBlocked:
      if (fli < options_.clear_threshold) {
        state_ = State::kArmed;
        sustain_count_ = 0;
        return false;
      }
      // A plateau inside the hysteresis band stays blocked, but sustained
      // imbalance back above the fire threshold is actionable again: the
      // fire that led here moved the rebalancing baseline, so this is new
      // signal, not the plateau the hysteresis guards against (e.g. a
      // regime shift that landed during the cooldown).
      if (fli <= options_.fire_threshold) {
        sustain_count_ = 0;
        return false;
      }
      break;
    case State::kArmed:
      break;
  }

  if (fli > options_.fire_threshold && filled_ >= options_.window) {
    if (++sustain_count_ >= options_.sustain) {
      ++fires_;
      sustain_count_ = 0;
      state_ = State::kCooldown;
      cooldown_left_ = std::max(1, options_.cooldown);
      return true;
    }
  } else {
    sustain_count_ = 0;
  }
  return false;
}

}  // namespace hslb::rebal
