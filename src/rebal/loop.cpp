#include "hslb/rebal/loop.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>

#include "hslb/common/error.hpp"
#include "hslb/common/timing.hpp"
#include "hslb/obs/obs.hpp"
#include "hslb/scen/build.hpp"

namespace hslb::rebal {
namespace {

/// FNV-1a accumulator for the replay fingerprint.
struct Fnv {
  std::uint64_t hash = 14695981039346656037ull;

  void mix_bytes(const void* data, std::size_t size) {
    const auto* bytes = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < size; ++i) {
      hash ^= bytes[i];
      hash *= 1099511628211ull;
    }
  }
  void mix(double value) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &value, sizeof(bits));
    mix_bytes(&bits, sizeof(bits));
  }
  void mix(long value) {
    const auto v = static_cast<std::uint64_t>(value);
    mix_bytes(&v, sizeof(v));
  }
  std::string hex() const {
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(hash));
    return buf;
  }
};

std::vector<int> to_allocation_vector(const scen::Scenario& scenario,
                                      const scen::ScenAllocation& alloc) {
  std::vector<int> nodes(scenario.components.size(), 0);
  for (std::size_t j = 0; j < scenario.components.size(); ++j) {
    nodes[j] = alloc.nodes.at(scenario.components[j].name);
  }
  return nodes;
}

struct SolveOutcome {
  std::vector<int> allocation;
  double objective = 0.0;
  bool heuristic = false;
  bool warm_used = false;
  long warm_primes = 0;
  long nodes_explored = 0;
  long lp_solves = 0;
  long simplex_iterations = 0;
  long factor_inherits = 0;
  double wall_seconds = 0.0;
};

/// One in-loop allocation solve: warm (or cold) branch-and-bound with the
/// heuristic grid search as the fallback rung when the node budget runs out
/// without an incumbent.
SolveOutcome solve_allocation(const scen::Scenario& scenario,
                              const LoopOptions& options,
                              const minlp::WarmStart* warm,
                              minlp::WarmStart* captured) {
  HSLB_SPAN("rebal.resolve");
  SolveOutcome out;

  scen::ScenarioModelVars vars;
  const minlp::Model model = scen::build_scenario_model(scenario, &vars);
  minlp::SolverOptions sopts;
  sopts.threads = options.solver_threads;
  sopts.max_nodes = options.solver_max_nodes;
  sopts.capture_warm_start = true;
  if (options.warm && warm != nullptr && !warm->empty()) {
    sopts.warm_start = warm;
  }
  // Time the solver alone: model lowering is identical for the warm and
  // cold arms, so including it would only dilute the comparison.
  common::WallTimer timer;
  minlp::MinlpResult result = minlp::solve(model, sopts);
  out.wall_seconds = timer.seconds();
  out.nodes_explored = result.stats.nodes_explored;
  out.lp_solves = result.stats.lp_solves;
  out.simplex_iterations = result.stats.simplex_iterations;
  out.factor_inherits = result.stats.lp_factor_inherits;
  out.warm_primes = result.stats.warm_incumbent_primes;
  out.warm_used = result.stats.warm_lp_solves > 0;

  if (!result.x.empty()) {
    out.allocation.resize(scenario.components.size());
    for (std::size_t j = 0; j < scenario.components.size(); ++j) {
      out.allocation[j] =
          static_cast<int>(std::lround(result.x[vars.nodes[j]]));
    }
    out.objective = scen::evaluate_objective(scenario, out.allocation);
    if (captured != nullptr) {
      *captured = std::move(result.warm);
    }
  } else {
    // Budget exhausted (or infeasible numerics): the in-loop fallback rung
    // is the deterministic heuristic grid search -- always answers.
    HSLB_COUNT("rebal.heuristic_fallbacks", 1);
    const scen::ScenAllocation heuristic =
        scen::heuristic_allocation(scenario);
    out.allocation = to_allocation_vector(scenario, heuristic);
    out.objective = heuristic.objective;
    out.heuristic = true;
  }
  return out;
}

}  // namespace

DetectorScore score_detector(const std::vector<long>& fire_steps,
                             const std::vector<long>& shift_steps,
                             long match_window) {
  DetectorScore score;
  std::vector<bool> fire_used(fire_steps.size(), false);
  for (const long shift : shift_steps) {
    bool matched = false;
    for (std::size_t i = 0; i < fire_steps.size(); ++i) {
      if (!fire_used[i] && fire_steps[i] >= shift &&
          fire_steps[i] - shift <= match_window) {
        fire_used[i] = true;
        matched = true;
        break;
      }
    }
    if (matched) {
      ++score.true_positives;
    } else {
      ++score.false_negatives;
    }
  }
  for (const bool used : fire_used) {
    if (!used) {
      ++score.false_positives;
    }
  }
  if (score.true_positives + score.false_positives > 0) {
    score.precision =
        static_cast<double>(score.true_positives) /
        static_cast<double>(score.true_positives + score.false_positives);
  }
  if (score.true_positives + score.false_negatives > 0) {
    score.recall =
        static_cast<double>(score.true_positives) /
        static_cast<double>(score.true_positives + score.false_negatives);
  }
  return score;
}

HorizonResult run_horizon(const scen::Scenario& scenario,
                          const LoopOptions& options) {
  HSLB_SPAN("rebal.horizon");
  HSLB_REQUIRE(options.horizon >= 1, "horizon must be at least one step");
  const DriftSimulator sim(scenario, options.seed);
  const scen::Scenario& base = sim.base();
  const std::size_t n_comp = base.components.size();
  const double machine_cores = static_cast<double>(base.machine.nodes) *
                               static_cast<double>(base.machine.cores_per_node);

  HorizonResult out;
  Fnv fnv;

  // Allocation the horizon starts on: the offline HSLB solve of the base
  // (undrifted) scenario.  Both arms start here; the static arm keeps it.
  minlp::WarmStart warm_state;
  SolveOutcome current =
      solve_allocation(base, options, nullptr, &warm_state);
  out.initial_allocation = current.allocation;
  for (const int nodes : current.allocation) {
    fnv.mix(static_cast<long>(nodes));
  }

  ImbalanceDetector detector(options.detector);
  std::vector<ScaleTracker> trackers(n_comp, ScaleTracker(options.tracker));
  // Scales the current allocation was solved for; the detector measures
  // reality against these, and a rebalance re-freezes them.
  std::vector<double> frozen_scales(n_comp, 1.0);
  std::vector<double> tracked_scales(n_comp, 1.0);
  std::vector<double> loads(n_comp, 0.0);

  std::vector<double> base_seconds(n_comp, 0.0);
  const auto refresh_base_seconds = [&] {
    for (std::size_t j = 0; j < n_comp; ++j) {
      base_seconds[j] = base.components[j].curve(
          static_cast<double>(current.allocation[j]));
    }
  };
  refresh_base_seconds();

  for (long step = 0; step < options.horizon; ++step) {
    // Ground-truth cost of running this step on the current allocation.
    const scen::Scenario truth = sim.scenario_at(step);
    const double step_seconds =
        scen::evaluate_objective(truth, current.allocation);
    out.step_seconds_sum += step_seconds;
    out.core_hours += step_seconds * machine_cores / 3600.0;
    fnv.mix(step_seconds);

    // Observe, track, detect.
    for (std::size_t j = 0; j < n_comp; ++j) {
      const double observed =
          sim.observed_seconds(static_cast<int>(j), step,
                               current.allocation[j]);
      fnv.mix(observed);
      const double ratio = observed / base_seconds[j];
      const ScaleTracker::Update update = trackers[j].observe(ratio);
      tracked_scales[j] = update.scale;
      if (update.regime_shift) {
        ++out.regime_shifts_flagged;
        HSLB_COUNT("rebal.regime_shifts", 1);
      }
      loads[j] = ratio / frozen_scales[j];
    }
    if (!detector.observe(loads)) {
      continue;
    }
    ++out.detector_fires;
    out.fire_steps.push_back(step);
    fnv.mix(step);
    HSLB_COUNT("rebal.fires", 1);
    if (!options.rebalance) {
      continue;
    }

    // Re-fit and re-solve.  The refit scenario scales every base curve by
    // its tracked estimate; the warm path re-enters the solver from the
    // previous incumbent/basis/factor, the cold path from scratch.
    const scen::Scenario refit = scaled_scenario(base, tracked_scales);
    minlp::WarmStart captured;
    SolveOutcome candidate =
        solve_allocation(refit, options, &warm_state, &captured);
    out.resolve_nodes += candidate.nodes_explored;
    out.resolve_lp_solves += candidate.lp_solves;
    out.resolve_simplex_iterations += candidate.simplex_iterations;
    out.resolve_factor_inherits += candidate.factor_inherits;
    out.resolve_warm_primes += candidate.warm_primes;
    out.resolve_wall_seconds += candidate.wall_seconds;
    if (candidate.heuristic) {
      ++out.heuristic_fallbacks;
    } else {
      warm_state = std::move(captured);
    }

    // Charge the modeled rebalance overhead whether or not the answer is
    // adopted -- the work was spent either way.
    const double overhead =
        options.rebalance_overhead_steps * step_seconds * machine_cores /
        3600.0;
    out.core_hours += overhead;
    out.overhead_core_hours += overhead;

    // Adopt only improvements under the refit model; the solver's answer is
    // optimal for it, but the heuristic rung can lose to the incumbent
    // allocation.
    const double current_refit_objective =
        scen::evaluate_objective(refit, current.allocation);
    const double candidate_refit_objective =
        scen::evaluate_objective(refit, candidate.allocation);
    if (candidate_refit_objective <
        current_refit_objective * (1.0 - 1e-9)) {
      RebalanceEvent event;
      event.step = step;
      event.heuristic = candidate.heuristic;
      event.warm_used = candidate.warm_used;
      event.warm_primes = candidate.warm_primes;
      event.nodes_explored = candidate.nodes_explored;
      event.lp_solves = candidate.lp_solves;
      event.simplex_iterations = candidate.simplex_iterations;
      event.factor_inherits = candidate.factor_inherits;
      event.objective = candidate_refit_objective;
      event.wall_seconds = candidate.wall_seconds;
      event.allocation = candidate.allocation;
      out.events.push_back(std::move(event));
      ++out.rebalances;
      HSLB_COUNT("rebal.rebalances", 1);
      current.allocation = candidate.allocation;
      refresh_base_seconds();
      for (const int nodes : current.allocation) {
        fnv.mix(static_cast<long>(nodes));
      }
    }
    // Either way the model baseline the detector compares against is now
    // the tracked state, and buffered pre-rebalance history is stale.
    frozen_scales = tracked_scales;
    detector.reset_window();
  }

  out.steps = options.horizon;
  out.final_allocation = current.allocation;
  out.replay_fingerprint = fnv.hex();
  return out;
}

}  // namespace hslb::rebal
