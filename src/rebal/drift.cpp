#include "hslb/rebal/drift.hpp"

#include <algorithm>
#include <cmath>

#include "hslb/cesm/fault.hpp"
#include "hslb/common/error.hpp"
#include "hslb/common/rng.hpp"

namespace hslb::rebal {

double drift_scale(const scen::DriftSpec& spec, long step) {
  double scale = std::exp(spec.rate * static_cast<double>(step));
  for (const scen::DriftShift& shift : spec.shifts) {
    if (static_cast<long>(shift.step) <= step) {
      scale *= shift.factor;
    }
  }
  return scale;
}

scen::Scenario scaled_scenario(const scen::Scenario& base,
                               std::span<const double> scales) {
  HSLB_REQUIRE(scales.size() == base.components.size(),
               "one scale per component required");
  scen::Scenario out = base;
  for (std::size_t j = 0; j < out.components.size(); ++j) {
    const double s = scales[j];
    HSLB_REQUIRE(s > 0.0 && std::isfinite(s), "curve scales must be positive");
    scen::CurveSpec& curve = out.components[j].curve;
    curve.pow.a *= s;
    curve.pow.b *= s;
    curve.pow.d *= s;
    curve.comm_per_node *= s;
    for (scen::CurvePoint& pt : curve.points) {
      pt.seconds *= s;
    }
  }
  return out;
}

DriftSimulator::DriftSimulator(scen::Scenario scenario, std::uint64_t seed)
    : scenario_(std::move(scenario)), seed_(seed) {
  scenario_.validate();
}

const scen::DriftSpec* DriftSimulator::spec_of(int j) const {
  for (const scen::DriftSpec& spec : scenario_.drift) {
    if (spec.component == j) {
      return &spec;
    }
  }
  return nullptr;
}

double DriftSimulator::true_scale(int j, long step) const {
  const scen::DriftSpec* spec = spec_of(j);
  return spec == nullptr ? 1.0 : drift_scale(*spec, step);
}

std::vector<double> DriftSimulator::true_scales(long step) const {
  std::vector<double> scales(scenario_.components.size(), 1.0);
  for (const scen::DriftSpec& spec : scenario_.drift) {
    scales[static_cast<std::size_t>(spec.component)] =
        drift_scale(spec, step);
  }
  return scales;
}

scen::Scenario DriftSimulator::scenario_at(long step) const {
  return scaled_scenario(scenario_, true_scales(step));
}

double DriftSimulator::observed_seconds(int j, long step, int nodes) const {
  HSLB_REQUIRE(j >= 0 && j < static_cast<int>(scenario_.components.size()),
               "component index out of range");
  const double clean =
      scenario_.components[static_cast<std::size_t>(j)].curve(
          static_cast<double>(nodes)) *
      true_scale(j, step);
  const scen::DriftSpec* spec = spec_of(j);
  if (spec == nullptr || spec->noise <= 0.0) {
    return clean;
  }
  // One pure-hash draw per (seed, step, component): thread-order
  // independent and replay-exact, same scheme as the fault injectors.
  common::Rng rng(cesm::mix_fault_key(seed_, static_cast<std::uint64_t>(step),
                                      static_cast<std::uint64_t>(j)));
  return clean * rng.lognormal_noise(spec->noise);
}

std::vector<long> DriftSimulator::shift_steps() const {
  std::vector<long> steps;
  for (const scen::DriftSpec& spec : scenario_.drift) {
    for (const scen::DriftShift& shift : spec.shifts) {
      steps.push_back(shift.step);
    }
  }
  std::sort(steps.begin(), steps.end());
  steps.erase(std::unique(steps.begin(), steps.end()), steps.end());
  return steps;
}

}  // namespace hslb::rebal
