#include "hslb/rebal/refit.hpp"

#include <algorithm>
#include <cmath>

#include "hslb/common/error.hpp"

namespace hslb::rebal {

RecursiveLeastSquares::RecursiveLeastSquares(std::size_t dim, double lambda,
                                             double initial_covariance)
    : dim_(dim), lambda_(lambda) {
  HSLB_REQUIRE(dim >= 1, "RLS needs at least one parameter");
  HSLB_REQUIRE(lambda > 0.0 && lambda <= 1.0, "RLS lambda must be in (0, 1]");
  HSLB_REQUIRE(initial_covariance > 0.0,
               "RLS initial covariance must be positive");
  theta_.assign(dim_, 0.0);
  reset_covariance(initial_covariance);
}

void RecursiveLeastSquares::reset_covariance(double initial_covariance) {
  p_.assign(dim_ * dim_, 0.0);
  for (std::size_t i = 0; i < dim_; ++i) {
    p_[i * dim_ + i] = initial_covariance;
  }
}

void RecursiveLeastSquares::set_theta(std::span<const double> theta) {
  HSLB_REQUIRE(theta.size() == dim_, "theta dimension mismatch");
  theta_.assign(theta.begin(), theta.end());
}

double RecursiveLeastSquares::predict(std::span<const double> x) const {
  HSLB_REQUIRE(x.size() == dim_, "regressor dimension mismatch");
  double y = 0.0;
  for (std::size_t i = 0; i < dim_; ++i) {
    y += x[i] * theta_[i];
  }
  return y;
}

void RecursiveLeastSquares::observe(std::span<const double> x, double y) {
  HSLB_REQUIRE(x.size() == dim_, "regressor dimension mismatch");
  // Standard RLS update:
  //   k = P x / (lambda + x' P x)
  //   theta += k (y - x' theta)
  //   P = (P - k x' P) / lambda
  std::vector<double> px(dim_, 0.0);  // P x (P is symmetric)
  double xpx = 0.0;
  for (std::size_t i = 0; i < dim_; ++i) {
    for (std::size_t j = 0; j < dim_; ++j) {
      px[i] += p_[i * dim_ + j] * x[j];
    }
    xpx += x[i] * px[i];
  }
  const double denom = lambda_ + xpx;
  const double innovation = y - predict(x);
  for (std::size_t i = 0; i < dim_; ++i) {
    theta_[i] += px[i] / denom * innovation;
  }
  for (std::size_t i = 0; i < dim_; ++i) {
    for (std::size_t j = 0; j < dim_; ++j) {
      p_[i * dim_ + j] = (p_[i * dim_ + j] - px[i] * px[j] / denom) / lambda_;
    }
  }
  ++samples_;
}

ResidualCusum::ResidualCusum(const CusumOptions& options) : options_(options) {
  HSLB_REQUIRE(options_.k >= 0.0 && options_.h > 0.0,
               "CUSUM needs k >= 0 and h > 0");
}

void ResidualCusum::reset() {
  positive_ = 0.0;
  negative_ = 0.0;
}

bool ResidualCusum::observe(double z) {
  positive_ = std::max(0.0, positive_ + z - options_.k);
  negative_ = std::max(0.0, negative_ - z - options_.k);
  if (positive_ > options_.h || negative_ > options_.h) {
    reset();
    return true;
  }
  return false;
}

double huber_location(std::span<const double> samples, double delta) {
  if (samples.empty()) {
    return 0.0;
  }
  std::vector<double> sorted(samples.begin(), samples.end());
  std::sort(sorted.begin(), sorted.end());
  const auto median_of = [](std::vector<double>& v) {
    const std::size_t mid = v.size() / 2;
    std::nth_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(mid),
                     v.end());
    if (v.size() % 2 == 1) {
      return v[mid];
    }
    const double hi = v[mid];
    const double lo =
        *std::max_element(v.begin(),
                          v.begin() + static_cast<std::ptrdiff_t>(mid));
    return 0.5 * (lo + hi);
  };
  double mu = median_of(sorted);
  // MAD scale (1.4826 makes it consistent for the normal).
  std::vector<double> dev(sorted.size());
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    dev[i] = std::fabs(sorted[i] - mu);
  }
  const double sigma = std::max(1.4826 * median_of(dev), 1e-12);
  // IRLS with the Huber psi-weights; converges in a handful of rounds.
  for (int round = 0; round < 10; ++round) {
    double weighted = 0.0;
    double weight_sum = 0.0;
    for (const double sample : samples) {
      const double r = std::fabs(sample - mu) / sigma;
      const double w = r <= delta ? 1.0 : delta / r;
      weighted += w * sample;
      weight_sum += w;
    }
    const double next = weighted / weight_sum;
    if (std::fabs(next - mu) <= 1e-12 * std::max(1.0, std::fabs(mu))) {
      mu = next;
      break;
    }
    mu = next;
  }
  return mu;
}

ScaleTracker::ScaleTracker(const ScaleTrackerOptions& options)
    : options_(options), rls_(1, options.forgetting), cusum_(options.cusum) {
  HSLB_REQUIRE(options_.refit_window >= 1,
               "scale tracker needs refit_window >= 1");
  HSLB_REQUIRE(options_.variance_warmup >= 1,
               "scale tracker needs variance_warmup >= 1");
  const double one = 1.0;
  rls_.set_theta(std::span<const double>(&one, 1));
  recent_.assign(static_cast<std::size_t>(options_.refit_window), 0.0);
}

double ScaleTracker::scale() const { return rls_.theta()[0]; }

ScaleTracker::Update ScaleTracker::observe(double ratio) {
  Update update;
  const double one = 1.0;
  const std::span<const double> x(&one, 1);

  recent_[static_cast<std::size_t>(next_recent_)] = ratio;
  next_recent_ = (next_recent_ + 1) % options_.refit_window;
  recent_filled_ = std::min(recent_filled_ + 1, options_.refit_window);

  const double residual = ratio - rls_.predict(x);
  // Residual variance: plain averaging through the burn-in (so one early
  // small draw cannot shrink sigma), then exponentially weighted with the
  // RLS memory; floored so a clean stream cannot standardize numerical
  // dust into shifts.
  if (var_samples_ < options_.variance_warmup) {
    residual_var_ += (residual * residual - residual_var_) /
                     static_cast<double>(var_samples_ + 1);
  } else {
    const double beta = options_.forgetting;
    residual_var_ =
        beta * residual_var_ + (1.0 - beta) * residual * residual;
  }
  ++var_samples_;
  const double sigma =
      std::max(std::sqrt(residual_var_), options_.min_sigma);

  // The CUSUM only runs on a burnt-in sigma estimate.
  const bool warm = var_samples_ > options_.variance_warmup;
  if (warm && cusum_.observe(residual / sigma)) {
    // Regime shift: re-estimate the level from the recent window with the
    // bounded-influence Huber location, then let RLS re-converge fast.
    ++regime_shifts_;
    update.regime_shift = true;
    const double level = huber_location(
        std::span<const double>(recent_.data(),
                                static_cast<std::size_t>(recent_filled_)),
        options_.huber_delta);
    rls_.set_theta(std::span<const double>(&level, 1));
    rls_.reset_covariance(options_.shift_covariance);
    // The regime's noise level changed with its mean: re-burn-in the
    // variance so the next few post-shift residuals set the new sigma.
    residual_var_ = 0.0;
    var_samples_ = 0;
  }
  rls_.observe(x, ratio);
  update.scale = scale();
  return update;
}

}  // namespace hslb::rebal
