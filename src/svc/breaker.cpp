#include "hslb/svc/breaker.hpp"

#include "hslb/common/error.hpp"

namespace hslb::svc {

const char* to_string(BreakerState state) {
  switch (state) {
    case BreakerState::kClosed:
      return "closed";
    case BreakerState::kOpen:
      return "open";
    case BreakerState::kHalfOpen:
      return "half-open";
  }
  return "unknown";
}

CircuitBreaker::CircuitBreaker(BreakerConfig config) : config_(config) {
  HSLB_REQUIRE(config_.window >= 1, "breaker window must be positive");
  HSLB_REQUIRE(config_.min_samples >= 1,
               "breaker min_samples must be positive");
  HSLB_REQUIRE(config_.failure_ratio > 0.0 && config_.failure_ratio <= 1.0,
               "breaker failure_ratio must be in (0, 1]");
  HSLB_REQUIRE(config_.open_rejects >= 1,
               "breaker open_rejects must be positive");
  HSLB_REQUIRE(config_.half_open_probes >= 1,
               "breaker half_open_probes must be positive");
}

void CircuitBreaker::trip_open() {
  state_ = BreakerState::kOpen;
  window_.clear();
  failures_in_window_ = 0;
  rejects_while_open_ = 0;
  probes_issued_ = 0;
  probes_succeeded_ = 0;
  ++stats_.opened;
}

bool CircuitBreaker::allow() {
  const std::lock_guard<std::mutex> lock(mutex_);
  switch (state_) {
    case BreakerState::kClosed:
      return true;
    case BreakerState::kOpen:
      ++rejects_while_open_;
      ++stats_.rejected;
      if (rejects_while_open_ >= config_.open_rejects) {
        // Cooldown served (counted in rejects, not seconds, so replays are
        // exact): start probing.
        state_ = BreakerState::kHalfOpen;
        probes_issued_ = 0;
        probes_succeeded_ = 0;
      }
      return false;
    case BreakerState::kHalfOpen:
      if (probes_issued_ < config_.half_open_probes) {
        ++probes_issued_;
        return true;
      }
      ++stats_.rejected;
      return false;
  }
  return true;
}

void CircuitBreaker::record(bool success) {
  const std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.outcomes;
  if (state_ == BreakerState::kHalfOpen) {
    if (!success) {
      trip_open();
      return;
    }
    ++probes_succeeded_;
    if (probes_succeeded_ >= config_.half_open_probes) {
      state_ = BreakerState::kClosed;
      window_.clear();
      failures_in_window_ = 0;
      ++stats_.closed;
    }
    return;
  }
  if (state_ == BreakerState::kOpen) {
    // A straggler attempt admitted before the trip finished; its outcome
    // carries no information the trip didn't already act on.
    return;
  }
  window_.push_back(success);
  if (!success) {
    ++failures_in_window_;
  }
  while (window_.size() > static_cast<std::size_t>(config_.window)) {
    if (!window_.front()) {
      --failures_in_window_;
    }
    window_.pop_front();
  }
  if (static_cast<int>(window_.size()) >= config_.min_samples &&
      static_cast<double>(failures_in_window_) >=
          config_.failure_ratio * static_cast<double>(window_.size())) {
    trip_open();
  }
}

BreakerState CircuitBreaker::state() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return state_;
}

BreakerStats CircuitBreaker::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  BreakerStats out = stats_;
  out.state = state_;
  return out;
}

}  // namespace hslb::svc
