#include "hslb/svc/coalescer.hpp"

#include <utility>

namespace hslb::svc {

Coalescer::Join Coalescer::join(const std::string& key) {
  return join(key, Follower{});
}

Coalescer::Join Coalescer::join(const std::string& key,
                                const Follower& meta) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = slots_.find(key);
  if (it != slots_.end()) {
    ++it->second->followers;
    if (meta.request_span != 0) {
      it->second->follower_meta.push_back(meta);
    }
    return Join{it->second, /*leader=*/false};
  }
  auto slot = std::make_shared<Slot>();
  slot->future = slot->promise.get_future().share();
  slots_[key] = slot;
  return Join{std::move(slot), /*leader=*/true};
}

std::shared_ptr<Coalescer::Slot> Coalescer::complete(const std::string& key,
                                                     SolveOutcome outcome) {
  std::shared_ptr<Slot> slot;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = slots_.find(key);
    if (it == slots_.end()) {
      // Already completed (defensive; leaders complete exactly once).
      return nullptr;
    }
    slot = std::move(it->second);
    slots_.erase(it);
  }
  slot->promise.set_value(std::move(outcome));
  return slot;
}

std::size_t Coalescer::in_flight() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return slots_.size();
}

}  // namespace hslb::svc
