#include "hslb/svc/coalescer.hpp"

#include <utility>

namespace hslb::svc {

Coalescer::Join Coalescer::join(const std::string& key) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = slots_.find(key);
  if (it != slots_.end()) {
    ++it->second->followers;
    return Join{it->second, /*leader=*/false};
  }
  auto slot = std::make_shared<Slot>();
  slot->future = slot->promise.get_future().share();
  slots_[key] = slot;
  return Join{std::move(slot), /*leader=*/true};
}

void Coalescer::complete(const std::string& key, SolveOutcome outcome) {
  std::shared_ptr<Slot> slot;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = slots_.find(key);
    if (it == slots_.end()) {
      return;  // already completed (defensive; leaders complete exactly once)
    }
    slot = std::move(it->second);
    slots_.erase(it);
  }
  slot->promise.set_value(std::move(outcome));
}

std::size_t Coalescer::in_flight() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return slots_.size();
}

}  // namespace hslb::svc
